package geosphere

import (
	"errors"
	"testing"
)

// validOptions is a minimal option set that passes Validate.
func validOptions() UplinkOptions {
	return UplinkOptions{
		Cons: QAM16, NumSymbols: 4, Frames: 2, SNRdB: 30, Seed: 1, NA: 4, NC: 2,
	}
}

// TestUplinkOptionsValidate pins the typed sentinel each bad option
// maps to, matched with errors.Is as downstream callers would.
func TestUplinkOptionsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*UplinkOptions)
		want   error
	}{
		{"valid", func(o *UplinkOptions) {}, nil},
		{"nil constellation", func(o *UplinkOptions) { o.Cons = nil }, ErrNilConstellation},
		{"zero frames", func(o *UplinkOptions) { o.Frames = 0 }, ErrBadFrames},
		{"negative frames", func(o *UplinkOptions) { o.Frames = -3 }, ErrBadFrames},
		{"zero symbols", func(o *UplinkOptions) { o.NumSymbols = 0 }, ErrBadNumSymbols},
		{"negative jitter", func(o *UplinkOptions) { o.SNRJitterDB = -1 }, ErrBadJitter},
		{"negative workers", func(o *UplinkOptions) { o.Workers = -2 }, ErrBadWorkers},
		{"zero clients", func(o *UplinkOptions) { o.NC = 0 }, ErrBadShape},
		{"more clients than antennas", func(o *UplinkOptions) { o.NA, o.NC = 2, 4 }, ErrBadShape},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mutate(&o)
			err := o.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(..., %v)", err, tc.want)
			}
		})
	}
}

// TestMeasureUplinkValidateFirst verifies all three entry points
// reject invalid options up front with the matching sentinel.
func TestMeasureUplinkValidateFirst(t *testing.T) {
	bad := validOptions()
	bad.Cons = nil
	entries := []struct {
		name string
		run  func(UplinkOptions) (UplinkResult, error)
	}{
		{"rayleigh", MeasureUplinkRayleigh},
		{"testbed", MeasureUplinkTestbed},
		{"trace", func(o UplinkOptions) (UplinkResult, error) {
			return MeasureUplinkTrace(o, "does-not-exist.trace.gz")
		}},
	}
	for _, e := range entries {
		t.Run(e.name, func(t *testing.T) {
			if _, err := e.run(bad); !errors.Is(err, ErrNilConstellation) {
				t.Fatalf("%s accepted nil constellation (err = %v)", e.name, err)
			}
		})
	}
	// Shape errors surface before any channel setup.
	badShape := validOptions()
	badShape.NA, badShape.NC = 1, 3
	for _, e := range entries {
		if _, err := e.run(badShape); !errors.Is(err, ErrBadShape) {
			t.Fatalf("%s accepted 1×3 shape (err = %v)", e.name, err)
		}
	}
}

// TestMeasureUplinkTestbedShapeChecked verifies the generated-trace
// path shape-checks its source like the recorded-trace path does.
func TestMeasureUplinkTestbedShapeChecked(t *testing.T) {
	o := validOptions()
	res, err := MeasureUplinkTestbed(o)
	if err != nil {
		t.Fatalf("valid testbed options rejected: %v", err)
	}
	if res.Frames != o.Frames {
		t.Fatalf("ran %d frames, want %d", res.Frames, o.Frames)
	}
}

// TestStatsOfAcrossConstructors sweeps every facade constructor: the
// tree-search detectors count work, the linear ones report false.
func TestStatsOfAcrossConstructors(t *testing.T) {
	nv := NoiseVarForSNRdB(20)
	// κ threshold 1 routes every channel to the sphere branch, so the
	// hybrid's (sphere-side) stats are guaranteed non-empty.
	hybrid, err := NewHybrid(QAM16, NewZF(QAM16), 1)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := NewKBest(QAM16, 4)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFCSD(QAM16, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		det    Detector
		counts bool
	}{
		{"Geosphere", NewGeosphere(QAM16), true},
		{"GeosphereZigzagOnly", NewGeosphereZigzagOnly(QAM16), true},
		{"ETHSD", NewETHSD(QAM16), true},
		{"ML", NewML(QPSK), false},
		{"ZF", NewZF(QAM16), false},
		{"MMSE", NewMMSE(QAM16, nv), false},
		{"MMSESIC", NewMMSESIC(QAM16, nv), false},
		{"KBest", kb, true},
		{"FCSD", fc, true},
		{"ListSphereDecoder", NewListSphereDecoder(QAM16), true},
		{"Hybrid", hybrid, true},
		{"GeosphereReordered", NewGeosphereReordered(QAM16), true},
		{"RVD", NewRVD(QAM16), true},
	}
	src := NewSource(31)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cons := tc.det.Constellation()
			h := NewRayleighChannel(src, 4, 2)
			if err := tc.det.Prepare(h); err != nil {
				t.Fatal(err)
			}
			x := []complex128{cons.PointIndex(1), cons.PointIndex(2)}
			y := Transmit(nil, src, h, x, nv)
			if _, err := tc.det.Detect(nil, y); err != nil {
				t.Fatal(err)
			}
			st, ok := StatsOf(tc.det)
			if ok != tc.counts {
				t.Fatalf("StatsOf reported ok=%v, want %v", ok, tc.counts)
			}
			if ok && st.Detections == 0 {
				t.Errorf("counting detector reported zero detections: %+v", st)
			}
		})
	}
}

// TestUplinkObserver attaches a StatsObserver through the public API
// and checks it sees the run without changing the result.
func TestUplinkObserver(t *testing.T) {
	o := validOptions()
	o.Frames = 4
	o.Workers = 2
	plain, err := MeasureUplinkRayleigh(o)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewStatsObserver()
	o.Observer = obs
	observed, err := MeasureUplinkRayleigh(o)
	if err != nil {
		t.Fatal(err)
	}
	if observed != plain {
		t.Errorf("observer changed the measurement:\nwith    %+v\nwithout %+v", observed, plain)
	}
	s := obs.Snapshot()
	if s.Frames.Frames != int64(plain.Frames) {
		t.Errorf("observer saw %d frames, run had %d", s.Frames.Frames, plain.Frames)
	}
	if s.Detect.PEDCalcs != plain.Stats.PEDCalcs {
		t.Errorf("observer PED total %d != measurement %d", s.Detect.PEDCalcs, plain.Stats.PEDCalcs)
	}
}

// TestMultiObserver checks the facade fan-out helper.
func TestMultiObserver(t *testing.T) {
	a, b := NewStatsObserver(), NewStatsObserver()
	o := validOptions()
	o.Observer = MultiObserver(a, b, NopObserver)
	if _, err := MeasureUplinkRayleigh(o); err != nil {
		t.Fatal(err)
	}
	if a.Snapshot().Frames.Frames == 0 || b.Snapshot().Frames.Frames == 0 {
		t.Error("MultiObserver did not fan out to both observers")
	}
}
