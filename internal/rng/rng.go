// Package rng provides deterministic random number generation for
// reproducible Monte-Carlo simulation.
//
// All experiments in this repository are driven by explicitly seeded
// sources so that every table and figure can be regenerated bit-for-bit.
// The package wraps math/rand with the distributions the simulator
// needs: circularly-symmetric complex Gaussians (Rayleigh fading and
// AWGN), uniform bits, and uniform constellation indices. Sources are
// splittable so that parallel workers draw from independent streams
// without locking.
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic stream of random values. It is not safe
// for concurrent use; use Split to derive independent streams for
// parallel workers.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed. Two Sources constructed with
// the same seed produce identical streams.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// SubSeed derives the seed of substream index from a root seed by
// SplitMix64-style bit mixing. Unlike Split, the derivation is a pure
// function of (seed, index) — it consumes no generator state — so any
// number of workers can construct the same substream for the same
// index without coordinating, and substream i is identical whether it
// is drawn first, last, or concurrently with the others. This is the
// keystone of the deterministic parallel frame pipeline in
// internal/link: frame i always sees Substream(seed, i) regardless of
// worker count or scheduling order.
func SubSeed(seed, index int64) int64 {
	x := uint64(seed)
	x += 0x9e3779b97f4a7c15 // golden-ratio increment decorrelates seed 0
	x ^= uint64(index) * 0xbf58476d1ce4e5b9
	// SplitMix64 finalizer: full-avalanche mixing so adjacent
	// (seed, index) pairs land on statistically unrelated streams.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Substream returns the deterministic substream of seed at index:
// New(SubSeed(seed, index)). Substreams with distinct indices are
// statistically independent; the same (seed, index) pair always yields
// the same stream.
func Substream(seed, index int64) *Source {
	return New(SubSeed(seed, index))
}

// Split derives an independent child stream. The child's sequence is a
// deterministic function of the parent's state at the time of the
// call, so splitting k children in order is reproducible.
func (s *Source) Split() *Source {
	// Mix two draws so children of successive Splits differ even if
	// the underlying generator returns small values.
	seed := s.r.Int63() ^ (s.r.Int63() << 1)
	return New(seed)
}

// SplitN derives n independent child streams in one call.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Norm returns a standard (zero-mean, unit-variance) real Gaussian.
func (s *Source) Norm() float64 { return s.r.NormFloat64() }

// CN returns a circularly-symmetric complex Gaussian with total
// variance sigma2: each of the real and imaginary parts has variance
// sigma2/2. This is the standard CN(0, sigma2) used for both Rayleigh
// channel taps and complex AWGN.
func (s *Source) CN(sigma2 float64) complex128 {
	sd := math.Sqrt(sigma2 / 2)
	return complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
}

// CNVector fills dst with independent CN(0, sigma2) samples.
func (s *Source) CNVector(dst []complex128, sigma2 float64) {
	for i := range dst {
		dst[i] = s.CN(sigma2)
	}
}

// Bits fills dst with independent uniform bits (0 or 1).
func (s *Source) Bits(dst []byte) {
	var buf int64
	var have int
	for i := range dst {
		if have == 0 {
			buf = s.r.Int63()
			have = 63
		}
		dst[i] = byte(buf & 1)
		buf >>= 1
		have--
	}
}

// Phase returns a uniform phase in [0, 2π).
func (s *Source) Phase() float64 { return 2 * math.Pi * s.r.Float64() }

// UnitPhasor returns e^{jθ} with θ uniform in [0, 2π).
func (s *Source) UnitPhasor() complex128 {
	th := s.Phase()
	return complex(math.Cos(th), math.Sin(th))
}
