package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() { //geolint:float-ok test asserts exact bitwise reproducibility
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(1)
	c1 := a.Split()
	c2 := a.Split()
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Float64() == c2.Float64() { //geolint:float-ok test asserts exact bitwise reproducibility
			same++
		}
	}
	if same > 5 {
		t.Fatalf("split children correlated: %d/50 equal draws", same)
	}
}

func TestSplitNCount(t *testing.T) {
	children := New(2).SplitN(5)
	if len(children) != 5 {
		t.Fatalf("%d children", len(children))
	}
	for i, c := range children {
		if c == nil {
			t.Fatalf("child %d nil", i)
		}
	}
}

func TestCNStatistics(t *testing.T) {
	src := New(3)
	const n = 200000
	var mean complex128
	var power float64
	for i := 0; i < n; i++ {
		v := src.CN(2.0)
		mean += v / n
		power += (real(v)*real(v) + imag(v)*imag(v)) / n
	}
	if math.Hypot(real(mean), imag(mean)) > 0.02 {
		t.Fatalf("CN mean %v not ≈0", mean)
	}
	if math.Abs(power-2.0) > 0.05 {
		t.Fatalf("CN power %g, want 2.0", power)
	}
}

func TestCNVector(t *testing.T) {
	src := New(4)
	v := make([]complex128, 64)
	src.CNVector(v, 1)
	zero := 0
	for _, x := range v {
		if x == 0 { //geolint:float-ok test asserts exact bitwise reproducibility
			zero++
		}
	}
	if zero > 0 {
		t.Fatalf("%d zero draws", zero)
	}
}

func TestBitsBalanced(t *testing.T) {
	src := New(5)
	bits := make([]byte, 10000)
	src.Bits(bits)
	ones := 0
	for _, b := range bits {
		if b > 1 {
			t.Fatalf("bit value %d", b)
		}
		ones += int(b)
	}
	if ones < 4700 || ones > 5300 {
		t.Fatalf("bits unbalanced: %d ones", ones)
	}
}

func TestIntnRange(t *testing.T) {
	src := New(6)
	seen := make([]bool, 16)
	for i := 0; i < 1000; i++ {
		v := src.Intn(16)
		if v < 0 || v >= 16 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d never drawn", v)
		}
	}
}

func TestUnitPhasor(t *testing.T) {
	src := New(7)
	for i := 0; i < 100; i++ {
		z := src.UnitPhasor()
		if math.Abs(math.Hypot(real(z), imag(z))-1) > 1e-12 {
			t.Fatalf("phasor magnitude %g", math.Hypot(real(z), imag(z)))
		}
	}
}

func TestPhaseRange(t *testing.T) {
	src := New(8)
	for i := 0; i < 1000; i++ {
		p := src.Phase()
		if p < 0 || p >= 2*math.Pi {
			t.Fatalf("phase %g out of range", p)
		}
	}
}

func TestSubstreamPureFunction(t *testing.T) {
	// The same (seed, index) pair yields the same stream no matter how
	// many other substreams were derived before it — the property the
	// parallel frame pipeline relies on.
	a := Substream(7, 3)
	for i := int64(0); i < 100; i++ {
		Substream(7, i) // interleave unrelated derivations
	}
	b := Substream(7, 3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() { //geolint:float-ok test asserts exact bitwise reproducibility
			t.Fatal("Substream is not a pure function of (seed, index)")
		}
	}
}

func TestSubstreamDistinctIndices(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		s := SubSeed(2014, i)
		if seen[s] {
			t.Fatalf("SubSeed collision at index %d", i)
		}
		seen[s] = true
	}
	// Adjacent indices must produce decorrelated streams.
	c1, c2 := Substream(2014, 0), Substream(2014, 1)
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Float64() == c2.Float64() { //geolint:float-ok test asserts exact bitwise reproducibility
			same++
		}
	}
	if same > 5 {
		t.Fatalf("adjacent substreams correlated: %d/50 equal draws", same)
	}
}

func TestSubstreamDistinctSeeds(t *testing.T) {
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Fatal("different seeds collided at index 0")
	}
	// Seed 0 must not degenerate (the golden-ratio increment guards it).
	if SubSeed(0, 0) == 0 && SubSeed(0, 1) == 0 {
		t.Fatal("seed 0 degenerate")
	}
}
