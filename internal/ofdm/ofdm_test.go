package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return v
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of an impulse is flat.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v", i, v)
		}
	}
	// FFT of a constant is an impulse of height N.
	y := []complex128{1, 1, 1, 1}
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(y[0]-4) > 1e-12 || cmplx.Abs(y[1]) > 1e-12 {
		t.Fatalf("constant FFT = %v", y)
	}
	// Single complex tone lands in one bin.
	n := 16
	tone := make([]complex128, n)
	for i := range tone {
		th := 2 * math.Pi * 3 * float64(i) / float64(n)
		tone[i] = cmplx.Exp(complex(0, th))
	}
	if err := FFT(tone); err != nil {
		t.Fatal(err)
	}
	for i, v := range tone {
		want := 0.0
		if i == 3 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("tone bin %d magnitude %g, want %g", i, cmplx.Abs(v), want)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (1 + r.Intn(9)) // 2..1024
		x := randVec(r, n)
		orig := make([]complex128, n)
		copy(orig, x)
		if err := FFT(x); err != nil {
			return false
		}
		if err := IFFT(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParseval(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := randVec(r, 64)
	var te float64
	for _, v := range x {
		te += real(v)*real(v) + imag(v)*imag(v)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var fe float64
	for _, v := range x {
		fe += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(fe/64-te) > 1e-9*te {
		t.Fatalf("Parseval violated: time %g vs freq/N %g", te, fe/64)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 48)); err == nil {
		t.Fatal("length 48 accepted")
	}
	if err := IFFT(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCarrierMaps(t *testing.T) {
	if len(DataCarriers) != NumData {
		t.Fatalf("%d data carriers", len(DataCarriers))
	}
	seen := map[int]bool{0: true} // DC must stay empty
	for _, b := range DataCarriers {
		if seen[b] {
			t.Fatalf("bin %d reused", b)
		}
		seen[b] = true
	}
	for _, b := range PilotCarriers {
		if seen[b] {
			t.Fatalf("pilot bin %d collides", b)
		}
		seen[b] = true
	}
}

func TestModulateDemodulateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := randVec(r, NumData)
	sym, err := Modulate(nil, data, StandardPilots)
	if err != nil {
		t.Fatal(err)
	}
	if len(sym) != SymbolLen {
		t.Fatalf("symbol length %d", len(sym))
	}
	// Cyclic prefix property: first CPLen samples repeat the tail.
	for i := 0; i < CPLen; i++ {
		if cmplx.Abs(sym[i]-sym[NFFT+i]) > 1e-12 {
			t.Fatalf("CP sample %d mismatched", i)
		}
	}
	got := make([]complex128, NumData)
	pilots := make([]complex128, NumPilots)
	if err := Demodulate(got, pilots, sym); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if cmplx.Abs(got[i]-data[i]) > 1e-9 {
			t.Fatalf("data %d: got %v want %v", i, got[i], data[i])
		}
	}
	for i := range pilots {
		if cmplx.Abs(pilots[i]-StandardPilots[i]) > 1e-9 {
			t.Fatalf("pilot %d: got %v", i, pilots[i])
		}
	}
}

func TestModulateValidation(t *testing.T) {
	if _, err := Modulate(nil, make([]complex128, 47), StandardPilots); err == nil {
		t.Fatal("short data accepted")
	}
	if _, err := Modulate(make([]complex128, 79), make([]complex128, NumData), StandardPilots); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := Demodulate(make([]complex128, NumData), nil, make([]complex128, 10)); err == nil {
		t.Fatal("short symbol accepted")
	}
	if err := Demodulate(make([]complex128, 3), nil, make([]complex128, SymbolLen)); err == nil {
		t.Fatal("short data buffer accepted")
	}
}

func TestEstimateChannelLS(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ref := PreambleSymbol()
	// Apply a random per-subcarrier channel and verify recovery.
	ch := randVec(r, NumData)
	rx := make([]complex128, NumData)
	for i := range rx {
		rx[i] = ch[i] * ref[i]
	}
	est := make([]complex128, NumData)
	if err := EstimateChannelLS(est, rx, ref); err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if cmplx.Abs(est[i]-ch[i]) > 1e-12 {
			t.Fatalf("subcarrier %d: est %v want %v", i, est[i], ch[i])
		}
	}
	bad := make([]complex128, NumData)
	if err := EstimateChannelLS(est, rx, bad); err == nil {
		t.Fatal("zero reference accepted")
	}
}

func TestPreambleSymbolIsUnitMagnitude(t *testing.T) {
	for i, v := range PreambleSymbol() {
		if cmplx.Abs(v) != 1 {
			t.Fatalf("preamble bin %d magnitude %g", i, cmplx.Abs(v))
		}
	}
}

// TestOFDMOverMultipathChannel is the integration property that makes
// OFDM worth using: a time-domain multipath convolution (shorter than
// the CP) becomes a per-subcarrier complex scalar in frequency.
func TestOFDMOverMultipathChannel(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := randVec(r, NumData)
	sym, err := Modulate(nil, data, StandardPilots)
	if err != nil {
		t.Fatal(err)
	}
	// 3-tap channel within the CP.
	taps := []complex128{complex(0.8, 0.1), complex(0.3, -0.2), complex(0.1, 0.05)}
	rx := make([]complex128, SymbolLen)
	// Circular behaviour is guaranteed by the CP for delays < CPLen:
	// convolve and keep the SymbolLen window (previous symbol assumed
	// silent, which only perturbs the CP we discard).
	for n := 0; n < SymbolLen; n++ {
		var s complex128
		for d, tap := range taps {
			if n-d >= 0 {
				s += tap * sym[n-d]
			}
		}
		rx[n] = s
	}
	got := make([]complex128, NumData)
	if err := Demodulate(got, nil, rx); err != nil {
		t.Fatal(err)
	}
	// Expected per-subcarrier gain: tap DFT at that bin.
	for i, b := range DataCarriers {
		var gain complex128
		for d, tap := range taps {
			th := -2 * math.Pi * float64(b*d) / float64(NFFT)
			gain += tap * cmplx.Exp(complex(0, th))
		}
		if cmplx.Abs(got[i]-gain*data[i]) > 1e-9 {
			t.Fatalf("subcarrier %d (bin %d): got %v want %v", i, b, got[i], gain*data[i])
		}
	}
}
