package ofdm

import (
	"fmt"
)

// 20 MHz 802.11-style OFDM numerology (§4).
const (
	// NFFT is the FFT size.
	NFFT = 64
	// CPLen is the cyclic-prefix length in samples.
	CPLen = 16
	// SymbolLen is the total time-domain symbol length.
	SymbolLen = NFFT + CPLen
	// NumData is the number of data subcarriers per symbol.
	NumData = 48
	// NumPilots is the number of pilot subcarriers per symbol.
	NumPilots = 4
	// SymbolDuration is the 20 MHz OFDM symbol duration in seconds
	// (3.2 µs useful + 0.8 µs cyclic prefix).
	SymbolDuration = 4e-6
)

// DataCarriers lists the FFT bin of each of the 48 data subcarriers in
// logical order; PilotCarriers the 4 pilot bins (±7, ±21).
var (
	DataCarriers  []int
	PilotCarriers = []int{bin(-21), bin(-7), bin(7), bin(21)}
)

// bin maps a signed subcarrier index to its FFT bin.
func bin(k int) int {
	if k < 0 {
		return NFFT + k
	}
	return k
}

func init() {
	for k := -26; k <= 26; k++ {
		switch k {
		case 0, -7, 7, -21, 21:
			continue
		}
		DataCarriers = append(DataCarriers, bin(k))
	}
	if len(DataCarriers) != NumData {
		panic("ofdm: data carrier map inconsistent")
	}
}

// StandardPilots is the fixed pilot polarity used by the transmitter.
var StandardPilots = [NumPilots]complex128{1, 1, 1, -1}

// Modulate assembles one time-domain OFDM symbol (with cyclic prefix)
// from 48 frequency-domain data symbols and the pilot values. dst must
// be nil or have SymbolLen capacity; the returned slice has SymbolLen
// samples.
func Modulate(dst []complex128, data []complex128, pilots [NumPilots]complex128) ([]complex128, error) {
	if len(data) != NumData {
		return nil, fmt.Errorf("ofdm: %d data symbols, want %d", len(data), NumData)
	}
	if dst == nil {
		dst = make([]complex128, SymbolLen)
	} else if len(dst) != SymbolLen {
		return nil, fmt.Errorf("ofdm: dst has %d samples, want %d", len(dst), SymbolLen)
	}
	freq := dst[CPLen:] // build the spectrum in place, then IFFT
	for i := range freq {
		freq[i] = 0
	}
	for i, b := range DataCarriers {
		freq[b] = data[i]
	}
	for i, b := range PilotCarriers {
		freq[b] = pilots[i]
	}
	if err := IFFT(freq); err != nil {
		return nil, err
	}
	copy(dst[:CPLen], freq[NFFT-CPLen:])
	return dst, nil
}

// Demodulate strips the cyclic prefix, FFTs, and extracts the data and
// pilot bins from one received OFDM symbol of SymbolLen samples.
// pilots may be nil if the caller does not need them.
func Demodulate(data []complex128, pilots []complex128, samples []complex128) error {
	if len(samples) != SymbolLen {
		return fmt.Errorf("ofdm: symbol has %d samples, want %d", len(samples), SymbolLen)
	}
	if len(data) != NumData {
		return fmt.Errorf("ofdm: data buffer has %d entries, want %d", len(data), NumData)
	}
	if pilots != nil && len(pilots) != NumPilots {
		return fmt.Errorf("ofdm: pilot buffer has %d entries, want %d", len(pilots), NumPilots)
	}
	var freq [NFFT]complex128
	copy(freq[:], samples[CPLen:])
	if err := FFT(freq[:]); err != nil {
		return err
	}
	for i, b := range DataCarriers {
		data[i] = freq[b]
	}
	if pilots != nil {
		for i, b := range PilotCarriers {
			pilots[i] = freq[b]
		}
	}
	return nil
}

// PreambleSymbol returns the known full-band training symbol used for
// least-squares channel estimation: unit-magnitude BPSK-like values
// with deterministic sign pattern on every data and pilot bin.
func PreambleSymbol() []complex128 {
	data := make([]complex128, NumData)
	for i := range data {
		// Alternating-sign pattern with period 3 avoids a large
		// time-domain peak while staying deterministic.
		if (i*2+i/3)%2 == 0 {
			data[i] = 1
		} else {
			data[i] = -1
		}
	}
	return data
}

// EstimateChannelLS least-squares-estimates per-subcarrier scalar
// channels from one received preamble: est[i] = rx[i]/ref[i] over the
// 48 data bins.
func EstimateChannelLS(est, rx, ref []complex128) error {
	if len(est) != NumData || len(rx) != NumData || len(ref) != NumData {
		return fmt.Errorf("ofdm: channel estimate buffers must have %d entries", NumData)
	}
	for i := range est {
		if ref[i] == 0 {
			return fmt.Errorf("ofdm: preamble reference is zero at data bin %d", i)
		}
		est[i] = rx[i] / ref[i]
	}
	return nil
}
