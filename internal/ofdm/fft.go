// Package ofdm implements the 20 MHz 802.11-style OFDM layer of the
// implementation section (§4): a radix-2 FFT, 64-subcarrier symbol
// assembly with 48 data and 4 pilot subcarriers, cyclic prefix
// handling, and least-squares channel estimation from a known
// preamble. MIMO detection operates per data subcarrier on the
// frequency-domain symbols this package produces.
package ofdm

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x,
// whose length must be a power of two.
func FFT(x []complex128) error {
	return fft(x, false)
}

// IFFT computes the in-place inverse FFT (with 1/N scaling).
func IFFT(x []complex128) error {
	return fft(x, true)
}

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("ofdm: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}
