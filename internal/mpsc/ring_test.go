package mpsc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRingFIFO(t *testing.T) {
	r := New[int](4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if err := r.TryPush(i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := r.TryPush(99); !errors.Is(err, ErrFull) {
		t.Fatalf("push into full ring: %v", err)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	// Laps reuse slots.
	for lap := 0; lap < 3; lap++ {
		for i := 0; i < 3; i++ {
			if err := r.TryPush(lap*10 + i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			if v, ok := r.TryPop(); !ok || v != lap*10+i {
				t.Fatalf("lap %d pop %d = %d, %v", lap, i, v, ok)
			}
		}
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {100, 128},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestRingMinCapacityFullness is the regression test for the
// one-slot ambiguity that forces the minimum capacity of 2: at every
// point of a push/pop lap pattern, a push into a logically full ring
// must shed with ErrFull, never claim a slot holding an unconsumed
// item (which would silently drop it).
func TestRingMinCapacityFullness(t *testing.T) {
	r := New[int](1) // rounds up to the minimum of 2
	if r.Cap() != 2 {
		t.Fatalf("cap = %d, want 2", r.Cap())
	}
	for lap := 0; lap < 5; lap++ {
		base := lap * 10
		if err := r.TryPush(base); err != nil {
			t.Fatal(err)
		}
		if err := r.TryPush(base + 1); err != nil {
			t.Fatal(err)
		}
		if err := r.TryPush(base + 2); !errors.Is(err, ErrFull) {
			t.Fatalf("lap %d: push into full ring: %v", lap, err)
		}
		if v, ok := r.TryPop(); !ok || v != base {
			t.Fatalf("lap %d: pop = %d, %v", lap, v, ok)
		}
		if err := r.TryPush(base + 3); err != nil {
			t.Fatal(err)
		}
		if err := r.TryPush(base + 4); !errors.Is(err, ErrFull) {
			t.Fatalf("lap %d: push into refilled ring: %v", lap, err)
		}
		if v, ok := r.TryPop(); !ok || v != base+1 {
			t.Fatalf("lap %d: pop = %d, %v", lap, v, ok)
		}
		if v, ok := r.TryPop(); !ok || v != base+3 {
			t.Fatalf("lap %d: pop = %d, %v", lap, v, ok)
		}
		if _, ok := r.TryPop(); ok {
			t.Fatalf("lap %d: pop from empty ring succeeded", lap)
		}
	}
}

func TestRingClose(t *testing.T) {
	r := New[int](2)
	if err := r.TryPush(1); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if err := r.TryPush(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v", err)
	}
	// The admitted item survives close for the final drain, and Wait
	// reports closure immediately.
	if ok := r.Wait(); ok {
		// A pre-close wakeup token may pend; the next Wait must report
		// closure.
		if r.Wait() {
			t.Fatal("Wait kept returning true after Close")
		}
	}
	if v, ok := r.TryPop(); !ok || v != 1 {
		t.Fatalf("final drain lost the admitted item: %d, %v", v, ok)
	}
}

// TestRingHammer is the race-detector workout of the ISSUE's checklist:
// many concurrent producers against the single consumer, queue-full
// shedding, and a close/drain handoff. Every successfully pushed value
// must be popped exactly once, in per-producer order.
func TestRingHammer(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	r := New[[2]int](64)
	var pushed [producers][]int
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if err := r.TryPush([2]int{p, i}); err == nil {
					pushed[p] = append(pushed[p], i)
				}
				_ = r.Len() // exercise the producer-side occupancy read
			}
		}(p)
	}

	var popped [producers][]int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			for {
				v, ok := r.TryPop()
				if !ok {
					break
				}
				popped[v[0]] = append(popped[v[0]], v[1])
			}
			if !r.Wait() {
				for {
					v, ok := r.TryPop()
					if !ok {
						return
					}
					popped[v[0]] = append(popped[v[0]], v[1])
				}
			}
		}
	}()

	wg.Wait()
	r.Close()
	<-done

	for p := 0; p < producers; p++ {
		if len(popped[p]) != len(pushed[p]) {
			t.Fatalf("producer %d: pushed %d, popped %d", p, len(pushed[p]), len(popped[p]))
		}
		for i := range pushed[p] {
			if popped[p][i] != pushed[p][i] {
				t.Fatalf("producer %d item %d: popped %d, want %d (order broken)",
					p, i, popped[p][i], pushed[p][i])
			}
		}
	}
}

// TestRingCloseRace hammers Close against in-flight producers: the
// RWMutex serialization must guarantee that every push that returned
// nil is drained, and every push after Close fails with ErrClosed.
func TestRingCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		r := New[int](8)
		var admitted atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					if err := r.TryPush(i); err == nil {
						admitted.Add(1)
					} else if errors.Is(err, ErrClosed) {
						return
					}
				}
			}()
		}
		var drained int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				for {
					if _, ok := r.TryPop(); !ok {
						break
					}
					drained++
				}
				if !r.Wait() {
					for {
						if _, ok := r.TryPop(); !ok {
							return
						}
						drained++
					}
				}
			}
		}()
		close(start)
		if round%2 == 0 {
			r.Close() // close racing the producers
			wg.Wait()
		} else {
			wg.Wait()
			r.Close()
		}
		<-done
		if drained != admitted.Load() {
			t.Fatalf("round %d: admitted %d, drained %d", round, admitted.Load(), drained)
		}
	}
}
