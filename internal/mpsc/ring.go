// Package mpsc is the serving layer's admission queue: a bounded
// multi-producer single-consumer ring buffer with batched consumer
// wakeups. Producers admit with a cheap CAS/append (TryPush) that never
// blocks — a full ring sheds instead of queueing unboundedly — and the
// single consumer drains as many items as it likes per wakeup, so the
// per-item cost of waking a goroutine amortizes across a batch.
//
// The slot protocol is the classic sequence-stamped bounded queue: each
// cell carries a sequence number; a producer claims cell tail%cap by
// CASing tail forward when the cell's sequence says it is free, writes
// the value, and publishes by bumping the sequence; the consumer reads
// the cell when the sequence says it is full and releases it one lap
// ahead. Claim and publish are separate steps, so a consumer that
// catches a cell mid-write simply sees it as not-ready — the producer's
// wakeup signal (sent after publish) guarantees the item is noticed.
//
// Close is serialized against producers with an RWMutex (producers
// share the read side, so admission stays concurrent): once Close
// returns, no further TryPush succeeds, and every item admitted before
// Close is still in the ring for the consumer's final drain. That is
// the serving layer's "every admitted frame completes" guarantee.
//
//geolint:concurrent
package mpsc

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Typed sentinel errors of the admission path.
var (
	// ErrFull reports a TryPush against a ring with no free slot — the
	// admission-control shed signal.
	ErrFull = errors.New("mpsc: ring full")
	// ErrClosed reports a TryPush after Close.
	ErrClosed = errors.New("mpsc: ring closed")
)

// slot is one ring cell: the sequence stamp that carries the claim/
// publish/consume protocol, and the value itself.
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// Ring is a bounded MPSC ring buffer. Any number of producers may call
// TryPush and Len concurrently; TryPop, Wait and the unguarded head
// cursor belong to exactly one consumer goroutine.
type Ring[T any] struct {
	mask  uint64
	slots []slot[T]

	// tail is the producers' claim cursor; head the consumer's release
	// cursor, mirrored in headPub so producers can read the fill level
	// without touching the consumer's cache line protocol.
	tail    atomic.Uint64
	headPub atomic.Uint64
	// head is the consumer's private cursor. Only the single consumer
	// goroutine reads or writes it; producers observe headPub instead.
	head uint64

	// wake is the batched wakeup channel (capacity 1): producers signal
	// it non-blockingly after every publish, coalescing any number of
	// pushes into at most one pending wakeup; Close closes it.
	wake chan struct{}

	// mu serializes Close against in-flight pushes: producers hold the
	// read side across the closed check and the slot claim, so after
	// Close's write lock no admission can race the final drain.
	mu     sync.RWMutex
	closed bool
}

// New returns a ring with at least the requested capacity, rounded up
// to the next power of two. The minimum is 2: in a one-slot ring the
// published-item marker (pos+1) is indistinguishable from the next
// lap's free marker (pos+cap), so a producer could claim a slot still
// holding an unconsumed item.
func New[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring[T]{
		mask:  uint64(n - 1),
		slots: make([]slot[T], n),
		wake:  make(chan struct{}, 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Len returns the current fill level: items admitted and not yet
// popped. It is a racy snapshot by nature — producers and the consumer
// keep moving — which is exactly what an occupancy-based load proxy
// wants.
func (r *Ring[T]) Len() int {
	t, h := r.tail.Load(), r.headPub.Load()
	if t < h {
		return 0
	}
	n := t - h
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	return int(n)
}

// TryPush admits v without blocking: ErrFull when no slot is free (the
// shed path), ErrClosed after Close, nil on success. Safe for any
// number of concurrent producers.
func (r *Ring[T]) TryPush(v T) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return ErrClosed
	}
	pos := r.tail.Load()
	for {
		s := &r.slots[pos&r.mask]
		switch seq := s.seq.Load(); {
		case seq == pos:
			// The slot is free at this lap; claim it by advancing tail.
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1) // publish
				// Batched wakeup: at most one signal pends regardless of
				// how many producers land between consumer drains.
				select {
				case r.wake <- struct{}{}:
				default:
				}
				return nil
			}
			pos = r.tail.Load() // lost the race; re-read and retry
		case seq < pos:
			// The slot still holds the previous lap's item: the ring is
			// full. tail-head could legally disagree for an instant, but
			// the slot's own sequence is authoritative.
			return ErrFull
		default:
			// Another producer claimed this position; move past it.
			pos = r.tail.Load()
		}
	}
}

// TryPop removes the oldest item, or reports false when the ring is
// empty (or its head slot is claimed but not yet published — the
// producer's post-publish wakeup re-arms the consumer). Consumer-only.
func (r *Ring[T]) TryPop() (T, bool) {
	var zero T
	pos := r.head
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return zero, false
	}
	v := s.val
	s.val = zero // drop the reference; outcomes can be large
	// Release the slot for the next lap, then publish the new head for
	// producer-side Len readers.
	s.seq.Store(pos + r.mask + 1)
	r.head = pos + 1 //geolint:sync-ok head is the single consumer's private cursor: only the consumer goroutine touches it, producers read the headPub atomic mirror instead
	r.headPub.Store(pos + 1)
	return v, true
}

// Wait blocks until a producer signals new items or the ring is
// closed; it returns false exactly once the ring is closed (drain the
// ring one final time after that, then stop). Consumer-only. Signals
// are coalesced, so after a true return the consumer must drain until
// TryPop reports empty before waiting again.
func (r *Ring[T]) Wait() bool {
	_, ok := <-r.wake
	return ok
}

// Close stops admission: it waits out in-flight pushes, marks the ring
// closed (every later TryPush returns ErrClosed), and wakes the
// consumer permanently (Wait returns false forever). Items admitted
// before Close remain in the ring for the consumer's final drain.
// Close is idempotent.
func (r *Ring[T]) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	close(r.wake)
}
