package kbest

import (
	"sort"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/rng"
)

func scenario(src *rng.Source, cons *constellation.Constellation, na, nc int, snrdB float64) (*cmplxmat.Matrix, []int, []complex128) {
	h := channel.Rayleigh(src, na, nc)
	xi := make([]int, nc)
	xs := make([]complex128, nc)
	for i := range xs {
		xi[i] = src.Intn(cons.Size())
		xs[i] = cons.PointIndex(xi[i])
	}
	y := channel.Transmit(nil, src, h, xs, channel.NoiseVarForSNRdB(snrdB))
	return h, xi, y
}

func vectorDistance(h *cmplxmat.Matrix, y []complex128, cons *constellation.Constellation, idx []int) float64 {
	var dist float64
	for r := 0; r < h.Rows; r++ {
		row := h.Row(r)
		acc := y[r]
		for c, ix := range idx {
			acc -= row[c] * cons.PointIndex(ix)
		}
		dist += real(acc)*real(acc) + imag(acc)*imag(acc)
	}
	return dist
}

// TestKBestFullWidthIsML: with K = |O|^nc the K-best decoder keeps
// everything and must equal the ML solution.
func TestKBestFullWidthIsML(t *testing.T) {
	cons := constellation.QPSK
	src := rng.New(1)
	d, err := NewKBest(cons, 16)
	if err != nil {
		t.Fatal(err)
	}
	ml := core.NewML(cons)
	for trial := 0; trial < 30; trial++ {
		h, _, y := scenario(src, cons, 2, 2, 8)
		if err := d.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if err := ml.Prepare(h); err != nil {
			t.Fatal(err)
		}
		got, err := d.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ml.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		gd := vectorDistance(h, y, cons, got)
		wd := vectorDistance(h, y, cons, want)
		if gd > wd*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: K-best distance %g worse than ML %g", trial, gd, wd)
		}
	}
}

// TestKBestNarrowIsSuboptimal: with K=1 the decoder degenerates to
// decision feedback and must lose to ML on noisy channels — the §6.1
// argument that K must grow with the constellation.
func TestKBestNarrowIsSuboptimal(t *testing.T) {
	cons := constellation.QAM16
	src := rng.New(2)
	d, err := NewKBest(cons, 1)
	if err != nil {
		t.Fatal(err)
	}
	ml := core.NewML(cons)
	worse := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		h, _, y := scenario(src, cons, 2, 2, 10)
		if err := d.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if err := ml.Prepare(h); err != nil {
			t.Fatal(err)
		}
		got, _ := d.Detect(nil, y)
		want, _ := ml.Detect(nil, y)
		if vectorDistance(h, y, cons, got) > vectorDistance(h, y, cons, want)*(1+1e-9) {
			worse++
		}
	}
	if worse == 0 {
		t.Fatal("K=1 never lost to ML over 200 noisy trials; decoder suspiciously optimal")
	}
}

// TestKBestComplexityBounded pins the fixed-complexity property the
// adaptive scheduler's bounded tier relies on: the survivor count per
// level is an exact function of the shape, and the lazy merge never
// evaluates more than ~3K children per level regardless of channel
// conditioning — unlike depth-first search, whose node count diverges
// on ill-conditioned channels.
func TestKBestComplexityBounded(t *testing.T) {
	cons := constellation.QAM16
	src := rng.New(3)
	const k, nc = 4, 4
	d, err := NewKBest(cons, k)
	if err != nil {
		t.Fatal(err)
	}
	var visited []int64
	for trial := 0; trial < 5; trial++ {
		h, _, y := scenario(src, cons, 4, nc, 20)
		d.ResetStats()
		if err := d.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Detect(nil, y); err != nil {
			t.Fatal(err)
		}
		visited = append(visited, d.Stats().VisitedNodes)
		if got, cap := d.Stats().PEDCalcs, int64(3*k*nc); got > cap {
			t.Fatalf("trial %d: %d PED evaluations exceed the %d lazy-merge bound", trial, got, cap)
		}
	}
	for _, v := range visited[1:] {
		if v != visited[0] {
			t.Fatalf("K-best survivor count varied across channels: %v", visited)
		}
	}
}

// fullExpansionKBest is the textbook reference: expand every child of
// every survivor, sort by (PED, generation order), keep K. The lazy
// merge must reproduce its decisions exactly.
func fullExpansionKBest(cons *constellation.Constellation, k int, h *cmplxmat.Matrix, y []complex128) []int {
	qr := cmplxmat.QRDecompose(h)
	nc := h.Cols
	yhat := make([]complex128, nc)
	qr.ApplyQConjT(yhat, y)
	type cand struct {
		path []int // position p holds level nc−1−p
		ped  float64
	}
	cur := []cand{{path: []int{}, ped: 0}}
	for l := nc - 1; l >= 0; l-- {
		rll := qr.R.At(l, l)
		row := qr.R.Row(l)
		var next []cand
		for _, c := range cur {
			s := yhat[l]
			for j := l + 1; j < nc; j++ {
				s -= row[j] * cons.PointIndex(c.path[nc-1-j])
			}
			for pt := 0; pt < cons.Size(); pt++ {
				diff := s - rll*cons.PointIndex(pt)
				path := append(append([]int{}, c.path...), pt)
				next = append(next, cand{path: path, ped: c.ped + real(diff)*real(diff) + imag(diff)*imag(diff)})
			}
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].ped < next[j].ped })
		if len(next) > k {
			next = next[:k]
		}
		cur = next
	}
	dst := make([]int, nc)
	for pos, pt := range cur[0].path {
		dst[nc-1-pos] = pt
	}
	return dst
}

// TestKBestMatchesFullExpansion checks the lazy Schnorr-Euchner merge
// against the full-expansion reference over random channels spanning
// well- to ill-conditioned, for several K and constellation densities.
func TestKBestMatchesFullExpansion(t *testing.T) {
	src := rng.New(11)
	for _, cons := range []*constellation.Constellation{constellation.QPSK, constellation.QAM16, constellation.QAM64} {
		for _, k := range []int{1, 3, 8} {
			d, err := NewKBest(cons, k)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 40; trial++ {
				h, _, y := scenario(src, cons, 4, 4, 15+float64(trial%3)*6)
				if err := d.Prepare(h); err != nil {
					t.Fatal(err)
				}
				got, err := d.Detect(nil, y)
				if err != nil {
					t.Fatal(err)
				}
				want := fullExpansionKBest(cons, k, h, y)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s K=%d trial %d: lazy merge decided %v, full expansion %v", cons.Name(), k, trial, got, want)
					}
				}
			}
		}
	}
}

func TestFCSDZeroLevelsIsDecisionFeedback(t *testing.T) {
	cons := constellation.QAM16
	src := rng.New(4)
	d, err := NewFCSD(cons, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		h, sent, y := scenario(src, cons, 4, 2, 200)
		if err := d.Prepare(h); err != nil {
			t.Fatal(err)
		}
		got, err := d.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sent {
			if got[i] != sent[i] {
				t.Fatalf("noiseless decision feedback failed at stream %d", i)
			}
		}
	}
}

// TestFCSDApproachesML: with one fully expanded level the FCSD result
// is usually the ML answer at high SNR, and its complexity is exactly
// |O| leaf completions per detection.
func TestFCSDApproachesML(t *testing.T) {
	cons := constellation.QAM16
	src := rng.New(5)
	d, err := NewFCSD(cons, 1)
	if err != nil {
		t.Fatal(err)
	}
	ml := core.NewML(cons)
	match := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		h, _, y := scenario(src, cons, 4, 2, 25)
		if err := d.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if err := ml.Prepare(h); err != nil {
			t.Fatal(err)
		}
		got, _ := d.Detect(nil, y)
		want, _ := ml.Detect(nil, y)
		if got[0] == want[0] && got[1] == want[1] {
			match++
		}
	}
	if match < 90 {
		t.Fatalf("FCSD matched ML only %d/%d times at 25 dB", match, trials)
	}
	if leaves := d.Stats().Leaves; leaves != int64(trials*cons.Size()) {
		t.Fatalf("FCSD leaves %d, want fixed %d", leaves, trials*cons.Size())
	}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewKBest(constellation.QPSK, 0); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewFCSD(constellation.QPSK, -1); err == nil {
		t.Fatal("negative levels accepted")
	}
	d, _ := NewFCSD(constellation.QPSK, 5)
	src := rng.New(6)
	if err := d.Prepare(channel.Rayleigh(src, 4, 2)); err == nil {
		t.Fatal("fullLevels > streams accepted")
	}
}

func TestDetectValidation(t *testing.T) {
	src := rng.New(7)
	cons := constellation.QPSK
	kb, _ := NewKBest(cons, 2)
	fc, _ := NewFCSD(cons, 1)
	for _, d := range []core.Detector{kb, fc} {
		if _, err := d.Detect(nil, []complex128{1}); err == nil {
			t.Fatalf("%s: Detect before Prepare accepted", d.Name())
		}
		h := channel.Rayleigh(src, 4, 2)
		if err := d.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Detect(nil, make([]complex128, 3)); err == nil {
			t.Fatalf("%s: wrong-length y accepted", d.Name())
		}
		if _, err := d.Detect(make([]int, 1), make([]complex128, 4)); err == nil {
			t.Fatalf("%s: wrong-length dst accepted", d.Name())
		}
		if err := d.Prepare(channel.Rayleigh(src, 2, 4)); err == nil {
			t.Fatalf("%s: wide channel accepted", d.Name())
		}
	}
}
