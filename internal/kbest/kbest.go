// Package kbest implements the breadth-first baselines surveyed in
// §6.1: the K-best sphere decoder and the fixed-complexity sphere
// decoder (FCSD). Both trade the exact maximum-likelihood guarantee of
// depth-first search for a fixed, parallelizable amount of work; the
// paper's related-work discussion (and our ablation benches) show why
// that trade is a poor fit for dense constellations.
package kbest

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
)

// KBest is a breadth-first decoder that retains the K lowest-distance
// partial paths at every tree level. K must grow with constellation
// density to stay near maximum likelihood, which is exactly the
// scaling problem §6.1 describes.
//
// Survivor selection is a lazy Schnorr-Euchner merge rather than a
// full expansion: each parent's children factor into per-row column
// streams that are sorted by construction (the row/column PAM
// decomposition of Figure 4), the level's K best children are drawn
// from a min-heap over the stream heads, and rows are opened lazily in
// increasing row distance — their heads are dominated by the open ones
// until then. A level therefore evaluates at most ~3K partial
// distances instead of K·|O|, which is what makes K-best usable as the
// bounded-cost tier of the condition-adaptive scheduler on dense
// constellations.
type KBest struct {
	cons *constellation.Constellation
	k    int

	h     *cmplxmat.Matrix
	qr    *cmplxmat.QR
	ownQR cmplxmat.QR // workspace backing plain Prepare calls
	perm  []int       // QR column → original stream, factors mode only
	nc    int
	stats core.Stats

	yhat []complex128
	// Breadth-first scratch, sized once per shape: survivor paths live
	// in flat stride-nc index arrays (path position p holds the symbol
	// of tree level nc−1−p) with parallel PED arrays; cur and next swap
	// every level — the steady-state Detect allocates nothing.
	curIdx  []int // ≤ k survivor paths, stride nc
	nextIdx []int // ≤ k selected children, stride nc
	curPED  []float64
	nextPED []float64
	parents []kParent // per-survivor expansion state for one level
	heap    []kStream // merge heap over per-(parent,row) column streams
	nextPar []int     // selected child → parent survivor
	nextPt  []int     // selected child → constellation point
}

// kParent is one survivor's expansion state at the current level: the
// normalized target t = s/r_ll its children are measured against, the
// accumulated distance of its path, and the zigzag frontier over row
// (Q-axis) PAM lines.
type kParent struct {
	tr, ti float64
	a2     float64 // |r_ll|²
	base   float64
	cdist2 float64 // squared I-axis distance of the nearest column
	col0   int32   // nearest I-axis PAM line to tr
	rowLo  int32   // consumed row window [rowLo, rowHi]
	rowHi  int32
}

// kStream is one heap entry: the head of a (parent, row) column
// stream. ped/ord order the heap (ord is the parent-major generation
// index, matching the tie-break of a full sorted expansion); colLo and
// colHi track the consumed column window of this stream.
type kStream struct {
	ped    float64
	rdist2 float64
	ord    int32
	parent int32
	row    int32 // Q-axis PAM line of this stream
	col    int32 // current head's I-axis PAM line
	colLo  int32 // consumed column window [colLo, colHi]
	colHi  int32
	first  bool // head not yet popped; popping it opens the next row
}

var _ core.Detector = (*KBest)(nil)
var _ core.Counter = (*KBest)(nil)

// NewKBest returns a K-best decoder keeping k survivors per level.
func NewKBest(cons *constellation.Constellation, k int) (*KBest, error) {
	if k <= 0 {
		return nil, fmt.Errorf("kbest: K must be positive, got %d", k)
	}
	return &KBest{cons: cons, k: k}, nil
}

// Name implements core.Detector.
func (d *KBest) Name() string { return fmt.Sprintf("K-best(K=%d)", d.k) }

// Constellation implements core.Detector.
func (d *KBest) Constellation() *constellation.Constellation { return d.cons }

// Stats implements core.Counter.
func (d *KBest) Stats() core.Stats { return d.stats }

// ResetStats implements core.Counter.
func (d *KBest) ResetStats() { d.stats = core.Stats{} }

// Prepare implements core.Detector. The factorization fills the
// decoder-owned workspace (QRDecomposeInto is bitwise QRDecompose), so
// re-preparing a same-shaped channel allocates nothing.
func (d *KBest) Prepare(h *cmplxmat.Matrix) error {
	if h == nil {
		return core.ErrNotPrepared
	}
	if h.Rows < h.Cols {
		return fmt.Errorf("kbest: need na ≥ nc, got %d×%d channel", h.Rows, h.Cols)
	}
	d.h = h
	cmplxmat.QRDecomposeInto(&d.ownQR, h)
	d.qr = &d.ownQR
	d.perm = nil
	d.nc = h.Cols
	d.sizeScratch(h.Cols)
	return nil
}

var _ core.SharedPreparer = (*KBest)(nil)

// PrepareShared implements core.SharedPreparer: the K-best search runs
// on the pool's cached plain thin QR of h — the same derivation the
// unordered sphere decoders cache, and bitwise the factorization
// Prepare would compute itself (QRDecomposeInto is deterministic on
// identical input bits) — so decisions are identical to Prepare's and
// a group whose frames alternate between the sphere and K-best tiers
// never pays a second factorization.
//
//geolint:noalloc
func (d *KBest) PrepareShared(pc *core.PreparedChannel, h *cmplxmat.Matrix) (bool, error) {
	if h == nil {
		return false, core.ErrNotPrepared
	}
	if h.Rows < h.Cols {
		//geolint:alloc-ok error path
		return false, fmt.Errorf("kbest: need na ≥ nc, got %d×%d channel", h.Rows, h.Cols)
	}
	hit, err := pc.PrepareQR(h)
	if err != nil {
		return false, err
	}
	d.h = h
	d.qr = pc.QRFactors()
	d.perm = nil
	d.nc = h.Cols
	d.sizeScratch(h.Cols)
	return hit, nil
}

// PrepareFactors attaches an externally computed thin-QR factorization
// of h instead of refactorizing: qr holds Q and R (of h's columns
// permuted by perm when perm is non-nil, with perm[l] naming the
// original stream of QR column l — the ordered-QR layout of
// core.PreparedChannel). Detect then reports decisions in original
// stream order. The adaptive scheduler uses this to run its K-best
// tier on the very factorization the sphere tier's preparation cache
// already built, so tiering down never costs a second QR.
//
//geolint:noalloc
func (d *KBest) PrepareFactors(h *cmplxmat.Matrix, qr *cmplxmat.QR, perm []int) error {
	if h == nil || qr == nil {
		return core.ErrNotPrepared
	}
	if h.Rows < h.Cols {
		//geolint:alloc-ok error path
		return fmt.Errorf("kbest: need na ≥ nc, got %d×%d channel", h.Rows, h.Cols)
	}
	if perm != nil && len(perm) != h.Cols {
		//geolint:alloc-ok error path
		return fmt.Errorf("kbest: perm has %d entries, want %d", len(perm), h.Cols)
	}
	d.h = h
	d.qr = qr
	d.perm = perm
	d.nc = h.Cols
	d.sizeScratch(h.Cols)
	return nil
}

// sizeScratch (re)sizes the breadth-first buffers for nc tree levels.
// Same-shape calls touch nothing but slice headers. Every buffer is
// O(K): the lazy merge never materializes the K·|O| expansion.
//
//geolint:noalloc
func (d *KBest) sizeScratch(nc int) {
	k := d.k
	if cap(d.yhat) < nc || cap(d.curIdx) < k*nc {
		d.yhat = make([]complex128, nc)    //geolint:alloc-ok first use or reshape only
		d.curIdx = make([]int, k*nc)       //geolint:alloc-ok first use or reshape only
		d.nextIdx = make([]int, k*nc)      //geolint:alloc-ok first use or reshape only
		d.curPED = make([]float64, k)      //geolint:alloc-ok first use or reshape only
		d.nextPED = make([]float64, k)     //geolint:alloc-ok first use or reshape only
		d.parents = make([]kParent, k)     //geolint:alloc-ok first use or reshape only
		d.heap = make([]kStream, 0, 2*k+1) //geolint:alloc-ok first use or reshape only
		d.nextPar = make([]int, k)         //geolint:alloc-ok first use or reshape only
		d.nextPt = make([]int, k)          //geolint:alloc-ok first use or reshape only
		return
	}
	d.yhat = d.yhat[:nc]
	d.curIdx = d.curIdx[:k*nc]
	d.nextIdx = d.nextIdx[:k*nc]
	d.curPED = d.curPED[:k]
	d.nextPED = d.nextPED[:k]
}

// Detect implements core.Detector. The steady-state path (non-nil dst,
// no errors) is allocation-free: expansions, PEDs and the survivor
// selection all run in preallocated scratch.
//
//geolint:noalloc
func (d *KBest) Detect(dst []int, y []complex128) ([]int, error) {
	if d.h == nil {
		return nil, core.ErrNotPrepared
	}
	if len(y) != d.h.Rows {
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("kbest: received vector has %d entries, channel has %d rows", len(y), d.h.Rows)
	}
	if dst == nil {
		dst = make([]int, d.nc) //geolint:alloc-ok one-time convenience path; steady state passes dst
	} else if len(dst) != d.nc {
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("kbest: dst has %d entries, want %d", len(dst), d.nc)
	}
	d.qr.ApplyQConjT(d.yhat, y)
	size := d.cons.Size()
	nc := d.nc
	nCur := 1
	d.curPED[0] = 0
	depth := 0 // filled path positions; position p holds level nc−1−p
	for l := nc - 1; l >= 0; l-- {
		rll := d.qr.R.At(l, l)
		row := d.qr.R.Row(l)
		// Per-parent expansion state: normalized target and the lazily
		// opened zigzag frontiers.
		a2 := real(rll)*real(rll) + imag(rll)*imag(rll)
		var invRll complex128
		if a2 > 0 {
			invRll = 1 / rll
		}
		for c := 0; c < nCur; c++ {
			path := d.curIdx[c*nc : c*nc+nc]
			// Interference-reduced target for this level.
			s := d.yhat[l]
			for j := l + 1; j < nc; j++ {
				s -= row[j] * d.cons.PointIndex(path[nc-1-j])
			}
			p := &d.parents[c]
			p.a2 = a2
			p.base = d.curPED[c]
			p.rowLo, p.rowHi = 1, 0 // empty window: no row opened yet
			if a2 > 0 {
				t := s * invRll
				p.tr, p.ti = real(t), imag(t)
			} else {
				// Rank-deficient diagonal: every child costs
				// base + |s|²; enumerate from the origin.
				p.tr, p.ti = 0, 0
				p.base += real(s)*real(s) + imag(s)*imag(s)
			}
			// Every row stream of this parent starts at the same nearest
			// column; slice it once here instead of per opened row.
			col0 := d.cons.SliceAxis(p.tr)
			dx := p.tr - d.cons.AxisCoord(col0)
			p.col0, p.cdist2 = int32(col0), dx*dx
		}
		keep := nCur * size
		if keep > d.k {
			keep = d.k
		}
		d.expandLevel(nCur, keep)
		// Materialize the selected children into the spare path buffer,
		// then promote it: child paths alias parent rows of curIdx, so
		// writing in place could clobber a parent still referenced by a
		// later child.
		for i := 0; i < keep; i++ {
			par := d.nextPar[i]
			np := d.nextIdx[i*nc : i*nc+nc]
			copy(np[:depth], d.curIdx[par*nc:par*nc+depth])
			np[depth] = d.nextPt[i]
		}
		d.curIdx, d.nextIdx = d.nextIdx, d.curIdx
		d.curPED, d.nextPED = d.nextPED, d.curPED
		d.stats.VisitedNodes += int64(keep)
		nCur = keep
		depth++
	}
	d.stats.Detections++
	d.stats.Leaves += int64(nCur)
	// The survivor buffer is sorted; position 0 is the decision. Paths
	// are stored top-of-tree first (level nc−1 at position 0); factors
	// mode additionally maps QR column l back to stream perm[l].
	best := d.curIdx[:nc]
	for pos, pt := range best {
		l := nc - 1 - pos
		if d.perm != nil {
			dst[d.perm[l]] = pt
		} else {
			dst[l] = pt
		}
	}
	return dst, nil
}

// expandLevel draws the keep best children of the nCur current
// survivors in ascending (PED, generation order), filling
// nextPED/nextPar/nextPt. It is an exact K-way merge: every (parent,
// row) pair is a column stream sorted by construction, the heap holds
// the active stream heads, advancing a popped stream re-inserts its
// next column, and a parent's next row is opened the first time one of
// its row heads pops — until then the unopened head is dominated by an
// in-heap entry, so laziness never changes the selection.
//
//geolint:noalloc
func (d *KBest) expandLevel(nCur, keep int) {
	d.heap = d.heap[:0]
	for c := 0; c < nCur; c++ {
		d.openNextRow(c)
	}
	for n := 0; n < keep; n++ {
		e := d.heap[0]
		d.nextPED[n] = e.ped
		d.nextPar[n] = int(e.parent)
		d.nextPt[n] = d.cons.Index(int(e.col), int(e.row))
		first := e.first
		p := &d.parents[e.parent]
		if col, lo, hi, ok := d.nextLine(int(e.colLo), int(e.colHi), p.tr); ok {
			// Advance the column stream in place: replacing the root and
			// sifting once costs half of a pop followed by a push.
			dx := p.tr - d.cons.AxisCoord(col)
			e.col, e.colLo, e.colHi = int32(col), int32(lo), int32(hi)
			e.ped = p.base + p.a2*(e.rdist2+dx*dx)
			e.ord = e.parent*int32(d.cons.Size()) + int32(d.cons.Index(col, int(e.row)))
			e.first = false
			d.stats.PEDCalcs++
			d.siftDown(e)
		} else {
			d.removeTop()
		}
		if first {
			d.openNextRow(int(e.parent))
		}
	}
}

// openNextRow opens parent c's next-nearest row (Q-axis line) as a
// fresh column stream and pushes its head. The first call slices the
// target's row; later calls advance the row zigzag frontier.
//
//geolint:noalloc
func (d *KBest) openNextRow(c int) {
	p := &d.parents[c]
	var row int
	if p.rowHi < p.rowLo {
		row = d.cons.SliceAxis(p.ti)
		p.rowLo, p.rowHi = int32(row), int32(row)
	} else {
		nrow, lo, hi, ok := d.nextLine(int(p.rowLo), int(p.rowHi), p.ti)
		if !ok {
			return
		}
		row = nrow
		p.rowLo, p.rowHi = int32(lo), int32(hi)
	}
	dy := p.ti - d.cons.AxisCoord(row)
	rdist2 := dy * dy
	d.stats.PEDCalcs++
	d.pushStream(kStream{
		ped:    p.base + p.a2*(rdist2+p.cdist2),
		rdist2: rdist2,
		ord:    int32(c*d.cons.Size() + d.cons.Index(int(p.col0), row)),
		parent: int32(c),
		row:    int32(row),
		col:    p.col0,
		colLo:  p.col0,
		colHi:  p.col0,
		first:  true,
	})
}

// nextLine advances a one-axis zigzag frontier: given the consumed
// window [lo, hi] around a target coordinate t, it returns the nearer
// of the two untried neighbouring PAM lines (ties toward the lower
// line) and the widened window.
func (d *KBest) nextLine(lo, hi int, t float64) (line, nlo, nhi int, ok bool) {
	below, above := lo > 0, hi < d.cons.Side()-1
	switch {
	case !below && !above:
		return 0, lo, hi, false
	case below && above:
		dl := t - d.cons.AxisCoord(lo-1)
		dh := d.cons.AxisCoord(hi+1) - t
		if dl*dl <= dh*dh {
			return lo - 1, lo - 1, hi, true
		}
		return hi + 1, lo, hi + 1, true
	case below:
		return lo - 1, lo - 1, hi, true
	default:
		return hi + 1, lo, hi + 1, true
	}
}

// streamLess orders heap entries by ascending PED, breaking exact ties
// by generation order so the survivor set stays a deterministic
// function of the expansion sequence.
func streamLess(a, b kStream) bool {
	if a.ped != b.ped { //geolint:float-ok exact-tie detection only orders identical distances deterministically
		return a.ped < b.ped
	}
	return a.ord < b.ord
}

// pushStream inserts e, shifting ancestors down into the hole instead
// of swapping pairwise — the entries are 48 bytes, so halving the
// copies matters on the profile.
//
//geolint:noalloc
func (d *KBest) pushStream(e kStream) {
	d.heap = append(d.heap, e)
	i := len(d.heap) - 1
	for i > 0 {
		par := (i - 1) / 2
		if !streamLess(e, d.heap[par]) {
			break
		}
		d.heap[i] = d.heap[par]
		i = par
	}
	d.heap[i] = e
}

// siftDown re-seats e as the root, shifting smaller children up into
// the hole.
//
//geolint:noalloc
func (d *KBest) siftDown(e kStream) {
	n := len(d.heap)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && streamLess(d.heap[r], d.heap[l]) {
			m = r
		}
		if !streamLess(d.heap[m], e) {
			break
		}
		d.heap[i] = d.heap[m]
		i = m
	}
	d.heap[i] = e
}

// removeTop drops the root when its stream is exhausted.
//
//geolint:noalloc
func (d *KBest) removeTop() {
	last := len(d.heap) - 1
	e := d.heap[last]
	d.heap = d.heap[:last]
	if last > 0 {
		d.siftDown(e)
	}
}

// FCSD is the fixed-complexity sphere decoder of Barbero & Thompson:
// the top fullLevels tree levels are expanded exhaustively and every
// partial path is then completed by single-branch (slicing) descent.
// Its complexity is constant — |O|^fullLevels leaf evaluations — but
// it only approaches maximum likelihood asymptotically in SNR.
type FCSD struct {
	cons       *constellation.Constellation
	fullLevels int

	h     *cmplxmat.Matrix
	qr    *cmplxmat.QR
	nc    int
	stats core.Stats

	yhat []complex128
	path []int
}

var _ core.Detector = (*FCSD)(nil)
var _ core.Counter = (*FCSD)(nil)

// NewFCSD returns a fixed-complexity sphere decoder that fully expands
// the top fullLevels levels (commonly 1).
func NewFCSD(cons *constellation.Constellation, fullLevels int) (*FCSD, error) {
	if fullLevels < 0 {
		return nil, fmt.Errorf("kbest: fullLevels must be ≥ 0, got %d", fullLevels)
	}
	return &FCSD{cons: cons, fullLevels: fullLevels}, nil
}

// Name implements core.Detector.
func (d *FCSD) Name() string { return fmt.Sprintf("FCSD(p=%d)", d.fullLevels) }

// Constellation implements core.Detector.
func (d *FCSD) Constellation() *constellation.Constellation { return d.cons }

// Stats implements core.Counter.
func (d *FCSD) Stats() core.Stats { return d.stats }

// ResetStats implements core.Counter.
func (d *FCSD) ResetStats() { d.stats = core.Stats{} }

// Prepare implements core.Detector.
func (d *FCSD) Prepare(h *cmplxmat.Matrix) error {
	if h == nil {
		return core.ErrNotPrepared
	}
	if h.Rows < h.Cols {
		return fmt.Errorf("kbest: need na ≥ nc, got %d×%d channel", h.Rows, h.Cols)
	}
	if d.fullLevels > h.Cols {
		return fmt.Errorf("kbest: fullLevels %d exceeds %d streams", d.fullLevels, h.Cols)
	}
	d.h = h
	d.qr = cmplxmat.QRDecompose(h)
	d.nc = h.Cols
	d.yhat = make([]complex128, d.nc)
	d.path = make([]int, d.nc)
	return nil
}

// Detect implements core.Detector.
func (d *FCSD) Detect(dst []int, y []complex128) ([]int, error) {
	if d.h == nil {
		return nil, core.ErrNotPrepared
	}
	if len(y) != d.h.Rows {
		return nil, fmt.Errorf("kbest: received vector has %d entries, channel has %d rows", len(y), d.h.Rows)
	}
	if dst == nil {
		dst = make([]int, d.nc)
	} else if len(dst) != d.nc {
		return nil, fmt.Errorf("kbest: dst has %d entries, want %d", len(dst), d.nc)
	}
	d.qr.ApplyQConjT(d.yhat, y)
	bestPED := math.Inf(1)
	d.enumerateFull(d.nc-1, 0, &bestPED, dst)
	d.stats.Detections++
	if math.IsInf(bestPED, 1) {
		return nil, fmt.Errorf("kbest: FCSD found no candidate")
	}
	return dst, nil
}

// enumerateFull expands level l exhaustively while l is within the
// full-expansion region, otherwise plunges by slicing.
func (d *FCSD) enumerateFull(l int, ped float64, bestPED *float64, dst []int) {
	if d.nc-1-l >= d.fullLevels {
		// Single-branch descent: slice every remaining level.
		p := ped
		for ll := l; ll >= 0; ll-- {
			ytilde := d.reduced(ll)
			col, row := d.cons.Slice(ytilde)
			d.path[ll] = d.cons.Index(col, row)
			diff := ytilde - d.cons.Point(col, row)
			rll := real(d.qr.R.At(ll, ll))
			d.stats.PEDCalcs++
			p += rll * rll * (real(diff)*real(diff) + imag(diff)*imag(diff))
		}
		d.stats.Leaves++
		if p < *bestPED {
			*bestPED = p
			copy(dst, d.path)
		}
		return
	}
	size := d.cons.Size()
	for pt := 0; pt < size; pt++ {
		d.path[l] = pt
		ytilde := d.reduced(l)
		diff := ytilde - d.cons.PointIndex(pt)
		rll := real(d.qr.R.At(l, l))
		d.stats.PEDCalcs++
		child := ped + rll*rll*(real(diff)*real(diff)+imag(diff)*imag(diff))
		d.stats.VisitedNodes++
		d.enumerateFull(l-1, child, bestPED, dst)
	}
}

// reduced returns the interference-reduced, normalized target ỹ_l for
// the current partial path above level l.
func (d *FCSD) reduced(l int) complex128 {
	s := d.yhat[l]
	row := d.qr.R.Row(l)
	for j := l + 1; j < d.nc; j++ {
		s -= row[j] * d.cons.PointIndex(d.path[j])
	}
	return s / d.qr.R.At(l, l)
}
