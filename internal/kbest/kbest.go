// Package kbest implements the breadth-first baselines surveyed in
// §6.1: the K-best sphere decoder and the fixed-complexity sphere
// decoder (FCSD). Both trade the exact maximum-likelihood guarantee of
// depth-first search for a fixed, parallelizable amount of work; the
// paper's related-work discussion (and our ablation benches) show why
// that trade is a poor fit for dense constellations.
package kbest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
)

// KBest is a breadth-first decoder that retains the K lowest-distance
// partial paths at every tree level. K must grow with constellation
// density to stay near maximum likelihood, which is exactly the
// scaling problem §6.1 describes.
type KBest struct {
	cons *constellation.Constellation
	k    int

	h     *cmplxmat.Matrix
	qr    *cmplxmat.QR
	nc    int
	stats core.Stats

	yhat []complex128
}

type kpath struct {
	ped float64
	idx []int // chosen point per level, level nc-1 first... stored by level index
}

var _ core.Detector = (*KBest)(nil)
var _ core.Counter = (*KBest)(nil)

// NewKBest returns a K-best decoder keeping k survivors per level.
func NewKBest(cons *constellation.Constellation, k int) (*KBest, error) {
	if k <= 0 {
		return nil, fmt.Errorf("kbest: K must be positive, got %d", k)
	}
	return &KBest{cons: cons, k: k}, nil
}

// Name implements core.Detector.
func (d *KBest) Name() string { return fmt.Sprintf("K-best(K=%d)", d.k) }

// Constellation implements core.Detector.
func (d *KBest) Constellation() *constellation.Constellation { return d.cons }

// Stats implements core.Counter.
func (d *KBest) Stats() core.Stats { return d.stats }

// ResetStats implements core.Counter.
func (d *KBest) ResetStats() { d.stats = core.Stats{} }

// Prepare implements core.Detector.
func (d *KBest) Prepare(h *cmplxmat.Matrix) error {
	if h == nil {
		return core.ErrNotPrepared
	}
	if h.Rows < h.Cols {
		return fmt.Errorf("kbest: need na ≥ nc, got %d×%d channel", h.Rows, h.Cols)
	}
	d.h = h
	d.qr = cmplxmat.QRDecompose(h)
	d.nc = h.Cols
	d.yhat = make([]complex128, d.nc)
	return nil
}

// Detect implements core.Detector.
func (d *KBest) Detect(dst []int, y []complex128) ([]int, error) {
	if d.h == nil {
		return nil, core.ErrNotPrepared
	}
	if len(y) != d.h.Rows {
		return nil, fmt.Errorf("kbest: received vector has %d entries, channel has %d rows", len(y), d.h.Rows)
	}
	if dst == nil {
		dst = make([]int, d.nc)
	} else if len(dst) != d.nc {
		return nil, fmt.Errorf("kbest: dst has %d entries, want %d", len(dst), d.nc)
	}
	d.qr.ApplyQConjT(d.yhat, y)
	size := d.cons.Size()
	cur := []kpath{{ped: 0, idx: nil}}
	for l := d.nc - 1; l >= 0; l-- {
		next := make([]kpath, 0, len(cur)*size)
		rll := d.qr.R.At(l, l)
		row := d.qr.R.Row(l)
		for _, p := range cur {
			// Interference-reduced target for this level.
			s := d.yhat[l]
			for j := l + 1; j < d.nc; j++ {
				s -= row[j] * d.cons.PointIndex(p.idx[d.nc-1-j])
			}
			for pt := 0; pt < size; pt++ {
				d.stats.PEDCalcs++
				diff := s - rll*d.cons.PointIndex(pt)
				ped := p.ped + real(diff)*real(diff) + imag(diff)*imag(diff)
				idx := make([]int, len(p.idx)+1)
				copy(idx, p.idx)
				idx[len(p.idx)] = pt
				next = append(next, kpath{ped: ped, idx: idx})
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].ped < next[j].ped })
		if len(next) > d.k {
			next = next[:d.k]
		}
		d.stats.VisitedNodes += int64(len(next))
		cur = next
	}
	d.stats.Detections++
	d.stats.Leaves += int64(len(cur))
	best := cur[0]
	// idx is stored top-of-tree first (level nc−1 at position 0).
	for pos, pt := range best.idx {
		dst[d.nc-1-pos] = pt
	}
	return dst, nil
}

// FCSD is the fixed-complexity sphere decoder of Barbero & Thompson:
// the top fullLevels tree levels are expanded exhaustively and every
// partial path is then completed by single-branch (slicing) descent.
// Its complexity is constant — |O|^fullLevels leaf evaluations — but
// it only approaches maximum likelihood asymptotically in SNR.
type FCSD struct {
	cons       *constellation.Constellation
	fullLevels int

	h     *cmplxmat.Matrix
	qr    *cmplxmat.QR
	nc    int
	stats core.Stats

	yhat []complex128
	path []int
}

var _ core.Detector = (*FCSD)(nil)
var _ core.Counter = (*FCSD)(nil)

// NewFCSD returns a fixed-complexity sphere decoder that fully expands
// the top fullLevels levels (commonly 1).
func NewFCSD(cons *constellation.Constellation, fullLevels int) (*FCSD, error) {
	if fullLevels < 0 {
		return nil, fmt.Errorf("kbest: fullLevels must be ≥ 0, got %d", fullLevels)
	}
	return &FCSD{cons: cons, fullLevels: fullLevels}, nil
}

// Name implements core.Detector.
func (d *FCSD) Name() string { return fmt.Sprintf("FCSD(p=%d)", d.fullLevels) }

// Constellation implements core.Detector.
func (d *FCSD) Constellation() *constellation.Constellation { return d.cons }

// Stats implements core.Counter.
func (d *FCSD) Stats() core.Stats { return d.stats }

// ResetStats implements core.Counter.
func (d *FCSD) ResetStats() { d.stats = core.Stats{} }

// Prepare implements core.Detector.
func (d *FCSD) Prepare(h *cmplxmat.Matrix) error {
	if h == nil {
		return core.ErrNotPrepared
	}
	if h.Rows < h.Cols {
		return fmt.Errorf("kbest: need na ≥ nc, got %d×%d channel", h.Rows, h.Cols)
	}
	if d.fullLevels > h.Cols {
		return fmt.Errorf("kbest: fullLevels %d exceeds %d streams", d.fullLevels, h.Cols)
	}
	d.h = h
	d.qr = cmplxmat.QRDecompose(h)
	d.nc = h.Cols
	d.yhat = make([]complex128, d.nc)
	d.path = make([]int, d.nc)
	return nil
}

// Detect implements core.Detector.
func (d *FCSD) Detect(dst []int, y []complex128) ([]int, error) {
	if d.h == nil {
		return nil, core.ErrNotPrepared
	}
	if len(y) != d.h.Rows {
		return nil, fmt.Errorf("kbest: received vector has %d entries, channel has %d rows", len(y), d.h.Rows)
	}
	if dst == nil {
		dst = make([]int, d.nc)
	} else if len(dst) != d.nc {
		return nil, fmt.Errorf("kbest: dst has %d entries, want %d", len(dst), d.nc)
	}
	d.qr.ApplyQConjT(d.yhat, y)
	bestPED := math.Inf(1)
	d.enumerateFull(d.nc-1, 0, &bestPED, dst)
	d.stats.Detections++
	if math.IsInf(bestPED, 1) {
		return nil, fmt.Errorf("kbest: FCSD found no candidate")
	}
	return dst, nil
}

// enumerateFull expands level l exhaustively while l is within the
// full-expansion region, otherwise plunges by slicing.
func (d *FCSD) enumerateFull(l int, ped float64, bestPED *float64, dst []int) {
	if d.nc-1-l >= d.fullLevels {
		// Single-branch descent: slice every remaining level.
		p := ped
		for ll := l; ll >= 0; ll-- {
			ytilde := d.reduced(ll)
			col, row := d.cons.Slice(ytilde)
			d.path[ll] = d.cons.Index(col, row)
			diff := ytilde - d.cons.Point(col, row)
			rll := real(d.qr.R.At(ll, ll))
			d.stats.PEDCalcs++
			p += rll * rll * (real(diff)*real(diff) + imag(diff)*imag(diff))
		}
		d.stats.Leaves++
		if p < *bestPED {
			*bestPED = p
			copy(dst, d.path)
		}
		return
	}
	size := d.cons.Size()
	for pt := 0; pt < size; pt++ {
		d.path[l] = pt
		ytilde := d.reduced(l)
		diff := ytilde - d.cons.PointIndex(pt)
		rll := real(d.qr.R.At(l, l))
		d.stats.PEDCalcs++
		child := ped + rll*rll*(real(diff)*real(diff)+imag(diff)*imag(diff))
		d.stats.VisitedNodes++
		d.enumerateFull(l-1, child, bestPED, dst)
	}
}

// reduced returns the interference-reduced, normalized target ỹ_l for
// the current partial path above level l.
func (d *FCSD) reduced(l int) complex128 {
	s := d.yhat[l]
	row := d.qr.R.Row(l)
	for j := l + 1; j < d.nc; j++ {
		s -= row[j] * d.cons.PointIndex(d.path[j])
	}
	return s / d.qr.R.At(l, l)
}
