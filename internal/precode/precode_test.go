package precode

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/rng"
)

func downlink(src *rng.Source, k, nt int) *cmplxmat.Matrix {
	return channel.Rayleigh(src, k, nt)
}

func randSymbols(src *rng.Source, cons *constellation.Constellation, k int) ([]int, []complex128) {
	idx := make([]int, k)
	s := make([]complex128, k)
	for i := range s {
		idx[i] = src.Intn(cons.Size())
		s[i] = cons.PointIndex(idx[i])
	}
	return idx, s
}

// receive simulates the downlink: client k hears row k of H applied to
// the transmitted vector plus noise.
func receive(src *rng.Source, h *cmplxmat.Matrix, x []complex128, noiseVar float64) []complex128 {
	y := h.MulVec(nil, x)
	for i := range y {
		y[i] += src.CN(noiseVar)
	}
	return y
}

func TestZFPrecodingNoiseless(t *testing.T) {
	src := rng.New(1)
	cons := constellation.QAM16
	p := NewZF(cons)
	for trial := 0; trial < 40; trial++ {
		h := downlink(src, 2, 4)
		if err := p.Prepare(h); err != nil {
			t.Fatal(err)
		}
		idx, s := randSymbols(src, cons, 2)
		x, gamma, err := p.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		// Unit transmit power after normalization.
		var pw float64
		for _, v := range x {
			pw += real(v)*real(v) + imag(v)*imag(v)
		}
		if math.Abs(pw-1) > 1e-9 {
			t.Fatalf("trial %d: transmit power %g", trial, pw)
		}
		y := receive(src, h, x, 0)
		for k := range idx {
			if got := p.Decode(y[k], gamma); got != idx[k] {
				t.Fatalf("trial %d client %d: got %d want %d", trial, k, got, idx[k])
			}
		}
	}
}

func TestVPPrecodingNoiseless(t *testing.T) {
	src := rng.New(2)
	cons := constellation.QAM16
	p := NewVP(cons)
	for trial := 0; trial < 40; trial++ {
		h := downlink(src, 3, 4)
		if err := p.Prepare(h); err != nil {
			t.Fatal(err)
		}
		idx, s := randSymbols(src, cons, 3)
		x, gamma, err := p.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		y := receive(src, h, x, 0)
		for k := range idx {
			if got := p.Decode(y[k], gamma); got != idx[k] {
				t.Fatalf("trial %d client %d: got %d want %d", trial, k, got, idx[k])
			}
		}
		_ = x
	}
	if p.Stats().Calls != 40 || p.Stats().Nodes == 0 {
		t.Fatalf("search stats implausible: %+v", p.Stats())
	}
}

// TestVPReducesPower is the point of vector perturbation: on square
// (poorly-conditioned) channels the perturbed vector needs much less
// power than plain channel inversion, so after normalization each
// client sees a higher effective SNR.
func TestVPReducesPower(t *testing.T) {
	src := rng.New(3)
	cons := constellation.QAM16
	zf := NewZF(cons)
	vp := NewVP(cons)
	var zfSum, vpSum float64
	const trials = 150
	for trial := 0; trial < trials; trial++ {
		h := downlink(src, 4, 4) // square: conditioning bites
		if err := zf.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if err := vp.Prepare(h); err != nil {
			t.Fatal(err)
		}
		_, s := randSymbols(src, cons, 4)
		_, gz, err := zf.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		_, gv, err := vp.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		if gv > gz+1e-12 {
			t.Fatalf("trial %d: perturbation increased power: %g > %g", trial, gv, gz)
		}
		zfSum += gz
		vpSum += gv
	}
	ratio := zfSum / vpSum
	t.Logf("average power ratio ZF/VP over %d square channels: %.2f× (%.1f dB)",
		trials, ratio, 10*math.Log10(ratio))
	if ratio < 2 {
		t.Fatalf("vector perturbation saved only %.2f× power; expected ≥2× on 4×4", ratio)
	}
}

// TestVPBeatsZFUnderNoise: the power saving turns into symbol-error
// advantage at fixed transmit power.
func TestVPBeatsZFUnderNoise(t *testing.T) {
	src := rng.New(4)
	cons := constellation.QAM16
	zf := NewZF(cons)
	vp := NewVP(cons)
	noiseVar := channel.NoiseVarForSNRdB(22)
	zfErrs, vpErrs := 0, 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		h := downlink(src, 3, 3)
		if err := zf.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if err := vp.Prepare(h); err != nil {
			t.Fatal(err)
		}
		idx, s := randSymbols(src, cons, 3)
		xz, gz, err := zf.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		xv, gv, err := vp.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		seed := src.Int63()
		yz := receive(rng.New(seed), h, xz, noiseVar)
		yv := receive(rng.New(seed), h, xv, noiseVar)
		for k := range idx {
			if zf.Decode(yz[k], gz) != idx[k] {
				zfErrs++
			}
			if vp.Decode(yv[k], gv) != idx[k] {
				vpErrs++
			}
		}
	}
	t.Logf("downlink symbol errors over %d 3×3 vectors at 22 dB: ZF=%d VP=%d", trials, zfErrs, vpErrs)
	if vpErrs >= zfErrs {
		t.Fatalf("vector perturbation (%d) should beat channel inversion (%d)", vpErrs, zfErrs)
	}
}

func TestPrecodeValidation(t *testing.T) {
	cons := constellation.QPSK
	zf := NewZF(cons)
	if err := zf.Prepare(nil); err == nil {
		t.Fatal("nil channel accepted")
	}
	src := rng.New(5)
	wide := downlink(src, 4, 2) // more clients than antennas
	if err := zf.Prepare(wide); err == nil {
		t.Fatal("overloaded downlink accepted")
	}
	if _, _, err := zf.Encode([]complex128{1}); err == nil {
		t.Fatal("Encode before Prepare accepted")
	}
	ok := downlink(src, 2, 4)
	if err := zf.Prepare(ok); err != nil {
		t.Fatal(err)
	}
	if _, _, err := zf.Encode([]complex128{1, 2, 3}); err == nil {
		t.Fatal("wrong symbol count accepted")
	}
	vp := NewVP(cons)
	if _, _, err := vp.Encode([]complex128{1, 2}); err == nil {
		t.Fatal("VP Encode before Prepare accepted")
	}
}

func TestModTau(t *testing.T) {
	cases := []struct{ x, tau, want float64 }{
		{0, 4, 0},
		{1.9, 4, 1.9},
		{2.1, 4, -1.9},
		{-2.1, 4, 1.9},
		{6, 4, 2 - 4}, // 6 mod 4 folded → -2
		{4, 4, 0},
	}
	for _, c := range cases {
		if got := modTau(c.x, c.tau); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("modTau(%g, %g) = %g, want %g", c.x, c.tau, got, c.want)
		}
	}
	// The fold must be idempotent and stay in [−τ/2, τ/2).
	for x := -10.0; x < 10; x += 0.37 {
		f := modTau(x, 3)
		if f < -1.5 || f >= 1.5 {
			t.Fatalf("modTau(%g, 3) = %g out of range", x, f)
		}
		if math.Abs(modTau(f, 3)-f) > 1e-12 {
			t.Fatalf("modTau not idempotent at %g", x)
		}
	}
}
