// Package precode implements downlink multi-user precoding, the §6.3
// complement to Geosphere's uplink receiver: zero-forcing
// (channel-inversion) precoding as the baseline, and the
// vector-perturbation "sphere encoder" of Hochwald, Peel &
// Swindlehurst, which searches a complex-integer perturbation lattice
// with a depth-first sphere search to minimize transmit power.
//
// In the downlink the AP knows the channel and pre-distorts the
// transmission so each single-antenna client receives its own stream
// interference-free. Plain channel inversion pays a power penalty of
// exactly the same origin as uplink ZF's noise amplification — the
// inverse of a poorly-conditioned H is large — and vector perturbation
// recovers most of it, which is why the paper calls the two approaches
// complementary.
package precode

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
)

// ZFPrecoder transmits x = H⁺·s/√γ with per-vector power
// normalization γ = ‖H⁺s‖², so every client k receives s_k/√γ plus
// noise. Clients recover s_k by rescaling with √γ (conveyed out of
// band or via pilots; the simulator passes it explicitly).
type ZFPrecoder struct {
	cons *constellation.Constellation
	p    *cmplxmat.Matrix // H⁺ᵀ-style precoding matrix, nt×K
}

// NewZF returns a zero-forcing (channel inversion) precoder.
func NewZF(cons *constellation.Constellation) *ZFPrecoder {
	return &ZFPrecoder{cons: cons}
}

// Name identifies the precoder in experiment output.
func (z *ZFPrecoder) Name() string { return "ZF-precoding" }

// Prepare fixes the downlink channel. h has one row per client and
// one column per AP transmit antenna (K×nt, K ≤ nt); the precoding
// matrix is its right pseudo-inverse.
func (z *ZFPrecoder) Prepare(h *cmplxmat.Matrix) error {
	if h == nil {
		return fmt.Errorf("precode: nil channel")
	}
	if h.Rows > h.Cols {
		return fmt.Errorf("precode: need clients ≤ antennas, got %d×%d", h.Rows, h.Cols)
	}
	// Right pseudo-inverse: P = H*(HH*)⁻¹ so that H·P = I.
	ht := h.ConjT()
	gram := cmplxmat.Mul(h, ht)
	gi, err := gram.Inverse()
	if err != nil {
		return fmt.Errorf("precode: channel Gram matrix singular: %w", err)
	}
	z.p = cmplxmat.Mul(ht, gi)
	return nil
}

// Encode maps the per-client symbol vector s to the transmit vector x
// and returns (x, gamma) with γ = ‖x·√γ‖² the pre-normalization power.
func (z *ZFPrecoder) Encode(s []complex128) (x []complex128, gamma float64, err error) {
	if z.p == nil {
		return nil, 0, fmt.Errorf("precode: not prepared")
	}
	if len(s) != z.p.Cols {
		return nil, 0, fmt.Errorf("precode: %d symbols for %d clients", len(s), z.p.Cols)
	}
	x = z.p.MulVec(nil, s)
	for _, v := range x {
		gamma += real(v)*real(v) + imag(v)*imag(v)
	}
	if gamma == 0 {
		return x, 0, nil
	}
	inv := complex(1/math.Sqrt(gamma), 0)
	for i := range x {
		x[i] *= inv
	}
	return x, gamma, nil
}

// Decode recovers client k's constellation index from its received
// scalar y_k given the power normalization γ.
func (z *ZFPrecoder) Decode(yk complex128, gamma float64) int {
	s := yk * complex(math.Sqrt(gamma), 0)
	col, row := z.cons.Slice(s)
	return z.cons.Index(col, row)
}

// VPPrecoder is the vector-perturbation sphere encoder: it transmits
// x = H⁺·(s + τ·l)/√γ with the complex-integer perturbation l chosen
// by sphere search to minimize γ = ‖H⁺(s+τl)‖². Clients apply a
// modulo-τ operation to strip the perturbation.
type VPPrecoder struct {
	cons *constellation.Constellation
	zf   ZFPrecoder
	// Tau is the perturbation lattice spacing. The standard choice is
	// 2(|c|_max + Δ/2): twice the constellation extent plus half the
	// point spacing, which makes the modulo decision regions seamless.
	Tau float64
	// SearchRadius bounds each perturbation coordinate to
	// {−SearchRadius..SearchRadius} per real dimension (1 is the
	// standard and near-optimal choice).
	SearchRadius int

	qr    *cmplxmat.QR
	k     int
	stats SearchStats
}

// SearchStats counts the work of the perturbation search.
type SearchStats struct {
	Nodes  int64
	Leaves int64
	Calls  int64
}

// NewVP returns a vector-perturbation precoder over cons.
func NewVP(cons *constellation.Constellation) *VPPrecoder {
	side := float64(cons.Side())
	// |c|max per axis = scale·(side−1); spacing Δ = 2·scale.
	tau := 2 * (cons.Scale()*(side-1) + cons.Scale())
	return &VPPrecoder{cons: cons, zf: ZFPrecoder{cons: cons}, Tau: tau, SearchRadius: 1}
}

// Name identifies the precoder in experiment output.
func (v *VPPrecoder) Name() string { return "Vector-perturbation" }

// Stats returns the accumulated search statistics.
func (v *VPPrecoder) Stats() SearchStats { return v.stats }

// Prepare fixes the downlink channel (K×nt, K ≤ nt).
func (v *VPPrecoder) Prepare(h *cmplxmat.Matrix) error {
	if err := v.zf.Prepare(h); err != nil {
		return err
	}
	v.k = h.Rows
	// QR of the precoding matrix lets the search accumulate
	// ‖P(s+τl)‖² level by level: ‖P v‖ = ‖R v‖ since Q*Q = I.
	v.qr = cmplxmat.QRDecompose(v.zf.p)
	return nil
}

// Encode picks the power-minimizing perturbation by depth-first sphere
// search, then transmits like the ZF precoder on the perturbed vector.
func (v *VPPrecoder) Encode(s []complex128) (x []complex128, gamma float64, err error) {
	if v.qr == nil {
		return nil, 0, fmt.Errorf("precode: not prepared")
	}
	if len(s) != v.k {
		return nil, 0, fmt.Errorf("precode: %d symbols for %d clients", len(s), v.k)
	}
	v.stats.Calls++
	best := make([]complex128, v.k)
	cur := make([]complex128, v.k)
	bestCost := math.Inf(1)
	v.search(s, cur, best, v.k-1, 0, &bestCost)
	pert := make([]complex128, v.k)
	for i := range pert {
		pert[i] = s[i] + complex(v.Tau, 0)*best[i]
	}
	return v.zf.Encode(pert)
}

// search explores perturbation components from the last QR level
// upward, pruning on the accumulated ‖R(s+τl)‖² cost.
func (v *VPPrecoder) search(s, cur, best []complex128, level int, acc float64, bestCost *float64) {
	r := v.qr.R
	rad := v.SearchRadius
	for re := -rad; re <= rad; re++ {
		for im := -rad; im <= rad; im++ {
			cur[level] = complex(float64(re), float64(im))
			// Partial cost at this level: |Σ_j R[level][j](s_j+τl_j)|².
			var term complex128
			for j := level; j < v.k; j++ {
				term += r.At(level, j) * (s[j] + complex(v.Tau, 0)*cur[j])
			}
			cost := acc + real(term)*real(term) + imag(term)*imag(term)
			v.stats.Nodes++
			if cost >= *bestCost {
				continue
			}
			if level == 0 {
				v.stats.Leaves++
				*bestCost = cost
				copy(best, cur)
				continue
			}
			v.search(s, cur, best, level-1, cost, bestCost)
		}
	}
	cur[level] = 0
}

// Decode recovers client k's constellation index: rescale by √γ, strip
// the perturbation with a modulo-τ operation, and slice.
func (v *VPPrecoder) Decode(yk complex128, gamma float64) int {
	sc := yk * complex(math.Sqrt(gamma), 0)
	re := modTau(real(sc), v.Tau)
	im := modTau(imag(sc), v.Tau)
	col, row := v.cons.Slice(complex(re, im))
	return v.cons.Index(col, row)
}

// modTau folds x into [−τ/2, τ/2).
func modTau(x, tau float64) float64 {
	x = math.Mod(x+tau/2, tau)
	if x < 0 {
		x += tau
	}
	return x - tau/2
}
