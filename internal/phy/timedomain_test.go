package phy

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/ofdm"
	"repro/internal/rng"
)

// TestTimeDomainMIMOOFDMEquivalence is the end-to-end fidelity check
// for the whole simulation methodology: it builds a tap-domain MIMO
// multipath channel, runs real time-domain OFDM modulation on every
// transmit stream, convolves per antenna pair, demodulates at every
// receive antenna, and verifies that per-subcarrier sphere detection
// with the channel's DFT recovers exactly the transmitted points —
// i.e. the frequency-domain shortcut used by the throughput harness
// models the physical link faithfully.
func TestTimeDomainMIMOOFDMEquivalence(t *testing.T) {
	const (
		na   = 4
		nc   = 2
		taps = 3
	)
	cons := constellation.QAM16
	src := rng.New(41)

	// Tap-domain channel: taps[d] is an na×nc matrix, delays < CP.
	tapMat := make([]*cmplxmat.Matrix, taps)
	for d := range tapMat {
		m := cmplxmat.New(na, nc)
		scale := math.Pow(0.5, float64(d)) // decaying power profile
		for i := range m.Data {
			m.Data[i] = src.CN(scale)
		}
		tapMat[d] = m
	}

	// Transmit: one OFDM symbol per stream.
	sent := make([][]int, nc)
	tx := make([][]complex128, nc)
	for k := 0; k < nc; k++ {
		data := make([]complex128, ofdm.NumData)
		sent[k] = make([]int, ofdm.NumData)
		for s := range data {
			sent[k][s] = src.Intn(cons.Size())
			data[s] = cons.PointIndex(sent[k][s])
		}
		sym, err := ofdm.Modulate(nil, data, ofdm.StandardPilots)
		if err != nil {
			t.Fatal(err)
		}
		tx[k] = sym
	}

	// Channel: per receive antenna, sum over streams of tap
	// convolutions (noiseless; exactness is the point here).
	rx := make([][]complex128, na)
	for a := 0; a < na; a++ {
		rx[a] = make([]complex128, ofdm.SymbolLen)
		for n := 0; n < ofdm.SymbolLen; n++ {
			var s complex128
			for d := 0; d < taps; d++ {
				if n-d < 0 {
					continue
				}
				for k := 0; k < nc; k++ {
					s += tapMat[d].At(a, k) * tx[k][n-d]
				}
			}
			rx[a][n] = s
		}
	}

	// Receive: demodulate every antenna, then per-subcarrier MIMO
	// detection against the tap DFT.
	bins := make([][]complex128, na)
	for a := 0; a < na; a++ {
		bins[a] = make([]complex128, ofdm.NumData)
		if err := ofdm.Demodulate(bins[a], nil, rx[a]); err != nil {
			t.Fatal(err)
		}
	}
	det := core.NewGeosphere(cons)
	y := make([]complex128, na)
	for si, b := range ofdm.DataCarriers {
		// H(f) = Σ_d tap_d · e^{−j2πbd/N}.
		h := cmplxmat.New(na, nc)
		for d := 0; d < taps; d++ {
			ph := cmplx.Exp(complex(0, -2*math.Pi*float64(b*d)/ofdm.NFFT))
			for a := 0; a < na; a++ {
				for k := 0; k < nc; k++ {
					h.Set(a, k, h.At(a, k)+tapMat[d].At(a, k)*ph)
				}
			}
		}
		if err := det.Prepare(h); err != nil {
			t.Fatalf("subcarrier %d: %v", si, err)
		}
		for a := 0; a < na; a++ {
			y[a] = bins[a][si]
		}
		got, err := det.Detect(nil, y)
		if err != nil {
			t.Fatalf("subcarrier %d: %v", si, err)
		}
		for k := 0; k < nc; k++ {
			if got[k] != sent[k][si] {
				t.Fatalf("subcarrier %d stream %d: got %d want %d", si, k, got[k], sent[k][si])
			}
		}
	}
}
