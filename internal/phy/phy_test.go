package phy

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/linear"
	"repro/internal/ofdm"
	"repro/internal/rng"
)

func flatChannels(src *rng.Source, na, nc int) []*cmplxmat.Matrix {
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	h := channel.Rayleigh(src, na, nc)
	for i := range hs {
		hs[i] = h
	}
	return hs
}

func perSCChannels(src *rng.Source, na, nc int) []*cmplxmat.Matrix {
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		hs[i] = channel.Rayleigh(src, na, nc)
	}
	return hs
}

func TestConfigDerivedSizes(t *testing.T) {
	cfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 10}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.BitsPerSymbol(); got != 192 {
		t.Fatalf("ncbps = %d, want 192", got)
	}
	if got := cfg.CodedBits(); got != 1920 {
		t.Fatalf("coded bits = %d", got)
	}
	if got := cfg.InfoBits(); got != 954 {
		t.Fatalf("info bits = %d, want 954", got)
	}
	if got := cfg.PayloadBits(); got != 922 {
		t.Fatalf("payload bits = %d, want 922", got)
	}
	// 48·4·(1/2)/4µs = 24 Mbps, the classic 16-QAM rate-1/2 mode.
	if got := cfg.PHYRateMbps(); math.Abs(got-24) > 1e-12 {
		t.Fatalf("PHY rate %g Mbps, want 24", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("empty config accepted")
	}
	if err := (Config{Cons: constellation.QPSK, NumSymbols: 0}).Validate(); err == nil {
		t.Fatal("zero symbols accepted")
	}
	// A single QPSK symbol still fits the CRC and tail (10 payload
	// bits), so the shortest frames remain valid.
	if err := (Config{Cons: constellation.QPSK, NumSymbols: 1, Rate: fec.Rate12}).Validate(); err != nil {
		t.Fatalf("minimal frame rejected: %v", err)
	}
}

func TestFrameRoundTripNoiseless(t *testing.T) {
	for _, cons := range []*constellation.Constellation{constellation.QPSK, constellation.QAM16, constellation.QAM64} {
		for _, rate := range []fec.Rate{fec.Rate12, fec.Rate23, fec.Rate34} {
			cfg := Config{Cons: cons, Rate: rate, NumSymbols: 6}
			link, err := NewLink(cfg)
			if err != nil {
				t.Fatalf("%s rate %s: %v", cons, rate, err)
			}
			src := rng.New(1)
			f, err := link.Encode(src, 2)
			if err != nil {
				t.Fatal(err)
			}
			hs := perSCChannels(src, 4, 2)
			det := core.NewGeosphere(cons)
			res, err := link.TransmitReceive(src, f, hs, det, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.FrameOK() {
				t.Fatalf("%s rate %s: noiseless frame failed: %+v", cons, rate, res)
			}
			if res.SymbolErrors != 0 {
				t.Fatalf("%s rate %s: %d symbol errors at zero noise", cons, rate, res.SymbolErrors)
			}
		}
	}
}

func TestFrameHighSNRAllDetectors(t *testing.T) {
	cfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 4}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noise := channel.NoiseVarForSNRdB(35)
	dets := []core.Detector{
		core.NewGeosphere(cfg.Cons),
		core.NewETHSD(cfg.Cons),
		linear.NewZF(cfg.Cons),
		linear.NewMMSE(cfg.Cons, noise),
		linear.NewMMSESIC(cfg.Cons, noise),
	}
	for _, det := range dets {
		src := rng.New(77)
		f, err := link.Encode(src, 2)
		if err != nil {
			t.Fatal(err)
		}
		hs := perSCChannels(src, 4, 2)
		res, err := link.TransmitReceive(src, f, hs, det, noise)
		if err != nil {
			t.Fatalf("%s: %v", det.Name(), err)
		}
		if !res.FrameOK() {
			t.Fatalf("%s: 2×4 frame at 35 dB failed", det.Name())
		}
	}
}

// TestGeosphereBeatsZFOnIllConditioned is the paper's core claim at
// frame level: on a poorly-conditioned channel at moderate SNR the
// sphere decoder decodes frames that zero-forcing loses.
func TestGeosphereBeatsZFOnIllConditioned(t *testing.T) {
	cfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 4}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	// Correlated 2×2 channels are reliably ill-conditioned.
	noise := channel.NoiseVarForSNRdB(22)
	geo := core.NewGeosphere(cfg.Cons)
	zf := linear.NewZF(cfg.Cons)
	geoOK, zfOK := 0, 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		h, err := channel.Correlated(src, 2, 2, 0.9, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		hs := make([]*cmplxmat.Matrix, ofdm.NumData)
		for i := range hs {
			hs[i] = h
		}
		f, err := link.Encode(src, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Identical noise for both detectors: seed two sources alike.
		seed := src.Int63()
		rGeo, err := link.TransmitReceive(rng.New(seed), f, hs, geo, noise)
		if err != nil {
			t.Fatal(err)
		}
		rZF, err := link.TransmitReceive(rng.New(seed), f, hs, zf, noise)
		if err != nil {
			t.Fatal(err)
		}
		if rGeo.FrameOK() {
			geoOK++
		}
		if rZF.FrameOK() {
			zfOK++
		}
	}
	t.Logf("frames decoded over %d ill-conditioned trials: Geosphere=%d ZF=%d", trials, geoOK, zfOK)
	if geoOK <= zfOK {
		t.Fatalf("Geosphere (%d) should decode more frames than ZF (%d)", geoOK, zfOK)
	}
}

func TestTransmitReceiveValidation(t *testing.T) {
	cfg := Config{Cons: constellation.QPSK, Rate: fec.Rate12, NumSymbols: 4}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	f, err := link.Encode(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewGeosphere(cfg.Cons)
	if _, err := link.TransmitReceive(src, f, flatChannels(src, 4, 2)[:10], det, 0); err == nil {
		t.Fatal("short channel list accepted")
	}
	if _, err := link.TransmitReceive(src, f, flatChannels(src, 4, 3), det, 0); err == nil {
		t.Fatal("stream-count mismatch accepted")
	}
	if _, err := link.Encode(src, 0); err == nil {
		t.Fatal("zero streams accepted")
	}
}

func TestResultFrameOK(t *testing.T) {
	r := Result{StreamOK: []bool{true, true}}
	if !r.FrameOK() {
		t.Fatal("all-true should be OK")
	}
	r.StreamOK[1] = false
	if r.FrameOK() {
		t.Fatal("partial failure should not be OK")
	}
}

// TestEncodeDeterministic: identical seeds produce identical frames —
// the property every trace-driven comparison in the evaluation rests
// on (both decoders must see the same payloads and noise).
func TestEncodeDeterministic(t *testing.T) {
	cfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 4}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := link.Encode(rng.New(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := link.Encode(rng.New(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Payloads {
		for i := range a.Payloads[k] {
			if a.Payloads[k][i] != b.Payloads[k][i] {
				t.Fatal("payloads diverged")
			}
		}
	}
	if a.X[0][0][0] != b.X[0][0][0] || a.X[3][47][1] != b.X[3][47][1] { //geolint:float-ok test asserts exact bitwise reproducibility
		t.Fatal("symbol grids diverged")
	}
}

// TestFrameFailsAtAbsurdNoise: with noise 30 dB above the signal
// nothing decodes, and the error counters reflect it.
func TestFrameFailsAtAbsurdNoise(t *testing.T) {
	cfg := Config{Cons: constellation.QAM64, Rate: fec.Rate12, NumSymbols: 4}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(13)
	f, err := link.Encode(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs := perSCChannels(src, 4, 2)
	res, err := link.TransmitReceive(src, f, hs, core.NewGeosphere(cfg.Cons), 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameOK() {
		t.Fatal("frame decoded under 30 dB of noise above signal")
	}
	if res.SymbolErrors == 0 || res.Symbols == 0 {
		t.Fatalf("error accounting empty: %+v", res)
	}
}

// TestBatchedDetectZeroAllocs extends the detection-hot-path
// allocation contract (core's TestDetectZeroAllocs) to the batched
// structure-of-arrays sweep the link runs when a preparation pool is
// attached: one full OFDM symbol — pool prepare on every subcarrier
// switch plus hard detection and pre-FEC accounting straight from the
// flat receive buffer — allocates nothing in steady state.
func TestBatchedDetectZeroAllocs(t *testing.T) {
	cfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 1}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPrepPool(ofdm.NumData)
	link.SetPrepPool(pool)
	det := core.NewGeosphere(cfg.Cons)
	src := rng.New(5)
	const na, nc = 4, 4
	hs := perSCChannels(src, na, nc)
	f, err := link.Encode(src, nc)
	if err != nil {
		t.Fatal(err)
	}
	noiseVar := channel.NoiseVarForSNRdB(24)
	// One full frame warms everything: the SoA scratch reaches its
	// final size and every pool slot holds its subcarrier's channel.
	if _, err := link.TransmitReceive(src, f, hs, det, noiseVar); err != nil {
		t.Fatal(err)
	}
	detIdx, _, yb := link.sizeReceive(cfg.NumSymbols, nc, na, false)
	res := &Result{StreamOK: make([]bool, nc)}
	allocs := testing.AllocsPerRun(20, func() {
		for s := 0; s < ofdm.NumData; s++ {
			if err := link.prepareDetector(det, s, hs[s]); err != nil {
				t.Fatal(err)
			}
			if err := link.detectOne(det, nil, f, res, detIdx, nil, yb[s*na:(s+1)*na], 0, s, nc, noiseVar); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Errorf("batched SoA sweep: %g allocs per symbol, want 0", allocs)
	}
	if hits, _ := pool.Counters(); hits == 0 {
		t.Error("sweep never hit the preparation cache")
	}
}
