package phy

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/ofdm"
	"repro/internal/rng"
)

// IterativeResult extends Result with per-iteration convergence
// information.
type IterativeResult struct {
	Result
	// Iterations actually run (early exit when every CRC passes).
	Iterations int
	// FrameOKAt[i] records whether the frame was clean after
	// iteration i+1, so experiments can attribute gains.
	FrameOKAt []bool
}

// TransmitReceiveIterative implements the §7 future-work receiver:
// iterative soft detection and decoding. Iteration 1 detects with the
// soft-output Geosphere list sphere decoder; each later iteration
// feeds the max-log BCJR decoder's extrinsic information back as
// symbol priors for soft parallel interference cancellation with
// per-stream MMSE filtering, then decodes again. The loop exits early
// once every stream's CRC verifies.
func (l *Link) TransmitReceiveIterative(src *rng.Source, f *Frame, hs []*cmplxmat.Matrix, noiseVar float64, iterations int) (*IterativeResult, error) {
	cfg := l.cfg
	if iterations <= 0 {
		return nil, fmt.Errorf("phy: iterations must be positive, got %d", iterations)
	}
	if noiseVar <= 0 {
		return nil, fmt.Errorf("phy: iterative reception needs a positive noise variance")
	}
	if len(hs) != ofdm.NumData {
		return nil, fmt.Errorf("phy: %d subcarrier channels, want %d", len(hs), ofdm.NumData)
	}
	nc := len(f.Payloads)
	if hs[0].Cols != nc {
		return nil, fmt.Errorf("phy: channel has %d streams, frame has %d", hs[0].Cols, nc)
	}
	q := cfg.Cons.Bits()

	// 1. Transmit once; keep every received vector for re-detection.
	y := make([][][]complex128, cfg.NumSymbols)
	for t := range y {
		y[t] = make([][]complex128, ofdm.NumData)
		for s := range y[t] {
			y[t][s] = channel.Transmit(nil, src, hs[s], f.X[t][s], noiseVar)
		}
	}

	// llr[t][s] holds nc·q detector LLRs for the current iteration.
	llr := make([][][]float64, cfg.NumSymbols)
	for t := range llr {
		llr[t] = make([][]float64, ofdm.NumData)
		for s := range llr[t] {
			llr[t][s] = make([]float64, nc*q)
		}
	}
	res := &IterativeResult{Result: Result{StreamOK: make([]bool, nc)}}

	// Iteration 1: soft list sphere detection.
	soft := core.NewListSphereDecoder(cfg.Cons)
	hard := make([]int, nc)
	for s := 0; s < ofdm.NumData; s++ {
		if err := soft.Prepare(hs[s]); err != nil {
			return nil, fmt.Errorf("phy: prepare subcarrier %d: %w", s, err)
		}
		for t := 0; t < cfg.NumSymbols; t++ {
			if _, err := soft.DetectSoft(llr[t][s], y[t][s], noiseVar); err != nil {
				return nil, err
			}
			if _, err := soft.Detect(hard, y[t][s]); err != nil {
				return nil, err
			}
			for k := 0; k < nc; k++ {
				res.Symbols++
				//geolint:float-ok both operands are verbatim entries of the same constellation table
				if cfg.Cons.PointIndex(hard[k]) != f.X[t][s][k] {
					res.SymbolErrors++
				}
			}
		}
	}

	// priors[t][s] accumulates the decoder feedback between iterations.
	motherLen := 2 * (cfg.InfoBits() + fec.ConstraintLength - 1)
	for iter := 0; iter < iterations; iter++ {
		res.Iterations = iter + 1
		allOK := true
		ext := make([][][]float64, nc) // [stream][symbol t][bit in symbol block]
		for k := 0; k < nc; k++ {
			ok, codedExt, err := l.decodeStreamBCJR(f, llr, k, byte(0x5d+k), motherLen)
			if err != nil {
				return nil, err
			}
			res.StreamOK[k] = ok
			if !ok {
				allOK = false
			}
			ext[k] = codedExt
		}
		res.FrameOKAt = append(res.FrameOKAt, allOK)
		if allOK || iter == iterations-1 {
			break
		}
		// Feedback: priors → soft symbols → MMSE-PIC re-detection.
		if err := l.picRedetect(hs, y, llr, ext, noiseVar); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// decodeStreamBCJR deinterleaves and depunctures stream k's detector
// LLRs, runs max-log BCJR, checks the CRC against the transmitted
// payload, and returns the per-OFDM-symbol interleaved extrinsic LLRs
// for the feedback path.
func (l *Link) decodeStreamBCJR(f *Frame, llr [][][]float64, k int, scramblerSeed byte, motherLen int) (bool, [][]float64, error) {
	cfg := l.cfg
	q := cfg.Cons.Bits()
	coded := make([]float64, 0, cfg.CodedBits())
	block := make([]float64, cfg.BitsPerSymbol())
	for t := 0; t < cfg.NumSymbols; t++ {
		for s := 0; s < ofdm.NumData; s++ {
			copy(block[s*q:(s+1)*q], llr[t][s][k*q:(k+1)*q])
		}
		deint, err := l.il.DeinterleaveSoft(nil, block)
		if err != nil {
			return false, nil, err
		}
		coded = append(coded, deint...)
	}
	mother := fec.Depuncture(coded, cfg.Rate, motherLen)
	info, motherExt, err := fec.MaxLogBCJR(mother)
	if err != nil {
		return false, nil, err
	}
	// Hard decision, descramble, CRC.
	bits := make([]byte, cfg.InfoBits())
	for i := range bits {
		if info[i] > 0 {
			bits[i] = 1
		}
	}
	fec.Scramble(bits, scramblerSeed)
	payload, ok := fec.CheckCRC(bits)
	if ok {
		want := f.Payloads[k]
		if len(payload) != len(want) {
			ok = false
		} else {
			for i := range want {
				if payload[i] != want[i] {
					ok = false
					break
				}
			}
		}
	}
	// Re-puncture the extrinsics and re-interleave per OFDM symbol so
	// they line up with the transmitted bit positions.
	kept := fec.PunctureSoft(motherExt, cfg.Rate)
	if len(kept) != cfg.CodedBits() {
		return false, nil, fmt.Errorf("phy: extrinsic length %d, want %d", len(kept), cfg.CodedBits())
	}
	perSym := make([][]float64, cfg.NumSymbols)
	for t := 0; t < cfg.NumSymbols; t++ {
		seg := kept[t*cfg.BitsPerSymbol() : (t+1)*cfg.BitsPerSymbol()]
		inter, err := l.il.InterleaveSoft(nil, seg)
		if err != nil {
			return false, nil, err
		}
		perSym[t] = inter
	}
	return ok, perSym, nil
}

// picRedetect performs one round of soft parallel interference
// cancellation with per-stream MMSE filtering, writing fresh per-bit
// LLRs into llr. ext[k][t] holds stream k's interleaved extrinsic
// LLRs for OFDM symbol t.
func (l *Link) picRedetect(hs []*cmplxmat.Matrix, y [][][]complex128, llr [][][]float64, ext [][][]float64, noiseVar float64) error {
	cfg := l.cfg
	cons := cfg.Cons
	q := cons.Bits()
	nc := len(ext)
	na := hs[0].Rows
	size := cons.Size()

	// Per-point bit table for soft-symbol statistics and demapping.
	pointBits := make([][]byte, size)
	for i := 0; i < size; i++ {
		col, row := cons.Coords(i)
		b := make([]byte, q)
		cons.SymbolBits(b, col, row)
		pointBits[i] = b
	}

	mean := make([]complex128, nc)
	vari := make([]float64, nc)
	resid := make([]complex128, na)
	for t := 0; t < cfg.NumSymbols; t++ {
		for s := 0; s < ofdm.NumData; s++ {
			h := hs[s]
			// Soft symbol statistics per stream from the extrinsics.
			for k := 0; k < nc; k++ {
				ls := ext[k][t][s*q : (s+1)*q]
				var m complex128
				var e2, wsum float64
				for p := 0; p < size; p++ {
					w := 1.0
					for b := 0; b < q; b++ {
						pb := 1 / (1 + math.Exp(-ls[b]))
						if pointBits[p][b] == 1 {
							w *= pb
						} else {
							w *= 1 - pb
						}
					}
					pt := cons.PointIndex(p)
					m += complex(w, 0) * pt
					e2 += w * (real(pt)*real(pt) + imag(pt)*imag(pt))
					wsum += w
				}
				if wsum > 0 {
					m /= complex(wsum, 0)
					e2 /= wsum
				}
				mean[k] = m
				v := e2 - (real(m)*real(m) + imag(m)*imag(m))
				if v < 1e-9 {
					v = 1e-9
				}
				vari[k] = v
			}
			// Per-stream MMSE-PIC.
			for k := 0; k < nc; k++ {
				// A = σ²I + Σ_j c_j h_j h_j*, c_k = 1 (no self prior).
				a := cmplxmat.New(na, na)
				for i := 0; i < na; i++ {
					a.Set(i, i, complex(noiseVar, 0))
				}
				for j := 0; j < nc; j++ {
					c := vari[j]
					if j == k {
						c = 1
					}
					for r1 := 0; r1 < na; r1++ {
						hj1 := h.At(r1, j)
						for r2 := 0; r2 < na; r2++ {
							a.Set(r1, r2, a.At(r1, r2)+complex(c, 0)*hj1*conj(h.At(r2, j)))
						}
					}
				}
				hk := make([]complex128, na)
				for r := 0; r < na; r++ {
					hk[r] = h.At(r, k)
				}
				w, err := cmplxmat.Solve(a, hk)
				if err != nil {
					return fmt.Errorf("phy: PIC filter singular at (%d,%d): %w", t, s, err)
				}
				// Residual after cancelling the other streams' means.
				for r := 0; r < na; r++ {
					resid[r] = y[t][s][r]
					for j := 0; j < nc; j++ {
						if j != k {
							resid[r] -= h.At(r, j) * mean[j]
						}
					}
				}
				var z complex128
				var mu complex128
				for r := 0; r < na; r++ {
					z += conj(w[r]) * resid[r]
					mu += conj(w[r]) * hk[r]
				}
				muR := real(mu)
				if muR < 1e-9 {
					muR = 1e-9
				}
				nu2 := muR * (1 - muR)
				if nu2 < 1e-9 {
					nu2 = 1e-9
				}
				// Exact max-log per-bit LLRs over the constellation.
				dst := llr[t][s][k*q : (k+1)*q]
				var min0, min1 [8]float64
				for b := 0; b < q; b++ {
					min0[b] = math.Inf(1)
					min1[b] = math.Inf(1)
				}
				for p := 0; p < size; p++ {
					d := z - complex(muR, 0)*cons.PointIndex(p)
					dist := real(d)*real(d) + imag(d)*imag(d)
					for b := 0; b < q; b++ {
						if pointBits[p][b] == 1 {
							if dist < min1[b] {
								min1[b] = dist
							}
						} else if dist < min0[b] {
							min0[b] = dist
						}
					}
				}
				for b := 0; b < q; b++ {
					v := (min0[b] - min1[b]) / nu2
					if v > 50 {
						v = 50
					} else if v < -50 {
						v = -50
					}
					dst[b] = v
				}
			}
		}
	}
	return nil
}

// conj avoids importing math/cmplx for one operation in a hot loop.
func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
