// Package phy implements the coded MIMO-OFDM frame pipeline of §4:
// per-client scrambling, CRC framing, rate-1/2 (optionally punctured)
// convolutional coding, per-OFDM-symbol interleaving, QAM mapping onto
// 48 data subcarriers, per-subcarrier MIMO detection at the AP, and
// soft Viterbi decoding back to payload bits.
//
// Uplink multi-user MIMO means every client encodes independently —
// there is no coding across streams — so the receiver's only coupling
// between clients is the per-subcarrier MIMO detector, exactly the
// component the paper replaces.
package phy

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/obs"
	"repro/internal/ofdm"
	"repro/internal/rng"
)

// Config describes one frame format.
type Config struct {
	Cons       *constellation.Constellation
	Rate       fec.Rate
	NumSymbols int // OFDM symbols per frame
	// SoftDecoding feeds per-bit LLRs from the detector into the
	// Viterbi decoder instead of hard decisions. It requires a
	// detector implementing core.SoftDetector (see
	// core.NewListSphereDecoder), the §7 future-work receiver.
	SoftDecoding bool
	// Recorder, when non-nil, receives one obs.DecodeSample per stream
	// decode (Viterbi path metric and CRC outcome). It must be safe
	// for concurrent use when Links run on multiple workers.
	Recorder obs.Recorder
}

// Validate checks the configuration and returns derived sizes.
func (c Config) Validate() error {
	if c.Cons == nil {
		return fmt.Errorf("phy: no constellation configured")
	}
	if c.NumSymbols <= 0 {
		return fmt.Errorf("phy: NumSymbols must be positive, got %d", c.NumSymbols)
	}
	if c.PayloadBits() <= 0 {
		return fmt.Errorf("phy: frame of %d symbols too short for CRC and tail", c.NumSymbols)
	}
	// Puncturing must tile the coded length exactly.
	coded := c.CodedBits()
	switch c.Rate {
	case fec.Rate23:
		if coded%3 != 0 {
			return fmt.Errorf("phy: coded length %d not divisible by 3 for rate 2/3", coded)
		}
	case fec.Rate34:
		if coded%4 != 0 {
			return fmt.Errorf("phy: coded length %d not divisible by 4 for rate 3/4", coded)
		}
	}
	return nil
}

// BitsPerSymbol returns the coded bits carried by one OFDM symbol of
// one stream (N_CBPS).
func (c Config) BitsPerSymbol() int { return ofdm.NumData * c.Cons.Bits() }

// CodedBits returns the coded bits per frame per stream.
func (c Config) CodedBits() int { return c.BitsPerSymbol() * c.NumSymbols }

// InfoBits returns the information bits per frame per stream,
// including the CRC but excluding the convolutional tail.
func (c Config) InfoBits() int {
	return int(float64(c.CodedBits())*c.Rate.Fraction()) - (fec.ConstraintLength - 1)
}

// PayloadBits returns the user payload bits per frame per stream.
func (c Config) PayloadBits() int { return c.InfoBits() - 32 }

// PHYRateMbps returns the per-stream PHY bit rate in Mbit/s for this
// format over 20 MHz (48 data subcarriers, 4 µs symbols).
func (c Config) PHYRateMbps() float64 {
	return float64(c.BitsPerSymbol()) * c.Rate.Fraction() / (ofdm.SymbolDuration * 1e6)
}

// Frame is one encoded multi-stream frame in the frequency domain.
type Frame struct {
	Config   Config
	Payloads [][]byte // [stream][payload bit]
	// X[t][s] is the transmit vector across streams at OFDM symbol t,
	// data subcarrier s.
	X [][][]complex128
}

// Link runs frames through encode → channel → detect → decode.
//
// A Link owns reusable receive/decode scratch (detector outputs,
// deinterleave and depuncture buffers, a Viterbi workspace), so it is
// not safe for concurrent use: the link pipeline builds one Link per
// worker.
type Link struct {
	cfg  Config
	il   *fec.Interleaver
	nbps int

	// prep, when set via SetPrepPool, routes per-subcarrier detector
	// preparation through a per-worker PreparedChannel cache.
	prep *core.PrepPool

	rx  receiveScratch
	dec decodeScratch
	enc encodeScratch
}

// encodeScratch holds the per-stream encode buffers Encode reuses
// across streams and frames: the CRC-extended (then in-place
// scrambled) info block, the convolutional mother code, the punctured
// codeword, its per-symbol interleaving, and the per-subcarrier bit
// group fed to the constellation mapper. Only state the Frame retains
// — payloads and the symbol grid — is allocated per call.
type encodeScratch struct {
	info   []byte
	mother []byte
	coded  []byte
	inter  []byte
	bitbuf []byte
}

// receiveScratch holds the per-frame detector output buffers
// TransmitReceiveCSI reuses across frames of identical geometry. yb is
// the structure-of-arrays received-signal buffer: one flat slice
// holding every (symbol, subcarrier) observation contiguously in
// symbol-major order, yb[(t·NumData+s)·na : +na], so the batched
// detection pass walks one OFDM symbol's 48 subcarriers as a single
// sequential sweep.
type receiveScratch struct {
	detIdx [][][]int
	detLLR [][][]float64
	yb     []complex128
}

// decodeScratch holds the per-stream decode buffers, sized once on
// first use so steady-state stream decoding does not allocate.
type decodeScratch struct {
	coded     []float64 // deinterleaved soft coded bits, whole frame
	codedHard []int8    // deinterleaved ±1 coded values, hard path
	bitbuf    []byte    // per-symbol demapped bits
	block     []byte    // one interleaver block, hard path
	blockSoft []float64 // one interleaver block, soft path
	deint     []byte    // deinterleaver output, hard path
	deintSoft []float64 // deinterleaver output, soft path
	llrs      []float64 // depunctured mother-code LLRs
	llrsHard  []int8    // depunctured mother-code values, hard path
	vit       fec.ViterbiWorkspace
}

// NewLink validates the configuration and builds the interleaver.
func NewLink(cfg Config) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	il, err := fec.NewInterleaver(cfg.BitsPerSymbol(), cfg.Cons.Bits())
	if err != nil {
		return nil, err
	}
	return &Link{cfg: cfg, il: il, nbps: cfg.Cons.Bits()}, nil
}

// Config returns the link's frame format.
func (l *Link) Config() Config { return l.cfg }

// SetPrepPool attaches a per-subcarrier preparation cache: subsequent
// TransmitReceiveCSI calls prepare the detector through pool (slot =
// data-subcarrier index), so an unchanged channel skips its QR. A nil
// pool restores the direct det.Prepare path.
func (l *Link) SetPrepPool(pool *core.PrepPool) { l.prep = pool }

// Encode builds one frame for nc independent streams with random
// payloads drawn from src.
func (l *Link) Encode(src *rng.Source, nc int) (*Frame, error) {
	if nc <= 0 {
		return nil, fmt.Errorf("phy: need at least one stream")
	}
	cfg := l.cfg
	f := &Frame{Config: cfg}
	f.Payloads = make([][]byte, nc)
	// The symbol grid's shape is fixed by the frame format, so its
	// nested slices are views into two backing allocations (cells and
	// points) instead of NumSymbols·(NumData+1) separate ones; full
	// slice expressions keep the views from growing into each other.
	cells := make([][]complex128, cfg.NumSymbols*ofdm.NumData)
	points := make([]complex128, len(cells)*nc)
	f.X = make([][][]complex128, cfg.NumSymbols)
	for t := range f.X {
		f.X[t] = cells[t*ofdm.NumData : (t+1)*ofdm.NumData : (t+1)*ofdm.NumData]
		for s := range f.X[t] {
			off := (t*ofdm.NumData + s) * nc
			f.X[t][s] = points[off : off+nc : off+nc]
		}
	}
	payloads := make([]byte, nc*cfg.PayloadBits())
	if cap(l.enc.bitbuf) < l.nbps {
		l.enc.bitbuf = make([]byte, l.nbps)
	}
	bitbuf := l.enc.bitbuf[:l.nbps]
	for k := 0; k < nc; k++ {
		payload := payloads[k*cfg.PayloadBits() : (k+1)*cfg.PayloadBits() : (k+1)*cfg.PayloadBits()]
		src.Bits(payload)
		f.Payloads[k] = payload
		coded, err := l.encodeStream(payload, byte(0x5d+k))
		if err != nil {
			return nil, err
		}
		// Map interleaved coded bits to constellation points.
		for t := 0; t < cfg.NumSymbols; t++ {
			block := coded[t*cfg.BitsPerSymbol() : (t+1)*cfg.BitsPerSymbol()]
			for s := 0; s < ofdm.NumData; s++ {
				copy(bitbuf, block[s*l.nbps:(s+1)*l.nbps])
				col, row := cfg.Cons.MapBits(bitbuf)
				f.X[t][s][k] = cfg.Cons.Point(col, row)
			}
		}
	}
	return f, nil
}

// encodeStream runs one stream's payload through CRC, scrambling,
// convolutional coding, puncturing and per-symbol interleaving, all
// in the link's reusable encode scratch. The returned slice aliases
// that scratch: it is valid only until the next encodeStream call.
func (l *Link) encodeStream(payload []byte, scramblerSeed byte) ([]byte, error) {
	cfg := l.cfg
	es := &l.enc
	// AppendCRCTo already copies the payload into the scratch, so the
	// scrambler can run in place without a second buffer.
	es.info = fec.AppendCRCTo(es.info[:0], payload)
	if len(es.info) != cfg.InfoBits() {
		return nil, fmt.Errorf("phy: info block is %d bits, want %d", len(es.info), cfg.InfoBits())
	}
	fec.Scramble(es.info, scramblerSeed)
	es.mother = fec.ConvEncodeAppend(es.mother[:0], es.info)
	es.coded = fec.PunctureAppend(es.coded[:0], es.mother, cfg.Rate)
	if len(es.coded) != cfg.CodedBits() {
		return nil, fmt.Errorf("phy: coded block is %d bits, want %d", len(es.coded), cfg.CodedBits())
	}
	if cap(es.inter) < len(es.coded) {
		es.inter = make([]byte, len(es.coded))
	}
	es.inter = es.inter[:len(es.coded)]
	for t := 0; t < cfg.NumSymbols; t++ {
		lo, hi := t*cfg.BitsPerSymbol(), (t+1)*cfg.BitsPerSymbol()
		if _, err := l.il.Interleave(es.inter[lo:hi], es.coded[lo:hi]); err != nil {
			return nil, err
		}
	}
	return es.inter, nil
}

// Result reports one frame's reception.
type Result struct {
	// StreamOK[k] is true when stream k's CRC verified.
	StreamOK []bool
	// SymbolErrors counts wrong constellation decisions (pre-FEC).
	SymbolErrors int
	// Symbols is the total number of constellation decisions made.
	Symbols int
}

// FrameOK reports whether every stream decoded cleanly.
func (r Result) FrameOK() bool {
	for _, ok := range r.StreamOK {
		if !ok {
			return false
		}
	}
	return true
}

// TransmitReceive sends the frame over the per-subcarrier channels hs
// (one na×nc matrix per data subcarrier, constant for the frame's
// duration), with AWGN of variance noiseVar, detecting with det
// against perfect channel knowledge.
//
// The detector is Prepared once per subcarrier and reused across the
// frame's OFDM symbols, matching how a real receiver amortizes QR
// decompositions over a channel coherence time.
func (l *Link) TransmitReceive(src *rng.Source, f *Frame, hs []*cmplxmat.Matrix, det core.Detector, noiseVar float64) (*Result, error) {
	return l.TransmitReceiveCSI(src, f, hs, hs, det, noiseVar)
}

// TransmitReceiveCSI is TransmitReceive with separate channel
// knowledge: the signal propagates through hsTrue while the detector
// is prepared on hsDet (e.g. a noisy preamble-based estimate from
// EstimateChannels).
func (l *Link) TransmitReceiveCSI(src *rng.Source, f *Frame, hsTrue, hsDet []*cmplxmat.Matrix, det core.Detector, noiseVar float64) (*Result, error) {
	cfg := l.cfg
	hs := hsTrue
	if len(hs) != ofdm.NumData || len(hsDet) != ofdm.NumData {
		return nil, fmt.Errorf("phy: %d/%d subcarrier channels, want %d", len(hs), len(hsDet), ofdm.NumData)
	}
	nc := len(f.Payloads)
	na := hs[0].Rows
	if hs[0].Cols != nc {
		return nil, fmt.Errorf("phy: channel has %d streams, frame has %d", hs[0].Cols, nc)
	}
	var soft core.SoftDetector
	if cfg.SoftDecoding {
		sd, ok := det.(core.SoftDetector)
		if !ok {
			return nil, fmt.Errorf("phy: soft decoding requires a SoftDetector, %s is not one", det.Name())
		}
		if noiseVar <= 0 {
			return nil, fmt.Errorf("phy: soft decoding needs a positive noise variance")
		}
		soft = sd
	}
	// detIdx[t][s] holds the detected point indices; detLLR the
	// per-bit soft values when soft decoding is on. Both live in
	// link-owned scratch reused across frames of the same geometry.
	detIdx, detLLR, yb := l.sizeReceive(cfg.NumSymbols, nc, na, soft != nil)
	res := &Result{StreamOK: make([]bool, nc)}
	for s := 0; s < ofdm.NumData; s++ {
		if hsDet[s].Rows != na || hsDet[s].Cols != nc {
			return nil, fmt.Errorf("phy: CSI shape mismatch at subcarrier %d", s)
		}
	}
	// Transmit every (subcarrier, symbol) observation into the flat SoA
	// buffer. The loop nest is subcarrier-major so the noise draw
	// schedule — and with it every golden measurement — is independent
	// of how the detection pass below is ordered.
	for s := 0; s < ofdm.NumData; s++ {
		for t := 0; t < cfg.NumSymbols; t++ {
			at := (t*ofdm.NumData + s) * na
			channel.Transmit(yb[at:at+na], src, hs[s], f.X[t][s], noiseVar)
		}
	}
	if l.prep != nil {
		// Batched detection: walk all data subcarriers of one OFDM
		// symbol as a single sequential sweep over the SoA buffer — the
		// order the observations arrive in a real receiver. Switching
		// subcarrier per detection re-prepares through the cache, where
		// it is a pure hit after each subcarrier's first symbol.
		for t := 0; t < cfg.NumSymbols; t++ {
			row := yb[t*ofdm.NumData*na:]
			for s := 0; s < ofdm.NumData; s++ {
				if err := l.prepareDetector(det, s, hsDet[s]); err != nil {
					return nil, fmt.Errorf("phy: prepare subcarrier %d: %w", s, err)
				}
				if err := l.detectOne(det, soft, f, res, detIdx, detLLR, row[s*na:(s+1)*na], t, s, nc, noiseVar); err != nil {
					return nil, err
				}
			}
		}
	} else {
		// Without a preparation cache a subcarrier switch costs a full
		// factorization, so keep the subcarrier-major order that
		// prepares each channel exactly once.
		for s := 0; s < ofdm.NumData; s++ {
			if err := l.prepareDetector(det, s, hsDet[s]); err != nil {
				return nil, fmt.Errorf("phy: prepare subcarrier %d: %w", s, err)
			}
			for t := 0; t < cfg.NumSymbols; t++ {
				at := (t*ofdm.NumData + s) * na
				if err := l.detectOne(det, soft, f, res, detIdx, detLLR, yb[at:at+na], t, s, nc, noiseVar); err != nil {
					return nil, err
				}
			}
		}
	}
	// Per-stream decoding.
	for k := 0; k < nc; k++ {
		var ok bool
		var metric float64
		var err error
		if soft != nil {
			ok, metric, err = l.decodeStreamSoft(f, detLLR, k, byte(0x5d+k))
		} else {
			ok, metric, err = l.decodeStream(f, detIdx, k, byte(0x5d+k))
		}
		if err != nil {
			return nil, err
		}
		res.StreamOK[k] = ok
		if cfg.Recorder != nil {
			cfg.Recorder.RecordDecode(obs.DecodeSample{Stream: k, PathMetric: metric, OK: ok})
		}
	}
	return res, nil
}

// TransmitReceiveBatchCSI runs a batch of frames that share one
// per-subcarrier channel set through transmit → detect → decode,
// producing per-frame Results byte-identical to calling
// TransmitReceiveCSI once per frame. Two things change, neither of
// which can alter a decision:
//
//   - Transmission still runs frame-by-frame in the single-frame
//     subcarrier-major order, each frame drawing noise from its own
//     source, so every frame's noise schedule is exactly the
//     single-frame schedule.
//   - Detection extends the symbol-major SoA sweep across the whole
//     batch: each subcarrier's detector preparation happens once per
//     batch instead of once per (frame, symbol), and then every frame's
//     observations on that subcarrier are swept in one pass. A
//     preparation is a pure function of the subcarrier's channel (the
//     cache-hit contract: a hit changes where prepared state comes
//     from, never what it contains), and a detection is a pure function
//     of (prepared state, observation), so reordering detections across
//     frames cannot change any of them.
//
// Only the complexity accounting (pool counters, detector stats) is
// attributed batch-wide rather than per frame.
func (l *Link) TransmitReceiveBatchCSI(srcs []*rng.Source, frames []*Frame, hsTrue, hsDet []*cmplxmat.Matrix, det core.Detector, noiseVar float64) ([]*Result, error) {
	cfg := l.cfg
	b := len(frames)
	if b == 0 || len(srcs) != b {
		return nil, fmt.Errorf("phy: batch of %d frames with %d sources", b, len(srcs))
	}
	hs := hsTrue
	if len(hs) != ofdm.NumData || len(hsDet) != ofdm.NumData {
		return nil, fmt.Errorf("phy: %d/%d subcarrier channels, want %d", len(hs), len(hsDet), ofdm.NumData)
	}
	nc := len(frames[0].Payloads)
	na := hs[0].Rows
	if hs[0].Cols != nc {
		return nil, fmt.Errorf("phy: channel has %d streams, frame has %d", hs[0].Cols, nc)
	}
	for _, f := range frames {
		if len(f.Payloads) != nc {
			return nil, fmt.Errorf("phy: mixed stream counts in batch (%d vs %d)", len(f.Payloads), nc)
		}
	}
	var soft core.SoftDetector
	if cfg.SoftDecoding {
		sd, ok := det.(core.SoftDetector)
		if !ok {
			return nil, fmt.Errorf("phy: soft decoding requires a SoftDetector, %s is not one", det.Name())
		}
		if noiseVar <= 0 {
			return nil, fmt.Errorf("phy: soft decoding needs a positive noise variance")
		}
		soft = sd
	}
	for s := 0; s < ofdm.NumData; s++ {
		if hsDet[s].Rows != na || hsDet[s].Cols != nc {
			return nil, fmt.Errorf("phy: CSI shape mismatch at subcarrier %d", s)
		}
	}
	T := cfg.NumSymbols
	detIdx, detLLR, yb := l.sizeReceive(b*T, nc, na, soft != nil)
	results := make([]*Result, b)
	// Transmit frame-by-frame in the single-frame subcarrier-major
	// order: frame f's symbol t on subcarrier s lands at SoA row f·T+t.
	for f := 0; f < b; f++ {
		for s := 0; s < ofdm.NumData; s++ {
			for t := 0; t < T; t++ {
				at := ((f*T+t)*ofdm.NumData + s) * na
				channel.Transmit(yb[at:at+na], srcs[f], hs[s], frames[f].X[t][s], noiseVar)
			}
		}
		results[f] = &Result{StreamOK: make([]bool, nc)}
	}
	// Batched detection: one preparation per subcarrier per batch, then
	// a single sweep over every frame's symbols on that subcarrier.
	for s := 0; s < ofdm.NumData; s++ {
		if err := l.prepareDetector(det, s, hsDet[s]); err != nil {
			return nil, fmt.Errorf("phy: prepare subcarrier %d: %w", s, err)
		}
		for f := 0; f < b; f++ {
			fIdx := detIdx[f*T : (f+1)*T]
			var fLLR [][][]float64
			if soft != nil {
				fLLR = detLLR[f*T : (f+1)*T]
			}
			for t := 0; t < T; t++ {
				at := ((f*T+t)*ofdm.NumData + s) * na
				if err := l.detectOne(det, soft, frames[f], results[f], fIdx, fLLR, yb[at:at+na], t, s, nc, noiseVar); err != nil {
					return nil, err
				}
			}
		}
	}
	// Per-frame, per-stream decoding, in frame order.
	for f := 0; f < b; f++ {
		fIdx := detIdx[f*T : (f+1)*T]
		var fLLR [][][]float64
		if soft != nil {
			fLLR = detLLR[f*T : (f+1)*T]
		}
		for k := 0; k < nc; k++ {
			var ok bool
			var metric float64
			var err error
			if soft != nil {
				ok, metric, err = l.decodeStreamSoft(frames[f], fLLR, k, byte(0x5d+k))
			} else {
				ok, metric, err = l.decodeStream(frames[f], fIdx, k, byte(0x5d+k))
			}
			if err != nil {
				return nil, err
			}
			results[f].StreamOK[k] = ok
			if cfg.Recorder != nil {
				cfg.Recorder.RecordDecode(obs.DecodeSample{Stream: k, PathMetric: metric, OK: ok})
			}
		}
	}
	return results, nil
}

// prepareDetector prepares det for subcarrier s's channel, through the
// attached PrepPool when one is set.
func (l *Link) prepareDetector(det core.Detector, s int, h *cmplxmat.Matrix) error {
	if l.prep != nil {
		return l.prep.Prepare(det, s, h)
	}
	return det.Prepare(h)
}

// detectOne runs one (symbol, subcarrier) detection from the SoA
// receive buffer: hard decisions, soft values when requested, and the
// pre-FEC symbol-error accounting.
//
//geolint:noalloc
func (l *Link) detectOne(det core.Detector, soft core.SoftDetector, f *Frame, res *Result, detIdx [][][]int, detLLR [][][]float64, y []complex128, t, s, nc int, noiseVar float64) error {
	if _, err := det.Detect(detIdx[t][s], y); err != nil {
		//geolint:alloc-ok error path
		return fmt.Errorf("phy: detect subcarrier %d symbol %d: %w", s, t, err)
	}
	if soft != nil {
		if _, err := soft.DetectSoft(detLLR[t][s], y, noiseVar); err != nil {
			//geolint:alloc-ok error path
			return fmt.Errorf("phy: soft detect subcarrier %d symbol %d: %w", s, t, err)
		}
	}
	cons := l.cfg.Cons
	for k := 0; k < nc; k++ {
		res.Symbols++
		//geolint:float-ok both operands are verbatim entries of the same constellation table
		if cons.PointIndex(detIdx[t][s][k]) != f.X[t][s][k] {
			res.SymbolErrors++
		}
	}
	return nil
}

// sizeReceive returns the geometry-dependent detector output buffers
// and the flat SoA receive buffer for rows symbol rows (NumSymbols for
// a single frame, batch×NumSymbols for a frame batch), reusing the
// link's scratch when it is already large enough — so alternating
// batch sizes slice the same high-water-mark allocation instead of
// reallocating. Every entry is fully overwritten before use (Transmit
// writes every observation, Detect and DetectSoft write all nc entries
// of their slot), so reuse cannot leak one frame's signal or decisions
// into the next.
func (l *Link) sizeReceive(rows, nc, na int, soft bool) (detIdx [][][]int, detLLR [][][]float64, yb []complex128) {
	cfg := l.cfg
	r := &l.rx
	if len(r.detIdx) < rows || len(r.detIdx[0][0]) != nc {
		r.detIdx = make([][][]int, rows)
		flat := make([]int, rows*ofdm.NumData*nc)
		for t := range r.detIdx {
			r.detIdx[t] = make([][]int, ofdm.NumData)
			for s := range r.detIdx[t] {
				r.detIdx[t][s], flat = flat[:nc:nc], flat[nc:]
			}
		}
	}
	detIdx = r.detIdx[:rows]
	if soft {
		q := nc * cfg.Cons.Bits()
		if len(r.detLLR) < rows || len(r.detLLR[0][0]) != q {
			r.detLLR = make([][][]float64, rows)
			flat := make([]float64, rows*ofdm.NumData*q)
			for t := range r.detLLR {
				r.detLLR[t] = make([][]float64, ofdm.NumData)
				for s := range r.detLLR[t] {
					r.detLLR[t][s], flat = flat[:q:q], flat[q:]
				}
			}
		}
		detLLR = r.detLLR[:rows]
	}
	n := rows * ofdm.NumData * na
	if cap(r.yb) < n {
		r.yb = make([]complex128, n)
	}
	return detIdx, detLLR, r.yb[:n]
}

// depuncture re-inserts erasures into one stream's coded LLRs using
// the link's reusable mother-code buffer. For rate 1/2 the mother
// length equals the coded length, so one motherLen-sized buffer serves
// every rate.
func (l *Link) depuncture(coded []float64) []float64 {
	cfg := l.cfg
	sc := &l.dec
	motherLen := 2 * (cfg.InfoBits() + fec.ConstraintLength - 1)
	if cap(sc.llrs) < motherLen {
		sc.llrs = make([]float64, motherLen)
	}
	return fec.DepunctureInto(sc.llrs[:motherLen], coded, cfg.Rate, motherLen)
}

// depunctureHard is depuncture over the hard path's ±1 values.
func (l *Link) depunctureHard(coded []int8) []int8 {
	cfg := l.cfg
	sc := &l.dec
	motherLen := 2 * (cfg.InfoBits() + fec.ConstraintLength - 1)
	if cap(sc.llrsHard) < motherLen {
		sc.llrsHard = make([]int8, motherLen)
	}
	return fec.DepunctureHardInto(sc.llrsHard[:motherLen], coded, cfg.Rate, motherLen)
}

// decodeStreamSoft is decodeStream over detector LLRs: deinterleave
// the soft values, depuncture, Viterbi-decode, CRC-check. The second
// return value is the winning Viterbi path metric per coded bit.
func (l *Link) decodeStreamSoft(f *Frame, detLLR [][][]float64, k int, scramblerSeed byte) (bool, float64, error) {
	cfg := l.cfg
	sc := &l.dec
	q := cfg.Cons.Bits()
	if cap(sc.coded) < cfg.CodedBits() {
		sc.coded = make([]float64, 0, cfg.CodedBits())
	}
	if cap(sc.blockSoft) < cfg.BitsPerSymbol() {
		sc.blockSoft = make([]float64, cfg.BitsPerSymbol())
		sc.deintSoft = make([]float64, cfg.BitsPerSymbol())
	}
	coded := sc.coded[:0]
	block := sc.blockSoft[:cfg.BitsPerSymbol()]
	for t := 0; t < cfg.NumSymbols; t++ {
		for s := 0; s < ofdm.NumData; s++ {
			copy(block[s*q:(s+1)*q], detLLR[t][s][k*q:(k+1)*q])
		}
		deint, err := l.il.DeinterleaveSoft(sc.deintSoft[:cfg.BitsPerSymbol()], block)
		if err != nil {
			return false, 0, err
		}
		coded = append(coded, deint...)
	}
	llrs := l.depuncture(coded)
	dec, metric, err := sc.vit.DecodeSoftMetric(llrs)
	if err != nil {
		return false, 0, err
	}
	metric /= float64(len(llrs))
	fec.Scramble(dec, scramblerSeed)
	payload, ok := fec.CheckCRC(dec)
	if !ok || len(payload) != len(f.Payloads[k]) {
		return false, metric, nil
	}
	for i, b := range f.Payloads[k] {
		if payload[i] != b {
			return false, metric, nil
		}
	}
	return true, metric, nil
}

// decodeStream demaps, deinterleaves, depunctures, Viterbi-decodes and
// CRC-checks stream k, comparing against the transmitted payload. The
// second return value is the winning Viterbi path metric per coded
// bit.
func (l *Link) decodeStream(f *Frame, detIdx [][][]int, k int, scramblerSeed byte) (bool, float64, error) {
	cfg := l.cfg
	sc := &l.dec
	if cap(sc.block) < cfg.BitsPerSymbol() {
		sc.bitbuf = make([]byte, l.nbps)
		sc.block = make([]byte, cfg.BitsPerSymbol())
		sc.deint = make([]byte, cfg.BitsPerSymbol())
	}
	if cap(sc.codedHard) < cfg.CodedBits() {
		sc.codedHard = make([]int8, 0, cfg.CodedBits())
	}
	coded := sc.codedHard[:0]
	bitbuf := sc.bitbuf[:l.nbps]
	block := sc.block[:cfg.BitsPerSymbol()]
	for t := 0; t < cfg.NumSymbols; t++ {
		for s := 0; s < ofdm.NumData; s++ {
			col, row := cfg.Cons.Coords(detIdx[t][s][k])
			cfg.Cons.SymbolBits(bitbuf, col, row)
			copy(block[s*l.nbps:(s+1)*l.nbps], bitbuf)
		}
		deint, err := l.il.Deinterleave(sc.deint[:cfg.BitsPerSymbol()], block)
		if err != nil {
			return false, 0, err
		}
		for _, b := range deint {
			if b == 1 {
				coded = append(coded, 1)
			} else {
				coded = append(coded, -1)
			}
		}
	}
	vals := l.depunctureHard(coded)
	dec, metric, err := sc.vit.DecodeHardMetric(vals)
	if err != nil {
		return false, 0, err
	}
	metric /= float64(len(vals))
	fec.Scramble(dec, scramblerSeed)
	payload, ok := fec.CheckCRC(dec)
	if !ok {
		return false, metric, nil
	}
	// A CRC pass with a wrong payload would be a miss; verify against
	// the transmitted bits so the simulator never overcounts goodput.
	want := f.Payloads[k]
	if len(payload) != len(want) {
		return false, metric, nil
	}
	for i := range want {
		if payload[i] != want[i] {
			return false, metric, nil
		}
	}
	return true, metric, nil
}
