package phy

import (
	"math/cmplx"
	"testing"

	"repro/internal/channel"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/rng"
)

func TestEstimateChannelsNoiseless(t *testing.T) {
	src := rng.New(51)
	hs := perSCChannels(src, 4, 2)
	est, err := EstimateChannels(src, hs, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := range hs {
		for i := range hs[s].Data {
			if hs[s].Data[i] != est[s].Data[i] { //geolint:float-ok test asserts exact bitwise reproducibility
				t.Fatalf("noiseless estimate differs at subcarrier %d entry %d", s, i)
			}
		}
	}
}

func TestEstimateChannelsErrorShrinksWithReps(t *testing.T) {
	src := rng.New(52)
	hs := perSCChannels(src, 4, 2)
	nv := channel.NoiseVarForSNRdB(10)
	mse := func(reps int) float64 {
		est, err := EstimateChannels(rng.New(99), hs, nv, reps)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		var n int
		for s := range hs {
			for i := range hs[s].Data {
				d := cmplx.Abs(hs[s].Data[i] - est[s].Data[i])
				e += d * d
				n++
			}
		}
		return e / float64(n)
	}
	m1 := mse(1)
	m8 := mse(8)
	t.Logf("estimation MSE at 10 dB: reps=1 %.4f, reps=8 %.4f", m1, m8)
	if m8 > m1/3 {
		t.Fatalf("averaging 8 preambles should cut MSE ~8×: %g vs %g", m1, m8)
	}
}

func TestEstimateChannelsValidation(t *testing.T) {
	src := rng.New(53)
	if _, err := EstimateChannels(src, nil, 0, 1); err == nil {
		t.Fatal("empty channel list accepted")
	}
	hs := perSCChannels(src, 4, 2)
	if _, err := EstimateChannels(src, hs, 0, 0); err == nil {
		t.Fatal("zero repetitions accepted")
	}
}

func TestTrainingSymbols(t *testing.T) {
	if TrainingSymbols(4, 2) != 8 {
		t.Fatalf("training symbols = %d", TrainingSymbols(4, 2))
	}
}

// TestEstimatedCSIFrame: with estimated CSI the frame still decodes at
// comfortable SNR, and with genie CSI both paths agree exactly when
// the estimate is noise-free.
func TestEstimatedCSIFrame(t *testing.T) {
	cfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 4}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(54)
	f, err := link.Encode(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs := perSCChannels(src, 4, 2)
	nv := channel.NoiseVarForSNRdB(25)
	est, err := EstimateChannels(src, hs, nv, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewGeosphere(cfg.Cons)
	res, err := link.TransmitReceiveCSI(src, f, hs, est, det, nv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameOK() {
		t.Fatalf("estimated-CSI frame at 25 dB failed: %+v", res)
	}
	// Mismatched shapes must be rejected.
	if _, err := link.TransmitReceiveCSI(src, f, hs, perSCChannels(src, 4, 3), det, nv); err == nil {
		t.Fatal("CSI shape mismatch accepted")
	}
}
