package phy

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/constellation"
	"repro/internal/fec"
	"repro/internal/rng"
)

func TestIterativeCleanConvergesFirstIteration(t *testing.T) {
	cfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 4}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(71)
	f, err := link.Encode(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs := perSCChannels(src, 4, 2)
	res, err := link.TransmitReceiveIterative(src, f, hs, channel.NoiseVarForSNRdB(30), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameOK() {
		t.Fatalf("clean frame failed: %+v", res)
	}
	if res.Iterations != 1 {
		t.Fatalf("clean frame took %d iterations", res.Iterations)
	}
}

func TestIterativeValidation(t *testing.T) {
	cfg := Config{Cons: constellation.QPSK, Rate: fec.Rate12, NumSymbols: 4}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(72)
	f, err := link.Encode(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs := perSCChannels(src, 4, 2)
	if _, err := link.TransmitReceiveIterative(src, f, hs, 0.1, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if _, err := link.TransmitReceiveIterative(src, f, hs, 0, 2); err == nil {
		t.Fatal("zero noise accepted")
	}
	if _, err := link.TransmitReceiveIterative(src, f, hs[:5], 0.1, 2); err == nil {
		t.Fatal("short channel list accepted")
	}
	if _, err := link.TransmitReceiveIterative(src, f, perSCChannels(src, 4, 3), 0.1, 2); err == nil {
		t.Fatal("stream mismatch accepted")
	}
}

// TestIterativeGain is the point of the §7 receiver: at an operating
// point where one-shot detection loses frames, extra turbo iterations
// recover a meaningful fraction of them.
func TestIterativeGain(t *testing.T) {
	cfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 4}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noise := channel.NoiseVarForSNRdB(11.5)
	oneShotOK, iterOK, extraIters := 0, 0, 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		seed := int64(900 + trial)
		hs := flatChannels(rng.New(seed), 4, 4)
		f, err := link.Encode(rng.New(seed+1), 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := link.TransmitReceiveIterative(rng.New(seed+2), f, hs, noise, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.FrameOKAt) == 0 {
			t.Fatal("no per-iteration record")
		}
		if res.FrameOKAt[0] {
			oneShotOK++
		}
		if res.FrameOK() {
			iterOK++
		}
		if res.Iterations > 1 {
			extraIters++
		}
	}
	t.Logf("frames decoded at 11.5 dB over %d trials: one-shot=%d after-iterations=%d (%d frames iterated)",
		trials, oneShotOK, iterOK, extraIters)
	if iterOK < oneShotOK {
		t.Fatalf("iterations lost frames: %d < %d", iterOK, oneShotOK)
	}
	if oneShotOK == trials {
		t.Fatal("operating point too easy to show iteration gain")
	}
	if iterOK == oneShotOK {
		t.Fatalf("iterations recovered no frames (one-shot %d/%d); turbo loop ineffective", oneShotOK, trials)
	}
}
