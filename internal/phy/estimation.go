package phy

import (
	"fmt"

	"repro/internal/cmplxmat"
	"repro/internal/rng"
)

// EstimateChannels simulates preamble-based MIMO channel estimation:
// each of the nc streams sends `reps` time-orthogonal unit-power
// training symbols per subcarrier (the 802.11n HT-LTF idea in its
// simplest identity-mapped form), and the receiver least-squares
// estimates every column of every subcarrier's channel matrix from
// what it hears. With zero noise the estimates are exact; otherwise
// each entry carries CN(0, noiseVar/reps) estimation error — the
// receiver impairment the paper's testbed lives with and the
// estimated-csi experiment quantifies.
func EstimateChannels(src *rng.Source, hs []*cmplxmat.Matrix, noiseVar float64, reps int) ([]*cmplxmat.Matrix, error) {
	if len(hs) == 0 {
		return nil, fmt.Errorf("phy: no channels to estimate")
	}
	if reps <= 0 {
		return nil, fmt.Errorf("phy: training repetitions must be positive, got %d", reps)
	}
	na, nc := hs[0].Rows, hs[0].Cols
	out := make([]*cmplxmat.Matrix, len(hs))
	for s, h := range hs {
		if h.Rows != na || h.Cols != nc {
			return nil, fmt.Errorf("phy: subcarrier %d has shape %d×%d, want %d×%d", s, h.Rows, h.Cols, na, nc)
		}
		est := cmplxmat.New(na, nc)
		for c := 0; c < nc; c++ {
			// Stream c alone transmits 1; the receiver hears column c
			// plus noise, averaged over the repetitions.
			for a := 0; a < na; a++ {
				var acc complex128
				for rep := 0; rep < reps; rep++ {
					acc += h.At(a, c) + src.CN(noiseVar)
				}
				est.Set(a, c, acc/complex(float64(reps), 0))
			}
		}
		out[s] = est
	}
	return out, nil
}

// TrainingSymbols returns the preamble length in OFDM symbols that the
// estimation scheme costs: one symbol per stream per repetition. The
// link layer charges it against air time.
func TrainingSymbols(nc, reps int) int { return nc * reps }
