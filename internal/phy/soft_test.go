package phy

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/rng"
)

func TestSoftFrameRoundTrip(t *testing.T) {
	cfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 4, SoftDecoding: true}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(31)
	f, err := link.Encode(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs := perSCChannels(src, 4, 2)
	det := core.NewListSphereDecoder(cfg.Cons)
	noise := channel.NoiseVarForSNRdB(25)
	res, err := link.TransmitReceive(src, f, hs, det, noise)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FrameOK() {
		t.Fatalf("soft frame at 25 dB failed: %+v", res)
	}
}

func TestSoftRequiresSoftDetector(t *testing.T) {
	cfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 4, SoftDecoding: true}
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(32)
	f, err := link.Encode(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs := perSCChannels(src, 4, 2)
	// A hard-only detector must be rejected.
	if _, err := link.TransmitReceive(src, f, hs, core.NewGeosphere(cfg.Cons), 0.01); err == nil {
		t.Fatal("hard detector accepted for soft decoding")
	}
	// Zero noise variance is meaningless for LLR scaling.
	soft := core.NewListSphereDecoder(cfg.Cons)
	if _, err := link.TransmitReceive(src, f, hs, soft, 0); err == nil {
		t.Fatal("zero noise variance accepted for soft decoding")
	}
}

// TestSoftDecodesWhereHardFails fixes an operating point where hard
// decisions lose frames and verifies the soft receiver recovers them —
// the coding-gain property the §7 extension exists for.
func TestSoftDecodesWhereHardFails(t *testing.T) {
	hardCfg := Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: 4}
	softCfg := hardCfg
	softCfg.SoftDecoding = true
	hardLink, err := NewLink(hardCfg)
	if err != nil {
		t.Fatal(err)
	}
	softLink, err := NewLink(softCfg)
	if err != nil {
		t.Fatal(err)
	}
	noise := channel.NoiseVarForSNRdB(12)
	hardOK, softOK := 0, 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		seed := int64(500 + trial)
		chSrc := rng.New(seed)
		hs := flatChannels(chSrc, 4, 4)
		f, err := hardLink.Encode(rng.New(seed+1), 4)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := hardLink.TransmitReceive(rng.New(seed+2), f, hs, core.NewGeosphere(hardCfg.Cons), noise)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := softLink.TransmitReceive(rng.New(seed+2), f, hs, core.NewListSphereDecoder(softCfg.Cons), noise)
		if err != nil {
			t.Fatal(err)
		}
		if rh.FrameOK() {
			hardOK++
		}
		if rs.FrameOK() {
			softOK++
		}
	}
	t.Logf("frames decoded at 12 dB over %d trials: hard=%d soft=%d", trials, hardOK, softOK)
	if softOK < hardOK {
		t.Fatalf("soft decoding (%d) should not lose to hard (%d)", softOK, hardOK)
	}
	if hardOK == trials {
		t.Fatalf("operating point too easy to discriminate (hard decoded all %d)", trials)
	}
}
