// Package linear implements the linear MIMO detectors Geosphere is
// compared against: zero-forcing (the baseline of SAM, BigStation,
// IAC and 802.11n+), MMSE, and MMSE with successive interference
// cancellation ordered by descending post-detection SNR (§5.2.1).
package linear

import (
	"fmt"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
)

// ZF is the zero-forcing detector: it left-multiplies the received
// vector with the channel pseudo-inverse (H*H)⁻¹H* and slices each
// decoupled stream independently. On poorly-conditioned channels the
// inverse amplifies noise, which is the performance gap Geosphere
// closes.
type ZF struct {
	cons *constellation.Constellation
	h    *cmplxmat.Matrix
	w    *cmplxmat.Matrix // pseudo-inverse filter, nc×na
	est  []complex128
}

var _ core.Detector = (*ZF)(nil)

// NewZF returns a zero-forcing detector over cons.
func NewZF(cons *constellation.Constellation) *ZF { return &ZF{cons: cons} }

// Name implements core.Detector.
func (d *ZF) Name() string { return "Zero-forcing" }

// Constellation implements core.Detector.
func (d *ZF) Constellation() *constellation.Constellation { return d.cons }

// Prepare implements core.Detector by computing the ZF filter.
func (d *ZF) Prepare(h *cmplxmat.Matrix) error {
	if h == nil {
		return core.ErrNotPrepared
	}
	w, err := h.PseudoInverse()
	if err != nil {
		return fmt.Errorf("linear: zero-forcing filter: %w", err)
	}
	d.attach(h, w)
	return nil
}

// attach points the detector at a prepared filter, resizing the
// estimate scratch only on a shape change.
func (d *ZF) attach(h, w *cmplxmat.Matrix) {
	d.h = h
	d.w = w
	if cap(d.est) < h.Cols {
		d.est = make([]complex128, h.Cols)
	}
	d.est = d.est[:h.Cols]
}

var _ core.SharedPreparer = (*ZF)(nil)

// PrepareShared implements core.SharedPreparer: the same filter bits
// Prepare computes, but cached in pc — against the serving layer's
// per-subcarrier preparation caches a static channel's pseudo-inverse
// becomes a one-time cost instead of a per-frame one, which is what
// makes the ZF rung of the degradation ladder actually cheap.
func (d *ZF) PrepareShared(pc *core.PreparedChannel, h *cmplxmat.Matrix) (bool, error) {
	if h == nil {
		return false, core.ErrNotPrepared
	}
	w, hit, err := pc.PrepareZF(h)
	if err != nil {
		return false, fmt.Errorf("linear: zero-forcing filter: %w", err)
	}
	d.attach(h, w)
	return hit, nil
}

// Detect implements core.Detector.
func (d *ZF) Detect(dst []int, y []complex128) ([]int, error) {
	if d.h == nil {
		return nil, core.ErrNotPrepared
	}
	if len(y) != d.h.Rows {
		return nil, fmt.Errorf("linear: received vector has %d entries, channel has %d rows", len(y), d.h.Rows)
	}
	if dst == nil {
		dst = make([]int, d.h.Cols)
	} else if len(dst) != d.h.Cols {
		return nil, fmt.Errorf("linear: dst has %d entries, want %d", len(dst), d.h.Cols)
	}
	d.w.MulVec(d.est, y)
	for k, e := range d.est {
		col, row := d.cons.Slice(e)
		dst[k] = d.cons.Index(col, row)
	}
	return dst, nil
}

// SolveZF computes the zero-forcing decisions from a thin-QR
// factorization of the channel: back-substitution of R·ŝ = Q*y (the
// exact unconstrained least-squares solution — the same estimate the
// pseudo-inverse filter produces) followed by per-stream slicing. It
// also returns the sliced decision's squared lattice residual
// r₀² = ‖Q*y − R·s₀‖², the quantity the adaptive scheduler's
// maximum-likelihood equality gate tests (DESIGN.md §14): since
// ‖y − Hs‖² decomposes as ‖P⊥y‖² + ‖R(ŝ−s)‖², r₀² is exactly the
// lattice part of the ZF decision's metric.
//
// Everything works in QR-column order: yhat is Q*y, rll2/rinv the
// diagonal tables, and dst[l] receives the flat point index for QR
// column l (the caller undoes any column ordering). est is caller
// scratch holding the unquantized back-substituted estimate. All
// slices must have length n = R's dimension; the steady state
// allocates nothing.
//
//geolint:noalloc
func SolveZF(cons *constellation.Constellation, r *cmplxmat.Matrix, rinv []complex128, yhat []complex128, est []complex128, dst []int) float64 {
	n := len(dst)
	for l := n - 1; l >= 0; l-- {
		row := r.Row(l)
		s := yhat[l]
		for j := l + 1; j < n; j++ {
			s -= row[j] * est[j]
		}
		e := s * rinv[l]
		est[l] = e // back-substitution continues on the unquantized value
		col, rw := cons.Slice(e)
		dst[l] = cons.Index(col, rw)
	}
	var r2 float64
	for l := 0; l < n; l++ {
		row := r.Row(l)
		s := yhat[l]
		for j := l; j < n; j++ {
			s -= row[j] * cons.PointIndex(dst[j])
		}
		r2 += real(s)*real(s) + imag(s)*imag(s)
	}
	return r2
}

// MMSE is the minimum mean-squared-error detector: the filter
// (H*H + σ²I)⁻¹H* balances stream decoupling against noise
// amplification. NoiseVar must be set (per complex dimension, total)
// before Prepare; zero noise variance reduces MMSE to ZF.
type MMSE struct {
	cons     *constellation.Constellation
	NoiseVar float64
	h        *cmplxmat.Matrix
	w        *cmplxmat.Matrix
	est      []complex128
}

var _ core.Detector = (*MMSE)(nil)

// NewMMSE returns an MMSE detector with the given total noise variance
// per receive antenna (E|w_i|²).
func NewMMSE(cons *constellation.Constellation, noiseVar float64) *MMSE {
	return &MMSE{cons: cons, NoiseVar: noiseVar}
}

// Name implements core.Detector.
func (d *MMSE) Name() string { return "MMSE" }

// Constellation implements core.Detector.
func (d *MMSE) Constellation() *constellation.Constellation { return d.cons }

// mmseFilter computes (H*H + σ²I)⁻¹H*.
func mmseFilter(h *cmplxmat.Matrix, noiseVar float64) (*cmplxmat.Matrix, error) {
	ht := h.ConjT()
	gram := cmplxmat.Mul(ht, h)
	for i := 0; i < gram.Rows; i++ {
		gram.Set(i, i, gram.At(i, i)+complex(noiseVar, 0))
	}
	gi, err := gram.Inverse()
	if err != nil {
		return nil, err
	}
	return cmplxmat.Mul(gi, ht), nil
}

// Prepare implements core.Detector.
func (d *MMSE) Prepare(h *cmplxmat.Matrix) error {
	if h == nil {
		return core.ErrNotPrepared
	}
	w, err := mmseFilter(h, d.NoiseVar)
	if err != nil {
		return fmt.Errorf("linear: MMSE filter: %w", err)
	}
	d.h = h
	d.w = w
	d.est = make([]complex128, h.Cols)
	return nil
}

// Detect implements core.Detector.
func (d *MMSE) Detect(dst []int, y []complex128) ([]int, error) {
	if d.h == nil {
		return nil, core.ErrNotPrepared
	}
	if len(y) != d.h.Rows {
		return nil, fmt.Errorf("linear: received vector has %d entries, channel has %d rows", len(y), d.h.Rows)
	}
	if dst == nil {
		dst = make([]int, d.h.Cols)
	} else if len(dst) != d.h.Cols {
		return nil, fmt.Errorf("linear: dst has %d entries, want %d", len(dst), d.h.Cols)
	}
	d.w.MulVec(d.est, y)
	for k, e := range d.est {
		col, row := d.cons.Slice(e)
		dst[k] = d.cons.Index(col, row)
	}
	return dst, nil
}
