package linear

import (
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/rng"
)

func scenario(src *rng.Source, cons *constellation.Constellation, na, nc int, snrdB float64) (*cmplxmat.Matrix, []int, []complex128) {
	h := channel.Rayleigh(src, na, nc)
	xi := make([]int, nc)
	xs := make([]complex128, nc)
	for i := range xs {
		xi[i] = src.Intn(cons.Size())
		xs[i] = cons.PointIndex(xi[i])
	}
	y := channel.Transmit(nil, src, h, xs, channel.NoiseVarForSNRdB(snrdB))
	return h, xi, y
}

func TestZFNoiselessExact(t *testing.T) {
	src := rng.New(1)
	cons := constellation.QAM64
	d := NewZF(cons)
	for trial := 0; trial < 50; trial++ {
		h, sent, y := scenario(src, cons, 4, 3, 200)
		if err := d.Prepare(h); err != nil {
			t.Fatal(err)
		}
		got, err := d.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sent {
			if got[i] != sent[i] {
				t.Fatalf("trial %d stream %d: got %d want %d", trial, i, got[i], sent[i])
			}
		}
	}
}

func TestMMSEReducesToZFAtZeroNoise(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		cons := constellation.QAM16
		h, _, y := scenario(src, cons, 4, 2, 15)
		zf := NewZF(cons)
		mmse := NewMMSE(cons, 0)
		if err := zf.Prepare(h); err != nil {
			return true // singular draw
		}
		if err := mmse.Prepare(h); err != nil {
			return true
		}
		a, err := zf.Detect(nil, y)
		if err != nil {
			return false
		}
		b, err := mmse.Detect(nil, y)
		if err != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllLinearDetectorsHighSNR(t *testing.T) {
	src := rng.New(3)
	cons := constellation.QAM16
	nv := channel.NoiseVarForSNRdB(40)
	dets := []core.Detector{NewZF(cons), NewMMSE(cons, nv), NewMMSESIC(cons, nv)}
	for trial := 0; trial < 30; trial++ {
		h, sent, y := scenario(src, cons, 4, 4, 40)
		for _, d := range dets {
			if err := d.Prepare(h); err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			got, err := d.Detect(nil, y)
			if err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			errs := 0
			for i := range sent {
				if got[i] != sent[i] {
					errs++
				}
			}
			// 40 dB on 4×4 i.i.d. channels: errors should be rare but
			// individual deep fades can still flip a symbol for ZF.
			if errs > 1 {
				t.Fatalf("%s trial %d: %d symbol errors at 40 dB", d.Name(), trial, errs)
			}
		}
	}
}

// TestSICBeatsZF verifies the §5.2.1 ordering: with interference
// cancellation, MMSE-SIC makes fewer symbol errors than plain ZF at
// moderate SNR on square channels.
func TestSICBeatsZF(t *testing.T) {
	src := rng.New(4)
	cons := constellation.QAM16
	nv := channel.NoiseVarForSNRdB(18)
	zf := NewZF(cons)
	sic := NewMMSESIC(cons, nv)
	zfErrs, sicErrs := 0, 0
	for trial := 0; trial < 500; trial++ {
		h, sent, y := scenario(src, cons, 4, 4, 18)
		if err := zf.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if err := sic.Prepare(h); err != nil {
			t.Fatal(err)
		}
		a, err := zf.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sic.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sent {
			if a[i] != sent[i] {
				zfErrs++
			}
			if b[i] != sent[i] {
				sicErrs++
			}
		}
	}
	t.Logf("symbol errors over 500 4×4 vectors at 18 dB: ZF=%d MMSE-SIC=%d", zfErrs, sicErrs)
	if sicErrs >= zfErrs {
		t.Fatalf("MMSE-SIC (%d) should beat ZF (%d)", sicErrs, zfErrs)
	}
}

func TestSICOrdering(t *testing.T) {
	// Column energies 9 and 1: the strong stream must be detected
	// first.
	h := cmplxmat.New(2, 2)
	h.Set(0, 0, 3)
	h.Set(1, 1, 1)
	d := NewMMSESIC(constellation.QPSK, 0.01)
	if err := d.Prepare(h); err != nil {
		t.Fatal(err)
	}
	if d.order[0] != 0 || d.order[1] != 1 {
		t.Fatalf("detection order %v, want [0 1]", d.order)
	}
}

func TestLinearDetectorErrors(t *testing.T) {
	cons := constellation.QAM16
	for _, d := range []core.Detector{NewZF(cons), NewMMSE(cons, 0.1), NewMMSESIC(cons, 0.1)} {
		if _, err := d.Detect(nil, []complex128{1}); err == nil {
			t.Fatalf("%s: Detect before Prepare accepted", d.Name())
		}
		if err := d.Prepare(nil); err == nil {
			t.Fatalf("%s: nil channel accepted", d.Name())
		}
		src := rng.New(9)
		h := channel.Rayleigh(src, 4, 2)
		if err := d.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Detect(nil, []complex128{1, 2}); err == nil {
			t.Fatalf("%s: wrong-length y accepted", d.Name())
		}
		if _, err := d.Detect(make([]int, 7), make([]complex128, 4)); err == nil {
			t.Fatalf("%s: wrong-length dst accepted", d.Name())
		}
	}
}

func TestZFSingularChannel(t *testing.T) {
	h := cmplxmat.New(2, 2)
	h.Set(0, 0, 1)
	h.Set(0, 1, 1)
	h.Set(1, 0, 1)
	h.Set(1, 1, 1)
	if err := NewZF(constellation.QPSK).Prepare(h); err == nil {
		t.Fatal("singular channel accepted by ZF")
	}
	// MMSE regularizes, so it must succeed on the same channel.
	if err := NewMMSE(constellation.QPSK, 0.1).Prepare(h); err != nil {
		t.Fatalf("MMSE rejected a regularizable channel: %v", err)
	}
}
