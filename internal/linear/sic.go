package linear

import (
	"fmt"
	"sort"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
)

// MMSESIC is the MMSE successive-interference-cancellation receiver of
// §5.2.1: streams are ordered by descending received SNR; at each
// stage the strongest remaining stream is detected with an MMSE filter
// over the residual channel, its reconstructed contribution is
// subtracted from the received vector, and the process repeats.
//
// MMSE-SIC can reach multi-user capacity with ideal per-stage decoding
// but suffers error propagation with hard symbol decisions, which is
// exactly the behaviour Figure 13 contrasts against Geosphere.
type MMSESIC struct {
	cons     *constellation.Constellation
	NoiseVar float64
	h        *cmplxmat.Matrix

	// Per-stage state prepared once per channel.
	order   []int          // stream detected at each stage
	filters [][]complex128 // MMSE filter row for that stream, per stage
	cols    [][]complex128 // channel column of that stream (for cancellation)
	resid   []complex128
}

var _ core.Detector = (*MMSESIC)(nil)

// NewMMSESIC returns an MMSE-SIC detector with the given total noise
// variance per receive antenna.
func NewMMSESIC(cons *constellation.Constellation, noiseVar float64) *MMSESIC {
	return &MMSESIC{cons: cons, NoiseVar: noiseVar}
}

// Name implements core.Detector.
func (d *MMSESIC) Name() string { return "MMSE-SIC" }

// Constellation implements core.Detector.
func (d *MMSESIC) Constellation() *constellation.Constellation { return d.cons }

// Prepare implements core.Detector. It fixes the detection order by
// descending per-stream received SNR (channel column energy) and
// precomputes one MMSE filter row per cancellation stage.
func (d *MMSESIC) Prepare(h *cmplxmat.Matrix) error {
	if h == nil {
		return core.ErrNotPrepared
	}
	na, nc := h.Rows, h.Cols
	// Column energies determine the SNR ordering.
	energy := make([]float64, nc)
	for c := 0; c < nc; c++ {
		for r := 0; r < na; r++ {
			v := h.At(r, c)
			energy[c] += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return energy[order[i]] > energy[order[j]] })

	remaining := make([]int, nc)
	copy(remaining, order)
	filters := make([][]complex128, nc)
	cols := make([][]complex128, nc)
	for stage := 0; stage < nc; stage++ {
		k := order[stage]
		// Residual channel: the columns of the not-yet-cancelled
		// streams, in their remaining order.
		sub := cmplxmat.New(na, len(remaining))
		for j, s := range remaining {
			for r := 0; r < na; r++ {
				sub.Set(r, j, h.At(r, s))
			}
		}
		w, err := mmseFilter(sub, d.NoiseVar)
		if err != nil {
			return fmt.Errorf("linear: MMSE-SIC stage %d: %w", stage, err)
		}
		// Locate k's row within the residual filter.
		pos := -1
		for j, s := range remaining {
			if s == k {
				pos = j
				break
			}
		}
		row := make([]complex128, na)
		copy(row, w.Row(pos))
		filters[stage] = row
		col := make([]complex128, na)
		for r := 0; r < na; r++ {
			col[r] = h.At(r, k)
		}
		cols[stage] = col
		remaining = append(remaining[:pos], remaining[pos+1:]...)
	}

	d.h = h
	d.order = order
	d.filters = filters
	d.cols = cols
	d.resid = make([]complex128, na)
	return nil
}

// Detect implements core.Detector.
func (d *MMSESIC) Detect(dst []int, y []complex128) ([]int, error) {
	if d.h == nil {
		return nil, core.ErrNotPrepared
	}
	if len(y) != d.h.Rows {
		return nil, fmt.Errorf("linear: received vector has %d entries, channel has %d rows", len(y), d.h.Rows)
	}
	if dst == nil {
		dst = make([]int, d.h.Cols)
	} else if len(dst) != d.h.Cols {
		return nil, fmt.Errorf("linear: dst has %d entries, want %d", len(dst), d.h.Cols)
	}
	copy(d.resid, y)
	for stage, k := range d.order {
		var est complex128
		for r, w := range d.filters[stage] {
			est += w * d.resid[r]
		}
		col, row := d.cons.Slice(est)
		dst[k] = d.cons.Index(col, row)
		sym := d.cons.Point(col, row)
		for r, hr := range d.cols[stage] {
			d.resid[r] -= hr * sym
		}
	}
	return dst, nil
}
