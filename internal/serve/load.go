package serve

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// LoadConfig drives RunLoad: Users concurrent simulated user groups,
// each submitting FramesPerUser frames as fast as the service admits
// them. A rejected frame (ErrOverload) is retried up to Retries times
// after Backoff; still-rejected frames are dropped and counted — the
// harness exercises exactly the admission-control contract the service
// promises instead of hiding it.
type LoadConfig struct {
	Users         int
	FramesPerUser int
	// Retries per frame after an admission reject; default 3.
	Retries int
	// Backoff between retries; default 200µs.
	Backoff time.Duration
}

// withDefaults fills unset fields.
func (lc LoadConfig) withDefaults() LoadConfig {
	if lc.Users <= 0 {
		lc.Users = 1
	}
	if lc.FramesPerUser <= 0 {
		lc.FramesPerUser = 1
	}
	if lc.Retries <= 0 {
		lc.Retries = 3
	}
	if lc.Backoff <= 0 {
		lc.Backoff = 200 * time.Microsecond
	}
	return lc
}

// LatencyReport is the exact (fully sorted, not bucketed) end-to-end
// frame latency distribution observed by the load harness, in
// milliseconds. Latency is measured at the submitter: admission wait,
// queueing, detection and reply delivery all count.
type LatencyReport struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// LoadReport summarizes one load run; cmd/geoload appends it to
// BENCH_geosphere.json.
type LoadReport struct {
	Users         int              `json:"users"`
	FramesPerUser int              `json:"frames_per_user"`
	FramesServed  int64            `json:"frames_served"`
	FramesOK      int64            `json:"frames_ok"`
	FrameErrors   int64            `json:"frame_errors"`
	Rejects       int64            `json:"rejects"`
	Dropped       int64            `json:"dropped"`
	ElapsedSec    float64          `json:"elapsed_sec"`
	FramesPerSec  float64          `json:"frames_per_sec"`
	Latency       LatencyReport    `json:"latency"`
	Tiers         obs.TierSnapshot `json:"tiers"`
	Stats         StatsSnapshot    `json:"stats"`
}

// RunLoad hammers s with lc.Users concurrent simulated user groups
// (group ids 0..Users-1, one goroutine each) and reports throughput,
// the exact p50/p90/p99/max frame latency, the ladder-tier mix and the
// admission-control counters. Cancelling ctx stops every user at its
// next frame boundary; the report covers the frames served so far.
func RunLoad(ctx context.Context, s *Server, lc LoadConfig) LoadReport {
	lc = lc.withDefaults()
	var (
		served, okFrames, rejects, dropped obs.Counter
		tiers                              [4]obs.Counter
	)
	latencies := make([][]float64, lc.Users) // per-user, merged after the run
	var wg sync.WaitGroup
	start := time.Now() //geolint:nondeterminism-ok load-harness wall clock: throughput and latency are the measurement
	for u := 0; u < lc.Users; u++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			lats := make([]float64, 0, lc.FramesPerUser)
			group := uint64(user)
			for f := 0; f < lc.FramesPerUser; f++ {
				if ctx.Err() != nil {
					break
				}
				t0 := time.Now() //geolint:nondeterminism-ok load-harness wall clock: throughput and latency are the measurement
				var o Outcome
				var err error
				for attempt := 0; ; attempt++ {
					o, err = s.Process(ctx, group)
					if !isOverload(err) {
						break
					}
					rejects.Inc()
					if attempt >= lc.Retries {
						break
					}
					select {
					case <-time.After(lc.Backoff):
					case <-ctx.Done():
					}
				}
				switch {
				case err == nil:
					served.Inc()
					if o.OK {
						okFrames.Inc()
					}
					tiers[o.Tier].Inc()
					//geolint:nondeterminism-ok load-harness wall clock: throughput and latency are the measurement
					lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
				case isOverload(err):
					dropped.Inc()
				default:
					// Context cancellation or server close: stop this user.
					return
				}
			}
			latencies[user] = lats
		}(u)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds() //geolint:nondeterminism-ok load-harness wall clock: throughput and latency are the measurement

	var all []float64
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Float64s(all)

	rep := LoadReport{
		Users:         lc.Users,
		FramesPerUser: lc.FramesPerUser,
		FramesServed:  served.Load(),
		FramesOK:      okFrames.Load(),
		FrameErrors:   served.Load() - okFrames.Load(),
		Rejects:       rejects.Load(),
		Dropped:       dropped.Load(),
		ElapsedSec:    elapsed,
		Tiers: obs.TierSnapshot{
			None:      tiers[obs.TierNone].Load(),
			Geosphere: tiers[obs.TierGeosphere].Load(),
			KBest:     tiers[obs.TierKBest].Load(),
			ZF:        tiers[obs.TierZF].Load(),
		},
		Stats: s.Stats().Snapshot(),
	}
	if elapsed > 0 {
		rep.FramesPerSec = float64(rep.FramesServed) / elapsed
	}
	if n := len(all); n > 0 {
		rep.Latency = LatencyReport{
			P50: quantileExact(all, 0.50),
			P90: quantileExact(all, 0.90),
			P99: quantileExact(all, 0.99),
			Max: all[n-1],
		}
	}
	return rep
}

// quantileExact returns the q-quantile of a sorted sample by the
// nearest-rank method.
func quantileExact(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
