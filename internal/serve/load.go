package serve

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// LoadConfig drives RunLoad: Users concurrent simulated user groups,
// each submitting FramesPerUser frames. Two arrival models:
//
//   - Closed-loop (ArrivalRate == 0, the default): every user submits
//     its next frame the moment the previous one completes, as fast as
//     the service admits them. A rejected frame (ErrOverload) is
//     retried up to Retries times under jittered exponential backoff —
//     the wait doubles from Backoff up to BackoffMax and is scaled by a
//     uniform [0.5, 1.5) factor drawn from the user's deterministic
//     jitter stream, so retry storms decorrelate instead of
//     hammering the ring in lockstep. Still-rejected frames are dropped
//     and counted.
//   - Open-loop (ArrivalRate > 0, total frames/sec): arrivals are
//     scheduled on a fixed clock independent of service latency — each
//     user offers a frame every Users/ArrivalRate seconds, with starts
//     staggered across the period so the aggregate arrival process is
//     smooth. An open-loop reject is a drop (no retry): the offered
//     load is the experiment's control variable, and the report's
//     offered-vs-served split shows what the service shed.
type LoadConfig struct {
	Users         int
	FramesPerUser int
	// Retries per frame after an admission reject (closed-loop only);
	// default 3.
	Retries int
	// Backoff is the base retry wait; it doubles per attempt. Default
	// 200µs.
	Backoff time.Duration
	// BackoffMax caps the exponential growth; default 100ms.
	BackoffMax time.Duration
	// ArrivalRate switches to open-loop mode: total offered frames/sec
	// across all users. 0 keeps the closed loop.
	ArrivalRate float64
	// Seed roots the per-user jitter streams; runs with the same seed
	// draw the same backoff schedule.
	Seed int64
}

// withDefaults fills unset fields.
func (lc LoadConfig) withDefaults() LoadConfig {
	if lc.Users <= 0 {
		lc.Users = 1
	}
	if lc.FramesPerUser <= 0 {
		lc.FramesPerUser = 1
	}
	if lc.Retries <= 0 {
		lc.Retries = 3
	}
	if lc.Backoff <= 0 {
		lc.Backoff = 200 * time.Microsecond
	}
	if lc.BackoffMax <= 0 {
		lc.BackoffMax = 100 * time.Millisecond
	}
	return lc
}

// jitterStream is the tiny splitmix64-backed uniform stream behind
// backoff jitter. Unlike the simulation substreams it needs no
// statistical pedigree, only decorrelation and per-(seed, user)
// determinism — and its O(1) seeding matters: one lagged-Fibonacci
// warmup per user goroutine used to burn nearly half a second of the
// single-core spawn phase at 10k users, starving the shard drains
// that the latency histogram was busy measuring.
type jitterStream struct{ state uint64 }

// newJitterStream seeds the stream from (seed, user) with one mix
// round, so distinct users decorrelate immediately.
func newJitterStream(seed, user int64) *jitterStream {
	return &jitterStream{state: mix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(user))}
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns the next uniform draw in [0, 1).
func (j *jitterStream) Float64() float64 {
	j.state += 0x9e3779b97f4a7c15
	return float64(mix64(j.state)>>11) / (1 << 53)
}

// retryWait is the jittered exponential backoff schedule: attempt 0
// waits about Backoff, each further attempt doubles, BackoffMax caps
// the growth, and the whole wait is scaled by a uniform [0.5, 1.5)
// draw from the user's jitter stream.
func (lc LoadConfig) retryWait(src *jitterStream, attempt int) time.Duration {
	d := lc.Backoff
	for i := 0; i < attempt && d < lc.BackoffMax; i++ {
		d *= 2
	}
	if d > lc.BackoffMax {
		d = lc.BackoffMax
	}
	d = time.Duration(float64(d) * (0.5 + src.Float64()))
	if d > lc.BackoffMax {
		d = lc.BackoffMax
	}
	return d
}

// LatencyReport is the exact (fully sorted, not bucketed) end-to-end
// frame latency distribution observed by the load harness, in
// milliseconds. Latency is measured at the submitter: admission wait,
// queueing, detection and reply delivery all count.
type LatencyReport struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// LoadReport summarizes one load run; cmd/geoload appends it to
// BENCH_geosphere.json. FramesOffered counts every frame the harness
// attempted (served + dropped); the offered-vs-served split is the
// overload picture — a healthy closed-loop run serves everything it
// offers, an open-loop run past saturation sheds the difference.
type LoadReport struct {
	Users         int     `json:"users"`
	FramesPerUser int     `json:"frames_per_user"`
	ArrivalRate   float64 `json:"arrival_rate,omitempty"`
	FramesOffered int64   `json:"frames_offered"`
	FramesServed  int64   `json:"frames_served"`
	FramesOK      int64   `json:"frames_ok"`
	FrameErrors   int64   `json:"frame_errors"`
	Rejects       int64   `json:"rejects"`
	Dropped       int64   `json:"dropped"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	// OfferedPerSec and FramesPerSec are the offered and served
	// throughput; their gap is the shed load.
	OfferedPerSec float64          `json:"offered_per_sec"`
	FramesPerSec  float64          `json:"frames_per_sec"`
	Latency       LatencyReport    `json:"latency"`
	Tiers         obs.TierSnapshot `json:"tiers"`
	Stats         StatsSnapshot    `json:"stats"`
}

// RunLoad hammers s with lc.Users concurrent simulated user groups
// (group ids 0..Users-1, one goroutine each) and reports offered and
// served throughput, the exact p50/p90/p99/max frame latency, the
// ladder-tier mix and the admission-control counters. Cancelling ctx
// stops every user at its next frame boundary; the report covers the
// frames offered so far.
func RunLoad(ctx context.Context, s *Server, lc LoadConfig) LoadReport {
	lc = lc.withDefaults()
	var (
		offered, served, okFrames, rejects, dropped obs.Counter
		tiers                                       [4]obs.Counter
	)
	// Open-loop pacing: each user offers one frame per period, with
	// starts staggered across the period.
	var period time.Duration
	if lc.ArrivalRate > 0 {
		period = time.Duration(float64(lc.Users) / lc.ArrivalRate * float64(time.Second))
	}
	latencies := make([][]float64, lc.Users) // per-user, merged after the run
	var wg sync.WaitGroup
	start := time.Now() //geolint:nondeterminism-ok load-harness wall clock: throughput and latency are the measurement
	for u := 0; u < lc.Users; u++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			jitter := newJitterStream(lc.Seed, int64(user))
			lats := make([]float64, 0, lc.FramesPerUser)
			group := uint64(user)
			// One reusable timer per user instead of a time.After
			// allocation per retry — under overload the retry waits are
			// the harness's hottest allocation site. sleep leaves the
			// timer stopped-and-drained, so the next Reset is safe.
			var timer *time.Timer
			sleep := func(d time.Duration) {
				if timer == nil {
					timer = time.NewTimer(d)
				} else {
					timer.Reset(d)
				}
				select {
				case <-timer.C:
				case <-ctx.Done():
					if !timer.Stop() {
						<-timer.C
					}
				}
			}
			var ticker *time.Ticker
			if period > 0 {
				// Stagger this user's phase across the period, then tick.
				sleep(period * time.Duration(user) / time.Duration(lc.Users))
				if ctx.Err() != nil {
					return
				}
				ticker = time.NewTicker(period)
				defer ticker.Stop()
			}
			for f := 0; f < lc.FramesPerUser; f++ {
				if ctx.Err() != nil {
					break
				}
				if ticker != nil && f > 0 {
					select {
					case <-ticker.C:
					case <-ctx.Done():
						return
					}
				}
				offered.Inc()
				t0 := time.Now() //geolint:nondeterminism-ok load-harness wall clock: throughput and latency are the measurement
				var o Outcome
				var err error
				for attempt := 0; ; attempt++ {
					o, err = s.Process(ctx, group)
					if !isOverload(err) {
						break
					}
					rejects.Inc()
					// Open-loop arrivals never retry: the offered rate is
					// the control variable, a shed frame stays shed.
					if ticker != nil || attempt >= lc.Retries {
						break
					}
					sleep(lc.retryWait(jitter, attempt))
				}
				switch {
				case err == nil:
					served.Inc()
					if o.OK {
						okFrames.Inc()
					}
					tiers[o.Tier].Inc()
					//geolint:nondeterminism-ok load-harness wall clock: throughput and latency are the measurement
					lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
				case isOverload(err):
					dropped.Inc()
				default:
					// Context cancellation or server close: stop this user.
					return
				}
			}
			latencies[user] = lats
		}(u)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds() //geolint:nondeterminism-ok load-harness wall clock: throughput and latency are the measurement

	var all []float64
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Float64s(all)

	rep := LoadReport{
		Users:         lc.Users,
		FramesPerUser: lc.FramesPerUser,
		ArrivalRate:   lc.ArrivalRate,
		FramesOffered: offered.Load(),
		FramesServed:  served.Load(),
		FramesOK:      okFrames.Load(),
		FrameErrors:   served.Load() - okFrames.Load(),
		Rejects:       rejects.Load(),
		Dropped:       dropped.Load(),
		ElapsedSec:    elapsed,
		Tiers: obs.TierSnapshot{
			None:      tiers[obs.TierNone].Load(),
			Geosphere: tiers[obs.TierGeosphere].Load(),
			KBest:     tiers[obs.TierKBest].Load(),
			ZF:        tiers[obs.TierZF].Load(),
		},
		Stats: s.Stats().Snapshot(),
	}
	if elapsed > 0 {
		rep.OfferedPerSec = float64(rep.FramesOffered) / elapsed
		rep.FramesPerSec = float64(rep.FramesServed) / elapsed
	}
	if n := len(all); n > 0 {
		rep.Latency = LatencyReport{
			P50: quantileExact(all, 0.50),
			P90: quantileExact(all, 0.90),
			P99: quantileExact(all, 0.99),
			Max: all[n-1],
		}
	}
	return rep
}

// quantileExact returns the q-quantile of a sorted sample by the
// nearest-rank method.
func quantileExact(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
