// Package serve is the resident multi-user detection service behind
// cmd/geocell: a sharded pool of link.Processor pipelines serving
// uplink frames for an unbounded population of user groups, with
// bounded per-shard queues (backpressure and admission control),
// per-group channel state and preparation caches behind an LRU cap,
// and graceful degradation under overload — each frame is served at
// the deepest affordable rung of the Geosphere → K-best → ZF ladder,
// chosen from the target shard's queue occupancy (the complexity-
// budget proxy: a backlog means the full search is too expensive right
// now). Every ladder decision is counted in obs, so the served mix is
// observable, and a full queue rejects (ErrOverload) instead of
// queueing unboundedly.
//
// Detection itself stays deterministic: a group's channels are drawn
// from the substream (Seed+1, group), a frame's randomness from the
// substream (Seed, frameKey(group, seq)), so the outcome of a group's
// n-th frame at a given tier is a pure function of the configuration —
// independent of shard scheduling, interleaving with other groups, or
// wall-clock time. Only the tier choice (explicitly load-dependent)
// and the latency metrics depend on the environment.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/kbest"
	"repro/internal/linear"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/ofdm"
	"repro/internal/rng"
)

// Typed sentinel errors of the serving layer.
var (
	// ErrOverload reports a frame rejected by admission control: the
	// target shard's bounded queue is full even for the cheapest tier.
	// It wraps link.ErrQueueFull, so errors.Is matches either.
	ErrOverload = fmt.Errorf("serve: shard overloaded: %w", link.ErrQueueFull)
	// ErrServerClosed reports a frame submitted to a closed Server.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrBadLadder reports degradation thresholds outside
	// 0 ≤ KBestLoad ≤ ZFLoad ≤ 1.
	ErrBadLadder = errors.New("serve: ladder thresholds must satisfy 0 <= KBestLoad <= ZFLoad <= 1")
)

// Config configures a Server. The zero value of every optional field
// picks a sensible default (see withDefaults).
type Config struct {
	// Cons is the uplink constellation; defaults to QAM16.
	Cons *constellation.Constellation
	// NA and NC are the AP antenna count and the clients per group
	// (one group = one spatially-multiplexed uplink transmission).
	// Defaults: 4×2.
	NA, NC int
	// NumSymbols is the OFDM symbols per frame; defaults to 8.
	NumSymbols int
	// SNRdB is the per-stream SNR; defaults to 25.
	SNRdB float64
	// Seed roots all of the service's determinism: group channels come
	// from substream (Seed+1, group), frame randomness from substream
	// (Seed, frameKey(group, seq)).
	Seed int64
	// Shards is the number of independent pipeline shards (one
	// goroutine, one link.Processor, one detector ladder and one group
	// table each). Groups map to shards by group % Shards, so a
	// group's frames always hit the same shard — and therefore the
	// same preparation caches. Defaults to 8.
	Shards int
	// QueueDepth bounds each shard's frame queue; a full queue rejects
	// with ErrOverload. Defaults to 64.
	QueueDepth int
	// MaxGroups caps each shard's resident group table; beyond it the
	// least-recently-used group's channel state and preparation cache
	// are evicted (bounded memory for an unbounded user population; a
	// returning evicted group is rebuilt from its substreams with its
	// frame sequence restarted). Defaults to 512, so the global
	// residency cap is Shards × MaxGroups groups.
	MaxGroups int
	// KBestK is the K-best list size of the middle ladder rung;
	// defaults to 4.
	KBestK int
	// KBestLoad and ZFLoad are the degradation thresholds on shard
	// queue occupancy (queued / QueueDepth): below KBestLoad frames
	// get the full Geosphere search, below ZFLoad the K-best search,
	// above it ZF. Defaults: 0.5 and 0.85.
	KBestLoad, ZFLoad float64
	// KappaLowDB, KappaHighDB and KappaBias shape the ladder by group
	// conditioning: the occupancy the ladder sees is occ +
	// KappaBias·w(κ̂²), where w falls linearly from 1 at κ̂² ≤ KappaLowDB
	// to 0 at κ̂² ≥ KappaHighDB. Well-conditioned groups are the ones ZF
	// already detects near-optimally (their sphere search is cheap and
	// its gain nil), so under overload they are shed to cheaper tiers
	// first while poorly-conditioned groups — the ones that actually
	// need the search — keep it longest. A group's κ̂² is the mean
	// diagonal condition estimate of its preparation cache, learned
	// after its first frame; unknown κ̂² is neutral (w = 0). The default
	// bias 0.25 stays below the default KBestLoad, so an idle shard
	// still serves every group the full search. Defaults: 6 dB, 18 dB,
	// 0.25; a negative KappaBias disables the shaping.
	KappaLowDB, KappaHighDB float64
	KappaBias               float64
	// Recorder, when non-nil, receives the pipeline's observability
	// stream (per-frame samples carry the serving tier). It must be
	// safe for concurrent use.
	Recorder obs.Recorder
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Cons == nil {
		c.Cons = constellation.QAM16
	}
	if c.NA == 0 && c.NC == 0 {
		c.NA, c.NC = 4, 2
	}
	if c.NumSymbols == 0 {
		c.NumSymbols = 8
	}
	if c.SNRdB == 0 { //geolint:float-ok exact zero-value test for "field unset", not a tolerance comparison
		c.SNRdB = 25
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxGroups <= 0 {
		c.MaxGroups = 512
	}
	if c.KBestK <= 0 {
		c.KBestK = 4
	}
	if c.KBestLoad == 0 && c.ZFLoad == 0 { //geolint:float-ok exact zero-value test for "fields unset", not a tolerance comparison
		c.KBestLoad, c.ZFLoad = 0.5, 0.85
	}
	if c.KappaLowDB == 0 && c.KappaHighDB == 0 { //geolint:float-ok exact zero-value test for "fields unset", not a tolerance comparison
		c.KappaLowDB, c.KappaHighDB = 6, 18
	}
	if c.KappaBias == 0 { //geolint:float-ok exact zero-value test for "field unset", not a tolerance comparison
		c.KappaBias = 0.25
	}
	return c
}

// kappaWeight maps a group's κ̂² (dB) onto the ladder's conditioning
// weight: 1 at or below KappaLowDB, 0 at or above KappaHighDB, linear
// between, and 0 (neutral) for an unknown NaN estimate.
func (c Config) kappaWeight(kappa2dB float64) float64 {
	if math.IsNaN(kappa2dB) {
		return 0
	}
	w := (c.KappaHighDB - kappa2dB) / (c.KappaHighDB - c.KappaLowDB)
	if w < 0 {
		return 0
	}
	if w > 1 {
		return 1
	}
	return w
}

// runConfig maps the serving configuration onto the link pipeline's.
func (c Config) runConfig() link.RunConfig {
	return link.RunConfig{
		Cons:       c.Cons,
		Rate:       fec.Rate12,
		NumSymbols: c.NumSymbols,
		SNRdB:      c.SNRdB,
		Seed:       c.Seed,
		Recorder:   c.Recorder,
	}
}

// seqBits is the width of the per-group frame sequence inside the
// 63-bit frame key; group ids get the bits above it.
const seqBits = 20

// frameKey packs (group, seq) into the frame index that fixes the
// frame's RNG substream. Unique per (group, seq) for groups below
// 2^43; a group's sequence wraps after 2^20 frames, replaying its
// substreams — acceptable for a simulated-traffic service and kept
// explicit here.
func frameKey(group uint64, seq int64) int64 {
	return int64(group)<<seqBits | (seq & (1<<seqBits - 1))
}

// Outcome is one served frame's result.
type Outcome struct {
	// Group is the user group that transmitted the frame.
	Group uint64
	// Frame is the frame key (see frameKey) the pipeline used.
	Frame int64
	// Tier is the ladder rung that served the frame.
	Tier obs.Tier
	// OK reports whether every stream's CRC verified.
	OK bool
	// StreamErrors counts the frame's failed streams.
	StreamErrors int
	// Err is the pipeline error, nil on success.
	Err error
}

// groupState is one resident group's serving state: its (static,
// frequency-selective) per-subcarrier channels, the preparation cache
// those channels warm, the frame sequence counter, and the LRU tick.
type groupState struct {
	hs       []*cmplxmat.Matrix
	pool     *core.PrepPool
	seq      int64
	lastUsed uint64
}

// job is one queued frame request.
type job struct {
	group uint64
	tier  obs.Tier
	reply chan<- Outcome
}

// shard is one pipeline shard: a single goroutine draining a bounded
// queue through its own link.Processor, with a persistent detector per
// ladder tier and a resident-group table. Single-goroutine execution
// is what makes the non-concurrency-safe Processor and PrepPools safe
// without locks.
type shard struct {
	id        int
	srv       *Server
	proc      *link.Processor
	dets      [4]core.Detector // indexed by obs.Tier; TierNone unused
	jobs      chan job
	groups    map[uint64]*groupState
	clock     uint64
	maxGroups int
	// kappas publishes each resident group's learned κ̂² (dB, as
	// math.Float64bits) from the shard goroutine to submitters: the
	// group table itself is shard-owned, but pickTier runs on the
	// submitter, so the conditioning signal crosses over atomically.
	kappas sync.Map // uint64 group id → uint64 float bits
}

// groupKappa2dB returns the group's published κ̂² estimate, NaN before
// its first frame completes (the ladder treats NaN as neutral).
func (sh *shard) groupKappa2dB(group uint64) float64 {
	if v, ok := sh.kappas.Load(group); ok {
		return math.Float64frombits(v.(uint64))
	}
	return math.NaN()
}

// Server is the resident detection service. Safe for concurrent use
// by any number of submitters.
type Server struct {
	cfg    Config
	shards []*shard
	stats  *Stats
	wg     sync.WaitGroup

	mu     sync.RWMutex // guards closed against concurrent submits
	closed bool
}

// New validates the configuration, builds every shard's pipeline and
// detector ladder, and starts the shard goroutines. The caller owns
// the Server and must Close it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.NC <= 0 || cfg.NA < cfg.NC {
		return nil, fmt.Errorf("%w: %d antennas × %d clients", link.ErrBadShape, cfg.NA, cfg.NC)
	}
	if cfg.KBestLoad < 0 || cfg.ZFLoad < cfg.KBestLoad || cfg.ZFLoad > 1 {
		return nil, fmt.Errorf("%w: KBestLoad=%g ZFLoad=%g", ErrBadLadder, cfg.KBestLoad, cfg.ZFLoad)
	}
	if cfg.KappaHighDB <= cfg.KappaLowDB || cfg.KappaBias > 1 {
		return nil, fmt.Errorf("%w: KappaLowDB=%g KappaHighDB=%g KappaBias=%g", ErrBadLadder, cfg.KappaLowDB, cfg.KappaHighDB, cfg.KappaBias)
	}
	if err := cfg.runConfig().ValidateFormat(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, stats: NewStats()}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(i, s)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.run()
	}
	return s, nil
}

// newShard builds one shard's processor, detector ladder and tables.
func newShard(id int, s *Server) (*shard, error) {
	cfg := s.cfg
	proc, err := link.NewProcessor(cfg.runConfig())
	if err != nil {
		return nil, err
	}
	kb, err := kbest.NewKBest(cfg.Cons, cfg.KBestK)
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:        id,
		srv:       s,
		proc:      proc,
		jobs:      make(chan job, cfg.QueueDepth),
		groups:    make(map[uint64]*groupState, cfg.MaxGroups),
		maxGroups: cfg.MaxGroups,
	}
	sh.dets[obs.TierGeosphere] = core.NewGeosphere(cfg.Cons)
	sh.dets[obs.TierKBest] = kb
	sh.dets[obs.TierZF] = linear.NewZF(cfg.Cons)
	if cfg.Recorder != nil {
		for _, det := range sh.dets {
			if t, ok := det.(obs.Target); ok {
				t.SetRecorder(cfg.Recorder)
			}
		}
	}
	return sh, nil
}

// Config returns the effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// Stats returns the server's live counters.
func (s *Server) Stats() *Stats { return s.stats }

// shardFor maps a group to its home shard; the affinity keeps a
// group's frames on one preparation cache.
func (s *Server) shardFor(group uint64) *shard {
	return s.shards[group%uint64(len(s.shards))]
}

// pickTier applies the degradation ladder to a shard's queue occupancy
// shaped by the group's conditioning — the service's complexity-budget
// proxy: everything in the queue is detection work already promised,
// so a deep backlog means the full search cannot be afforded for new
// arrivals, and among the arrivals the well-conditioned (cheap,
// ZF-friendly) groups are shed to lower tiers first (see the Kappa*
// knobs). kappa2dB is the group's learned κ̂², NaN when unknown.
func (s *Server) pickTier(queued, depth int, kappa2dB float64) obs.Tier {
	occ := float64(queued) / float64(depth)
	if s.cfg.KappaBias > 0 {
		occ += s.cfg.KappaBias * s.cfg.kappaWeight(kappa2dB)
	}
	switch {
	case occ < s.cfg.KBestLoad:
		return obs.TierGeosphere
	case occ < s.cfg.ZFLoad:
		return obs.TierKBest
	default:
		return obs.TierZF
	}
}

// Process serves one frame for group: the ladder picks a tier from the
// home shard's current queue occupancy, admission control either
// enqueues the frame or rejects with ErrOverload (never blocks), and
// the outcome is awaited under ctx. A frame admitted before ctx is
// cancelled still completes on its shard; Process just stops waiting.
func (s *Server) Process(ctx context.Context, group uint64) (Outcome, error) {
	sh := s.shardFor(group)
	tier := s.pickTier(len(sh.jobs), cap(sh.jobs), sh.groupKappa2dB(group))
	reply := make(chan Outcome, 1)

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Outcome{}, ErrServerClosed
	}
	admitted := false
	select {
	case sh.jobs <- job{group: group, tier: tier, reply: reply}:
		admitted = true
	default:
	}
	s.mu.RUnlock()
	if !admitted {
		s.stats.rejected.Inc()
		return Outcome{}, ErrOverload
	}
	s.stats.submitted.Inc()

	select {
	case o := <-reply:
		return o, o.Err
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	}
}

// Close stops the service: every admitted frame completes, then the
// shard goroutines exit. Further submissions return ErrServerClosed.
// Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.jobs)
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// run drains the shard's queue until Close.
func (sh *shard) run() {
	defer sh.srv.wg.Done()
	for j := range sh.jobs {
		j.reply <- sh.process(j)
	}
}

// process serves one frame on the shard goroutine.
func (sh *shard) process(j job) Outcome {
	start := time.Now() //geolint:nondeterminism-ok wall-clock latency only feeds the service metrics, never detection
	g := sh.group(j.group)
	fi := frameKey(j.group, g.seq)
	g.seq++
	out := sh.proc.Process(link.Work{
		Frame:    fi,
		Worker:   sh.id,
		Tier:     j.tier,
		Channels: g.hs,
		Det:      sh.dets[j.tier],
		Pool:     g.pool,
	})
	// Publish the group's conditioning for the ladder once its cache
	// holds prepared channels (after the first Geosphere/K-best frame).
	if k := g.pool.MeanKappa2dB(); !math.IsNaN(k) {
		sh.kappas.Store(j.group, math.Float64bits(k))
	}
	o := Outcome{Group: j.group, Frame: fi, Tier: j.tier, Err: out.Err}
	if out.Err == nil {
		o.OK = out.Res.FrameOK()
		for _, ok := range out.Res.StreamOK {
			if !ok {
				o.StreamErrors++
			}
		}
	}
	sh.srv.stats.observe(o, time.Since(start)) //geolint:nondeterminism-ok wall-clock latency only feeds the service metrics, never detection
	return o
}

// group returns the resident state for id, creating it (and evicting
// the least-recently-used group past the cap) on first use.
func (sh *shard) group(id uint64) *groupState {
	sh.clock++
	if g, ok := sh.groups[id]; ok {
		g.lastUsed = sh.clock
		return g
	}
	if len(sh.groups) >= sh.maxGroups {
		sh.evict()
		sh.srv.stats.groupsEvicted.Inc()
	}
	g := &groupState{
		hs:       groupChannels(sh.srv.cfg, id),
		pool:     core.NewPrepPool(ofdm.NumData),
		lastUsed: sh.clock,
	}
	sh.groups[id] = g
	sh.srv.stats.groupsCreated.Inc()
	return g
}

// evict removes the least-recently-used group. The victim is the
// unique entry with the strictly smallest lastUsed tick, so the choice
// does not depend on map iteration order.
func (sh *shard) evict() {
	var victim uint64
	oldest := uint64(math.MaxUint64)
	for id, g := range sh.groups { //geolint:nondeterminism-ok victim selection by strictly-minimal unique lastUsed tick is iteration-order independent
		if g.lastUsed < oldest {
			oldest, victim = g.lastUsed, id
		}
	}
	delete(sh.groups, victim)
	sh.kappas.Delete(victim)
}

// groupChannels draws a group's static frequency-selective channel:
// one Rayleigh matrix per data subcarrier from the group's own
// substream. Static-per-group is the trace-replay regime — every frame
// after the group's first hits the preparation cache on the Geosphere
// tier.
func groupChannels(cfg Config, id uint64) []*cmplxmat.Matrix {
	src := rng.Substream(cfg.Seed+1, int64(id))
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		hs[i] = channel.Rayleigh(src, cfg.NA, cfg.NC)
	}
	return hs
}
