// Package serve is the resident multi-user detection service behind
// cmd/geocell: a sharded pool of link.Processor pipelines serving
// uplink frames for an unbounded population of user groups, with
// bounded per-shard admission rings (backpressure and admission
// control), per-group channel state and preparation caches behind a
// second-chance residency cap, and graceful degradation under overload
// — each frame is served at the deepest affordable rung of the
// Geosphere → K-best → ZF ladder, chosen from the shard's ring
// occupancy at drain time (the complexity-budget proxy: a backlog
// means the full search is too expensive right now). Every ladder
// decision is counted in obs, so the served mix is observable, and a
// full ring rejects (ErrOverload) instead of queueing unboundedly.
//
// Ingest is built for throughput: admission is a lock-free append onto
// a bounded MPSC ring (internal/mpsc) with coalesced consumer wakeups,
// and each shard drains up to BatchMax queued frames per wakeup,
// groups them by user group, and serves each group's run as one
// micro-batch through link.Processor.ProcessBatch — amortizing the
// group-table lookup, the ladder decision, every per-subcarrier
// detector preparation and the recorder fold across the batch instead
// of paying them per frame. The same shape as request coalescing in an
// inference server: batch size adapts to load, an idle shard serves
// singles at single-frame latency, a backlogged shard serves batches
// at batch throughput.
//
// Detection itself stays deterministic: a group's channels are drawn
// from the substream (Seed+1, group), a frame's randomness from the
// substream (Seed, frameKey(group, seq)), and ProcessBatch's per-frame
// outcomes are byte-identical to the single-frame path — so the
// outcome of a group's n-th frame at a given tier is a pure function
// of the configuration, independent of shard scheduling, batch
// composition, interleaving with other groups, or wall-clock time.
// Only the tier choice (explicitly load-dependent) and the latency
// metrics depend on the environment.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/kbest"
	"repro/internal/linear"
	"repro/internal/link"
	"repro/internal/mpsc"
	"repro/internal/obs"
	"repro/internal/ofdm"
	"repro/internal/rng"
)

// Typed sentinel errors of the serving layer.
var (
	// ErrOverload reports a frame rejected by admission control: the
	// target shard's bounded ring is full even for the cheapest tier.
	// It wraps link.ErrQueueFull, so errors.Is matches either.
	ErrOverload = fmt.Errorf("serve: shard overloaded: %w", link.ErrQueueFull)
	// ErrServerClosed reports a frame submitted to a closed Server.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrBadLadder reports degradation thresholds outside
	// 0 ≤ KBestLoad ≤ ZFLoad ≤ 1.
	ErrBadLadder = errors.New("serve: ladder thresholds must satisfy 0 <= KBestLoad <= ZFLoad <= 1")
)

// Config configures a Server. The zero value of every optional field
// picks a sensible default (see withDefaults).
type Config struct {
	// Cons is the uplink constellation; defaults to QAM16.
	Cons *constellation.Constellation
	// NA and NC are the AP antenna count and the clients per group
	// (one group = one spatially-multiplexed uplink transmission).
	// Defaults: 4×2.
	NA, NC int
	// NumSymbols is the OFDM symbols per frame; defaults to 8.
	NumSymbols int
	// SNRdB is the per-stream SNR; defaults to 25.
	SNRdB float64
	// Seed roots all of the service's determinism: group channels come
	// from substream (Seed+1, group), frame randomness from substream
	// (Seed, frameKey(group, seq)).
	Seed int64
	// Shards is the number of independent pipeline shards (one
	// goroutine, one link.Processor, one detector ladder and one group
	// table each). Groups map to shards by group % Shards, so a
	// group's frames always hit the same shard — and therefore the
	// same preparation caches. Defaults to 8.
	Shards int
	// QueueDepth bounds each shard's admission ring; a full ring
	// rejects with ErrOverload. The ring rounds the depth up to the
	// next power of two. Defaults to 64.
	QueueDepth int
	// BatchMax caps the frames one shard drains and serves per wakeup
	// as micro-batches (grouped by user group, so the per-subcarrier
	// detector preparations amortize across each group's run).
	// Defaults to 16.
	BatchMax int
	// MaxGroups caps each shard's resident group table; beyond it a
	// second-chance (clock) sweep evicts the first group not touched
	// since the hand last passed it (bounded memory for an unbounded
	// user population; a returning evicted group is rebuilt lazily
	// from its substreams with its frame sequence restarted). Defaults
	// to the number of groups whose measured state fits the per-shard
	// residency budget (at least 512), so the global cap is
	// Shards × MaxGroups groups.
	MaxGroups int
	// KBestK is the K-best list size of the middle ladder rung;
	// defaults to 4.
	KBestK int
	// KBestLoad and ZFLoad are the degradation thresholds on shard
	// ring occupancy (queued / QueueDepth, read once per drain): below
	// KBestLoad frames get the full Geosphere search, below ZFLoad the
	// K-best search, above it ZF. Defaults: 0.5 and 0.85.
	KBestLoad, ZFLoad float64
	// KappaLowDB, KappaHighDB and KappaBias shape the ladder by group
	// conditioning: the occupancy the ladder sees is occ +
	// KappaBias·w(κ̂²), where w falls linearly from 1 at κ̂² ≤ KappaLowDB
	// to 0 at κ̂² ≥ KappaHighDB. Well-conditioned groups are the ones ZF
	// already detects near-optimally (their sphere search is cheap and
	// its gain nil), so under overload they are shed to cheaper tiers
	// first while poorly-conditioned groups — the ones that actually
	// need the search — keep it longest. A group's κ̂² is the mean
	// diagonal condition estimate of its preparation cache, learned
	// after its first frame; unknown κ̂² is neutral (w = 0). The default
	// bias 0.25 stays below the default KBestLoad, so an idle shard
	// still serves every group the full search. Defaults: 6 dB, 18 dB,
	// 0.25; a negative KappaBias disables the shaping.
	KappaLowDB, KappaHighDB float64
	KappaBias               float64
	// Recorder, when non-nil, receives the pipeline's observability
	// stream (per-frame samples carry the serving tier). It must be
	// safe for concurrent use.
	Recorder obs.Recorder
}

// groupBudgetBytes is the per-shard residency budget the MaxGroups
// default is sized against.
const groupBudgetBytes = 64 << 20

// defaultMaxGroups sizes the residency cap from the measured per-group
// footprint: 48 per-subcarrier na×nc complex channel matrices, the
// prepared state the cache derives from them (QR factors and scratch,
// ≈4× the channel itself), and fixed map/struct overhead. For the
// default 4×2 shape that is ≈32 KiB per group → ≈2048 resident groups
// per shard, four times the old flat 512 cap that thrashed under 10k
// users.
func defaultMaxGroups(na, nc int) int {
	chanBytes := ofdm.NumData * na * nc * 16
	perGroup := chanBytes + 4*chanBytes + 2048
	n := groupBudgetBytes / perGroup
	if n < 512 {
		n = 512
	}
	if n > 8192 {
		n = 8192
	}
	return n
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Cons == nil {
		c.Cons = constellation.QAM16
	}
	if c.NA == 0 && c.NC == 0 {
		c.NA, c.NC = 4, 2
	}
	if c.NumSymbols == 0 {
		c.NumSymbols = 8
	}
	if c.SNRdB == 0 { //geolint:float-ok exact zero-value test for "field unset", not a tolerance comparison
		c.SNRdB = 25
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.MaxGroups <= 0 {
		c.MaxGroups = defaultMaxGroups(c.NA, c.NC)
	}
	if c.KBestK <= 0 {
		c.KBestK = 4
	}
	if c.KBestLoad == 0 && c.ZFLoad == 0 { //geolint:float-ok exact zero-value test for "fields unset", not a tolerance comparison
		c.KBestLoad, c.ZFLoad = 0.5, 0.85
	}
	if c.KappaLowDB == 0 && c.KappaHighDB == 0 { //geolint:float-ok exact zero-value test for "fields unset", not a tolerance comparison
		c.KappaLowDB, c.KappaHighDB = 6, 18
	}
	if c.KappaBias == 0 { //geolint:float-ok exact zero-value test for "field unset", not a tolerance comparison
		c.KappaBias = 0.25
	}
	return c
}

// kappaWeight maps a group's κ̂² (dB) onto the ladder's conditioning
// weight: 1 at or below KappaLowDB, 0 at or above KappaHighDB, linear
// between, and 0 (neutral) for an unknown NaN estimate.
func (c Config) kappaWeight(kappa2dB float64) float64 {
	if math.IsNaN(kappa2dB) {
		return 0
	}
	w := (c.KappaHighDB - kappa2dB) / (c.KappaHighDB - c.KappaLowDB)
	if w < 0 {
		return 0
	}
	if w > 1 {
		return 1
	}
	return w
}

// runConfig maps the serving configuration onto the link pipeline's.
func (c Config) runConfig() link.RunConfig {
	return link.RunConfig{
		Cons:       c.Cons,
		Rate:       fec.Rate12,
		NumSymbols: c.NumSymbols,
		SNRdB:      c.SNRdB,
		Seed:       c.Seed,
		Recorder:   c.Recorder,
	}
}

// seqBits is the width of the per-group frame sequence inside the
// 63-bit frame key; group ids get the bits above it.
const seqBits = 20

// frameKey packs (group, seq) into the frame index that fixes the
// frame's RNG substream. Unique per (group, seq) for groups below
// 2^43; a group's sequence wraps after 2^20 frames, replaying its
// substreams — acceptable for a simulated-traffic service and kept
// explicit here.
func frameKey(group uint64, seq int64) int64 {
	return int64(group)<<seqBits | (seq & (1<<seqBits - 1))
}

// Outcome is one served frame's result.
type Outcome struct {
	// Group is the user group that transmitted the frame.
	Group uint64
	// Frame is the frame key (see frameKey) the pipeline used.
	Frame int64
	// Tier is the ladder rung that served the frame.
	Tier obs.Tier
	// OK reports whether every stream's CRC verified.
	OK bool
	// StreamErrors counts the frame's failed streams.
	StreamErrors int
	// Err is the pipeline error, nil on success.
	Err error
}

// groupState is one resident group's serving state: its (static,
// frequency-selective) per-subcarrier channels and the preparation
// cache those channels warm — both materialized lazily on the group's
// first served frame, so table residency is cheap until a group
// actually transmits — plus the frame sequence counter and the
// second-chance reference bit.
type groupState struct {
	hs   []*cmplxmat.Matrix
	pool *core.PrepPool
	seq  int64
	// ref is the clock algorithm's reference bit: set on every touch,
	// cleared when the eviction hand sweeps past; a group is evicted
	// only when the hand finds it unreferenced twice in a row.
	ref bool
}

// job is one admitted frame request. admitted is the admission
// timestamp; the latency histogram spans admission to completion, so
// it includes ring queueing, not just in-shard service.
type job struct {
	group    uint64
	admitted time.Time
	reply    chan<- Outcome
}

// shard is one pipeline shard: a single goroutine draining a bounded
// MPSC ring through its own link.Processor, with a persistent detector
// per ladder tier and a resident-group table. Single-goroutine
// execution is what makes the non-concurrency-safe Processor,
// PrepPools and eviction state safe without locks; the ring is the
// only producer/consumer boundary.
type shard struct {
	id   int
	srv  *Server
	proc *link.Processor
	dets [4]core.Detector // indexed by obs.Tier; TierNone unused
	ring *mpsc.Ring[job]

	groups    map[uint64]*groupState
	maxGroups int
	// order and hand are the clock sweep over resident groups:
	// insertion-ordered ids with swap-removal, so eviction is
	// deterministic (never map iteration) and O(1) amortized.
	order []uint64
	hand  int

	// Drain scratch, reused across wakeups.
	batch  []job
	taken  []bool
	gjobs  []job
	frames []int64
	outs   []link.FrameOutcome
}

// Server is the resident detection service. Safe for concurrent use
// by any number of submitters.
type Server struct {
	cfg    Config
	shards []*shard
	stats  *Stats
	wg     sync.WaitGroup
	once   sync.Once
	// replies recycles Process's buffered reply channels: under
	// overload most admissions reject, and a reject's channel never
	// sees a send, so pooling turns the retry storm's hottest
	// allocation into a pool hit. A channel is repooled only when it
	// is provably empty — after a reject (no job holds it) or after
	// its one outcome was received; an abandoned wait (ctx cancelled
	// after admission) leaks its channel to the GC instead.
	replies sync.Pool
}

// New validates the configuration, builds every shard's pipeline and
// detector ladder, and starts the shard goroutines. The caller owns
// the Server and must Close it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.NC <= 0 || cfg.NA < cfg.NC {
		return nil, fmt.Errorf("%w: %d antennas × %d clients", link.ErrBadShape, cfg.NA, cfg.NC)
	}
	if cfg.KBestLoad < 0 || cfg.ZFLoad < cfg.KBestLoad || cfg.ZFLoad > 1 {
		return nil, fmt.Errorf("%w: KBestLoad=%g ZFLoad=%g", ErrBadLadder, cfg.KBestLoad, cfg.ZFLoad)
	}
	if cfg.KappaHighDB <= cfg.KappaLowDB || cfg.KappaBias > 1 {
		return nil, fmt.Errorf("%w: KappaLowDB=%g KappaHighDB=%g KappaBias=%g", ErrBadLadder, cfg.KappaLowDB, cfg.KappaHighDB, cfg.KappaBias)
	}
	if err := cfg.runConfig().ValidateFormat(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, stats: NewStats()}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(i, s)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.run()
	}
	return s, nil
}

// newShard builds one shard's processor, detector ladder and tables.
func newShard(id int, s *Server) (*shard, error) {
	cfg := s.cfg
	proc, err := link.NewProcessor(cfg.runConfig())
	if err != nil {
		return nil, err
	}
	kb, err := kbest.NewKBest(cfg.Cons, cfg.KBestK)
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:        id,
		srv:       s,
		proc:      proc,
		ring:      mpsc.New[job](cfg.QueueDepth),
		groups:    make(map[uint64]*groupState, cfg.MaxGroups),
		maxGroups: cfg.MaxGroups,
		batch:     make([]job, 0, cfg.BatchMax),
		taken:     make([]bool, cfg.BatchMax),
		gjobs:     make([]job, 0, cfg.BatchMax),
		frames:    make([]int64, 0, cfg.BatchMax),
	}
	sh.dets[obs.TierGeosphere] = core.NewGeosphere(cfg.Cons)
	sh.dets[obs.TierKBest] = kb
	sh.dets[obs.TierZF] = linear.NewZF(cfg.Cons)
	if cfg.Recorder != nil {
		for _, det := range sh.dets {
			if t, ok := det.(obs.Target); ok {
				t.SetRecorder(cfg.Recorder)
			}
		}
	}
	return sh, nil
}

// Config returns the effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// Stats returns the server's live counters.
func (s *Server) Stats() *Stats { return s.stats }

// shardFor maps a group to its home shard; the affinity keeps a
// group's frames on one preparation cache.
func (s *Server) shardFor(group uint64) *shard {
	return s.shards[group%uint64(len(s.shards))]
}

// pickTier applies the degradation ladder to a shard's ring occupancy
// shaped by the group's conditioning — the service's complexity-budget
// proxy: everything in the ring is detection work already promised,
// so a deep backlog means the full search cannot be afforded for new
// arrivals, and among the arrivals the well-conditioned (cheap,
// ZF-friendly) groups are shed to lower tiers first (see the Kappa*
// knobs). Occupancy is read once per drain; the κ̂²-biased decision is
// re-applied per group within the batch. kappa2dB is the group's
// learned κ̂², NaN when unknown.
func (s *Server) pickTier(queued, depth int, kappa2dB float64) obs.Tier {
	occ := float64(queued) / float64(depth)
	if s.cfg.KappaBias > 0 {
		occ += s.cfg.KappaBias * s.cfg.kappaWeight(kappa2dB)
	}
	switch {
	case occ < s.cfg.KBestLoad:
		return obs.TierGeosphere
	case occ < s.cfg.ZFLoad:
		return obs.TierKBest
	default:
		return obs.TierZF
	}
}

// Process serves one frame for group: admission control either appends
// the frame onto the home shard's ring or rejects with ErrOverload
// (never blocks), the shard picks the ladder tier at drain time from
// the ring's occupancy, and the outcome is awaited under ctx. A frame
// admitted before ctx is cancelled still completes on its shard;
// Process just stops waiting.
func (s *Server) Process(ctx context.Context, group uint64) (Outcome, error) {
	sh := s.shardFor(group)
	reply, _ := s.replies.Get().(chan Outcome)
	if reply == nil {
		reply = make(chan Outcome, 1)
	}
	j := job{
		group:    group,
		admitted: time.Now(), //geolint:nondeterminism-ok wall-clock latency only feeds the service metrics, never detection
		reply:    reply,
	}
	switch err := sh.ring.TryPush(j); {
	case errors.Is(err, mpsc.ErrFull):
		s.stats.rejected.Inc()
		s.replies.Put(reply)
		return Outcome{}, ErrOverload
	case errors.Is(err, mpsc.ErrClosed):
		s.replies.Put(reply)
		return Outcome{}, ErrServerClosed
	}
	s.stats.submitted.Inc()

	select {
	case o := <-reply:
		s.replies.Put(reply)
		return o, o.Err
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	}
}

// Close stops the service: every admitted frame completes on its
// shard's final drain, then the shard goroutines exit. Further
// submissions return ErrServerClosed. Close is idempotent.
func (s *Server) Close() error {
	s.once.Do(func() {
		for _, sh := range s.shards {
			sh.ring.Close()
		}
		s.wg.Wait()
	})
	return nil
}

// run is the shard goroutine: drain the ring dry, sleep until a
// producer wakeup, repeat; after Close, one final drain serves every
// frame admitted before it.
//
// The timer park between consecutive non-empty drains is scheduler
// fairness, not pacing. Under a sustained backlog the drain loop is
// CPU-bound, and on a saturated GOMAXPROCS the async-preempted shard
// goroutine lands in the runtime's global run queue — which is only
// polled occasionally while thousands of timer-woken submitters keep
// the local queue warm, so a preempted shard can starve for seconds
// with a full ring (measured: multi-second p99 spikes at 10k users on
// one core). Re-entering through a timer wakeup instead queues the
// shard with the same priority as the submitters it competes with,
// bounding the gap between drains at roughly one pass of the run
// queue. The park costs ~the timer resolution once per micro-batch
// only while a backlog persists; an idle shard still blocks in Wait
// and serves its next frame immediately.
func (sh *shard) run() {
	defer sh.srv.wg.Done()
	for {
		for sh.drain() {
			time.Sleep(time.Microsecond)
		}
		if !sh.ring.Wait() {
			for sh.drain() {
			}
			return
		}
	}
}

// drain pops and serves one micro-batch of up to BatchMax frames,
// reporting whether it served anything. The ring occupancy is read
// once, before popping — the batch-aware ladder's load signal — and
// the popped frames are grouped by user group (preserving arrival
// order within and across groups) so each group's run is served as one
// ProcessBatch call against its prepared channel.
func (sh *shard) drain() bool {
	occ := sh.ring.Len()
	jobs := sh.batch[:0]
	for len(jobs) < cap(jobs) {
		j, ok := sh.ring.TryPop()
		if !ok {
			break
		}
		jobs = append(jobs, j)
	}
	sh.batch = jobs
	if len(jobs) == 0 {
		return false
	}
	sh.srv.stats.observeBatch(len(jobs), occ)
	taken := sh.taken[:len(jobs)]
	for i := range taken {
		taken[i] = false
	}
	for i := range jobs {
		if taken[i] {
			continue
		}
		gid := jobs[i].group
		gjobs := sh.gjobs[:0]
		for k := i; k < len(jobs); k++ {
			if !taken[k] && jobs[k].group == gid {
				taken[k] = true
				gjobs = append(gjobs, jobs[k])
			}
		}
		sh.gjobs = gjobs
		sh.serveGroup(gid, gjobs, occ)
	}
	return true
}

// serveGroup serves one group's run of the drained batch as a single
// ProcessBatch call: one group-table touch, one ladder decision, one
// prepared-channel sweep.
func (sh *shard) serveGroup(gid uint64, gjobs []job, occ int) {
	g := sh.group(gid)
	tier := sh.srv.pickTier(occ, sh.ring.Cap(), g.pool.MeanKappa2dB())
	frames := sh.frames[:0]
	for range gjobs {
		frames = append(frames, frameKey(gid, g.seq))
		g.seq++
	}
	sh.frames = frames
	sh.outs = sh.proc.ProcessBatch(sh.outs, link.BatchWork{
		Frames:   frames,
		Worker:   sh.id,
		Tier:     tier,
		Channels: g.hs,
		Det:      sh.dets[tier],
		Pool:     g.pool,
	})
	for i, j := range gjobs {
		out := sh.outs[i]
		o := Outcome{Group: gid, Frame: frames[i], Tier: tier, Err: out.Err}
		if out.Err == nil {
			o.OK = out.Res.FrameOK()
			for _, ok := range out.Res.StreamOK {
				if !ok {
					o.StreamErrors++
				}
			}
		}
		sh.srv.stats.observe(o, time.Since(j.admitted)) //geolint:nondeterminism-ok wall-clock latency only feeds the service metrics, never detection
		j.reply <- o
	}
}

// group returns the resident state for id, creating it (and evicting
// past the cap with the second-chance sweep) on first use. A new —
// or returning, previously evicted — group's channels and preparation
// cache are rebuilt lazily here, on its first served frame, and its
// substream-derived state is identical to what eviction dropped
// (except the frame sequence, which restarts).
func (sh *shard) group(id uint64) *groupState {
	g, ok := sh.groups[id]
	if ok {
		g.ref = true
	} else {
		if len(sh.groups) >= sh.maxGroups {
			sh.evict()
			sh.srv.stats.groupsEvicted.Inc()
		}
		g = &groupState{ref: true}
		sh.groups[id] = g
		sh.order = append(sh.order, id)
		sh.srv.stats.groupsCreated.Inc()
	}
	if g.hs == nil {
		// Lazy (re)build: the channels and the preparation cache are
		// derived from the group's substream only when a frame actually
		// needs them — a returning evicted group pays this once, on its
		// first touch, and gets byte-identical state back.
		g.hs = groupChannels(sh.srv.cfg, id)
		g.pool = core.NewPrepPool(ofdm.NumData)
		sh.srv.stats.lazyBuilds.Inc()
	}
	return g
}

// evict runs the second-chance (clock) sweep: the hand walks the
// insertion ring, granting every referenced group one more lap (its
// ref bit is cleared and counted as a second-chance hit) and evicting
// the first group found unreferenced. Unlike strict LRU this keeps a
// steadily re-touched working set resident under a scan of one-shot
// groups, and the sweep never depends on map iteration order.
func (sh *shard) evict() {
	for {
		if sh.hand >= len(sh.order) {
			sh.hand = 0
		}
		id := sh.order[sh.hand]
		g := sh.groups[id]
		if g.ref {
			g.ref = false
			sh.srv.stats.secondChanceHits.Inc()
			sh.hand++
			continue
		}
		delete(sh.groups, id)
		last := len(sh.order) - 1
		sh.order[sh.hand] = sh.order[last]
		sh.order = sh.order[:last]
		return
	}
}

// groupChannels draws a group's static frequency-selective channel:
// one Rayleigh matrix per data subcarrier from the group's own
// substream. Static-per-group is the trace-replay regime — every frame
// after the group's first hits the preparation cache on the Geosphere
// tier.
func groupChannels(cfg Config, id uint64) []*cmplxmat.Matrix {
	src := rng.Substream(cfg.Seed+1, int64(id))
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		hs[i] = channel.Rayleigh(src, cfg.NA, cfg.NC)
	}
	return hs
}
