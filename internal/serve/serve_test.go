package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/link"
	"repro/internal/obs"
)

// quickConfig is a small, fast service shape shared by the tests.
func quickConfig() Config {
	return Config{
		Cons:       constellation.QPSK,
		NA:         4,
		NC:         2,
		NumSymbols: 2,
		SNRdB:      30,
		Seed:       7,
		Shards:     2,
		QueueDepth: 8,
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{NA: 2, NC: 4}); !errors.Is(err, link.ErrBadShape) {
		t.Fatalf("wide shape accepted: %v", err)
	}
	bad := quickConfig()
	bad.KBestLoad, bad.ZFLoad = 0.8, 0.3
	if _, err := New(bad); !errors.Is(err, ErrBadLadder) {
		t.Fatalf("inverted ladder accepted: %v", err)
	}
	bad = quickConfig()
	bad.KBestLoad, bad.ZFLoad = 0.5, 1.5
	if _, err := New(bad); !errors.Is(err, ErrBadLadder) {
		t.Fatalf("ZFLoad > 1 accepted: %v", err)
	}
}

func TestDefaults(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := s.Config()
	if cfg.Cons == nil || cfg.NA != 4 || cfg.NC != 2 || cfg.Shards != 8 ||
		cfg.QueueDepth != 64 || cfg.BatchMax != 16 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	// MaxGroups is sized from the per-group footprint: at least the old
	// flat 512 cap, and large enough that the recorded 10k-user load
	// (1250 groups/shard) stays resident without thrash.
	if cfg.MaxGroups < 512 {
		t.Fatalf("MaxGroups default %d below the 512 floor", cfg.MaxGroups)
	}
	if cfg.MaxGroups < 1250 {
		t.Fatalf("MaxGroups default %d cannot hold 10k users across 8 shards", cfg.MaxGroups)
	}
}

// TestDeterministicOutcomes pins the serving determinism contract: two
// same-seeded servers produce identical outcomes for the same groups
// in the same per-group order, regardless of shard interleaving.
func TestDeterministicOutcomes(t *testing.T) {
	run := func() []Outcome {
		s, err := New(quickConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var outs []Outcome
		for _, group := range []uint64{3, 0, 11, 3, 7, 0, 3} {
			o, err := s.Process(context.Background(), group)
			if err != nil {
				t.Fatalf("group %d: %v", group, err)
			}
			outs = append(outs, o)
		}
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d diverged:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
	// Frame keys advance per group: the two frames of group 0 differ.
	if a[1].Frame == a[5].Frame {
		t.Fatalf("group 0 reused frame key %d", a[1].Frame)
	}
	if a[0].Frame == a[3].Frame || a[3].Frame == a[6].Frame {
		t.Fatal("group 3 reused a frame key")
	}
	// Sequential submission never queues, so every frame gets the top tier.
	for i, o := range a {
		if o.Tier != obs.TierGeosphere {
			t.Fatalf("outcome %d served at %v under no load", i, o.Tier)
		}
	}
}

func TestPickTierLadder(t *testing.T) {
	s, err := New(quickConfig()) // ladder defaults: 0.5, 0.85
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	nan := math.NaN()
	cases := []struct {
		queued   int
		kappa2dB float64
		want     obs.Tier
	}{
		// Unknown conditioning is neutral: occupancy alone decides.
		{0, nan, obs.TierGeosphere},
		{7, nan, obs.TierGeosphere}, // 7/16 < 0.5
		{8, nan, obs.TierKBest},     // 8/16 = 0.5
		{13, nan, obs.TierKBest},    // 13/16 < 0.85
		{14, nan, obs.TierZF},       // 14/16 >= 0.85
		{16, nan, obs.TierZF},
		// Poorly-conditioned groups (κ̂² ≥ KappaHighDB = 18) behave as
		// occupancy-only: they keep the full search the longest.
		{7, 25, obs.TierGeosphere},
		{13, 25, obs.TierKBest},
		// Well-conditioned groups (κ̂² ≤ KappaLowDB = 6) carry the full
		// bias 0.25: idle shards still serve Geosphere, but the ladder
		// sheds them 0.25 occupancy earlier on both rungs.
		{0, 3, obs.TierGeosphere}, // 0 + 0.25 < 0.5
		{4, 3, obs.TierKBest},     // 4/16 + 0.25 = 0.5
		{9, 3, obs.TierKBest},     // 9/16 + 0.25 < 0.85
		{10, 3, obs.TierZF},       // 10/16 + 0.25 >= 0.85
		// Mid-band conditioning interpolates: κ̂² = 12 dB is halfway, so
		// the effective bias is 0.125 and 6/16 + 0.125 lands exactly on
		// the strict 0.5 boundary — degraded to K-best.
		{6, 12, obs.TierKBest},
		{5, 12, obs.TierGeosphere}, // 5/16 + 0.125 < 0.5
	}
	for _, c := range cases {
		if got := s.pickTier(c.queued, 16, c.kappa2dB); got != c.want {
			t.Fatalf("pickTier(%d, 16, %g) = %v, want %v", c.queued, c.kappa2dB, got, c.want)
		}
	}
}

// TestAdmissionControl verifies that overload sheds via ErrOverload
// instead of queueing unboundedly. The overload is constructed
// deterministically: the single shard's worker is wedged by
// withholding the read of an unbuffered reply channel, the ring is
// filled to capacity behind it, and only then is Process asked to
// admit.
func TestAdmissionControl(t *testing.T) {
	cfg := quickConfig()
	cfg.Shards = 1
	cfg.QueueDepth = 1 // the ring rounds this up to its minimum of 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Unbuffered: the shard goroutine blocks delivering the first job's
	// outcome until this test reads it. Wait for the shard to pop the
	// job (the ring drains the instant the shard wakes), then fill the
	// ring to capacity behind the wedged worker.
	wedge := make(chan Outcome)
	sh := s.shards[0]
	if err := sh.ring.TryPush(job{group: 0, reply: wedge}); err != nil {
		t.Fatal(err)
	}
	for sh.ring.Len() != 0 {
		runtime.Gosched()
	}
	queued := sh.ring.Cap()
	for i := 0; i < queued; i++ {
		if err := sh.ring.TryPush(job{group: 0, reply: wedge}); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := s.Process(context.Background(), 0); !errors.Is(err, ErrOverload) {
		t.Fatalf("full ring admitted a frame: %v", err)
	}
	// ErrOverload is also the link-layer queue-full signal.
	if !errors.Is(ErrOverload, link.ErrQueueFull) {
		t.Fatal("ErrOverload does not wrap link.ErrQueueFull")
	}
	if snap := s.Stats().Snapshot(); snap.Rejected != 1 {
		t.Fatalf("stats counted %d rejects, want 1", snap.Rejected)
	}

	// Unwedge, drain every withheld outcome, and confirm the service
	// recovers.
	for i := 0; i < queued+1; i++ {
		<-wedge
	}
	if _, err := s.Process(context.Background(), 0); err != nil {
		t.Fatalf("service did not recover after overload: %v", err)
	}
	snap := s.Stats().Snapshot()
	if snap.Submitted != 1 {
		t.Fatalf("stats counted %d admissions, want 1", snap.Submitted)
	}
}

// TestGroupEviction pins the LRU bound on resident group state.
func TestGroupEviction(t *testing.T) {
	cfg := quickConfig()
	cfg.Shards = 1
	cfg.MaxGroups = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, group := range []uint64{0, 1, 2, 3, 4} {
		if _, err := s.Process(context.Background(), group); err != nil {
			t.Fatalf("group %d: %v", group, err)
		}
	}
	snap := s.Stats().Snapshot()
	if snap.GroupsCreated != 5 {
		t.Fatalf("created %d groups, want 5", snap.GroupsCreated)
	}
	if snap.GroupsEvicted != 3 {
		t.Fatalf("evicted %d groups, want 3", snap.GroupsEvicted)
	}
	if n := len(s.shards[0].groups); n != 2 {
		t.Fatalf("%d resident groups, want 2", n)
	}
	// Group 4 was just served; it must still be resident, and serving it
	// again must not create a new group.
	if _, err := s.Process(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if snap := s.Stats().Snapshot(); snap.GroupsCreated != 5 {
		t.Fatalf("revisiting a resident group created state: %d", snap.GroupsCreated)
	}
	// An evicted group returning is rebuilt with its sequence restarted:
	// same first frame key as its very first visit.
	o, err := s.Process(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Frame != frameKey(0, 0) {
		t.Fatalf("rebuilt group 0 resumed at frame key %d, want %d", o.Frame, frameKey(0, 0))
	}
}

func TestServerClosed(t *testing.T) {
	s, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Process(context.Background(), 1); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("closed server accepted a frame: %v", err)
	}
}

func TestRunLoadReport(t *testing.T) {
	s, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep := RunLoad(context.Background(), s, LoadConfig{Users: 8, FramesPerUser: 2})
	if rep.Users != 8 || rep.FramesPerUser != 2 {
		t.Fatalf("config not echoed: %+v", rep)
	}
	if rep.FramesOffered != 16 {
		t.Fatalf("offered %d frames, want 16", rep.FramesOffered)
	}
	if rep.FramesServed+rep.Dropped != rep.FramesOffered {
		t.Fatalf("served %d + dropped %d != offered %d", rep.FramesServed, rep.Dropped, rep.FramesOffered)
	}
	if rep.FramesServed > 0 && rep.OfferedPerSec < rep.FramesPerSec {
		t.Fatalf("offered rate %g below served rate %g", rep.OfferedPerSec, rep.FramesPerSec)
	}
	if rep.FramesServed > 0 {
		if rep.FramesPerSec <= 0 {
			t.Fatalf("no throughput: %+v", rep)
		}
		if rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
			t.Fatalf("latency quantiles out of order: %+v", rep.Latency)
		}
		total := rep.Tiers.None + rep.Tiers.Geosphere + rep.Tiers.KBest + rep.Tiers.ZF
		if total != rep.FramesServed {
			t.Fatalf("tier counts sum to %d, served %d", total, rep.FramesServed)
		}
	}
}

// TestRetryWait pins the jittered exponential backoff schedule: the
// wait doubles from Backoff, stays within the ±50% jitter envelope,
// never exceeds BackoffMax, and is deterministic per (seed, user).
func TestRetryWait(t *testing.T) {
	lc := LoadConfig{Backoff: time.Millisecond, BackoffMax: 8 * time.Millisecond}
	for attempt := 0; attempt < 8; attempt++ {
		base := time.Millisecond << attempt
		if base > lc.BackoffMax {
			base = lc.BackoffMax
		}
		src := newJitterStream(42, 7)
		for i := 0; i < attempt; i++ {
			// Advance the stream the way a real retry sequence would.
			lc.retryWait(src, i)
		}
		d := lc.retryWait(src, attempt)
		if d < base/2 || d > lc.BackoffMax {
			t.Fatalf("attempt %d: wait %v outside [%v, %v]", attempt, d, base/2, lc.BackoffMax)
		}
	}
	// Same seed, same schedule.
	a, b := newJitterStream(9, 3), newJitterStream(9, 3)
	for i := 0; i < 5; i++ {
		if lc.retryWait(a, i) != lc.retryWait(b, i) {
			t.Fatalf("attempt %d: jitter schedule not deterministic", i)
		}
	}
}

// TestRunLoadOpenLoop drives the arrival-rate mode: offered load is
// fixed by the clock, rejects are never retried, and the report
// separates offered from served throughput.
func TestRunLoadOpenLoop(t *testing.T) {
	s, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep := RunLoad(context.Background(), s, LoadConfig{
		Users:         4,
		FramesPerUser: 3,
		ArrivalRate:   2000, // 4 users / 2000 fps → 2ms period, fast test
	})
	if rep.FramesOffered != 12 {
		t.Fatalf("offered %d frames, want 12", rep.FramesOffered)
	}
	if rep.FramesServed+rep.Dropped != rep.FramesOffered {
		t.Fatalf("served %d + dropped %d != offered %d", rep.FramesServed, rep.Dropped, rep.FramesOffered)
	}
	// Open-loop rejects drop without retry: rejects == dropped frames.
	if rep.Rejects != rep.Dropped {
		t.Fatalf("open-loop retried: %d rejects for %d drops", rep.Rejects, rep.Dropped)
	}
	if rep.ArrivalRate != 2000 { //geolint:float-ok exact echo of the configured rate, not a computed float
		t.Fatalf("arrival rate not echoed: %+v", rep.ArrivalRate)
	}
}

func TestQuantileExact(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantileExact(sorted, 0.5); q != 5 { //geolint:float-ok nearest-rank picks an exact sample value, not a computed float
		t.Fatalf("p50 = %g", q)
	}
	if q := quantileExact(sorted, 0.99); q != 10 { //geolint:float-ok nearest-rank picks an exact sample value, not a computed float
		t.Fatalf("p99 = %g", q)
	}
	if q := quantileExact(nil, 0.5); q != 0 { //geolint:float-ok empty-sample sentinel is an exact zero
		t.Fatalf("empty sample p50 = %g", q)
	}
}

func TestHandler(t *testing.T) {
	s, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pipeline := obs.NewStatsRecorder()
	ts := httptest.NewServer(NewHandler(s, pipeline))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = ts.Client().Post(ts.URL+"/ingest?group=5&frames=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum ingestSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	if sum.Group != 5 || sum.Served != 3 {
		t.Fatalf("ingest summary: %+v", sum)
	}

	resp, err = ts.Client().Post(ts.URL+"/ingest?group=x", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad group: %d", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Serve    StatsSnapshot   `json:"serve"`
		Pipeline json.RawMessage `json:"pipeline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Serve.Frames != 3 {
		t.Fatalf("stats served %d frames, want 3", stats.Serve.Frames)
	}
	if len(stats.Pipeline) == 0 || strings.TrimSpace(string(stats.Pipeline)) == "null" {
		t.Fatal("pipeline snapshot missing from /stats")
	}
}
