package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// NewHandler exposes a Server over HTTP:
//
//	GET  /healthz          — liveness probe
//	GET  /stats            — JSON: serving counters, plus the pipeline
//	                         StatsRecorder snapshot when one is wired
//	POST /ingest?group=N&frames=M
//	                       — synchronously serve M frames (default 1)
//	                         for group N and return their summary; an
//	                         overloaded shard answers 503 with the
//	                         rejection count, the admission-control
//	                         contract made visible to clients
//
// pipeline may be nil when the service runs without a StatsRecorder.
func NewHandler(s *Server, pipeline *obs.StatsRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		resp := struct {
			Serve    StatsSnapshot `json:"serve"`
			Pipeline *obs.Snapshot `json:"pipeline,omitempty"`
		}{Serve: s.Stats().Snapshot()}
		if pipeline != nil {
			snap := pipeline.Snapshot()
			resp.Pipeline = &snap
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		group, err := strconv.ParseUint(r.URL.Query().Get("group"), 10, 64)
		if err != nil {
			http.Error(w, "ingest: group must be an unsigned integer", http.StatusBadRequest)
			return
		}
		frames := 1
		if fs := r.URL.Query().Get("frames"); fs != "" {
			frames, err = strconv.Atoi(fs)
			if err != nil || frames <= 0 || frames > 10000 {
				http.Error(w, "ingest: frames must be in 1..10000", http.StatusBadRequest)
				return
			}
		}
		var sum ingestSummary
		sum.Group = group
		for i := 0; i < frames; i++ {
			o, err := s.Process(r.Context(), group)
			switch {
			case err == nil:
				sum.Served++
				if o.OK {
					sum.OK++
				}
				sum.StreamErrors += o.StreamErrors
				sum.countTier(o.Tier)
			case isOverload(err):
				sum.Rejected++
			default:
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		status := http.StatusOK
		if sum.Served == 0 && sum.Rejected > 0 {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, sum)
	})
	return mux
}

// ingestSummary is the /ingest response body.
type ingestSummary struct {
	Group        uint64           `json:"group"`
	Served       int              `json:"served"`
	OK           int              `json:"ok"`
	StreamErrors int              `json:"stream_errors"`
	Rejected     int              `json:"rejected"`
	Tiers        obs.TierSnapshot `json:"tiers"`
}

func (s *ingestSummary) countTier(t obs.Tier) {
	switch t {
	case obs.TierGeosphere:
		s.Tiers.Geosphere++
	case obs.TierKBest:
		s.Tiers.KBest++
	case obs.TierZF:
		s.Tiers.ZF++
	default:
		s.Tiers.None++
	}
}

// isOverload reports whether err is the admission-control reject.
func isOverload(err error) bool {
	return errors.Is(err, ErrOverload)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
