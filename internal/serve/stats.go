package serve

import (
	"time"

	"repro/internal/obs"
)

// Stats is the serving layer's live counter set: admission decisions,
// frame outcomes, ladder-tier mix, group-table churn and the end-to-
// end frame-service latency histogram (queueing plus detection,
// measured on the shard). All fields are atomic; a Stats is safe for
// concurrent use.
type Stats struct {
	submitted     obs.Counter
	rejected      obs.Counter
	frames        obs.Counter
	frameErrors   obs.Counter
	streamErrors  obs.Counter
	tiers         [4]obs.Counter // indexed by obs.Tier
	groupsCreated obs.Counter
	groupsEvicted obs.Counter
	latencyUS     *obs.Histogram
}

// NewStats returns an empty counter set. The latency histogram buckets
// are microseconds, spanning sub-100µs cache-hit frames up to the
// tens-of-milliseconds queueing tail.
func NewStats() *Stats {
	return &Stats{
		latencyUS: obs.NewHistogram(50, 100, 200, 500, 1000, 2000, 5000,
			10000, 20000, 50000, 100000, 200000, 500000),
	}
}

// observe folds one served frame into the counters.
func (st *Stats) observe(o Outcome, d time.Duration) {
	st.frames.Inc()
	if !o.OK {
		st.frameErrors.Inc()
	}
	st.streamErrors.Add(int64(o.StreamErrors))
	st.tiers[o.Tier].Inc()
	st.latencyUS.Observe(float64(d.Microseconds()))
}

// StatsSnapshot is the serializable state of Stats, served by the
// /stats endpoint and embedded in load reports.
type StatsSnapshot struct {
	Submitted     int64                 `json:"submitted"`
	Rejected      int64                 `json:"rejected"`
	Frames        int64                 `json:"frames"`
	FrameErrors   int64                 `json:"frame_errors"`
	StreamErrors  int64                 `json:"stream_errors"`
	Tiers         obs.TierSnapshot      `json:"tiers"`
	GroupsCreated int64                 `json:"groups_created"`
	GroupsEvicted int64                 `json:"groups_evicted"`
	LatencyMsP50  float64               `json:"latency_ms_p50"`
	LatencyMsP99  float64               `json:"latency_ms_p99"`
	LatencyUS     obs.HistogramSnapshot `json:"latency_us"`
}

// Snapshot returns a point-in-time copy. Counters are individually
// atomic but not mutually consistent while shards are still serving.
func (st *Stats) Snapshot() StatsSnapshot {
	lat := st.latencyUS.Snapshot()
	return StatsSnapshot{
		Submitted:    st.submitted.Load(),
		Rejected:     st.rejected.Load(),
		Frames:       st.frames.Load(),
		FrameErrors:  st.frameErrors.Load(),
		StreamErrors: st.streamErrors.Load(),
		Tiers: obs.TierSnapshot{
			None:      st.tiers[obs.TierNone].Load(),
			Geosphere: st.tiers[obs.TierGeosphere].Load(),
			KBest:     st.tiers[obs.TierKBest].Load(),
			ZF:        st.tiers[obs.TierZF].Load(),
		},
		GroupsCreated: st.groupsCreated.Load(),
		GroupsEvicted: st.groupsEvicted.Load(),
		LatencyMsP50:  lat.Quantile(0.5) / 1000,
		LatencyMsP99:  lat.Quantile(0.99) / 1000,
		LatencyUS:     lat,
	}
}
