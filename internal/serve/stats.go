package serve

import (
	"time"

	"repro/internal/obs"
)

// Stats is the serving layer's live counter set: admission decisions,
// frame outcomes, ladder-tier mix, group-table churn, micro-batching
// amortization, and the end-to-end frame latency histogram. Latency is
// measured admission-to-completion — ring queueing plus detection — so
// the /stats view agrees with what a load generator measures from the
// outside. All fields are atomic; a Stats is safe for concurrent use.
type Stats struct {
	submitted    obs.Counter
	rejected     obs.Counter
	frames       obs.Counter
	frameErrors  obs.Counter
	streamErrors obs.Counter
	tiers        [4]obs.Counter // indexed by obs.Tier
	// Group-table churn: creations, evictions, second-chance reprieves
	// granted by the clock sweep, and lazy channel/prep-cache
	// materializations (first touches, including returning evicted
	// groups).
	groupsCreated    obs.Counter
	groupsEvicted    obs.Counter
	secondChanceHits obs.Counter
	lazyBuilds       obs.Counter
	// Micro-batching: drains that served work, frames served through
	// them, the batch-size distribution and the ring occupancy the
	// batch-aware ladder observed at each drain.
	batches   obs.Counter
	batchSize *obs.Histogram
	occupancy *obs.Histogram
	latencyUS *obs.Histogram
}

// NewStats returns an empty counter set. The latency histogram buckets
// are microseconds, spanning sub-100µs cache-hit frames up to the
// tens-of-seconds queueing tails an overloaded service produces
// (admission-to-completion latency saturates toward the load
// generator's timeout, not the in-shard service time).
func NewStats() *Stats {
	return &Stats{
		latencyUS: obs.NewHistogram(50, 100, 200, 500, 1000, 2000, 5000,
			10000, 20000, 50000, 100000, 200000, 500000,
			1e6, 2e6, 5e6, 1e7, 2e7, 5e7),
		batchSize: obs.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128),
		occupancy: obs.NewHistogram(0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
	}
}

// observe folds one served frame into the counters. d is the frame's
// admission-to-completion latency.
func (st *Stats) observe(o Outcome, d time.Duration) {
	st.frames.Inc()
	if !o.OK {
		st.frameErrors.Inc()
	}
	st.streamErrors.Add(int64(o.StreamErrors))
	st.tiers[o.Tier].Inc()
	st.latencyUS.Observe(float64(d.Microseconds()))
}

// observeBatch folds one shard drain into the batching counters: n
// frames served this wakeup, occ the ring occupancy the ladder read.
func (st *Stats) observeBatch(n, occ int) {
	st.batches.Inc()
	st.batchSize.Observe(float64(n))
	st.occupancy.Observe(float64(occ))
}

// StatsSnapshot is the serializable state of Stats, served by the
// /stats endpoint and embedded in load reports.
type StatsSnapshot struct {
	Submitted    int64            `json:"submitted"`
	Rejected     int64            `json:"rejected"`
	Frames       int64            `json:"frames"`
	FrameErrors  int64            `json:"frame_errors"`
	StreamErrors int64            `json:"stream_errors"`
	Tiers        obs.TierSnapshot `json:"tiers"`
	// Group-table churn and clock-eviction behavior.
	GroupsCreated    int64 `json:"groups_created"`
	GroupsEvicted    int64 `json:"groups_evicted"`
	SecondChanceHits int64 `json:"second_chance_hits"`
	LazyBuilds       int64 `json:"lazy_builds"`
	// Micro-batching amortization: drains served, mean frames per
	// drain, and the full batch-size / ring-occupancy distributions.
	Batches       int64                 `json:"batches"`
	AvgBatch      float64               `json:"avg_batch"`
	BatchSize     obs.HistogramSnapshot `json:"batch_size"`
	RingOccupancy obs.HistogramSnapshot `json:"ring_occupancy"`
	// Latency is admission-to-completion (queueing + service).
	LatencyMsP50 float64               `json:"latency_ms_p50"`
	LatencyMsP99 float64               `json:"latency_ms_p99"`
	LatencyUS    obs.HistogramSnapshot `json:"latency_us"`
}

// Snapshot returns a point-in-time copy. Counters are individually
// atomic but not mutually consistent while shards are still serving.
func (st *Stats) Snapshot() StatsSnapshot {
	lat := st.latencyUS.Snapshot()
	bs := st.batchSize.Snapshot()
	s := StatsSnapshot{
		Submitted:    st.submitted.Load(),
		Rejected:     st.rejected.Load(),
		Frames:       st.frames.Load(),
		FrameErrors:  st.frameErrors.Load(),
		StreamErrors: st.streamErrors.Load(),
		Tiers: obs.TierSnapshot{
			None:      st.tiers[obs.TierNone].Load(),
			Geosphere: st.tiers[obs.TierGeosphere].Load(),
			KBest:     st.tiers[obs.TierKBest].Load(),
			ZF:        st.tiers[obs.TierZF].Load(),
		},
		GroupsCreated:    st.groupsCreated.Load(),
		GroupsEvicted:    st.groupsEvicted.Load(),
		SecondChanceHits: st.secondChanceHits.Load(),
		LazyBuilds:       st.lazyBuilds.Load(),
		Batches:          st.batches.Load(),
		BatchSize:        bs,
		RingOccupancy:    st.occupancy.Snapshot(),
		LatencyMsP50:     lat.Quantile(0.5) / 1000,
		LatencyMsP99:     lat.Quantile(0.99) / 1000,
		LatencyUS:        lat,
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(s.Frames) / float64(s.Batches)
	}
	return s
}
