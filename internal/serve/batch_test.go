package serve

import (
	"context"
	"runtime"
	"testing"
)

// servedFrame keys one outcome by its deterministic identity.
type servedFrame struct {
	group uint64
	frame int64
}

// batchConfig pins the ladder flat (KappaBias < 0 disables the
// conditioning shaping) so every frame in the test is served at
// whatever tier occupancy alone picks — with QueueDepth 64 and small
// backlogs that is always Geosphere, making outcomes comparable across
// batch sizes.
func batchConfig() Config {
	cfg := quickConfig()
	cfg.Shards = 1
	cfg.QueueDepth = 64
	cfg.KappaBias = -1
	return cfg
}

// drainPrefilled wedges the single shard, queues workload behind it,
// and releases it — so the whole workload is drained from a pre-filled
// ring and split into micro-batches of at most cfg.BatchMax. Outcomes
// are returned keyed by (group, frame key).
func drainPrefilled(t *testing.T, cfg Config, workload []uint64) map[servedFrame]Outcome {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh := s.shards[0]

	wedge := make(chan Outcome)
	if err := sh.ring.TryPush(job{group: 0, reply: wedge}); err != nil {
		t.Fatal(err)
	}
	for sh.ring.Len() != 0 {
		runtime.Gosched()
	}
	replies := make(chan Outcome, len(workload))
	for _, g := range workload {
		if err := sh.ring.TryPush(job{group: g, reply: replies}); err != nil {
			t.Fatalf("queueing group %d: %v", g, err)
		}
	}
	wo := <-wedge // release the shard into the pre-filled ring
	got := map[servedFrame]Outcome{
		{wo.Group, wo.Frame}: wo,
	}
	for range workload {
		o := <-replies
		got[servedFrame{o.Group, o.Frame}] = o
	}
	return got
}

// TestServeBatchSizeConformance is the serving layer's half of the
// batch-vs-single byte-identity suite: the same workload drained from
// a pre-filled ring must produce identical per-frame outcomes at every
// BatchMax — batching may change scheduling and latency, never a
// detection result.
func TestServeBatchSizeConformance(t *testing.T) {
	// Interleaved groups with repeats: consecutive same-group runs and
	// scattered singles both occur, so batches mix sizes.
	workload := []uint64{0, 3, 3, 1, 0, 3, 2, 2, 2, 2, 1, 0, 5, 3, 0, 4, 4, 0, 1, 3}
	ref := map[servedFrame]Outcome{}
	for _, bm := range []int{1, 2, 3, 8, 16, 64} {
		cfg := batchConfig()
		cfg.BatchMax = bm
		got := drainPrefilled(t, cfg, workload)
		if len(got) != len(workload)+1 {
			t.Fatalf("BatchMax=%d served %d distinct frames, want %d", bm, len(got), len(workload)+1)
		}
		if len(ref) == 0 {
			ref = got
			continue
		}
		for k, o := range got { //geolint:nondeterminism-ok set comparison: every key is checked against the reference, order is irrelevant
			r, ok := ref[k]
			if !ok {
				t.Fatalf("BatchMax=%d served frame %+v the reference never saw", bm, k)
			}
			// Tier is load-dependent by design; with the flat ladder it
			// matches too. Everything else must be byte-identical.
			if o != r {
				t.Fatalf("BatchMax=%d diverged on %+v:\n  ref: %+v\n  got: %+v", bm, k, r, o)
			}
		}
	}
}

// TestServeShardCountConformance pins outcome independence from the
// shard layout: a group's n-th frame is identical whichever shard
// serves it, for any shard count.
func TestServeShardCountConformance(t *testing.T) {
	groups := []uint64{0, 3, 3, 1, 0, 7, 2, 5, 2, 1, 6, 0, 4, 7}
	run := func(shards int) map[servedFrame]Outcome {
		cfg := quickConfig()
		cfg.Shards = shards
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		got := map[servedFrame]Outcome{}
		for _, g := range groups {
			o, err := s.Process(context.Background(), g)
			if err != nil {
				t.Fatalf("shards=%d group %d: %v", shards, g, err)
			}
			got[servedFrame{o.Group, o.Frame}] = o
		}
		return got
	}
	ref := run(1)
	for _, shards := range []int{2, 4, 8} {
		got := run(shards)
		for k, o := range got { //geolint:nondeterminism-ok set comparison: every key is checked against the reference, order is irrelevant
			if r, ok := ref[k]; !ok || o != r {
				t.Fatalf("shards=%d diverged on %+v:\n  ref: %+v (present %v)\n  got: %+v", shards, k, ref[k], ok, o)
			}
		}
	}
}

// TestClockEvictionCounters pins the second-chance semantics that the
// plain LRU lacked: a group re-touched after the hand cleared its bit
// survives a later sweep while a colder group is evicted instead, the
// reprieves are counted, and a returning evicted group's state is
// rebuilt lazily (one materialization per creation, never per frame).
func TestClockEvictionCounters(t *testing.T) {
	cfg := quickConfig()
	cfg.Shards = 1
	cfg.MaxGroups = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	serve := func(g uint64) Outcome {
		o, err := s.Process(context.Background(), g)
		if err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
		return o
	}
	for _, g := range []uint64{0, 1, 2} {
		serve(g) // fill the table; all ref bits set
	}
	serve(3) // sweep clears 0,1,2 and evicts 0
	serve(1) // re-touch 1 after its bit was cleared
	serve(4) // the hand now finds 2 unreferenced first: 1 survives
	sh := s.shards[0]
	if _, ok := sh.groups[1]; !ok {
		t.Fatal("re-touched group 1 was evicted despite its second chance")
	}
	if _, ok := sh.groups[2]; ok {
		t.Fatal("cold group 2 survived the sweep")
	}
	o := serve(0) // returning evicted group: lazy rebuild, sequence restart
	if o.Frame != frameKey(0, 0) {
		t.Fatalf("rebuilt group 0 resumed at frame key %d, want %d", o.Frame, frameKey(0, 0))
	}
	snap := s.Stats().Snapshot()
	if snap.GroupsCreated != 6 || snap.GroupsEvicted != 3 {
		t.Fatalf("created %d / evicted %d, want 6 / 3", snap.GroupsCreated, snap.GroupsEvicted)
	}
	if snap.SecondChanceHits != 6 {
		t.Fatalf("second-chance hits = %d, want 6", snap.SecondChanceHits)
	}
	// Materialization is lazy and exactly once per creation: 6 builds for
	// 6 creations across 8 served frames, not one per frame.
	if snap.LazyBuilds != snap.GroupsCreated {
		t.Fatalf("lazy builds %d != creations %d", snap.LazyBuilds, snap.GroupsCreated)
	}
}

// TestServeBatchAmortization verifies the point of batching: draining
// a pre-filled ring of one group's frames as a single micro-batch
// probes the preparation cache once per subcarrier per batch, and the
// batching counters expose it.
func TestServeBatchAmortization(t *testing.T) {
	cfg := batchConfig()
	cfg.BatchMax = 16
	workload := make([]uint64, 15)
	for i := range workload {
		workload[i] = 9 // one group: one run, one ProcessBatch call
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh := s.shards[0]
	wedge := make(chan Outcome)
	if err := sh.ring.TryPush(job{group: 9, reply: wedge}); err != nil {
		t.Fatal(err)
	}
	for sh.ring.Len() != 0 {
		runtime.Gosched()
	}
	replies := make(chan Outcome, len(workload))
	for _, g := range workload {
		if err := sh.ring.TryPush(job{group: g, reply: replies}); err != nil {
			t.Fatal(err)
		}
	}
	<-wedge
	for range workload {
		<-replies
	}
	snap := s.Stats().Snapshot()
	if snap.Frames != int64(len(workload))+1 {
		t.Fatalf("served %d frames, want %d", snap.Frames, len(workload)+1)
	}
	// Two drains: the wedged single and the 15-frame batch.
	if snap.Batches != 2 {
		t.Fatalf("served in %d drains, want 2", snap.Batches)
	}
	if snap.AvgBatch < 7 {
		t.Fatalf("avg batch %g, want ≥ 7 (one single + one 15-frame batch)", snap.AvgBatch)
	}
}
