// Package channel provides the statistical MIMO channel models used by
// the simulation-based parts of the evaluation (§5.2.1, §5.3.2):
// i.i.d. Rayleigh fading with per-frame realizations, optional
// Kronecker spatial correlation, and complex AWGN with the paper's SNR
// conventions.
//
// SNR convention: transmit symbols have unit average energy per
// stream, channel entries are CN(0,1), so the average received SNR per
// stream at one antenna is 1/σ² where σ² is the total complex noise
// variance. SNRdB therefore maps to σ² = 10^(−SNRdB/10).
package channel

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
	"repro/internal/rng"
	"repro/internal/units"
)

// NoiseVar converts a per-stream average SNR to the total complex
// noise variance σ² = 10^(−SNRdB/10) under the package's conventions.
func NoiseVar(snr units.DB) units.Linear {
	return (-snr).Lin()
}

// SNRForNoiseVar is the inverse of NoiseVar.
func SNRForNoiseVar(noiseVar units.Linear) units.DB {
	return -units.LinToDB(noiseVar)
}

// NoiseVarForSNRdB is NoiseVar over bare float64s, kept for callers
// (hot paths, tests) that carry the variance straight into phasor
// arithmetic. Bit-identical to NoiseVar by construction.
func NoiseVarForSNRdB(snrdB float64) float64 {
	return float64(NoiseVar(units.DB(snrdB)))
}

// SNRdBForNoiseVar is the inverse of NoiseVarForSNRdB.
func SNRdBForNoiseVar(noiseVar float64) float64 {
	return float64(SNRForNoiseVar(units.Linear(noiseVar)))
}

// Rayleigh draws an na×nc channel with independent CN(0,1) entries,
// the i.i.d. Rayleigh-fading model sampled per frame in §5.3.2.
func Rayleigh(src *rng.Source, na, nc int) *cmplxmat.Matrix {
	h := cmplxmat.New(na, nc)
	for i := range h.Data {
		h.Data[i] = src.CN(1)
	}
	return h
}

// Correlated draws a Kronecker-correlated channel R_r^{1/2}·G·R_t^{1/2}
// where G is i.i.d. Rayleigh and the correlation roots are formed from
// exponential correlation matrices with coefficients rhoRx and rhoTx.
// rho = 0 reduces to i.i.d. Rayleigh; rho → 1 yields nearly
// rank-deficient (poorly conditioned) channels.
func Correlated(src *rng.Source, na, nc int, rhoRx, rhoTx float64) (*cmplxmat.Matrix, error) {
	if rhoRx < 0 || rhoRx >= 1 || rhoTx < 0 || rhoTx >= 1 {
		return nil, fmt.Errorf("channel: correlation coefficients must lie in [0,1), got %g, %g", rhoRx, rhoTx)
	}
	g := Rayleigh(src, na, nc)
	rr := expCorrRoot(na, rhoRx)
	rt := expCorrRoot(nc, rhoTx)
	return cmplxmat.Mul(cmplxmat.Mul(rr, g), rt), nil
}

// expCorrRoot returns the principal square root of the exponential
// correlation matrix R[i][j] = rho^|i−j|, computed via its (real,
// symmetric) eigendecomposition.
func expCorrRoot(n int, rho float64) *cmplxmat.Matrix {
	r := cmplxmat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r.Set(i, j, complex(math.Pow(rho, math.Abs(float64(i-j))), 0))
		}
	}
	return hermitianSqrt(r)
}

// hermitianSqrt computes the principal square root of a Hermitian
// positive semi-definite matrix via Denman-Beavers iteration, which
// only needs inverses and keeps the implementation self-contained.
func hermitianSqrt(a *cmplxmat.Matrix) *cmplxmat.Matrix {
	n := a.Rows
	y := a.Clone()
	z := cmplxmat.Identity(n)
	for iter := 0; iter < 60; iter++ {
		yi, err := y.Inverse()
		if err != nil {
			break
		}
		zi, err := z.Inverse()
		if err != nil {
			break
		}
		ny := cmplxmat.Scale(0.5, cmplxmat.Add(y, zi))
		nz := cmplxmat.Scale(0.5, cmplxmat.Add(z, yi))
		if cmplxmat.MaxAbsDiff(y, ny) < 1e-13 {
			y = ny
			break
		}
		y, z = ny, nz
	}
	return y
}

// Conditioned draws a random channel with the exact squared condition
// number κ² = 10^(kappa2dB/10): random unitary factors come from the
// QR of i.i.d. Gaussian draws (Haar-distributed up to column phases),
// the singular values form a geometric ladder spanning the requested
// dynamic range, and the result is scaled so ‖H‖²F matches the na·nc
// an i.i.d. Rayleigh draw has in expectation. It is the κ²-sweep
// source for the condition-adaptive detector benchmarks and tests:
// unlike Correlated, whose conditioning is only statistical, every
// draw lands exactly on the requested κ².
func Conditioned(src *rng.Source, na, nc int, kappa2 units.DB) (*cmplxmat.Matrix, error) {
	if nc <= 0 || na < nc {
		return nil, fmt.Errorf("channel: conditioned channel needs na >= nc >= 1, got %d×%d", na, nc)
	}
	if kappa2 < 0 {
		return nil, fmt.Errorf("channel: condition number must be >= 0 dB, got %g", float64(kappa2))
	}
	kappa2dB := float64(kappa2)
	u := cmplxmat.QRDecompose(Rayleigh(src, na, nc)).Q
	v := cmplxmat.QRDecompose(Rayleigh(src, nc, nc)).Q
	// Geometric singular-value ladder: σ_0 = 1 down to
	// σ_{nc-1} = 10^(-kappa2dB/20), so σ_max²/σ_min² is exactly the
	// requested κ².
	sv := make([]float64, nc)
	var sum2 float64
	for l := range sv {
		exp := 0.0
		if nc > 1 {
			exp = -kappa2dB / 20 * float64(l) / float64(nc-1)
		}
		sv[l] = math.Pow(10, exp)
		sum2 += sv[l] * sv[l]
	}
	// Scale Σσ² to na·nc, the E‖H‖²F of an i.i.d. Rayleigh draw, so a
	// κ² sweep varies conditioning without varying receive power.
	gain := math.Sqrt(float64(na*nc) / sum2)
	vh := v.ConjT()
	for l := 0; l < nc; l++ {
		row := vh.Row(l)
		s := complex(gain*sv[l], 0)
		for j := range row {
			row[j] *= s
		}
	}
	return cmplxmat.Mul(u, vh), nil
}

// Transmit applies y = H·x + w with CN(0, noiseVar) noise per receive
// antenna, writing into dst (allocated when nil).
func Transmit(dst []complex128, src *rng.Source, h *cmplxmat.Matrix, x []complex128, noiseVar float64) []complex128 {
	dst = h.MulVec(dst, x)
	for i := range dst {
		dst[i] += src.CN(noiseVar)
	}
	return dst
}
