package channel

import (
	"math"
	"testing"

	"repro/internal/cmplxmat"
	"repro/internal/rng"
	"repro/internal/units"
)

func TestNoiseVarSNRRoundTrip(t *testing.T) {
	for _, snr := range []float64{-10, 0, 15, 20, 25, 40} {
		nv := NoiseVarForSNRdB(snr)
		if got := SNRdBForNoiseVar(nv); math.Abs(got-snr) > 1e-12 {
			t.Fatalf("SNR %g round-tripped to %g", snr, got)
		}
	}
	if NoiseVarForSNRdB(0) != 1 { //geolint:float-ok test asserts exact bitwise reproducibility
		t.Fatal("0 dB should mean unit noise variance")
	}
}

func TestRayleighStatistics(t *testing.T) {
	src := rng.New(1)
	var power float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		h := Rayleigh(src, 4, 4)
		for _, v := range h.Data {
			power += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	mean := power / (trials * 16)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("mean entry power %g, want 1", mean)
	}
}

func TestCorrelatedReducesToIID(t *testing.T) {
	src := rng.New(2)
	h, err := Correlated(src, 3, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows != 3 || h.Cols != 3 {
		t.Fatalf("shape %d×%d", h.Rows, h.Cols)
	}
	// With rho=0 the correlation roots are identity, so entries stay
	// unit-power on average.
	var power float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		h, err := Correlated(src, 2, 2, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range h.Data {
			power += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	if mean := power / (trials * 4); math.Abs(mean-1) > 0.05 {
		t.Fatalf("rho=0 mean entry power %g", mean)
	}
}

func TestCorrelatedWorsensConditioning(t *testing.T) {
	src := rng.New(3)
	var iid, corr float64
	const trials = 300
	for i := 0; i < trials; i++ {
		h0 := Rayleigh(src, 2, 2)
		h1, err := Correlated(src, 2, 2, 0.95, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		iid += h0.Cond2() / trials
		c := h1.Cond2()
		if math.IsInf(c, 1) {
			c = 1e6
		}
		corr += c / trials
	}
	if corr < 2*iid {
		t.Fatalf("correlation did not worsen conditioning: iid κ=%g, corr κ=%g", iid, corr)
	}
}

func TestCorrelatedValidation(t *testing.T) {
	src := rng.New(4)
	for _, rho := range []float64{-0.1, 1.0, 2.0} {
		if _, err := Correlated(src, 2, 2, rho, 0); err == nil {
			t.Fatalf("rho=%g accepted", rho)
		}
		if _, err := Correlated(src, 2, 2, 0, rho); err == nil {
			t.Fatalf("tx rho=%g accepted", rho)
		}
	}
}

func TestExpCorrRootSquares(t *testing.T) {
	for _, rho := range []float64{0.3, 0.7, 0.95} {
		root := expCorrRoot(4, rho)
		sq := cmplxmat.Mul(root, root)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := math.Pow(rho, math.Abs(float64(i-j)))
				got := sq.At(i, j)
				if math.Abs(real(got)-want) > 1e-9 || math.Abs(imag(got)) > 1e-9 {
					t.Fatalf("rho=%g: root² at (%d,%d) = %v, want %g", rho, i, j, got, want)
				}
			}
		}
	}
}

func TestTransmitNoiseless(t *testing.T) {
	src := rng.New(5)
	h := Rayleigh(src, 3, 2)
	x := []complex128{1, complex(0, -1)}
	y := Transmit(nil, src, h, x, 0)
	want := h.MulVec(nil, x)
	for i := range y {
		if y[i] != want[i] { //geolint:float-ok test asserts exact bitwise reproducibility
			t.Fatalf("noiseless transmit differs at %d", i)
		}
	}
}

func TestTransmitNoisePower(t *testing.T) {
	src := rng.New(6)
	h := cmplxmat.New(1, 1) // zero channel isolates the noise
	x := []complex128{0}
	var power float64
	const trials = 100000
	y := make([]complex128, 1)
	for i := 0; i < trials; i++ {
		Transmit(y, src, h, x, 0.5)
		power += (real(y[0])*real(y[0]) + imag(y[0])*imag(y[0])) / trials
	}
	if math.Abs(power-0.5) > 0.02 {
		t.Fatalf("noise power %g, want 0.5", power)
	}
}

// TestConditionedHitsTargetKappa2 pins the κ²-sweep source: every draw
// lands exactly (to numerical precision) on the requested squared
// condition number, and the Frobenius power matches a Rayleigh draw's
// expectation so a sweep varies conditioning, not receive power.
func TestConditionedHitsTargetKappa2(t *testing.T) {
	src := rng.New(11)
	for _, k2dB := range []float64{0, 6, 14, 25, 40} {
		for _, shape := range [][2]int{{4, 4}, {6, 4}, {3, 2}} {
			na, nc := shape[0], shape[1]
			h, err := Conditioned(src, na, nc, units.DB(k2dB))
			if err != nil {
				t.Fatalf("Conditioned(%d×%d, %g): %v", na, nc, k2dB, err)
			}
			want := math.Pow(10, k2dB/20) // Cond2 is σ_max/σ_min, κ in amplitude
			if got := h.Cond2(); math.Abs(got-want) > 1e-6*want {
				t.Fatalf("Conditioned(%d×%d, %g dB): κ = %g, want %g", na, nc, k2dB, got, want)
			}
			f := h.FrobeniusNorm()
			if want := math.Sqrt(float64(na * nc)); math.Abs(f-want) > 1e-9*want {
				t.Fatalf("Conditioned(%d×%d): ‖H‖F = %g, want %g", na, nc, f, want)
			}
		}
	}
}

// TestConditionedKappa2EqualsOne pins the degenerate cases: a 0 dB
// target and a single-column channel are both perfectly conditioned.
func TestConditionedValidation(t *testing.T) {
	src := rng.New(12)
	if _, err := Conditioned(src, 2, 3, 10); err == nil {
		t.Fatal("wide matrix accepted")
	}
	if _, err := Conditioned(src, 4, 4, -1); err == nil {
		t.Fatal("negative dynamic range accepted")
	}
	h, err := Conditioned(src, 4, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Cond2(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("single-column κ = %g, want 1", got)
	}
}
