package units_test

import (
	"math"
	"testing"

	"repro/internal/units"
)

// The whole point of the package is that adopting the types changes no
// bits: every converter must equal the exact float64 expression the
// untyped code used, including through the unary negations the
// SNR→noise-variance path takes.
func TestBitIdentity(t *testing.T) {
	samples := []float64{-40, -12.5, -3, -0.1, 0, 0.1, 1, 3.0103, 10, 14, 25.25, 40, 93.7}
	for _, s := range samples {
		if got, want := float64(units.DB(s).Lin()), math.Pow(10, s/10); got != want {
			t.Errorf("DB(%g).Lin() = %g, want %g", s, got, want)
		}
		// σ² = 10^(−SNRdB/10): negation must be exact through the type.
		if got, want := float64((-units.DB(s)).Lin()), math.Pow(10, -s/10); got != want {
			t.Errorf("(-DB(%g)).Lin() = %g, want %g", s, got, want)
		}
		if got, want := units.DB(s).AmpLin(), math.Pow(10, s/20); got != want {
			t.Errorf("DB(%g).AmpLin() = %g, want %g", s, got, want)
		}
	}
	for _, l := range []float64{1e-9, 1e-4, 0.5, 1, 2, 10, 1234.5, 1e9} {
		if got, want := float64(units.LinToDB(units.Linear(l))), 10*math.Log10(l); got != want {
			t.Errorf("LinToDB(%g) = %g, want %g", l, got, want)
		}
		// SNRdB = −10·log10(σ²): (-10)*x and -(10*x) are the same bits.
		if got, want := float64(-units.LinToDB(units.Linear(l))), -10*math.Log10(l); got != want {
			t.Errorf("-LinToDB(%g) = %g, want %g", l, got, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, s := range []float64{-20, 0, 3, 10, 30} {
		back := float64(units.LinToDB(units.DB(s).Lin()))
		if math.Abs(back-s) > 1e-12 {
			t.Errorf("round trip of %g dB came back as %g", s, back)
		}
	}
}
