// Package units defines typed physical quantities for the dB/linear/
// frequency arithmetic the measurement pipeline rests on, so the
// compiler (and the geolint "units" analyzer) can see which domain a
// number lives in.
//
// Conventions, matching internal/channel and the paper (§5):
//
//   - DB holds power ratios in decibels: SNRdB, κ²(H) in dB, the
//     per-stream degradation Λ, wall/reflection losses. 10·log10.
//   - Linear holds the same ratios in linear power: noise variances
//     σ², κ², λ_k. A per-stream SNR of s dB is a noise variance of
//     σ² = 10^(−s/10), i.e. (-s).Lin().
//   - Hertz holds frequencies: carrier, subcarrier spacing, Doppler.
//
// Amplitude (voltage-level) quantities use 20·log10; DB.AmpLin is the
// dB→linear-amplitude conversion for those, returning a bare float64
// because amplitudes immediately enter complex phasor arithmetic.
//
// Every converter is a thin, inlinable wrapper over the exact same
// float64 expression the untyped code used, so adopting the types is
// bit-identical: Go defined types carry no representation change, and
// the formulas are not reassociated.
package units

import "math"

// DB is a power ratio in decibels (10·log10 of the linear ratio).
type DB float64

// Linear is a dimensionless linear power ratio (noise variance σ²,
// condition number κ², SNR as a plain ratio).
type Linear float64

// Hertz is a frequency in hertz.
type Hertz float64

// Lin converts a power ratio from decibels to linear:
// 10^(d/10).
func (d DB) Lin() Linear { return Linear(math.Pow(10, float64(d)/10)) }

// AmpLin converts an amplitude (voltage-level, 20·log10) quantity from
// decibels to its linear amplitude: 10^(d/20). The result is a bare
// float64 because linear amplitudes feed straight into complex phasor
// arithmetic rather than power bookkeeping.
func (d DB) AmpLin() float64 { return math.Pow(10, float64(d)/20) }

// LinToDB converts a linear power ratio to decibels: 10·log10(l).
func LinToDB(l Linear) DB { return DB(10 * math.Log10(float64(l))) }
