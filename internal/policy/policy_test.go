package policy

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/units"
)

// synth draws a channel with the requested correlation (rho → 1 is
// poorly conditioned), a uniform symbol vector and a noisy receive
// vector, all from src.
func synth(t *testing.T, src *rng.Source, cons *constellation.Constellation, na, nc int, rho float64, snr units.DB) (*cmplxmat.Matrix, []int, []complex128) {
	t.Helper()
	h, err := channel.Correlated(src, na, nc, rho, rho)
	if err != nil {
		t.Fatalf("Correlated: %v", err)
	}
	sent := make([]int, nc)
	x := make([]complex128, nc)
	for i := range sent {
		sent[i] = src.Intn(cons.Size())
		x[i] = cons.PointIndex(sent[i])
	}
	y := make([]complex128, na)
	channel.Transmit(y, src, h, x, float64(channel.NoiseVar(snr)))
	return h, sent, y
}

// TestExactTiersMatchGeosphere pins the adaptive detector's
// maximum-likelihood guarantee on its exact tiers: with the K-best
// band pushed out of reach (cut at 10³ dB), every vector is either a
// gate pass (provably the strict ML decision) or a seeded exact sphere
// search, so the decisions must match the plain Geosphere decoder
// everywhere.
func TestExactTiersMatchGeosphere(t *testing.T) {
	cons := constellation.QAM16
	for _, snr := range []units.DB{8, 16, 24, 32} {
		for _, rho := range []float64{0, 0.5, 0.9, 0.99} {
			src := rng.New(4217)
			ad, err := NewDetector(cons, snr, Config{ZFKappa2dB: 10, KBestKappa2dB: 1e3})
			if err != nil {
				t.Fatalf("NewDetector: %v", err)
			}
			ref := core.NewGeosphere(cons)
			got := make([]int, 4)
			want := make([]int, 4)
			for trial := 0; trial < 40; trial++ {
				h, _, y := synth(t, src, cons, 4, 4, rho, snr)
				if err := ad.Prepare(h); err != nil {
					t.Fatalf("adaptive Prepare: %v", err)
				}
				if err := ref.Prepare(h); err != nil {
					t.Fatalf("reference Prepare: %v", err)
				}
				if _, err := ad.Detect(got, y); err != nil {
					t.Fatalf("adaptive Detect: %v", err)
				}
				if _, err := ref.Detect(want, y); err != nil {
					t.Fatalf("reference Detect: %v", err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("snr=%g rho=%g trial %d: adaptive %v != geosphere %v (tier %v)",
							snr, rho, trial, got, want, ad.Tier())
					}
				}
			}
			c := ad.Sched()
			if c.KBestFallbacks != 0 {
				t.Fatalf("empty K-best band still ran %d K-best fallbacks", c.KBestFallbacks)
			}
			if c.GatePass+c.SphereFallbacks == 0 {
				t.Fatalf("no vectors resolved")
			}
		}
	}
}

// TestGatePassMatchesGeosphereAllTiers verifies the gate on every
// tier, K-best included: whenever a Detect resolved through the gate,
// the emitted decision must equal the exact sphere decision for the
// same channel and vector.
func TestGatePassMatchesGeosphereAllTiers(t *testing.T) {
	cons := constellation.QAM16
	src := rng.New(99)
	ad, err := NewDetector(cons, 24, Config{})
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	ref := core.NewGeosphere(cons)
	got := make([]int, 4)
	want := make([]int, 4)
	passes := 0
	for trial := 0; trial < 200; trial++ {
		rho := float64(trial%4) * 0.3
		h, _, y := synth(t, src, cons, 4, 4, rho, 24)
		if err := ad.Prepare(h); err != nil {
			t.Fatalf("adaptive Prepare: %v", err)
		}
		before := ad.Sched().GatePass
		if _, err := ad.Detect(got, y); err != nil {
			t.Fatalf("adaptive Detect: %v", err)
		}
		if ad.Sched().GatePass == before {
			continue // resolved by a tree engine; nothing to check here
		}
		passes++
		if err := ref.Prepare(h); err != nil {
			t.Fatalf("reference Prepare: %v", err)
		}
		if _, err := ref.Detect(want, y); err != nil {
			t.Fatalf("reference Detect: %v", err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: gate-passed decision %v != ML %v", trial, got, want)
			}
		}
	}
	if passes == 0 {
		t.Fatalf("gate never passed in 200 trials at 24 dB; calibration is broken")
	}
}

// TestRadiusSeedMatchesInfiniteRadius pins the SNR-aware radius
// seeding against the historical infinite-radius search: identical
// decisions on every trial (ties between distinct lattice points are
// measure-zero under continuous noise).
func TestRadiusSeedMatchesInfiniteRadius(t *testing.T) {
	cons := constellation.QAM64
	mk := func(noSeed bool) *Detector {
		// No ZF or K-best band: every gate failure escalates to the
		// sphere, seeded or not.
		d, err := NewDetector(cons, 18, Config{ZFKappa2dB: -1e3, KBestKappa2dB: 1e3, NoRadiusSeed: noSeed})
		if err != nil {
			t.Fatalf("NewDetector: %v", err)
		}
		return d
	}
	seeded, infinite := mk(false), mk(true)
	got := make([]int, 4)
	want := make([]int, 4)
	src := rng.New(7011)
	for trial := 0; trial < 120; trial++ {
		h, _, y := synth(t, src, cons, 5, 4, float64(trial%5)*0.22, 18)
		if err := seeded.Prepare(h); err != nil {
			t.Fatalf("seeded Prepare: %v", err)
		}
		if err := infinite.Prepare(h); err != nil {
			t.Fatalf("infinite Prepare: %v", err)
		}
		if _, err := seeded.Detect(got, y); err != nil {
			t.Fatalf("seeded Detect: %v", err)
		}
		if _, err := infinite.Detect(want, y); err != nil {
			t.Fatalf("infinite Detect: %v", err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: seeded %v != infinite-radius %v", trial, got, want)
			}
		}
	}
	if seeded.Sched().SeededRadius == 0 {
		t.Fatalf("seeded detector never used the ZF-residual radius")
	}
	if infinite.Sched().SeededRadius != 0 {
		t.Fatalf("NoRadiusSeed detector recorded %d seeded searches", infinite.Sched().SeededRadius)
	}
}

// TestTierDeterminism pins the scheduler as a pure function of
// (channel, SNR, config): two detectors fed the same channel sequence
// make identical tier decisions and identical counter trajectories.
func TestTierDeterminism(t *testing.T) {
	cons := constellation.QAM16
	mk := func() *Detector {
		d, err := NewDetector(cons, 20, Config{})
		if err != nil {
			t.Fatalf("NewDetector: %v", err)
		}
		return d
	}
	a, b := mk(), mk()
	dst := make([]int, 4)
	src := rng.New(314)
	for trial := 0; trial < 100; trial++ {
		h, _, y := synth(t, src, cons, 4, 4, float64(trial%4)*0.3, 20)
		for _, d := range []*Detector{a, b} {
			if err := d.Prepare(h); err != nil {
				t.Fatalf("Prepare: %v", err)
			}
		}
		if a.Tier() != b.Tier() {
			t.Fatalf("trial %d: tiers diverged (%v vs %v)", trial, a.Tier(), b.Tier())
		}
		for _, d := range []*Detector{a, b} {
			if _, err := d.Detect(dst, y); err != nil {
				t.Fatalf("Detect: %v", err)
			}
		}
		if a.Sched() != b.Sched() {
			t.Fatalf("trial %d: counter trajectories diverged: %+v vs %+v", trial, a.Sched(), b.Sched())
		}
	}
	c := a.Sched()
	if c.SchedZF+c.SchedKBest+c.SchedSphere != 100 {
		t.Fatalf("scheduled %d tiers across 100 preparations", c.SchedZF+c.SchedKBest+c.SchedSphere)
	}
}

// TestConfigValidate pins the config surface: zero value is valid (all
// defaults), inverted cuts and non-positive K are rejected.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	if err := (Config{ZFKappa2dB: 20, KBestKappa2dB: 10}).Validate(); err == nil {
		t.Fatalf("inverted cuts accepted")
	}
	if err := (Config{KBestK: -3}).Validate(); err == nil {
		t.Fatalf("negative K accepted")
	}
	if err := (Config{SNRSlopeDB: -1}).Validate(); err == nil {
		t.Fatalf("negative slope accepted")
	}
	r := (Config{}).withDefaults()
	if r.ZFKappa2dB != DefaultZFKappa2dB || r.KBestK != DefaultKBestK { //geolint:float-ok the default is assigned verbatim, so the comparison is exact
		t.Fatalf("defaults not applied: %+v", r)
	}
}

// TestDetectZeroAllocs pins the steady-state Detect path of every tier
// at zero allocations per call (the noalloc analyzer guards the
// annotated functions statically; this is the dynamic check).
func TestDetectZeroAllocs(t *testing.T) {
	cons := constellation.QAM16
	for _, tc := range []struct {
		name string
		cfg  Config
		rho  float64
	}{
		{"zf-tier", Config{ZFKappa2dB: 1e3, KBestKappa2dB: 1e3}, 0},
		{"kbest-tier", Config{ZFKappa2dB: -1e3, KBestKappa2dB: -1e3}, 0.6},
		{"sphere-tier", Config{ZFKappa2dB: -1e3, KBestKappa2dB: 1e3}, 0.9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := rng.New(5150)
			d, err := NewDetector(cons, 20, tc.cfg)
			if err != nil {
				t.Fatalf("NewDetector: %v", err)
			}
			h, _, y := synth(t, src, cons, 4, 4, tc.rho, 20)
			if err := d.Prepare(h); err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			dst := make([]int, 4)
			if _, err := d.Detect(dst, y); err != nil {
				t.Fatalf("Detect: %v", err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if err := d.Prepare(h); err != nil {
					t.Fatalf("Prepare: %v", err)
				}
				if _, err := d.Detect(dst, y); err != nil {
					t.Fatalf("Detect: %v", err)
				}
			})
			if allocs != 0 { //geolint:float-ok AllocsPerRun counts allocations; zero is exact
				t.Fatalf("prepare+detect allocates %.1f/op, want 0", allocs)
			}
		})
	}
}

// TestKappa2NaNSchedulesSphere documents the unfilled-cache contract:
// a NaN κ̂² compares false against every cut and lands on the sphere
// tier, the safe default.
func TestKappa2NaNSchedulesSphere(t *testing.T) {
	if math.NaN() <= 1e9 {
		t.Fatalf("NaN ordered against a cut")
	}
}
