// Package policy implements condition-adaptive detector scheduling:
// a per-subcarrier tier choice — gated zero-forcing, bounded K-best,
// or the full Geosphere sphere search — driven by the channel's
// conditioning and the operating SNR.
//
// The paper's own evaluation (§5.1, Figure 9) shows that the squared
// condition number κ² upper-bounds how hard a subcarrier is to detect;
// running the worst-case search everywhere therefore wastes most of
// its work on the well-conditioned majority. The scheduler reads the
// diagonal condition estimate κ̂² that core.PreparedChannel caches as a
// byproduct of preparation (no SVD, no extra arithmetic) and assigns
// each subcarrier a tier; every received vector is then first resolved
// by the cheap QR-domain zero-forcing solve (internal/linear.SolveZF),
// and a provable maximum-likelihood equality gate decides whether that
// decision can be emitted as-is:
//
// With the thin QR of the (column-ordered) channel, ‖y − Hs‖² =
// ‖P⊥y‖² + ‖R(ŝ−s)‖² where ŝ = R⁻¹Q*y is the unconstrained ZF
// estimate. Let s₀ be ŝ sliced per coordinate, with lattice residual
// r₀² = ‖Q*y − R·s₀‖². Any other constellation vector s differs from
// s₀ in some coordinate by at least the constellation's minimum
// distance 2d, and picking the highest such coordinate k (R upper
// triangular) gives ‖R(s₀−s)‖ ≥ |R_kk|·2d ≥ 2d·min_l|R_ll|. By the
// triangle inequality ‖R(ŝ−s)‖ ≥ ‖R(s₀−s)‖ − r₀, so
//
//	2·r₀ < 2d·min_l|R_ll|  ⇒  s₀ is the strict ML decision.
//
// The gate is sufficient, never necessary — conservative by
// construction — and costs O(n²) per vector using only the cached R
// diagonal. When it fails, the ZF and sphere tiers escalate to the
// exact search seeded with s₀ and initial squared radius r₀² (the
// SNR-aware radius: r₀ shrinks with the noise), preserving
// maximum-likelihood decisions up to exact-distance ties.
//
// The tier ladder is ordered by measured cost, not by nominal
// optimality. The depth-first sphere is near-free on most channels —
// hundreds of nanoseconds, cheaper than any fixed-width search — and
// only diverges on the ill-conditioned, noise-dominated tail, where
// its visited-node count grows without bound (hundreds of microseconds
// per vector at κ̂² ≳ 30 dB). The breadth-first K-best search is the
// opposite: a flat, channel-independent few microseconds thanks to its
// lazy Schnorr-Euchner level merge (internal/kbest). The scheduler
// therefore runs gated ZF below the ZF cut, the exact sphere across
// the mid band, and K-best as the bounded-cost tier ABOVE the K-best
// cut — capping the explosion tail and trading a pinned, measured
// error-rate delta on subcarriers that are already noise-dominated for
// a hard per-vector work bound. Both cuts shift with the SNR headroom
// over the constellation's minimum distance: at higher effective SNR
// the sphere's tree stays narrow on worse-conditioned channels, so the
// K-best band retreats.
package policy

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/kbest"
	"repro/internal/linear"
	"repro/internal/obs"
	"repro/internal/units"
)

// Default scheduler calibration. The cuts are in the units the
// scheduler actually reads: the cached diagonal estimate κ̂² of
// core.PreparedChannel (a lower bound on the true κ², typically
// ~0.75× of it in dB on conditioned draws — and a better predictor of
// this draw's tree width, since min|R_ll| directly bounds the sphere's
// branching). Measured on κ²-conditioned 4×4 sweeps
// (channel.Conditioned), the K-best cut sits where the sphere's mean
// cost crosses the lazy K-best's flat ~9 µs — beyond it the sphere's
// mean cost climbs into hundreds of microseconds per vector — and the
// ZF cut where the ML-equality gate passes essentially always. Both
// cuts are referenced to DefaultRefSNRdB of effective SNR — SNR
// shifted by the constellation's minimum-distance penalty relative to
// 16-QAM — and shift by DefaultSNRSlopeDB dB of κ̂² per dB of
// headroom: more headroom keeps the sphere narrow on worse-conditioned
// channels, so the K-best band retreats and the ZF band grows. K = 16
// keeps the bounded tier's error rate close to exact ML at the cut
// (K = 8 measurably degrades it). The defaults are pinned by the
// error-delta bound test in internal/link (adaptive vs all-sphere over
// a κ² sweep).
const (
	DefaultZFKappa2dB    = 6
	DefaultKBestKappa2dB = 26
	DefaultRefSNRdB      = 20
	DefaultSNRSlopeDB    = 1.0
	DefaultKBestK        = 16
)

// Config tunes the adaptive scheduler. The zero value means "all
// defaults": every zero field takes its Default* constant, so the
// struct embeds cleanly into link.RunConfig. To genuinely disable a
// tier, push its cut out of range (e.g. ZFKappa2dB = -1e3 leaves no
// ZF band) rather than setting zero.
type Config struct {
	// ZFKappa2dB and KBestKappa2dB are the κ̂² tier cuts (in dB) at the
	// reference effective SNR: subcarriers at or below ZFKappa2dB
	// schedule the gated-ZF tier, above KBestKappa2dB the bounded
	// K-best tier (the sphere's explosion tail), and the exact sphere
	// owns the band between them. ZFKappa2dB must not exceed
	// KBestKappa2dB.
	ZFKappa2dB    units.DB
	KBestKappa2dB units.DB
	// RefSNRdB anchors the cuts on the effective-SNR scale (SNR plus
	// the constellation's minimum-distance penalty relative to 16-QAM);
	// SNRSlopeDB shifts both cuts by this many dB of κ̂² per dB of
	// effective SNR above (or below) the anchor — a dB/dB ratio, so it
	// stays a bare float64.
	RefSNRdB   units.DB
	SNRSlopeDB float64
	// KBestK is the survivor width of the K-best tier.
	KBestK int
	// NoRadiusSeed makes the sphere escalations run the historical
	// infinite-radius search instead of seeding with the ZF incumbent —
	// the bit-identity reference for the radius-seeding equivalence
	// tests. Decisions are identical up to exact-distance ties.
	NoRadiusSeed bool
}

// withDefaults resolves zero fields to the Default* calibration.
func (c Config) withDefaults() Config {
	if c.ZFKappa2dB == 0 { //geolint:float-ok zero-value sentinel for an unset field, no arithmetic involved
		c.ZFKappa2dB = DefaultZFKappa2dB
	}
	if c.KBestKappa2dB == 0 { //geolint:float-ok zero-value sentinel for an unset field, no arithmetic involved
		c.KBestKappa2dB = DefaultKBestKappa2dB
	}
	if c.RefSNRdB == 0 { //geolint:float-ok zero-value sentinel for an unset field, no arithmetic involved
		c.RefSNRdB = DefaultRefSNRdB
	}
	if c.SNRSlopeDB == 0 { //geolint:float-ok zero-value sentinel for an unset field, no arithmetic involved
		c.SNRSlopeDB = DefaultSNRSlopeDB
	}
	if c.KBestK == 0 {
		c.KBestK = DefaultKBestK
	}
	return c
}

// Validate rejects configurations whose resolved tier ladder is
// inverted or whose K-best width is unusable.
func (c Config) Validate() error {
	r := c.withDefaults()
	if r.ZFKappa2dB > r.KBestKappa2dB {
		return fmt.Errorf("policy: ZF cut %.1f dB above K-best cut %.1f dB", float64(r.ZFKappa2dB), float64(r.KBestKappa2dB))
	}
	if r.KBestK < 1 {
		return fmt.Errorf("policy: KBestK must be positive, got %d", r.KBestK)
	}
	if r.SNRSlopeDB < 0 {
		return fmt.Errorf("policy: SNRSlopeDB must be non-negative, got %g", r.SNRSlopeDB)
	}
	return nil
}

// Counters are the scheduler's cumulative decision counts. Sched*
// count tier assignments (one per preparation call); the per-vector
// counters split every Detect by how it was resolved: GatePass emitted
// the provably-ML ZF decision, KBestFallbacks ran the bounded
// breadth-first tier on the explosion tail, SphereFallbacks ran the
// exact search (SeededRadius of those with the ZF-residual initial
// radius).
type Counters struct {
	SchedZF     uint64
	SchedKBest  uint64
	SchedSphere uint64

	GatePass        uint64
	GateFail        uint64
	KBestFallbacks  uint64
	SphereFallbacks uint64
	SeededRadius    uint64
}

// Sub returns c − o, the per-interval delta between two snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		SchedZF:         c.SchedZF - o.SchedZF,
		SchedKBest:      c.SchedKBest - o.SchedKBest,
		SchedSphere:     c.SchedSphere - o.SchedSphere,
		GatePass:        c.GatePass - o.GatePass,
		GateFail:        c.GateFail - o.GateFail,
		KBestFallbacks:  c.KBestFallbacks - o.KBestFallbacks,
		SphereFallbacks: c.SphereFallbacks - o.SphereFallbacks,
		SeededRadius:    c.SeededRadius - o.SeededRadius,
	}
}

// Detector is the condition-adaptive detector: a core.SharedPreparer
// wrapping a Geosphere sphere decoder and a K-best decoder that share
// one cached ordered-QR preparation per subcarrier. Preparation picks
// the tier from the cached κ̂² and the operating SNR; every Detect
// first runs the QR-domain ZF solve and the ML-equality gate, then
// escalates along the scheduled tier only when the gate fails. The
// tier choice is a pure function of (channel, SNR, config), so runs
// are deterministic: same seed, same tier sequence.
type Detector struct {
	cons *constellation.Constellation
	cfg  Config
	snr  units.DB
	// Resolved cuts at the operating SNR.
	zfCut, kbCut units.DB

	geo *core.SphereDecoder
	kb  *kbest.KBest

	counters Counters
	stats    core.Stats // gate-pass detections (tree engines count their own)

	// Per-channel state aliasing the attached PreparedChannel, valid
	// from PrepareShared until the next preparation.
	h          *cmplxmat.Matrix
	qr         *cmplxmat.QR
	perm       []int
	rinv       []complex128
	nc         int
	tier       obs.Tier
	gateR2     float64 // gate threshold on r₀²: d²·min_l|R_ll|²
	kbAttached bool

	// Detection scratch.
	yhat []complex128
	est  []complex128
	seed []int // ZF decision in QR-column order

	// ownPrep backs plain Prepare calls, mirroring the sphere decoder.
	ownPrep core.PreparedChannel
}

var _ core.Detector = (*Detector)(nil)
var _ core.SharedPreparer = (*Detector)(nil)
var _ core.Counter = (*Detector)(nil)
var _ obs.Target = (*Detector)(nil)

// NewDetector builds an adaptive detector for the given operating SNR.
// cfg's zero fields resolve to the package defaults; an invalid
// resolved config is rejected.
func NewDetector(cons *constellation.Constellation, snr units.DB, cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	kb, err := kbest.NewKBest(cons, cfg.KBestK)
	if err != nil {
		return nil, err
	}
	// Effective SNR: the raw SNR shifted by the constellation's
	// minimum-distance penalty relative to the 16-QAM anchor the
	// defaults were calibrated on (≈ −6 dB per QAM order step). This
	// makes one (cut, slope) pair track the sphere-cost crossover
	// across constellation densities.
	effSNR := snr + units.DB(20*math.Log10(cons.Scale()/constellation.QAM16.Scale()))
	headroom := units.DB(cfg.SNRSlopeDB * float64(effSNR-cfg.RefSNRdB))
	return &Detector{
		cons:  cons,
		cfg:   cfg,
		snr:   snr,
		zfCut: cfg.ZFKappa2dB + headroom,
		kbCut: cfg.KBestKappa2dB + headroom,
		geo:   core.NewGeosphere(cons),
		kb:    kb,
	}, nil
}

// Name implements core.Detector.
func (d *Detector) Name() string {
	return fmt.Sprintf("Adaptive(ZF/K-best(K=%d)/Geosphere)", d.cfg.KBestK)
}

// Constellation implements core.Detector.
func (d *Detector) Constellation() *constellation.Constellation { return d.cons }

// Stats implements core.Counter, summing the gate-pass detections with
// both tree engines' counters.
func (d *Detector) Stats() core.Stats {
	s := d.stats
	s.Add(d.geo.Stats())
	s.Add(d.kb.Stats())
	return s
}

// ResetStats implements core.Counter.
func (d *Detector) ResetStats() {
	d.stats = core.Stats{}
	d.geo.ResetStats()
	d.kb.ResetStats()
}

// Sched returns a snapshot of the scheduler's cumulative counters; the
// link pipeline attributes per-frame deltas with Counters.Sub.
func (d *Detector) Sched() Counters { return d.counters }

// SetRecorder implements obs.Target, streaming the sphere engine's
// per-detect samples. Gate passes and K-best detects have no tree walk
// to sample; their mix is reported through the frame-level counters.
func (d *Detector) SetRecorder(r obs.Recorder) {
	d.geo.SetRecorder(obs.Fold(r))
}

// Tier returns the tier the scheduler picked for the currently
// prepared channel (obs.TierNone before any preparation).
func (d *Detector) Tier() obs.Tier { return d.tier }

// Prepare implements core.Detector through the detector's private
// cache, exactly like the sphere decoder.
func (d *Detector) Prepare(h *cmplxmat.Matrix) error {
	_, err := d.PrepareShared(&d.ownPrep, h)
	return err
}

// PrepareShared implements core.SharedPreparer: the wrapped sphere
// decoder fills (or revalidates) pc's ordered-QR derivation, then the
// scheduler reads the cached κ̂², assigns the tier and derives the gate
// threshold — all from state the preparation already built.
//
//geolint:noalloc
func (d *Detector) PrepareShared(pc *core.PreparedChannel, h *cmplxmat.Matrix) (bool, error) {
	hit, err := d.geo.PrepareShared(pc, h)
	if err != nil {
		return hit, err
	}
	d.h = h
	d.qr = pc.QRFactors()
	d.perm = pc.Perm()
	rll2, rinv := pc.DiagTables()
	d.rinv = rinv
	d.nc = h.Cols
	k2 := units.DB(pc.Kappa2dB())
	switch {
	case k2 <= d.zfCut:
		d.tier = obs.TierZF
		d.counters.SchedZF++
	case k2 > d.kbCut:
		// Explosion tail: bound the work instead of the error.
		d.tier = obs.TierKBest
		d.counters.SchedKBest++
	default:
		// Mid band (and κ̂² = NaN of an unfilled cache): exact sphere.
		d.tier = obs.TierGeosphere
		d.counters.SchedSphere++
	}
	// Gate threshold: 2·r₀ < 2d·min_l|R_ll| in squared form, with
	// d = cons.Scale() the constellation's half minimum distance.
	minR2 := rll2[0]
	for _, m2 := range rll2[1:] {
		if m2 < minR2 {
			minR2 = m2
		}
	}
	sc := d.cons.Scale()
	d.gateR2 = sc * sc * minR2
	if d.tier == obs.TierKBest {
		if err := d.kb.PrepareFactors(h, d.qr, d.perm); err != nil {
			return hit, err
		}
		d.kbAttached = true
	} else {
		d.kbAttached = false
	}
	d.sizeScratch(d.nc)
	return hit, nil
}

// sizeScratch (re)sizes the ZF-solve scratch; same-size calls touch
// nothing but slice headers.
//
//geolint:noalloc
func (d *Detector) sizeScratch(nc int) {
	if cap(d.yhat) < nc {
		d.yhat = make([]complex128, nc) //geolint:alloc-ok first use or reshape only
		d.est = make([]complex128, nc)  //geolint:alloc-ok first use or reshape only
		d.seed = make([]int, nc)        //geolint:alloc-ok first use or reshape only
		return
	}
	d.yhat = d.yhat[:nc]
	d.est = d.est[:nc]
	d.seed = d.seed[:nc]
}

// Detect implements core.Detector: ZF solve + ML-equality gate first,
// then the scheduled tier's engine only when the gate fails. The
// steady-state path is allocation-free.
//
//geolint:noalloc
func (d *Detector) Detect(dst []int, y []complex128) ([]int, error) {
	if d.h == nil {
		return nil, core.ErrNotPrepared
	}
	if len(y) != d.h.Rows {
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("policy: received vector has %d entries, channel has %d rows", len(y), d.h.Rows)
	}
	if dst == nil {
		dst = make([]int, d.nc) //geolint:alloc-ok one-time convenience path; steady state passes dst
	} else if len(dst) != d.nc {
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("policy: dst has %d entries, want %d", len(dst), d.nc)
	}
	d.qr.ApplyQConjT(d.yhat, y)
	r02 := linear.SolveZF(d.cons, d.qr.R, d.rinv, d.yhat, d.est, d.seed)
	if r02 < d.gateR2 {
		// Provably the strict ML decision: emit it, whatever the tier.
		d.counters.GatePass++
		d.stats.Detections++
		d.emit(dst, d.seed)
		return dst, nil
	}
	d.counters.GateFail++
	if d.tier == obs.TierKBest {
		d.counters.KBestFallbacks++
		return d.kb.Detect(dst, y)
	}
	d.counters.SphereFallbacks++
	if d.cfg.NoRadiusSeed {
		return d.geo.Detect(dst, y)
	}
	d.counters.SeededRadius++
	return d.geo.DetectSeeded(dst, y, d.seed, r02)
}

// emit writes a QR-column-order decision into dst in stream order.
//
//geolint:noalloc
func (d *Detector) emit(dst, path []int) {
	if d.perm == nil {
		copy(dst, path)
		return
	}
	for i, stream := range d.perm {
		dst[stream] = path[i]
	}
}
