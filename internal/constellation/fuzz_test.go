package constellation

import (
	"math"
	"math/cmplx"
	"testing"
)

// FuzzSlice: for any finite received point, Slice must return the
// nearest constellation point (ties allowed within float tolerance).
func FuzzSlice(f *testing.F) {
	f.Add(0.3, -0.7)
	f.Add(100.0, -100.0)
	f.Add(0.0, 0.0)
	f.Fuzz(func(t *testing.T, re, im float64) {
		if math.IsNaN(re) || math.IsNaN(im) || math.Abs(re) > 1e6 || math.Abs(im) > 1e6 {
			return
		}
		y := complex(re, im)
		for _, c := range All() {
			got := c.SlicePoint(y)
			best := math.Inf(1)
			for i := 0; i < c.Size(); i++ {
				if d := cmplx.Abs(y - c.PointIndex(i)); d < best {
					best = d
				}
			}
			if cmplx.Abs(y-got) > best+1e-9 {
				t.Fatalf("%s: sliced %v to %v (dist %g) but nearest is %g away",
					c, y, got, cmplx.Abs(y-got), best)
			}
		}
	})
}

// FuzzBitsRoundTrip: MapBits(SymbolBits(·)) is the identity for any
// bit pattern.
func FuzzBitsRoundTrip(f *testing.F) {
	f.Add(uint16(0xb5))
	f.Fuzz(func(t *testing.T, pattern uint16) {
		for _, c := range All() {
			q := c.Bits()
			bits := make([]byte, q)
			for b := 0; b < q; b++ {
				bits[b] = byte(pattern>>b) & 1
			}
			col, row := c.MapBits(bits)
			back := make([]byte, q)
			c.SymbolBits(back, col, row)
			for b := range bits {
				if back[b] != bits[b] {
					t.Fatalf("%s: bit %d lost for pattern %#x", c, b, pattern)
				}
			}
		}
	})
}
