package constellation

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestSizes(t *testing.T) {
	cases := []struct {
		c          *Constellation
		bits, side int
	}{
		{QPSK, 2, 2}, {QAM16, 4, 4}, {QAM64, 6, 8}, {QAM256, 8, 16},
	}
	for _, tc := range cases {
		if tc.c.Bits() != tc.bits || tc.c.Side() != tc.side || tc.c.Size() != tc.side*tc.side {
			t.Fatalf("%s: bits=%d side=%d size=%d", tc.c, tc.c.Bits(), tc.c.Side(), tc.c.Size())
		}
	}
}

func TestUnitAverageEnergy(t *testing.T) {
	for _, c := range All() {
		var e float64
		for i := 0; i < c.Size(); i++ {
			p := c.PointIndex(i)
			e += real(p)*real(p) + imag(p)*imag(p)
		}
		e /= float64(c.Size())
		if math.Abs(e-1) > 1e-12 {
			t.Fatalf("%s: mean symbol energy %g, want 1", c, e)
		}
	}
}

func TestMinDist(t *testing.T) {
	for _, c := range All() {
		// Measure the actual minimum pairwise distance.
		min := math.Inf(1)
		for i := 0; i < c.Size(); i++ {
			for j := i + 1; j < c.Size(); j++ {
				if d := cmplx.Abs(c.PointIndex(i) - c.PointIndex(j)); d < min {
					min = d
				}
			}
		}
		if math.Abs(min-c.MinDist()) > 1e-12 {
			t.Fatalf("%s: MinDist %g, measured %g", c, c.MinDist(), min)
		}
	}
}

func TestSliceIsNearestPoint(t *testing.T) {
	f := func(re, im float64) bool {
		// Clamp the quick-generated values to a sane range.
		y := complex(math.Mod(re, 3), math.Mod(im, 3))
		for _, c := range []*Constellation{QPSK, QAM16, QAM64} {
			got := c.SlicePoint(y)
			best := math.Inf(1)
			var bestPt complex128
			for i := 0; i < c.Size(); i++ {
				if d := cmplx.Abs(y - c.PointIndex(i)); d < best {
					best = d
					bestPt = c.PointIndex(i)
				}
			}
			if cmplx.Abs(got-y) > best+1e-12 {
				return false
			}
			_ = bestPt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceClamping(t *testing.T) {
	c := QAM16
	// Far outside the constellation slices to a corner.
	col, row := c.Slice(complex(100, -100))
	if col != c.Side()-1 || row != 0 {
		t.Fatalf("clamped to (%d,%d)", col, row)
	}
}

func TestBitsRoundTrip(t *testing.T) {
	for _, c := range All() {
		buf := make([]byte, c.Bits())
		for col := 0; col < c.Side(); col++ {
			for row := 0; row < c.Side(); row++ {
				c.SymbolBits(buf, col, row)
				gc, gr := c.MapBits(buf)
				if gc != col || gr != row {
					t.Fatalf("%s: (%d,%d) round-tripped to (%d,%d)", c, col, row, gc, gr)
				}
			}
		}
	}
}

// TestGrayAdjacency: adjacent constellation points (one lattice step
// apart) must differ in exactly one bit — the property that makes Gray
// mapping minimize bit errors per symbol error.
func TestGrayAdjacency(t *testing.T) {
	for _, c := range All() {
		b1 := make([]byte, c.Bits())
		b2 := make([]byte, c.Bits())
		diff := func(col1, row1, col2, row2 int) int {
			c.SymbolBits(b1, col1, row1)
			c.SymbolBits(b2, col2, row2)
			d := 0
			for i := range b1 {
				if b1[i] != b2[i] {
					d++
				}
			}
			return d
		}
		for col := 0; col < c.Side(); col++ {
			for row := 0; row < c.Side(); row++ {
				if col+1 < c.Side() && diff(col, row, col+1, row) != 1 {
					t.Fatalf("%s: horizontal neighbours (%d,%d)-(%d,%d) differ in %d bits",
						c, col, row, col+1, row, diff(col, row, col+1, row))
				}
				if row+1 < c.Side() && diff(col, row, col, row+1) != 1 {
					t.Fatalf("%s: vertical neighbours differ in %d bits", c, diff(col, row, col, row+1))
				}
			}
		}
	}
}

func TestDemapMatchesSliceAndBits(t *testing.T) {
	c := QAM64
	y := complex(0.3, -0.7)
	got := make([]byte, c.Bits())
	c.Demap(got, y)
	col, row := c.Slice(y)
	want := make([]byte, c.Bits())
	c.SymbolBits(want, col, row)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("Demap disagrees with Slice+SymbolBits")
		}
	}
}

func TestIndexCoords(t *testing.T) {
	for _, c := range All() {
		for i := 0; i < c.Size(); i++ {
			col, row := c.Coords(i)
			if c.Index(col, row) != i {
				t.Fatalf("%s: index %d round-tripped to %d", c, i, c.Index(col, row))
			}
			if c.Point(col, row) != c.PointIndex(i) {
				t.Fatalf("%s: Point and PointIndex disagree at %d", c, i)
			}
		}
	}
}

func TestByBits(t *testing.T) {
	for _, q := range []int{2, 4, 6, 8, 10} {
		c, err := ByBits(q)
		if err != nil || c.Bits() != q {
			t.Fatalf("ByBits(%d): %v", q, err)
		}
	}
	for _, q := range []int{0, 1, 3, 5, 7, 12} {
		if _, err := ByBits(q); err == nil {
			t.Fatalf("ByBits(%d) accepted", q)
		}
	}
}

func TestAxisCoordSymmetry(t *testing.T) {
	for _, c := range All() {
		for i := 0; i < c.Side(); i++ {
			if math.Abs(c.AxisCoord(i)+c.AxisCoord(c.Side()-1-i)) > 1e-15 {
				t.Fatalf("%s: axis not symmetric at %d", c, i)
			}
		}
		// Neighbouring levels are exactly 2·Scale apart.
		if math.Abs(c.AxisCoord(1)-c.AxisCoord(0)-2*c.Scale()) > 1e-15 {
			t.Fatalf("%s: lattice spacing wrong", c)
		}
	}
}

func TestStringNames(t *testing.T) {
	if QPSK.String() != "QPSK" || QAM256.Name() != "256-QAM" {
		t.Fatal("names wrong")
	}
}
