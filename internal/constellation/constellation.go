// Package constellation implements the Gray-mapped square QAM
// alphabets used throughout the paper (QPSK/4-QAM through 256-QAM),
// together with the geometric operations the Geosphere enumerators
// build on: slicing (nearest-point quantization), the PAM row/column
// decomposition of Figure 4, and bit↔symbol mapping.
//
// Internally a constellation point is addressed by its integer PAM
// coordinates (col, row) ∈ [0, side)², laid out on the lattice
// {±1, ±3, …}·d/2 with neighbouring points 2 units apart before the
// unit-energy normalization. Indexing by integer coordinates is what
// lets the sphere decoder's pruning bound be a pure table lookup.
package constellation

import (
	"fmt"
	"math"
)

// Constellation is an immutable Gray-mapped square QAM alphabet.
type Constellation struct {
	name       string
	bits       int     // bits per symbol, Q
	side       int     // points per dimension = 2^(bits/2)
	scale      float64 // lattice-unit → normalized amplitude factor
	points     []complex128
	grayToLine []int // gray code value -> line (PAM) index per axis
	lineToGray []int // line index -> gray code value per axis
}

// Standard constellations, densest used in the paper's evaluation
// (256-QAM) down to QPSK.
var (
	QPSK   = newQAM("QPSK", 2)
	QAM16  = newQAM("16-QAM", 4)
	QAM64  = newQAM("64-QAM", 6)
	QAM256 = newQAM("256-QAM", 8)
	// QAM1024 extends past the paper's densest evaluated alphabet,
	// following the trajectory its introduction describes ("the search
	// for higher throughputs is driving the use of even denser signal
	// constellations").
	QAM1024 = newQAM("1024-QAM", 10)
)

// ByBits returns the square QAM constellation with q bits per symbol
// (q ∈ {2, 4, 6, 8, 10}).
func ByBits(q int) (*Constellation, error) {
	switch q {
	case 2:
		return QPSK, nil
	case 4:
		return QAM16, nil
	case 6:
		return QAM64, nil
	case 8:
		return QAM256, nil
	case 10:
		return QAM1024, nil
	}
	return nil, fmt.Errorf("constellation: no square QAM with %d bits/symbol", q)
}

// All returns the constellations the evaluation sweeps over, in
// increasing density.
func All() []*Constellation {
	return []*Constellation{QPSK, QAM16, QAM64, QAM256}
}

func newQAM(name string, bits int) *Constellation {
	if bits%2 != 0 || bits < 2 || bits > 10 {
		panic("constellation: bits per symbol must be even, 2..10")
	}
	side := 1 << (bits / 2)
	c := &Constellation{name: name, bits: bits, side: side}
	// Average symbol energy of the unnormalized lattice
	// {±1,…,±(side−1)}² is 2·(side²−1)/3.
	c.scale = math.Sqrt(3 / (2 * float64(side*side-1)))
	c.points = make([]complex128, side*side)
	c.grayToLine = make([]int, side)
	c.lineToGray = make([]int, side)
	for line := 0; line < side; line++ {
		g := line ^ (line >> 1) // binary-reflected Gray code
		c.lineToGray[line] = g
		c.grayToLine[g] = line
	}
	for col := 0; col < side; col++ {
		for row := 0; row < side; row++ {
			c.points[col*side+row] = c.Point(col, row)
		}
	}
	return c
}

// Name returns a human-readable name such as "64-QAM".
func (c *Constellation) Name() string { return c.name }

// Bits returns the number of bits per symbol, Q.
func (c *Constellation) Bits() int { return c.bits }

// Size returns the alphabet size |O| = 2^Q.
func (c *Constellation) Size() int { return c.side * c.side }

// Side returns √|O|, the number of PAM levels per dimension.
func (c *Constellation) Side() int { return c.side }

// Scale returns the factor that maps lattice units (points 2 apart)
// to the unit-average-energy complex plane.
func (c *Constellation) Scale() float64 { return c.scale }

// MinDist returns the minimum distance between constellation points
// after normalization (2·Scale).
func (c *Constellation) MinDist() float64 { return 2 * c.scale }

// pamAmplitude returns the unnormalized PAM amplitude of line index i:
// 2i − (side−1) ∈ {−(side−1), …, side−1}.
func (c *Constellation) pamAmplitude(i int) float64 {
	return float64(2*i - (c.side - 1))
}

// Point returns the normalized complex point at integer coordinates
// (col selects the in-phase/I level, row the quadrature/Q level).
func (c *Constellation) Point(col, row int) complex128 {
	return complex(c.scale*c.pamAmplitude(col), c.scale*c.pamAmplitude(row))
}

// PointIndex returns the normalized point for a flat index
// idx = col·side + row.
func (c *Constellation) PointIndex(idx int) complex128 { return c.points[idx] }

// Index flattens integer coordinates into the canonical point index.
func (c *Constellation) Index(col, row int) int { return col*c.side + row }

// Coords splits a flat index back into (col, row).
func (c *Constellation) Coords(idx int) (col, row int) {
	return idx / c.side, idx % c.side
}

// SliceAxis quantizes one normalized real coordinate to the nearest
// PAM line index, clamped into [0, side).
func (c *Constellation) SliceAxis(v float64) int {
	// Invert: v = scale·(2i − (side−1)) ⇒ i = (v/scale + side−1)/2.
	i := int(math.Round((v/c.scale + float64(c.side-1)) / 2))
	if i < 0 {
		i = 0
	} else if i >= c.side {
		i = c.side - 1
	}
	return i
}

// Slice returns the integer coordinates of the constellation point
// nearest to the (possibly unconstrained) received value y. This is
// the slicing operation of §3.1.
func (c *Constellation) Slice(y complex128) (col, row int) {
	return c.SliceAxis(real(y)), c.SliceAxis(imag(y))
}

// SlicePoint returns the nearest constellation point itself.
func (c *Constellation) SlicePoint(y complex128) complex128 {
	col, row := c.Slice(y)
	return c.Point(col, row)
}

// AxisCoord returns the normalized coordinate of PAM line index i,
// the per-axis counterpart of Point.
func (c *Constellation) AxisCoord(i int) float64 { return c.scale * c.pamAmplitude(i) }

// SymbolBits writes the Q bits for the point at (col, row) into dst
// (most significant first: I bits then Q bits, Gray-coded per axis)
// and returns dst. len(dst) must be ≥ Bits().
func (c *Constellation) SymbolBits(dst []byte, col, row int) []byte {
	half := c.bits / 2
	gi := c.lineToGray[col]
	gq := c.lineToGray[row]
	for b := 0; b < half; b++ {
		dst[b] = byte((gi >> (half - 1 - b)) & 1)
		dst[half+b] = byte((gq >> (half - 1 - b)) & 1)
	}
	return dst[:c.bits]
}

// MapBits maps Q bits (layout as produced by SymbolBits) to integer
// coordinates.
func (c *Constellation) MapBits(bits []byte) (col, row int) {
	half := c.bits / 2
	var gi, gq int
	for b := 0; b < half; b++ {
		gi = gi<<1 | int(bits[b]&1)
		gq = gq<<1 | int(bits[half+b]&1)
	}
	return c.grayToLine[gi], c.grayToLine[gq]
}

// Demap hard-demodulates y to its Q bits via slicing.
func (c *Constellation) Demap(dst []byte, y complex128) []byte {
	col, row := c.Slice(y)
	return c.SymbolBits(dst, col, row)
}

// String implements fmt.Stringer.
func (c *Constellation) String() string { return c.name }
