package core

import (
	"math"

	"repro/internal/constellation"
)

// NewGeosphere returns the full Geosphere detector: a depth-first
// Schnorr-Euchner sphere decoder using two-dimensional zigzag
// enumeration (§3.1.1) and geometrical pruning (§3.2).
func NewGeosphere(cons *constellation.Constellation) *SphereDecoder {
	return newSphereDecoder("Geosphere", cons, func(c *constellation.Constellation, st *Stats) enumerator {
		return newGeoEnumerator(c, st, true)
	})
}

// NewGeosphereZigzagOnly returns the "2D zigzag only" Geosphere
// variant of §5.3.2: the same enumeration order but with every
// candidate's exact partial distance computed (no geometric pruning).
// It is used to break down the source of Geosphere's complexity gains.
func NewGeosphereZigzagOnly(cons *constellation.Constellation) *SphereDecoder {
	return newSphereDecoder("Geosphere-2Dzigzag", cons, func(c *constellation.Constellation, st *Stats) enumerator {
		return newGeoEnumerator(c, st, false)
	})
}

// geoCand is one outstanding candidate in the priority queue: a
// constellation point whose exact cumulative distance has been
// computed but which has not yet been explored.
type geoCand struct {
	idx int // flat constellation index
	col int // column (PAM subconstellation) of the point
	row int
	ped float64 // cumulative distance: base + rll2·|ỹ−point|²
}

// geoEnumerator implements the two-dimensional zigzag of Figure 5.
//
// Invariants maintained for exactness of the Schnorr-Euchner order:
//   - the queue holds at most one candidate per column (vertical PAM
//     subconstellation);
//   - columns are activated one at a time in proximity order of their
//     I-coordinate to the received symbol — exploring any point of the
//     k-th column activates the (k+1)-th;
//   - within a column, rows are enumerated by one-dimensional zigzag
//     around the received symbol's Q-coordinate.
//
// With constellation spacing 2s and a slicing offset of at most s per
// axis, the resulting pop order is provably non-decreasing in distance,
// so the decoder remains exactly maximum-likelihood and visits exactly
// the same tree nodes as any other Schnorr-Euchner decoder.
//
// Geometrical pruning (§3.2) lower-bounds a candidate's branch cost by
// table lookup before its exact distance is computed. Because both the
// per-column vertical offset and the cross-column horizontal offset
// are monotone along the zigzag, a single bound violation retires the
// whole direction, which is how the decoder prunes the remainder of
// the tree "without any additional calculation".
type geoEnumerator struct {
	cons  *constellation.Constellation
	stats *Stats
	prune bool
	side  int

	// lbsq[dI][dQ] = s²·(max(2dI−1,0)² + max(2dQ−1,0)²), Equation 9
	// with the d=0 clamp, in the normalized constellation plane.
	lbsq [][]float64

	// Per-node state, reset by init.
	ytilde     complex128
	yI, yQ     float64
	base       float64
	rll2       float64
	col0, row0 int

	// Columns are activated strictly in proximity order of their
	// I-coordinate, so the activated set is always the contiguous
	// range [colLo, colHi] and only the most recently activated
	// column (the frontier) can extend it — which makes per-node
	// initialization O(1) instead of O(√|O|).
	colLo, colHi  int
	lastActivated int
	colDead       []bool // column exhausted or retired by the bound
	rowLo         []int  // per-column enumerated row range [rowLo, rowHi]
	rowHi         []int
	hDead         bool // no further column can enter the sphere
	queue         []geoCand

	// pending is the last explored point whose zigzag successors have
	// not been materialized yet. Deferring their (bounded, then exact)
	// distance computations until the search returns to this level is
	// the "as late as possible" rule of §3.1.1: by then the sphere has
	// usually shrunk and the geometric bound retires them for free.
	pending    geoCand
	hasPending bool

	// radius is the most recent squared sphere radius seen by next.
	// It only ever shrinks during one node's lifetime, which keeps
	// the direction-retirement logic sound.
	radius float64
}

func newGeoEnumerator(cons *constellation.Constellation, st *Stats, prune bool) *geoEnumerator {
	side := cons.Side()
	e := &geoEnumerator{
		cons:    cons,
		stats:   st,
		prune:   prune,
		side:    side,
		colDead: make([]bool, side),
		rowLo:   make([]int, side),
		rowHi:   make([]int, side),
		queue:   make([]geoCand, 0, side),
	}
	s2 := cons.Scale() * cons.Scale()
	e.lbsq = make([][]float64, side)
	for dI := 0; dI < side; dI++ {
		e.lbsq[dI] = make([]float64, side)
		for dQ := 0; dQ < side; dQ++ {
			bI := math.Max(float64(2*dI-1), 0)
			bQ := math.Max(float64(2*dQ-1), 0)
			e.lbsq[dI][dQ] = s2 * (bI*bI + bQ*bQ)
		}
	}
	return e
}

// pedOf computes a candidate's exact cumulative distance. This is the
// operation §5.3 counts.
//
//geolint:noalloc
func (e *geoEnumerator) pedOf(col, row int) float64 {
	e.stats.PEDCalcs++
	p := e.cons.Point(col, row)
	dr := real(e.ytilde) - real(p)
	di := imag(e.ytilde) - imag(p)
	return e.base + e.rll2*(dr*dr+di*di)
}

// lowerBound returns the geometric lower bound on the cumulative
// distance of the point at (col, row), Equation 9.
//
//geolint:noalloc
func (e *geoEnumerator) lowerBound(col, row int) float64 {
	e.stats.BoundChecks++
	dI := col - e.col0
	if dI < 0 {
		dI = -dI
	}
	dQ := row - e.row0
	if dQ < 0 {
		dQ = -dQ
	}
	return e.base + e.rll2*e.lbsq[dI][dQ]
}

//geolint:noalloc
func (e *geoEnumerator) init(ytilde complex128, base, rll2 float64) {
	e.ytilde = ytilde
	e.yI = real(ytilde)
	e.yQ = imag(ytilde)
	e.base = base
	e.rll2 = rll2
	e.col0, e.row0 = e.cons.Slice(ytilde)
	e.hDead = false
	e.hasPending = false
	e.radius = math.Inf(1)
	e.queue = e.queue[:0]
	// Enqueue the sliced point (step 2 of Figure 5). Its bound is
	// zero, so pruning never rejects it. Per-column state is written
	// lazily at activation, so nothing needs clearing here.
	e.colLo, e.colHi = e.col0, e.col0
	e.lastActivated = e.col0
	e.activate(e.col0)
}

// activate gives column c its first candidate: the point in the column
// closest to the received symbol (at the sliced row).
//
//geolint:noalloc
func (e *geoEnumerator) activate(c int) {
	e.colDead[c] = false
	e.rowLo[c] = e.row0
	e.rowHi[c] = e.row0
	e.push(c, e.row0)
}

// push computes the exact distance of (col,row) and inserts it into
// the queue, unless geometric pruning rejects it first. It reports
// whether the candidate was within the current radius bound.
//
//geolint:noalloc
func (e *geoEnumerator) push(col, row int) bool {
	if e.prune && e.lowerBound(col, row) >= e.radius {
		return false
	}
	e.queue = append(e.queue, geoCand{
		idx: e.cons.Index(col, row),
		col: col,
		row: row,
		ped: e.pedOf(col, row),
	})
	return true
}

// nextRowOf returns the next unenumerated row of column c by
// one-dimensional zigzag around the received symbol's Q-coordinate.
//
//geolint:noalloc
func (e *geoEnumerator) nextRowOf(c int) (int, bool) {
	lo, hi := e.rowLo[c], e.rowHi[c]
	loOK := lo-1 >= 0
	hiOK := hi+1 < e.side
	switch {
	case !loOK && !hiOK:
		return 0, false
	case loOK && !hiOK:
		return lo - 1, true
	case !loOK && hiOK:
		return hi + 1, true
	}
	dlo := math.Abs(e.cons.AxisCoord(lo-1) - e.yQ)
	dhi := math.Abs(e.cons.AxisCoord(hi+1) - e.yQ)
	if dlo <= dhi {
		return lo - 1, true
	}
	return hi + 1, true
}

//geolint:noalloc
func (e *geoEnumerator) next(radius2 float64) (int, float64, bool) {
	e.radius = radius2
	if e.hasPending {
		e.hasPending = false
		e.materialize(e.pending)
	}
	if len(e.queue) == 0 {
		return 0, 0, false
	}
	// Extract the minimum-distance candidate. The queue never exceeds
	// √|O| entries, so a linear scan is cheaper than heap bookkeeping.
	best := 0
	for i := 1; i < len(e.queue); i++ {
		if e.queue[i].ped < e.queue[best].ped {
			best = i
		}
	}
	x := e.queue[best]
	last := len(e.queue) - 1
	e.queue[best] = e.queue[last]
	e.queue = e.queue[:last]
	if x.ped >= radius2 {
		// The global minimum of all unexplored candidates is outside
		// the sphere, so every remaining child is too (and x's
		// successors, which only lie farther out, need not exist).
		return 0, 0, false
	}
	// Defer x's zigzag successors until the search returns here.
	e.pending = x
	e.hasPending = true
	return x.idx, x.ped, true
}

// materialize generates the zigzag successors of an explored point
// (steps 3(a) and 3(b) of Figure 5) against the current radius.
//
//geolint:noalloc
func (e *geoEnumerator) materialize(x geoCand) {
	// Step 3(a): vertical zigzag within x's column.
	if !e.colDead[x.col] {
		if row, ok := e.nextRowOf(x.col); ok {
			if e.push(x.col, row) {
				if row < e.rowLo[x.col] {
					e.rowLo[x.col] = row
				} else {
					e.rowHi[x.col] = row
				}
			} else {
				// The bound retires the nearer vertical direction;
				// the farther one has an equal-or-larger offset, so
				// the whole column is outside the sphere.
				e.colDead[x.col] = true
			}
		} else {
			e.colDead[x.col] = true
		}
	}

	// Step 3(b): horizontal zigzag — activate the column after x's in
	// proximity order. Columns activate sequentially, so that column
	// is fresh only when x's was the frontier; otherwise it already
	// holds (or has exhausted) a candidate and the step is skipped.
	if !e.hDead && x.col == e.lastActivated {
		c := -1
		loOK := e.colLo-1 >= 0
		hiOK := e.colHi+1 < e.side
		switch {
		case loOK && hiOK:
			dlo := math.Abs(e.cons.AxisCoord(e.colLo-1) - e.yI)
			dhi := math.Abs(e.cons.AxisCoord(e.colHi+1) - e.yI)
			if dlo <= dhi {
				c = e.colLo - 1
			} else {
				c = e.colHi + 1
			}
		case loOK:
			c = e.colLo - 1
		case hiOK:
			c = e.colHi + 1
		}
		if c >= 0 {
			if c < e.colLo {
				e.colLo = c
			} else {
				e.colHi = c
			}
			e.lastActivated = c
			e.colDead[c] = false
			e.rowLo[c] = e.row0
			e.rowHi[c] = e.row0
			if !e.push(c, e.row0) {
				// The entry point carries the column's minimal
				// horizontal offset; farther columns only grow it.
				e.hDead = true
			}
		}
	}
}
