package core

import (
	"testing"

	"repro/internal/constellation"
	"repro/internal/rng"
)

// fuzzCons maps a fuzzer-chosen selector to a constellation, covering
// QPSK through 64-QAM (256-QAM tree searches at fuzz-random SNRs can
// run long enough to trip the per-input fuzz deadline, so the largest
// alphabet stays with the deterministic equivalence suite).
func fuzzCons(sel byte) *constellation.Constellation {
	switch sel % 3 {
	case 0:
		return constellation.QPSK
	case 1:
		return constellation.QAM16
	default:
		return constellation.QAM64
	}
}

// fuzzShape maps a fuzzer-chosen selector to an antenna geometry.
func fuzzShape(sel byte) (na, nc int) {
	switch sel % 3 {
	case 0:
		return 2, 2
	case 1:
		return 4, 2
	default:
		return 4, 4
	}
}

// FuzzDetectAgreement fuzzes the central correctness property of the
// repository: on any instance of the constellation × shape grid —
// 2×2 through 4×4, QPSK through 64-QAM — Geosphere, the ETH-SD
// baseline, the real-valued decomposition and (when the candidate
// space is small enough to enumerate) exhaustive maximum-likelihood
// search agree on the detected symbol vector. The fuzzer steers the
// channel/noise draw through the seed and the operating point through
// the selectors, so the corpus explores well- and ill-conditioned
// channels across the whole SNR range instead of the fixed grid of
// TestSphereDecodersMatchML.
//
// Agreement is checked on the ML metric (Equation 1), not on raw
// indices: the decoders accumulate partial Euclidean distances in
// different orders, so two candidates whose metrics tie to within
// floating-point noise are both correct answers. Indices must match
// exactly only when the best candidate is separated from the runner-up
// by more than the tie tolerance.
func FuzzDetectAgreement(f *testing.F) {
	f.Add(int64(1), byte(0), byte(0), byte(5))
	f.Add(int64(42), byte(1), byte(1), byte(30))
	f.Add(int64(-7), byte(0), byte(2), byte(0))
	f.Add(int64(1<<40), byte(2), byte(2), byte(12))
	f.Add(int64(99), byte(2), byte(0), byte(33))
	f.Fuzz(func(t *testing.T, seed int64, consSel, shapeSel, snrSel byte) {
		cons := fuzzCons(consSel)
		na, nc := fuzzShape(shapeSel)
		snrdB := float64(snrSel % 36) // 0..35 dB
		if cons.Bits()*nc > 16 && snrdB < 15 {
			// 64-QAM 4×4 at very low SNR makes the exact search's tree
			// exponentially large (the paper's Figure 15 regime); cap
			// the cost so the fuzzer spends its budget on breadth.
			snrdB = 15 + snrdB
		}
		src := rng.New(seed)
		h, _, y := randomScenario(src, cons, na, nc, snrdB)

		detectors := []struct {
			name string
			det  Detector
		}{
			{"geosphere", NewGeosphere(cons)},
			{"eth-sd", NewETHSD(cons)},
			{"rvd", NewRVD(cons)},
		}
		exhaustive := mlTractable(cons.Size(), nc)
		if exhaustive {
			detectors = append(detectors, struct {
				name string
				det  Detector
			}{"ml", NewML(cons)})
		}
		got := make([][]int, len(detectors))
		for i, d := range detectors {
			if err := d.det.Prepare(h); err != nil {
				// A rank-deficient draw is a property of the instance,
				// not a decoder bug; every decoder must agree it is
				// undetectable.
				for _, other := range detectors[i+1:] {
					if err2 := other.det.Prepare(h); err2 == nil {
						t.Fatalf("%s rejects the channel (%v) but %s accepts it", d.name, err, other.name)
					}
				}
				t.Skip("rank-deficient channel draw")
			}
			idx, err := d.det.Detect(nil, y)
			if err != nil {
				t.Fatalf("%s: Detect: %v", d.name, err)
			}
			got[i] = idx
		}

		if exhaustive {
			// Exhaustive ground truth on one shared metric
			// implementation: the best and second-best metrics over all
			// |cons|^nc candidates, enumerated odometer-style.
			best, second := -1.0, -1.0
			bestIdx := make([]int, nc)
			cand := make([]int, nc)
			for {
				d := distanceOf(h, y, cons, cand)
				switch {
				case best < 0 || d < best:
					second = best
					best = d
					copy(bestIdx, cand)
				case second < 0 || d < second:
					second = d
				}
				k := 0
				for ; k < nc; k++ {
					cand[k]++
					if cand[k] < cons.Size() {
						break
					}
					cand[k] = 0
				}
				if k == nc {
					break
				}
			}

			// Every decoder's answer must achieve the optimal metric.
			tol := 1e-9 * (1 + best)
			for i, d := range detectors {
				dist := distanceOf(h, y, cons, got[i])
				if dist > best+tol {
					t.Errorf("%s: metric %v exceeds optimum %v (idx %v, best %v)",
						d.name, dist, best, got[i], bestIdx)
				}
			}
			// With a clear winner the indices must match exactly.
			if second > best+tol {
				for i, d := range detectors {
					if !equalInts(got[i], bestIdx) {
						t.Errorf("%s: detected %v, exhaustive search says %v (best %v, second %v)",
							d.name, got[i], bestIdx, best, second)
					}
				}
			}
			return
		}

		// Candidate space too large to enumerate: the exact decoders
		// must still agree with each other — identical indices, or a
		// metric tie within floating-point noise.
		best := -1.0
		for i := range detectors {
			if d := distanceOf(h, y, cons, got[i]); best < 0 || d < best {
				best = d
			}
		}
		tol := 1e-9 * (1 + best)
		for i, d := range detectors {
			dist := distanceOf(h, y, cons, got[i])
			if dist > best+tol {
				t.Errorf("%s: metric %v exceeds panel best %v (idx %v)", d.name, dist, best, got[i])
			}
		}
	})
}

// FuzzProjectionCache fuzzes the invariant behind the incremental
// projection stack: after any descend/backtrack walk with any symbol
// assignments, the interference projection the stack serves for a
// level is ULP-identical to recomputing the whole sum from scratch in
// the stack's descending-j subtraction order. The walk bytes drive
// both the move (descend vs backtrack) and the symbol chosen on each
// descend, so the fuzzer explores revisit patterns — re-descending a
// subtree with a different symbol, repeated queries at one node — that
// the real search only produces for particular noise draws.
func FuzzProjectionCache(f *testing.F) {
	f.Add(int64(1), byte(0), []byte{0x00, 0x81, 0x42, 0x13, 0x54})
	f.Add(int64(9), byte(1), []byte{0x10, 0x11, 0x01, 0x00, 0xfe, 0x37})
	f.Add(int64(-3), byte(2), []byte{0xaa, 0x55, 0xaa, 0x55})
	f.Fuzz(func(t *testing.T, seed int64, consSel byte, walk []byte) {
		cons := fuzzCons(consSel)
		src := rng.New(seed)
		const na, nc = 4, 4
		h, _, y := randomScenario(src, cons, na, nc, 20)

		// Complex tree: drive a SphereDecoder's stack directly.
		d := NewGeosphere(cons)
		if err := d.Prepare(h); err != nil {
			t.Skip("rank-deficient channel draw")
		}
		d.qr.ApplyQConjT(d.yhat, y)
		row := d.proj[nc*nc:]
		for l := 0; l < nc; l++ {
			row[l] = d.yhat[l]
			d.projDepth[l] = nc
		}
		checkC := func(l int) {
			got := d.ytildeAt(l)
			s := d.yhat[l]
			r := d.qr.R.Row(l)
			for j := nc - 1; j > l; j-- {
				s -= r[j] * d.pathSym[j]
			}
			//geolint:float-ok the stack must serve the bit-exact value the descending-order recomputation produces
			if want := s * d.rinv[l]; got != want {
				t.Fatalf("complex stack at level %d: cached %v, from-scratch %v", l, got, want)
			}
		}
		top := nc - 1
		level := top
		checkC(level)
		for _, b := range walk {
			descend := b&1 == 0
			if level == 0 {
				descend = false
			}
			if level == top {
				descend = true
			}
			if descend {
				idx := int(b>>1) % cons.Size()
				d.path[level] = idx
				d.pathSym[level] = cons.PointIndex(idx)
				for l := 0; l < level; l++ {
					if d.projDepth[l] <= level {
						d.projDepth[l] = level + 1
					}
				}
				level--
			} else {
				level++
			}
			checkC(level)
		}

		// Real-valued tree: the same walk over an RVDDecoder's stack.
		rd := NewRVD(cons)
		if err := rd.Prepare(h); err != nil {
			t.Skip("rank-deficient channel draw")
		}
		m := rd.m
		for r := 0; r < na; r++ {
			rd.yr[r] = complex(real(y[r]), 0)
			rd.yr[r+na] = complex(imag(y[r]), 0)
		}
		rd.qr.ApplyQConjT(rd.yhat, rd.yr)
		rrow := rd.proj[m*m:]
		for l := 0; l < m; l++ {
			rrow[l] = real(rd.yhat[l])
			rd.projDepth[l] = m
		}
		checkR := func(l int) {
			got := rd.ytildeAt(l)
			s := real(rd.yhat[l])
			r := rd.qr.R.Row(l)
			for j := m - 1; j > l; j-- {
				s -= real(r[j]) * rd.cons.AxisCoord(rd.path[j])
			}
			//geolint:float-ok the stack must serve the bit-exact value the descending-order recomputation produces
			if want := s / real(rd.qr.R.At(l, l)); got != want {
				t.Fatalf("real stack at level %d: cached %v, from-scratch %v", l, got, want)
			}
		}
		rtop := m - 1
		level = rtop
		checkR(level)
		for _, b := range walk {
			descend := b&1 == 0
			if level == 0 {
				descend = false
			}
			if level == rtop {
				descend = true
			}
			if descend {
				rd.path[level] = int(b>>1) % cons.Side()
				for l := 0; l < level; l++ {
					if rd.projDepth[l] <= level {
						rd.projDepth[l] = level + 1
					}
				}
				level--
			} else {
				level++
			}
			checkR(level)
		}
	})
}
