package core

import (
	"testing"

	"repro/internal/constellation"
	"repro/internal/rng"
)

// FuzzDetectAgreement fuzzes the central correctness property of the
// repository: on any 2×2 instance, Geosphere, the ETH-SD baseline and
// exhaustive maximum-likelihood search agree on the detected symbol
// vector. The fuzzer steers the channel/noise draw through the seed
// and the operating point through the constellation and SNR selectors,
// so the corpus explores well- and ill-conditioned channels across the
// whole SNR range instead of the fixed grid of TestSphereDecodersMatchML.
//
// Agreement is checked on the ML metric (Equation 1), not on raw
// indices: the decoders accumulate partial Euclidean distances in
// different orders, so two candidates whose metrics tie to within
// floating-point noise are both correct answers. Indices must match
// exactly only when the best candidate is separated from the runner-up
// by more than the tie tolerance.
func FuzzDetectAgreement(f *testing.F) {
	f.Add(int64(1), byte(0), byte(5))
	f.Add(int64(42), byte(1), byte(30))
	f.Add(int64(-7), byte(0), byte(0))
	f.Add(int64(1<<40), byte(1), byte(12))
	f.Fuzz(func(t *testing.T, seed int64, consSel, snrSel byte) {
		cons := constellation.QPSK
		if consSel&1 == 1 {
			cons = constellation.QAM16
		}
		snrdB := float64(snrSel % 36) // 0..35 dB
		src := rng.New(seed)
		h, _, y := randomScenario(src, cons, 2, 2, snrdB)

		detectors := []struct {
			name string
			det  Detector
		}{
			{"geosphere", NewGeosphere(cons)},
			{"eth-sd", NewETHSD(cons)},
			{"ml", NewML(cons)},
		}
		got := make([][]int, len(detectors))
		for i, d := range detectors {
			if err := d.det.Prepare(h); err != nil {
				// A rank-deficient draw is a property of the instance,
				// not a decoder bug; every decoder must agree it is
				// undetectable.
				for _, other := range detectors[i+1:] {
					if err2 := other.det.Prepare(h); err2 == nil {
						t.Fatalf("%s rejects the channel (%v) but %s accepts it", d.name, err, other.name)
					}
				}
				t.Skip("rank-deficient channel draw")
			}
			idx, err := d.det.Detect(nil, y)
			if err != nil {
				t.Fatalf("%s: Detect: %v", d.name, err)
			}
			got[i] = idx
		}

		// Exhaustive ground truth on one shared metric implementation:
		// the best and second-best metrics over all |cons|^2 candidates.
		size := cons.Size()
		best, second := -1.0, -1.0
		var bestIdx [2]int
		cand := make([]int, 2)
		for a := 0; a < size; a++ {
			for b := 0; b < size; b++ {
				cand[0], cand[1] = a, b
				d := distanceOf(h, y, cons, cand)
				switch {
				case best < 0 || d < best:
					second = best
					best = d
					bestIdx = [2]int{a, b}
				case second < 0 || d < second:
					second = d
				}
			}
		}

		// Every decoder's answer must achieve the optimal metric.
		tol := 1e-9 * (1 + best)
		for i, d := range detectors {
			dist := distanceOf(h, y, cons, got[i])
			if dist > best+tol {
				t.Errorf("%s: metric %v exceeds optimum %v (idx %v, best %v)",
					d.name, dist, best, got[i], bestIdx)
			}
		}
		// With a clear winner the indices must match exactly.
		if second > best+tol {
			for i, d := range detectors {
				if got[i][0] != bestIdx[0] || got[i][1] != bestIdx[1] {
					t.Errorf("%s: detected %v, exhaustive search says %v (best %v, second %v)",
						d.name, got[i], bestIdx, best, second)
				}
			}
		}
	})
}
