package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/rng"
)

// randomScenario draws a Rayleigh channel, a transmitted symbol
// vector, and a noisy observation at the given SNR.
func randomScenario(src *rng.Source, cons *constellation.Constellation, na, nc int, snrdB float64) (h *cmplxmat.Matrix, x []int, y []complex128) {
	hm := channel.Rayleigh(src, na, nc)
	xs := make([]complex128, nc)
	xi := make([]int, nc)
	for i := range xs {
		xi[i] = src.Intn(cons.Size())
		xs[i] = cons.PointIndex(xi[i])
	}
	yv := channel.Transmit(nil, src, hm, xs, channel.NoiseVarForSNRdB(snrdB))
	return hm, xi, yv
}

func TestSphereDecodersMatchML(t *testing.T) {
	cases := []struct {
		cons   *constellation.Constellation
		na, nc int
	}{
		{constellation.QPSK, 2, 2},
		{constellation.QPSK, 4, 3},
		{constellation.QPSK, 4, 4},
		{constellation.QAM16, 2, 2},
		{constellation.QAM16, 4, 3},
		{constellation.QAM64, 2, 2},
		{constellation.QAM64, 4, 2},
	}
	src := rng.New(42)
	for _, tc := range cases {
		geo := NewGeosphere(tc.cons)
		zig := NewGeosphereZigzagOnly(tc.cons)
		eth := NewETHSD(tc.cons)
		ml := NewML(tc.cons)
		for trial := 0; trial < 40; trial++ {
			snr := 3 + src.Float64()*27 // 3..30 dB: include hard low-SNR cases
			h, _, y := randomScenario(src, tc.cons, tc.na, tc.nc, snr)
			for _, d := range []Detector{geo, zig, eth, ml} {
				if err := d.Prepare(h); err != nil {
					t.Fatalf("%s %s %d×%d: %v", d.Name(), tc.cons, tc.na, tc.nc, err)
				}
			}
			want, err := ml.Detect(nil, y)
			if err != nil {
				t.Fatal(err)
			}
			wantDist := distanceOf(h, y, tc.cons, want)
			for _, d := range []Detector{geo, zig, eth} {
				got, err := d.Detect(nil, y)
				if err != nil {
					t.Fatalf("%s: %v", d.Name(), err)
				}
				gotDist := distanceOf(h, y, tc.cons, got)
				// Accept ties (distinct vectors at the same distance)
				// but nothing worse than the exhaustive optimum.
				if gotDist > wantDist*(1+1e-9)+1e-12 {
					t.Fatalf("%s %s %d×%d trial %d: distance %g worse than ML %g (got %v want %v)",
						d.Name(), tc.cons, tc.na, tc.nc, trial, gotDist, wantDist, got, want)
				}
			}
		}
	}
}

func distanceOf(h *cmplxmat.Matrix, y []complex128, cons *constellation.Constellation, idx []int) float64 {
	var dist float64
	for r := 0; r < h.Rows; r++ {
		row := h.Row(r)
		acc := y[r]
		for c, ix := range idx {
			acc -= row[c] * cons.PointIndex(ix)
		}
		dist += real(acc)*real(acc) + imag(acc)*imag(acc)
	}
	return dist
}

// TestVisitedNodesIdentical verifies the paper's claim (§5.3.2) that
// all exact Schnorr-Euchner decoders visit the same tree nodes: only
// the PED bookkeeping differs.
func TestVisitedNodesIdentical(t *testing.T) {
	src := rng.New(7)
	for _, cons := range []*constellation.Constellation{constellation.QPSK, constellation.QAM16, constellation.QAM64, constellation.QAM256} {
		geo := NewGeosphere(cons)
		zig := NewGeosphereZigzagOnly(cons)
		eth := NewETHSD(cons)
		for trial := 0; trial < 25; trial++ {
			h, _, y := randomScenario(src, cons, 4, 4, 24)
			counts := make([]int64, 3)
			for i, d := range []*SphereDecoder{geo, zig, eth} {
				d.ResetStats()
				if err := d.Prepare(h); err != nil {
					t.Fatal(err)
				}
				if _, err := d.Detect(nil, y); err != nil {
					t.Fatal(err)
				}
				counts[i] = d.Stats().VisitedNodes
			}
			if counts[0] != counts[1] || counts[0] != counts[2] {
				t.Fatalf("%s trial %d: visited nodes differ: geo=%d zigzag=%d eth=%d",
					cons, trial, counts[0], counts[1], counts[2])
			}
		}
	}
}

// TestGeospherePEDNeverExceedsZigzagOnly: pruning can only remove
// exact PED computations, never add them.
func TestGeospherePEDNeverExceedsZigzagOnly(t *testing.T) {
	src := rng.New(8)
	for _, cons := range []*constellation.Constellation{constellation.QAM16, constellation.QAM64, constellation.QAM256} {
		geo := NewGeosphere(cons)
		zig := NewGeosphereZigzagOnly(cons)
		for trial := 0; trial < 25; trial++ {
			h, _, y := randomScenario(src, cons, 4, 4, 30)
			geo.ResetStats()
			zig.ResetStats()
			for _, d := range []*SphereDecoder{geo, zig} {
				if err := d.Prepare(h); err != nil {
					t.Fatal(err)
				}
				if _, err := d.Detect(nil, y); err != nil {
					t.Fatal(err)
				}
			}
			if geo.Stats().PEDCalcs > zig.Stats().PEDCalcs {
				t.Fatalf("%s trial %d: pruning increased PEDs: %d > %d",
					cons, trial, geo.Stats().PEDCalcs, zig.Stats().PEDCalcs)
			}
		}
	}
}

// TestZigzagEnumerationComplete exercises the 2-D zigzag enumerator
// directly: with an infinite radius it must emit every constellation
// point exactly once, in non-decreasing distance from the received
// symbol.
func TestZigzagEnumerationComplete(t *testing.T) {
	src := rng.New(9)
	for _, cons := range []*constellation.Constellation{constellation.QPSK, constellation.QAM16, constellation.QAM64, constellation.QAM256} {
		var st Stats
		for _, prune := range []bool{false, true} {
			e := newGeoEnumerator(cons, &st, prune)
			for trial := 0; trial < 60; trial++ {
				// Received points both inside and well outside the
				// constellation boundary.
				y := complex(3*(src.Float64()-0.5), 3*(src.Float64()-0.5))
				e.init(y, 0, 1)
				seen := make(map[int]bool)
				prev := math.Inf(-1)
				for {
					idx, ped, ok := e.next(math.Inf(1))
					if !ok {
						break
					}
					if seen[idx] {
						t.Fatalf("%s prune=%v: point %d emitted twice", cons, prune, idx)
					}
					seen[idx] = true
					if ped < prev-1e-12 {
						t.Fatalf("%s prune=%v: order not monotone: %g after %g", cons, prune, ped, prev)
					}
					prev = ped
					// Cross-check the reported distance.
					p := cons.PointIndex(idx)
					want := real(y-p)*real(y-p) + imag(y-p)*imag(y-p)
					if math.Abs(ped-want) > 1e-12 {
						t.Fatalf("%s prune=%v: ped %g want %g", cons, prune, ped, want)
					}
				}
				if len(seen) != cons.Size() {
					t.Fatalf("%s prune=%v: enumerated %d of %d points", cons, prune, len(seen), cons.Size())
				}
			}
		}
	}
}

// TestEthEnumerationComplete does the same for the ETH/Hess enumerator.
func TestEthEnumerationComplete(t *testing.T) {
	src := rng.New(10)
	for _, cons := range []*constellation.Constellation{constellation.QPSK, constellation.QAM16, constellation.QAM64} {
		var st Stats
		e := newEthEnumerator(cons, &st)
		for trial := 0; trial < 60; trial++ {
			y := complex(3*(src.Float64()-0.5), 3*(src.Float64()-0.5))
			e.init(y, 0, 1)
			seen := make(map[int]bool)
			prev := math.Inf(-1)
			for {
				idx, ped, ok := e.next(math.Inf(1))
				if !ok {
					break
				}
				if seen[idx] {
					t.Fatalf("%s: point %d emitted twice", cons, idx)
				}
				seen[idx] = true
				if ped < prev-1e-12 {
					t.Fatalf("%s: order not monotone: %g after %g", cons, ped, prev)
				}
				prev = ped
			}
			if len(seen) != cons.Size() {
				t.Fatalf("%s: enumerated %d of %d points", cons, len(seen), cons.Size())
			}
		}
	}
}

// TestGeometricBoundIsLowerBound property-checks Equation 9 (with the
// d=0 clamp): the table bound never exceeds the exact branch cost.
func TestGeometricBoundIsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		cons := constellation.QAM64
		var st Stats
		e := newGeoEnumerator(cons, &st, true)
		y := complex(2*(src.Float64()-0.5), 2*(src.Float64()-0.5))
		base := src.Float64()
		rll2 := 0.1 + src.Float64()
		e.init(y, base, rll2)
		for col := 0; col < cons.Side(); col++ {
			for row := 0; row < cons.Side(); row++ {
				lb := e.lowerBound(col, row)
				exact := e.pedOf(col, row)
				if lb > exact+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestETHUpfrontCost checks the defining cost structure: expanding a
// node costs ETH-SD √|O| PEDs before its first child, while Geosphere
// pays only one (the sliced point).
func TestETHUpfrontCost(t *testing.T) {
	for _, cons := range []*constellation.Constellation{constellation.QAM16, constellation.QAM64, constellation.QAM256} {
		var stEth, stGeo Stats
		eth := newEthEnumerator(cons, &stEth)
		geo := newGeoEnumerator(cons, &stGeo, false)
		y := complex(0.1, -0.2)
		eth.init(y, 0, 1)
		geo.init(y, 0, 1)
		if _, _, ok := eth.next(math.Inf(1)); !ok {
			t.Fatal("eth produced no child")
		}
		if _, _, ok := geo.next(math.Inf(1)); !ok {
			t.Fatal("geo produced no child")
		}
		// ETH: side candidates up front + 1 replacement after the pop.
		if want := int64(cons.Side() + 1); stEth.PEDCalcs != want {
			t.Fatalf("%s: ETH first-child PEDs = %d, want %d", cons, stEth.PEDCalcs, want)
		}
		// Geosphere: only the sliced point — its zigzag successors are
		// deferred until the search returns to this node, by which
		// time the sphere radius usually retires them by table lookup.
		if stGeo.PEDCalcs != 1 {
			t.Fatalf("%s: Geosphere first-child PEDs = %d, want 1", cons, stGeo.PEDCalcs)
		}
	}
}

// TestPaperThirdChildCost reproduces the worked comparison from §6.1:
// identifying the child with the third-smallest distance needs four
// partial distance calculations with Geosphere's enumeration.
func TestPaperThirdChildCost(t *testing.T) {
	cons := constellation.QAM16
	var st Stats
	e := newGeoEnumerator(cons, &st, false)
	// A received point strictly inside a cell whose second-nearest
	// point is the vertical neighbour, matching the geometry of the
	// Figure 6 walk-through (a, then b above it, then c beside it).
	col0, row0 := 1, 1
	y := cons.Point(col0, row0) + complex(0.15, 0.45)*complex(cons.Scale(), 0)
	e.init(y, 0, 1)
	for i := 0; i < 3; i++ { // children 1, 2 and 3
		if _, _, ok := e.next(math.Inf(1)); !ok {
			t.Fatal("enumeration ended early")
		}
	}
	if st.PEDCalcs != 4 {
		t.Fatalf("PEDs spent identifying the third child = %d, want 4 (paper §6.1: Shabany's scheme needs five)", st.PEDCalcs)
	}
}

func TestDetectorErrors(t *testing.T) {
	cons := constellation.QAM16
	d := NewGeosphere(cons)
	if _, err := d.Detect(nil, []complex128{1, 2}); err == nil {
		t.Fatal("Detect before Prepare should fail")
	}
	src := rng.New(3)
	h := channel.Rayleigh(src, 4, 2)
	if err := d.Prepare(h); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(nil, []complex128{1, 2}); err == nil {
		t.Fatal("Detect with wrong-length y should fail")
	}
	if _, err := d.Detect(make([]int, 5), make([]complex128, 4)); err == nil {
		t.Fatal("Detect with wrong-length dst should fail")
	}
	wide := channel.Rayleigh(src, 2, 4)
	if err := d.Prepare(wide); err == nil {
		t.Fatal("Prepare with na < nc should fail")
	}
}

func TestStatsAccounting(t *testing.T) {
	cons := constellation.QAM16
	d := NewGeosphere(cons)
	src := rng.New(11)
	h, _, y := randomScenario(src, cons, 4, 4, 20)
	if err := d.Prepare(h); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(nil, y); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Detections != 1 || st.PEDCalcs == 0 || st.VisitedNodes == 0 || st.Leaves == 0 {
		t.Fatalf("implausible stats after one detection: %+v", st)
	}
	if st.PEDPerDetection() != float64(st.PEDCalcs) { //geolint:float-ok exact ratio of integer counts
		t.Fatalf("PEDPerDetection mismatch")
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not clear")
	}
	var acc Stats
	acc.Add(st)
	acc.Add(st)
	if acc.PEDCalcs != 2*st.PEDCalcs || acc.Detections != 2 {
		t.Fatalf("Add accumulated wrongly: %+v", acc)
	}
}

// TestPaperTreeSizeArithmetic checks the paper's §2 footnote: a 4×4
// MIMO 16-QAM sphere-decoding tree has ≈6.6×10⁴ nodes and the 256-QAM
// tree ≈4.3×10⁹ — the scale gap that motivates Geosphere.
func TestPaperTreeSizeArithmetic(t *testing.T) {
	treeNodes := func(order int, levels int) float64 {
		total := 0.0
		pow := 1.0
		for l := 0; l < levels; l++ {
			pow *= float64(order)
			total += pow
		}
		return total
	}
	n16 := treeNodes(16, 4)
	n256 := treeNodes(256, 4)
	if n16 < 6.5e4 || n16 > 7.0e4 {
		t.Fatalf("16-QAM tree has %g nodes, paper says ≈6.6×10⁴", n16)
	}
	if n256 < 4.2e9 || n256 > 4.4e9 {
		t.Fatalf("256-QAM tree has %g nodes, paper says ≈4.3×10⁹", n256)
	}
}
