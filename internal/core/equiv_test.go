package core

import (
	"fmt"
	"testing"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/rng"
)

// The TestEquiv* suite is the detector-equivalence contract pinning
// the redundancy-free search rebuild: every exact detector — Geosphere,
// zigzag-only, the ETH-SD baseline, the real-valued decomposition and
// (where tractable) brute-force ML — agrees symbol for symbol on
// seeded channels across the full constellation × antenna-shape grid,
// and the incremental-projection engine reproduces the retained
// reference implementation bit for bit. Makefile `check` re-runs the
// suite with -shuffle=on so no test depends on its neighbors' state.

// equivShape is one antenna geometry of the equivalence grid.
type equivShape struct{ na, nc int }

var equivShapes = []equivShape{{2, 2}, {4, 2}, {4, 3}, {4, 4}}

// equivSNRs picks operating points that keep the exact searches
// tractable: big constellations on tall trees only get high-SNR draws
// (the regime the paper evaluates them in), everything else spans the
// full range.
func equivSNRs(cons *constellation.Constellation, nc int) []float64 {
	hardness := cons.Bits() * nc
	switch {
	case hardness > 20: // e.g. 64-QAM 4×4, 256-QAM 4×4
		return []float64{26, 33}
	case hardness > 12:
		return []float64{15, 24, 32}
	default:
		return []float64{5, 14, 24, 32}
	}
}

// mlTractable reports whether exhaustive ML search over size^nc
// candidates fits the suite's time budget.
func mlTractable(size, nc int) bool {
	total := 1
	for i := 0; i < nc; i++ {
		total *= size
		if total > 70000 {
			return false
		}
	}
	return true
}

// TestEquivAllDetectorsAgree sweeps the constellation × shape grid and
// requires every exact detector to return the same symbol vector on
// every seeded draw. Agreement is judged on the ML metric: each
// detector's candidate must achieve the best metric any of them found
// (and the exhaustive optimum when ML is in the panel), and detectors
// may only disagree on indices when their candidates' metrics tie to
// within floating-point noise — two exact decoders accumulating PEDs
// in different orders are both correct on a tie.
func TestEquivAllDetectorsAgree(t *testing.T) {
	for _, cons := range constellation.All() {
		for _, sh := range equivShapes {
			name := fmt.Sprintf("%s/%dx%d", cons.Name(), sh.na, sh.nc)
			t.Run(name, func(t *testing.T) {
				src := rng.New(int64(1000*sh.na + 10*sh.nc + cons.Bits()))
				dets := []Detector{
					NewGeosphere(cons),
					NewGeosphereZigzagOnly(cons),
					NewETHSD(cons),
					NewRVD(cons),
				}
				if mlTractable(cons.Size(), sh.nc) {
					dets = append(dets, NewML(cons))
				}
				got := make([][]int, len(dets))
				for i := range got {
					got[i] = make([]int, sh.nc)
				}
				for _, snrdB := range equivSNRs(cons, sh.nc) {
					for trial := 0; trial < 5; trial++ {
						h, _, y := randomScenario(src, cons, sh.na, sh.nc, snrdB)
						skip := false
						for _, d := range dets {
							if err := d.Prepare(h); err != nil {
								skip = true // rank-deficient draw
								break
							}
						}
						if skip {
							continue
						}
						best := -1.0
						for i, d := range dets {
							if _, err := d.Detect(got[i], y); err != nil {
								t.Fatalf("%s @ %gdB: %v", d.Name(), snrdB, err)
							}
							if dist := distanceOf(h, y, cons, got[i]); best < 0 || dist < best {
								best = dist
							}
						}
						tol := 1e-9 * (1 + best)
						for i, d := range dets {
							dist := distanceOf(h, y, cons, got[i])
							if dist > best+tol {
								t.Errorf("%s @ %gdB trial %d: metric %v exceeds best %v (idx %v)",
									d.Name(), snrdB, trial, dist, best, got[i])
							}
							for j := 0; j < i; j++ {
								if !equalInts(got[i], got[j]) {
									dj := distanceOf(h, y, cons, got[j])
									if dist > dj+tol || dj > dist+tol {
										t.Errorf("%s and %s disagree beyond a metric tie @ %gdB trial %d: %v (%v) vs %v (%v)",
											dets[i].Name(), dets[j].Name(), snrdB, trial, got[i], dist, got[j], dj)
									}
								}
							}
						}
					}
				}
			})
		}
	}
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refEngineOf returns det with its search switched to the retained
// reference implementation (full ascending-order interference
// recomputation, no projection stack).
func refEngineOf(det Detector) Detector {
	switch d := det.(type) {
	case *SphereDecoder:
		d.refProj = true
	case *RVDDecoder:
		d.refProj = true
	}
	return det
}

// TestEquivNewEngineMatchesReference pins the tentpole's bit-identity
// claim: with the incremental projection stack on (the default) and
// off (refProj, the old engine kept as the unexported reference),
// every decoder returns identical indices and identical search-shape
// counters — same PEDs, same visited nodes, same leaves — on every
// draw of the grid. Only ProjReuse may differ: the reference never
// reuses, the new engine must (in aggregate) reuse.
func TestEquivNewEngineMatchesReference(t *testing.T) {
	builders := []struct {
		name string
		mk   func(*constellation.Constellation) Detector
	}{
		{"geosphere", func(c *constellation.Constellation) Detector { return NewGeosphere(c) }},
		{"zigzag-only", func(c *constellation.Constellation) Detector { return NewGeosphereZigzagOnly(c) }},
		{"eth-sd", func(c *constellation.Constellation) Detector { return NewETHSD(c) }},
		{"rvd", func(c *constellation.Constellation) Detector { return NewRVD(c) }},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			var totalReuse int64
			for _, cons := range constellation.All() {
				for _, sh := range equivShapes {
					src := rng.New(int64(7000*sh.na + 100*sh.nc + cons.Bits()))
					newEng := b.mk(cons)
					refEng := refEngineOf(b.mk(cons))
					gotNew := make([]int, sh.nc)
					gotRef := make([]int, sh.nc)
					for _, snrdB := range equivSNRs(cons, sh.nc) {
						for trial := 0; trial < 4; trial++ {
							h, _, y := randomScenario(src, cons, sh.na, sh.nc, snrdB)
							if err := newEng.Prepare(h); err != nil {
								continue
							}
							if err := refEng.Prepare(h); err != nil {
								t.Fatalf("engines disagree on channel admissibility: %v", err)
							}
							ResetStatsOf(newEng)
							ResetStatsOf(refEng)
							if _, err := newEng.Detect(gotNew, y); err != nil {
								t.Fatal(err)
							}
							if _, err := refEng.Detect(gotRef, y); err != nil {
								t.Fatal(err)
							}
							if !equalInts(gotNew, gotRef) {
								t.Fatalf("%s %s %dx%d @ %gdB trial %d: new engine %v, reference %v",
									b.name, cons.Name(), sh.na, sh.nc, snrdB, trial, gotNew, gotRef)
							}
							sNew, _ := StatsOf(newEng)
							sRef, _ := StatsOf(refEng)
							if sNew.PEDCalcs != sRef.PEDCalcs || sNew.VisitedNodes != sRef.VisitedNodes || sNew.Leaves != sRef.Leaves {
								t.Fatalf("%s %s %dx%d @ %gdB trial %d: search shape diverged: new {ped %d nodes %d leaves %d} ref {ped %d nodes %d leaves %d}",
									b.name, cons.Name(), sh.na, sh.nc, snrdB, trial,
									sNew.PEDCalcs, sNew.VisitedNodes, sNew.Leaves,
									sRef.PEDCalcs, sRef.VisitedNodes, sRef.Leaves)
							}
							if sRef.ProjReuse != 0 {
								t.Fatalf("reference engine reported %d reused projections; it must never reuse", sRef.ProjReuse)
							}
							totalReuse += sNew.ProjReuse
						}
					}
				}
			}
			if totalReuse == 0 {
				t.Errorf("%s: projection stack never served a cached term across the whole grid", b.name)
			}
		})
	}
}

// TestEquivIncrementalPrepMatchesFresh pins the decision-equivalence
// of the rank-1 QR re-preparation path: a detector whose
// PreparedChannel follows a slowly-drifting channel through
// incremental updates makes the same decisions as one freshly
// factorizing every draw.
func TestEquivIncrementalPrepMatchesFresh(t *testing.T) {
	builders := []struct {
		name string
		mk   func() Detector
	}{
		{"eth-sd", func() Detector { return NewETHSD(constellation.QAM16) }},
		{"geosphere", func() Detector { return NewGeosphere(constellation.QAM16) }},
		{"rvd", func() Detector { return NewRVD(constellation.QAM16) }},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			src := rng.New(2014)
			upd := b.mk().(SharedPreparer)
			fresh := b.mk().(SharedPreparer)
			var pcUpd, pcFresh PreparedChannel
			pcUpd.SetIncremental(true)
			na, nc := 4, 4
			h := cmplxmat.New(na, nc)
			for i := range h.Data {
				h.Data[i] = complex(src.Norm(), src.Norm())
			}
			y := make([]complex128, na)
			gotUpd := make([]int, nc)
			gotFresh := make([]int, nc)
			for step := 0; step < 30; step++ {
				// Gauss-Markov drift: small innovation on top of the
				// previous realization.
				for i := range h.Data {
					h.Data[i] = h.Data[i]*complex(0.999, 0) +
						complex(0.02*src.Norm(), 0.02*src.Norm())
				}
				if _, err := upd.PrepareShared(&pcUpd, h); err != nil {
					t.Fatal(err)
				}
				if _, err := fresh.PrepareShared(&pcFresh, h); err != nil {
					t.Fatal(err)
				}
				for sym := 0; sym < 20; sym++ {
					for i := range y {
						y[i] = complex(src.Norm(), src.Norm())
					}
					if _, err := upd.Detect(gotUpd, y); err != nil {
						t.Fatal(err)
					}
					if _, err := fresh.Detect(gotFresh, y); err != nil {
						t.Fatal(err)
					}
					if !equalInts(gotUpd, gotFresh) {
						t.Fatalf("step %d symbol %d: incremental prep decided %v, fresh factorization %v",
							step, sym, gotUpd, gotFresh)
					}
				}
			}
			if pcUpd.Updates() == 0 {
				t.Error("incremental path never taken over 30 drift steps")
			}
			if pcFresh.Updates() != 0 {
				t.Errorf("fresh-path cache reported %d updates, want 0", pcFresh.Updates())
			}
		})
	}
}
