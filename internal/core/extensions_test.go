package core

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/rng"
)

// zfStub is a minimal zero-forcing detector for the hybrid tests (the
// real one lives in internal/linear, which imports this package).
type zfStub struct {
	cons *constellation.Constellation
	w    *cmplxmat.Matrix
}

func (d *zfStub) Name() string                                { return "zf-stub" }
func (d *zfStub) Constellation() *constellation.Constellation { return d.cons }

func (d *zfStub) Prepare(h *cmplxmat.Matrix) error {
	w, err := h.PseudoInverse()
	if err != nil {
		return err
	}
	d.w = w
	return nil
}

func (d *zfStub) Detect(dst []int, y []complex128) ([]int, error) {
	if d.w == nil {
		return nil, ErrNotPrepared
	}
	est := d.w.MulVec(nil, y)
	if dst == nil {
		dst = make([]int, len(est))
	}
	for k, e := range est {
		col, row := d.cons.Slice(e)
		dst[k] = d.cons.Index(col, row)
	}
	return dst, nil
}

// --- Soft-output list sphere decoder -------------------------------------

func TestSoftHardDecisionMatchesML(t *testing.T) {
	src := rng.New(20)
	cons := constellation.QAM16
	soft := NewListSphereDecoder(cons)
	ml := NewML(cons)
	for trial := 0; trial < 40; trial++ {
		h, _, y := randomScenario(src, cons, 4, 2, 5+src.Float64()*25)
		if err := soft.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if err := ml.Prepare(h); err != nil {
			t.Fatal(err)
		}
		got, err := soft.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ml.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		gd := distanceOf(h, y, cons, got)
		wd := distanceOf(h, y, cons, want)
		if gd > wd*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: soft hard-decision distance %g worse than ML %g", trial, gd, wd)
		}
	}
}

// TestSoftLLRSignsMatchML: the sign of every max-log LLR must agree
// with the maximum-likelihood hard decision's bits (the ML vector is
// the minimizer, so λ with the bit forced the other way is ≥ λ_ML).
func TestSoftLLRSignsMatchML(t *testing.T) {
	src := rng.New(21)
	cons := constellation.QAM16
	soft := NewListSphereDecoder(cons)
	q := cons.Bits()
	bits := make([]byte, q)
	for trial := 0; trial < 40; trial++ {
		h, _, y := randomScenario(src, cons, 4, 2, 15)
		if err := soft.Prepare(h); err != nil {
			t.Fatal(err)
		}
		hard, err := soft.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		llrs, err := soft.DetectSoft(nil, y, channel.NoiseVarForSNRdB(15))
		if err != nil {
			t.Fatal(err)
		}
		for k, idx := range hard {
			col, row := cons.Coords(idx)
			cons.SymbolBits(bits, col, row)
			for b := 0; b < q; b++ {
				llr := llrs[k*q+b]
				if bits[b] == 1 && llr < 0 {
					t.Fatalf("trial %d: stream %d bit %d is 1 but LLR %g < 0", trial, k, b, llr)
				}
				if bits[b] == 0 && llr > 0 {
					t.Fatalf("trial %d: stream %d bit %d is 0 but LLR %g > 0", trial, k, b, llr)
				}
			}
		}
	}
}

// TestSoftLLRExactMaxLog cross-checks the tree-search LLRs against a
// brute-force max-log computation over the full alphabet.
func TestSoftLLRExactMaxLog(t *testing.T) {
	src := rng.New(22)
	cons := constellation.QPSK
	soft := NewListSphereDecoder(cons)
	q := cons.Bits()
	bits := make([]byte, q)
	nv := channel.NoiseVarForSNRdB(10)
	for trial := 0; trial < 30; trial++ {
		h, _, y := randomScenario(src, cons, 2, 2, 10)
		if err := soft.Prepare(h); err != nil {
			t.Fatal(err)
		}
		llrs, err := soft.DetectSoft(nil, y, nv)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: λ_min per (stream, bit, value).
		nc := 2
		best := make([][][2]float64, nc)
		for k := range best {
			best[k] = make([][2]float64, q)
			for b := range best[k] {
				best[k][b] = [2]float64{math.Inf(1), math.Inf(1)}
			}
		}
		idx := []int{0, 0}
		for i := 0; i < cons.Size(); i++ {
			for j := 0; j < cons.Size(); j++ {
				idx[0], idx[1] = i, j
				dist := distanceOf(h, y, cons, idx)
				for k := 0; k < nc; k++ {
					col, row := cons.Coords(idx[k])
					cons.SymbolBits(bits, col, row)
					for b := 0; b < q; b++ {
						v := bits[b] & 1
						if dist < best[k][b][v] {
							best[k][b][v] = dist
						}
					}
				}
			}
		}
		for k := 0; k < nc; k++ {
			for b := 0; b < q; b++ {
				want := (best[k][b][0] - best[k][b][1]) / nv
				if want > 50 {
					want = 50
				} else if want < -50 {
					want = -50
				}
				got := llrs[k*q+b]
				if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Fatalf("trial %d stream %d bit %d: LLR %g want %g", trial, k, b, got, want)
				}
			}
		}
	}
}

func TestSoftValidation(t *testing.T) {
	cons := constellation.QAM16
	d := NewListSphereDecoder(cons)
	if _, err := d.DetectSoft(nil, []complex128{1}, 1); err == nil {
		t.Fatal("DetectSoft before Prepare accepted")
	}
	src := rng.New(23)
	h := channel.Rayleigh(src, 4, 2)
	if err := d.Prepare(h); err != nil {
		t.Fatal(err)
	}
	y := make([]complex128, 4)
	if _, err := d.DetectSoft(nil, y, 0); err == nil {
		t.Fatal("zero noise variance accepted")
	}
	if _, err := d.DetectSoft(make([]float64, 3), y, 1); err == nil {
		t.Fatal("short LLR buffer accepted")
	}
	if err := d.Prepare(channel.Rayleigh(src, 2, 4)); err == nil {
		t.Fatal("wide channel accepted")
	}
}

// --- Hybrid (condition-threshold) detector --------------------------------

func TestHybridSwitchesOnKappa(t *testing.T) {
	cons := constellation.QAM16
	hy, err := NewHybrid(cons, &zfStub{cons: cons}, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(24)
	sphereUses := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		h, sent, y := randomScenario(src, cons, 4, 2, 200)
		if err := hy.Prepare(h); err != nil {
			t.Fatal(err)
		}
		got, err := hy.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sent {
			if got[i] != sent[i] {
				t.Fatalf("trial %d: noiseless detection failed", trial)
			}
		}
	}
	sphereUses = hy.SphereSelections
	if hy.Preparations != trials {
		t.Fatalf("preparations %d", hy.Preparations)
	}
	if sphereUses == 0 || sphereUses == trials {
		t.Fatalf("threshold 3 should split 4×2 Rayleigh draws, got %d/%d sphere", sphereUses, trials)
	}
	hy.ResetStats()
	if hy.SphereSelections != 0 || hy.Preparations != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestHybridValidation(t *testing.T) {
	cons := constellation.QPSK
	if _, err := NewHybrid(cons, nil, 3); err == nil {
		t.Fatal("nil linear accepted")
	}
	if _, err := NewHybrid(cons, &zfStub{cons: cons}, 0.5); err == nil {
		t.Fatal("threshold < 1 accepted")
	}
	hy, err := NewHybrid(cons, &zfStub{cons: cons}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hy.Detect(nil, []complex128{1}); err == nil {
		t.Fatal("Detect before Prepare accepted")
	}
	if hy.Name() == "" || hy.Constellation() != cons {
		t.Fatal("metadata wrong")
	}
}

// --- Column reordering -----------------------------------------------------

// TestReorderingPreservesML: reordering only changes the search order;
// the detected vector must stay the maximum-likelihood one.
func TestReorderingPreservesML(t *testing.T) {
	src := rng.New(25)
	cons := constellation.QAM16
	plain := NewGeosphere(cons)
	ordered := NewGeosphere(cons)
	ordered.EnableColumnReordering(true)
	for trial := 0; trial < 60; trial++ {
		h, _, y := randomScenario(src, cons, 4, 4, 8+src.Float64()*20)
		for _, d := range []*SphereDecoder{plain, ordered} {
			if err := d.Prepare(h); err != nil {
				t.Fatal(err)
			}
		}
		a, err := plain.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ordered.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		da := distanceOf(h, y, cons, a)
		db := distanceOf(h, y, cons, b)
		if math.Abs(da-db) > 1e-9*(1+da) {
			t.Fatalf("trial %d: reordered distance %g differs from plain %g", trial, db, da)
		}
	}
}

// TestReorderingReducesNodesAtLowSNR: the point of the ordering is a
// smaller tree when the channel is noisy.
func TestReorderingReducesNodesAtLowSNR(t *testing.T) {
	src := rng.New(26)
	cons := constellation.QAM16
	plain := NewGeosphere(cons)
	ordered := NewGeosphere(cons)
	ordered.EnableColumnReordering(true)
	for trial := 0; trial < 150; trial++ {
		h, _, y := randomScenario(src, cons, 4, 4, 10)
		for _, d := range []*SphereDecoder{plain, ordered} {
			if err := d.Prepare(h); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Detect(nil, y); err != nil {
				t.Fatal(err)
			}
		}
	}
	pn := plain.Stats().VisitedNodes
	on := ordered.Stats().VisitedNodes
	t.Logf("visited nodes at 10 dB over 150 vectors: plain=%d ordered=%d", pn, on)
	if on > pn {
		t.Fatalf("ordering increased visited nodes: %d > %d", on, pn)
	}
}

func TestColumnOrderSorted(t *testing.T) {
	src := rng.New(27)
	h := channel.Rayleigh(src, 4, 4)
	order := make([]int, h.Cols)
	columnOrderInto(order, make([]float64, h.Cols), h)
	energy := func(c int) float64 {
		var e float64
		for r := 0; r < h.Rows; r++ {
			v := h.At(r, c)
			e += real(v)*real(v) + imag(v)*imag(v)
		}
		return e
	}
	for i := 1; i < len(order); i++ {
		if energy(order[i-1]) > energy(order[i]) {
			t.Fatalf("order not ascending: %v", order)
		}
	}
	perm := cmplxmat.New(h.Rows, h.Cols)
	permuteColumnsInto(perm, h, order)
	for newCol, oldCol := range order {
		for r := 0; r < h.Rows; r++ {
			if perm.At(r, newCol) != h.At(r, oldCol) { //geolint:float-ok test asserts exact bitwise reproducibility
				t.Fatal("permutation mangled entries")
			}
		}
	}
}

// --- Node budget -----------------------------------------------------------

func TestNodeBudgetBoundsWork(t *testing.T) {
	src := rng.New(28)
	cons := constellation.QAM64
	budgeted := NewGeosphere(cons)
	budgeted.SetNodeBudget(10)
	exact := NewGeosphere(cons)
	for trial := 0; trial < 40; trial++ {
		// Very low SNR forces big trees for the exact decoder.
		h, _, y := randomScenario(src, cons, 4, 4, 2)
		for _, d := range []*SphereDecoder{budgeted, exact} {
			d.ResetStats()
			if err := d.Prepare(h); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Detect(nil, y); err != nil {
				t.Fatal(err)
			}
		}
		if n := budgeted.Stats().VisitedNodes; n > 10+4 {
			t.Fatalf("trial %d: budget 10 but visited %d nodes", trial, n)
		}
	}
	if exact.Stats().VisitedNodes == 0 {
		t.Fatal("exact decoder did no work")
	}
}

// TestNodeBudgetNeverWorseDistanceThanDF: even when truncated, the
// budgeted decoder returns at least the decision-feedback (first-leaf)
// solution.
func TestNodeBudgetHighBudgetIsExact(t *testing.T) {
	src := rng.New(29)
	cons := constellation.QAM16
	budgeted := NewGeosphere(cons)
	budgeted.SetNodeBudget(1 << 40)
	ml := NewML(cons)
	for trial := 0; trial < 20; trial++ {
		h, _, y := randomScenario(src, cons, 4, 2, 12)
		if err := budgeted.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if err := ml.Prepare(h); err != nil {
			t.Fatal(err)
		}
		a, err := budgeted.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ml.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		da, db := distanceOf(h, y, cons, a), distanceOf(h, y, cons, b)
		if da > db*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: huge budget lost optimality", trial)
		}
	}
	budgeted.SetNodeBudget(-5) // negative clamps to unlimited
}

// --- Real-valued decomposition baseline ------------------------------------

// TestRVDMatchesML: the unfolded real search is still exactly maximum
// likelihood.
func TestRVDMatchesML(t *testing.T) {
	src := rng.New(30)
	for _, cons := range []*constellation.Constellation{constellation.QPSK, constellation.QAM16, constellation.QAM64} {
		rvd := NewRVD(cons)
		ml := NewML(cons)
		for trial := 0; trial < 30; trial++ {
			nc := 2
			if cons == constellation.QPSK {
				nc = 3
			}
			h, _, y := randomScenario(src, cons, 4, nc, 4+src.Float64()*24)
			if err := rvd.Prepare(h); err != nil {
				t.Fatal(err)
			}
			if err := ml.Prepare(h); err != nil {
				t.Fatal(err)
			}
			got, err := rvd.Detect(nil, y)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ml.Detect(nil, y)
			if err != nil {
				t.Fatal(err)
			}
			gd := distanceOf(h, y, cons, got)
			wd := distanceOf(h, y, cons, want)
			if gd > wd*(1+1e-9)+1e-12 {
				t.Fatalf("%s trial %d: RVD distance %g worse than ML %g", cons, trial, gd, wd)
			}
		}
	}
}

// TestRVDVisitsMoreNodes quantifies the §6.1 critique: unfolding the
// complex tree doubles its height, and the real search visits more
// nodes than the complex-domain Geosphere on the same problems.
func TestRVDVisitsMoreNodes(t *testing.T) {
	src := rng.New(31)
	cons := constellation.QAM16
	rvd := NewRVD(cons)
	geo := NewGeosphere(cons)
	for trial := 0; trial < 100; trial++ {
		h, _, y := randomScenario(src, cons, 4, 4, 18)
		for _, prep := range []Detector{rvd, geo} {
			if err := prep.Prepare(h); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rvd.Detect(nil, y); err != nil {
			t.Fatal(err)
		}
		if _, err := geo.Detect(nil, y); err != nil {
			t.Fatal(err)
		}
	}
	rn := rvd.Stats().VisitedNodes
	gn := geo.Stats().VisitedNodes
	t.Logf("visited nodes over 100 4×4 16-QAM vectors at 18 dB: RVD=%d complex=%d", rn, gn)
	if rn <= gn {
		t.Fatalf("RVD (%d nodes) should visit more nodes than the complex tree (%d)", rn, gn)
	}
}

func TestRVDValidation(t *testing.T) {
	d := NewRVD(constellation.QAM16)
	if _, err := d.Detect(nil, []complex128{1}); err == nil {
		t.Fatal("Detect before Prepare accepted")
	}
	src := rng.New(32)
	if err := d.Prepare(channel.Rayleigh(src, 2, 4)); err == nil {
		t.Fatal("wide channel accepted")
	}
	h := channel.Rayleigh(src, 4, 2)
	if err := d.Prepare(h); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(make([]int, 5), make([]complex128, 4)); err == nil {
		t.Fatal("bad dst accepted")
	}
	if d.Name() == "" || d.Constellation() != constellation.QAM16 {
		t.Fatal("metadata wrong")
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("stats not reset")
	}
}

// --- 1024-QAM (beyond the paper's densest alphabet) -------------------------

// TestGeosphere1024QAM: the enumeration and pruning machinery scales
// to 1024-QAM unchanged — exact ML versus exhaustive search, and the
// per-node cost gap to ETH-SD keeps widening with density.
func TestGeosphere1024QAM(t *testing.T) {
	src := rng.New(33)
	cons := constellation.QAM1024
	geo := NewGeosphere(cons)
	eth := NewETHSD(cons)
	ml := NewML(cons)
	for trial := 0; trial < 6; trial++ {
		h, _, y := randomScenario(src, cons, 2, 2, 25+src.Float64()*10)
		for _, d := range []Detector{geo, eth, ml} {
			if err := d.Prepare(h); err != nil {
				t.Fatal(err)
			}
		}
		want, err := ml.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		wd := distanceOf(h, y, cons, want)
		for _, d := range []Detector{geo, eth} {
			got, err := d.Detect(nil, y)
			if err != nil {
				t.Fatal(err)
			}
			if gd := distanceOf(h, y, cons, got); gd > wd*(1+1e-9)+1e-12 {
				t.Fatalf("%s trial %d: distance %g worse than ML %g", d.Name(), trial, gd, wd)
			}
		}
	}
	gs, es := geo.Stats(), eth.Stats()
	if gs.VisitedNodes != es.VisitedNodes {
		t.Fatalf("visited nodes differ at 1024-QAM: %d vs %d", gs.VisitedNodes, es.VisitedNodes)
	}
	if gs.PEDCalcs*5 > es.PEDCalcs {
		t.Fatalf("1024-QAM PED gap too small: geo=%d eth=%d", gs.PEDCalcs, es.PEDCalcs)
	}
	t.Logf("1024-QAM 2×2: %d nodes for both; PEDs geo=%d eth=%d (%.1f×)",
		gs.VisitedNodes, gs.PEDCalcs, es.PEDCalcs, float64(es.PEDCalcs)/float64(gs.PEDCalcs))
}

// --- Statistical pruning (§6.1 baseline) -----------------------------------

// TestStatisticalPruningTradeoff: aggressive probabilistic pruning
// must shrink the tree and, at low SNR, lose maximum-likelihood
// decisions — the §6.1 argument against the approach, measured.
func TestStatisticalPruningTradeoff(t *testing.T) {
	src := rng.New(34)
	cons := constellation.QAM16
	noiseVar := channel.NoiseVarForSNRdB(12)
	exact := NewGeosphere(cons)
	stat := NewStatisticalPruning(cons, noiseVar, 4)
	ml := NewML(cons)
	mlLosses := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		h, _, y := randomScenario(src, cons, 4, 4, 12)
		for _, d := range []Detector{exact, stat, ml} {
			if err := d.Prepare(h); err != nil {
				t.Fatal(err)
			}
		}
		got, err := stat.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ml.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exact.Detect(nil, y); err != nil {
			t.Fatal(err)
		}
		if distanceOf(h, y, cons, got) > distanceOf(h, y, cons, want)*(1+1e-9)+1e-12 {
			mlLosses++
		}
	}
	en := exact.Stats().VisitedNodes
	sn := stat.Stats().VisitedNodes
	t.Logf("α=4 statistical pruning over %d 4×4 16-QAM vectors at 12 dB: nodes %d→%d, %d ML losses",
		trials, en, sn, mlLosses)
	if sn >= en {
		t.Fatalf("statistical pruning did not shrink the tree: %d ≥ %d", sn, en)
	}
	if mlLosses == 0 {
		t.Fatal("aggressive pruning never lost ML — the trade-off the paper criticizes is absent")
	}
}

// TestStatisticalPruningZeroAlphaIsExact: α=0 must recover the exact
// decoder bit for bit.
func TestStatisticalPruningZeroAlphaIsExact(t *testing.T) {
	src := rng.New(35)
	cons := constellation.QAM16
	stat := NewStatisticalPruning(cons, 0.1, 0)
	ml := NewML(cons)
	for trial := 0; trial < 30; trial++ {
		h, _, y := randomScenario(src, cons, 4, 2, 10)
		if err := stat.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if err := ml.Prepare(h); err != nil {
			t.Fatal(err)
		}
		got, err := stat.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ml.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		if distanceOf(h, y, cons, got) > distanceOf(h, y, cons, want)*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: α=0 lost optimality", trial)
		}
	}
}
