package core

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
)

// SoftDetector extends Detector with per-bit soft output. DetectSoft
// returns max-log log-likelihood ratios (positive means bit=1 more
// likely), Q bits per stream, laid out stream-major in the same bit
// order constellation.SymbolBits uses.
//
// This is the §7 future-work direction: the paper notes that soft
// receiver processing is required to actually reach MIMO capacity and
// that state-of-the-art soft sphere decoders build on ETH-SD, so
// extending Geosphere's enumeration to the soft setting inherits its
// complexity advantage.
type SoftDetector interface {
	Detector
	// DetectSoft writes len = nc·Q LLRs into dst (allocating when
	// nil), scaled by 1/noiseVar.
	DetectSoft(dst []float64, y []complex128, noiseVar float64) ([]float64, error)
}

// ListSphereDecoder produces soft output by running a Geosphere search
// that, instead of keeping only the best leaf, records the best
// distance observed for each (stream, bit, value) hypothesis — the
// standard single-tree-search max-log approximation. The search keeps
// Geosphere's two-dimensional zigzag enumeration; the pruning radius
// is the largest distance any hypothesis still needs, so the output is
// exactly the max-log LLR (no list-size approximation).
type ListSphereDecoder struct {
	cons *constellation.Constellation

	h  *cmplxmat.Matrix
	qr *cmplxmat.QR
	nc int

	stats Stats
	enums []enumerator
	yhat  []complex128
	path  []int
	sym   []complex128
	// lambdaML is the best overall distance; lambdaBit[k][b][v] the
	// best distance with stream k's bit b forced to v.
	lambdaBit [][][2]float64
	bitbuf    []byte
	clamp     float64

	// ownPrep backs plain Prepare calls, giving the standalone decoder
	// the same cached fast path as a pool-attached one.
	ownPrep PreparedChannel
}

var _ SoftDetector = (*ListSphereDecoder)(nil)
var _ Counter = (*ListSphereDecoder)(nil)

// NewListSphereDecoder returns a soft-output Geosphere decoder.
func NewListSphereDecoder(cons *constellation.Constellation) *ListSphereDecoder {
	return &ListSphereDecoder{cons: cons, clamp: 50}
}

// Name implements Detector.
func (d *ListSphereDecoder) Name() string { return "Geosphere-soft" }

// Constellation implements Detector.
func (d *ListSphereDecoder) Constellation() *constellation.Constellation { return d.cons }

// Stats implements Counter.
func (d *ListSphereDecoder) Stats() Stats { return d.stats }

// ResetStats implements Counter.
func (d *ListSphereDecoder) ResetStats() { d.stats = Stats{} }

// Prepare implements Detector via the decoder's private
// PreparedChannel, so repeated preparation of an unchanged channel
// skips the QR.
func (d *ListSphereDecoder) Prepare(h *cmplxmat.Matrix) error {
	_, err := d.PrepareShared(&d.ownPrep, h)
	return err
}

var _ SharedPreparer = (*ListSphereDecoder)(nil)

// PrepareShared implements SharedPreparer. The soft decoder consumes
// the plain thin QR of H (prepModeQR), the same derivation the
// unordered hard sphere decoders use, so it can share their cache
// entries.
//
//geolint:noalloc
func (d *ListSphereDecoder) PrepareShared(pc *PreparedChannel, h *cmplxmat.Matrix) (bool, error) {
	if h == nil {
		return false, ErrNotPrepared
	}
	if h.Rows < h.Cols {
		//geolint:alloc-ok error path
		return false, fmt.Errorf("core: soft decoder needs na ≥ nc, got %d×%d channel", h.Rows, h.Cols)
	}
	hit, err := pc.prepare(h, prepModeQR)
	if err != nil {
		return false, err
	}
	d.h = h
	d.qr = &pc.qr
	d.nc = h.Cols
	if len(d.enums) != d.nc {
		//geolint:alloc-ok reshape only
		d.enums = make([]enumerator, d.nc)
		for l := range d.enums {
			d.enums[l] = newGeoEnumerator(d.cons, &d.stats, false)
		}
		d.yhat = make([]complex128, d.nc)        //geolint:alloc-ok reshape only
		d.path = make([]int, d.nc)               //geolint:alloc-ok reshape only
		d.sym = make([]complex128, d.nc)         //geolint:alloc-ok reshape only
		d.lambdaBit = make([][][2]float64, d.nc) //geolint:alloc-ok reshape only
		for k := range d.lambdaBit {
			d.lambdaBit[k] = make([][2]float64, d.cons.Bits()) //geolint:alloc-ok reshape only
		}
		d.bitbuf = make([]byte, d.cons.Bits()) //geolint:alloc-ok reshape only
	}
	return hit, nil
}

// Detect implements Detector with the hard (maximum-likelihood)
// decision of the underlying search.
func (d *ListSphereDecoder) Detect(dst []int, y []complex128) ([]int, error) {
	if err := checkDims(d.h, y); err != nil {
		return nil, err
	}
	if dst == nil {
		dst = make([]int, d.nc)
	} else if len(dst) != d.nc {
		return nil, fmt.Errorf("core: dst has %d entries, want %d", len(dst), d.nc)
	}
	if err := d.search(y, dst, nil, math.Inf(1)); err != nil {
		return nil, err
	}
	return dst, nil
}

// DetectSoft implements SoftDetector.
func (d *ListSphereDecoder) DetectSoft(dst []float64, y []complex128, noiseVar float64) ([]float64, error) {
	if err := checkDims(d.h, y); err != nil {
		return nil, err
	}
	q := d.cons.Bits()
	want := d.nc * q
	if dst == nil {
		dst = make([]float64, want)
	} else if len(dst) != want {
		return nil, fmt.Errorf("core: LLR buffer has %d entries, want %d", len(dst), want)
	}
	if noiseVar <= 0 {
		return nil, fmt.Errorf("core: DetectSoft needs a positive noise variance, got %g", noiseVar)
	}
	hard := make([]int, d.nc)
	// Counter-hypotheses farther than clamp·σ² from the ML solution
	// clip to ±clamp after scaling, so the search may prune them
	// without changing the output (the standard LLR-clipped
	// single-tree-search rule).
	if err := d.search(y, hard, dst, d.clamp*noiseVar); err != nil {
		return nil, err
	}
	inv := 1 / noiseVar
	for i := range dst {
		l := dst[i] * inv
		if l > d.clamp {
			l = d.clamp
		} else if l < -d.clamp {
			l = -d.clamp
		}
		dst[i] = l
	}
	return dst, nil
}

// search runs a full-tree Geosphere traversal maintaining per-bit
// counter-hypothesis distances. When llrs is nil only the hard
// decision is tracked (and sibling pruning can use the ML radius);
// with llrs the radius is the weakest per-bit bound, the single
// tree-search rule of Studer & Bölcskei, additionally capped at
// λ_ML + clampDist (hypotheses beyond the cap clip anyway).
func (d *ListSphereDecoder) search(y []complex128, hard []int, llrs []float64, clampDist float64) error {
	nc, q := d.nc, d.cons.Bits()
	d.qr.ApplyQConjT(d.yhat, y)
	lambdaML := math.Inf(1)
	for k := 0; k < nc; k++ {
		for b := 0; b < q; b++ {
			d.lambdaBit[k][b] = [2]float64{math.Inf(1), math.Inf(1)}
		}
	}
	radius := func() float64 {
		if llrs == nil {
			return lambdaML
		}
		// The search may only prune paths that cannot improve any
		// hypothesis: prune at the loosest outstanding bound, capped
		// at the clipping horizon above the best solution so far.
		r := lambdaML
		for k := 0; k < nc; k++ {
			for b := 0; b < q; b++ {
				for v := 0; v < 2; v++ {
					if d.lambdaBit[k][b][v] > r {
						r = d.lambdaBit[k][b][v]
					}
				}
			}
		}
		if cap := lambdaML + clampDist; r > cap {
			r = cap
		}
		return r
	}

	top := nc - 1
	d.enums[top].init(d.ytildeAt(top), 0, d.rll2At(top))
	level := top
	found := false
	for {
		idx, ped, ok := d.enums[level].next(radius())
		if !ok || ped >= radius() {
			level++
			if level > top {
				break
			}
			continue
		}
		d.stats.VisitedNodes++
		d.path[level] = idx
		d.sym[level] = d.cons.PointIndex(idx)
		if level == 0 {
			d.stats.Leaves++
			// Update the ML hypothesis and every per-bit minimum.
			if ped < lambdaML {
				lambdaML = ped
				copy(hard, d.path)
				found = true
			}
			for k := 0; k < nc; k++ {
				col, row := d.cons.Coords(d.path[k])
				d.cons.SymbolBits(d.bitbuf, col, row)
				for b := 0; b < q; b++ {
					v := d.bitbuf[b] & 1
					if ped < d.lambdaBit[k][b][v] {
						d.lambdaBit[k][b][v] = ped
					}
				}
			}
			continue
		}
		level--
		d.enums[level].init(d.ytildeAt(level), ped, d.rll2At(level))
	}
	d.stats.Detections++
	if !found {
		return fmt.Errorf("core: soft search found no leaf")
	}
	if llrs != nil {
		for k := 0; k < nc; k++ {
			for b := 0; b < q; b++ {
				l0 := d.lambdaBit[k][b][0]
				l1 := d.lambdaBit[k][b][1]
				// LLR(bit) = (λ|bit=0 − λ|bit=1); unvisited
				// hypotheses saturate at the clamp after scaling.
				var llr float64
				switch {
				case math.IsInf(l1, 1) && math.IsInf(l0, 1):
					llr = 0
				case math.IsInf(l1, 1):
					llr = -math.MaxFloat64
				case math.IsInf(l0, 1):
					llr = math.MaxFloat64
				default:
					llr = l0 - l1
				}
				llrs[k*q+b] = llr
			}
		}
	}
	return nil
}

func (d *ListSphereDecoder) ytildeAt(l int) complex128 {
	s := d.yhat[l]
	row := d.qr.R.Row(l)
	for j := l + 1; j < d.nc; j++ {
		s -= row[j] * d.sym[j]
	}
	return s / d.qr.R.At(l, l)
}

func (d *ListSphereDecoder) rll2At(l int) float64 {
	rll := d.qr.R.At(l, l)
	return real(rll)*real(rll) + imag(rll)*imag(rll)
}
