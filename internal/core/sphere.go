package core

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/obs"
)

// enumerator produces the children of one sphere-decoder tree node in
// exactly non-decreasing cumulative partial Euclidean distance. Each
// tree level owns one enumerator instance that is re-initialized each
// time the search descends into a new node at that level.
type enumerator interface {
	// init starts enumeration for a node whose interference-reduced
	// received value is ytilde (in the normalized constellation
	// plane), whose parent path has cumulative distance base, and
	// whose level has diagonal weight rll2 = |r_ll|².
	init(ytilde complex128, base, rll2 float64)
	// next returns the next child (flat constellation point index and
	// cumulative distance base + rll2·|ytilde−point|²) or ok=false
	// when every remaining child is guaranteed to have a cumulative
	// distance ≥ radius2. next must be monotone: returned ped values
	// never decrease across calls for one node.
	next(radius2 float64) (idx int, ped float64, ok bool)
}

// enumeratorFactory builds one enumerator per tree level.
type enumeratorFactory func(cons *constellation.Constellation, stats *Stats) enumerator

// SphereDecoder is a depth-first Schnorr-Euchner sphere decoder over
// the complex-valued tree of §2.2: height nc (streams), branching
// factor |O|. The concrete search-ordering strategy (Geosphere 2-D
// zigzag, ETH-SD row split, ...) is supplied by the enumerator.
type SphereDecoder struct {
	name    string
	cons    *constellation.Constellation
	factory enumeratorFactory
	// Complexity accounting is kept per tree level so the recorder can
	// expose where the pruning wins happen; Stats() sums the levels.
	// total carries the counters that have no level (Detections).
	levelStats []Stats
	total      Stats

	// Observability: when rec is non-nil, Detect streams one
	// DetectSample per call with per-level counter deltas. prev holds
	// the levelStats values at the previous sample and sampleBuf is
	// the borrowed slice handed to the recorder, so the hot path never
	// allocates.
	rec       obs.Recorder
	prev      []Stats
	sampleBuf []obs.LevelSample

	// Channel state set by Prepare.
	h            *cmplxmat.Matrix
	qr           *cmplxmat.QR
	nc           int
	orderColumns bool
	perm         []int // QR column → original stream, nil when unordered
	nodeBudget   int64 // max visited nodes per Detect; 0 = unlimited
	// Statistical pruning (§6.1 baseline): when statAlpha > 0 a node
	// at level l is also pruned against r² − statAlpha·l·statNoise,
	// sacrificing the ML guarantee for a smaller tree.
	statNoise float64
	statAlpha float64

	// Preallocated per-detection scratch, sized by Prepare.
	enums   []enumerator
	yhat    []complex128
	path    []int        // chosen point index per level
	pathSym []complex128 // chosen point per level
	base    []float64    // cumulative PED of the partial path above each level
	// Diagonal tables aliasing the attached PreparedChannel.
	rll2 []float64    // |R[l][l]|²
	rinv []complex128 // 1 / R[l][l]

	// Incremental projection stack (Ghasemmehdi & Agrell, "Faster
	// Projection in Sphere Decoding"): proj[p*nc+l] caches the partial
	// interference sum F[p][l] = ŷ_l − Σ_{j≥p} R[l][j]·s_j, and
	// projDepth[l] is the shallowest depth p at which the cached column
	// is still consistent with the current path (nc = nothing cached
	// beyond ŷ_l itself). Descending into level l extends the column
	// from projDepth[l] down to l+1 — terms above projDepth[l] are
	// reused, never recomputed — and assigning a symbol at level j
	// raises projDepth below it back to j+1. refProj disables the stack
	// and replays the pre-stack per-descend recomputation (ascending-j
	// subtraction order); the equivalence suite uses it as the
	// old-engine reference.
	proj      []complex128
	projDepth []int
	refProj   bool

	// ownPrep backs plain Prepare calls, so a standalone decoder gets
	// the same cached fast path as one attached to a link-layer pool.
	ownPrep PreparedChannel
}

var _ Detector = (*SphereDecoder)(nil)
var _ Counter = (*SphereDecoder)(nil)

func newSphereDecoder(name string, cons *constellation.Constellation, f enumeratorFactory) *SphereDecoder {
	return &SphereDecoder{name: name, cons: cons, factory: f}
}

// Name implements Detector.
func (d *SphereDecoder) Name() string { return d.name }

// Constellation implements Detector.
func (d *SphereDecoder) Constellation() *constellation.Constellation { return d.cons }

// Stats implements Counter, summing the per-level counters.
func (d *SphereDecoder) Stats() Stats {
	s := d.total
	for i := range d.levelStats {
		s.Add(d.levelStats[i])
	}
	return s
}

// LevelStats returns a copy of the per-level counters accumulated
// since the last reset. Index 0 is the bottom of the tree (the
// last-detected stream); the length is the prepared channel's stream
// count, nil before Prepare.
func (d *SphereDecoder) LevelStats() []Stats {
	if d.levelStats == nil {
		return nil
	}
	out := make([]Stats, len(d.levelStats))
	copy(out, d.levelStats)
	return out
}

// ResetStats implements Counter.
func (d *SphereDecoder) ResetStats() {
	d.total = Stats{}
	for i := range d.levelStats {
		d.levelStats[i] = Stats{}
	}
	for i := range d.prev {
		d.prev[i] = Stats{}
	}
}

// SetRecorder streams one obs.DetectSample per Detect call to r, with
// per-level node/PED/bound/prune counter deltas. A nil r (the
// default) turns recording off entirely; the hot path then pays one
// nil check per Detect. The recorder is canonicalized through
// obs.Fold, so obs.Nop (and an empty obs.Multi) collapse to nil and
// skip sample assembly too. The sample's Levels slice aliases decoder
// scratch and is only valid during the RecordDetect call.
func (d *SphereDecoder) SetRecorder(r obs.Recorder) {
	d.rec = obs.Fold(r)
}

var _ obs.Target = (*SphereDecoder)(nil)

// SetNodeBudget bounds the tree nodes visited per Detect call; when
// the budget is exhausted the decoder returns the best candidate found
// so far (the first candidate is the decision-feedback solution, found
// after nc nodes). Zero means unlimited — the exact maximum-likelihood
// configuration used everywhere in the paper's evaluation. Real-time
// receivers use a budget to bound worst-case latency; the simulator
// uses it for the very large (10×10) systems of Figure 13 where the
// hopeless operating points would otherwise dominate runtime without
// changing any conclusion.
func (d *SphereDecoder) SetNodeBudget(n int64) {
	if n < 0 {
		n = 0
	}
	d.nodeBudget = n
}

// Prepare triangularizes the channel (Equation 3) and sizes the
// per-level search state. It runs through the decoder's private
// PreparedChannel, so repeatedly preparing the same channel skips the
// QR entirely and re-preparing a same-shaped channel allocates
// nothing.
func (d *SphereDecoder) Prepare(h *cmplxmat.Matrix) error {
	_, err := d.PrepareShared(&d.ownPrep, h)
	return err
}

var _ SharedPreparer = (*SphereDecoder)(nil)

// PrepareShared implements SharedPreparer: identical to Prepare — same
// validation, bitwise-identical resulting state — but the channel
// derivation (QR, column ordering, diagonal tables) lives in pc and is
// reused when pc already holds this exact channel.
//
//geolint:noalloc
func (d *SphereDecoder) PrepareShared(pc *PreparedChannel, h *cmplxmat.Matrix) (bool, error) {
	if h == nil {
		return false, ErrNotPrepared
	}
	if h.Rows < h.Cols {
		//geolint:alloc-ok error path
		return false, fmt.Errorf("core: sphere decoder needs na ≥ nc, got %d×%d channel", h.Rows, h.Cols)
	}
	mode := prepModeQR
	if d.orderColumns {
		mode = prepModeOrderedQR
	}
	hit, err := pc.prepare(h, mode)
	if err != nil {
		return false, err
	}
	d.h = h
	d.qr = &pc.qr
	if mode == prepModeOrderedQR {
		d.perm = pc.perm
	} else {
		d.perm = nil
	}
	d.nc = h.Cols
	d.rll2 = pc.rll2
	d.rinv = pc.rinv
	d.sizeScratch(h.Cols)
	return hit, nil
}

// sizeScratch (re)sizes the per-level search state to nc tree levels.
// Same-size calls touch nothing but slice headers.
func (d *SphereDecoder) sizeScratch(nc int) {
	if cap(d.enums) < nc {
		// Counters survive re-preparation (a detector is Prepared once
		// per subcarrier and its Stats accumulate across the frame):
		// fold the outgoing per-level counts into the level-less bucket
		// before the arrays are replaced.
		d.total = d.Stats()
		// levelStats must be allocated before the enumerators: each
		// level's enumerator captures a pointer into its backing array,
		// which therefore stays stable until the enums are rebuilt.
		d.levelStats = make([]Stats, nc)
		d.prev = make([]Stats, nc)
		d.sampleBuf = make([]obs.LevelSample, nc)
		d.enums = make([]enumerator, nc)
		for l := range d.enums {
			d.enums[l] = d.factory(d.cons, &d.levelStats[l])
		}
		d.yhat = make([]complex128, nc)
		d.path = make([]int, nc)
		d.pathSym = make([]complex128, nc)
		d.base = make([]float64, nc)
		d.proj = make([]complex128, (nc+1)*nc)
		d.projDepth = make([]int, nc)
		return
	}
	// On shrink, fold the disappearing levels into the level-less
	// bucket and zero them, so Stats() keeps every past count and
	// nothing double-counts if the levels are re-extended later.
	for l := nc; l < len(d.levelStats); l++ {
		d.total.Add(d.levelStats[l])
		d.levelStats[l] = Stats{}
		d.prev[l] = Stats{}
	}
	d.enums = d.enums[:nc]
	d.levelStats = d.levelStats[:nc]
	d.prev = d.prev[:nc]
	d.sampleBuf = d.sampleBuf[:nc]
	d.yhat = d.yhat[:nc]
	d.path = d.path[:nc]
	d.pathSym = d.pathSym[:nc]
	d.base = d.base[:nc]
	d.proj = d.proj[:(nc+1)*nc]
	d.projDepth = d.projDepth[:nc]
}

// ytildeAt computes the interference-reduced, diagonally-normalized
// received value for level l given the partial path above it
// (Equation 8's ỹ_l). Level nc−1 is the top of the tree.
//
// The hot path serves it from the incremental projection stack: the
// cached partial sum for the unchanged prefix above projDepth[l] is
// reused and only the terms for symbols fixed since the column's last
// extension are subtracted (deepest first, so each intermediate sum is
// itself cacheable). refProj replays the original full recomputation
// in its original ascending-j order instead.
//
//geolint:noalloc
func (d *SphereDecoder) ytildeAt(l int) complex128 {
	if d.refProj {
		return d.ytildeRefAt(l)
	}
	nc := d.nc
	p := d.projDepth[l]
	d.levelStats[l].ProjReuse += int64(nc - p)
	row := d.qr.R.Row(l)
	f := d.proj[p*nc+l]
	for p > l+1 {
		p--
		f -= row[p] * d.pathSym[p]
		d.proj[p*nc+l] = f
	}
	d.projDepth[l] = l + 1
	return f * d.rinv[l]
}

// ytildeRefAt is the pre-projection-stack reference implementation:
// one full interference recomputation per descend, subtracting in
// ascending j. It is retained (behind refProj) so the equivalence
// suite can pin the stack-served engine's decisions against the exact
// arithmetic of the previous engine.
//
//geolint:noalloc
func (d *SphereDecoder) ytildeRefAt(l int) complex128 {
	s := d.yhat[l]
	row := d.qr.R.Row(l)
	for j := l + 1; j < d.nc; j++ {
		s -= row[j] * d.pathSym[j]
	}
	return s * d.rinv[l]
}

// Detect implements Detector: it returns the maximum-likelihood symbol
// vector (Equation 1) by depth-first tree search with the configured
// enumeration strategy and radius shrinking (§2.1).
//
// The steady-state path (non-nil dst, no errors) is allocation-free;
// TestDetectZeroAllocs pins it and the noalloc analyzer guards it.
//
//geolint:noalloc
func (d *SphereDecoder) Detect(dst []int, y []complex128) ([]int, error) {
	return d.search(dst, y, nil, math.Inf(1))
}

// DetectSeeded runs the same search as Detect but starts from a known
// candidate instead of an infinite sphere: seed is a full symbol path
// in QR-column (search) order — typically the sliced zero-forcing
// solution — and seedPED its exact squared residual ‖Q*y − R·seed‖².
// The seed is installed as the incumbent and seedPED as the initial
// squared radius, so the enumeration prunes against a noise-sized
// sphere from the very first node. Because the incumbent is only
// replaced by a strictly smaller distance, the decision equals
// Detect's for every input whose maximum-likelihood solution is unique
// (ties — a measure-zero event — may resolve to the seed instead).
// Detect itself is DetectSeeded with no seed and an infinite radius,
// bit for bit: the flagged infinite-radius search stays the
// bit-identity reference.
//
//geolint:noalloc
func (d *SphereDecoder) DetectSeeded(dst []int, y []complex128, seed []int, seedPED float64) ([]int, error) {
	if len(seed) != d.nc {
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("core: seed has %d entries, want %d", len(seed), d.nc)
	}
	return d.search(dst, y, seed, seedPED)
}

// search is the depth-first engine shared by Detect and DetectSeeded.
// With seed == nil and an infinite radius it is exactly the historical
// Detect body.
//
//geolint:noalloc
func (d *SphereDecoder) search(dst []int, y []complex128, seed []int, radius2 float64) ([]int, error) {
	if err := checkDims(d.h, y); err != nil {
		return nil, err
	}
	if dst == nil {
		dst = make([]int, d.nc) //geolint:alloc-ok one-time convenience path; steady state passes dst
	} else if len(dst) != d.nc {
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("core: dst has %d entries, want %d", len(dst), d.nc)
	}
	d.qr.ApplyQConjT(d.yhat, y)
	top := d.nc - 1
	if !d.refProj {
		// Reset the projection stack: depth nc holds ŷ itself and
		// nothing deeper is cached yet.
		row := d.proj[d.nc*d.nc:]
		for l := 0; l <= top; l++ {
			row[l] = d.yhat[l]
			d.projDepth[l] = d.nc
		}
	}
	d.base[top] = 0
	d.enums[top].init(d.ytildeAt(top), 0, d.rll2[top])
	level := top
	found := false
	if seed != nil {
		// The seed is the incumbent: any candidate the search keeps must
		// strictly beat it, exactly as if the search itself had reached
		// this leaf first.
		copy(dst, seed)
		found = true
	}
	var visited int64

	for {
		if d.nodeBudget > 0 && visited >= d.nodeBudget && found {
			break
		}
		// Statistical pruning tightens the effective radius by the
		// noise the remaining levels are expected to absorb.
		effRadius := radius2
		if d.statAlpha > 0 {
			slack := d.statAlpha * float64(level) * d.statNoise
			if effRadius > slack {
				effRadius -= slack
			}
		}
		idx, ped, ok := d.enums[level].next(effRadius)
		if !ok || ped >= effRadius {
			// Every remaining child of this node lies outside the
			// sphere: backtrack (Schnorr-Euchner sibling pruning).
			d.levelStats[level].Prunes++
			level++
			if level > top {
				break
			}
			continue
		}
		d.levelStats[level].VisitedNodes++
		visited++
		d.path[level] = idx
		d.pathSym[level] = d.cons.PointIndex(idx)
		if !d.refProj {
			// The symbol at this level changed: cached partial sums
			// that included it are stale for every column below.
			for l := 0; l < level; l++ {
				if d.projDepth[l] <= level {
					d.projDepth[l] = level + 1
				}
			}
		}
		if level == 0 {
			// Leaf: tighten the sphere radius and record the best
			// candidate so far, then keep scanning siblings.
			d.levelStats[0].Leaves++
			radius2 = ped
			copy(dst, d.path)
			found = true
			continue
		}
		// Descend.
		level--
		d.base[level] = ped
		d.enums[level].init(d.ytildeAt(level), ped, d.rll2[level])
	}
	d.total.Detections++
	if !found {
		// Cannot happen with an infinite initial radius and a
		// full-rank channel, but guard against enumerator bugs.
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("core: %s found no candidate inside the sphere", d.name)
	}
	if d.perm != nil {
		// Undo the column reordering: QR column i is stream perm[i].
		copy(d.path, dst)
		for i, stream := range d.perm {
			dst[stream] = d.path[i]
		}
	}
	if d.rec != nil {
		d.emitDetect()
	}
	return dst, nil
}

// emitDetect streams this Detect call's per-level counter deltas to
// the recorder. All state lives in preallocated decoder scratch, so
// the instrumented hot path stays allocation-free.
//
//geolint:noalloc
func (d *SphereDecoder) emitDetect() {
	if d.rec == nil {
		return
	}
	for l := 0; l < d.nc; l++ {
		cur := d.levelStats[l]
		prev := d.prev[l]
		d.sampleBuf[l] = obs.LevelSample{
			Nodes:       cur.VisitedNodes - prev.VisitedNodes,
			PEDCalcs:    cur.PEDCalcs - prev.PEDCalcs,
			BoundChecks: cur.BoundChecks - prev.BoundChecks,
			Prunes:      cur.Prunes - prev.Prunes,
		}
		d.prev[l] = cur
	}
	d.rec.RecordDetect(obs.DetectSample{Detector: d.name, Levels: d.sampleBuf[:d.nc]})
}
