package core

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
)

// prepMode identifies which derivation of the channel matrix a
// PreparedChannel holds. Detectors that share a derivation (the
// unordered sphere decoders and the soft decoder both consume the
// plain thin QR of H) can share one cached PreparedChannel; a mode
// mismatch simply refills the cache.
type prepMode uint8

const (
	prepModeNone      prepMode = iota // empty / invalidated
	prepModeQR                        // thin QR of H itself
	prepModeOrderedQR                 // QR of column-energy-ordered H, with perm
	prepModeRVD                       // QR of the 2na×2nc real embedding of H
)

// PreparedChannel caches everything a detector's Prepare derives from
// one channel matrix: the QR factorization (with its reusable
// workspace), the column permutation when ordering is on, and the
// diagonal tables (|R[l][l]|² and 1/R[l][l]) the tree search consumes.
//
// A PreparedChannel is filled on the first PrepareShared against a
// channel and then revalidated by an exact elementwise comparison of
// the incoming matrix with the cached copy: a fingerprint or pointer
// check alone cannot guarantee the byte-identical results the golden
// regression suite pins (hashes collide; callers may redraw into the
// same matrix object), whereas the exact compare early-outs on the
// first differing element for genuinely new channels and costs only
// na·nc equality tests on a hit — far less than one Householder
// reflection. Epoch counts refills, and Fingerprint exposes an FNV-1a
// hash of the cached bits for cross-checks in tests and tooling.
//
// A zero PreparedChannel is ready to use. The struct is not safe for
// concurrent use; the link layer keeps one pool per worker.
type PreparedChannel struct {
	hcopy *cmplxmat.Matrix // private copy of the last-prepared channel
	fp    uint64           // FNV-1a over hcopy's float bits
	mode  prepMode
	epoch uint64 // refill count; 0 means never filled

	qr   cmplxmat.QR      // factorization + its workspace
	perm []int            // QR column → original stream, ordered mode only
	rll2 []float64        // |R[l][l]|² per tree level
	rinv []complex128     // 1/R[l][l] per tree level
	hq   *cmplxmat.Matrix // derived QR input (permuted copy / real embedding)

	// kappa2 is the diagonal condition estimate κ̂² = max|R[l][l]|² /
	// min|R[l][l]|², derived for free from the diagonal tables whenever
	// they are (re)built. It lower-bounds the true κ²(H) (the singular
	// values interlace the R diagonal), which makes it a cheap
	// per-subcarrier difficulty signal: no SVD, no Cond2, no extra
	// arithmetic on the hot path.
	kappa2 float64

	energy []float64 // column-energy scratch for the ordering pass

	// Zero-forcing filter side-cache: zfw is the cached pseudo-inverse
	// of zfcopy. It lives beside the QR derivations rather than in the
	// mode machinery, so a group alternating between a sphere tier and
	// the ZF tier — the serving layer's degradation ladder does exactly
	// that — thrashes neither cache.
	zfw    *cmplxmat.Matrix
	zfcopy *cmplxmat.Matrix

	// Incremental re-preparation (opt-in via SetIncremental): a miss
	// whose cached channel has the same shape and mode and has only
	// drifted slightly is absorbed by per-column rank-1 QR updates
	// instead of a full refactorization. updates counts incremental
	// refills, chain the consecutive ones since the last full
	// factorization — capped so accumulated rotation roundoff is
	// periodically squeezed back out by a fresh decomposition.
	incremental bool
	updates     uint64
	chain       int
	ucol        []complex128 // rank-1 update column scratch
	ucol2       []complex128 // second embedding column, RVD mode
	vcol        []complex128 // one-hot right factor scratch
	permScratch []int        // reordering probe, ordered mode
}

// maxUpdateChain bounds consecutive rank-1 re-preparations between
// full factorizations, keeping accumulated Givens roundoff far below
// detection-relevant scales while still amortizing nearly every
// refactorization of a drifting channel.
const maxUpdateChain = 64

// qrUpdateMaxDrift is the relative Frobenius drift above which an
// incremental re-preparation falls back to a full factorization: past
// it the channel is not "slowly drifting" and the rank-1 chain loses
// both its speed and its accuracy advantage.
const qrUpdateMaxDrift = 0.25

// SetIncremental toggles the incremental re-preparation path. Off (the
// default) every miss refactorizes from scratch, preserving the
// bit-identical refill semantics the golden suite pins; on, a
// same-shape slowly-drifted miss is absorbed by rank-1 QR updates.
func (pc *PreparedChannel) SetIncremental(on bool) { pc.incremental = on }

// Updates returns the number of incremental (rank-1 QR update)
// re-preparations performed since the PreparedChannel was created.
func (pc *PreparedChannel) Updates() uint64 { return pc.updates }

// Epoch returns the number of times this cache has been (re)filled;
// zero means it has never held a channel.
func (pc *PreparedChannel) Epoch() uint64 { return pc.epoch }

// Fingerprint returns the FNV-1a hash over the cached channel's float
// bits, or zero when the cache is empty. Two refills with the same
// channel produce the same fingerprint; it identifies cache contents
// in logs and tests but is never used as the hit criterion.
func (pc *PreparedChannel) Fingerprint() uint64 { return pc.fp }

// Kappa2 returns the cached diagonal condition estimate κ̂² =
// max|R[l][l]|²/min|R[l][l]|² of the prepared channel, or zero when the
// cache is empty. It is computed as a byproduct of the diagonal tables
// at preparation time, so reading it costs nothing — the point of
// caching it here is that the serving layer and the adaptive scheduler
// never call the SVD-based metrics.Kappa2dB per frame. κ̂² lower-bounds
// the true κ²(H); it is a scheduling signal, not a bound certificate.
func (pc *PreparedChannel) Kappa2() float64 { return pc.kappa2 }

// Kappa2dB returns Kappa2 in decibels (the paper's Figure 9 scale), or
// NaN when the cache is empty.
func (pc *PreparedChannel) Kappa2dB() float64 {
	if pc.kappa2 <= 0 {
		return math.NaN()
	}
	return 10 * math.Log10(pc.kappa2)
}

// QRFactors returns the cached factorization, valid until the next
// refill. Callers must treat it as read-only.
func (pc *PreparedChannel) QRFactors() *cmplxmat.QR { return &pc.qr }

// Perm returns the QR-column → original-stream permutation of the
// ordered mode, nil otherwise. The slice aliases cache state.
func (pc *PreparedChannel) Perm() []int {
	if pc.mode != prepModeOrderedQR {
		return nil
	}
	return pc.perm
}

// DiagTables returns the cached per-level diagonal tables |R[l][l]|²
// and 1/R[l][l]. Both slices alias cache state and are read-only.
func (pc *PreparedChannel) DiagTables() (rll2 []float64, rinv []complex128) {
	return pc.rll2, pc.rinv
}

// matches reports whether the cache already holds the derivation of h
// for mode: same mode, same shape, elementwise-identical contents.
//
//geolint:noalloc
func (pc *PreparedChannel) matches(h *cmplxmat.Matrix, mode prepMode) bool {
	if pc.epoch == 0 || pc.mode != mode || pc.hcopy == nil {
		return false
	}
	if pc.hcopy.Rows != h.Rows || pc.hcopy.Cols != h.Cols {
		return false
	}
	for i, v := range pc.hcopy.Data {
		if v != h.Data[i] { //geolint:float-ok exact cache-identity test: a hit must guarantee bit-identical prepared state, so only exact equality qualifies
			return false
		}
	}
	return true
}

// fill (re)derives the cached state from h for mode. On error the
// cache is left invalidated so a later matches cannot report a stale
// hit.
//
//geolint:noalloc
func (pc *PreparedChannel) fill(h *cmplxmat.Matrix, mode prepMode) error {
	pc.mode = prepModeNone
	na, nc := h.Rows, h.Cols
	if pc.hcopy == nil || pc.hcopy.Rows != na || pc.hcopy.Cols != nc {
		pc.hcopy = cmplxmat.New(na, nc)
	}
	copy(pc.hcopy.Data, h.Data)
	pc.fp = fingerprint(pc.hcopy)

	// Build the QR input. The plain mode factorizes the cached copy
	// directly (same bits as the caller's matrix, so the factors are
	// bitwise those of QRDecompose(h)); the other modes derive it into
	// a cache-owned workspace matrix.
	hq := pc.hcopy
	levels := nc
	switch mode {
	case prepModeOrderedQR:
		if cap(pc.perm) < nc {
			pc.perm = make([]int, nc) //geolint:alloc-ok first use or reshape only
		}
		pc.perm = pc.perm[:nc]
		if cap(pc.energy) < nc {
			pc.energy = make([]float64, nc) //geolint:alloc-ok first use or reshape only
		}
		columnOrderInto(pc.perm, pc.energy[:nc], h)
		if pc.hq == nil || pc.hq.Rows != na || pc.hq.Cols != nc {
			pc.hq = cmplxmat.New(na, nc)
		}
		permuteColumnsInto(pc.hq, h, pc.perm)
		hq = pc.hq
	case prepModeRVD:
		if pc.hq == nil || pc.hq.Rows != 2*na || pc.hq.Cols != 2*nc {
			pc.hq = cmplxmat.New(2*na, 2*nc)
		}
		embedReal(pc.hq, h)
		hq = pc.hq
		levels = 2 * nc
	default:
		pc.perm = pc.perm[:0]
	}

	cmplxmat.QRDecomposeInto(&pc.qr, hq)

	if err := pc.rebuildDiagTables(levels); err != nil {
		return err
	}
	pc.mode = mode
	pc.epoch++
	pc.chain = 0
	return nil
}

// rebuildDiagTables re-derives the |R[l][l]|² and 1/R[l][l] tables the
// tree search consumes from the current factorization, reporting rank
// deficiency as an error.
//
//geolint:noalloc
func (pc *PreparedChannel) rebuildDiagTables(levels int) error {
	if cap(pc.rll2) < levels {
		pc.rll2 = make([]float64, levels)    //geolint:alloc-ok first use or reshape only
		pc.rinv = make([]complex128, levels) //geolint:alloc-ok first use or reshape only
	}
	pc.rll2 = pc.rll2[:levels]
	pc.rinv = pc.rinv[:levels]
	for l := 0; l < levels; l++ {
		rll := pc.qr.R.At(l, l)
		mag2 := real(rll)*real(rll) + imag(rll)*imag(rll)
		if mag2 == 0 { //geolint:float-ok exact-zero test for rank deficiency, not a tolerance comparison
			//geolint:alloc-ok error path
			return fmt.Errorf("core: rank-deficient channel (zero R[%d][%d]): %w", l, l, cmplxmat.ErrSingular)
		}
		pc.rll2[l] = mag2
		pc.rinv[l] = 1 / rll
	}
	// κ̂² rides along for free: the extremes of the diagonal just built.
	minR2, maxR2 := pc.rll2[0], pc.rll2[0]
	for _, m2 := range pc.rll2[1:] {
		if m2 < minR2 {
			minR2 = m2
		}
		if m2 > maxR2 {
			maxR2 = m2
		}
	}
	pc.kappa2 = maxR2 / minR2
	return nil
}

// tryUpdate attempts to absorb a cache miss by rank-1 QR updates: when
// the cached channel has the same shape and mode and the incoming one
// is a small drift of it, each changed column contributes a rank-1
// correction (two for the real embedding, whose columns pair up per
// complex column) applied with cmplxmat.QRUpdateInto in O(mn+n²)
// instead of the O(mn²) full refactorization. Returns false whenever a
// full fill is required — too much drift, a changed detection order,
// an exhausted update chain, or a (near-)rank-deficient result — and
// in that case may leave the cached state partially mutated; the
// caller must follow up with fill, which rederives everything from h.
//
//geolint:noalloc
func (pc *PreparedChannel) tryUpdate(h *cmplxmat.Matrix, mode prepMode) bool {
	if pc.epoch == 0 || pc.mode != mode || pc.hcopy == nil || pc.chain >= maxUpdateChain {
		return false
	}
	if pc.hcopy.Rows != h.Rows || pc.hcopy.Cols != h.Cols {
		return false
	}
	na, nc := h.Rows, h.Cols

	// Drift gate: rank-1 chains only beat refactorization — in time and
	// in accumulated roundoff — while the channel is slowly drifting.
	var drift2, norm2 float64
	for i, v := range pc.hcopy.Data {
		d := h.Data[i] - v
		drift2 += real(d)*real(d) + imag(d)*imag(d)
		norm2 += real(v)*real(v) + imag(v)*imag(v)
	}
	if norm2 == 0 || drift2 > qrUpdateMaxDrift*qrUpdateMaxDrift*norm2 { //geolint:float-ok drift-gate threshold, an explicit policy comparison
		return false
	}

	rows, levels := na, nc
	if mode == prepModeRVD {
		rows, levels = 2*na, 2*nc
	}
	if cap(pc.ucol) < rows || cap(pc.vcol) < levels || cap(pc.permScratch) < nc {
		pc.ucol = make([]complex128, rows)   //geolint:alloc-ok first use or reshape only
		pc.ucol2 = make([]complex128, rows)  //geolint:alloc-ok first use or reshape only
		pc.vcol = make([]complex128, levels) //geolint:alloc-ok first use or reshape only
		pc.permScratch = make([]int, nc)     //geolint:alloc-ok first use or reshape only
	}
	pc.ucol = pc.ucol[:rows]
	pc.ucol2 = pc.ucol2[:rows]
	pc.vcol = pc.vcol[:levels]
	for i := range pc.vcol {
		pc.vcol[i] = 0
	}

	if mode == prepModeOrderedQR {
		// The update only preserves the cached derivation when the
		// column-energy ordering is unchanged; a reordering permutes the
		// QR input wholesale and needs a fresh factorization.
		pc.permScratch = pc.permScratch[:nc]
		if cap(pc.energy) < nc {
			pc.energy = make([]float64, nc) //geolint:alloc-ok first use or reshape only
		}
		columnOrderInto(pc.permScratch, pc.energy[:nc], h)
		for i, p := range pc.permScratch {
			if pc.perm[i] != p {
				return false
			}
		}
	}

	for c := 0; c < nc; c++ {
		changed := false
		for r := 0; r < na; r++ {
			if h.At(r, c) != pc.hcopy.At(r, c) { //geolint:float-ok exact change detection: unchanged columns must contribute exactly nothing
				changed = true
				break
			}
		}
		if !changed {
			continue
		}
		switch mode {
		case prepModeRVD:
			// Complex column c spans embedding columns c (its real part
			// stacked over its imaginary part) and c+nc (−imag over
			// real): one drifted complex column is two rank-1 updates.
			for r := 0; r < na; r++ {
				d := h.At(r, c) - pc.hcopy.At(r, c)
				pc.ucol[r] = complex(real(d), 0)
				pc.ucol[r+na] = complex(imag(d), 0)
				pc.ucol2[r] = complex(-imag(d), 0)
				pc.ucol2[r+na] = complex(real(d), 0)
			}
			pc.vcol[c] = 1
			cmplxmat.QRUpdateInto(&pc.qr, pc.ucol, pc.vcol)
			pc.vcol[c] = 0
			pc.vcol[c+nc] = 1
			cmplxmat.QRUpdateInto(&pc.qr, pc.ucol2, pc.vcol)
			pc.vcol[c+nc] = 0
			for r := 0; r < na; r++ {
				v := h.At(r, c)
				pc.hq.Set(r, c, complex(real(v), 0))
				pc.hq.Set(r, c+nc, complex(-imag(v), 0))
				pc.hq.Set(r+na, c, complex(imag(v), 0))
				pc.hq.Set(r+na, c+nc, complex(real(v), 0))
			}
		case prepModeOrderedQR:
			j := 0 // QR input column holding stream c under the ordering
			for ; j < nc; j++ {
				if pc.perm[j] == c {
					break
				}
			}
			for r := 0; r < na; r++ {
				pc.ucol[r] = h.At(r, c) - pc.hcopy.At(r, c)
			}
			pc.vcol[j] = 1
			cmplxmat.QRUpdateInto(&pc.qr, pc.ucol, pc.vcol)
			pc.vcol[j] = 0
			for r := 0; r < na; r++ {
				pc.hq.Set(r, j, h.At(r, c))
			}
		default: // prepModeQR: the QR input is the cached copy itself
			for r := 0; r < na; r++ {
				pc.ucol[r] = h.At(r, c) - pc.hcopy.At(r, c)
			}
			pc.vcol[c] = 1
			cmplxmat.QRUpdateInto(&pc.qr, pc.ucol, pc.vcol)
			pc.vcol[c] = 0
		}
	}

	copy(pc.hcopy.Data, h.Data)
	pc.fp = fingerprint(pc.hcopy)
	if err := pc.rebuildDiagTables(levels); err != nil {
		// Updated factors went (numerically) rank deficient; hand the
		// channel to the full path, which overwrites everything anyway.
		pc.mode = prepModeNone
		return false
	}
	pc.epoch++
	pc.updates++
	pc.chain++
	return true
}

// prepare is the shared fast-path/refill sequence every SharedPreparer
// runs: revalidate the cache against h, absorb a slowly-drifted miss
// with rank-1 QR updates when the incremental path is enabled, and
// fall back to a full refill otherwise.
//
//geolint:noalloc
func (pc *PreparedChannel) prepare(h *cmplxmat.Matrix, mode prepMode) (bool, error) {
	if pc.matches(h, mode) {
		return true, nil
	}
	if pc.incremental && pc.tryUpdate(h, mode) {
		return false, nil
	}
	return false, pc.fill(h, mode)
}

// PrepareQR revalidates-or-fills the cache with the plain thin QR of h
// and reports whether the cached derivation was reused. It is the
// exported entry for detectors outside this package (K-best) that
// implement SharedPreparer against the same plain-QR derivation the
// unordered sphere decoders cache — sharing it means a group whose
// frames alternate between those tiers never pays a second
// factorization.
//
//geolint:noalloc
func (pc *PreparedChannel) PrepareQR(h *cmplxmat.Matrix) (bool, error) {
	return pc.prepare(h, prepModeQR)
}

// PrepareZF returns the zero-forcing (pseudo-inverse) filter of h,
// served from the side-cache when h matches the filter's source copy
// exactly and rederived — bitwise h.PseudoInverse() — otherwise. The
// returned matrix is cache-owned and read-only. hit reports reuse.
func (pc *PreparedChannel) PrepareZF(h *cmplxmat.Matrix) (w *cmplxmat.Matrix, hit bool, err error) {
	if h == nil {
		return nil, false, ErrNotPrepared
	}
	if pc.zfw != nil && pc.zfcopy.Rows == h.Rows && pc.zfcopy.Cols == h.Cols {
		same := true
		for i, v := range pc.zfcopy.Data {
			if v != h.Data[i] { //geolint:float-ok exact cache-identity test: a hit must guarantee the bitwise-identical filter, so only exact equality qualifies
				same = false
				break
			}
		}
		if same {
			return pc.zfw, true, nil
		}
	}
	w, err = h.PseudoInverse()
	if err != nil {
		return nil, false, err
	}
	if pc.zfcopy == nil || pc.zfcopy.Rows != h.Rows || pc.zfcopy.Cols != h.Cols {
		pc.zfcopy = cmplxmat.New(h.Rows, h.Cols)
	}
	copy(pc.zfcopy.Data, h.Data)
	pc.zfw = w
	return w, false, nil
}

// fingerprint hashes a matrix's float bits with FNV-1a.
//
//geolint:noalloc
func fingerprint(m *cmplxmat.Matrix) uint64 {
	const offset64 = 14695981039346656037
	h := uint64(offset64)
	for _, v := range m.Data {
		h = fnvMix(h, math.Float64bits(real(v)))
		h = fnvMix(h, math.Float64bits(imag(v)))
	}
	return h
}

// fnvMix folds one 64-bit word into an FNV-1a state byte by byte.
//
//geolint:noalloc
func fnvMix(h, bits uint64) uint64 {
	const prime64 = 1099511628211
	for s := 0; s < 64; s += 8 {
		h ^= (bits >> s) & 0xff
		h *= prime64
	}
	return h
}

// SharedPreparer is implemented by detectors whose Prepare can attach
// to an externally cached PreparedChannel instead of rederiving the
// channel state. PrepareShared behaves exactly like Prepare — same
// validation, same resulting detector state bit for bit — but consults
// pc first: on a hit (pc already holds this channel's derivation) the
// factorization, ordering and table construction are all skipped.
//
// The hit return value reports whether the cache was reused; it feeds
// the hit/miss counters the observability layer publishes and is never
// allowed to influence detection results.
type SharedPreparer interface {
	Detector
	PrepareShared(pc *PreparedChannel, h *cmplxmat.Matrix) (hit bool, err error)
}

// PrepPool holds one PreparedChannel per slot — one per OFDM data
// subcarrier in the link pipeline — so a worker's detector re-prepares
// each subcarrier only when that subcarrier's channel actually
// changes. It is not safe for concurrent use: every pipeline worker
// owns its own pool.
type PrepPool struct {
	pcs          []PreparedChannel
	hits, misses uint64
	qrUpdates    uint64
}

// NewPrepPool returns a pool with `slots` empty cache entries.
func NewPrepPool(slots int) *PrepPool {
	if slots <= 0 {
		panic(fmt.Sprintf("core: PrepPool needs at least one slot, got %d", slots))
	}
	return &PrepPool{pcs: make([]PreparedChannel, slots)}
}

// Slots returns the number of cache entries.
func (p *PrepPool) Slots() int { return len(p.pcs) }

// Prepare prepares det for h using slot's cache when det supports
// shared preparation, falling back to det.Prepare otherwise (linear
// detectors, K-best, the hybrid switch). Out-of-range slots also fall
// back rather than panic, so callers with odd geometries degrade to
// the uncached behavior.
//
//geolint:noalloc
func (p *PrepPool) Prepare(det Detector, slot int, h *cmplxmat.Matrix) error {
	if sp, ok := det.(SharedPreparer); ok && slot >= 0 && slot < len(p.pcs) {
		pc := &p.pcs[slot]
		before := pc.updates
		hit, err := sp.PrepareShared(pc, h)
		if err != nil {
			return err
		}
		switch {
		case hit:
			p.hits++
		case pc.updates != before:
			p.qrUpdates++
		default:
			p.misses++
		}
		return nil
	}
	p.misses++
	return det.Prepare(h)
}

// Counters returns the cumulative cache hit and miss counts. A miss
// absorbed by the incremental QR-update path counts as neither; it is
// reported separately by QRUpdates.
func (p *PrepPool) Counters() (hits, misses uint64) { return p.hits, p.misses }

// QRUpdates returns the number of cache misses that were absorbed by
// rank-1 QR updates instead of full refactorizations. Always zero
// unless SetIncremental(true) has been called.
func (p *PrepPool) QRUpdates() uint64 { return p.qrUpdates }

// SetIncremental toggles the incremental re-preparation path on every
// slot in the pool. See PreparedChannel.SetIncremental.
func (p *PrepPool) SetIncremental(on bool) {
	for i := range p.pcs {
		p.pcs[i].SetIncremental(on)
	}
}

// AppendKappa2dB appends the cached diagonal condition estimate (in
// dB) of every filled slot to dst and returns it. Empty slots (never
// prepared through a SharedPreparer) are skipped, so on the batched
// link path the result holds one value per data subcarrier. The caller
// reuses dst across frames to keep the observability path
// allocation-free.
//
//geolint:noalloc
func (p *PrepPool) AppendKappa2dB(dst []float64) []float64 {
	for i := range p.pcs {
		if p.pcs[i].epoch == 0 {
			continue
		}
		dst = append(dst, p.pcs[i].Kappa2dB()) //geolint:alloc-ok caller presizes dst; growth only on first frame
	}
	return dst
}

// MeanKappa2dB returns the mean cached condition estimate (in dB)
// across the pool's filled slots, or NaN when no slot has been filled
// yet. The serving layer uses it as a per-group conditioning summary —
// read from state the first processed frame already built, never
// recomputed.
//
//geolint:noalloc
func (p *PrepPool) MeanKappa2dB() float64 {
	var sum float64
	n := 0
	for i := range p.pcs {
		if p.pcs[i].epoch == 0 {
			continue
		}
		sum += p.pcs[i].Kappa2dB()
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// embedReal writes the real-valued decomposition of h into dst
// (2na×2nc, imaginary parts identically zero):
//
//	[Re H, −Im H; Im H, Re H]
//
//geolint:noalloc
func embedReal(dst, h *cmplxmat.Matrix) {
	na, nc := h.Rows, h.Cols
	for r := 0; r < na; r++ {
		for c := 0; c < nc; c++ {
			v := h.At(r, c)
			dst.Set(r, c, complex(real(v), 0))
			dst.Set(r, c+nc, complex(-imag(v), 0))
			dst.Set(r+na, c, complex(imag(v), 0))
			dst.Set(r+na, c+nc, complex(real(v), 0))
		}
	}
}
