package core

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
)

// prepMode identifies which derivation of the channel matrix a
// PreparedChannel holds. Detectors that share a derivation (the
// unordered sphere decoders and the soft decoder both consume the
// plain thin QR of H) can share one cached PreparedChannel; a mode
// mismatch simply refills the cache.
type prepMode uint8

const (
	prepModeNone      prepMode = iota // empty / invalidated
	prepModeQR                        // thin QR of H itself
	prepModeOrderedQR                 // QR of column-energy-ordered H, with perm
	prepModeRVD                       // QR of the 2na×2nc real embedding of H
)

// PreparedChannel caches everything a detector's Prepare derives from
// one channel matrix: the QR factorization (with its reusable
// workspace), the column permutation when ordering is on, and the
// diagonal tables (|R[l][l]|² and 1/R[l][l]) the tree search consumes.
//
// A PreparedChannel is filled on the first PrepareShared against a
// channel and then revalidated by an exact elementwise comparison of
// the incoming matrix with the cached copy: a fingerprint or pointer
// check alone cannot guarantee the byte-identical results the golden
// regression suite pins (hashes collide; callers may redraw into the
// same matrix object), whereas the exact compare early-outs on the
// first differing element for genuinely new channels and costs only
// na·nc equality tests on a hit — far less than one Householder
// reflection. Epoch counts refills, and Fingerprint exposes an FNV-1a
// hash of the cached bits for cross-checks in tests and tooling.
//
// A zero PreparedChannel is ready to use. The struct is not safe for
// concurrent use; the link layer keeps one pool per worker.
type PreparedChannel struct {
	hcopy *cmplxmat.Matrix // private copy of the last-prepared channel
	fp    uint64           // FNV-1a over hcopy's float bits
	mode  prepMode
	epoch uint64 // refill count; 0 means never filled

	qr   cmplxmat.QR      // factorization + its workspace
	perm []int            // QR column → original stream, ordered mode only
	rll2 []float64        // |R[l][l]|² per tree level
	rinv []complex128     // 1/R[l][l] per tree level
	hq   *cmplxmat.Matrix // derived QR input (permuted copy / real embedding)

	energy []float64 // column-energy scratch for the ordering pass
}

// Epoch returns the number of times this cache has been (re)filled;
// zero means it has never held a channel.
func (pc *PreparedChannel) Epoch() uint64 { return pc.epoch }

// Fingerprint returns the FNV-1a hash over the cached channel's float
// bits, or zero when the cache is empty. Two refills with the same
// channel produce the same fingerprint; it identifies cache contents
// in logs and tests but is never used as the hit criterion.
func (pc *PreparedChannel) Fingerprint() uint64 { return pc.fp }

// matches reports whether the cache already holds the derivation of h
// for mode: same mode, same shape, elementwise-identical contents.
//
//geolint:noalloc
func (pc *PreparedChannel) matches(h *cmplxmat.Matrix, mode prepMode) bool {
	if pc.epoch == 0 || pc.mode != mode || pc.hcopy == nil {
		return false
	}
	if pc.hcopy.Rows != h.Rows || pc.hcopy.Cols != h.Cols {
		return false
	}
	for i, v := range pc.hcopy.Data {
		if v != h.Data[i] { //geolint:float-ok exact cache-identity test: a hit must guarantee bit-identical prepared state, so only exact equality qualifies
			return false
		}
	}
	return true
}

// fill (re)derives the cached state from h for mode. On error the
// cache is left invalidated so a later matches cannot report a stale
// hit.
//
//geolint:noalloc
func (pc *PreparedChannel) fill(h *cmplxmat.Matrix, mode prepMode) error {
	pc.mode = prepModeNone
	na, nc := h.Rows, h.Cols
	if pc.hcopy == nil || pc.hcopy.Rows != na || pc.hcopy.Cols != nc {
		pc.hcopy = cmplxmat.New(na, nc) //geolint:alloc-ok first use or reshape only
	}
	copy(pc.hcopy.Data, h.Data)
	pc.fp = fingerprint(pc.hcopy)

	// Build the QR input. The plain mode factorizes the cached copy
	// directly (same bits as the caller's matrix, so the factors are
	// bitwise those of QRDecompose(h)); the other modes derive it into
	// a cache-owned workspace matrix.
	hq := pc.hcopy
	levels := nc
	switch mode {
	case prepModeOrderedQR:
		if cap(pc.perm) < nc {
			pc.perm = make([]int, nc) //geolint:alloc-ok first use or reshape only
		}
		pc.perm = pc.perm[:nc]
		if cap(pc.energy) < nc {
			pc.energy = make([]float64, nc) //geolint:alloc-ok first use or reshape only
		}
		columnOrderInto(pc.perm, pc.energy[:nc], h)
		if pc.hq == nil || pc.hq.Rows != na || pc.hq.Cols != nc {
			pc.hq = cmplxmat.New(na, nc) //geolint:alloc-ok first use or reshape only
		}
		permuteColumnsInto(pc.hq, h, pc.perm)
		hq = pc.hq
	case prepModeRVD:
		if pc.hq == nil || pc.hq.Rows != 2*na || pc.hq.Cols != 2*nc {
			pc.hq = cmplxmat.New(2*na, 2*nc) //geolint:alloc-ok first use or reshape only
		}
		embedReal(pc.hq, h)
		hq = pc.hq
		levels = 2 * nc
	default:
		pc.perm = pc.perm[:0]
	}

	cmplxmat.QRDecomposeInto(&pc.qr, hq)

	if cap(pc.rll2) < levels {
		pc.rll2 = make([]float64, levels)    //geolint:alloc-ok first use or reshape only
		pc.rinv = make([]complex128, levels) //geolint:alloc-ok first use or reshape only
	}
	pc.rll2 = pc.rll2[:levels]
	pc.rinv = pc.rinv[:levels]
	for l := 0; l < levels; l++ {
		rll := pc.qr.R.At(l, l)
		mag2 := real(rll)*real(rll) + imag(rll)*imag(rll)
		if mag2 == 0 { //geolint:float-ok exact-zero test for rank deficiency, not a tolerance comparison
			//geolint:alloc-ok error path
			return fmt.Errorf("core: rank-deficient channel (zero R[%d][%d]): %w", l, l, cmplxmat.ErrSingular)
		}
		pc.rll2[l] = mag2
		pc.rinv[l] = 1 / rll
	}
	pc.mode = mode
	pc.epoch++
	return nil
}

// prepare is the shared fast-path/refill sequence every SharedPreparer
// runs: revalidate the cache against h and refill on a miss.
//
//geolint:noalloc
func (pc *PreparedChannel) prepare(h *cmplxmat.Matrix, mode prepMode) (bool, error) {
	if pc.matches(h, mode) {
		return true, nil
	}
	return false, pc.fill(h, mode)
}

// fingerprint hashes a matrix's float bits with FNV-1a.
//
//geolint:noalloc
func fingerprint(m *cmplxmat.Matrix) uint64 {
	const offset64 = 14695981039346656037
	h := uint64(offset64)
	for _, v := range m.Data {
		h = fnvMix(h, math.Float64bits(real(v)))
		h = fnvMix(h, math.Float64bits(imag(v)))
	}
	return h
}

// fnvMix folds one 64-bit word into an FNV-1a state byte by byte.
//
//geolint:noalloc
func fnvMix(h, bits uint64) uint64 {
	const prime64 = 1099511628211
	for s := 0; s < 64; s += 8 {
		h ^= (bits >> s) & 0xff
		h *= prime64
	}
	return h
}

// SharedPreparer is implemented by detectors whose Prepare can attach
// to an externally cached PreparedChannel instead of rederiving the
// channel state. PrepareShared behaves exactly like Prepare — same
// validation, same resulting detector state bit for bit — but consults
// pc first: on a hit (pc already holds this channel's derivation) the
// factorization, ordering and table construction are all skipped.
//
// The hit return value reports whether the cache was reused; it feeds
// the hit/miss counters the observability layer publishes and is never
// allowed to influence detection results.
type SharedPreparer interface {
	Detector
	PrepareShared(pc *PreparedChannel, h *cmplxmat.Matrix) (hit bool, err error)
}

// PrepPool holds one PreparedChannel per slot — one per OFDM data
// subcarrier in the link pipeline — so a worker's detector re-prepares
// each subcarrier only when that subcarrier's channel actually
// changes. It is not safe for concurrent use: every pipeline worker
// owns its own pool.
type PrepPool struct {
	pcs          []PreparedChannel
	hits, misses uint64
}

// NewPrepPool returns a pool with `slots` empty cache entries.
func NewPrepPool(slots int) *PrepPool {
	if slots <= 0 {
		panic(fmt.Sprintf("core: PrepPool needs at least one slot, got %d", slots))
	}
	return &PrepPool{pcs: make([]PreparedChannel, slots)}
}

// Slots returns the number of cache entries.
func (p *PrepPool) Slots() int { return len(p.pcs) }

// Prepare prepares det for h using slot's cache when det supports
// shared preparation, falling back to det.Prepare otherwise (linear
// detectors, K-best, the hybrid switch). Out-of-range slots also fall
// back rather than panic, so callers with odd geometries degrade to
// the uncached behavior.
//
//geolint:noalloc
func (p *PrepPool) Prepare(det Detector, slot int, h *cmplxmat.Matrix) error {
	if sp, ok := det.(SharedPreparer); ok && slot >= 0 && slot < len(p.pcs) {
		hit, err := sp.PrepareShared(&p.pcs[slot], h)
		if err != nil {
			return err
		}
		if hit {
			p.hits++
		} else {
			p.misses++
		}
		return nil
	}
	p.misses++
	return det.Prepare(h)
}

// Counters returns the cumulative cache hit and miss counts.
func (p *PrepPool) Counters() (hits, misses uint64) { return p.hits, p.misses }

// embedReal writes the real-valued decomposition of h into dst
// (2na×2nc, imaginary parts identically zero):
//
//	[Re H, −Im H; Im H, Re H]
//
//geolint:noalloc
func embedReal(dst, h *cmplxmat.Matrix) {
	na, nc := h.Rows, h.Cols
	for r := 0; r < na; r++ {
		for c := 0; c < nc; c++ {
			v := h.At(r, c)
			dst.Set(r, c, complex(real(v), 0))
			dst.Set(r, c+nc, complex(-imag(v), 0))
			dst.Set(r+na, c, complex(imag(v), 0))
			dst.Set(r+na, c+nc, complex(real(v), 0))
		}
	}
}
