// Package core implements the paper's primary contribution: a
// depth-first Schnorr-Euchner sphere decoder with Geosphere's
// two-dimensional zigzag enumeration (§3.1.1) and geometrical pruning
// (§3.2), alongside the ETH-SD baseline (Burg et al. with Hess et al.
// row-subconstellation enumeration) and an exhaustive maximum-
// likelihood reference.
//
// All decoders share the same tree-search framework and differ only in
// their child-enumeration strategy, mirroring the paper's observation
// that every exact Schnorr-Euchner decoder visits the same tree nodes
// and differs only in how much computation it spends deciding which
// node to visit next. Complexity is accounted the way §5.3 does: the
// number of exact partial-Euclidean-distance (PED) computations is the
// primary metric, visited tree nodes the secondary one.
package core

import (
	"errors"
	"fmt"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
)

// ErrNotPrepared is returned by Detect when no channel has been set.
var ErrNotPrepared = errors.New("core: detector not prepared with a channel")

// Stats counts the work a detector has performed since the last reset.
// PEDCalcs is the paper's primary complexity metric (§5.3): the number
// of exact partial Euclidean distance computations. BoundChecks counts
// geometric lower-bound table lookups (these are deliberately *not*
// PEDs; they cost one multiply). VisitedNodes counts tree nodes
// expanded, which the paper reports for completeness and which must be
// identical across all exact Schnorr-Euchner decoders. Prunes counts
// backtrack events: a level's sibling enumeration ended because every
// remaining child was outside the sphere (or the level was exhausted).
// ProjReuse counts interference-projection terms served from the
// incremental projection stack instead of being recomputed — the
// Ghasemmehdi-Agrell redundancy the search no longer pays for.
type Stats struct {
	PEDCalcs     int64
	VisitedNodes int64
	BoundChecks  int64
	Prunes       int64
	Leaves       int64
	Detections   int64
	ProjReuse    int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.PEDCalcs += other.PEDCalcs
	s.VisitedNodes += other.VisitedNodes
	s.BoundChecks += other.BoundChecks
	s.Prunes += other.Prunes
	s.Leaves += other.Leaves
	s.Detections += other.Detections
	s.ProjReuse += other.ProjReuse
}

// Sub returns s − other, the per-interval delta between two snapshots
// of one detector's monotonically growing counters. The link pipeline
// uses it to attribute work to individual frames when a worker's
// detector persists across frames.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		PEDCalcs:     s.PEDCalcs - other.PEDCalcs,
		VisitedNodes: s.VisitedNodes - other.VisitedNodes,
		BoundChecks:  s.BoundChecks - other.BoundChecks,
		Prunes:       s.Prunes - other.Prunes,
		Leaves:       s.Leaves - other.Leaves,
		Detections:   s.Detections - other.Detections,
		ProjReuse:    s.ProjReuse - other.ProjReuse,
	}
}

// PEDPerDetection returns the average PED computations per Detect
// call, the per-subcarrier quantity plotted in Figures 14 and 15.
func (s Stats) PEDPerDetection() float64 {
	if s.Detections == 0 {
		return 0
	}
	return float64(s.PEDCalcs) / float64(s.Detections)
}

// NodesPerDetection returns the average visited tree nodes per Detect.
func (s Stats) NodesPerDetection() float64 {
	if s.Detections == 0 {
		return 0
	}
	return float64(s.VisitedNodes) / float64(s.Detections)
}

// Detector is the common interface of every MIMO detector in this
// repository (sphere decoders, linear detectors, K-best, ...).
//
// Prepare fixes the channel matrix (one per OFDM subcarrier in
// practice); Detect then demultiplexes a received vector into one
// constellation point index per transmit stream. Splitting the two
// lets per-channel work (QR decompositions, filter inverses) be reused
// across the many received vectors that share a subcarrier's channel.
type Detector interface {
	// Name identifies the detector in experiment output.
	Name() string
	// Constellation returns the alphabet the detector decides over.
	Constellation() *constellation.Constellation
	// Prepare fixes the channel. The matrix is na×nc with na ≥ nc.
	Prepare(h *cmplxmat.Matrix) error
	// Detect writes the detected flat constellation index for each of
	// the nc streams into dst (allocating if dst is nil) and returns
	// it. len(y) must equal the prepared channel's row count.
	Detect(dst []int, y []complex128) ([]int, error)
}

// Counter is implemented by detectors that track complexity Stats.
type Counter interface {
	Stats() Stats
	ResetStats()
}

// StatsOf returns det's complexity statistics and whether det tracks
// any. It is the supported way to read Stats from a Detector-typed
// value — linear detectors report (zero, false), every tree-search
// detector reports its counters — replacing ad-hoc type assertions on
// Counter at call sites.
func StatsOf(det Detector) (Stats, bool) {
	if c, ok := det.(Counter); ok {
		return c.Stats(), true
	}
	return Stats{}, false
}

// ResetStatsOf zeroes det's complexity statistics, reporting whether
// det tracks any. It is StatsOf's companion for the write side, so
// call sites never assert on Counter directly.
func ResetStatsOf(det Detector) bool {
	c, ok := det.(Counter)
	if ok {
		c.ResetStats()
	}
	return ok
}

// checkDims validates a received vector against a prepared channel.
func checkDims(h *cmplxmat.Matrix, y []complex128) error {
	if h == nil {
		return ErrNotPrepared
	}
	if len(y) != h.Rows {
		return fmt.Errorf("core: received vector has %d entries, channel has %d rows: dimension mismatch", len(y), h.Rows)
	}
	return nil
}

// SymbolsFromIndices maps detected point indices to complex symbols,
// a convenience for computing residuals and in examples.
func SymbolsFromIndices(cons *constellation.Constellation, idx []int) []complex128 {
	out := make([]complex128, len(idx))
	for i, ix := range idx {
		out[i] = cons.PointIndex(ix)
	}
	return out
}
