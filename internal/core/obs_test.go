package core

import (
	"testing"

	"repro/internal/constellation"
	"repro/internal/obs"
	"repro/internal/rng"
)

// captureRecorder keeps deep copies of the samples it receives (the
// Levels slice is only valid during the call).
type captureRecorder struct {
	detects []obs.DetectSample
}

func (c *captureRecorder) RecordDetect(s obs.DetectSample) {
	cp := s
	cp.Levels = append([]obs.LevelSample(nil), s.Levels...)
	c.detects = append(c.detects, cp)
}
func (c *captureRecorder) RecordDecode(obs.DecodeSample) {}
func (c *captureRecorder) RecordFrame(obs.FrameSample)   {}
func (c *captureRecorder) RecordPoint(obs.PointSample)   {}

// TestLevelStatsSumToTotals pins the per-level refactor's invariant:
// the per-level breakdown partitions the aggregate counters exactly.
func TestLevelStatsSumToTotals(t *testing.T) {
	src := rng.New(11)
	for _, cons := range []*constellation.Constellation{constellation.QPSK, constellation.QAM16, constellation.QAM64} {
		d := NewGeosphere(cons)
		for trial := 0; trial < 20; trial++ {
			h, _, y := randomScenario(src, cons, 4, 4, 5+src.Float64()*20)
			if err := d.Prepare(h); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Detect(nil, y); err != nil {
				t.Fatal(err)
			}
		}
		total := d.Stats()
		var sum Stats
		for _, l := range d.LevelStats() {
			sum.Add(l)
		}
		if sum.VisitedNodes != total.VisitedNodes ||
			sum.PEDCalcs != total.PEDCalcs ||
			sum.BoundChecks != total.BoundChecks ||
			sum.Prunes != total.Prunes ||
			sum.Leaves != total.Leaves {
			t.Errorf("%s: level sums %+v != totals %+v", cons, sum, total)
		}
		if total.Detections != 20 {
			t.Errorf("%s: Detections = %d, want 20", cons, total.Detections)
		}
	}
}

// TestLevelStatsSurviveReshape verifies totals are preserved when
// Prepare changes the tree depth (stats fold into the running total).
func TestLevelStatsSurviveReshape(t *testing.T) {
	src := rng.New(13)
	cons := constellation.QAM16
	d := NewGeosphere(cons)
	var want Stats
	for _, nc := range []int{4, 2, 3, 4} {
		h, _, y := randomScenario(src, cons, 4, nc, 15)
		if err := d.Prepare(h); err != nil {
			t.Fatal(err)
		}
		before := d.Stats()
		if _, err := d.Detect(nil, y); err != nil {
			t.Fatal(err)
		}
		after := d.Stats()
		if after.Detections != before.Detections+1 {
			t.Fatalf("nc=%d: Detections %d -> %d", nc, before.Detections, after.Detections)
		}
		want = after
	}
	if got := d.Stats(); got != want {
		t.Errorf("Stats drifted after reshape: %+v != %+v", got, want)
	}
	d.ResetStats()
	if got := d.Stats(); got != (Stats{}) {
		t.Errorf("ResetStats left %+v", got)
	}
}

// TestRecorderDeltasMatchStats verifies the emitted per-detection
// samples are exact deltas: summed over a run they reproduce the
// decoder's own counters.
func TestRecorderDeltasMatchStats(t *testing.T) {
	src := rng.New(17)
	cons := constellation.QAM16
	d := NewGeosphere(cons)
	rec := &captureRecorder{}
	d.SetRecorder(rec)
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		h, _, y := randomScenario(src, cons, 4, 4, 5+src.Float64()*20)
		if err := d.Prepare(h); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Detect(nil, y); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.detects) != trials {
		t.Fatalf("recorded %d samples, want %d", len(rec.detects), trials)
	}
	var sum Stats
	for _, s := range rec.detects {
		if s.Detector != d.Name() {
			t.Errorf("sample detector %q, want %q", s.Detector, d.Name())
		}
		for _, l := range s.Levels {
			sum.VisitedNodes += l.Nodes
			sum.PEDCalcs += l.PEDCalcs
			sum.BoundChecks += l.BoundChecks
			sum.Prunes += l.Prunes
		}
	}
	total := d.Stats()
	if sum.VisitedNodes != total.VisitedNodes || sum.PEDCalcs != total.PEDCalcs ||
		sum.BoundChecks != total.BoundChecks || sum.Prunes != total.Prunes {
		t.Errorf("sample deltas %+v != decoder totals %+v", sum, total)
	}
}

// TestDetectZeroAllocs proves the detection hot paths stay
// allocation-free — the sphere decoders with and without a recorder
// attached (the observability overhead contract), and the RVD baseline
// whose Detect runs entirely in Prepare-sized scratch.
func TestDetectZeroAllocs(t *testing.T) {
	src := rng.New(19)
	cons := constellation.QAM64
	h, _, y := randomScenario(src, cons, 4, 4, 25)
	dst := make([]int, 4)
	makers := []struct {
		name string
		make func() Detector
	}{
		{"Geosphere", func() Detector { return NewGeosphere(cons) }},
		{"ETH-SD", func() Detector { return NewETHSD(cons) }},
		{"RVD-SD", func() Detector { return NewRVD(cons) }},
	}
	recorders := []struct {
		name string
		rec  obs.Recorder
	}{
		{"no recorder", nil},
		{"nop recorder", obs.Nop{}},
		{"stats recorder", obs.NewStatsRecorder()},
	}
	for _, mk := range makers {
		for _, tc := range recorders {
			d := mk.make()
			if tc.rec != nil {
				tgt, ok := d.(obs.Target)
				if !ok {
					continue // RVD does not stream per-detect samples
				}
				tgt.SetRecorder(tc.rec)
			}
			if err := d.Prepare(h); err != nil {
				t.Fatal(err)
			}
			// Warm up once so lazy growth is done before measuring.
			if _, err := d.Detect(dst, y); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				if _, err := d.Detect(dst, y); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Errorf("%s/%s: %g allocs/op on Detect, want 0", mk.name, tc.name, allocs)
			}
		}
	}
}

// TestStatsOf covers the assertion helper over counting and
// non-counting detectors.
func TestStatsOf(t *testing.T) {
	cons := constellation.QAM16
	d := NewGeosphere(cons)
	src := rng.New(23)
	h, _, y := randomScenario(src, cons, 2, 2, 20)
	if err := d.Prepare(h); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(nil, y); err != nil {
		t.Fatal(err)
	}
	st, ok := StatsOf(d)
	if !ok || st.Detections != 1 {
		t.Errorf("StatsOf(Geosphere) = %+v, %v; want counting detector with 1 detection", st, ok)
	}
	if _, ok := StatsOf(nil); ok {
		t.Error("StatsOf(nil) reported a counter")
	}
}

// TestHybridForwardsRecorder verifies the hybrid's sphere branch
// reports through a recorder set on the hybrid.
func TestHybridForwardsRecorder(t *testing.T) {
	cons := constellation.QPSK
	hy, err := NewHybrid(cons, NewML(cons), 1) // κ ≥ 1 always → sphere branch
	if err != nil {
		t.Fatal(err)
	}
	rec := &captureRecorder{}
	hy.SetRecorder(rec)
	src := rng.New(29)
	h, _, y := randomScenario(src, cons, 2, 2, 20)
	if err := hy.Prepare(h); err != nil {
		t.Fatal(err)
	}
	if _, err := hy.Detect(nil, y); err != nil {
		t.Fatal(err)
	}
	if len(rec.detects) != 1 {
		t.Errorf("hybrid recorded %d detect samples, want 1", len(rec.detects))
	}
}
