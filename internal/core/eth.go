package core

import (
	"math"

	"repro/internal/constellation"
)

// NewETHSD returns the comparison sphere decoder of §5.3: the VLSI
// depth-first decoder of Burg et al. with the subconstellation
// enumeration of Hess et al. The QAM constellation is split into √|O|
// horizontal PAM subconstellations (rows); each row runs a
// one-dimensional zigzag over its columns and the decoder compares
// exact distances across all rows to pick the next child.
//
// This is an exact Schnorr-Euchner enumeration, so ETH-SD visits the
// same tree nodes as Geosphere and returns the same maximum-likelihood
// answer — but it must compute √|O| partial distances up front at
// every node expansion, which is precisely why its complexity grows
// with constellation density (Figure 15).
func NewETHSD(cons *constellation.Constellation) *SphereDecoder {
	return newSphereDecoder("ETH-SD", cons, func(c *constellation.Constellation, st *Stats) enumerator {
		return newEthEnumerator(c, st)
	})
}

// ethEnumerator holds one candidate per horizontal row, advanced by
// per-row one-dimensional zigzag.
type ethEnumerator struct {
	cons  *constellation.Constellation
	stats *Stats
	side  int

	ytilde complex128
	yI, yQ float64
	base   float64
	rll2   float64
	col0   int

	started bool
	// Per-row state: the enumerated column range and the current
	// candidate's distance. A row with ped = +Inf is exhausted.
	colLo []int
	colHi []int
	ped   []float64
	cand  []int // flat index of the row's current candidate
}

func newEthEnumerator(cons *constellation.Constellation, st *Stats) *ethEnumerator {
	side := cons.Side()
	return &ethEnumerator{
		cons:  cons,
		stats: st,
		side:  side,
		colLo: make([]int, side),
		colHi: make([]int, side),
		ped:   make([]float64, side),
		cand:  make([]int, side),
	}
}

//geolint:noalloc
func (e *ethEnumerator) pedOf(col, row int) float64 {
	e.stats.PEDCalcs++
	p := e.cons.Point(col, row)
	dr := real(e.ytilde) - real(p)
	di := imag(e.ytilde) - imag(p)
	return e.base + e.rll2*(dr*dr+di*di)
}

//geolint:noalloc
func (e *ethEnumerator) init(ytilde complex128, base, rll2 float64) {
	e.ytilde = ytilde
	e.yI = real(ytilde)
	e.yQ = imag(ytilde)
	e.base = base
	e.rll2 = rll2
	e.col0 = e.cons.SliceAxis(e.yI)
	e.started = false
}

// start performs the up-front work of the Hess enumeration: one exact
// partial distance per row, for the row's nearest point. It is
// deferred to the first next() call, which in this framework
// immediately follows init.
//
//geolint:noalloc
func (e *ethEnumerator) start() {
	for r := 0; r < e.side; r++ {
		e.colLo[r] = e.col0
		e.colHi[r] = e.col0
		e.cand[r] = e.cons.Index(e.col0, r)
		e.ped[r] = e.pedOf(e.col0, r)
	}
	e.started = true
}

// advance replaces row r's consumed candidate with the next column in
// the row's zigzag, or marks the row exhausted.
//
//geolint:noalloc
func (e *ethEnumerator) advance(r int) {
	lo, hi := e.colLo[r], e.colHi[r]
	loOK := lo-1 >= 0
	hiOK := hi+1 < e.side
	var col int
	switch {
	case !loOK && !hiOK:
		e.ped[r] = math.Inf(1)
		return
	case loOK && !hiOK:
		col = lo - 1
	case !loOK && hiOK:
		col = hi + 1
	default:
		dlo := math.Abs(e.cons.AxisCoord(lo-1) - e.yI)
		dhi := math.Abs(e.cons.AxisCoord(hi+1) - e.yI)
		if dlo <= dhi {
			col = lo - 1
		} else {
			col = hi + 1
		}
	}
	if col < e.colLo[r] {
		e.colLo[r] = col
	} else {
		e.colHi[r] = col
	}
	e.cand[r] = e.cons.Index(col, r)
	e.ped[r] = e.pedOf(col, r)
}

//geolint:noalloc
func (e *ethEnumerator) next(radius2 float64) (int, float64, bool) {
	if !e.started {
		e.start()
	}
	best := 0
	for r := 1; r < e.side; r++ {
		if e.ped[r] < e.ped[best] {
			best = r
		}
	}
	ped := e.ped[best]
	if math.IsInf(ped, 1) || ped >= radius2 {
		return 0, 0, false
	}
	idx := e.cand[best]
	e.advance(best)
	return idx, ped, true
}
