package core

import (
	"repro/internal/constellation"
)

// NewStatisticalPruning returns a Geosphere-enumerated sphere decoder
// with the probabilistic tree pruning of the Shim & Kang / Cui et al.
// family (§6.1): in addition to the sphere constraint, a node at tree
// level l is pruned when its accumulated distance exceeds the radius
// minus the noise the remaining levels are *expected* to contribute,
//
//	d(s^(l)) ≥ r² − α·l·σ²,
//
// where α tunes aggressiveness (α = 0 recovers the exact decoder).
// Pruning on expected noise discards paths the exact search would keep,
// so maximum likelihood is no longer guaranteed — the performance loss
// the paper cites when arguing such schemes are "unsuitable for
// practical use". The statistical-pruning ablation bench measures both
// sides of the trade.
func NewStatisticalPruning(cons *constellation.Constellation, noiseVar, alpha float64) *SphereDecoder {
	d := newSphereDecoder("Statistical-pruning", cons, func(c *constellation.Constellation, st *Stats) enumerator {
		return newGeoEnumerator(c, st, true)
	})
	d.statNoise = noiseVar
	d.statAlpha = alpha
	return d
}
