package core

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
)

// RVDDecoder is the real-valued-decomposition sphere decoder used by
// several proposals the paper surveys in §6.1 (Chan & Lee's radius
// update, Azzam & Ayanoglu's reordered lattice): the complex system is
// unfolded into a real one,
//
//	[Re y; Im y] = [Re H, −Im H; Im H, Re H]·[Re s; Im s] + w,
//
// turning the nc-level, |O|-branching complex tree into a 2·nc-level,
// √|O|-branching real tree. Each level runs an exact one-dimensional
// Schnorr-Euchner (zigzag) PAM enumeration, so the decoder is still
// maximum likelihood — but the doubled tree height is exactly the
// structural cost §6.1 calls "impractical for implementation", and the
// rvd ablation bench quantifies it against Geosphere's complex tree.
type RVDDecoder struct {
	cons *constellation.Constellation

	h     *cmplxmat.Matrix
	qr    *cmplxmat.QR
	m     int // 2·nc real dimensions
	na    int // receive antennas of the prepared channel
	stats Stats

	yhat []complex128 // real parts carry the rotated observation
	path []int        // PAM level index per real dimension
	base []float64
	// Per-level 1-D zigzag state.
	lo, hi []int
	// Per-detection scratch, sized by Prepare so Detect never
	// allocates: the real embedding of the observation and the best
	// leaf found so far.
	yr   []complex128
	best []int

	// yt caches each level's interference-reduced value for the
	// lifetime of the node (the prefix is fixed while siblings
	// enumerate, so the old per-sibling recomputation always returned
	// this same value). proj/projDepth are the real-valued incremental
	// projection stack, the same scheme sphere.go documents; refProj
	// replays the pre-stack ascending-order recomputation as the
	// old-engine reference.
	yt        []float64
	proj      []float64
	projDepth []int
	refProj   bool

	// ownPrep backs plain Prepare calls, giving the standalone decoder
	// the same cached fast path as a pool-attached one.
	ownPrep PreparedChannel
}

var _ Detector = (*RVDDecoder)(nil)
var _ Counter = (*RVDDecoder)(nil)

// NewRVD returns a real-valued-decomposition sphere decoder.
func NewRVD(cons *constellation.Constellation) *RVDDecoder {
	return &RVDDecoder{cons: cons}
}

// Name implements Detector.
func (d *RVDDecoder) Name() string { return "RVD-SD" }

// Constellation implements Detector.
func (d *RVDDecoder) Constellation() *constellation.Constellation { return d.cons }

// Stats implements Counter.
func (d *RVDDecoder) Stats() Stats { return d.stats }

// ResetStats implements Counter.
func (d *RVDDecoder) ResetStats() { d.stats = Stats{} }

// Prepare embeds the complex channel into its real form and
// triangularizes it. The real matrix rides in the real parts of a
// complex matrix so the existing QR applies; its imaginary parts are
// identically zero. Preparation runs through the decoder's private
// PreparedChannel, so an unchanged channel skips the embedding and QR.
func (d *RVDDecoder) Prepare(h *cmplxmat.Matrix) error {
	_, err := d.PrepareShared(&d.ownPrep, h)
	return err
}

var _ SharedPreparer = (*RVDDecoder)(nil)

// PrepareShared implements SharedPreparer. The cache holds the QR of
// the 2na×2nc real embedding (prepModeRVD).
//
//geolint:noalloc
func (d *RVDDecoder) PrepareShared(pc *PreparedChannel, h *cmplxmat.Matrix) (bool, error) {
	if h == nil {
		return false, ErrNotPrepared
	}
	if h.Rows < h.Cols {
		//geolint:alloc-ok error path
		return false, fmt.Errorf("core: RVD decoder needs na ≥ nc, got %d×%d channel", h.Rows, h.Cols)
	}
	hit, err := pc.prepare(h, prepModeRVD)
	if err != nil {
		return false, err
	}
	m := 2 * h.Cols
	d.h = h
	d.qr = &pc.qr
	d.m = m
	d.na = h.Rows
	if cap(d.yhat) < m || cap(d.yr) < 2*h.Rows {
		d.yhat = make([]complex128, m)      //geolint:alloc-ok reshape only
		d.path = make([]int, m)             //geolint:alloc-ok reshape only
		d.base = make([]float64, m+1)       //geolint:alloc-ok reshape only
		d.lo = make([]int, m)               //geolint:alloc-ok reshape only
		d.hi = make([]int, m)               //geolint:alloc-ok reshape only
		d.best = make([]int, m)             //geolint:alloc-ok reshape only
		d.yr = make([]complex128, 2*h.Rows) //geolint:alloc-ok reshape only
		d.yt = make([]float64, m)           //geolint:alloc-ok reshape only
		d.proj = make([]float64, (m+1)*m)   //geolint:alloc-ok reshape only
		d.projDepth = make([]int, m)        //geolint:alloc-ok reshape only
	} else {
		d.yhat = d.yhat[:m]
		d.path = d.path[:m]
		d.base = d.base[:m+1]
		d.lo = d.lo[:m]
		d.hi = d.hi[:m]
		d.best = d.best[:m]
		d.yr = d.yr[:2*h.Rows]
		d.yt = d.yt[:m]
		d.proj = d.proj[:(m+1)*m]
		d.projDepth = d.projDepth[:m]
	}
	return hit, nil
}

// Detect implements Detector by depth-first search over the real tree.
//
// The steady-state path (non-nil dst, no errors) is allocation-free:
// the observation embedding and best-leaf buffers are Prepare-sized
// scratch. TestDetectZeroAllocs pins it and the noalloc analyzer
// guards it.
//
//geolint:noalloc
func (d *RVDDecoder) Detect(dst []int, y []complex128) ([]int, error) {
	if err := checkDims(d.h, y); err != nil {
		return nil, err
	}
	nc := d.h.Cols
	if dst == nil {
		dst = make([]int, nc) //geolint:alloc-ok one-time convenience path; steady state passes dst
	} else if len(dst) != nc {
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("core: dst has %d entries, want %d", len(dst), nc)
	}
	// Real embedding of the observation.
	na := d.na
	yr := d.yr
	for r := 0; r < na; r++ {
		yr[r] = complex(real(y[r]), 0)
		yr[r+na] = complex(imag(y[r]), 0)
	}
	d.qr.ApplyQConjT(d.yhat, yr)

	radius2 := math.Inf(1)
	best := d.best
	found := false
	level := d.m - 1
	if !d.refProj {
		// Reset the projection stack: depth m holds ŷ itself.
		row := d.proj[d.m*d.m:]
		for l := 0; l < d.m; l++ {
			row[l] = real(d.yhat[l])
			d.projDepth[l] = d.m
		}
	}
	d.base[level+1] = 0
	d.initLevel(level)
	for {
		idx, ped, ok := d.nextChild(level, radius2)
		if !ok || ped >= radius2 {
			level++
			if level >= d.m {
				break
			}
			continue
		}
		d.stats.VisitedNodes++
		d.path[level] = idx
		if !d.refProj {
			// The symbol at this level changed: cached partial sums
			// that included it are stale for every column below.
			for l := 0; l < level; l++ {
				if d.projDepth[l] <= level {
					d.projDepth[l] = level + 1
				}
			}
		}
		if level == 0 {
			d.stats.Leaves++
			radius2 = ped
			copy(best, d.path)
			found = true
			continue
		}
		level--
		d.base[level+1] = ped
		d.initLevel(level)
	}
	d.stats.Detections++
	if !found {
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("core: RVD search found no candidate")
	}
	// Fold the 2·nc PAM decisions back into complex points: level k is
	// stream k's I axis, level nc+k its Q axis.
	for k := 0; k < nc; k++ {
		dst[k] = d.cons.Index(best[k], best[nc+k])
	}
	return dst, nil
}

// ytildeAt reduces interference from the fixed upper levels, serving
// cached partial sums from the projection stack (or, under refProj,
// recomputing the whole sum in the original ascending order).
//
//geolint:noalloc
func (d *RVDDecoder) ytildeAt(l int) float64 {
	if d.refProj {
		s := real(d.yhat[l])
		row := d.qr.R.Row(l)
		for j := l + 1; j < d.m; j++ {
			s -= real(row[j]) * d.cons.AxisCoord(d.path[j])
		}
		return s / real(d.qr.R.At(l, l))
	}
	m := d.m
	p := d.projDepth[l]
	d.stats.ProjReuse += int64(m - p)
	row := d.qr.R.Row(l)
	f := d.proj[p*m+l]
	for p > l+1 {
		p--
		f -= real(row[p]) * d.cons.AxisCoord(d.path[p])
		d.proj[p*m+l] = f
	}
	d.projDepth[l] = l + 1
	return f / real(d.qr.R.At(l, l))
}

// initLevel starts the 1-D zigzag at the sliced PAM level. The
// interference-reduced value is computed once here and cached for the
// node's lifetime — the prefix above l is fixed while this node's
// siblings enumerate, so the per-sibling recomputation the old engine
// performed always reproduced this exact value.
//
//geolint:noalloc
func (d *RVDDecoder) initLevel(l int) {
	d.yt[l] = d.ytildeAt(l)
	i := d.cons.SliceAxis(d.yt[l])
	d.lo[l] = i
	d.hi[l] = i - 1 // the first nextChild call emits i itself
}

// nextChild emits PAM levels in exactly non-decreasing cumulative
// distance via one-dimensional zigzag around ỹ_l.
//
//geolint:noalloc
func (d *RVDDecoder) nextChild(l int, radius2 float64) (int, float64, bool) {
	side := d.cons.Side()
	ytilde := d.yt[l]
	var idx int
	switch {
	case d.hi[l] < d.lo[l]:
		idx = d.lo[l] // sliced start
		d.hi[l] = d.lo[l]
	case d.lo[l] == 0 && d.hi[l] == side-1:
		return 0, 0, false
	case d.lo[l] == 0:
		d.hi[l]++
		idx = d.hi[l]
	case d.hi[l] == side-1:
		d.lo[l]--
		idx = d.lo[l]
	default:
		dlo := math.Abs(d.cons.AxisCoord(d.lo[l]-1) - ytilde)
		dhi := math.Abs(d.cons.AxisCoord(d.hi[l]+1) - ytilde)
		if dlo <= dhi {
			d.lo[l]--
			idx = d.lo[l]
		} else {
			d.hi[l]++
			idx = d.hi[l]
		}
	}
	d.stats.PEDCalcs++
	rll := real(d.qr.R.At(l, l))
	diff := ytilde - d.cons.AxisCoord(idx)
	ped := d.base[l+1] + rll*rll*diff*diff
	if ped >= radius2 {
		// Zigzag order is monotone per level, so the node is done —
		// but the emitted index must not be reused.
		return idx, ped, false
	}
	return idx, ped, true
}
