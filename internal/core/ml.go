package core

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
)

// MLDetector is the brute-force maximum-likelihood reference
// (Equation 1 by exhaustive search). Its cost is |O|^nc Euclidean
// distance evaluations, so it is only usable for small systems; the
// test suite uses it as ground truth for every sphere decoder.
type MLDetector struct {
	cons *constellation.Constellation
	h    *cmplxmat.Matrix

	idx []int
	sym []complex128
}

var _ Detector = (*MLDetector)(nil)

// NewML returns an exhaustive maximum-likelihood detector.
func NewML(cons *constellation.Constellation) *MLDetector {
	return &MLDetector{cons: cons}
}

// Name implements Detector.
func (d *MLDetector) Name() string { return "ML-exhaustive" }

// Constellation implements Detector.
func (d *MLDetector) Constellation() *constellation.Constellation { return d.cons }

// Prepare implements Detector.
func (d *MLDetector) Prepare(h *cmplxmat.Matrix) error {
	if h == nil {
		return ErrNotPrepared
	}
	if h.Rows < h.Cols {
		return fmt.Errorf("core: ML detector needs na ≥ nc, got %d×%d channel", h.Rows, h.Cols)
	}
	// Refuse hopeless searches so a misconfigured test fails fast.
	cost := math.Pow(float64(d.cons.Size()), float64(h.Cols))
	if cost > 5e7 {
		return fmt.Errorf("core: exhaustive ML over %s with %d streams needs %.0f evaluations; use a sphere decoder", d.cons.Name(), h.Cols, cost)
	}
	d.h = h
	d.idx = make([]int, h.Cols)
	d.sym = make([]complex128, h.Cols)
	return nil
}

// Detect implements Detector by enumerating every symbol vector.
func (d *MLDetector) Detect(dst []int, y []complex128) ([]int, error) {
	if err := checkDims(d.h, y); err != nil {
		return nil, err
	}
	nc := d.h.Cols
	if dst == nil {
		dst = make([]int, nc)
	} else if len(dst) != nc {
		return nil, fmt.Errorf("core: dst has %d entries, want %d", len(dst), nc)
	}
	size := d.cons.Size()
	for i := range d.idx {
		d.idx[i] = 0
		d.sym[i] = d.cons.PointIndex(0)
	}
	bestDist := math.Inf(1)
	for {
		// ‖y − H·s‖² for the current odometer state.
		var dist float64
		for r := 0; r < d.h.Rows; r++ {
			row := d.h.Row(r)
			acc := y[r]
			for c := 0; c < nc; c++ {
				acc -= row[c] * d.sym[c]
			}
			dist += real(acc)*real(acc) + imag(acc)*imag(acc)
		}
		if dist < bestDist {
			bestDist = dist
			copy(dst, d.idx)
		}
		// Advance the odometer.
		k := 0
		for ; k < nc; k++ {
			d.idx[k]++
			if d.idx[k] < size {
				d.sym[k] = d.cons.PointIndex(d.idx[k])
				break
			}
			d.idx[k] = 0
			d.sym[k] = d.cons.PointIndex(0)
		}
		if k == nc {
			return dst, nil
		}
	}
}
