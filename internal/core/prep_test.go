package core

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/rng"
)

// prepDetectors enumerates every SharedPreparer with a fresh instance
// per call, covering all three cache modes (ordered QR, plain QR, RVD).
func prepDetectors(cons *constellation.Constellation) []struct {
	name string
	det  SharedPreparer
} {
	return []struct {
		name string
		det  SharedPreparer
	}{
		{"Geosphere", NewGeosphere(cons)},
		{"ETH-SD", NewETHSD(cons)},
		{"RVD-SD", NewRVD(cons)},
		{"Geosphere-soft", NewListSphereDecoder(cons)},
	}
}

// TestPrepareCachedFastPathZeroAllocs pins the two steady-state
// Prepare regimes of the link pipeline at zero allocations per call:
// re-preparing an unchanged channel (cache hit, the common trace-replay
// case) and alternating between two same-shape channels (every call a
// refill into already-sized workspace).
func TestPrepareCachedFastPathZeroAllocs(t *testing.T) {
	src := rng.New(41)
	cons := constellation.QAM16
	h1 := channel.Rayleigh(src, 4, 4)
	h2 := channel.Rayleigh(src, 4, 4)
	for _, tc := range prepDetectors(cons) {
		// Warm both channels so every buffer has reached its final size.
		for _, h := range []*cmplxmat.Matrix{h1, h2, h1} {
			if err := tc.det.Prepare(h); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		}
		hit := testing.AllocsPerRun(100, func() {
			if err := tc.det.Prepare(h1); err != nil {
				t.Fatal(err)
			}
		})
		if hit > 0 {
			t.Errorf("%s: %g allocs/op re-preparing an unchanged channel, want 0", tc.name, hit)
		}
		flip := h1
		refill := testing.AllocsPerRun(100, func() {
			if flip == h1 {
				flip = h2
			} else {
				flip = h1
			}
			if err := tc.det.Prepare(flip); err != nil {
				t.Fatal(err)
			}
		})
		if refill > 0 {
			t.Errorf("%s: %g allocs/op refilling with a same-shape channel, want 0", tc.name, refill)
		}
	}
}

// TestPreparedChannelHitSemantics checks the cache-identity rules: a
// hit requires the same mode and elementwise-identical contents, the
// epoch counts refills only, and the fingerprint tracks the cached
// bits.
func TestPreparedChannelHitSemantics(t *testing.T) {
	src := rng.New(43)
	cons := constellation.QAM16
	d := NewGeosphere(cons)
	h := channel.Rayleigh(src, 4, 4)

	var pc PreparedChannel
	hit, err := d.PrepareShared(&pc, h)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first preparation reported a cache hit")
	}
	if pc.Epoch() != 1 {
		t.Fatalf("epoch %d after first fill, want 1", pc.Epoch())
	}
	fp := pc.Fingerprint()
	if fp == 0 {
		t.Fatal("zero fingerprint on a filled cache")
	}

	// Same contents in a different matrix object must still hit: the
	// cache compares values, not pointers.
	hit, err = d.PrepareShared(&pc, h.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("value-identical clone missed the cache")
	}
	if pc.Epoch() != 1 || pc.Fingerprint() != fp {
		t.Errorf("hit mutated cache identity: epoch %d fp %#x, want 1 %#x", pc.Epoch(), pc.Fingerprint(), fp)
	}

	// One changed element must miss and refill.
	h2 := h.Clone()
	h2.Set(2, 1, h2.At(2, 1)+complex(1e-12, 0))
	hit, err = d.PrepareShared(&pc, h2)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("perturbed channel hit the cache")
	}
	if pc.Epoch() != 2 {
		t.Errorf("epoch %d after refill, want 2", pc.Epoch())
	}
	if pc.Fingerprint() == fp {
		t.Error("fingerprint unchanged across a refill with different contents")
	}

	// A different detector family using a different derivation must not
	// reuse this entry, even for identical channel contents.
	rvd := NewRVD(cons)
	hit, err = rvd.PrepareShared(&pc, h2)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("RVD hit a cache entry holding an ordered-QR derivation")
	}

	// The soft decoder and the unordered hard decoders share prepModeQR
	// entries.
	var shared PreparedChannel
	if _, err := NewListSphereDecoder(cons).PrepareShared(&shared, h); err != nil {
		t.Fatal(err)
	}
	hit, err = NewETHSD(cons).PrepareShared(&shared, h)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("ETH-SD missed the soft decoder's plain-QR entry")
	}
}

// TestSharedPrepareMatchesPlainPrepare proves a pool-cached
// preparation leaves the detector in bit-identical state: decisions
// after a cache hit equal those of a freshly built detector.
func TestSharedPrepareMatchesPlainPrepare(t *testing.T) {
	src := rng.New(47)
	cons := constellation.QAM16
	h, _, y := randomScenario(src, cons, 4, 4, 22)

	for _, tc := range prepDetectors(cons) {
		var pc PreparedChannel
		// Fill, then hit: the second PrepareShared must take the cached
		// path.
		if _, err := tc.det.PrepareShared(&pc, h); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		hit, err := tc.det.PrepareShared(&pc, h)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !hit {
			t.Fatalf("%s: second preparation missed", tc.name)
		}
		got, err := tc.det.Detect(nil, y)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}

		fresh := prepDetectors(cons)
		var ref Detector
		for _, f := range fresh {
			if f.name == tc.name {
				ref = f.det
			}
		}
		if err := ref.Prepare(h); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := ref.Detect(nil, y)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: stream %d decision %d via cache, %d fresh", tc.name, i, got[i], want[i])
			}
		}
	}
}

// TestPrepPool covers the pool's counter bookkeeping and its fallbacks
// for detectors without shared preparation and for out-of-range slots.
func TestPrepPool(t *testing.T) {
	src := rng.New(53)
	cons := constellation.QAM16
	h1 := channel.Rayleigh(src, 4, 4)
	h2 := channel.Rayleigh(src, 4, 4)

	p := NewPrepPool(2)
	if p.Slots() != 2 {
		t.Fatalf("Slots() = %d, want 2", p.Slots())
	}
	d := NewGeosphere(cons)
	for _, step := range []struct {
		slot    int
		h       *cmplxmat.Matrix
		wantHit bool
	}{
		{0, h1, false}, // cold fill slot 0
		{1, h2, false}, // cold fill slot 1
		{0, h1, true},  // unchanged slot 0
		{1, h2, true},  // unchanged slot 1
		{0, h2, false}, // slot 0 now sees h2: refill
		{7, h1, false}, // out of range: uncached fallback
	} {
		if err := p.Prepare(d, step.slot, step.h); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := p.Counters()
	if hits != 2 || misses != 4 {
		t.Errorf("counters = %d hits / %d misses, want 2/4", hits, misses)
	}

	// A detector without PrepareShared always counts a miss but still
	// prepares.
	ml := NewML(cons)
	if err := p.Prepare(ml, 0, h1); err != nil {
		t.Fatal(err)
	}
	if _, m := p.Counters(); m != 5 {
		t.Errorf("misses = %d after uncached detector, want 5", m)
	}
	if _, err := ml.Detect(nil, mustVector(src, h1, cons)); err != nil {
		t.Errorf("fallback-prepared detector cannot detect: %v", err)
	}
}

// mustVector transmits a random symbol vector over h for test inputs.
func mustVector(src *rng.Source, h *cmplxmat.Matrix, cons *constellation.Constellation) []complex128 {
	x := make([]complex128, h.Cols)
	for i := range x {
		x[i] = cons.PointIndex(src.Intn(cons.Size()))
	}
	return channel.Transmit(nil, src, h, x, channel.NoiseVarForSNRdB(25))
}

// TestPrepPoolIncremental pins the three-way counter semantics of the
// incremental re-preparation path: a cold fill is a miss, an unchanged
// channel is a hit, a small drift is absorbed by a rank-1 QR update
// (neither hit nor miss — reported via QRUpdates), and a drift beyond
// the relative-Frobenius gate falls back to a full refactorization,
// which is a miss again.
func TestPrepPoolIncremental(t *testing.T) {
	src := rng.New(61)
	det := NewETHSD(constellation.QAM16)
	p := NewPrepPool(1)
	p.SetIncremental(true)
	h := channel.Rayleigh(src, 4, 4)

	step := func(wantHits, wantMisses, wantUpd uint64, what string) {
		t.Helper()
		if err := p.Prepare(det, 0, h); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		hits, misses := p.Counters()
		if hits != wantHits || misses != wantMisses || p.QRUpdates() != wantUpd {
			t.Fatalf("%s: hits/misses/qr-updates = %d/%d/%d, want %d/%d/%d",
				what, hits, misses, p.QRUpdates(), wantHits, wantMisses, wantUpd)
		}
	}

	step(0, 1, 0, "cold fill is a miss")
	step(1, 1, 0, "unchanged channel is a hit")

	h.Set(2, 1, h.At(2, 1)+complex(0.03, -0.02))
	step(1, 1, 1, "small drift takes the update path")
	step(2, 1, 1, "updated channel is cached afterwards")

	for i := range h.Data {
		h.Data[i] += complex(0.9*src.Norm(), 0.9*src.Norm())
	}
	step(2, 2, 1, "drift beyond the gate forces a full refill")
	step(3, 2, 1, "refilled channel is cached afterwards")
}

// TestPrepPoolIncrementalChainCap pins the forced-refactorization
// bound: after maxUpdateChain consecutive rank-1 updates the cache
// must take one full refactorization (a miss) to shed accumulated
// roundoff, then resume updating.
func TestPrepPoolIncrementalChainCap(t *testing.T) {
	src := rng.New(62)
	det := NewGeosphere(constellation.QAM16)
	p := NewPrepPool(1)
	p.SetIncremental(true)
	h := channel.Rayleigh(src, 4, 4)
	if err := p.Prepare(det, 0, h); err != nil {
		t.Fatal(err)
	}
	drift := func(i int) {
		h.Data[i%len(h.Data)] += complex(1e-3, -1e-3)
		if err := p.Prepare(det, 0, h); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < maxUpdateChain; i++ {
		drift(i)
	}
	if _, misses := p.Counters(); misses != 1 || p.QRUpdates() != maxUpdateChain {
		t.Fatalf("after %d drifts: misses %d qr-updates %d, want 1 %d",
			maxUpdateChain, misses, p.QRUpdates(), maxUpdateChain)
	}
	drift(0) // chain exhausted: this one must refactorize in full
	if _, misses := p.Counters(); misses != 2 || p.QRUpdates() != maxUpdateChain {
		t.Fatalf("chain cap not enforced: misses %d qr-updates %d, want 2 %d",
			misses, p.QRUpdates(), maxUpdateChain)
	}
	drift(1) // fresh factorization: updating resumes
	if p.QRUpdates() != maxUpdateChain+1 {
		t.Fatalf("updates did not resume after forced refill: qr-updates %d, want %d",
			p.QRUpdates(), maxUpdateChain+1)
	}
}

// TestPrepPoolIncrementalReorderRefills pins the ordered-QR
// invalidation rule: a drift that changes the column-energy ordering
// invalidates the cached permutation, so the update path must decline
// and a full re-preparation (with the new ordering) must run — even
// though the drift itself is well inside the Frobenius gate.
func TestPrepPoolIncrementalReorderRefills(t *testing.T) {
	det := NewGeosphere(constellation.QAM16)
	det.EnableColumnReordering(true)
	p := NewPrepPool(1)
	p.SetIncremental(true)

	// Distinct, well-separated column energies: ascending order is
	// column 0, 1, 2, 3.
	h := cmplxmat.New(4, 4)
	for c := 0; c < 4; c++ {
		h.Set(c, c, complex(1.0+0.1*float64(c), 0))
	}
	if err := p.Prepare(det, 0, h); err != nil {
		t.Fatal(err)
	}

	// A small drift that preserves the ordering is still absorbed by
	// the update path in ordered mode.
	h.Set(3, 3, h.At(3, 3)+complex(0.01, 0))
	if err := p.Prepare(det, 0, h); err != nil {
		t.Fatal(err)
	}
	if p.QRUpdates() != 1 {
		t.Fatalf("order-preserving drift: qr-updates %d, want 1", p.QRUpdates())
	}

	// Boosting column 0 past the others flips the energy order; the
	// drift (0.5 on one entry) is far below the 25%-Frobenius gate, so
	// only the permutation check can force the refill.
	h.Set(0, 0, h.At(0, 0)+complex(0.5, 0))
	if err := p.Prepare(det, 0, h); err != nil {
		t.Fatal(err)
	}
	if _, misses := p.Counters(); misses != 2 || p.QRUpdates() != 1 {
		t.Fatalf("order-changing drift: misses %d qr-updates %d, want 2 1", misses, p.QRUpdates())
	}
}

// TestPrepPoolIncrementalZeroAllocs pins the steady-state allocation
// contract of the update path for every SharedPreparer: once the
// update scratch is warm, absorbing a small in-place channel drift
// allocates nothing.
func TestPrepPoolIncrementalZeroAllocs(t *testing.T) {
	src := rng.New(63)
	cons := constellation.QAM16
	for _, tc := range prepDetectors(cons) {
		p := NewPrepPool(1)
		p.SetIncremental(true)
		h := channel.Rayleigh(src, 4, 4)
		// Warm: one fill, then one update to size the rank-1 scratch.
		for i := 0; i < 2; i++ {
			h.Data[0] += complex(1e-4, 1e-4)
			if err := p.Prepare(tc.det, 0, h); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		}
		before := p.QRUpdates()
		allocs := testing.AllocsPerRun(50, func() {
			h.Data[0] += complex(1e-4, -1e-4)
			if err := p.Prepare(tc.det, 0, h); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("%s: %g allocs/op on the warm update path, want 0", tc.name, allocs)
		}
		if p.QRUpdates() <= before {
			t.Errorf("%s: alloc loop never took the update path (qr-updates %d before, %d after)",
				tc.name, before, p.QRUpdates())
		}
	}
}
