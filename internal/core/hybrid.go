package core

import (
	"fmt"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/obs"
)

// HybridDetector implements the condition-number-threshold scheme of
// Maurer et al. discussed in §6.1: it measures κ(H) at Prepare time
// and routes detection to a cheap linear detector when the channel is
// well conditioned, falling back to the sphere decoder otherwise.
//
// The paper argues such designs are unnecessary because Geosphere's
// complexity already adapts to channel conditioning (§5.3.1); the
// hybrid exists here as the ablation that demonstrates it, and because
// it needs a threshold that no principled procedure chooses.
type HybridDetector struct {
	cons *constellation.Constellation
	// ThresholdKappa is the κ(H) above which the sphere decoder is
	// used.
	ThresholdKappa float64

	linear Detector
	sphere *SphereDecoder
	active Detector
	// SphereSelections counts how often Prepare picked the sphere
	// decoder, for experiment reporting.
	SphereSelections int
	Preparations     int
}

var _ Detector = (*HybridDetector)(nil)
var _ Counter = (*HybridDetector)(nil)

// NewHybrid returns a threshold-switched ZF/Geosphere detector.
func NewHybrid(cons *constellation.Constellation, linear Detector, thresholdKappa float64) (*HybridDetector, error) {
	if thresholdKappa < 1 {
		return nil, fmt.Errorf("core: κ threshold must be ≥ 1, got %g", thresholdKappa)
	}
	if linear == nil {
		return nil, fmt.Errorf("core: hybrid needs a linear detector")
	}
	return &HybridDetector{
		cons:           cons,
		ThresholdKappa: thresholdKappa,
		linear:         linear,
		sphere:         NewGeosphere(cons),
	}, nil
}

// Name implements Detector.
func (d *HybridDetector) Name() string {
	return fmt.Sprintf("Hybrid(κ>%g→SD)", d.ThresholdKappa)
}

// Constellation implements Detector.
func (d *HybridDetector) Constellation() *constellation.Constellation { return d.cons }

// Stats implements Counter, reporting the sphere decoder's work (the
// linear branch performs no tree search).
func (d *HybridDetector) Stats() Stats { return d.sphere.Stats() }

// ResetStats implements Counter.
func (d *HybridDetector) ResetStats() {
	d.sphere.ResetStats()
	d.SphereSelections = 0
	d.Preparations = 0
}

// SetRecorder implements obs.Target by forwarding to the sphere
// branch; the linear branch performs no tree search and records
// nothing.
func (d *HybridDetector) SetRecorder(r obs.Recorder) { d.sphere.SetRecorder(r) }

// Prepare implements Detector: it computes κ(H) and selects a branch.
func (d *HybridDetector) Prepare(h *cmplxmat.Matrix) error {
	if h == nil {
		return ErrNotPrepared
	}
	d.Preparations++
	if h.Cond2() > d.ThresholdKappa {
		d.SphereSelections++
		d.active = d.sphere
	} else {
		d.active = d.linear
	}
	return d.active.Prepare(h)
}

// Detect implements Detector.
func (d *HybridDetector) Detect(dst []int, y []complex128) ([]int, error) {
	if d.active == nil {
		return nil, ErrNotPrepared
	}
	return d.active.Detect(dst, y)
}
