package core

import (
	"repro/internal/cmplxmat"
)

// EnableColumnReordering makes Prepare permute the channel columns so
// that streams with more received energy sit at the top of the search
// tree (detected first). The maximum-likelihood solution is invariant
// under column permutation, so the decoder's output is unchanged; only
// the search order (and hence the visited-node count) moves.
//
// §6.1 discusses this family of orderings (Su & Wassell) and notes the
// savings fade at the moderate-to-high SNRs of practical interest —
// the ordering ablation bench quantifies that on this implementation.
func (d *SphereDecoder) EnableColumnReordering(on bool) {
	d.orderColumns = on
}

// columnOrder returns channel column indices sorted by ascending
// column energy, so the strongest stream lands in the last QR column —
// the top tree level, where an early wrong turn is most expensive.
func columnOrder(h *cmplxmat.Matrix) []int {
	nc := h.Cols
	energy := make([]float64, nc)
	for c := 0; c < nc; c++ {
		for r := 0; r < h.Rows; r++ {
			v := h.At(r, c)
			energy[c] += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	// Insertion sort: nc ≤ ~10.
	for i := 1; i < nc; i++ {
		for j := i; j > 0 && energy[order[j]] < energy[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// permuteColumns returns h with its columns rearranged to order.
func permuteColumns(h *cmplxmat.Matrix, order []int) *cmplxmat.Matrix {
	out := cmplxmat.New(h.Rows, h.Cols)
	for newCol, oldCol := range order {
		for r := 0; r < h.Rows; r++ {
			out.Set(r, newCol, h.At(r, oldCol))
		}
	}
	return out
}
