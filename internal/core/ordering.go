package core

import (
	"repro/internal/cmplxmat"
)

// EnableColumnReordering makes Prepare permute the channel columns so
// that streams with more received energy sit at the top of the search
// tree (detected first). The maximum-likelihood solution is invariant
// under column permutation, so the decoder's output is unchanged; only
// the search order (and hence the visited-node count) moves.
//
// §6.1 discusses this family of orderings (Su & Wassell) and notes the
// savings fade at the moderate-to-high SNRs of practical interest —
// the ordering ablation bench quantifies that on this implementation.
func (d *SphereDecoder) EnableColumnReordering(on bool) {
	d.orderColumns = on
}

// columnOrderInto writes channel column indices sorted by ascending
// column energy into order (len nc), so the strongest stream lands in
// the last QR column — the top tree level, where an early wrong turn
// is most expensive. energy (len nc) is caller-owned scratch, so the
// preparation cache's re-prepare path stays allocation-free.
//
//geolint:noalloc
func columnOrderInto(order []int, energy []float64, h *cmplxmat.Matrix) {
	nc := h.Cols
	for c := 0; c < nc; c++ {
		energy[c] = 0
		for r := 0; r < h.Rows; r++ {
			v := h.At(r, c)
			energy[c] += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	for i := range order {
		order[i] = i
	}
	// Insertion sort: nc ≤ ~10.
	for i := 1; i < nc; i++ {
		for j := i; j > 0 && energy[order[j]] < energy[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// permuteColumnsInto writes h with its columns rearranged to order
// into dst (same shape as h).
//
//geolint:noalloc
func permuteColumnsInto(dst, h *cmplxmat.Matrix, order []int) {
	for newCol, oldCol := range order {
		for r := 0; r < h.Rows; r++ {
			dst.Set(r, newCol, h.At(r, oldCol))
		}
	}
}
