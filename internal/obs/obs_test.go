package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("Load() = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bucket i counts v ≤ bounds[i]; the last slot is the overflow.
	want := []int64{2, 2, 2, 1}
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
	if got := s.Sum; got != 0.5+1+5+10+50+100+1000 {
		t.Errorf("Sum = %g", got)
	}
}

func TestHistogramObserveN(t *testing.T) {
	h := NewHistogram(10)
	h.ObserveN(3, 5)
	s := h.Snapshot()
	if s.Count != 5 || s.Counts[0] != 5 || s.Sum != 15 {
		t.Errorf("ObserveN: count=%d counts=%v sum=%g", s.Count, s.Counts, s.Sum)
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for i := 0; i < 100; i++ {
		h.Observe(1) // all in the first bucket
	}
	s := h.Snapshot()
	if m := s.Mean(); m != 1 {
		t.Errorf("Mean = %g, want 1", m)
	}
	if q := s.Quantile(0.5); q > 1 {
		t.Errorf("Quantile(0.5) = %g, want ≤ bound 1", q)
	}
	if q := s.Quantile(0.999); q > 1 {
		t.Errorf("Quantile(0.999) = %g, want ≤ bound 1 (all mass there)", q)
	}
	var empty HistogramSnapshot
	if m := empty.Mean(); m != 0 {
		t.Errorf("empty Mean = %g, want 0", m)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(10, 100)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Errorf("Count = %d, want %d", got, goroutines*per)
	}
}

func TestStatsRecorderAggregation(t *testing.T) {
	r := NewStatsRecorder()
	r.RecordDetect(DetectSample{
		Detector: "test",
		Levels: []LevelSample{
			{Nodes: 2, PEDCalcs: 3, BoundChecks: 4, Prunes: 1},
			{Nodes: 1, PEDCalcs: 1, BoundChecks: 2, Prunes: 0},
		},
	})
	r.RecordDetect(DetectSample{
		Detector: "test",
		Levels:   []LevelSample{{Nodes: 5, PEDCalcs: 7, BoundChecks: 9, Prunes: 2}},
	})
	s := r.Snapshot()
	if s.Detect.Detects != 2 {
		t.Errorf("Detects = %d, want 2", s.Detect.Detects)
	}
	if s.Detect.VisitedNodes != 8 || s.Detect.PEDCalcs != 11 {
		t.Errorf("nodes=%d peds=%d, want 8/11", s.Detect.VisitedNodes, s.Detect.PEDCalcs)
	}
	if len(s.Detect.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(s.Detect.Levels))
	}
	if s.Detect.Levels[0].Nodes != 7 || s.Detect.Levels[1].Nodes != 1 {
		t.Errorf("per-level nodes = %d/%d, want 7/1",
			s.Detect.Levels[0].Nodes, s.Detect.Levels[1].Nodes)
	}
	// Per-level sums must equal the aggregate.
	var nodes int64
	for _, l := range s.Detect.Levels {
		nodes += l.Nodes
	}
	if nodes != s.Detect.VisitedNodes {
		t.Errorf("level sum %d != aggregate %d", nodes, s.Detect.VisitedNodes)
	}
}

func TestStatsRecorderFramesWorkers(t *testing.T) {
	r := NewStatsRecorder()
	r.RecordFrame(FrameSample{Frame: 0, Worker: 1, Duration: time.Millisecond, OK: true, Streams: 4})
	r.RecordFrame(FrameSample{Frame: 1, Worker: 1, Duration: time.Millisecond, OK: false, Streams: 4, StreamErrors: 2})
	s := r.Snapshot()
	if s.Frames.Frames != 2 || s.Frames.FrameErrors != 1 || s.Frames.StreamErrors != 2 {
		t.Errorf("frames: %+v", s.Frames)
	}
	if len(s.Workers) != 1 || s.Workers[0].Worker != 1 || s.Workers[0].Frames != 2 {
		t.Errorf("workers: %+v", s.Workers)
	}
}

func TestStatsRecorderPoints(t *testing.T) {
	r := NewStatsRecorder()
	r.RecordPoint(PointSample{Label: "a", SNRdB: 15})
	r.RecordPoint(PointSample{Label: "b", SNRdB: 20})
	s := r.Snapshot()
	if len(s.Points) != 2 || s.Points[0].Label != "a" {
		t.Errorf("points: %+v", s.Points)
	}
}

func TestStatsRecorderConcurrent(t *testing.T) {
	r := NewStatsRecorder()
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			levels := []LevelSample{{Nodes: 1, PEDCalcs: 2}}
			for i := 0; i < per; i++ {
				r.RecordDetect(DetectSample{Detector: "d", Levels: levels})
				r.RecordDecode(DecodeSample{Stream: i % 4, PathMetric: 1, OK: true})
				r.RecordFrame(FrameSample{Frame: i, Worker: worker, OK: true, Streams: 2})
				r.RecordPoint(PointSample{Label: "p"})
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Detect.Detects != goroutines*per {
		t.Errorf("Detects = %d, want %d", s.Detect.Detects, goroutines*per)
	}
	if s.Frames.Frames != goroutines*per {
		t.Errorf("Frames = %d, want %d", s.Frames.Frames, goroutines*per)
	}
	if len(s.Points) != goroutines*per {
		t.Errorf("Points = %d, want %d", len(s.Points), goroutines*per)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewStatsRecorder(), NewStatsRecorder()
	m := Multi{a, b}
	m.RecordDetect(DetectSample{Detector: "d", Levels: []LevelSample{{Nodes: 1}}})
	m.RecordDecode(DecodeSample{OK: true})
	m.RecordFrame(FrameSample{OK: true})
	m.RecordPoint(PointSample{Label: "x"})
	for i, r := range []*StatsRecorder{a, b} {
		s := r.Snapshot()
		if s.Detect.Detects != 1 || s.Decode.Decodes != 1 || s.Frames.Frames != 1 || len(s.Points) != 1 {
			t.Errorf("recorder %d missed samples: %+v", i, s)
		}
	}
}

func TestFold(t *testing.T) {
	stats := NewStatsRecorder()
	cases := []struct {
		name string
		in   Recorder
		want Recorder
	}{
		{"nil", nil, nil},
		{"nop", Nop{}, nil},
		{"nop pointer", &Nop{}, nil},
		{"real recorder", stats, stats},
		{"empty multi", Multi{}, nil},
		{"multi of nops", Multi{Nop{}, Nop{}}, nil},
		{"multi folds to sole element", Multi{Nop{}, stats}, stats},
		{"nested multi of nops", Multi{Multi{Nop{}}, Nop{}}, nil},
	}
	for _, tc := range cases {
		if got := Fold(tc.in); got != tc.want {
			t.Errorf("%s: Fold(%#v) = %#v, want %#v", tc.name, tc.in, got, tc.want)
		}
	}
	// A Multi with several live recorders stays a Multi with the dead
	// entries dropped.
	b := NewStatsRecorder()
	folded := Fold(Multi{Nop{}, stats, Multi{b, Nop{}}})
	m, ok := folded.(Multi)
	if !ok || len(m) != 2 || m[0] != Recorder(stats) || m[1] != Recorder(b) {
		t.Errorf("Fold(mixed Multi) = %#v, want Multi{stats, b}", folded)
	}
}

func TestNopImplementsRecorder(t *testing.T) {
	var r Recorder = Nop{}
	r.RecordDetect(DetectSample{})
	r.RecordDecode(DecodeSample{})
	r.RecordFrame(FrameSample{})
	r.RecordPoint(PointSample{})
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewStatsRecorder()
	r.RecordDetect(DetectSample{Detector: "d", Levels: []LevelSample{{Nodes: 1, PEDCalcs: 2}}})
	r.RecordDecode(DecodeSample{PathMetric: 0.9, OK: true})
	r.RecordFrame(FrameSample{OK: true, Streams: 2})
	r.RecordPoint(PointSample{Label: "p", Detector: "d", Constellation: "16-QAM"})
	var buf bytes.Buffer
	r.Snapshot().WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"detect:", "decode:", "frames:", "points:"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestProgressEmit(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := &lockedWriter{w: &buf, mu: &mu}
	p := NewProgress(w, time.Hour) // ticker never fires during the test
	p.RecordFrame(FrameSample{OK: true})
	p.RecordFrame(FrameSample{OK: false})
	p.RecordDetect(DetectSample{})
	p.RecordPoint(PointSample{})
	p.Emit()
	p.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "2 frames") || !strings.Contains(out, "1 errors") {
		t.Errorf("progress line missing counts:\n%s", out)
	}
	if !strings.Contains(out, "1 points") || !strings.Contains(out, "1 detects") {
		t.Errorf("progress line missing points/detects:\n%s", out)
	}
}

type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
