package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Recorder receives observability samples from the detection, decoding,
// link and simulation layers. Implementations must be safe for
// concurrent use (one Recorder is shared across every worker of a
// parallel run) and must not retain the slices inside a sample beyond
// the call — they alias the producer's preallocated scratch.
//
// Nop is the cheap default; StatsRecorder aggregates everything into a
// Snapshot; Progress emits periodic one-line summaries; Multi fans out.
type Recorder interface {
	// RecordDetect reports one completed Detect call.
	RecordDetect(DetectSample)
	// RecordDecode reports one Viterbi stream decode.
	RecordDecode(DecodeSample)
	// RecordFrame reports one completed link-layer frame.
	RecordFrame(FrameSample)
	// RecordPoint reports one completed sweep measurement point.
	RecordPoint(PointSample)
}

// Target is implemented by components (detectors, pipelines) that can
// stream samples to a Recorder.
type Target interface {
	SetRecorder(Recorder)
}

// LevelSample is one tree level's share of a Detect call, using the
// §5.3 accounting: expanded nodes, exact PED computations, geometric
// bound-table checks, and prune events (backtracks — the sibling
// enumeration at this level ended because every remaining child lies
// outside the sphere, or the level was exhausted).
type LevelSample struct {
	Nodes       int64 `json:"nodes"`
	PEDCalcs    int64 `json:"ped_calcs"`
	BoundChecks int64 `json:"bound_checks"`
	Prunes      int64 `json:"prunes"`
}

// DetectSample is one Detect call. Levels[0] is the bottom of the tree
// (the last-detected stream); the slice is borrowed and only valid
// during the RecordDetect call.
type DetectSample struct {
	// Detector is the detector's Name().
	Detector string
	// Levels holds the per-tree-level counter deltas for this call.
	Levels []LevelSample
}

// DecodeSample is one Viterbi stream decode.
type DecodeSample struct {
	// Stream is the spatial stream index within the frame.
	Stream int
	// PathMetric is the winning trellis path metric normalized per
	// coded bit (higher = cleaner reception).
	PathMetric float64
	// OK reports whether the stream's CRC verified.
	OK bool
}

// Tier identifies which rung of the overload-degradation ladder served
// a frame: the full Geosphere search, the bounded K-best search, or
// plain ZF. TierNone marks pipelines outside the ladder (the batch
// measurement path).
type Tier uint8

// Degradation-ladder tiers, in decreasing complexity order.
const (
	TierNone Tier = iota
	TierGeosphere
	TierKBest
	TierZF
	numTiers
)

// String returns the tier's snapshot label.
func (t Tier) String() string {
	switch t {
	case TierGeosphere:
		return "geosphere"
	case TierKBest:
		return "kbest"
	case TierZF:
		return "zf"
	default:
		return "none"
	}
}

// FrameSample is one completed link-layer frame.
type FrameSample struct {
	// Frame is the frame index within the run.
	Frame int
	// Worker identifies the pipeline worker that detected the frame.
	Worker int
	// Tier is the degradation-ladder rung that served the frame;
	// TierNone outside the ladder.
	Tier Tier
	// Duration is the frame's wall-clock processing time. For a frame
	// served in a batch it is the batch duration divided by the batch
	// size — per-frame shares of a fused sweep are not separable.
	Duration time.Duration
	// Batch is the size of the micro-batch the frame was served in;
	// 0 or 1 both mean the frame ran through the single-frame path.
	Batch int
	// OK reports whether every stream's CRC verified.
	OK bool
	// Streams and StreamErrors count the frame's spatial streams and
	// how many of them failed.
	Streams      int
	StreamErrors int
	// PrepHits and PrepMisses count this frame's channel-preparation
	// cache outcomes (per-subcarrier PreparedChannel reuse vs refill).
	// Both are zero when the pipeline runs without a prep pool.
	PrepHits   uint64
	PrepMisses uint64
	// ProjReuse counts interference-projection terms the frame's tree
	// searches served from the incremental projection stack instead of
	// recomputing (core.Stats.ProjReuse delta).
	ProjReuse int64
	// QRUpdates counts channel preparations this frame absorbed with
	// rank-1 QR updates instead of full refactorizations. Zero unless
	// the pipeline enables incremental preparation.
	QRUpdates uint64
	// SchedZF, SchedKBest and SchedSphere count the condition-adaptive
	// scheduler's tier assignments this frame (one per detector
	// preparation call); GatePass, KBestFallbacks and SphereFallbacks
	// split the frame's Detect calls by how each vector was resolved,
	// and SeededRadius counts the sphere escalations that started from
	// the ZF-residual radius. All zero when adaptive detection is off.
	SchedZF, SchedKBest, SchedSphere uint64
	GatePass, KBestFallbacks         uint64
	SphereFallbacks, SeededRadius    uint64
	// Kappa2dB holds the per-subcarrier diagonal condition estimates
	// (dB) of the frame's prepared channels; entries may be NaN for
	// unfilled cache slots. Like Levels, the slice is borrowed producer
	// scratch, only valid during the RecordFrame call. Empty when the
	// pipeline runs without a prep pool or with adaptive detection off.
	Kappa2dB []float64
}

// PointSample is one completed sweep measurement point (one
// detector/constellation/SNR cell of an experiment).
type PointSample struct {
	Label         string  `json:"label"`
	Detector      string  `json:"detector"`
	Constellation string  `json:"constellation"`
	SNRdB         float64 `json:"snr_db"`
	Frames        int     `json:"frames"`
	FER           float64 `json:"fer"`
	NetMbps       float64 `json:"net_mbps"`
	PEDCalcs      int64   `json:"ped_calcs"`
	VisitedNodes  int64   `json:"visited_nodes"`
}

// Nop is the no-op Recorder: every method returns immediately.
type Nop struct{}

var _ Recorder = Nop{}

// RecordDetect implements Recorder.
func (Nop) RecordDetect(DetectSample) {}

// RecordDecode implements Recorder.
func (Nop) RecordDecode(DecodeSample) {}

// RecordFrame implements Recorder.
func (Nop) RecordFrame(FrameSample) {}

// RecordPoint implements Recorder.
func (Nop) RecordPoint(PointSample) {}

// Fold canonicalizes a Recorder for storage in a hot-path struct:
// nil, Nop and an empty Multi all fold to nil, so callers can gate
// every emission on a single `rec != nil` branch instead of paying an
// interface dispatch into a no-op. A Multi with exactly one element
// folds to that element (recursively). Every SetRecorder in the repo
// is expected to store Fold(r), not r — the recorderhygiene analyzer
// enforces this.
func Fold(r Recorder) Recorder {
	switch v := r.(type) {
	case nil:
		return nil
	case Nop:
		return nil
	case *Nop:
		return nil
	case Multi:
		kept := make(Multi, 0, len(v))
		for _, sub := range v {
			if f := Fold(sub); f != nil {
				kept = append(kept, f)
			}
		}
		switch len(kept) {
		case 0:
			return nil
		case 1:
			return kept[0]
		default:
			return kept
		}
	default:
		return r
	}
}

// Multi fans every sample out to each recorder in order.
type Multi []Recorder

var _ Recorder = Multi{}

// RecordDetect implements Recorder.
func (m Multi) RecordDetect(s DetectSample) {
	for _, r := range m {
		r.RecordDetect(s)
	}
}

// RecordDecode implements Recorder.
func (m Multi) RecordDecode(s DecodeSample) {
	for _, r := range m {
		r.RecordDecode(s)
	}
}

// RecordFrame implements Recorder.
func (m Multi) RecordFrame(s FrameSample) {
	for _, r := range m {
		r.RecordFrame(s)
	}
}

// RecordPoint implements Recorder.
func (m Multi) RecordPoint(s PointSample) {
	for _, r := range m {
		r.RecordPoint(s)
	}
}

// MaxLevels bounds the per-level counter arrays of StatsRecorder;
// deeper levels (beyond any shape in the evaluation — the largest is
// the 10×10 system of Figure 13) fold into the last slot.
const MaxLevels = 16

// maxWorkers bounds the per-worker timing array; higher worker ids
// fold into the last slot.
const maxWorkers = 64

// levelCounters aggregates one tree level across Detect calls.
type levelCounters struct {
	nodes, peds, bounds, prunes Counter
}

// workerCounters aggregates one pipeline worker's activity.
type workerCounters struct {
	frames    Counter
	busyNanos Counter
}

// StatsRecorder aggregates every sample into atomic counters and
// fixed-bucket histograms, safe for concurrent use and allocation-free
// on the RecordDetect/RecordDecode/RecordFrame hot paths. Snapshot
// publishes the accumulated state.
type StatsRecorder struct {
	start time.Time

	// Detection.
	detects Counter
	levels  [MaxLevels]levelCounters
	// pedPerDetect buckets the exact-PED count of each Detect call,
	// the per-subcarrier quantity of Figures 14 and 15.
	pedPerDetect *Histogram
	// pruneDepth buckets the tree level of every prune event: mass at
	// high levels means whole subtrees died early.
	pruneDepth *Histogram

	// Decoding.
	decodes     Counter
	crcFailures Counter
	// pathMetric buckets the per-coded-bit winning Viterbi path metric.
	pathMetric *Histogram

	// Link.
	frames       Counter
	frameErrors  Counter
	streams      Counter
	streamErrors Counter
	prepHits     Counter
	prepMisses   Counter
	projReuse    Counter
	qrUpdates    Counter
	tiers        [numTiers]Counter
	workers      [maxWorkers]workerCounters

	// Condition-adaptive scheduling.
	schedZF         Counter
	schedKBest      Counter
	schedSphere     Counter
	gatePass        Counter
	kbestFallbacks  Counter
	sphereFallbacks Counter
	seededRadius    Counter
	// kappa2dB buckets the per-subcarrier diagonal condition estimates
	// the adaptive runs observed (NaN entries are skipped).
	kappa2dB *Histogram

	mu     sync.Mutex
	points []PointSample
}

var _ Recorder = (*StatsRecorder)(nil)

// NewStatsRecorder returns an empty aggregating recorder.
func NewStatsRecorder() *StatsRecorder {
	return &StatsRecorder{
		start:        time.Now(),
		pedPerDetect: NewHistogram(4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
		pruneDepth:   NewHistogram(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11),
		pathMetric:   NewHistogram(0.25, 0.5, 0.75, 1, 1.25, 1.5, 2, 3),
		kappa2dB:     NewHistogram(0, 3, 6, 9, 12, 15, 18, 21, 24, 30, 40),
	}
}

// RecordDetect implements Recorder.
//
//geolint:noalloc
func (r *StatsRecorder) RecordDetect(s DetectSample) {
	r.detects.Inc()
	var peds int64
	for l := range s.Levels {
		ls := &s.Levels[l]
		slot := l
		if slot >= MaxLevels {
			slot = MaxLevels - 1
		}
		lc := &r.levels[slot]
		lc.nodes.Add(ls.Nodes)
		lc.peds.Add(ls.PEDCalcs)
		lc.bounds.Add(ls.BoundChecks)
		lc.prunes.Add(ls.Prunes)
		peds += ls.PEDCalcs
		r.pruneDepth.ObserveN(float64(l), ls.Prunes)
	}
	r.pedPerDetect.Observe(float64(peds))
}

// RecordDecode implements Recorder.
//
//geolint:noalloc
func (r *StatsRecorder) RecordDecode(s DecodeSample) {
	r.decodes.Inc()
	if !s.OK {
		r.crcFailures.Inc()
	}
	r.pathMetric.Observe(s.PathMetric)
}

// RecordFrame implements Recorder.
//
//geolint:noalloc
func (r *StatsRecorder) RecordFrame(s FrameSample) {
	r.frames.Inc()
	if !s.OK {
		r.frameErrors.Inc()
	}
	r.streams.Add(int64(s.Streams))
	r.streamErrors.Add(int64(s.StreamErrors))
	r.prepHits.Add(int64(s.PrepHits))
	r.prepMisses.Add(int64(s.PrepMisses))
	r.projReuse.Add(s.ProjReuse)
	r.qrUpdates.Add(int64(s.QRUpdates))
	r.schedZF.Add(int64(s.SchedZF))
	r.schedKBest.Add(int64(s.SchedKBest))
	r.schedSphere.Add(int64(s.SchedSphere))
	r.gatePass.Add(int64(s.GatePass))
	r.kbestFallbacks.Add(int64(s.KBestFallbacks))
	r.sphereFallbacks.Add(int64(s.SphereFallbacks))
	r.seededRadius.Add(int64(s.SeededRadius))
	for _, k := range s.Kappa2dB {
		if !math.IsNaN(k) {
			r.kappa2dB.Observe(k)
		}
	}
	t := s.Tier
	if t >= numTiers {
		t = TierNone
	}
	r.tiers[t].Inc()
	w := s.Worker
	if w < 0 {
		w = 0
	}
	if w >= maxWorkers {
		w = maxWorkers - 1
	}
	r.workers[w].frames.Inc()
	r.workers[w].busyNanos.Add(int64(s.Duration))
}

// RecordPoint implements Recorder.
//
//geolint:noalloc
func (r *StatsRecorder) RecordPoint(s PointSample) {
	r.mu.Lock()
	r.points = append(r.points, s)
	r.mu.Unlock()
}

// LevelSnapshot is one tree level's aggregated counters.
type LevelSnapshot struct {
	Level       int   `json:"level"`
	Nodes       int64 `json:"nodes"`
	PEDCalcs    int64 `json:"ped_calcs"`
	BoundChecks int64 `json:"bound_checks"`
	Prunes      int64 `json:"prunes"`
}

// DetectSnapshot aggregates the detection layer.
type DetectSnapshot struct {
	Detects      int64             `json:"detects"`
	VisitedNodes int64             `json:"visited_nodes"`
	PEDCalcs     int64             `json:"ped_calcs"`
	BoundChecks  int64             `json:"bound_checks"`
	Prunes       int64             `json:"prunes"`
	Levels       []LevelSnapshot   `json:"levels"`
	PEDPerDetect HistogramSnapshot `json:"ped_per_detect"`
	PruneDepth   HistogramSnapshot `json:"prune_depth"`
}

// DecodeSnapshot aggregates the FEC layer.
type DecodeSnapshot struct {
	Decodes     int64             `json:"decodes"`
	CRCFailures int64             `json:"crc_failures"`
	PathMetric  HistogramSnapshot `json:"path_metric"`
}

// FrameSnapshot aggregates the link layer. PrepareHits and
// PrepareMisses total the channel-preparation cache outcomes across
// all workers; their sum is the number of detector preparations, and
// the hit fraction is the cache's effectiveness for the run.
// ProjReuse totals the interference-projection terms the tree searches
// served from their incremental projection stacks, and QRUpdates the
// preparations absorbed by rank-1 QR updates instead of full
// refactorizations. Tiers splits the frames by degradation-ladder
// rung (all mass on "none" outside the serving path).
type FrameSnapshot struct {
	Frames        int64            `json:"frames"`
	FrameErrors   int64            `json:"frame_errors"`
	Streams       int64            `json:"streams"`
	StreamErrors  int64            `json:"stream_errors"`
	PrepareHits   int64            `json:"prepare_hits"`
	PrepareMisses int64            `json:"prepare_misses"`
	ProjReuse     int64            `json:"proj_reuse"`
	QRUpdates     int64            `json:"qr_updates"`
	Tiers         TierSnapshot     `json:"tiers"`
	Adaptive      AdaptiveSnapshot `json:"adaptive"`
	BusySeconds   float64          `json:"busy_seconds"`
}

// AdaptiveSnapshot aggregates the condition-adaptive scheduler:
// per-subcarrier tier assignments (Sched*), per-vector resolutions
// (GatePass emitted the provably-ML ZF decision; the fallbacks ran the
// scheduled tree search, SeededRadius of the sphere ones starting from
// the ZF-residual radius), and the observed κ̂² distribution in dB.
// All-zero when adaptive detection is off.
type AdaptiveSnapshot struct {
	SchedZF         int64             `json:"sched_zf"`
	SchedKBest      int64             `json:"sched_kbest"`
	SchedSphere     int64             `json:"sched_sphere"`
	GatePass        int64             `json:"gate_pass"`
	KBestFallbacks  int64             `json:"kbest_fallbacks"`
	SphereFallbacks int64             `json:"sphere_fallbacks"`
	SeededRadius    int64             `json:"seeded_radius"`
	Kappa2dB        HistogramSnapshot `json:"kappa2_db"`
}

// TierSnapshot counts frames per degradation-ladder rung.
type TierSnapshot struct {
	None      int64 `json:"none"`
	Geosphere int64 `json:"geosphere"`
	KBest     int64 `json:"kbest"`
	ZF        int64 `json:"zf"`
}

// WorkerSnapshot is one pipeline worker's activity.
type WorkerSnapshot struct {
	Worker      int     `json:"worker"`
	Frames      int64   `json:"frames"`
	BusySeconds float64 `json:"busy_seconds"`
}

// Snapshot is the serializable state of a StatsRecorder; its JSON
// encoding is the `geosim -stats json` schema, pinned by a golden
// test.
type Snapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Detect        DetectSnapshot   `json:"detect"`
	Decode        DecodeSnapshot   `json:"decode"`
	Frames        FrameSnapshot    `json:"frames"`
	Workers       []WorkerSnapshot `json:"workers"`
	Points        []PointSample    `json:"points"`
}

// Snapshot returns a point-in-time copy of the accumulated state.
// Counters are individually atomic but not mutually consistent while
// producers are still running.
func (r *StatsRecorder) Snapshot() Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Detect: DetectSnapshot{
			Detects:      r.detects.Load(),
			PEDPerDetect: r.pedPerDetect.Snapshot(),
			PruneDepth:   r.pruneDepth.Snapshot(),
		},
		Decode: DecodeSnapshot{
			Decodes:     r.decodes.Load(),
			CRCFailures: r.crcFailures.Load(),
			PathMetric:  r.pathMetric.Snapshot(),
		},
		Frames: FrameSnapshot{
			Frames:        r.frames.Load(),
			FrameErrors:   r.frameErrors.Load(),
			Streams:       r.streams.Load(),
			StreamErrors:  r.streamErrors.Load(),
			PrepareHits:   r.prepHits.Load(),
			PrepareMisses: r.prepMisses.Load(),
			ProjReuse:     r.projReuse.Load(),
			QRUpdates:     r.qrUpdates.Load(),
			Tiers: TierSnapshot{
				None:      r.tiers[TierNone].Load(),
				Geosphere: r.tiers[TierGeosphere].Load(),
				KBest:     r.tiers[TierKBest].Load(),
				ZF:        r.tiers[TierZF].Load(),
			},
			Adaptive: AdaptiveSnapshot{
				SchedZF:         r.schedZF.Load(),
				SchedKBest:      r.schedKBest.Load(),
				SchedSphere:     r.schedSphere.Load(),
				GatePass:        r.gatePass.Load(),
				KBestFallbacks:  r.kbestFallbacks.Load(),
				SphereFallbacks: r.sphereFallbacks.Load(),
				SeededRadius:    r.seededRadius.Load(),
				Kappa2dB:        r.kappa2dB.Snapshot(),
			},
		},
		Workers: []WorkerSnapshot{},
		Points:  []PointSample{},
	}
	top := -1
	for l := range r.levels {
		if r.levels[l].nodes.Load() > 0 || r.levels[l].prunes.Load() > 0 {
			top = l
		}
	}
	s.Detect.Levels = make([]LevelSnapshot, 0, top+1)
	for l := 0; l <= top; l++ {
		lc := &r.levels[l]
		ls := LevelSnapshot{
			Level:       l,
			Nodes:       lc.nodes.Load(),
			PEDCalcs:    lc.peds.Load(),
			BoundChecks: lc.bounds.Load(),
			Prunes:      lc.prunes.Load(),
		}
		s.Detect.Levels = append(s.Detect.Levels, ls)
		s.Detect.VisitedNodes += ls.Nodes
		s.Detect.PEDCalcs += ls.PEDCalcs
		s.Detect.BoundChecks += ls.BoundChecks
		s.Detect.Prunes += ls.Prunes
	}
	for w := range r.workers {
		wf := r.workers[w].frames.Load()
		if wf == 0 {
			continue
		}
		busy := float64(r.workers[w].busyNanos.Load()) / 1e9
		s.Workers = append(s.Workers, WorkerSnapshot{Worker: w, Frames: wf, BusySeconds: busy})
		s.Frames.BusySeconds += busy
	}
	r.mu.Lock()
	s.Points = append(s.Points, r.points...)
	r.mu.Unlock()
	return s
}

// WriteText renders the snapshot as a human-readable report.
func (s Snapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "observability snapshot (%.1fs)\n", s.UptimeSeconds)
	d := s.Detect
	fmt.Fprintf(w, "  detect: %d calls, %d nodes, %d PEDs (%.1f/detect), %d bound checks, %d prunes\n",
		d.Detects, d.VisitedNodes, d.PEDCalcs, d.PEDPerDetect.Mean(), d.BoundChecks, d.Prunes)
	for _, l := range d.Levels {
		fmt.Fprintf(w, "    level %2d: %10d nodes %10d PEDs %10d bounds %10d prunes\n",
			l.Level, l.Nodes, l.PEDCalcs, l.BoundChecks, l.Prunes)
	}
	fmt.Fprintf(w, "  decode: %d streams, %d CRC failures, path metric mean %.3f/bit\n",
		s.Decode.Decodes, s.Decode.CRCFailures, s.Decode.PathMetric.Mean())
	fmt.Fprintf(w, "  frames: %d (%d errors), %d streams (%d errors), %.2fs busy\n",
		s.Frames.Frames, s.Frames.FrameErrors, s.Frames.Streams, s.Frames.StreamErrors, s.Frames.BusySeconds)
	if total := s.Frames.PrepareHits + s.Frames.PrepareMisses + s.Frames.QRUpdates; total > 0 {
		fmt.Fprintf(w, "  prepare cache: %d hits / %d preparations (%.1f%% hit rate), %d QR updates\n",
			s.Frames.PrepareHits, total, 100*float64(s.Frames.PrepareHits)/float64(total), s.Frames.QRUpdates)
	}
	if s.Frames.ProjReuse > 0 {
		fmt.Fprintf(w, "  projection stack: %d reused terms\n", s.Frames.ProjReuse)
	}
	if tt := s.Frames.Tiers; tt.Geosphere+tt.KBest+tt.ZF > 0 {
		fmt.Fprintf(w, "  tiers: %d geosphere, %d kbest, %d zf\n", tt.Geosphere, tt.KBest, tt.ZF)
	}
	if ad := s.Frames.Adaptive; ad.SchedZF+ad.SchedKBest+ad.SchedSphere > 0 {
		resolved := ad.GatePass + ad.KBestFallbacks + ad.SphereFallbacks
		rate := 0.0
		if resolved > 0 {
			rate = 100 * float64(ad.GatePass) / float64(resolved)
		}
		fmt.Fprintf(w, "  adaptive: sched %d zf / %d kbest / %d sphere, gate %.1f%% (%d kbest + %d sphere fallbacks, %d seeded), κ̂² mean %.1f dB\n",
			ad.SchedZF, ad.SchedKBest, ad.SchedSphere, rate,
			ad.KBestFallbacks, ad.SphereFallbacks, ad.SeededRadius, ad.Kappa2dB.Mean())
	}
	for _, ws := range s.Workers {
		fmt.Fprintf(w, "    worker %2d: %6d frames %8.2fs busy\n", ws.Worker, ws.Frames, ws.BusySeconds)
	}
	fmt.Fprintf(w, "  points: %d\n", len(s.Points))
	for _, p := range s.Points {
		fmt.Fprintf(w, "    %-40s %-18s %-8s %5.1fdB FER=%.3f %7.2f Mbps %10d PEDs\n",
			p.Label, p.Detector, p.Constellation, p.SNRdB, p.FER, p.NetMbps, p.PEDCalcs)
	}
}

// Progress emits one-line run summaries to w every interval, counting
// frames, points and detects as they stream in. It is safe to share
// across workers. Stop emits a final line and halts the ticker.
type Progress struct {
	w     io.Writer
	start time.Time

	frames      Counter
	frameErrors Counter
	points      Counter
	detects     Counter

	mu   sync.Mutex // serializes writes to w
	done chan struct{}
	wg   sync.WaitGroup
}

var _ Recorder = (*Progress)(nil)

// NewProgress returns a Progress writing to w every interval. An
// interval ≤ 0 disables the ticker; Emit can still be called manually.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	p := &Progress{w: w, start: time.Now(), done: make(chan struct{})}
	if interval > 0 {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					p.Emit()
				case <-p.done:
					return
				}
			}
		}()
	}
	return p
}

// RecordDetect implements Recorder.
//
//geolint:noalloc
func (p *Progress) RecordDetect(DetectSample) { p.detects.Inc() }

// RecordDecode implements Recorder.
//
//geolint:noalloc
func (p *Progress) RecordDecode(DecodeSample) {}

// RecordFrame implements Recorder.
//
//geolint:noalloc
func (p *Progress) RecordFrame(s FrameSample) {
	p.frames.Inc()
	if !s.OK {
		p.frameErrors.Inc()
	}
}

// RecordPoint implements Recorder.
//
//geolint:noalloc
func (p *Progress) RecordPoint(PointSample) { p.points.Inc() }

// Emit writes one progress line immediately.
func (p *Progress) Emit() {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "progress: %s elapsed, %d points, %d frames (%d errors), %d detects\n",
		time.Since(p.start).Round(time.Second), p.points.Load(),
		p.frames.Load(), p.frameErrors.Load(), p.detects.Load())
}

// Stop halts the ticker goroutine and emits a final line. It is
// idempotent only in the sense that calling it twice panics on a
// closed channel; call it once.
func (p *Progress) Stop() {
	close(p.done)
	p.wg.Wait()
	p.Emit()
}
