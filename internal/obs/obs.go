// Package obs is the repository's zero-dependency observability
// subsystem: lock-free counters, fixed-bucket histograms and the
// Recorder interface through which the detection, link and simulation
// layers stream measurement samples.
//
// The paper's headline claims are complexity claims — Geosphere's
// per-node cost stays flat up to 256-QAM (§5.3) because zigzag
// enumeration and geometrical pruning avoid exact PED computations —
// so the counters mirror the §5.3 accounting (visited nodes, exact
// PEDs, bound checks) broken down per tree level, where the pruning
// wins actually happen.
//
// Design constraints, in order:
//
//  1. Hot-path safety: recording a sample must never allocate. Samples
//     carry slices borrowed from the producer's preallocated scratch;
//     implementations that retain data must copy it during the call.
//  2. Race safety: one Recorder may be shared by every worker of a
//     parallel sweep. All built-in recorders use atomics (or a mutex
//     for the low-rate point path) and are safe for concurrent use.
//  3. Zero cost when off: producers hold a nil Recorder by default and
//     skip sample assembly entirely; Nop exists for callers that need
//     a non-nil value.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically-increasing atomic counter, safe for
// concurrent use. The zero value is ready.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//geolint:noalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//geolint:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// atomicFloat64 accumulates float64 values with a CAS loop, so
// histogram sums stay exact-ish (modulo float addition order) without
// a lock.
type atomicFloat64 struct {
	bits atomic.Uint64
}

//geolint:noalloc
func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram, safe for concurrent use and
// allocation-free on Observe. Bucket i counts observations v ≤
// bounds[i] (first matching bucket); one implicit overflow bucket
// catches everything above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomicFloat64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. The bounds are fixed for the histogram's lifetime.
func NewHistogram(bounds ...float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation of v.
//
//geolint:noalloc
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n observations of v. n ≤ 0 records nothing.
//
//geolint:noalloc
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(n)
	h.count.Add(n)
	h.sum.Add(v * float64(n))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot returns a point-in-time copy of the histogram. The counts
// of a concurrently-updated histogram are individually atomic but not
// mutually consistent; totals may be off by in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the serializable state of a Histogram. Counts
// has one entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the average observed value, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1): the
// smallest bucket bound at which the cumulative count reaches q. It
// returns +Inf when the quantile falls in the overflow bucket and 0
// when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}
