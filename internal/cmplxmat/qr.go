package cmplxmat

import (
	"math"
	"math/cmplx"
)

// QR holds the thin QR factorization of an m×n matrix with m ≥ n:
// A = Q·R with Q m×n having orthonormal columns (Q*Q = I) and R n×n
// upper triangular. The sphere decoder requires the diagonal of R to
// be real and non-negative, which this implementation guarantees.
//
// A QR value also owns the scratch buffers the factorization needs,
// so a caller that repeatedly factorizes same-shaped matrices via
// QRDecomposeInto performs no allocations after the first call.
type QR struct {
	Q *Matrix // m×n, Q*Q = I
	R *Matrix // n×n, upper triangular, real non-negative diagonal

	// Factorization workspace, lazily sized by QRDecomposeInto and
	// reused across calls when the input shape is unchanged.
	work  *Matrix      // m×n working copy being triangularized
	qfull *Matrix      // m×m accumulated product of reflections
	v     []complex128 // Householder vector (decompose) / q̃ (update), length m
	// Rank-1 update workspace, lazily sized by QRUpdateInto.
	uw   []complex128 // projected update coefficients, length n+1
	hess *Matrix      // (n+1)×n working factor being re-triangularized
}

// QRDecompose computes the thin QR factorization of a using Householder
// reflections. It panics if a has more columns than rows.
func QRDecompose(a *Matrix) *QR {
	return QRDecomposeInto(new(QR), a)
}

// QRDecomposeInto factorizes a into dst, reusing dst's factors and
// internal workspace when their shapes already match a. It returns dst.
// The result is bitwise identical to QRDecompose(a) — both run the
// same factorization loop — so callers may cache and re-fill a QR
// without perturbing downstream arithmetic. It panics if a has more
// columns than rows.
//
//geolint:noalloc
func QRDecomposeInto(dst *QR, a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(ErrShape)
	}
	// Working copy that will become the triangular factor (top n rows).
	r := dst.work
	if r == nil || r.Rows != m || r.Cols != n {
		r = New(m, n)
		dst.work = r
	}
	copy(r.Data, a.Data)
	// qfull accumulates the product of reflections, starting from I.
	qfull := dst.qfull
	if qfull == nil || qfull.Rows != m || qfull.Cols != m {
		qfull = New(m, m)
		dst.qfull = qfull
	} else {
		for i := range qfull.Data {
			qfull.Data[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		qfull.Set(i, i, 1)
	}
	if cap(dst.v) < m {
		dst.v = make([]complex128, m) //geolint:alloc-ok first use or reshape only
	}
	v := dst.v[:m]

	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			x := r.At(i, k)
			norm += real(x)*real(x) + imag(x)*imag(x)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		x0 := r.At(k, k)
		// alpha = -e^{jθ(x0)}·‖x‖ so that the new diagonal is real ≥ 0
		// after the sign fix below.
		var phase complex128
		if x0 == 0 {
			phase = 1
		} else {
			phase = x0 / complex(cmplx.Abs(x0), 0)
		}
		alpha := -phase * complex(norm, 0)
		var vnorm2 float64
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
		}
		v[k] -= alpha
		for i := k; i < m; i++ {
			vnorm2 += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
		}
		if vnorm2 == 0 {
			continue
		}
		beta := complex(2/vnorm2, 0)
		// Apply I − β·v·v* to the remaining columns of r.
		for j := k; j < n; j++ {
			var dot complex128
			for i := k; i < m; i++ {
				dot += cmplx.Conj(v[i]) * r.At(i, j)
			}
			dot *= beta
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-dot*v[i])
			}
		}
		// Accumulate into qfull: qfull ← qfull·(I − β·v·v*).
		for i := 0; i < m; i++ {
			var dot complex128
			for l := k; l < m; l++ {
				dot += qfull.At(i, l) * v[l]
			}
			dot *= beta
			for l := k; l < m; l++ {
				qfull.Set(i, l, qfull.At(i, l)-dot*cmplx.Conj(v[l]))
			}
		}
	}

	// Force the diagonal of R real non-negative by absorbing phases
	// into Q's columns.
	for k := 0; k < n; k++ {
		d := r.At(k, k)
		ad := cmplx.Abs(d)
		if ad == 0 {
			continue
		}
		ph := d / complex(ad, 0)
		if ph == 1 {
			continue
		}
		inv := cmplx.Conj(ph)
		for j := k; j < n; j++ {
			r.Set(k, j, inv*r.At(k, j))
		}
		r.Set(k, k, complex(ad, 0)) // exact: kill phase-fix roundoff
		for i := 0; i < m; i++ {
			qfull.Set(i, k, ph*qfull.At(i, k))
		}
	}

	// Extract the thin factors.
	q := dst.Q
	if q == nil || q.Rows != m || q.Cols != n {
		q = New(m, n)
		dst.Q = q
	}
	for i := 0; i < m; i++ {
		copy(q.Row(i), qfull.Row(i)[:n])
	}
	rt := dst.R
	if rt == nil || rt.Rows != n || rt.Cols != n {
		rt = New(n, n)
		dst.R = rt
	}
	for i := 0; i < n; i++ {
		row := rt.Row(i)
		for j := 0; j < i; j++ {
			row[j] = 0 // strictly lower part stays exactly zero
		}
		for j := i; j < n; j++ {
			row[j] = r.At(i, j)
		}
	}
	return dst
}

// QRUpdateInto applies the rank-1 update A ← A + u·v* to the
// factorization held in dst, rewriting dst.Q and dst.R in place so
// they factor the perturbed matrix: Q'·R' = Q·R + u·v*. len(u) must be
// m and len(v) must be n for an m×n factorization; dst must hold a
// completed factorization (panics otherwise).
//
// The update is the standard Givens scheme (Golub & Van Loan §12.5)
// adapted to the thin factors: project u onto range(Q), extend the
// basis with the normalized residual when it is numerically
// significant, chase the projected coefficients into the first row,
// add the rank-1 term there, and re-triangularize the resulting upper
// Hessenberg factor — O(mn + n²) work against the O(mn² + m²n) of a
// fresh factorization. Like QRDecomposeInto it leaves the diagonal of
// R real and non-negative. The factors drift from a freshly computed
// factorization only by normal floating-point roundoff; callers that
// chain many updates should refactorize periodically (see
// core.PreparedChannel) to keep the accumulated error bounded.
//
//geolint:noalloc
func QRUpdateInto(dst *QR, u, v []complex128) *QR {
	if dst.Q == nil || dst.R == nil {
		panic(ErrShape)
	}
	m, n := dst.Q.Rows, dst.Q.Cols
	if len(u) != m || len(v) != n {
		panic(ErrShape)
	}
	if cap(dst.uw) < n+1 {
		dst.uw = make([]complex128, n+1) //geolint:alloc-ok first use or reshape only
	}
	w := dst.uw[:n+1]
	if cap(dst.v) < m {
		dst.v = make([]complex128, m) //geolint:alloc-ok first use or reshape only
	}
	qt := dst.v[:m]
	q := dst.Q
	// w = Q*·u and the in-range residual u⊥ = u − Q·w.
	var unorm2 float64
	for i := 0; i < m; i++ {
		unorm2 += real(u[i])*real(u[i]) + imag(u[i])*imag(u[i])
	}
	for j := 0; j < n; j++ {
		var s complex128
		for i := 0; i < m; i++ {
			s += cmplx.Conj(q.At(i, j)) * u[i]
		}
		w[j] = s
	}
	var rho2 float64
	for i := 0; i < m; i++ {
		s := u[i]
		row := q.Row(i)
		for j := 0; j < n; j++ {
			s -= row[j] * w[j]
		}
		qt[i] = s
		rho2 += real(s)*real(s) + imag(s)*imag(s)
	}
	rho := math.Sqrt(rho2)
	// Keep the extra basis column only when the residual is numerically
	// meaningful; below this threshold normalizing it would amplify
	// cancellation noise into a garbage direction (and for m == n no
	// residual direction exists at all).
	p := n // active rows of the augmented factor
	if rho > 1e-14*math.Sqrt(unorm2) && m > n {
		inv := complex(1/rho, 0)
		for i := 0; i < m; i++ {
			qt[i] *= inv
		}
		w[n] = complex(rho, 0)
		p = n + 1
	}
	// hs holds [R; 0] with p rows; rotations chase w into its first
	// entry, turning hs upper Hessenberg, then the rank-1 term lands in
	// row 0 and a second sweep re-triangularizes.
	hs := dst.hess
	if hs == nil || hs.Rows != n+1 || hs.Cols != n {
		hs = New(n+1, n)
		dst.hess = hs
	}
	for i := 0; i < n; i++ {
		copy(hs.Row(i), dst.R.Row(i))
	}
	for j := 0; j < n; j++ {
		hs.Row(n)[j] = 0
	}
	for k := p - 2; k >= 0; k-- {
		updGivens(dst, hs, k, w[k], w[k+1], &w[k])
		w[k+1] = 0
	}
	alpha := w[0]
	row0 := hs.Row(0)
	for j := 0; j < n; j++ {
		row0[j] += alpha * cmplx.Conj(v[j])
	}
	kmax := p - 1
	if kmax > n-1 {
		kmax = n - 1
	}
	for k := 0; k <= kmax; k++ {
		if k+1 >= p {
			break
		}
		updGivens(dst, hs, k, hs.At(k, k), hs.At(k+1, k), nil)
		hs.Set(k+1, k, 0)
	}
	// Extract the updated thin factors and restore the real
	// non-negative diagonal.
	for i := 0; i < n; i++ {
		row := dst.R.Row(i)
		src := hs.Row(i)
		for j := 0; j < i; j++ {
			row[j] = 0
		}
		for j := i; j < n; j++ {
			row[j] = src[j]
		}
	}
	for k := 0; k < n; k++ {
		d := dst.R.At(k, k)
		ad := cmplx.Abs(d)
		if ad == 0 {
			continue
		}
		ph := d / complex(ad, 0)
		if ph == 1 {
			continue
		}
		inv := cmplx.Conj(ph)
		for j := k; j < n; j++ {
			dst.R.Set(k, j, inv*dst.R.At(k, j))
		}
		dst.R.Set(k, k, complex(ad, 0)) // exact: kill phase-fix roundoff
		for i := 0; i < m; i++ {
			q.Set(i, k, ph*q.At(i, k))
		}
	}
	return dst
}

// updGivens applies one Givens rotation on rows (k, k+1) of hs —
// chosen to map the pair (a, b) to (√(|a|²+|b|²), 0) — and the
// conjugate-transposed rotation to the corresponding basis columns:
// columns (k, k+1) of Q, with dst.v standing in for the virtual column
// n. When rOut is non-nil the rotated pair head is stored through it
// (used while chasing the w vector). A zero b leaves everything
// untouched.
//
//geolint:noalloc
func updGivens(dst *QR, hs *Matrix, k int, a, b complex128, rOut *complex128) {
	if b == 0 {
		if rOut != nil {
			*rOut = a
		}
		return
	}
	habs := math.Hypot(cmplx.Abs(a), cmplx.Abs(b))
	r := complex(habs, 0)
	c := cmplx.Conj(a) / r
	s := cmplx.Conj(b) / r
	if rOut != nil {
		*rOut = r
	}
	n := hs.Cols
	rowk, rowk1 := hs.Row(k), hs.Row(k+1)
	// Both phases keep rows k and k+1 exactly zero left of column k
	// (upper triangular before the chase, Hessenberg during the
	// re-triangularization), so the rotation starts there.
	for j := k; j < n; j++ {
		x, y := rowk[j], rowk1[j]
		rowk[j] = c*x + s*y
		rowk1[j] = -b/r*x + a/r*y
	}
	// Basis columns: [colk, colk1] ← [colk, colk1]·G*, with G the
	// rotation above; column n is the virtual residual direction in
	// dst.v.
	q := dst.Q
	m := q.Rows
	nq := q.Cols
	for i := 0; i < m; i++ {
		var x, y complex128
		if k < nq {
			x = q.At(i, k)
		} else {
			x = dst.v[i]
		}
		if k+1 < nq {
			y = q.At(i, k+1)
		} else {
			y = dst.v[i]
		}
		nx := x*cmplx.Conj(c) + y*cmplx.Conj(s)
		ny := x*(-cmplx.Conj(b/r)) + y*cmplx.Conj(a/r)
		if k < nq {
			q.Set(i, k, nx)
		} else {
			dst.v[i] = nx
		}
		if k+1 < nq {
			q.Set(i, k+1, ny)
		} else {
			dst.v[i] = ny
		}
	}
}

// ApplyQConjT computes ŷ = Q*·y without forming intermediates, the
// receive-side rotation of Equation 3 in the paper. dst may be nil.
func (qr *QR) ApplyQConjT(dst, y []complex128) []complex128 {
	m, n := qr.Q.Rows, qr.Q.Cols
	if len(y) != m {
		panic(ErrShape)
	}
	if dst == nil {
		dst = make([]complex128, n)
	} else if len(dst) != n {
		panic(ErrShape)
	}
	for j := 0; j < n; j++ {
		var s complex128
		for i := 0; i < m; i++ {
			s += cmplx.Conj(qr.Q.At(i, j)) * y[i]
		}
		dst[j] = s
	}
	return dst
}
