package cmplxmat

import (
	"math"
	"math/cmplx"
)

// QR holds the thin QR factorization of an m×n matrix with m ≥ n:
// A = Q·R with Q m×n having orthonormal columns (Q*Q = I) and R n×n
// upper triangular. The sphere decoder requires the diagonal of R to
// be real and non-negative, which this implementation guarantees.
//
// A QR value also owns the scratch buffers the factorization needs,
// so a caller that repeatedly factorizes same-shaped matrices via
// QRDecomposeInto performs no allocations after the first call.
type QR struct {
	Q *Matrix // m×n, Q*Q = I
	R *Matrix // n×n, upper triangular, real non-negative diagonal

	// Factorization workspace, lazily sized by QRDecomposeInto and
	// reused across calls when the input shape is unchanged.
	work  *Matrix      // m×n working copy being triangularized
	qfull *Matrix      // m×m accumulated product of reflections
	v     []complex128 // Householder vector, length m
}

// QRDecompose computes the thin QR factorization of a using Householder
// reflections. It panics if a has more columns than rows.
func QRDecompose(a *Matrix) *QR {
	return QRDecomposeInto(new(QR), a)
}

// QRDecomposeInto factorizes a into dst, reusing dst's factors and
// internal workspace when their shapes already match a. It returns dst.
// The result is bitwise identical to QRDecompose(a) — both run the
// same factorization loop — so callers may cache and re-fill a QR
// without perturbing downstream arithmetic. It panics if a has more
// columns than rows.
//
//geolint:noalloc
func QRDecomposeInto(dst *QR, a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(ErrShape) //geolint:alloc-ok shape bug, unreachable in hot path
	}
	// Working copy that will become the triangular factor (top n rows).
	r := dst.work
	if r == nil || r.Rows != m || r.Cols != n {
		r = New(m, n) //geolint:alloc-ok first use or reshape only
		dst.work = r
	}
	copy(r.Data, a.Data)
	// qfull accumulates the product of reflections, starting from I.
	qfull := dst.qfull
	if qfull == nil || qfull.Rows != m || qfull.Cols != m {
		qfull = New(m, m) //geolint:alloc-ok first use or reshape only
		dst.qfull = qfull
	} else {
		for i := range qfull.Data {
			qfull.Data[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		qfull.Set(i, i, 1)
	}
	if cap(dst.v) < m {
		dst.v = make([]complex128, m) //geolint:alloc-ok first use or reshape only
	}
	v := dst.v[:m]

	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			x := r.At(i, k)
			norm += real(x)*real(x) + imag(x)*imag(x)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		x0 := r.At(k, k)
		// alpha = -e^{jθ(x0)}·‖x‖ so that the new diagonal is real ≥ 0
		// after the sign fix below.
		var phase complex128
		if x0 == 0 {
			phase = 1
		} else {
			phase = x0 / complex(cmplx.Abs(x0), 0)
		}
		alpha := -phase * complex(norm, 0)
		var vnorm2 float64
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
		}
		v[k] -= alpha
		for i := k; i < m; i++ {
			vnorm2 += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
		}
		if vnorm2 == 0 {
			continue
		}
		beta := complex(2/vnorm2, 0)
		// Apply I − β·v·v* to the remaining columns of r.
		for j := k; j < n; j++ {
			var dot complex128
			for i := k; i < m; i++ {
				dot += cmplx.Conj(v[i]) * r.At(i, j)
			}
			dot *= beta
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-dot*v[i])
			}
		}
		// Accumulate into qfull: qfull ← qfull·(I − β·v·v*).
		for i := 0; i < m; i++ {
			var dot complex128
			for l := k; l < m; l++ {
				dot += qfull.At(i, l) * v[l]
			}
			dot *= beta
			for l := k; l < m; l++ {
				qfull.Set(i, l, qfull.At(i, l)-dot*cmplx.Conj(v[l]))
			}
		}
	}

	// Force the diagonal of R real non-negative by absorbing phases
	// into Q's columns.
	for k := 0; k < n; k++ {
		d := r.At(k, k)
		ad := cmplx.Abs(d)
		if ad == 0 {
			continue
		}
		ph := d / complex(ad, 0)
		if ph == 1 {
			continue
		}
		inv := cmplx.Conj(ph)
		for j := k; j < n; j++ {
			r.Set(k, j, inv*r.At(k, j))
		}
		r.Set(k, k, complex(ad, 0)) // exact: kill phase-fix roundoff
		for i := 0; i < m; i++ {
			qfull.Set(i, k, ph*qfull.At(i, k))
		}
	}

	// Extract the thin factors.
	q := dst.Q
	if q == nil || q.Rows != m || q.Cols != n {
		q = New(m, n) //geolint:alloc-ok first use or reshape only
		dst.Q = q
	}
	for i := 0; i < m; i++ {
		copy(q.Row(i), qfull.Row(i)[:n])
	}
	rt := dst.R
	if rt == nil || rt.Rows != n || rt.Cols != n {
		rt = New(n, n) //geolint:alloc-ok first use or reshape only
		dst.R = rt
	}
	for i := 0; i < n; i++ {
		row := rt.Row(i)
		for j := 0; j < i; j++ {
			row[j] = 0 // strictly lower part stays exactly zero
		}
		for j := i; j < n; j++ {
			row[j] = r.At(i, j)
		}
	}
	return dst
}

// ApplyQConjT computes ŷ = Q*·y without forming intermediates, the
// receive-side rotation of Equation 3 in the paper. dst may be nil.
func (qr *QR) ApplyQConjT(dst, y []complex128) []complex128 {
	m, n := qr.Q.Rows, qr.Q.Cols
	if len(y) != m {
		panic(ErrShape)
	}
	if dst == nil {
		dst = make([]complex128, n)
	} else if len(dst) != n {
		panic(ErrShape)
	}
	for j := 0; j < n; j++ {
		var s complex128
		for i := 0; i < m; i++ {
			s += cmplx.Conj(qr.Q.At(i, j)) * y[i]
		}
		dst[j] = s
	}
	return dst
}
