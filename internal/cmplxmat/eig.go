package cmplxmat

import (
	"math"
	"math/cmplx"
	"sort"
)

// HermitianEigenvalues returns the eigenvalues of a Hermitian matrix in
// descending order, computed with the cyclic complex Jacobi method.
// The input is not modified. Results for non-Hermitian input are
// undefined; callers in this repo always pass Gram matrices H*H.
func HermitianEigenvalues(a *Matrix) []float64 {
	if a.Rows != a.Cols {
		panic(ErrShape)
	}
	n := a.Rows
	w := a.Clone()
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += cmplx.Abs(w.At(i, j))
			}
		}
		if off < 1e-13*(1+w.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, p, q)
			}
		}
	}
	ev := make([]float64, n)
	for i := 0; i < n; i++ {
		ev[i] = real(w.At(i, i))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ev)))
	return ev
}

// jacobiRotate zeroes element (p,q) of the Hermitian matrix w with a
// complex Givens rotation applied on both sides.
func jacobiRotate(w *Matrix, p, q int) {
	apq := w.At(p, q)
	if cmplx.Abs(apq) == 0 {
		return
	}
	app := real(w.At(p, p))
	aqq := real(w.At(q, q))
	// Phase of the off-diagonal element.
	abspq := cmplx.Abs(apq)
	e := apq / complex(abspq, 0) // e^{jφ}
	// Rotation angle for the equivalent real 2×2 problem.
	theta := 0.5 * math.Atan2(2*abspq, app-aqq)
	c := math.Cos(theta)
	s := math.Sin(theta)
	// Unitary: [c, s·e; -s·conj(e), c] — columns p,q mixing.
	cp := complex(c, 0)
	se := complex(s, 0) * e
	n := w.Rows
	// w ← J* · w · J.
	for i := 0; i < n; i++ {
		wip := w.At(i, p)
		wiq := w.At(i, q)
		w.Set(i, p, wip*cp+wiq*cmplx.Conj(se))
		w.Set(i, q, -wip*se+wiq*cp)
	}
	for j := 0; j < n; j++ {
		wpj := w.At(p, j)
		wqj := w.At(q, j)
		w.Set(p, j, cmplx.Conj(cp)*wpj+se*wqj)
		w.Set(q, j, -cmplx.Conj(se)*wpj+cp*wqj)
	}
	// Clean up roundoff: force Hermitian structure on the touched pair.
	w.Set(p, q, complex(real(w.At(p, q)), imag(w.At(p, q))))
	w.Set(q, p, cmplx.Conj(w.At(p, q)))
	w.Set(p, p, complex(real(w.At(p, p)), 0))
	w.Set(q, q, complex(real(w.At(q, q)), 0))
}

// SingularValues returns the singular values of m (any shape) in
// descending order, as the square roots of the eigenvalues of the
// smaller Gram matrix.
func (m *Matrix) SingularValues() []float64 {
	var gram *Matrix
	if m.Rows >= m.Cols {
		gram = Mul(m.ConjT(), m)
	} else {
		gram = Mul(m, m.ConjT())
	}
	ev := HermitianEigenvalues(gram)
	sv := make([]float64, len(ev))
	for i, v := range ev {
		if v < 0 {
			v = 0 // roundoff guard
		}
		sv[i] = math.Sqrt(v)
	}
	return sv
}

// Cond2 returns the 2-norm condition number κ(m) = σ_max/σ_min. It
// returns +Inf for matrices that are rank-deficient to working
// precision (σ_min below the standard tolerance n·ε·σ_max).
func (m *Matrix) Cond2() float64 {
	sv := m.SingularValues()
	smax := sv[0]
	smin := sv[len(sv)-1]
	dim := m.Rows
	if m.Cols > dim {
		dim = m.Cols
	}
	tol := float64(dim) * 2.220446049250313e-16 * smax
	if smin <= tol {
		return math.Inf(1)
	}
	return smax / smin
}
