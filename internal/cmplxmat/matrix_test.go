package cmplxmat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for n := 1; n <= 6; n++ {
		a := randMatrix(r, n, n)
		if d := MaxAbsDiff(Mul(Identity(n), a), a); d > 1e-12 {
			t.Fatalf("I·A differs from A by %g for n=%d", d, n)
		}
		if d := MaxAbsDiff(Mul(a, Identity(n)), a); d > 1e-12 {
			t.Fatalf("A·I differs from A by %g for n=%d", d, n)
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestConjTInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randMatrix(r, 3, 5)
	if d := MaxAbsDiff(a.ConjT().ConjT(), a); d > 0 {
		t.Fatalf("(A*)* differs from A by %g", d)
	}
}

func TestInverse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for n := 1; n <= 8; n++ {
		a := randMatrix(r, n, n)
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(Mul(a, inv), Identity(n)); d > 1e-9 {
			t.Fatalf("n=%d: A·A⁻¹ differs from I by %g", n, d)
		}
		if d := MaxAbsDiff(Mul(inv, a), Identity(n)); d > 1e-9 {
			t.Fatalf("n=%d: A⁻¹·A differs from I by %g", n, d)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := a.Inverse(); err == nil {
		t.Fatal("expected ErrSingular for a rank-1 matrix")
	}
}

func TestSolveMatchesInverse(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(7)
		a := randMatrix(r, n, n)
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ax := a.MulVec(nil, x)
		for i := range b {
			if d := abs(ax[i] - b[i]); d > 1e-8 {
				t.Fatalf("trial %d: residual %g at %d", trial, d, i)
			}
		}
	}
}

func abs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

func TestPseudoInverse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		nc := 1 + r.Intn(4)
		na := nc + r.Intn(4)
		h := randMatrix(r, na, nc)
		w, err := h.PseudoInverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := MaxAbsDiff(Mul(w, h), Identity(nc)); d > 1e-8 {
			t.Fatalf("trial %d: W·H differs from I by %g (%d×%d)", trial, d, na, nc)
		}
	}
}

func TestPseudoInverseWideRejected(t *testing.T) {
	if _, err := New(2, 4).PseudoInverse(); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}

func TestQRProperties(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		nc := 1 + r.Intn(5)
		na := nc + r.Intn(5)
		a := randMatrix(r, na, nc)
		qr := QRDecompose(a)
		// A = Q·R.
		if d := MaxAbsDiff(Mul(qr.Q, qr.R), a); d > 1e-10 {
			t.Fatalf("trial %d: QR differs from A by %g", trial, d)
		}
		// Q*Q = I.
		if d := MaxAbsDiff(Mul(qr.Q.ConjT(), qr.Q), Identity(nc)); d > 1e-10 {
			t.Fatalf("trial %d: Q*Q differs from I by %g", trial, d)
		}
		// R upper triangular with real non-negative diagonal.
		for i := 0; i < nc; i++ {
			d := qr.R.At(i, i)
			if imag(d) != 0 || real(d) < 0 {
				t.Fatalf("trial %d: R[%d][%d] = %v not real non-negative", trial, i, i, d)
			}
			for j := 0; j < i; j++ {
				if qr.R.At(i, j) != 0 {
					t.Fatalf("trial %d: R[%d][%d] = %v below diagonal", trial, i, j, qr.R.At(i, j))
				}
			}
		}
	}
}

func TestApplyQConjT(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randMatrix(r, 6, 4)
	qr := QRDecompose(a)
	y := make([]complex128, 6)
	for i := range y {
		y[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	got := qr.ApplyQConjT(nil, y)
	want := qr.Q.ConjT().MulVec(nil, y)
	for i := range want {
		if d := abs(got[i] - want[i]); d > 1e-12 {
			t.Fatalf("entry %d differs by %g", i, d)
		}
	}
}

func TestHermitianEigenvaluesDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 5)
	a.Set(1, 1, -2)
	a.Set(2, 2, 3)
	ev := HermitianEigenvalues(a)
	want := []float64{5, 3, -2}
	for i := range want {
		if math.Abs(ev[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalue %d: got %g want %g", i, ev[i], want[i])
		}
	}
}

func TestHermitianEigenvaluesKnown(t *testing.T) {
	// [[2, i], [-i, 2]] has eigenvalues 3 and 1.
	a := New(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, complex(0, 1))
	a.Set(1, 0, complex(0, -1))
	a.Set(1, 1, 2)
	ev := HermitianEigenvalues(a)
	if math.Abs(ev[0]-3) > 1e-10 || math.Abs(ev[1]-1) > 1e-10 {
		t.Fatalf("got eigenvalues %v, want [3 1]", ev)
	}
}

func TestEigenvaluesMatchTraceAndDet(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(5)
		g := randMatrix(r, n+2, n)
		a := Mul(g.ConjT(), g) // Hermitian PSD
		ev := HermitianEigenvalues(a)
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += real(a.At(i, i))
			sum += ev[i]
		}
		if math.Abs(trace-sum) > 1e-8*(1+math.Abs(trace)) {
			t.Fatalf("trial %d: Σλ=%g but trace=%g", trial, sum, trace)
		}
		det := real(a.Det())
		prod := 1.0
		for _, v := range ev {
			prod *= v
		}
		if math.Abs(det-prod) > 1e-6*(1+math.Abs(det)) {
			t.Fatalf("trial %d: Πλ=%g but det=%g", trial, prod, det)
		}
	}
}

func TestSingularValuesOrthogonalColumns(t *testing.T) {
	// A matrix with orthogonal columns of norms 3 and 1 has singular
	// values exactly 3 and 1 and condition number 3.
	a := New(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	sv := a.SingularValues()
	if math.Abs(sv[0]-3) > 1e-12 || math.Abs(sv[1]-1) > 1e-12 {
		t.Fatalf("singular values %v, want [3 1]", sv)
	}
	if c := a.Cond2(); math.Abs(c-3) > 1e-12 {
		t.Fatalf("cond %g, want 3", c)
	}
}

func TestCond2SingularIsInf(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if c := a.Cond2(); !math.IsInf(c, 1) {
		t.Fatalf("cond of singular matrix = %g, want +Inf", c)
	}
}

// TestQRQuick drives the QR invariants through testing/quick with
// arbitrary well-scaled inputs.
func TestQRQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nc := 1 + r.Intn(4)
		na := nc + r.Intn(4)
		a := randMatrix(r, na, nc)
		qr := QRDecompose(a)
		return MaxAbsDiff(Mul(qr.Q, qr.R), a) < 1e-10 &&
			MaxAbsDiff(Mul(qr.Q.ConjT(), qr.Q), Identity(nc)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInverseQuick drives A·A⁻¹ = I through testing/quick.
func TestInverseQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := randMatrix(r, n, n)
		inv, err := a.Inverse()
		if err != nil {
			// Random Gaussian matrices are almost surely invertible;
			// treat a singular draw as a vacuous pass.
			return true
		}
		return MaxAbsDiff(Mul(a, inv), Identity(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDetTriangular(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 2)
	a.Set(0, 1, 7)
	a.Set(1, 1, complex(0, 1))
	a.Set(1, 2, -4)
	a.Set(2, 2, 3)
	got := a.Det()
	want := complex(0, 6) // 2·i·3
	if abs(got-want) > 1e-12 {
		t.Fatalf("det = %v, want %v", got, want)
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatalf("Set/At failed")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	if d := MaxAbsDiff(Sub(Add(a, b), b), a); d > 0 {
		t.Fatalf("(A+B)−B differs from A by %g", d)
	}
	if d := MaxAbsDiff(Scale(2, a), Add(a, a)); d > 0 {
		t.Fatalf("2A differs from A+A by %g", d)
	}
}
