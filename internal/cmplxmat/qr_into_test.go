package cmplxmat

import (
	"math/rand"
	"testing"
)

func randomMatrix(rnd *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
	}
	return m
}

// QRDecomposeInto must agree bitwise with QRDecompose: the cached
// detection pipeline relies on workspace reuse never perturbing a
// single float, so equality here is exact, not tolerance-based.
func TestQRDecomposeIntoBitIdentical(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	ws := new(QR)
	shapes := []struct{ r, c int }{{2, 2}, {4, 4}, {4, 4}, {6, 4}, {3, 3}, {8, 8}, {4, 4}}
	for _, sh := range shapes {
		a := randomMatrix(rnd, sh.r, sh.c)
		fresh := QRDecompose(a)
		got := QRDecomposeInto(ws, a)
		if got != ws {
			t.Fatalf("QRDecomposeInto did not return dst")
		}
		for i := range fresh.Q.Data {
			if got.Q.Data[i] != fresh.Q.Data[i] {
				t.Fatalf("%d×%d: Q[%d] = %v, fresh %v", sh.r, sh.c, i, got.Q.Data[i], fresh.Q.Data[i])
			}
		}
		for i := range fresh.R.Data {
			if got.R.Data[i] != fresh.R.Data[i] {
				t.Fatalf("%d×%d: R[%d] = %v, fresh %v", sh.r, sh.c, i, got.R.Data[i], fresh.R.Data[i])
			}
		}
	}
}

// Repeated same-shape factorization through a warm workspace must not
// allocate: this is the property the per-subcarrier preparation cache
// depends on for its re-prepare path.
func TestQRDecomposeIntoZeroAlloc(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	as := make([]*Matrix, 8)
	for i := range as {
		as[i] = randomMatrix(rnd, 4, 4)
	}
	ws := new(QR)
	QRDecomposeInto(ws, as[0]) // warm the workspace
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		QRDecomposeInto(ws, as[i%len(as)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("warm QRDecomposeInto allocated %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkQRDecomposeInto(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	a := randomMatrix(rnd, 4, 4)
	ws := new(QR)
	QRDecomposeInto(ws, a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QRDecomposeInto(ws, a)
	}
}
