package cmplxmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// qrFactorTol is the acceptance tolerance for one rank-1 update: the
// Givens chase is backward stable, so the updated factors must track a
// fresh factorization of A + u·v* to a small multiple of machine
// epsilon times the problem scale.
const qrFactorTol = 1e-12

// checkQRFactors verifies the three defining properties of the thin QR
// this package produces: Q·R reconstructs a (within tol·scale), Q has
// orthonormal columns, and R is upper triangular with a real
// non-negative diagonal (the sign convention the detectors' diagonal
// tables assume).
func checkQRFactors(t *testing.T, qr *QR, a *Matrix, tol float64) {
	t.Helper()
	m, n := a.Rows, a.Cols
	scale := 1.0
	for _, v := range a.Data {
		scale += real(v)*real(v) + imag(v)*imag(v)
	}
	scale = math.Sqrt(scale)
	rec := Mul(qr.Q, qr.R)
	if diff := MaxAbsDiff(rec, a); diff > tol*scale {
		t.Fatalf("%d×%d: ‖QR − A‖ = %g, want ≤ %g", m, n, diff, tol*scale)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var dot complex128
			for r := 0; r < m; r++ {
				dot += cmplx.Conj(qr.Q.At(r, i)) * qr.Q.At(r, j)
			}
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(dot-want) > tol*10 {
				t.Fatalf("%d×%d: Q*Q[%d][%d] = %v, want %v", m, n, i, j, dot, want)
			}
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := qr.R.At(r, c)
			if c < r && cmplx.Abs(v) != 0 {
				t.Fatalf("%d×%d: R[%d][%d] = %v below the diagonal", m, n, r, c, v)
			}
			if c == r && (imag(v) != 0 || real(v) < 0) {
				t.Fatalf("%d×%d: R[%d][%d] = %v, want real non-negative diagonal", m, n, r, c, v)
			}
		}
	}
}

// TestQRUpdateMatchesFresh pins the rank-1 update against a fresh
// factorization across shapes, including the tall matrices whose
// update must extend the thin basis when u leaves range(Q).
func TestQRUpdateMatchesFresh(t *testing.T) {
	rnd := rand.New(rand.NewSource(2014))
	shapes := []struct{ r, c int }{{2, 2}, {4, 4}, {6, 4}, {3, 2}, {8, 3}, {8, 8}}
	for _, sh := range shapes {
		for trial := 0; trial < 50; trial++ {
			a := randomMatrix(rnd, sh.r, sh.c)
			u := make([]complex128, sh.r)
			v := make([]complex128, sh.c)
			for i := range u {
				u[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
			}
			for i := range v {
				v[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
			}
			qr := new(QR)
			QRDecomposeInto(qr, a)
			if got := QRUpdateInto(qr, u, v); got != qr {
				t.Fatalf("QRUpdateInto did not return dst")
			}
			upd := a.Clone()
			for r := 0; r < sh.r; r++ {
				for c := 0; c < sh.c; c++ {
					upd.Set(r, c, upd.At(r, c)+u[r]*cmplx.Conj(v[c]))
				}
			}
			checkQRFactors(t, qr, upd, qrFactorTol)
		}
	}
}

// TestQRUpdateRankOneColumn exercises the exact pattern the channel
// preparation cache issues: v is a unit vector, so the update replaces
// a single column.
func TestQRUpdateRankOneColumn(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		m, n := 4+rnd.Intn(4), 2+rnd.Intn(3)
		if n > m {
			m = n
		}
		a := randomMatrix(rnd, m, n)
		col := rnd.Intn(n)
		u := make([]complex128, m)
		v := make([]complex128, n)
		v[col] = 1
		upd := a.Clone()
		for r := 0; r < m; r++ {
			u[r] = complex(rnd.NormFloat64(), rnd.NormFloat64())
			upd.Set(r, col, upd.At(r, col)+u[r])
		}
		qr := new(QR)
		QRDecomposeInto(qr, a)
		QRUpdateInto(qr, u, v)
		checkQRFactors(t, qr, upd, qrFactorTol)
	}
}

// TestQRUpdateZeroVector pins the degenerate update: u = 0 must leave
// a factorization of the unchanged matrix (and not corrupt the
// workspace for later updates).
func TestQRUpdateZeroVector(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	a := randomMatrix(rnd, 6, 4)
	u := make([]complex128, 6)
	v := make([]complex128, 4)
	v[1] = 1
	qr := new(QR)
	QRDecomposeInto(qr, a)
	QRUpdateInto(qr, u, v)
	checkQRFactors(t, qr, a, qrFactorTol)
}

// TestQRUpdateGaussMarkovChain drives the update the way the
// preparation cache does on a drifting channel: a long chain of
// per-column rank-1 updates following a Gauss-Markov process, with the
// factors checked against a fresh decomposition at every step. The
// tolerance grows only mildly with chain length — the Givens chase
// must not let roundoff compound geometrically.
func TestQRUpdateGaussMarkovChain(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	const steps = 120
	for _, sh := range []struct{ r, c int }{{4, 4}, {8, 4}} {
		h := randomMatrix(rnd, sh.r, sh.c)
		qr := new(QR)
		QRDecomposeInto(qr, h)
		u := make([]complex128, sh.r)
		v := make([]complex128, sh.c)
		for step := 0; step < steps; step++ {
			col := step % sh.c
			// Gauss-Markov innovation on one column.
			for r := 0; r < sh.r; r++ {
				old := h.At(r, col)
				next := old*complex(0.995, 0) + complex(0.05*rnd.NormFloat64(), 0.05*rnd.NormFloat64())
				u[r] = next - old
				h.Set(r, col, next)
			}
			for i := range v {
				v[i] = 0
			}
			v[col] = 1
			QRUpdateInto(qr, u, v)
			checkQRFactors(t, qr, h, qrFactorTol*float64(1+step))
			// The chained R must match a from-scratch factorization of
			// the drifted channel to accumulated-roundoff accuracy.
			fresh := QRDecompose(h)
			if diff := MaxAbsDiff(qr.R, fresh.R); diff > 1e-10*float64(1+step) {
				t.Fatalf("%d×%d step %d: chained R diverged from fresh by %g", sh.r, sh.c, step, diff)
			}
		}
	}
}

// TestQRUpdateShapePanics pins the validation contract: mismatched
// operand lengths and an unfactorized workspace must panic with
// ErrShape rather than corrupt state.
func TestQRUpdateShapePanics(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	a := randomMatrix(rnd, 4, 3)
	qr := new(QR)
	QRDecomposeInto(qr, a)
	cases := []struct {
		name string
		run  func()
	}{
		{"short u", func() { QRUpdateInto(qr, make([]complex128, 3), make([]complex128, 3)) }},
		{"short v", func() { QRUpdateInto(qr, make([]complex128, 4), make([]complex128, 2)) }},
		{"empty workspace", func() { QRUpdateInto(new(QR), make([]complex128, 4), make([]complex128, 3)) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.run()
		}()
	}
}

// TestQRUpdateZeroAlloc pins the steady-state allocation contract the
// incremental re-preparation path depends on: updating a warm
// workspace allocates nothing.
func TestQRUpdateZeroAlloc(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	a := randomMatrix(rnd, 6, 4)
	qr := new(QR)
	QRDecomposeInto(qr, a)
	u := make([]complex128, 6)
	v := make([]complex128, 4)
	v[2] = 1
	for i := range u {
		u[i] = complex(0.01*rnd.NormFloat64(), 0.01*rnd.NormFloat64())
	}
	QRUpdateInto(qr, u, v) // warm the update workspace
	allocs := testing.AllocsPerRun(100, func() {
		QRUpdateInto(qr, u, v)
	})
	if allocs != 0 {
		t.Fatalf("warm QRUpdateInto allocated %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkQRUpdateInto(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	a := randomMatrix(rnd, 4, 4)
	qr := new(QR)
	QRDecomposeInto(qr, a)
	u := make([]complex128, 4)
	v := make([]complex128, 4)
	v[1] = 1
	for i := range u {
		u[i] = complex(0.01*rnd.NormFloat64(), 0.01*rnd.NormFloat64())
	}
	QRUpdateInto(qr, u, v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QRUpdateInto(qr, u, v)
	}
}
