// Package cmplxmat implements the dense complex linear algebra used by
// the MIMO receiver: matrix products, conjugate transposes, Householder
// QR decomposition (the triangularization the sphere decoder needs),
// Gaussian-elimination inverses and solves, pseudo-inverses for
// rectangular channels, and a Hermitian Jacobi eigensolver from which
// singular values and condition numbers are derived.
//
// The matrices involved in MIMO detection are tiny (at most ~10×10),
// so the implementations favour clarity and numerical robustness over
// blocked performance, while still avoiding allocation in the solver
// hot paths where practical.
package cmplxmat

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// ErrSingular is returned when an inverse or solve encounters a matrix
// that is singular to working precision.
var ErrSingular = errors.New("cmplxmat: matrix is singular")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("cmplxmat: dimension mismatch")

// Matrix is a dense row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len Rows*Cols, row-major
}

// New returns a zero r×c matrix.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("cmplxmat: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("cmplxmat: FromRows needs at least one non-empty row")
	}
	m := New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			panic("cmplxmat: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&b, "(%8.4f%+8.4fi) ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ConjT returns the conjugate transpose (Hermitian adjoint) m*.
func (m *Matrix) ConjT() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// Mul returns a·b. It panics if the inner dimensions differ.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(ErrShape)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MulVec returns a·x for a column vector x. It panics if len(x) !=
// a.Cols. dst may be nil, in which case a fresh slice is allocated;
// otherwise len(dst) must equal a.Rows. dst must not alias x.
func (a *Matrix) MulVec(dst, x []complex128) []complex128 {
	if len(x) != a.Cols {
		panic(ErrShape)
	}
	if dst == nil {
		dst = make([]complex128, a.Rows)
	} else if len(dst) != a.Rows {
		panic(ErrShape)
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a−b.
func Sub(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s·a.
func Scale(s complex128, a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = s * a.Data[i]
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest elementwise |a−b|, a convenient
// equality tolerance for tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	var m float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// Inverse returns m⁻¹ via Gauss-Jordan elimination with partial
// pivoting. It returns ErrSingular for singular input.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, ErrShape
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column.
		piv, pmax := col, cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax < 1e-300 {
			return nil, ErrSingular
		}
		if piv != col {
			swapRows(a, piv, col)
			swapRows(inv, piv, col)
		}
		d := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/d)
			inv.Set(col, j, inv.At(col, j)/d)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve returns x with a·x = b for square a, using the same pivoted
// elimination as Inverse but without forming the inverse.
func Solve(a *Matrix, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols || len(b) != a.Rows {
		return nil, ErrShape
	}
	n := a.Rows
	aa := a.Clone()
	x := make([]complex128, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		piv, pmax := col, cmplx.Abs(aa.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(aa.At(r, col)); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax < 1e-300 {
			return nil, ErrSingular
		}
		if piv != col {
			swapRows(aa, piv, col)
			x[piv], x[col] = x[col], x[piv]
		}
		d := aa.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aa.At(r, col) / d
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				aa.Set(r, j, aa.At(r, j)-f*aa.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for j := r + 1; j < n; j++ {
			s -= aa.At(r, j) * x[j]
		}
		x[r] = s / aa.At(r, r)
	}
	return x, nil
}

// PseudoInverse returns the left Moore-Penrose pseudo-inverse
// (H*H)⁻¹H* for a tall or square matrix. This is the zero-forcing
// filter for na ≥ nc MIMO channels.
func (m *Matrix) PseudoInverse() (*Matrix, error) {
	if m.Rows < m.Cols {
		return nil, fmt.Errorf("cmplxmat: PseudoInverse needs rows ≥ cols, got %d×%d: %w", m.Rows, m.Cols, ErrShape)
	}
	h := m.ConjT()
	gram := Mul(h, m) // nc×nc
	gi, err := gram.Inverse()
	if err != nil {
		return nil, err
	}
	return Mul(gi, h), nil
}

// Det returns the determinant of a square matrix via pivoted LU.
func (m *Matrix) Det() complex128 {
	if m.Rows != m.Cols {
		panic(ErrShape)
	}
	n := m.Rows
	a := m.Clone()
	det := complex(1, 0)
	for col := 0; col < n; col++ {
		piv, pmax := col, cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax == 0 {
			return 0
		}
		if piv != col {
			swapRows(a, piv, col)
			det = -det
		}
		d := a.At(col, col)
		det *= d
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / d
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
		}
	}
	return det
}
