package link

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ofdm"
	"repro/internal/phy"
	"repro/internal/policy"
	"repro/internal/rng"
)

// FrameOutcome is one frame's result from the receive pipeline: the
// per-stream reception outcome, the frame's share of the detector's
// complexity statistics (an after−before snapshot delta, so persistent
// detectors attribute work correctly), and the error, if any, that
// aborted the frame.
type FrameOutcome struct {
	Res   *phy.Result
	Stats core.Stats
	Err   error
}

// Work describes one frame for Processor.Process: the frame index
// (which fixes the deterministic RNG substream), the worker id and
// detector tier (both only label the frame's observability sample),
// the per-subcarrier channels, the detector to use, and an optional
// preparation cache.
type Work struct {
	// Frame is the frame index; all of the frame's randomness comes
	// from rng.Substream(cfg.Seed, Frame), so the outcome is a pure
	// function of (config, Frame, Channels, detector state).
	Frame int64
	// Worker labels the frame's obs.FrameSample.
	Worker int
	// Tier labels the obs.FrameSample with the degradation-ladder tier
	// that served the frame; obs.TierNone for pipelines outside the
	// ladder (the batch path).
	Tier obs.Tier
	// Channels holds one na×nc matrix per data subcarrier.
	Channels []*cmplxmat.Matrix
	// Det is the detector to prepare and detect with.
	Det core.Detector
	// Pool, when non-nil, routes per-subcarrier preparation through a
	// PreparedChannel cache. A cache hit changes where prepared state
	// comes from, never what it contains.
	Pool *core.PrepPool
}

// Processor is one worker's frame pipeline: a phy.Link with its
// receive/decode scratch plus the run configuration, turning (frame
// index, channels, detector) into a FrameOutcome. It owns mutable
// scratch, so it is not safe for concurrent use — the Session keeps
// one Processor per worker, and the serve layer one per shard.
type Processor struct {
	cfg      RunConfig
	l        *phy.Link
	noiseVar float64
	// kappa is borrowed scratch for the per-frame κ̂² observability
	// sample (reused across frames, only valid during RecordFrame).
	kappa []float64
}

// schedCounters is the adaptive scheduler's counter surface
// (implemented by policy.Detector); Process attributes per-frame
// deltas through it without caring about the concrete detector.
type schedCounters interface {
	Sched() policy.Counters
}

// NewProcessor validates the per-frame configuration (cfg.Frames is
// ignored: a Processor has no batch horizon) and builds the pipeline.
func NewProcessor(cfg RunConfig) (*Processor, error) {
	if err := cfg.ValidateFormat(); err != nil {
		return nil, err
	}
	l, err := phy.NewLink(cfg.phyConfig())
	if err != nil {
		return nil, err
	}
	return &Processor{cfg: cfg, l: l, noiseVar: channel.NoiseVarForSNRdB(cfg.SNRdB)}, nil
}

// NoiseVar returns the total complex noise variance per receive
// antenna derived from the configured SNR.
func (p *Processor) NoiseVar() float64 { return p.noiseVar }

// Process pushes one frame through jitter → encode → (estimate) →
// transmit/detect/decode. All randomness comes from the frame's own
// substream, and the detector — whether fresh or persistent with its
// preparation cache — produces bit-identical decisions for a given
// (cfg, Frame, Channels), so the outcome never depends on which worker
// ran it or when. The worker id and tier only label the frame's
// observability sample, as do the preparation-cache counters.
func (p *Processor) Process(w Work) FrameOutcome {
	cfg := p.cfg
	start := time.Now() //geolint:nondeterminism-ok wall-clock duration only labels the observability sample
	if len(w.Channels) == 0 || w.Channels[0] == nil {
		return FrameOutcome{Err: fmt.Errorf("%w: frame %d has no channels", ErrBadShape, w.Frame)}
	}
	nc := w.Channels[0].Cols
	fsrc := rng.Substream(cfg.Seed, w.Frame)
	det := w.Det
	p.l.SetPrepPool(w.Pool)
	// Persistent detectors carry counters over from earlier frames, so
	// this frame's share is the snapshot delta (zero-based for fresh
	// detectors, where the snapshot is zero).
	before, _ := core.StatsOf(det)
	var hitsBefore, missesBefore, updatesBefore uint64
	if w.Pool != nil {
		hitsBefore, missesBefore = w.Pool.Counters()
		updatesBefore = w.Pool.QRUpdates()
	}
	var schedBefore policy.Counters
	sched, adaptive := det.(schedCounters)
	if adaptive {
		schedBefore = sched.Sched()
	}
	hs := w.Channels
	if cfg.SNRJitterDB > 0 {
		hs = jitterClients(fsrc, hs, cfg.SNRJitterDB)
	}
	f, err := p.l.Encode(fsrc, nc)
	if err != nil {
		return FrameOutcome{Err: err}
	}
	hsDet := hs
	if cfg.EstimatedCSI {
		hsDet, err = phy.EstimateChannels(fsrc, hs, p.noiseVar, cfg.trainingReps())
		if err != nil {
			return FrameOutcome{Err: err}
		}
	}
	res, err := p.l.TransmitReceiveCSI(fsrc, f, hs, hsDet, det, p.noiseVar)
	if err != nil {
		return FrameOutcome{Err: err}
	}
	out := FrameOutcome{Res: res}
	after, _ := core.StatsOf(det)
	out.Stats = after.Sub(before)
	if cfg.Recorder != nil {
		errs := 0
		for _, ok := range res.StreamOK {
			if !ok {
				errs++
			}
		}
		var prepHits, prepMisses, qrUpdates uint64
		if w.Pool != nil {
			h, m := w.Pool.Counters()
			prepHits, prepMisses = h-hitsBefore, m-missesBefore
			qrUpdates = w.Pool.QRUpdates() - updatesBefore
		}
		fs := obs.FrameSample{
			Frame:  int(w.Frame),
			Worker: w.Worker,
			Tier:   w.Tier,
			//geolint:nondeterminism-ok wall-clock duration only labels the observability sample
			Duration:     time.Since(start),
			OK:           res.FrameOK(),
			Streams:      len(res.StreamOK),
			StreamErrors: errs,
			PrepHits:     prepHits,
			PrepMisses:   prepMisses,
			ProjReuse:    out.Stats.ProjReuse,
			QRUpdates:    qrUpdates,
		}
		if adaptive {
			d := sched.Sched().Sub(schedBefore)
			fs.SchedZF = d.SchedZF
			fs.SchedKBest = d.SchedKBest
			fs.SchedSphere = d.SchedSphere
			fs.GatePass = d.GatePass
			fs.KBestFallbacks = d.KBestFallbacks
			fs.SphereFallbacks = d.SphereFallbacks
			fs.SeededRadius = d.SeededRadius
			if w.Pool != nil {
				p.kappa = w.Pool.AppendKappa2dB(p.kappa[:0])
				fs.Kappa2dB = p.kappa
			}
		}
		cfg.Recorder.RecordFrame(fs)
	}
	return out
}

// BatchWork describes a batch of frames for Processor.ProcessBatch:
// every frame in the batch shares the same channels, detector and
// preparation cache, so the per-subcarrier preparation amortizes
// across the whole batch instead of repeating per frame. Worker and
// Tier label every frame's observability sample.
type BatchWork struct {
	// Frames holds the batch's frame indices; each frame's randomness
	// still comes from its own rng.Substream(cfg.Seed, Frames[i]).
	Frames   []int64
	Worker   int
	Tier     obs.Tier
	Channels []*cmplxmat.Matrix
	Det      core.Detector
	Pool     *core.PrepPool
}

// ProcessBatch runs a batch of frames sharing one prepared channel
// set, appending one FrameOutcome per frame (in Frames order) to dst
// and returning it. Per-frame Res and Err are byte-identical to
// calling Process once per frame — every frame encodes and transmits
// from its own substream, and detection decisions are pure functions
// of (prepared state, observation) — only the attribution of batch-
// amortized observability (detector Stats deltas, preparation-cache
// counters, scheduler counters) changes: those are measured across the
// whole batch and folded into the first outcome/sample, so sums over a
// run stay exact while per-frame shares are no longer split out.
//
// Configurations that perturb channels per frame (SNR jitter,
// estimated CSI) break the shared-preparation premise and fall back to
// the frame-by-frame path, as does a batch of one.
func (p *Processor) ProcessBatch(dst []FrameOutcome, w BatchWork) []FrameOutcome {
	cfg := p.cfg
	dst = dst[:0]
	if len(w.Frames) == 0 {
		return dst
	}
	if len(w.Frames) == 1 || cfg.EstimatedCSI || cfg.SNRJitterDB > 0 {
		return p.processSingly(dst, w)
	}
	start := time.Now() //geolint:nondeterminism-ok wall-clock duration only labels the observability samples
	if len(w.Channels) == 0 || w.Channels[0] == nil {
		err := fmt.Errorf("%w: batch has no channels", ErrBadShape)
		for range w.Frames {
			dst = append(dst, FrameOutcome{Err: err})
		}
		return dst
	}
	nc := w.Channels[0].Cols
	det := w.Det
	p.l.SetPrepPool(w.Pool)
	before, _ := core.StatsOf(det)
	var hitsBefore, missesBefore, updatesBefore uint64
	if w.Pool != nil {
		hitsBefore, missesBefore = w.Pool.Counters()
		updatesBefore = w.Pool.QRUpdates()
	}
	var schedBefore policy.Counters
	sched, adaptive := det.(schedCounters)
	if adaptive {
		schedBefore = sched.Sched()
	}
	srcs := make([]*rng.Source, len(w.Frames))
	frames := make([]*phy.Frame, len(w.Frames))
	for i, fi := range w.Frames {
		srcs[i] = rng.Substream(cfg.Seed, fi)
		f, err := p.l.Encode(srcs[i], nc)
		if err != nil {
			// Encode failures are configuration-level; re-run the batch
			// frame-by-frame so every frame reports its own error.
			return p.processSingly(dst, w)
		}
		frames[i] = f
	}
	res, err := p.l.TransmitReceiveBatchCSI(srcs, frames, w.Channels, w.Channels, det, p.noiseVar)
	if err != nil {
		return p.processSingly(dst, w)
	}
	after, _ := core.StatsOf(det)
	batchStats := after.Sub(before)
	for i := range w.Frames {
		o := FrameOutcome{Res: res[i]}
		if i == 0 {
			// The detector's complexity delta spans the whole batch;
			// attribute it to the first outcome so run-level sums over
			// outcomes stay exact.
			o.Stats = batchStats
		}
		dst = append(dst, o)
	}
	if cfg.Recorder != nil {
		//geolint:nondeterminism-ok wall-clock duration only labels the observability samples
		dur := time.Since(start) / time.Duration(len(w.Frames))
		var prepHits, prepMisses, qrUpdates uint64
		if w.Pool != nil {
			h, m := w.Pool.Counters()
			prepHits, prepMisses = h-hitsBefore, m-missesBefore
			qrUpdates = w.Pool.QRUpdates() - updatesBefore
		}
		var schedDelta policy.Counters
		if adaptive {
			schedDelta = sched.Sched().Sub(schedBefore)
		}
		for i, fi := range w.Frames {
			r := res[i]
			errs := 0
			for _, ok := range r.StreamOK {
				if !ok {
					errs++
				}
			}
			fs := obs.FrameSample{
				Frame:        int(fi),
				Worker:       w.Worker,
				Tier:         w.Tier,
				Duration:     dur,
				Batch:        len(w.Frames),
				OK:           r.FrameOK(),
				Streams:      len(r.StreamOK),
				StreamErrors: errs,
			}
			if i == 0 {
				// Batch-amortized counters are measured once per batch;
				// fold them into the first sample so run-level sums stay
				// exact.
				fs.PrepHits, fs.PrepMisses = prepHits, prepMisses
				fs.ProjReuse = batchStats.ProjReuse
				fs.QRUpdates = qrUpdates
				if adaptive {
					fs.SchedZF = schedDelta.SchedZF
					fs.SchedKBest = schedDelta.SchedKBest
					fs.SchedSphere = schedDelta.SchedSphere
					fs.GatePass = schedDelta.GatePass
					fs.KBestFallbacks = schedDelta.KBestFallbacks
					fs.SphereFallbacks = schedDelta.SphereFallbacks
					fs.SeededRadius = schedDelta.SeededRadius
					if w.Pool != nil {
						p.kappa = w.Pool.AppendKappa2dB(p.kappa[:0])
						fs.Kappa2dB = p.kappa
					}
				}
			}
			cfg.Recorder.RecordFrame(fs)
		}
	}
	return dst
}

// processSingly is ProcessBatch's frame-by-frame path: the batch run
// through Process one frame at a time, in order.
func (p *Processor) processSingly(dst []FrameOutcome, w BatchWork) []FrameOutcome {
	for _, fi := range w.Frames {
		dst = append(dst, p.Process(Work{Frame: fi, Worker: w.Worker, Tier: w.Tier, Channels: w.Channels, Det: w.Det, Pool: w.Pool}))
	}
	return dst
}

// frameWorker is one session worker's long-lived state: a Processor
// and — unless the prep cache is disabled — a persistent detector plus
// a PrepPool holding one PreparedChannel per data subcarrier, so
// frames whose channels repeat skip their QR decompositions entirely.
type frameWorker struct {
	cfg      RunConfig
	proc     *Processor
	factory  DetectorFactory
	noiseVar float64
	// det is the worker's persistent detector, nil when NoPrepCache
	// forces the pre-cache fresh-detector-per-frame behavior.
	det  core.Detector
	pool *core.PrepPool
}

// newFrameWorker builds one worker's pipeline state.
func newFrameWorker(cfg RunConfig, factory DetectorFactory) (*frameWorker, error) {
	proc, err := NewProcessor(cfg)
	if err != nil {
		return nil, err
	}
	w := &frameWorker{cfg: cfg, proc: proc, factory: factory, noiseVar: proc.noiseVar}
	if !cfg.NoPrepCache {
		det, err := cfg.buildDetector(factory, w.noiseVar)
		if err != nil {
			return nil, err
		}
		w.det = det
		w.attachRecorder(w.det)
		w.pool = core.NewPrepPool(ofdm.NumData)
		w.pool.SetIncremental(cfg.IncrementalPrep)
	}
	return w, nil
}

// attachRecorder streams det's samples to the configured recorder.
func (w *frameWorker) attachRecorder(det core.Detector) {
	if w.cfg.Recorder != nil {
		if t, ok := det.(obs.Target); ok {
			t.SetRecorder(w.cfg.Recorder)
		}
	}
}

// runFrame processes one frame with the worker's persistent detector
// and cache (or a fresh detector when NoPrepCache is set).
func (w *frameWorker) runFrame(fi int64, worker int, hs []*cmplxmat.Matrix) FrameOutcome {
	det, pool := w.det, w.pool
	if det == nil {
		fresh, err := w.cfg.buildDetector(w.factory, w.noiseVar)
		if err != nil {
			return FrameOutcome{Err: err}
		}
		det = fresh
		w.attachRecorder(det)
	}
	return w.proc.Process(Work{Frame: fi, Worker: worker, Channels: hs, Det: det, Pool: pool})
}

// sessionJob is one queued frame and its reply slot. The reply channel
// must have capacity ≥ 1 so workers never block on delivery.
type sessionJob struct {
	fi    int64
	hs    []*cmplxmat.Matrix
	reply chan<- FrameOutcome
}

// Session is a long-lived receive pipeline: a bounded frame queue
// feeding a pool of workers, each owning a persistent detector and a
// per-subcarrier preparation cache. Frames are identified by caller-
// chosen indices, and every frame's outcome is a pure function of
// (config, index, channels): byte-identical across worker counts,
// queue depths and submission interleavings. A Session is safe for
// concurrent use by any number of submitters.
//
// The batch entry point Run is a thin wrapper: one Session, all frames
// submitted in order, outcomes merged in frame order.
type Session struct {
	cfg      RunConfig
	noiseVar float64
	detName  string
	jobs     chan sessionJob
	wg       sync.WaitGroup

	mu     sync.RWMutex // guards closed against concurrent submits
	closed bool
}

// NewSession validates the per-frame configuration (cfg.Frames is
// ignored; the session has no batch horizon) and starts max(1,
// cfg.Workers) workers behind a bounded queue of cfg.QueueDepth frames
// (default 4× workers).
func NewSession(cfg RunConfig, factory DetectorFactory) (*Session, error) {
	if err := cfg.ValidateFormat(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("link: session needs a detector factory")
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}
	// Build every worker before starting any, so construction errors
	// surface here rather than as per-frame failures.
	fws := make([]*frameWorker, workers)
	for i := range fws {
		fw, err := newFrameWorker(cfg, factory)
		if err != nil {
			return nil, err
		}
		fws[i] = fw
	}
	noiseVar := channel.NoiseVarForSNRdB(cfg.SNRdB)
	nameDet, err := cfg.buildDetector(factory, noiseVar)
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:      cfg,
		noiseVar: noiseVar,
		detName:  nameDet.Name(),
		jobs:     make(chan sessionJob, depth),
	}
	for i, fw := range fws {
		s.wg.Add(1)
		go func(worker int, fw *frameWorker) {
			defer s.wg.Done()
			for j := range s.jobs {
				j.reply <- fw.runFrame(j.fi, worker, j.hs)
			}
		}(i, fw)
	}
	return s, nil
}

// Workers returns the session's worker count.
func (s *Session) Workers() int {
	w := s.cfg.Workers
	if w < 1 {
		w = 1
	}
	return w
}

// QueueDepth returns the bounded queue's capacity.
func (s *Session) QueueDepth() int { return cap(s.jobs) }

// DetectorName returns the name of the detector the session's factory
// builds, for Measurement labeling.
func (s *Session) DetectorName() string { return s.detName }

// submit enqueues one frame. With block set it waits for queue space
// (or ctx cancellation); without, a full queue returns ErrQueueFull
// immediately — the admission-control path. The read lock spans the
// send so Close cannot close the queue under an in-flight submit.
func (s *Session) submit(ctx context.Context, j sessionJob, block bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if !block {
		select {
		case s.jobs <- j:
			return nil
		default:
			return ErrQueueFull
		}
	}
	// Cancellation wins deterministically: an already-cancelled context
	// never admits, even when the queue has space (select alone would
	// pick between the two ready cases at random).
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.jobs <- j:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Process runs one frame to completion: blocking submission (queue
// backpressure), then the frame's outcome. A frame-level pipeline
// failure is returned as the error with a zero outcome. If ctx is
// cancelled after admission the frame still completes on its worker —
// admitted work is never abandoned half-done — but Process returns
// ctx.Err() without waiting for it.
func (s *Session) Process(ctx context.Context, fi int64, hs []*cmplxmat.Matrix) (FrameOutcome, error) {
	reply := make(chan FrameOutcome, 1)
	if err := s.submit(ctx, sessionJob{fi: fi, hs: hs, reply: reply}, true); err != nil {
		return FrameOutcome{}, err
	}
	select {
	case out := <-reply:
		if out.Err != nil {
			return FrameOutcome{}, fmt.Errorf("link: frame %d: %w", fi, out.Err)
		}
		return out, nil
	case <-ctx.Done():
		return FrameOutcome{}, ctx.Err()
	}
}

// Submit enqueues one frame without blocking: a full queue returns
// ErrQueueFull (the admission-control reject), otherwise the frame's
// outcome is delivered exactly once on the returned channel.
func (s *Session) Submit(fi int64, hs []*cmplxmat.Matrix) (<-chan FrameOutcome, error) {
	reply := make(chan FrameOutcome, 1)
	if err := s.submit(context.Background(), sessionJob{fi: fi, hs: hs, reply: reply}, false); err != nil {
		return nil, err
	}
	return reply, nil
}

// SubmitWait enqueues one frame, blocking for queue space (the
// backpressure path) until admitted or ctx is cancelled. The frame's
// outcome is delivered exactly once on the returned channel; since the
// channel is buffered, callers that abandon it leak nothing and block
// no worker.
func (s *Session) SubmitWait(ctx context.Context, fi int64, hs []*cmplxmat.Matrix) (<-chan FrameOutcome, error) {
	reply := make(chan FrameOutcome, 1)
	if err := s.submit(ctx, sessionJob{fi: fi, hs: hs, reply: reply}, true); err != nil {
		return nil, err
	}
	return reply, nil
}

// Close drains the queue and stops the workers: every frame admitted
// before Close completes and delivers its outcome, then the workers
// exit. Further submissions return ErrClosed. Close is idempotent and
// safe to call concurrently with submitters.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Measure runs frames 0..frames-1 drawn from source through the
// session and aggregates them into a Measurement, exactly as the batch
// Run does: the stateful source is drained sequentially up front
// (frame i always sees the i-th draw), frames are submitted in order,
// and outcomes are merged in frame order — so the Measurement is
// byte-identical for every worker count and queue depth. Cancelling
// ctx drains deterministically: frames already admitted complete on
// their workers, no new frames are submitted, and Measure returns
// ctx.Err().
func (s *Session) Measure(ctx context.Context, source ChannelSource, frames int) (Measurement, error) {
	if frames <= 0 {
		return Measurement{}, fmt.Errorf("%w, got %d", ErrBadFrames, frames)
	}
	_, nc := source.Shape()

	// Pre-draw every frame's channel on this goroutine: TraceSource's
	// cursor and RayleighSource's RNG stay single-threaded, and the
	// frame→channel mapping cannot depend on worker scheduling.
	channels := make([][]*cmplxmat.Matrix, frames)
	for fi := range channels {
		hs, err := source.Next()
		if err != nil {
			return Measurement{}, err
		}
		channels[fi] = hs
	}

	replies := make([]chan FrameOutcome, frames)
	for fi := range replies {
		replies[fi] = make(chan FrameOutcome, 1)
	}
	go func() {
		for fi := range channels {
			j := sessionJob{fi: int64(fi), hs: channels[fi], reply: replies[fi]}
			if err := s.submit(ctx, j, true); err != nil {
				// Cancellation or closure: deliver the error as the
				// frame's outcome so the ordered collector sees it.
				replies[fi] <- FrameOutcome{Err: err}
			}
		}
	}()

	// Ordered merge: accumulate in frame order so the Measurement is
	// independent of which worker finished first.
	var m Measurement
	m.Detector = s.detName
	m.Constellation = s.cfg.Cons.Name()
	pcfg := s.cfg.phyConfig()
	var payloadBitsOK float64
	for fi := 0; fi < frames; fi++ {
		var o FrameOutcome
		select {
		case o = <-replies[fi]:
		case <-ctx.Done():
			return Measurement{}, ctx.Err()
		}
		if o.Err != nil {
			return Measurement{}, fmt.Errorf("link: frame %d: %w", fi, o.Err)
		}
		m.Frames++
		if !o.Res.FrameOK() {
			m.FrameErrors++
		}
		for _, ok := range o.Res.StreamOK {
			m.Streams++
			if ok {
				payloadBitsOK += float64(pcfg.PayloadBits())
			} else {
				m.StreamErrors++
			}
		}
		m.Stats.Add(o.Stats)
	}
	symbolsPerFrame := s.cfg.NumSymbols
	if s.cfg.EstimatedCSI {
		symbolsPerFrame += phy.TrainingSymbols(nc, s.cfg.trainingReps())
	}
	airTime := float64(frames) * float64(symbolsPerFrame) * ofdm.SymbolDuration
	if airTime > 0 {
		m.NetMbps = payloadBitsOK / airTime / 1e6
	}
	if m.Streams > 0 {
		m.PerStreamFER = float64(m.StreamErrors) / float64(m.Streams)
	}
	return m, nil
}
