package link

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/obs"
	"repro/internal/ofdm"
	"repro/internal/rng"
)

// batchChannels builds one static per-subcarrier channel set, the
// "one user group" shape the serving layer batches over.
func batchChannels(seed int64, na, nc int) []*cmplxmat.Matrix {
	src := rng.New(seed)
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		hs[i] = channel.Rayleigh(src, na, nc)
	}
	return hs
}

// runFramesSingle is the reference: one persistent detector + pool,
// frames processed one at a time through Process.
func runFramesSingle(t *testing.T, cfg RunConfig, factory DetectorFactory, hs []*cmplxmat.Matrix, frames []int64) []FrameOutcome {
	t.Helper()
	proc, err := NewProcessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := cfg.buildDetector(factory, proc.NoiseVar())
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPrepPool(ofdm.NumData)
	pool.SetIncremental(cfg.IncrementalPrep)
	outs := make([]FrameOutcome, 0, len(frames))
	for _, fi := range frames {
		outs = append(outs, proc.Process(Work{Frame: fi, Channels: hs, Det: det, Pool: pool}))
	}
	return outs
}

// runFramesBatched runs the same frames through ProcessBatch in
// batchSize-sized chunks over a fresh persistent detector + pool.
func runFramesBatched(t *testing.T, cfg RunConfig, factory DetectorFactory, hs []*cmplxmat.Matrix, frames []int64, batchSize int) []FrameOutcome {
	t.Helper()
	proc, err := NewProcessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := cfg.buildDetector(factory, proc.NoiseVar())
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPrepPool(ofdm.NumData)
	pool.SetIncremental(cfg.IncrementalPrep)
	outs := make([]FrameOutcome, 0, len(frames))
	var scratch []FrameOutcome
	for at := 0; at < len(frames); at += batchSize {
		end := at + batchSize
		if end > len(frames) {
			end = len(frames)
		}
		scratch = proc.ProcessBatch(scratch, BatchWork{Frames: frames[at:end], Channels: hs, Det: det, Pool: pool})
		outs = append(outs, scratch...)
	}
	return outs
}

// TestProcessBatchEqualsProcess is the batching byte-identity
// conformance suite of the micro-batching tentpole: for every detector
// family × constellation × batch size, ProcessBatch's per-frame Res
// and Err must be byte-identical to running Process once per frame —
// batching may only change scheduling, attribution and latency, never
// a decision.
func TestProcessBatchEqualsProcess(t *testing.T) {
	conss := []*constellation.Constellation{constellation.QPSK, constellation.QAM16}
	batchSizes := []int{1, 2, 3, 7, 16}
	const frames = 16
	for _, d := range conformanceFactories {
		for _, cons := range conss {
			name := fmt.Sprintf("%s/%s", d.name, cons.Name())
			t.Run(name, func(t *testing.T) {
				cfg := RunConfig{
					Cons: cons, Rate: fec.Rate12,
					NumSymbols: 2, Frames: frames,
					SNRdB:        18, // low enough that some frames fail
					Seed:         int64(len(name)) * 257,
					SoftDecoding: d.soft,
				}
				hs := batchChannels(int64(len(name)), 4, 2)
				fis := make([]int64, frames)
				for i := range fis {
					fis[i] = int64(i)
				}
				ref := runFramesSingle(t, cfg, d.factory, hs, fis)
				for _, bs := range batchSizes {
					got := runFramesBatched(t, cfg, d.factory, hs, fis, bs)
					if len(got) != len(ref) {
						t.Fatalf("batch=%d returned %d outcomes, want %d", bs, len(got), len(ref))
					}
					for i := range ref {
						if (ref[i].Err == nil) != (got[i].Err == nil) {
							t.Fatalf("batch=%d frame %d error mismatch: single %v, batch %v", bs, i, ref[i].Err, got[i].Err)
						}
						if !reflect.DeepEqual(ref[i].Res, got[i].Res) {
							t.Fatalf("batch=%d frame %d diverged:\n  single: %+v\n  batch:  %+v", bs, i, ref[i].Res, got[i].Res)
						}
					}
				}
			})
		}
	}
}

// TestProcessBatchFallbackModes pins that the per-frame-perturbation
// modes (SNR jitter, estimated CSI) take the frame-by-frame fallback
// and still match Process exactly.
func TestProcessBatchFallbackModes(t *testing.T) {
	for _, mode := range []struct {
		name   string
		jitter float64
		estCSI bool
	}{{"jitter", 4, false}, {"estcsi", 0, true}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := RunConfig{
				Cons: constellation.QAM16, Rate: fec.Rate12,
				NumSymbols: 2, Frames: 6,
				SNRdB: 20, Seed: 43,
				SNRJitterDB:  mode.jitter,
				EstimatedCSI: mode.estCSI,
			}
			hs := batchChannels(17, 4, 2)
			fis := []int64{0, 1, 2, 3, 4, 5}
			ref := runFramesSingle(t, cfg, GeoFactoryForTest, hs, fis)
			got := runFramesBatched(t, cfg, GeoFactoryForTest, hs, fis, 3)
			for i := range ref {
				if !reflect.DeepEqual(ref[i].Res, got[i].Res) {
					t.Fatalf("frame %d diverged:\n  single: %+v\n  batch:  %+v", i, ref[i].Res, got[i].Res)
				}
			}
		})
	}
}

// TestProcessBatchStatsAndSamples pins the attribution contract: the
// batch's detector-stats delta lands on the first outcome (so sums
// over a run stay exact), and the recorder sees one FrameSample per
// frame with the Batch field set.
func TestProcessBatchStatsAndSamples(t *testing.T) {
	rec := obs.NewStatsRecorder()
	cfg := RunConfig{
		Cons: constellation.QAM16, Rate: fec.Rate12,
		NumSymbols: 2, Frames: 4,
		SNRdB: 24, Seed: 91,
		Recorder: rec,
	}
	proc, err := NewProcessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := cfg.buildDetector(GeoFactoryForTest, proc.NoiseVar())
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPrepPool(ofdm.NumData)
	hs := batchChannels(29, 4, 2)
	outs := proc.ProcessBatch(nil, BatchWork{Frames: []int64{0, 1, 2, 3}, Channels: hs, Det: det, Pool: pool})
	if len(outs) != 4 {
		t.Fatalf("got %d outcomes, want 4", len(outs))
	}
	var zero core.Stats
	if outs[0].Stats == zero {
		t.Error("batch stats delta missing from first outcome")
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Stats != zero {
			t.Errorf("outcome %d carries stats; batch attribution must fold into the first", i)
		}
	}
	snap := rec.Snapshot()
	if snap.Frames.Frames != 4 {
		t.Errorf("recorder saw %d frames, want 4", snap.Frames.Frames)
	}
	// One preparation per subcarrier for the whole batch: every probe
	// after the 48 misses is a hit, and hits+misses is far below the
	// per-frame path's 4 frames × 2 symbols × 48 probes.
	probes := snap.Frames.PrepareHits + snap.Frames.PrepareMisses
	if snap.Frames.PrepareMisses != int64(ofdm.NumData) {
		t.Errorf("prepare misses = %d, want %d (one per subcarrier)", snap.Frames.PrepareMisses, ofdm.NumData)
	}
	if probes != int64(ofdm.NumData) {
		t.Errorf("prepare probes = %d, want %d (one per subcarrier per batch)", probes, ofdm.NumData)
	}
}
