package link

import (
	"testing"

	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/obs"
	"repro/internal/rng"
)

func obsRunConfig(rec obs.Recorder, workers int) RunConfig {
	return RunConfig{
		Cons:       constellation.QAM16,
		Rate:       fec.Rate12,
		NumSymbols: 4,
		Frames:     12,
		SNRdB:      22,
		Seed:       77,
		Workers:    workers,
		Recorder:   rec,
	}
}

func obsGeoFactory(c *constellation.Constellation, _ float64) core.Detector {
	return core.NewGeosphere(c)
}

// TestRunSharedRecorderParallel drives the worker pool with one shared
// StatsRecorder (the -race configuration the tentpole requires) and
// checks the sample counts line up with the measurement.
func TestRunSharedRecorderParallel(t *testing.T) {
	rec := obs.NewStatsRecorder()
	src, err := NewRayleighSource(rng.New(5), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(obsRunConfig(rec, 4), src, obsGeoFactory)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if s.Frames.Frames != int64(m.Frames) {
		t.Errorf("recorded %d frame samples, measurement ran %d frames", s.Frames.Frames, m.Frames)
	}
	if s.Frames.FrameErrors != int64(m.FrameErrors) {
		t.Errorf("recorded %d frame errors, measurement has %d", s.Frames.FrameErrors, m.FrameErrors)
	}
	if s.Frames.Streams != int64(m.Streams) {
		t.Errorf("recorded %d streams, measurement has %d", s.Frames.Streams, m.Streams)
	}
	// Every subcarrier detection of every OFDM symbol reports a sample;
	// the recorder's PED aggregate must equal the measurement's Stats.
	if s.Detect.PEDCalcs != m.Stats.PEDCalcs {
		t.Errorf("recorded %d PED calcs, measurement counted %d", s.Detect.PEDCalcs, m.Stats.PEDCalcs)
	}
	if s.Detect.VisitedNodes != m.Stats.VisitedNodes {
		t.Errorf("recorded %d nodes, measurement counted %d", s.Detect.VisitedNodes, m.Stats.VisitedNodes)
	}
	if s.Decode.Decodes == 0 {
		t.Error("no decode samples recorded")
	}
	var workerFrames int64
	for _, w := range s.Workers {
		workerFrames += w.Frames
	}
	if workerFrames != int64(m.Frames) {
		t.Errorf("per-worker frames sum to %d, want %d", workerFrames, m.Frames)
	}
}

// TestRunRecorderDoesNotChangeMeasurement pins the observability
// contract: attaching any recorder leaves the Measurement
// byte-identical, sequential or parallel.
func TestRunRecorderDoesNotChangeMeasurement(t *testing.T) {
	measure := func(rec obs.Recorder, workers int) Measurement {
		src, err := NewRayleighSource(rng.New(5), 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Run(obsRunConfig(rec, workers), src, obsGeoFactory)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	want := measure(nil, 1)
	for _, workers := range []int{1, 4} {
		for _, rec := range []obs.Recorder{nil, obs.Nop{}, obs.NewStatsRecorder()} {
			if got := measure(rec, workers); got != want {
				t.Errorf("workers=%d rec=%T: measurement changed:\ngot  %+v\nwant %+v",
					workers, rec, got, want)
			}
		}
	}
}
