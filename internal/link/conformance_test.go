package link

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/kbest"
	"repro/internal/linear"
	"repro/internal/ofdm"
	"repro/internal/rng"
)

// conformanceFactories are every detector family the paper evaluates.
// All of them must produce byte-identical Measurements under the
// parallel frame pipeline.
var conformanceFactories = []struct {
	name    string
	factory DetectorFactory
	soft    bool // factory builds a core.SoftDetector
}{
	{"geosphere", func(c *constellation.Constellation, _ float64) core.Detector {
		return core.NewGeosphere(c)
	}, false},
	{"ethsd", func(c *constellation.Constellation, _ float64) core.Detector {
		return core.NewETHSD(c)
	}, false},
	{"zf", func(c *constellation.Constellation, _ float64) core.Detector {
		return linear.NewZF(c)
	}, false},
	{"mmse-sic", func(c *constellation.Constellation, nv float64) core.Detector {
		return linear.NewMMSESIC(c, nv)
	}, false},
	{"kbest", func(c *constellation.Constellation, _ float64) core.Detector {
		d, err := kbest.NewKBest(c, c.Side())
		if err != nil {
			panic(err)
		}
		return d
	}, false},
	{"list-sd", func(c *constellation.Constellation, _ float64) core.Detector {
		return core.NewListSphereDecoder(c)
	}, true},
}

// conformanceModes cross SNR jitter and estimated CSI, the two
// RunConfig features that draw extra per-frame randomness and would be
// the first to break under a racy or misordered RNG scheme.
var conformanceModes = []struct {
	name   string
	jitter float64
	estCSI bool
}{
	{"plain", 0, false},
	{"jitter", 4, false},
	{"estcsi", 0, true},
	{"jitter+estcsi", 4, true},
}

// runConformance measures one configuration at a given worker count,
// rebuilding the channel source from scratch so every call sees the
// identical frame sequence.
func runConformance(t *testing.T, cfg RunConfig, factory DetectorFactory, sourceSeed int64, workers int) Measurement {
	t.Helper()
	src, err := NewRayleighSource(rng.New(sourceSeed), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	m, err := Run(cfg, src, factory)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRunParallelEqualsSequential is the conformance suite for the
// parallel frame pipeline: for every detector family × constellation ×
// decoding mode × channel-knowledge mode, the Measurement (including
// complexity Stats) must be byte-identical for workers ∈
// {1, 2, GOMAXPROCS}. Measurement contains no pointers or slices, so
// struct equality is byte equality.
func TestRunParallelEqualsSequential(t *testing.T) {
	maxWorkers := runtime.GOMAXPROCS(0)
	workerCounts := []int{1, 2, maxWorkers}
	conss := []*constellation.Constellation{
		constellation.QPSK, constellation.QAM16, constellation.QAM64,
	}
	for _, d := range conformanceFactories {
		for _, cons := range conss {
			for _, mode := range conformanceModes {
				name := fmt.Sprintf("%s/%s/%s", d.name, cons.Name(), mode.name)
				t.Run(name, func(t *testing.T) {
					cfg := RunConfig{
						Cons: cons, Rate: fec.Rate12,
						NumSymbols: 2, Frames: 4,
						SNRdB:        22,
						Seed:         int64(len(name)) * 131,
						SoftDecoding: d.soft,
						SNRJitterDB:  mode.jitter,
						EstimatedCSI: mode.estCSI,
					}
					sourceSeed := int64(len(name))
					ref := runConformance(t, cfg, d.factory, sourceSeed, 1)
					if ref.Frames != cfg.Frames {
						t.Fatalf("reference ran %d frames, want %d", ref.Frames, cfg.Frames)
					}
					for _, w := range workerCounts[1:] {
						got := runConformance(t, cfg, d.factory, sourceSeed, w)
						if got != ref {
							t.Fatalf("workers=%d diverged from sequential:\n  seq: %+v\n  par: %+v", w, ref, got)
						}
					}
				})
			}
		}
	}
}

// TestRunRepeatable pins the weaker but foundational property: the
// same configuration measured twice yields the same bytes, even at
// full parallelism.
func TestRunRepeatable(t *testing.T) {
	cfg := RunConfig{
		Cons: constellation.QAM16, Rate: fec.Rate12,
		NumSymbols: 2, Frames: 6, SNRdB: 18, Seed: 99,
	}
	w := runtime.GOMAXPROCS(0)
	a := runConformance(t, cfg, GeoFactoryForTest, 5, w)
	b := runConformance(t, cfg, GeoFactoryForTest, 5, w)
	if a != b {
		t.Fatalf("repeat run diverged:\n  a: %+v\n  b: %+v", a, b)
	}
}

// TestRateAdaptParallelEqualsSequential extends the conformance
// guarantee to the candidate loop: ideal rate adaptation must select
// the same constellation and report the same Measurement regardless of
// how its worker budget is split.
func TestRateAdaptParallelEqualsSequential(t *testing.T) {
	cands := []*constellation.Constellation{
		constellation.QPSK, constellation.QAM16, constellation.QAM64,
	}
	cfg := RunConfig{
		Rate: fec.Rate12, NumSymbols: 2, Frames: 4, SNRdB: 24, Seed: 77,
	}
	newSource := func() ChannelSource {
		s, err := NewRayleighSource(rng.New(11), 4, 2)
		if err != nil {
			panic(err)
		}
		return s
	}
	cfg.Workers = 1
	ref, err := RateAdapt(cfg, cands, newSource, GeoFactoryForTest)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)} {
		cfg.Workers = w
		got, err := RateAdapt(cfg, cands, newSource, GeoFactoryForTest)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d diverged:\n  seq: %+v\n  par: %+v", w, ref, got)
		}
	}
}

// prepCacheFactories are the detector families with distinct
// preparation derivations (ordered QR, plain QR, RVD, soft list
// decoding, hybrid fallback) — one of each must survive the prepared-
// channel cache without changing a single byte of the Measurement.
var prepCacheFactories = []struct {
	name    string
	factory DetectorFactory
	soft    bool
}{
	{"geosphere", func(c *constellation.Constellation, _ float64) core.Detector {
		return core.NewGeosphere(c)
	}, false},
	{"ethsd", func(c *constellation.Constellation, _ float64) core.Detector {
		return core.NewETHSD(c)
	}, false},
	{"rvd", func(c *constellation.Constellation, _ float64) core.Detector {
		return core.NewRVD(c)
	}, false},
	{"list-sd", func(c *constellation.Constellation, _ float64) core.Detector {
		return core.NewListSphereDecoder(c)
	}, true},
	{"hybrid", func(c *constellation.Constellation, _ float64) core.Detector {
		d, err := core.NewHybrid(c, linear.NewZF(c), 1.5)
		if err != nil {
			panic(err)
		}
		return d
	}, false},
}

// TestRunPrepCacheConformance is the cache's byte-identity contract:
// for every preparation mode, channel regime and worker count, a run
// with the per-worker preparation cache must equal the cache-disabled
// run exactly. The static-subcarrier source keeps the channel frame-
// invariant so the cached runs take the hit path on every frame after
// the first; the Rayleigh source redraws channels per frame so every
// preparation is a refill — both must be invisible in the output.
func TestRunPrepCacheConformance(t *testing.T) {
	sources := []struct {
		name string
		make func(seed int64) ChannelSource
	}{
		{"rayleigh", func(seed int64) ChannelSource {
			s, err := NewRayleighSource(rng.New(seed), 4, 2)
			if err != nil {
				panic(err)
			}
			return s
		}},
		{"static-subcarrier", func(seed int64) ChannelSource {
			src := rng.New(seed)
			hs := make([]*cmplxmat.Matrix, ofdm.NumData)
			for i := range hs {
				hs[i] = channel.Rayleigh(src, 4, 2)
			}
			s, err := NewStaticSubcarrierSource(hs)
			if err != nil {
				panic(err)
			}
			return s
		}},
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, d := range prepCacheFactories {
		for _, srcKind := range sources {
			t.Run(d.name+"/"+srcKind.name, func(t *testing.T) {
				cfg := RunConfig{
					Cons: constellation.QAM16, Rate: fec.Rate12,
					NumSymbols: 2, Frames: 5,
					SNRdB:        20,
					Seed:         int64(len(d.name)+len(srcKind.name)) * 53,
					SoftDecoding: d.soft,
				}
				seed := int64(len(d.name)) * 7
				run := func(workers int, noCache bool) Measurement {
					cfg.Workers = workers
					cfg.NoPrepCache = noCache
					m, err := Run(cfg, srcKind.make(seed), d.factory)
					if err != nil {
						t.Fatal(err)
					}
					return m
				}
				ref := run(1, true) // cold sequential: the pre-cache pipeline
				if ref.Frames != cfg.Frames {
					t.Fatalf("reference ran %d frames, want %d", ref.Frames, cfg.Frames)
				}
				for _, w := range workerCounts {
					if got := run(w, false); got != ref {
						t.Fatalf("cached workers=%d diverged from cold:\n  cold:   %+v\n  cached: %+v", w, ref, got)
					}
					if got := run(w, true); got != ref {
						t.Fatalf("cold workers=%d diverged:\n  ref: %+v\n  got: %+v", w, ref, got)
					}
				}
			})
		}
	}
}

// TestRunWorkerCountInsensitiveToFrameImbalance runs more frames than
// workers so the pool actually reuses workers across frames, catching
// any state leakage between frames handled by the same worker.
func TestRunWorkerCountInsensitiveToFrameImbalance(t *testing.T) {
	cfg := RunConfig{
		Cons: constellation.QAM16, Rate: fec.Rate12,
		NumSymbols: 2, Frames: 13, // prime: uneven split across any pool
		SNRdB: 14, Seed: 41, // low SNR: frames fail, error paths merge too
	}
	ref := runConformance(t, cfg, GeoFactoryForTest, 23, 1)
	for _, w := range []int{2, 3, 5, 13, 64} {
		got := runConformance(t, cfg, GeoFactoryForTest, 23, w)
		if got != ref {
			t.Fatalf("workers=%d diverged:\n  seq: %+v\n  par: %+v", w, ref, got)
		}
	}
}
