package link

import (
	"context"
	"errors"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/ofdm"
	"repro/internal/rng"
)

// sessionConfig is a small configuration shared by the session tests.
func sessionConfig(workers int) RunConfig {
	return RunConfig{
		Cons:       constellation.QPSK,
		Rate:       fec.Rate12,
		NumSymbols: 2,
		SNRdB:      30,
		Seed:       11,
		Workers:    workers,
	}
}

func sphereFactory(cons *constellation.Constellation, _ float64) core.Detector {
	return core.NewGeosphere(cons)
}

// testChannels draws one frame's worth of subcarrier channels.
func testChannels(seed int64, na, nc int) []*cmplxmat.Matrix {
	h := channel.Rayleigh(rng.New(seed), na, nc)
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		hs[i] = h
	}
	return hs
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(sessionConfig(1), nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	bad := sessionConfig(1)
	bad.QueueDepth = -1
	if _, err := NewSession(bad, sphereFactory); !errors.Is(err, ErrBadQueueDepth) {
		t.Fatalf("negative QueueDepth accepted: %v", err)
	}
	bad = sessionConfig(1)
	bad.Cons = nil
	if _, err := NewSession(bad, sphereFactory); !errors.Is(err, ErrNilConstellation) {
		t.Fatalf("nil constellation accepted: %v", err)
	}
	// Frames is a batch-only knob: a session validates without it.
	s, err := NewSession(sessionConfig(0), sphereFactory)
	if err != nil {
		t.Fatalf("Frames required by NewSession: %v", err)
	}
	defer s.Close()
	if s.Workers() != 1 {
		t.Fatalf("zero workers gave %d", s.Workers())
	}
	if s.QueueDepth() != 4 {
		t.Fatalf("default queue depth %d, want 4× workers", s.QueueDepth())
	}
	if s.DetectorName() == "" {
		t.Fatal("detector name empty")
	}
}

func TestSessionQueueDepthOverride(t *testing.T) {
	cfg := sessionConfig(2)
	cfg.QueueDepth = 17
	s, err := NewSession(cfg, sphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.QueueDepth() != 17 {
		t.Fatalf("queue depth %d, want 17", s.QueueDepth())
	}
}

// TestSessionProcessDeterministic pins the substream contract: a
// frame's outcome depends only on (config, frame index, channels) —
// not on submission order or on which frames ran before it.
func TestSessionProcessDeterministic(t *testing.T) {
	hs := testChannels(3, 4, 2)
	run := func(order []int64) map[int64]FrameOutcome {
		s, err := NewSession(sessionConfig(2), sphereFactory)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		outs := make(map[int64]FrameOutcome, len(order))
		for _, fi := range order {
			o, err := s.Process(context.Background(), fi, hs)
			if err != nil {
				t.Fatalf("frame %d: %v", fi, err)
			}
			outs[fi] = o
		}
		return outs
	}
	fwd := run([]int64{0, 1, 2, 3})
	rev := run([]int64{3, 2, 1, 0})
	//geolint:nondeterminism-ok order-independent per-key comparison of two complete maps
	for fi, a := range fwd {
		b := rev[fi]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("frame %d errored: %v / %v", fi, a.Err, b.Err)
		}
		if a.Res.SymbolErrors != b.Res.SymbolErrors || a.Res.Symbols != b.Res.Symbols {
			t.Fatalf("frame %d diverged across submission orders", fi)
		}
		if a.Stats != b.Stats {
			t.Fatalf("frame %d stats diverged: %+v vs %+v", fi, a.Stats, b.Stats)
		}
	}
}

func TestSessionCloseSemantics(t *testing.T) {
	s, err := NewSession(sessionConfig(1), sphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	hs := testChannels(5, 4, 2)
	if _, err := s.Process(context.Background(), 0, hs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Process(context.Background(), 1, hs); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed session Process: %v", err)
	}
	if _, err := s.Submit(1, hs); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed session Submit: %v", err)
	}
	if _, err := s.SubmitWait(context.Background(), 1, hs); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed session SubmitWait: %v", err)
	}
	if _, err := s.Measure(context.Background(), mustRayleigh(t, 1), 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed session Measure: %v", err)
	}
}

// TestSubmitQueueFull wedges the single worker by withholding reply
// reads, fills the queue behind it, and checks the non-blocking path
// rejects with ErrQueueFull while the blocking path still admits once
// capacity frees up.
func TestSubmitQueueFull(t *testing.T) {
	cfg := sessionConfig(1)
	cfg.QueueDepth = 1
	s, err := NewSession(cfg, sphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := testChannels(7, 4, 2)

	// The worker takes the first frame; reply channels are buffered, so
	// it keeps going — wedge it with enough work that the queue stays
	// full while we probe: one in flight + one queued.
	r1, err := s.Submit(0, hs)
	if err != nil {
		t.Fatal(err)
	}
	var replies []<-chan FrameOutcome
	var rejected bool
	for fi := int64(1); fi < 64; fi++ {
		r, err := s.Submit(fi, hs)
		if err == nil {
			replies = append(replies, r)
			continue
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("frame %d: %v", fi, err)
		}
		rejected = true
		break
	}
	if !rejected {
		t.Fatal("depth-1 queue admitted 64 frames without rejecting")
	}

	// The blocking variant waits for capacity instead of rejecting.
	rw, err := s.SubmitWait(context.Background(), 99, hs)
	if err != nil {
		t.Fatal(err)
	}
	if o := <-r1; o.Err != nil {
		t.Fatal(o.Err)
	}
	for _, r := range replies {
		if o := <-r; o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	if o := <-rw; o.Err != nil {
		t.Fatal(o.Err)
	}
}

func TestSubmitWaitCancelled(t *testing.T) {
	s, err := NewSession(sessionConfig(1), sphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hs := testChannels(9, 4, 2)
	if _, err := s.SubmitWait(ctx, 0, hs); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SubmitWait: %v", err)
	}
	if _, err := s.Process(ctx, 0, hs); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Process: %v", err)
	}
}

func TestMeasureCancelled(t *testing.T) {
	s, err := NewSession(sessionConfig(2), sphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Measure(ctx, mustRayleigh(t, 1), 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Measure: %v", err)
	}
	// The session survives a cancelled measurement.
	res, err := s.Measure(context.Background(), mustRayleigh(t, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 2 {
		t.Fatalf("post-cancel Measure ran %d frames", res.Frames)
	}
}

func TestMeasureBadFrames(t *testing.T) {
	s, err := NewSession(sessionConfig(1), sphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Measure(context.Background(), mustRayleigh(t, 1), 0); !errors.Is(err, ErrBadFrames) {
		t.Fatalf("zero frames accepted: %v", err)
	}
}

// TestSessionMeasureMatchesRun pins that a reused long-lived session
// reproduces the one-shot batch entry point exactly.
func TestSessionMeasureMatchesRun(t *testing.T) {
	cfg := sessionConfig(2)
	cfg.Frames = 4
	want, err := Run(cfg, mustRayleigh(t, 1), sphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cfg, sphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Twice through the same session: persistent detectors and caches
	// must not leak state into the results.
	for round := 0; round < 2; round++ {
		got, err := s.Measure(context.Background(), mustRayleigh(t, 1), cfg.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d diverged from Run:\n got %+v\nwant %+v", round, got, want)
		}
	}
}

func mustRayleigh(t *testing.T, seed int64) *RayleighSource {
	t.Helper()
	src, err := NewRayleighSource(rng.New(seed), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return src
}
