package link

import (
	"strings"
	"testing"

	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/rng"
	"repro/internal/testbed"
)

// GeoFactoryForTest builds the Geosphere detector for link tests.
var GeoFactoryForTest DetectorFactory = func(cons *constellation.Constellation, _ float64) core.Detector {
	return core.NewGeosphere(cons)
}

func testTrace(t *testing.T, nc, na int) *testbed.Trace {
	t.Helper()
	tr, err := testbed.Generate(testbed.OfficePlan(), testbed.GenerateConfig{
		Seed: 3, NumClients: nc, NumAntennas: na, LinksPerAP: 1, Realizations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceSourceCycles(t *testing.T) {
	tr := testTrace(t, 2, 4)
	src, err := NewTraceSource(tr)
	if err != nil {
		t.Fatal(err)
	}
	na, nc := src.Shape()
	if na != 4 || nc != 2 {
		t.Fatalf("shape %d×%d", na, nc)
	}
	total := 0
	for i := range tr.Links {
		total += tr.Links[i].Realizations()
	}
	// Drawing more frames than realizations must wrap around cleanly.
	first, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < total; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	again, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first[0].At(0, 0) != again[0].At(0, 0) { //geolint:float-ok test asserts exact bitwise reproducibility
		t.Fatal("trace source did not wrap deterministically")
	}
}

func TestTraceSourceValidation(t *testing.T) {
	if _, err := NewTraceSource(&testbed.Trace{Subcarriers: 48}); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := &testbed.Trace{Subcarriers: 10, Links: []testbed.LinkTrace{{NA: 2, NC: 2, H: [][][]complex128{}}}}
	if _, err := NewTraceSource(bad); err == nil {
		t.Fatal("wrong subcarrier count accepted")
	}
}

func TestRayleighSource(t *testing.T) {
	src, err := NewRayleighSource(rng.New(1), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	b, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Flat across subcarriers, fresh across frames.
	if a[0].At(0, 0) != a[47].At(0, 0) { //geolint:float-ok test asserts exact bitwise reproducibility
		t.Fatal("channel should be flat within a frame")
	}
	if a[0].At(0, 0) == b[0].At(0, 0) { //geolint:float-ok test asserts exact bitwise reproducibility
		t.Fatal("channel should change across frames")
	}
	if _, err := NewRayleighSource(rng.New(1), 2, 4); err == nil {
		t.Fatal("wide shape accepted")
	}
}

func TestRunHighSNR(t *testing.T) {
	tr := testTrace(t, 2, 4)
	src, err := NewTraceSource(tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Cons: constellation.QAM16, Rate: fec.Rate12,
		NumSymbols: 4, Frames: 5, SNRdB: 35, Seed: 7,
	}
	m, err := Run(cfg, src, GeoFactoryForTest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Frames != 5 || m.Streams != 10 {
		t.Fatalf("accounting wrong: %+v", m)
	}
	if m.FrameErrors != 0 {
		t.Fatalf("frame errors at 35 dB: %+v", m)
	}
	// 16-QAM rate-1/2: 24 Mbps per stream, 2 streams, minus CRC/tail
	// overhead ⇒ slightly under 48.
	if m.NetMbps < 40 || m.NetMbps > 48 {
		t.Fatalf("net throughput %g Mbps implausible", m.NetMbps)
	}
	if m.FER() != 0 || m.PerStreamFER != 0 { //geolint:float-ok exact ratio of integer counts
		t.Fatalf("error rates nonzero: %+v", m)
	}
	if m.Stats.Detections == 0 {
		t.Fatal("sphere decoder stats missing")
	}
}

func TestRunLowSNRFails(t *testing.T) {
	src, err := NewRayleighSource(rng.New(2), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Cons: constellation.QAM64, Rate: fec.Rate12,
		NumSymbols: 4, Frames: 4, SNRdB: -5, Seed: 8,
	}
	m, err := Run(cfg, src, GeoFactoryForTest)
	if err != nil {
		t.Fatal(err)
	}
	if m.FER() != 1 { //geolint:float-ok exact ratio of integer counts
		t.Fatalf("64-QAM at -5 dB should always fail, FER=%g", m.FER())
	}
	if m.NetMbps != 0 { //geolint:float-ok exact ratio of integer counts
		t.Fatalf("throughput %g at FER 1", m.NetMbps)
	}
}

func TestRateAdaptPicksDenserAtHighSNR(t *testing.T) {
	newSource := func() ChannelSource {
		s, err := NewRayleighSource(rng.New(3), 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cands := []*constellation.Constellation{constellation.QPSK, constellation.QAM16, constellation.QAM64}
	cfg := RunConfig{Rate: fec.Rate12, NumSymbols: 4, Frames: 6, Seed: 9}

	cfg.SNRdB = 38
	high, err := RateAdapt(cfg, cands, newSource, GeoFactoryForTest)
	if err != nil {
		t.Fatal(err)
	}
	if high.Constellation != "64-QAM" {
		t.Fatalf("at 38 dB rate adaptation picked %s", high.Constellation)
	}
	cfg.SNRdB = 4
	low, err := RateAdapt(cfg, cands, newSource, GeoFactoryForTest)
	if err != nil {
		t.Fatal(err)
	}
	if low.Constellation == "64-QAM" {
		t.Fatalf("at 4 dB rate adaptation picked %s", low.Constellation)
	}
	if _, err := RateAdapt(cfg, nil, newSource, GeoFactoryForTest); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestMeasurementFEREmpty(t *testing.T) {
	var m Measurement
	if m.FER() != 0 { //geolint:float-ok exact ratio of integer counts
		t.Fatal("empty measurement FER should be 0")
	}
}

func TestSNRJitter(t *testing.T) {
	src, err := NewRayleighSource(rng.New(4), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	j := jitterClients(rng.New(5), hs, 5)
	if j[0] == hs[0] {
		t.Fatal("jitter did not copy the matrices")
	}
	// Per-client scaling: the ratio of entries within one column is
	// preserved, across columns it may differ.
	r00 := j[0].At(0, 0) / hs[0].At(0, 0)
	r10 := j[0].At(1, 0) / hs[0].At(1, 0)
	if real(r00-r10) > 1e-12 || imag(r00-r10) > 1e-12 {
		t.Fatal("jitter not a per-column scalar")
	}
	// The gain must stay within ±5 dB.
	g := real(r00)*real(r00) + imag(r00)*imag(r00)
	if g < 0.31 || g > 3.17 {
		t.Fatalf("jitter gain %g outside ±5 dB", g)
	}
	// End to end: a jittered run still decodes at high SNR.
	cfg := RunConfig{
		Cons: constellation.QAM16, Rate: fec.Rate12,
		NumSymbols: 4, Frames: 3, SNRdB: 35, Seed: 6, SNRJitterDB: 5,
	}
	m, err := Run(cfg, src, GeoFactoryForTest)
	if err != nil {
		t.Fatal(err)
	}
	if m.FER() != 0 { //geolint:float-ok exact ratio of integer counts
		t.Fatalf("jittered 35 dB frames failed: %+v", m)
	}
}

func TestRunConfigValidation(t *testing.T) {
	valid := RunConfig{
		Cons: constellation.QAM16, Rate: fec.Rate12,
		NumSymbols: 4, Frames: 2, SNRdB: 30, Seed: 1,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*RunConfig)
		want   string
	}{
		{"nil constellation", func(c *RunConfig) { c.Cons = nil }, "constellation"},
		{"zero frames", func(c *RunConfig) { c.Frames = 0 }, "Frames"},
		{"negative frames", func(c *RunConfig) { c.Frames = -3 }, "Frames"},
		{"zero symbols", func(c *RunConfig) { c.NumSymbols = 0 }, "NumSymbols"},
		{"negative jitter", func(c *RunConfig) { c.SNRJitterDB = -1 }, "SNRJitterDB"},
		{"negative training reps", func(c *RunConfig) { c.TrainingReps = -1 }, "TrainingReps"},
		{"negative workers", func(c *RunConfig) { c.Workers = -2 }, "Workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the bad field %q", err, tc.want)
			}
			// Run must reject it too, before touching the source.
			src, serr := NewRayleighSource(rng.New(1), 4, 2)
			if serr != nil {
				t.Fatal(serr)
			}
			if _, rerr := Run(cfg, src, GeoFactoryForTest); rerr == nil {
				t.Fatal("Run accepted an invalid config")
			}
		})
	}
}
