package link

import (
	"errors"
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/obs"
	"repro/internal/ofdm"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/units"
)

// kappaSweepSource builds a frequency-selective static channel whose
// subcarriers sweep κ² from 0 dB up to maxKappa2dB — the conditioning
// mix the adaptive scheduler is calibrated against (well-conditioned
// subcarriers dominate, a tail is genuinely hard).
func kappaSweepSource(t *testing.T, seed int64, na, nc int, maxKappa2dB float64) ChannelSource {
	t.Helper()
	src := rng.New(seed)
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		k2 := units.DB(maxKappa2dB * float64(i) / float64(len(hs)-1))
		h, err := channel.Conditioned(src, na, nc, k2)
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
	}
	s, err := NewStaticSubcarrierSource(hs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func adaptiveBaseConfig() RunConfig {
	return RunConfig{
		Cons:       constellation.QAM16,
		Rate:       fec.Rate12,
		NumSymbols: 2,
		Frames:     40,
		SNRdB:      24,
		Seed:       2014,
	}
}

func geosphereFactory(c *constellation.Constellation, _ float64) core.Detector {
	return core.NewGeosphere(c)
}

// TestAdaptiveExactConfigMatchesBaseline pins the scheduler's ML
// guarantee end to end: with the K-best band pushed out of reach,
// every subcarrier resolves exactly (gate pass or seeded sphere), so
// the adaptive run's error counts and throughput must equal the
// all-sphere baseline's — while doing strictly less tree work.
func TestAdaptiveExactConfigMatchesBaseline(t *testing.T) {
	cfg := adaptiveBaseConfig()
	base, err := Run(cfg, kappaSweepSource(t, 7, 4, 4, 30), geosphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AdaptiveDetect = true
	cfg.Adaptive = policy.Config{ZFKappa2dB: 10, KBestKappa2dB: 1e3}
	ad, err := Run(cfg, kappaSweepSource(t, 7, 4, 4, 30), geosphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	if ad.FrameErrors != base.FrameErrors || ad.StreamErrors != base.StreamErrors {
		t.Fatalf("exact adaptive config changed errors: %d/%d frames, %d/%d streams",
			ad.FrameErrors, base.FrameErrors, ad.StreamErrors, base.StreamErrors)
	}
	if ad.NetMbps != base.NetMbps { //geolint:float-ok both sides accumulate the identical success sequence, so the comparison is exact
		t.Fatalf("throughput diverged: %g vs %g Mbps", ad.NetMbps, base.NetMbps)
	}
	if ad.Stats.PEDCalcs >= base.Stats.PEDCalcs {
		t.Fatalf("adaptive did no less tree work: %d vs %d PED calcs", ad.Stats.PEDCalcs, base.Stats.PEDCalcs)
	}
}

// TestAdaptivePERDeltaBound pins the default calibration over the κ²
// sweep: the adaptive run (K-best band included) may not degrade the
// per-stream error rate by more than 0.1% absolute against the
// all-sphere baseline — the acceptance bound the scheduler's default
// cuts were chosen to meet.
func TestAdaptivePERDeltaBound(t *testing.T) {
	cfg := adaptiveBaseConfig()
	cfg.Frames = 120
	base, err := Run(cfg, kappaSweepSource(t, 21, 4, 4, 55), geosphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AdaptiveDetect = true
	ad, err := Run(cfg, kappaSweepSource(t, 21, 4, 4, 55), geosphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	if delta := ad.PerStreamFER - base.PerStreamFER; delta > 0.001 {
		t.Fatalf("adaptive PER %.5f exceeds baseline %.5f by %.5f (> 0.1%%)",
			ad.PerStreamFER, base.PerStreamFER, delta)
	}
}

// TestAdaptiveDeterministicTiers pins scheduling determinism through
// the whole pipeline: the same seed yields the identical per-run tier
// and gate counter totals for every worker count, and the Measurement
// stays byte-identical.
func TestAdaptiveDeterministicTiers(t *testing.T) {
	run := func(workers int) (Measurement, obs.AdaptiveSnapshot) {
		rec := obs.NewStatsRecorder()
		cfg := adaptiveBaseConfig()
		cfg.AdaptiveDetect = true
		cfg.Workers = workers
		cfg.Recorder = rec
		m, err := Run(cfg, kappaSweepSource(t, 33, 4, 4, 55), geosphereFactory)
		if err != nil {
			t.Fatal(err)
		}
		return m, rec.Snapshot().Frames.Adaptive
	}
	m1, a1 := run(1)
	m4, a4 := run(4)
	if m1 != m4 {
		t.Fatalf("Measurement diverged across workers:\n1: %+v\n4: %+v", m1, m4)
	}
	// Histograms aside, the counter totals must match exactly.
	a1.Kappa2dB, a4.Kappa2dB = obs.HistogramSnapshot{}, obs.HistogramSnapshot{}
	if a1.SchedZF != a4.SchedZF || a1.SchedKBest != a4.SchedKBest || a1.SchedSphere != a4.SchedSphere ||
		a1.GatePass != a4.GatePass || a1.KBestFallbacks != a4.KBestFallbacks ||
		a1.SphereFallbacks != a4.SphereFallbacks || a1.SeededRadius != a4.SeededRadius {
		t.Fatalf("adaptive counters diverged across workers:\n1: %+v\n4: %+v", a1, a4)
	}
	if a1.SchedZF+a1.SchedKBest+a1.SchedSphere == 0 {
		t.Fatal("no tier assignments recorded")
	}
	if a1.GatePass == 0 {
		t.Fatal("gate never passed on the sweep; calibration is broken")
	}
	// The κ² sweep spans all three bands, so every tier must appear.
	if a1.SchedZF == 0 || a1.SchedKBest == 0 || a1.SchedSphere == 0 {
		t.Fatalf("sweep did not exercise all tiers: %+v", a1)
	}
	// Run-level totals must be reproducible run over run, not just
	// across worker counts.
	_, again := run(1)
	if a1.SchedZF != again.SchedZF || a1.SchedKBest != again.SchedKBest ||
		a1.SchedSphere != again.SchedSphere || a1.GatePass != again.GatePass ||
		a1.KBestFallbacks != again.KBestFallbacks || a1.SphereFallbacks != again.SphereFallbacks ||
		a1.SeededRadius != again.SeededRadius {
		t.Fatalf("adaptive counters diverged across identical runs:\n%+v\n%+v", a1, again)
	}
}

// TestAdaptiveKappaHistogramRecorded verifies the κ̂² observability
// stream: an adaptive run with a prep pool populates the histogram
// with finite per-subcarrier estimates.
func TestAdaptiveKappaHistogramRecorded(t *testing.T) {
	rec := obs.NewStatsRecorder()
	cfg := adaptiveBaseConfig()
	cfg.Frames = 4
	cfg.AdaptiveDetect = true
	cfg.Recorder = rec
	if _, err := Run(cfg, kappaSweepSource(t, 5, 4, 4, 30), geosphereFactory); err != nil {
		t.Fatal(err)
	}
	h := rec.Snapshot().Frames.Adaptive.Kappa2dB
	if h.Count == 0 {
		t.Fatal("κ̂² histogram is empty")
	}
	if math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
		t.Fatalf("κ̂² histogram sum is not finite: %g", h.Sum)
	}
}

// TestAdaptiveValidation pins the config surface: soft decoding and
// invalid policy configs are rejected with ErrBadAdaptive; NoPrepCache
// composes with adaptive detection (fresh scheduler per frame).
func TestAdaptiveValidation(t *testing.T) {
	cfg := adaptiveBaseConfig()
	cfg.AdaptiveDetect = true
	cfg.SoftDecoding = true
	if err := cfg.Validate(); !errors.Is(err, ErrBadAdaptive) {
		t.Fatalf("soft+adaptive: got %v, want ErrBadAdaptive", err)
	}
	cfg = adaptiveBaseConfig()
	cfg.AdaptiveDetect = true
	cfg.Adaptive = policy.Config{ZFKappa2dB: 20, KBestKappa2dB: 10}
	if err := cfg.Validate(); !errors.Is(err, ErrBadAdaptive) {
		t.Fatalf("inverted cuts: got %v, want ErrBadAdaptive", err)
	}
	cfg = adaptiveBaseConfig()
	cfg.AdaptiveDetect = true
	cfg.NoPrepCache = true
	cfg.Frames = 4
	withCache := adaptiveBaseConfig()
	withCache.AdaptiveDetect = true
	withCache.Frames = 4
	cold, err := Run(cfg, kappaSweepSource(t, 9, 4, 4, 30), geosphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(withCache, kappaSweepSource(t, 9, 4, 4, 30), geosphereFactory)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FrameErrors != warm.FrameErrors || cold.StreamErrors != warm.StreamErrors {
		t.Fatalf("NoPrepCache changed adaptive outcomes: %+v vs %+v", cold, warm)
	}
}
