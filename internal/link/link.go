// Package link implements the link-layer machinery of §5.2: uplink
// multi-user frame scheduling, net-throughput accounting over 20 MHz,
// ideal bit-rate adaptation (the best constellation per configuration,
// as the paper's methodology prescribes in lieu of a specific rate
// adaptation algorithm), and the channel sources — recorded testbed
// traces and per-frame Rayleigh draws — that feed the experiments.
package link

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/ofdm"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/testbed"
)

// ChannelSource yields one frame's worth of per-subcarrier channel
// matrices per call. Implementations cycle recorded traces or draw
// synthetic fading.
type ChannelSource interface {
	// Next returns ofdm.NumData matrices of identical shape.
	Next() ([]*cmplxmat.Matrix, error)
	// Shape reports the (na, nc) the source produces.
	Shape() (na, nc int)
}

// TraceSource replays a recorded testbed trace, cycling through its
// links and realizations.
type TraceSource struct {
	trace *testbed.Trace
	li    int
	ri    int
}

// NewTraceSource wraps a recorded testbed trace into a ChannelSource.
// All links must share one na×nc shape.
func NewTraceSource(t *testbed.Trace) (*TraceSource, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(t.Links) == 0 {
		return nil, fmt.Errorf("link: trace has no links")
	}
	if t.Subcarriers != ofdm.NumData {
		return nil, fmt.Errorf("link: trace has %d subcarriers, want %d", t.Subcarriers, ofdm.NumData)
	}
	na, nc := t.Links[0].NA, t.Links[0].NC
	for i := range t.Links {
		l := &t.Links[i]
		if l.NA != na || l.NC != nc {
			return nil, fmt.Errorf("link: link %d shape %d×%d differs from %d×%d", i, l.NA, l.NC, na, nc)
		}
		if len(l.H) == 0 {
			return nil, fmt.Errorf("link: link %d has no realizations", i)
		}
	}
	return &TraceSource{trace: t}, nil
}

// Shape implements ChannelSource.
func (s *TraceSource) Shape() (int, int) {
	return s.trace.Links[0].NA, s.trace.Links[0].NC
}

// Next implements ChannelSource, cycling realizations then links.
func (s *TraceSource) Next() ([]*cmplxmat.Matrix, error) {
	l := &s.trace.Links[s.li]
	hs := make([]*cmplxmat.Matrix, s.trace.Subcarriers)
	for sc := range hs {
		m, err := l.Matrix(s.ri, sc)
		if err != nil {
			return nil, err
		}
		hs[sc] = m
	}
	s.ri++
	if s.ri >= len(l.H) {
		s.ri = 0
		s.li = (s.li + 1) % len(s.trace.Links)
	}
	return hs, nil
}

// RayleighSource draws one i.i.d. Rayleigh matrix per frame, constant
// across subcarriers (the per-frame narrowband model of §5.3.2's
// simulation methodology).
type RayleighSource struct {
	src    *rng.Source
	na, nc int
}

// NewRayleighSource returns a per-frame i.i.d. Rayleigh channel source.
func NewRayleighSource(src *rng.Source, na, nc int) (*RayleighSource, error) {
	if na < nc || nc <= 0 {
		return nil, fmt.Errorf("link: invalid Rayleigh shape %d×%d", na, nc)
	}
	return &RayleighSource{src: src, na: na, nc: nc}, nil
}

// Shape implements ChannelSource.
func (s *RayleighSource) Shape() (int, int) { return s.na, s.nc }

// Next implements ChannelSource.
func (s *RayleighSource) Next() ([]*cmplxmat.Matrix, error) {
	h := channel.Rayleigh(s.src, s.na, s.nc)
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		hs[i] = h
	}
	return hs, nil
}

// DetectorFactory builds a fresh detector for a constellation; the
// noise variance is supplied for detectors (MMSE, MMSE-SIC) that need
// it.
type DetectorFactory func(cons *constellation.Constellation, noiseVar float64) core.Detector

// Measurement is the outcome of running frames through one
// detector/constellation configuration.
type Measurement struct {
	Detector      string
	Constellation string
	Frames        int
	FrameErrors   int
	StreamErrors  int
	Streams       int
	NetMbps       float64 // successful payload bits / air time
	PerStreamFER  float64
	// Complexity totals when the detector implements core.Counter.
	Stats core.Stats
}

// FER returns the frame error rate (a frame fails when any stream's
// CRC fails, the conservative multi-user accounting).
func (m Measurement) FER() float64 {
	if m.Frames == 0 {
		return 0
	}
	return float64(m.FrameErrors) / float64(m.Frames)
}

// RunConfig controls one measurement.
type RunConfig struct {
	Cons       *constellation.Constellation
	Rate       fec.Rate
	NumSymbols int
	Frames     int
	SNRdB      float64
	Seed       int64
	// SoftDecoding routes detector LLRs into the Viterbi decoder;
	// the factory must then build a core.SoftDetector.
	SoftDecoding bool
	// SNRJitterDB spreads per-client transmit power uniformly over
	// ±SNRJitterDB around SNRdB, re-drawn per frame — the §5.2 user
	// selection methodology ("selecting users in a small SNR range
	// around a specific value"). Zero keeps all clients exactly at
	// SNRdB.
	SNRJitterDB float64
	// EstimatedCSI makes the receiver estimate every subcarrier's
	// channel from noisy preambles (phy.EstimateChannels) instead of
	// using genie knowledge; the preamble's air time is charged
	// against throughput. TrainingReps repeats the preamble (0 means
	// one repetition).
	EstimatedCSI bool
	TrainingReps int
}

// Run measures one detector over frames from source.
func Run(cfg RunConfig, source ChannelSource, factory DetectorFactory) (Measurement, error) {
	pcfg := phy.Config{Cons: cfg.Cons, Rate: cfg.Rate, NumSymbols: cfg.NumSymbols, SoftDecoding: cfg.SoftDecoding}
	l, err := phy.NewLink(pcfg)
	if err != nil {
		return Measurement{}, err
	}
	noiseVar := channel.NoiseVarForSNRdB(cfg.SNRdB)
	det := factory(cfg.Cons, noiseVar)
	src := rng.New(cfg.Seed)
	_, nc := source.Shape()
	var m Measurement
	m.Detector = det.Name()
	m.Constellation = cfg.Cons.Name()
	var payloadBitsOK float64
	for fi := 0; fi < cfg.Frames; fi++ {
		hs, err := source.Next()
		if err != nil {
			return m, err
		}
		if cfg.SNRJitterDB > 0 {
			hs = jitterClients(src, hs, cfg.SNRJitterDB)
		}
		f, err := l.Encode(src, nc)
		if err != nil {
			return m, err
		}
		hsDet := hs
		if cfg.EstimatedCSI {
			reps := cfg.TrainingReps
			if reps <= 0 {
				reps = 1
			}
			hsDet, err = phy.EstimateChannels(src, hs, noiseVar, reps)
			if err != nil {
				return m, err
			}
		}
		res, err := l.TransmitReceiveCSI(src, f, hs, hsDet, det, noiseVar)
		if err != nil {
			return m, err
		}
		m.Frames++
		if !res.FrameOK() {
			m.FrameErrors++
		}
		for _, ok := range res.StreamOK {
			m.Streams++
			if ok {
				payloadBitsOK += float64(pcfg.PayloadBits())
			} else {
				m.StreamErrors++
			}
		}
	}
	symbolsPerFrame := cfg.NumSymbols
	if cfg.EstimatedCSI {
		reps := cfg.TrainingReps
		if reps <= 0 {
			reps = 1
		}
		symbolsPerFrame += phy.TrainingSymbols(nc, reps)
	}
	airTime := float64(cfg.Frames) * float64(symbolsPerFrame) * ofdm.SymbolDuration
	if airTime > 0 {
		m.NetMbps = payloadBitsOK / airTime / 1e6
	}
	if m.Streams > 0 {
		m.PerStreamFER = float64(m.StreamErrors) / float64(m.Streams)
	}
	if c, ok := det.(core.Counter); ok {
		m.Stats = c.Stats()
	}
	return m, nil
}

// jitterClients scales each client's channel column by a per-frame
// uniform gain in ±jitterDB, modelling users whose SNRs fall in a
// band rather than on a point. The matrices are copied, leaving the
// source's data untouched for the next consumer.
func jitterClients(src *rng.Source, hs []*cmplxmat.Matrix, jitterDB float64) []*cmplxmat.Matrix {
	nc := hs[0].Cols
	gains := make([]complex128, nc)
	for c := range gains {
		db := (2*src.Float64() - 1) * jitterDB
		gains[c] = complex(math.Pow(10, db/20), 0)
	}
	out := make([]*cmplxmat.Matrix, len(hs))
	for i, h := range hs {
		m := h.Clone()
		for c := 0; c < nc; c++ {
			for r := 0; r < m.Rows; r++ {
				m.Set(r, c, m.At(r, c)*gains[c])
			}
		}
		out[i] = m
	}
	return out
}

// RateAdapt runs every constellation in cands through Run and returns
// the measurement with the highest net throughput — the paper's ideal
// bit-rate adaptation (§5.2 methodology: "we show throughput results
// for the constellation that achieves the best average throughput").
func RateAdapt(cfg RunConfig, cands []*constellation.Constellation, newSource func() ChannelSource, factory DetectorFactory) (Measurement, error) {
	if len(cands) == 0 {
		return Measurement{}, fmt.Errorf("link: no candidate constellations")
	}
	var best Measurement
	found := false
	for _, cons := range cands {
		c := cfg
		c.Cons = cons
		meas, err := Run(c, newSource(), factory)
		if err != nil {
			return Measurement{}, err
		}
		if !found || meas.NetMbps > best.NetMbps {
			best = meas
			found = true
		}
	}
	return best, nil
}
