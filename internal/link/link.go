// Package link implements the link-layer machinery of §5.2: uplink
// multi-user frame scheduling, net-throughput accounting over 20 MHz,
// ideal bit-rate adaptation (the best constellation per configuration,
// as the paper's methodology prescribes in lieu of a specific rate
// adaptation algorithm), and the channel sources — recorded testbed
// traces and per-frame Rayleigh draws — that feed the experiments.
package link

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/obs"
	"repro/internal/ofdm"
	"repro/internal/phy"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/testbed"
	"repro/internal/units"
)

// Typed configuration errors. RunConfig.Validate and the channel
// source constructors wrap these sentinels (with the offending values
// attached), so every misconfiguration is matchable with errors.Is —
// at this layer and through the geosphere facade, which re-exports
// them.
var (
	// ErrNilConstellation reports a config without a constellation.
	ErrNilConstellation = errors.New("link: config needs a constellation")
	// ErrBadFrames reports a non-positive frame count.
	ErrBadFrames = errors.New("link: Frames must be positive")
	// ErrBadNumSymbols reports a non-positive OFDM symbol count.
	ErrBadNumSymbols = errors.New("link: NumSymbols must be positive")
	// ErrBadJitter reports a negative SNR jitter width.
	ErrBadJitter = errors.New("link: SNRJitterDB must be non-negative")
	// ErrBadTraining reports a negative preamble repetition count.
	ErrBadTraining = errors.New("link: TrainingReps must be non-negative")
	// ErrBadWorkers reports a negative worker count.
	ErrBadWorkers = errors.New("link: Workers must be non-negative")
	// ErrBadShape reports an antenna/client geometry no receiver can
	// serve (nc < 1 or fewer antennas than clients).
	ErrBadShape = errors.New("link: invalid antenna/client shape")
	// ErrBadQueueDepth reports a negative session queue depth.
	ErrBadQueueDepth = errors.New("link: QueueDepth must be non-negative")
	// ErrBadAdaptive reports an AdaptiveDetect configuration the
	// pipeline cannot serve: an invalid policy.Config, or a combination
	// with soft decoding (the adaptive detector emits hard decisions).
	ErrBadAdaptive = errors.New("link: invalid adaptive detection config")
	// ErrQueueFull reports a non-blocking submission rejected because
	// the session's bounded frame queue is at capacity — the admission-
	// control signal; callers shed or retry instead of queueing
	// unboundedly.
	ErrQueueFull = errors.New("link: frame queue full")
	// ErrClosed reports a frame submitted to a closed Session.
	ErrClosed = errors.New("link: session closed")
)

// ChannelSource yields one frame's worth of per-subcarrier channel
// matrices per call. Implementations cycle recorded traces or draw
// synthetic fading.
type ChannelSource interface {
	// Next returns ofdm.NumData matrices of identical shape.
	Next() ([]*cmplxmat.Matrix, error)
	// Shape reports the (na, nc) the source produces.
	Shape() (na, nc int)
}

// TraceSource replays a recorded testbed trace, cycling through its
// links and realizations.
type TraceSource struct {
	trace *testbed.Trace
	li    int
	ri    int
}

// NewTraceSource wraps a recorded testbed trace into a ChannelSource.
// All links must share one na×nc shape.
func NewTraceSource(t *testbed.Trace) (*TraceSource, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(t.Links) == 0 {
		return nil, fmt.Errorf("link: trace has no links")
	}
	if t.Subcarriers != ofdm.NumData {
		return nil, fmt.Errorf("link: trace has %d subcarriers, want %d", t.Subcarriers, ofdm.NumData)
	}
	na, nc := t.Links[0].NA, t.Links[0].NC
	for i := range t.Links {
		l := &t.Links[i]
		if l.NA != na || l.NC != nc {
			return nil, fmt.Errorf("link: link %d shape %d×%d differs from %d×%d", i, l.NA, l.NC, na, nc)
		}
		if len(l.H) == 0 {
			return nil, fmt.Errorf("link: link %d has no realizations", i)
		}
	}
	return &TraceSource{trace: t}, nil
}

// Shape implements ChannelSource.
func (s *TraceSource) Shape() (int, int) {
	return s.trace.Links[0].NA, s.trace.Links[0].NC
}

// Next implements ChannelSource, cycling realizations then links.
func (s *TraceSource) Next() ([]*cmplxmat.Matrix, error) {
	l := &s.trace.Links[s.li]
	hs := make([]*cmplxmat.Matrix, s.trace.Subcarriers)
	for sc := range hs {
		m, err := l.Matrix(s.ri, sc)
		if err != nil {
			return nil, err
		}
		hs[sc] = m
	}
	s.ri++
	if s.ri >= len(l.H) {
		s.ri = 0
		s.li = (s.li + 1) % len(s.trace.Links)
	}
	return hs, nil
}

// StaticSource replays one frame-invariant channel: every frame sees
// the same na×nc matrix on every data subcarrier. This is the
// trace-replay regime of §5's evaluation (the same recorded channels
// re-run across many frames and SNR points), the regime where the
// preparation cache converts every per-subcarrier QR into a lookup.
// The matrix is shared, not copied — callers must not mutate it.
type StaticSource struct {
	hs []*cmplxmat.Matrix
}

// NewStaticSource returns a ChannelSource that yields h for every
// subcarrier of every frame.
func NewStaticSource(h *cmplxmat.Matrix) (*StaticSource, error) {
	if h == nil || h.Rows < h.Cols || h.Cols <= 0 {
		return nil, fmt.Errorf("%w: static source needs a tall matrix", ErrBadShape)
	}
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		hs[i] = h
	}
	return &StaticSource{hs: hs}, nil
}

// NewStaticSubcarrierSource returns a ChannelSource replaying the given
// per-subcarrier channels (ofdm.NumData matrices of one shape) for
// every frame — a frequency-selective but time-invariant channel, the
// trace-replay regime where every subcarrier needs its own QR yet no
// frame ever changes it. The matrices are shared, not copied.
func NewStaticSubcarrierSource(hs []*cmplxmat.Matrix) (*StaticSource, error) {
	if len(hs) != ofdm.NumData {
		return nil, fmt.Errorf("%w: %d subcarrier channels, want %d", ErrBadShape, len(hs), ofdm.NumData)
	}
	na, nc := hs[0].Rows, hs[0].Cols
	if na < nc || nc <= 0 {
		return nil, fmt.Errorf("%w: static source needs tall matrices, got %d×%d", ErrBadShape, na, nc)
	}
	for i, h := range hs {
		if h == nil || h.Rows != na || h.Cols != nc {
			return nil, fmt.Errorf("%w: subcarrier %d shape differs", ErrBadShape, i)
		}
	}
	out := make([]*cmplxmat.Matrix, ofdm.NumData)
	copy(out, hs)
	return &StaticSource{hs: out}, nil
}

// Shape implements ChannelSource.
func (s *StaticSource) Shape() (int, int) { return s.hs[0].Rows, s.hs[0].Cols }

// Next implements ChannelSource. The returned slice and its matrices
// are shared across calls; consumers treat channels as read-only.
func (s *StaticSource) Next() ([]*cmplxmat.Matrix, error) { return s.hs, nil }

// RayleighSource draws one i.i.d. Rayleigh matrix per frame, constant
// across subcarriers (the per-frame narrowband model of §5.3.2's
// simulation methodology).
type RayleighSource struct {
	src    *rng.Source
	na, nc int
}

// NewRayleighSource returns a per-frame i.i.d. Rayleigh channel source.
func NewRayleighSource(src *rng.Source, na, nc int) (*RayleighSource, error) {
	if na < nc || nc <= 0 {
		return nil, fmt.Errorf("%w: Rayleigh %d×%d", ErrBadShape, na, nc)
	}
	return &RayleighSource{src: src, na: na, nc: nc}, nil
}

// Shape implements ChannelSource.
func (s *RayleighSource) Shape() (int, int) { return s.na, s.nc }

// Next implements ChannelSource.
func (s *RayleighSource) Next() ([]*cmplxmat.Matrix, error) {
	h := channel.Rayleigh(s.src, s.na, s.nc)
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		hs[i] = h
	}
	return hs, nil
}

// DetectorFactory builds a fresh detector for a constellation; the
// noise variance is supplied for detectors (MMSE, MMSE-SIC) that need
// it.
type DetectorFactory func(cons *constellation.Constellation, noiseVar float64) core.Detector

// Measurement is the outcome of running frames through one
// detector/constellation configuration.
type Measurement struct {
	Detector      string
	Constellation string
	Frames        int
	FrameErrors   int
	StreamErrors  int
	Streams       int
	NetMbps       float64 // successful payload bits / air time
	PerStreamFER  float64
	// Complexity totals when the detector tracks statistics (see
	// core.StatsOf).
	Stats core.Stats
}

// FER returns the frame error rate (a frame fails when any stream's
// CRC fails, the conservative multi-user accounting).
func (m Measurement) FER() float64 {
	if m.Frames == 0 {
		return 0
	}
	return float64(m.FrameErrors) / float64(m.Frames)
}

// RunConfig controls one measurement.
type RunConfig struct {
	Cons       *constellation.Constellation
	Rate       fec.Rate
	NumSymbols int
	Frames     int
	SNRdB      float64
	Seed       int64
	// SoftDecoding routes detector LLRs into the Viterbi decoder;
	// the factory must then build a core.SoftDetector.
	SoftDecoding bool
	// SNRJitterDB spreads per-client transmit power uniformly over
	// ±SNRJitterDB around SNRdB, re-drawn per frame — the §5.2 user
	// selection methodology ("selecting users in a small SNR range
	// around a specific value"). Zero keeps all clients exactly at
	// SNRdB.
	SNRJitterDB float64
	// EstimatedCSI makes the receiver estimate every subcarrier's
	// channel from noisy preambles (phy.EstimateChannels) instead of
	// using genie knowledge; the preamble's air time is charged
	// against throughput. TrainingReps repeats the preamble (0 means
	// one repetition).
	EstimatedCSI bool
	TrainingReps int
	// Workers bounds the goroutines detecting frames concurrently.
	// Frames are independent — each one draws from its own
	// deterministic RNG substream (rng.Substream(Seed, frame)) and is
	// detected by its own detector instance — so the Measurement is
	// byte-identical for every worker count. 0 and 1 both run on the
	// calling goroutine.
	Workers int
	// NoPrepCache disables the per-worker channel-preparation cache:
	// every frame rebuilds its detector and refactorizes every
	// subcarrier's channel, the pipeline's pre-cache behavior. The
	// Measurement is byte-identical either way (pinned by the
	// cached-vs-cold conformance suite); the knob exists for that
	// proof and for benchmarking the cache itself.
	NoPrepCache bool
	// QueueDepth bounds the Session's frame queue (the backpressure /
	// admission-control knob for the streaming path). 0 means 4×
	// workers. The batch Run path is insensitive to it beyond pipeline
	// depth — outcomes are merged in frame order regardless.
	QueueDepth int
	// IncrementalPrep lets each worker's preparation cache absorb a
	// slowly-drifted channel with rank-1 QR updates instead of a full
	// refactorization (core.PrepPool.SetIncremental). Off by default:
	// the update chain tracks the fresh factorization only to rotation
	// roundoff, so the default pipeline stays bitwise reproducible
	// against the golden suite. Ignored when NoPrepCache is set.
	IncrementalPrep bool
	// AdaptiveDetect replaces the factory's detector with the
	// condition-adaptive scheduler (internal/policy): each subcarrier
	// is assigned a ZF / K-best / Geosphere tier from its cached κ̂²
	// and the run SNR, every vector is first resolved by the gated
	// zero-forcing solve, and only gate failures pay for a tree search
	// (sphere escalations seeded with the ZF residual radius). Off by
	// default: the factory's detector runs unchanged and every golden
	// byte stays identical. Incompatible with SoftDecoding.
	AdaptiveDetect bool
	// Adaptive tunes the scheduler when AdaptiveDetect is set; the zero
	// value is the calibrated default (policy.Config documents the
	// fields and the Default* calibration).
	Adaptive policy.Config
	// Recorder, when non-nil, receives the run's observability stream:
	// one obs.DetectSample per subcarrier detection (from recording-
	// capable detectors), one obs.DecodeSample per stream decode, and
	// one obs.FrameSample per completed frame with the worker id and
	// wall-clock timing. It must be safe for concurrent use when
	// Workers > 1. Recording never changes the Measurement.
	Recorder obs.Recorder
}

// Validate rejects configurations that would silently measure nothing
// or crash deep inside the pipeline. Every failure wraps one of the
// typed sentinels (ErrNilConstellation, ErrBadFrames, ...) so callers
// can match with errors.Is.
func (cfg RunConfig) Validate() error {
	if cfg.Cons == nil {
		return ErrNilConstellation
	}
	if cfg.Frames <= 0 {
		return fmt.Errorf("%w, got %d", ErrBadFrames, cfg.Frames)
	}
	return cfg.validateRest()
}

// ValidateFormat validates everything Validate does except the batch
// horizon cfg.Frames — the per-frame format shared by the streaming
// Session, which has no frame count.
func (cfg RunConfig) ValidateFormat() error {
	if cfg.Cons == nil {
		return ErrNilConstellation
	}
	return cfg.validateRest()
}

// validateRest holds the checks shared by Validate and ValidateFormat.
func (cfg RunConfig) validateRest() error {
	if cfg.NumSymbols <= 0 {
		return fmt.Errorf("%w, got %d", ErrBadNumSymbols, cfg.NumSymbols)
	}
	if cfg.SNRJitterDB < 0 {
		return fmt.Errorf("%w, got %g", ErrBadJitter, cfg.SNRJitterDB)
	}
	if cfg.TrainingReps < 0 {
		return fmt.Errorf("%w, got %d", ErrBadTraining, cfg.TrainingReps)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("%w, got %d", ErrBadWorkers, cfg.Workers)
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("%w, got %d", ErrBadQueueDepth, cfg.QueueDepth)
	}
	if cfg.AdaptiveDetect {
		if cfg.SoftDecoding {
			return fmt.Errorf("%w: soft decoding needs detector LLRs, which the adaptive scheduler does not produce", ErrBadAdaptive)
		}
		if err := cfg.Adaptive.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadAdaptive, err)
		}
	}
	return nil
}

// buildDetector constructs one worker's detector: the condition-
// adaptive scheduler when AdaptiveDetect is set, the factory's
// detector otherwise.
func (cfg RunConfig) buildDetector(factory DetectorFactory, noiseVar float64) (core.Detector, error) {
	if cfg.AdaptiveDetect {
		return policy.NewDetector(cfg.Cons, units.DB(cfg.SNRdB), cfg.Adaptive)
	}
	return factory(cfg.Cons, noiseVar), nil
}

// phyConfig derives the physical-layer configuration.
func (cfg RunConfig) phyConfig() phy.Config {
	return phy.Config{Cons: cfg.Cons, Rate: cfg.Rate, NumSymbols: cfg.NumSymbols, SoftDecoding: cfg.SoftDecoding, Recorder: cfg.Recorder}
}

// trainingReps returns the effective preamble repetition count.
func (cfg RunConfig) trainingReps() int {
	if cfg.TrainingReps <= 0 {
		return 1
	}
	return cfg.TrainingReps
}

// Run measures one detector over frames from source.
//
// Run is the batch entry point over the streaming Session: one Session
// is opened with a bounded pool of cfg.Workers goroutines, frames
// 0..Frames-1 are submitted in order and merged in frame order
// (Session.Measure). Determinism is preserved by construction: the
// stateful ChannelSource is drained sequentially up front (frame i
// always sees the i-th draw), every frame's randomness comes from the
// state-independent substream rng.Substream(cfg.Seed, i), and each
// worker owns its phy.Link, detector and preparation cache (a cache
// hit reuses bit-identical prepared state, and per-frame complexity
// Stats are snapshot deltas). The resulting Measurement — error
// counts, throughput and complexity Stats — is byte-identical for
// every worker count and queue depth, and for NoPrepCache on or off.
func Run(cfg RunConfig, source ChannelSource, factory DetectorFactory) (Measurement, error) {
	if err := cfg.Validate(); err != nil {
		return Measurement{}, err
	}
	if cfg.Workers > cfg.Frames {
		cfg.Workers = cfg.Frames
	}
	s, err := NewSession(cfg, factory)
	if err != nil {
		return Measurement{}, err
	}
	defer s.Close()
	return s.Measure(context.Background(), source, cfg.Frames)
}

// jitterClients scales each client's channel column by a per-frame
// uniform gain in ±jitterDB, modelling users whose SNRs fall in a
// band rather than on a point. The matrices are copied, leaving the
// source's data untouched for the next consumer.
func jitterClients(src *rng.Source, hs []*cmplxmat.Matrix, jitterDB float64) []*cmplxmat.Matrix {
	nc := hs[0].Cols
	gains := make([]complex128, nc)
	for c := range gains {
		db := (2*src.Float64() - 1) * jitterDB
		gains[c] = complex(math.Pow(10, db/20), 0)
	}
	out := make([]*cmplxmat.Matrix, len(hs))
	for i, h := range hs {
		m := h.Clone()
		for c := 0; c < nc; c++ {
			for r := 0; r < m.Rows; r++ {
				m.Set(r, c, m.At(r, c)*gains[c])
			}
		}
		out[i] = m
	}
	return out
}

// RateAdapt runs every constellation in cands through Run and returns
// the measurement with the highest net throughput — the paper's ideal
// bit-rate adaptation (§5.2 methodology: "we show throughput results
// for the constellation that achieves the best average throughput").
//
// Candidates are measured concurrently, dividing cfg.Workers between
// the candidate loop and each candidate's frame pipeline so the total
// goroutine count stays within the budget. Each candidate uses its own
// ChannelSource from newSource and its own seeded substreams, and the
// winner is selected by ascending candidate index with a
// strictly-greater comparison, so the result matches the sequential
// loop exactly. newSource must be safe to call from multiple
// goroutines when cfg.Workers > 1.
func RateAdapt(cfg RunConfig, cands []*constellation.Constellation, newSource func() ChannelSource, factory DetectorFactory) (Measurement, error) {
	if len(cands) == 0 {
		return Measurement{}, fmt.Errorf("link: no candidate constellations")
	}
	budget := cfg.Workers
	if budget < 1 {
		budget = 1
	}
	outer := budget
	if outer > len(cands) {
		outer = len(cands)
	}
	inner := budget / outer
	if inner < 1 {
		inner = 1
	}
	meas := make([]Measurement, len(cands))
	errs := make([]error, len(cands))
	runCand := func(i int) {
		c := cfg
		c.Cons = cands[i]
		c.Workers = inner
		meas[i], errs[i] = Run(c, newSource(), factory)
	}
	if outer <= 1 {
		for i := range cands {
			runCand(i)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < outer; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runCand(i)
				}
			}()
		}
		for i := range cands {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	var best Measurement
	found := false
	for i := range cands {
		if errs[i] != nil {
			return Measurement{}, errs[i]
		}
		if !found || meas[i].NetMbps > best.NetMbps {
			best = meas[i]
			found = true
		}
	}
	return best, nil
}
