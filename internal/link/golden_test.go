package link

import (
	"testing"

	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/linear"
	"repro/internal/rng"
)

// TestGoldenMeasurements pins the exact Measurement of the four paper
// detectors at the evaluation's densest practical operating point
// (4×4, 64-QAM, rate-1/2, 30 dB Rayleigh) under fixed seeds. Every
// draw in the pipeline is deterministic, so these values must not move
// unless a PR deliberately changes the modeled physics, the coded
// pipeline, or the RNG schedule — in which case updating them is the
// explicit, reviewable record of that change. A silent shift here
// means a silent shift in every reproduced figure.
func TestGoldenMeasurements(t *testing.T) {
	golden := []struct {
		name         string
		factory      DetectorFactory
		frameErrors  int
		streamErrors int
		fer          float64
		netMbps      float64
		pedCalcs     int64
	}{
		{
			"Geosphere",
			func(c *constellation.Constellation, _ float64) core.Detector { return core.NewGeosphere(c) },
			0, 0, 0, 134.5, 10255,
		},
		{
			"ETH-SD",
			func(c *constellation.Constellation, _ float64) core.Detector { return core.NewETHSD(c) },
			0, 0, 0, 134.5, 75645,
		},
		{
			"ZF",
			func(c *constellation.Constellation, _ float64) core.Detector { return linear.NewZF(c) },
			1, 1, 0.1, 131.13750000000002, 0,
		},
		{
			"MMSE-SIC",
			func(c *constellation.Constellation, nv float64) core.Detector { return linear.NewMMSESIC(c, nv) },
			0, 0, 0, 134.5, 0,
		},
	}
	for _, g := range golden {
		t.Run(g.name, func(t *testing.T) {
			src, err := NewRayleighSource(rng.New(4), 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			cfg := RunConfig{
				Cons: constellation.QAM64, Rate: fec.Rate12,
				NumSymbols: 4, Frames: 10, SNRdB: 30, Seed: 2014,
			}
			m, err := Run(cfg, src, g.factory)
			if err != nil {
				t.Fatal(err)
			}
			if m.FrameErrors != g.frameErrors || m.StreamErrors != g.streamErrors {
				t.Errorf("errors shifted: got %d frame / %d stream, want %d / %d",
					m.FrameErrors, m.StreamErrors, g.frameErrors, g.streamErrors)
			}
			if m.FER() != g.fer { //geolint:float-ok exact ratio of integer counts
				t.Errorf("FER shifted: got %v, want %v", m.FER(), g.fer)
			}
			if m.NetMbps != g.netMbps { //geolint:float-ok test asserts exact bitwise reproducibility
				t.Errorf("NetMbps shifted: got %v, want %v", m.NetMbps, g.netMbps)
			}
			if m.Stats.PEDCalcs != g.pedCalcs {
				t.Errorf("PEDCalcs shifted: got %d, want %d", m.Stats.PEDCalcs, g.pedCalcs)
			}
		})
	}
}
