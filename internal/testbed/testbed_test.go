package testbed

import (
	"compress/gzip"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cmplxmat"
	"repro/internal/metrics"
	"repro/internal/rng"
)

func TestWallCrossing(t *testing.T) {
	p := &Plan{Walls: []Wall{{A: Point{0, 5}, B: Point{10, 5}, LossDB: 5}}}
	if got := p.WallLossDB(Point{2, 0}, Point{2, 10}); got != 5 {
		t.Fatalf("crossing loss %g, want 5", got)
	}
	if got := p.WallLossDB(Point{2, 0}, Point{8, 4}); got != 0 {
		t.Fatalf("non-crossing loss %g, want 0", got)
	}
	// Parallel to the wall: no crossing.
	if got := p.WallLossDB(Point{0, 6}, Point{10, 6}); got != 0 {
		t.Fatalf("parallel loss %g, want 0", got)
	}
}

func TestAntennaPositions(t *testing.T) {
	ap := AP{Pos: Point{1, 2}, Antennas: 4, OrientRad: 0}
	p0 := ap.AntennaPos(0)
	p3 := ap.AntennaPos(3)
	if p0 != ap.Pos {
		t.Fatalf("antenna 0 not at AP position")
	}
	want := 3 * AntennaSpacing
	if d := p0.Dist(p3); math.Abs(d-want) > 1e-12 {
		t.Fatalf("array length %g, want %g", d, want)
	}
}

func TestOfficePlanSane(t *testing.T) {
	p := OfficePlan()
	if len(p.APs) < 2 || len(p.Clients) < 10 || len(p.Reflectors) < 20 {
		t.Fatalf("plan too sparse: %d APs, %d clients, %d reflectors", len(p.APs), len(p.Clients), len(p.Reflectors))
	}
	for _, c := range p.Clients {
		if c.Pos.X < 0 || c.Pos.X > p.Width || c.Pos.Y < 0 || c.Pos.Y > p.Height {
			t.Fatalf("client %s outside plan", c.Name)
		}
	}
}

func TestRealizeShapesAndNormalization(t *testing.T) {
	plan := OfficePlan()
	m := NewModel(plan)
	src := rng.New(1)
	clients := []Point{plan.Clients[0].Pos, plan.Clients[3].Pos}
	hs, err := m.Realize(src, plan.APs[0], clients)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != m.Subcarriers {
		t.Fatalf("%d subcarrier matrices", len(hs))
	}
	for c := 0; c < 2; c++ {
		var power float64
		for _, h := range hs {
			for a := 0; a < h.Rows; a++ {
				v := h.At(a, c)
				power += real(v)*real(v) + imag(v)*imag(v)
			}
		}
		mean := power / float64(len(hs)*hs[0].Rows)
		if math.Abs(mean-1) > 1e-9 {
			t.Fatalf("client %d mean entry power %g, want 1", c, mean)
		}
	}
}

func TestRealizeErrors(t *testing.T) {
	plan := OfficePlan()
	m := NewModel(plan)
	src := rng.New(1)
	if _, err := m.Realize(src, plan.APs[0], nil); err == nil {
		t.Fatal("empty client list accepted")
	}
	bad := plan.APs[0]
	bad.Antennas = 0
	if _, err := m.Realize(src, bad, []Point{{1, 1}}); err == nil {
		t.Fatal("zero-antenna AP accepted")
	}
}

// TestConditioningStatistics is the calibration acceptance test for
// the §5.1 reproduction: the synthetic testbed must reproduce the
// shape of Figures 9 and 10 — 2×2 channels poorly conditioned
// (κ² > 10 dB) roughly 60% of the time, 4×4 nearly always, and 2×4
// well conditioned.
func TestConditioningStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration statistics need many realizations")
	}
	plan := OfficePlan()
	frac := func(nc, na int) (above10 float64, lambdaAbove5 float64) {
		tr, err := Generate(plan, GenerateConfig{
			Seed: 99, NumClients: nc, NumAntennas: na, LinksPerAP: 6, Realizations: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var k2s, lams []float64
		if err := tr.Matrices(func(_ *LinkTrace, _, _ int, h *cmplxmat.Matrix) bool {
			k2s = append(k2s, metrics.Kappa2dB(h))
			lams = append(lams, metrics.LambdaDB(h))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return metrics.NewCDF(k2s).FractionAbove(10), metrics.NewCDF(lams).FractionAbove(5)
	}
	k22, l22 := frac(2, 2)
	k44, l44 := frac(4, 4)
	k24, l24 := frac(2, 4)
	t.Logf("κ²>10dB: 2×2=%.2f 4×4=%.2f 2×4=%.2f", k22, k44, k24)
	t.Logf("Λ>5dB:   2×2=%.2f 4×4=%.2f 2×4=%.2f", l22, l44, l24)
	if k22 < 0.35 || k22 > 0.85 {
		t.Errorf("2×2 poorly-conditioned fraction %.2f outside [0.35, 0.85] (paper ≈0.60)", k22)
	}
	if k44 < 0.80 {
		t.Errorf("4×4 poorly-conditioned fraction %.2f < 0.80 (paper: nearly all)", k44)
	}
	if k24 >= k22 {
		t.Errorf("2×4 should be better conditioned than 2×2: %.2f ≥ %.2f", k24, k22)
	}
	if l44 < l22 {
		t.Errorf("Λ degradation should worsen with more streams: 4×4 %.2f < 2×2 %.2f", l44, l22)
	}
	if l24 > 0.4 {
		t.Errorf("2×4 Λ>5dB fraction %.2f too high (paper: <3 dB for 90%% of channels)", l24)
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	plan := OfficePlan()
	tr, err := Generate(plan, GenerateConfig{Seed: 5, NumClients: 2, NumAntennas: 4, LinksPerAP: 1, Realizations: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.gob.gz")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Subcarriers != tr.Subcarriers || len(got.Links) != len(tr.Links) {
		t.Fatalf("trace shape changed on round trip")
	}
	h0, err := tr.Links[0].Matrix(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := got.Links[0].Matrix(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h0.Data {
		if h0.Data[i] != h1.Data[i] {
			t.Fatalf("trace data changed at %d", i)
		}
	}
}

func TestLoadTraceErrors(t *testing.T) {
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTraceValidate(t *testing.T) {
	bad := &Trace{Subcarriers: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero subcarriers accepted")
	}
	bad = &Trace{Subcarriers: 2, Links: []LinkTrace{{NA: 1, NC: 2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("na < nc accepted")
	}
}

func TestGenerateValidation(t *testing.T) {
	plan := OfficePlan()
	if _, err := Generate(plan, GenerateConfig{NumClients: 4, NumAntennas: 2, LinksPerAP: 1, Realizations: 1}); err == nil {
		t.Fatal("nc > na accepted")
	}
	if _, err := Generate(plan, GenerateConfig{NumClients: 2, NumAntennas: 2}); err == nil {
		t.Fatal("zero links accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	plan := OfficePlan()
	cfg := GenerateConfig{Seed: 11, NumClients: 2, NumAntennas: 2, LinksPerAP: 1, Realizations: 1}
	a, err := Generate(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Links[0].H[0][0][0] != b.Links[0].H[0][0][0] {
		t.Fatal("same seed produced different traces")
	}
}

func TestReducedAntennaView(t *testing.T) {
	plan := OfficePlan()
	m := NewModel(plan)
	src := rng.New(2)
	hs, err := m.Realize(src, plan.APs[0], []Point{plan.Clients[0].Pos, plan.Clients[1].Pos})
	if err != nil {
		t.Fatal(err)
	}
	red, err := ReducedAntennaView(hs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if red[0].Rows != 2 || red[0].Cols != 2 {
		t.Fatalf("reduced shape %d×%d", red[0].Rows, red[0].Cols)
	}
	if red[0].At(1, 1) != hs[0].At(1, 1) {
		t.Fatal("reduced view changed entries")
	}
	if _, err := ReducedAntennaView(hs, 9); err == nil {
		t.Fatal("oversize reduction accepted")
	}
	if _, err := ReducedAntennaView(nil, 1); err == nil {
		t.Fatal("empty list accepted")
	}
}

func TestLoadTraceCorrupt(t *testing.T) {
	dir := t.TempDir()
	// Not gzip at all.
	plain := filepath.Join(dir, "plain")
	if err := os.WriteFile(plain, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(plain); err == nil {
		t.Fatal("non-gzip file accepted")
	}
	// Valid gzip, garbage gob.
	garbled := filepath.Join(dir, "garbled.gz")
	f, err := os.Create(garbled)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write([]byte("gzip wrapped garbage, not gob")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(garbled); err == nil {
		t.Fatal("garbage gob accepted")
	}
	// Truncated valid trace.
	plan := OfficePlan()
	tr, err := Generate(plan, GenerateConfig{Seed: 8, NumClients: 2, NumAntennas: 2, LinksPerAP: 1, Realizations: 1})
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.gz")
	if err := tr.Save(good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.gz")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(trunc); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestLinkTraceMatrixBounds(t *testing.T) {
	plan := OfficePlan()
	tr, err := Generate(plan, GenerateConfig{Seed: 9, NumClients: 2, NumAntennas: 2, LinksPerAP: 1, Realizations: 1})
	if err != nil {
		t.Fatal(err)
	}
	l := &tr.Links[0]
	if _, err := l.Matrix(-1, 0); err == nil {
		t.Fatal("negative realization accepted")
	}
	if _, err := l.Matrix(0, 99999); err == nil {
		t.Fatal("out-of-range subcarrier accepted")
	}
}
