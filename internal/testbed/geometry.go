// Package testbed substitutes the paper's WARP v3 indoor testbed
// (Figure 8) with a synthetic geometric channel model and a
// trace-record/replay layer, so every experiment in §5 runs
// trace-driven exactly as in the paper.
//
// The model is ray-based: each client→AP link is a LoS ray plus one
// ray per nearby reflector (furniture, walls), with exact per-antenna
// propagation delays — spherical wavefronts, not plane-wave steering
// approximations — wall-crossing attenuation, and per-realization
// random path phases standing in for people moving through the space.
// What matters for the paper's conclusions is that the resulting
// ensemble reproduces the conditioning statistics of Figures 9 and 10:
// when reflectors cluster near one endpoint the angular separation at
// the other end collapses (Figure 2) and the channel matrix becomes
// poorly conditioned.
package testbed

import (
	"math"

	"repro/internal/units"
)

// Physical constants of the deployment (§5: 20 MHz channel in the
// 5 GHz ISM band, AP antennas 3.2λ apart).
const (
	// CarrierHz is the carrier frequency.
	CarrierHz units.Hertz = carrierHz
	// carrierHz is CarrierHz as an untyped constant: the phase
	// formulas in model.go fold it into untyped constant expressions,
	// and using the raw value there keeps that folding (and hence the
	// trace bytes) identical to the pre-typed code.
	carrierHz = 5.25e9
	// SpeedOfLight in m/s.
	SpeedOfLight = 2.99792458e8
	// Wavelength at the carrier.
	Wavelength = SpeedOfLight / carrierHz
	// AntennaSpacing between consecutive AP antennas (≈3.2λ ≈ 18 cm,
	// the paper quotes "about 20 cm").
	AntennaSpacing = 3.2 * Wavelength
	// SubcarrierSpacingHz of the 20 MHz OFDM channel.
	SubcarrierSpacingHz units.Hertz = 312.5e3
)

// Point is a 2-D position in metres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Wall is a line segment that attenuates rays crossing it.
type Wall struct {
	A, B   Point
	LossDB units.DB
}

// Reflector is a point scatterer (furniture edge, metal cabinet, wall
// corner) that contributes one reflected ray per link passing nearby.
type Reflector struct {
	Pos    Point
	LossDB units.DB // reflection loss relative to free space
}

// AP is a multi-antenna access point with a uniform linear array.
type AP struct {
	Name     string
	Pos      Point
	Antennas int
	// OrientRad is the array axis angle; antenna i sits at
	// Pos + i·AntennaSpacing·(cos, sin)(OrientRad).
	OrientRad float64
}

// AntennaPos returns the position of antenna i.
func (a AP) AntennaPos(i int) Point {
	return Point{
		X: a.Pos.X + float64(i)*AntennaSpacing*math.Cos(a.OrientRad),
		Y: a.Pos.Y + float64(i)*AntennaSpacing*math.Sin(a.OrientRad),
	}
}

// ClientPos is a named single-antenna client position.
type ClientPos struct {
	Name string
	Pos  Point
}

// Plan is a floor plan: geometry plus AP and client placements.
type Plan struct {
	Width, Height float64
	Walls         []Wall
	Reflectors    []Reflector
	APs           []AP
	Clients       []ClientPos
}

// segmentsIntersect reports whether segments p1p2 and p3p4 properly
// intersect (shared endpoints count as crossing, which is conservative
// for wall attenuation).
func segmentsIntersect(p1, p2, p3, p4 Point) bool {
	d := func(a, b, c Point) float64 {
		return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	}
	d1 := d(p3, p4, p1)
	d2 := d(p3, p4, p2)
	d3 := d(p1, p2, p3)
	d4 := d(p1, p2, p4)
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}

// WallLossDB sums the attenuation of all walls crossed by the straight
// ray from a to b.
func (p *Plan) WallLossDB(a, b Point) units.DB {
	var loss units.DB
	for _, w := range p.Walls {
		if segmentsIntersect(a, b, w.A, w.B) {
			loss += w.LossDB
		}
	}
	return loss
}

// OfficePlan builds the default floor plan used throughout the
// evaluation: a 30 m × 16 m office floor in the spirit of Figure 8,
// with a central corridor, six rooms, three APs, and twelve client
// positions. Reflectors cluster inside the rooms (desks, cabinets,
// wall corners), so clients deep inside a room see rich local
// scattering while the AP sees it through a narrow angular window —
// the poorly-conditioned geometry of Figure 2(b).
func OfficePlan() *Plan {
	p := &Plan{Width: 30, Height: 16}
	wall := func(x1, y1, x2, y2 float64) {
		p.Walls = append(p.Walls, Wall{A: Point{x1, y1}, B: Point{x2, y2}, LossDB: 5})
	}
	// Corridor between y=7 and y=9; rooms above and below, 10 m wide.
	wall(0, 7, 12, 7) // corridor south wall, door gap 12..14
	wall(14, 7, 30, 7)
	wall(0, 9, 6, 9) // corridor north wall, door gaps
	wall(8, 9, 20, 9)
	wall(22, 9, 30, 9)
	wall(10, 0, 10, 7) // south room dividers
	wall(20, 0, 20, 7)
	wall(10, 9, 10, 16) // north room dividers
	wall(20, 9, 20, 16)

	refl := func(x, y float64, loss units.DB) {
		p.Reflectors = append(p.Reflectors, Reflector{Pos: Point{x, y}, LossDB: loss})
	}
	// Room-local scatterers: desks, cabinets, window frames. Each room
	// gets a handful clustered near its interior walls.
	roomAnchors := []Point{
		{5, 3.5}, {15, 3.5}, {25, 3.5}, // south rooms
		{5, 12.5}, {15, 12.5}, {25, 12.5}, // north rooms
	}
	offsets := []Point{{-3.2, -2.1}, {3.1, -1.7}, {-2.7, 2.3}, {2.9, 2.0}, {0.4, -3.0}, {-1.1, 2.8}}
	for ri, anchor := range roomAnchors {
		for oi, off := range offsets {
			refl(anchor.X+off.X*0.9, anchor.Y+off.Y*0.9, 6+units.DB((ri+oi)%3)*2)
		}
	}
	// Corridor scatterers: metal door frames and pillars.
	refl(7, 8, 5)
	refl(13, 8.2, 6)
	refl(19, 7.8, 5)
	refl(26, 8.1, 7)

	// APs: one in the corridor, two in rooms (squares in Figure 8).
	p.APs = []AP{
		{Name: "AP-corridor", Pos: Point{14.0, 8.0}, Antennas: 4, OrientRad: 0},
		{Name: "AP-north", Pos: Point{6.0, 13.0}, Antennas: 4, OrientRad: math.Pi / 3},
		{Name: "AP-south", Pos: Point{24.0, 3.0}, Antennas: 4, OrientRad: -math.Pi / 4},
	}
	// Client positions spread over the rooms and corridor (circles and
	// triangles in Figure 8).
	p.Clients = []ClientPos{
		{"C1", Point{3.0, 2.5}}, {"C2", Point{7.5, 4.8}},
		{"C3", Point{13.0, 2.0}}, {"C4", Point{17.0, 5.5}},
		{"C5", Point{23.0, 2.0}}, {"C6", Point{28.0, 5.0}},
		{"C7", Point{3.5, 14.0}}, {"C8", Point{8.0, 11.0}},
		{"C9", Point{13.5, 13.5}}, {"C10", Point{18.0, 10.5}},
		{"C11", Point{24.5, 14.5}}, {"C12", Point{28.5, 11.0}},
	}
	return p
}
