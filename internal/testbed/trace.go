package testbed

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/cmplxmat"
	"repro/internal/rng"
)

// LinkTrace is one recorded link: a client set against an AP, with one
// na×nc channel matrix per data subcarrier per realization.
type LinkTrace struct {
	AP      string
	Clients []string
	NA, NC  int
	// H[r][s] is the flattened row-major na×nc matrix of realization
	// r at subcarrier s.
	H [][][]complex128
}

// Realizations returns the number of recorded realizations.
func (l *LinkTrace) Realizations() int { return len(l.H) }

// Matrix reconstructs the channel matrix of realization r, subcarrier s.
func (l *LinkTrace) Matrix(r, s int) (*cmplxmat.Matrix, error) {
	if r < 0 || r >= len(l.H) {
		return nil, fmt.Errorf("testbed: realization %d of %d", r, len(l.H))
	}
	if s < 0 || s >= len(l.H[r]) {
		return nil, fmt.Errorf("testbed: subcarrier %d of %d", s, len(l.H[r]))
	}
	data := l.H[r][s]
	if len(data) != l.NA*l.NC {
		return nil, fmt.Errorf("testbed: corrupt trace: %d entries for %d×%d", len(data), l.NA, l.NC)
	}
	m := cmplxmat.New(l.NA, l.NC)
	copy(m.Data, data)
	return m, nil
}

// Trace is a recorded channel-measurement campaign, the unit all
// trace-driven experiments consume.
type Trace struct {
	Description string
	Seed        int64
	Subcarriers int
	Links       []LinkTrace
}

// Save writes the trace gob-encoded and gzip-compressed.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("testbed: save trace: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(t); err != nil {
		return fmt.Errorf("testbed: encode trace: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("testbed: flush trace: %w", err)
	}
	return f.Close()
}

// LoadTrace reads a trace written by Save.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("testbed: load trace: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("testbed: trace %s is not gzip: %w", path, err)
	}
	defer zr.Close()
	var t Trace
	if err := gob.NewDecoder(zr).Decode(&t); err != nil && err != io.EOF {
		return nil, fmt.Errorf("testbed: decode trace %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Validate checks internal consistency of a loaded trace.
func (t *Trace) Validate() error {
	if t.Subcarriers <= 0 {
		return fmt.Errorf("testbed: trace has %d subcarriers", t.Subcarriers)
	}
	for i := range t.Links {
		l := &t.Links[i]
		if l.NA <= 0 || l.NC <= 0 || l.NA < l.NC {
			return fmt.Errorf("testbed: link %d has invalid shape %d×%d", i, l.NA, l.NC)
		}
		for r := range l.H {
			if len(l.H[r]) != t.Subcarriers {
				return fmt.Errorf("testbed: link %d realization %d has %d subcarriers, want %d", i, r, len(l.H[r]), t.Subcarriers)
			}
			for s := range l.H[r] {
				if len(l.H[r][s]) != l.NA*l.NC {
					return fmt.Errorf("testbed: link %d realization %d subcarrier %d has %d entries", i, r, s, len(l.H[r][s]))
				}
			}
		}
	}
	return nil
}

// GenerateConfig controls trace generation.
type GenerateConfig struct {
	Seed         int64
	NumClients   int // clients per link (nc)
	NumAntennas  int // AP antennas used (na ≤ 4)
	LinksPerAP   int // distinct client subsets per AP
	Realizations int // channel draws per subset
}

// Generate records a measurement campaign over the plan: for each AP,
// LinksPerAP random distinct client subsets, each with Realizations
// independent channel draws across all data subcarriers.
func Generate(plan *Plan, cfg GenerateConfig) (*Trace, error) {
	if cfg.NumClients <= 0 || cfg.NumAntennas < cfg.NumClients {
		return nil, fmt.Errorf("testbed: invalid configuration %d clients × %d antennas", cfg.NumClients, cfg.NumAntennas)
	}
	if cfg.LinksPerAP <= 0 || cfg.Realizations <= 0 {
		return nil, fmt.Errorf("testbed: need positive links and realizations")
	}
	model := NewModel(plan)
	src := rng.New(cfg.Seed)
	tr := &Trace{
		Description: fmt.Sprintf("%d clients × %d AP antennas over office plan", cfg.NumClients, cfg.NumAntennas),
		Seed:        cfg.Seed,
		Subcarriers: model.Subcarriers,
	}
	for _, ap := range plan.APs {
		apUse := ap
		apUse.Antennas = cfg.NumAntennas
		for li := 0; li < cfg.LinksPerAP; li++ {
			subset := pickSubset(src, len(plan.Clients), cfg.NumClients)
			link := LinkTrace{
				AP: ap.Name,
				NA: cfg.NumAntennas,
				NC: cfg.NumClients,
			}
			pos := make([]Point, cfg.NumClients)
			for i, ci := range subset {
				link.Clients = append(link.Clients, plan.Clients[ci].Name)
				pos[i] = plan.Clients[ci].Pos
			}
			for r := 0; r < cfg.Realizations; r++ {
				hs, err := model.Realize(src, apUse, pos)
				if err != nil {
					return nil, err
				}
				flat := make([][]complex128, len(hs))
				for s, h := range hs {
					flat[s] = append([]complex128(nil), h.Data...)
				}
				link.H = append(link.H, flat)
			}
			tr.Links = append(tr.Links, link)
		}
	}
	return tr, nil
}

// pickSubset draws k distinct indices from [0, n) without replacement.
func pickSubset(src *rng.Source, n, k int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + src.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}

// Matrices iterates every (realization, subcarrier) channel matrix of
// every link in the trace, invoking fn until it returns false or an
// error occurs.
func (t *Trace) Matrices(fn func(link *LinkTrace, realization, subcarrier int, h *cmplxmat.Matrix) bool) error {
	for i := range t.Links {
		l := &t.Links[i]
		for r := range l.H {
			for s := range l.H[r] {
				h, err := l.Matrix(r, s)
				if err != nil {
					return err
				}
				if !fn(l, r, s, h) {
					return nil
				}
			}
		}
	}
	return nil
}
