package testbed

import (
	"fmt"
	"math"

	"repro/internal/cmplxmat"
	"repro/internal/rng"
	"repro/internal/units"
)

// ray is one propagation path from a client to the AP: either LoS or a
// single-bounce reflection. The receiving antenna's exact position
// enters later, so a ray stores the last hop's origin.
type ray struct {
	origin   Point    // last point before the AP (client or reflector)
	preDist  float64  // distance already travelled before origin
	ampDB    units.DB // total loss excluding free-space spreading
	phaseOff float64  // per-realization random phase (people moving)
}

// Model synthesizes per-subcarrier MIMO channel matrices for client
// sets against an AP on a Plan.
type Model struct {
	Plan *Plan
	// MaxReflectorDist bounds which reflectors contribute to a link:
	// a reflector participates if it is within this distance of the
	// client (local scattering dominates indoors).
	MaxReflectorDist float64
	// LoSLossDB de-emphasizes or emphasizes the direct path; 0 keeps
	// pure free-space LoS.
	LoSLossDB units.DB
	// Subcarriers is the number of data subcarriers (48 for 20 MHz).
	Subcarriers int
}

// NewModel returns a Model with the calibrated defaults used by the
// evaluation.
func NewModel(plan *Plan) *Model {
	return &Model{
		Plan:             plan,
		MaxReflectorDist: 8.0,
		LoSLossDB:        -10,
		Subcarriers:      48,
	}
}

// subcarrierFreq returns the baseband frequency offset of data
// subcarrier index i (0..Subcarriers−1) using the 802.11 layout
// (signed indices −26..26 without DC and pilots).
func subcarrierFreq(i, n int) units.Hertz {
	// Spread the n data subcarriers over ±26 spacing slots like the
	// ofdm package does; the exact pilot gaps are immaterial to the
	// channel statistics, so use an even spread.
	k := float64(i) - float64(n-1)/2
	return units.Hertz(k) * SubcarrierSpacingHz * 52.0 / units.Hertz(n)
}

// clientRays builds the ray set for one client towards one AP. Phases
// are drawn from src per realization.
func (m *Model) clientRays(src *rng.Source, ap AP, cl Point) []ray {
	var rays []ray
	// Line-of-sight ray.
	losLoss := m.Plan.WallLossDB(cl, ap.Pos) + m.LoSLossDB
	rays = append(rays, ray{
		origin:   cl,
		preDist:  0,
		ampDB:    -losLoss,
		phaseOff: src.Phase(),
	})
	// One single-bounce ray per reflector near the client.
	for _, rf := range m.Plan.Reflectors {
		d1 := cl.Dist(rf.Pos)
		if d1 > m.MaxReflectorDist || d1 < 0.3 {
			continue
		}
		loss := rf.LossDB +
			m.Plan.WallLossDB(cl, rf.Pos) +
			m.Plan.WallLossDB(rf.Pos, ap.Pos)
		rays = append(rays, ray{
			origin:   rf.Pos,
			preDist:  d1,
			ampDB:    -loss,
			phaseOff: src.Phase(),
		})
	}
	return rays
}

// Realize draws one channel realization for the given AP and client
// positions: a slice of Subcarriers matrices, each na×nc, normalized
// so that the average entry power over antennas and subcarriers is one
// per client (transmit power control, matching the package channel's
// SNR convention while preserving conditioning structure).
func (m *Model) Realize(src *rng.Source, ap AP, clients []Point) ([]*cmplxmat.Matrix, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("testbed: no clients given")
	}
	if ap.Antennas <= 0 {
		return nil, fmt.Errorf("testbed: AP %q has no antennas", ap.Name)
	}
	na, nc, nsc := ap.Antennas, len(clients), m.Subcarriers
	hs := make([]*cmplxmat.Matrix, nsc)
	for s := range hs {
		hs[s] = cmplxmat.New(na, nc)
	}
	for c, cl := range clients {
		rays := m.clientRays(src, ap, cl)
		var power float64
		col := make([][]complex128, nsc) // [subcarrier][antenna]
		for s := range col {
			col[s] = make([]complex128, na)
		}
		for _, r := range rays {
			amp := r.ampDB.AmpLin()
			for a := 0; a < na; a++ {
				dist := r.preDist + r.origin.Dist(ap.AntennaPos(a))
				// Free-space spreading over the full path length,
				// referenced to 1 m.
				g := amp / math.Max(dist, 1)
				tau := dist / SpeedOfLight
				// carrierHz (the untyped twin of CarrierHz) keeps the
				// constant folding — and the trace bytes — identical to
				// the pre-typed formula.
				carrier := -2*math.Pi*carrierHz*tau + r.phaseOff
				for s := 0; s < nsc; s++ {
					f := subcarrierFreq(s, nsc)
					ph := carrier - 2*math.Pi*float64(f)*tau
					col[s][a] += complex(g*math.Cos(ph), g*math.Sin(ph))
				}
			}
		}
		for s := range col {
			for a := range col[s] {
				v := col[s][a]
				power += real(v)*real(v) + imag(v)*imag(v)
			}
		}
		if power == 0 {
			return nil, fmt.Errorf("testbed: client %d has a null channel (fully blocked)", c)
		}
		// Per-client power control to unit average entry power.
		scale := complex(math.Sqrt(float64(na*nsc)/power), 0)
		for s := range col {
			for a := range col[s] {
				hs[s].Set(a, c, col[s][a]*scale)
			}
		}
	}
	return hs, nil
}

// ReducedAntennaView returns the view of per-subcarrier channels using
// only the first na rows (e.g. a 2-antenna AP mode on 4-antenna
// hardware, used for the 2×2 experiments). The matrices are copies.
func ReducedAntennaView(hs []*cmplxmat.Matrix, na int) ([]*cmplxmat.Matrix, error) {
	if len(hs) == 0 {
		return nil, fmt.Errorf("testbed: empty channel list")
	}
	if na <= 0 || na > hs[0].Rows {
		return nil, fmt.Errorf("testbed: cannot reduce %d antennas to %d", hs[0].Rows, na)
	}
	out := make([]*cmplxmat.Matrix, len(hs))
	for i, h := range hs {
		r := cmplxmat.New(na, h.Cols)
		for a := 0; a < na; a++ {
			copy(r.Row(a), h.Row(a))
		}
		out[i] = r
	}
	return out, nil
}
