package testbed

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

// traceBytes serializes a small valid trace through Save and returns
// the on-disk bytes, the honest seed for mutation-based fuzzing.
func traceBytes(tb testing.TB) []byte {
	tb.Helper()
	tr, err := Generate(OfficePlan(), GenerateConfig{
		Seed: 11, NumClients: 2, NumAntennas: 2, LinksPerAP: 1, Realizations: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(tb.TempDir(), "seed.trace.gz")
	if err := tr.Save(path); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzTraceRoundTrip feeds arbitrary bytes through LoadTrace: the
// decoder must reject garbage with an error — never panic or return a
// trace that fails Validate — and any trace it does accept must
// survive a Save→Load round trip unchanged. Gob decoding of hostile
// input exercises every length and shape check in Trace.Validate.
func FuzzTraceRoundTrip(f *testing.F) {
	seed := traceBytes(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("not a gzip stream"))
	f.Add([]byte{0x1f, 0x8b}) // bare gzip magic, truncated header
	// A gzip stream wrapping non-gob bytes.
	var junk bytes.Buffer
	zw := gzip.NewWriter(&junk)
	zw.Write([]byte{0xff, 0x00, 0xfe, 0x01})
	zw.Close()
	f.Add(junk.Bytes())
	// Truncations and single-byte corruptions of the valid trace.
	f.Add(seed[:len(seed)/2])
	corrupted := append([]byte(nil), seed...)
	corrupted[len(corrupted)/3] ^= 0x41
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.trace.gz")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tr, err := LoadTrace(path) // must not panic, whatever the bytes
		if err != nil {
			return
		}
		// Accepted traces must be Validate-clean (LoadTrace promises it)
		// and must round-trip through Save→Load byte-identically.
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("LoadTrace accepted a trace failing Validate: %v", verr)
		}
		resaved := filepath.Join(dir, "resave.trace.gz")
		if err := tr.Save(resaved); err != nil {
			t.Fatalf("accepted trace failed to save: %v", err)
		}
		back, err := LoadTrace(resaved)
		if err != nil {
			t.Fatalf("saved trace failed to load: %v", err)
		}
		if back.Description != tr.Description || back.Seed != tr.Seed ||
			back.Subcarriers != tr.Subcarriers || len(back.Links) != len(tr.Links) {
			t.Fatalf("round trip changed trace header: %+v vs %+v", back, tr)
		}
		for i := range tr.Links {
			a, b := &tr.Links[i], &back.Links[i]
			if a.NA != b.NA || a.NC != b.NC || len(a.H) != len(b.H) {
				t.Fatalf("round trip changed link %d shape", i)
			}
			for r := range a.H {
				for s := range a.H[r] {
					for k := range a.H[r][s] {
						if a.H[r][s][k] != b.H[r][s][k] {
							t.Fatalf("round trip changed link %d realization %d", i, r)
						}
					}
				}
			}
		}
	})
}
