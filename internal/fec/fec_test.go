package fec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(2))
	}
	return b
}

func TestConvEncodeLength(t *testing.T) {
	bits := make([]byte, 100)
	coded := ConvEncode(bits)
	if len(coded) != 2*(100+ConstraintLength-1) {
		t.Fatalf("coded length %d", len(coded))
	}
}

func TestConvEncodeAllZero(t *testing.T) {
	coded := ConvEncode(make([]byte, 20))
	for i, b := range coded {
		if b != 0 {
			t.Fatalf("all-zero input produced 1 at %d", i)
		}
	}
}

func TestViterbiRoundTripClean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		bits := randBits(r, n)
		dec, err := ViterbiDecode(ConvEncode(bits))
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != n {
			t.Fatalf("decoded %d bits, want %d", len(dec), n)
		}
		for i := range bits {
			if dec[i] != bits[i] {
				t.Fatalf("trial %d: bit %d wrong", trial, i)
			}
		}
	}
}

// TestViterbiCorrectsErrors verifies the code's error-correcting power:
// a K=7 rate-1/2 code has free distance 10, so isolated flips of up to
// 4 coded bits (spread apart) must be corrected.
func TestViterbiCorrectsErrors(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		bits := randBits(r, 200)
		coded := ConvEncode(bits)
		// Flip 4 well-separated bits.
		for k := 0; k < 4; k++ {
			pos := k*90 + r.Intn(30)
			coded[pos] ^= 1
		}
		dec, err := ViterbiDecode(coded)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if dec[i] != bits[i] {
				t.Fatalf("trial %d: bit %d not corrected", trial, i)
			}
		}
	}
}

func TestViterbiSoftBeatsErasures(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	bits := randBits(r, 120)
	coded := ConvEncode(bits)
	llrs := make([]float64, len(coded))
	for i, b := range coded {
		if b == 1 {
			llrs[i] = 1
		} else {
			llrs[i] = -1
		}
	}
	// Erase 20% of the coded bits; soft decoding must still recover.
	for i := 0; i < len(llrs); i += 5 {
		llrs[i] = 0
	}
	dec, err := ViterbiDecodeSoft(llrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if dec[i] != bits[i] {
			t.Fatalf("bit %d not recovered from erasures", i)
		}
	}
}

func TestViterbiInputValidation(t *testing.T) {
	if _, err := ViterbiDecode(make([]byte, 3)); err == nil {
		t.Fatal("odd length accepted")
	}
	if _, err := ViterbiDecode(make([]byte, 4)); err == nil {
		t.Fatal("too-short codeword accepted")
	}
	if _, err := ViterbiDecodeSoft(make([]float64, 5)); err == nil {
		t.Fatal("odd soft length accepted")
	}
}

func TestPuncturedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, rate := range []Rate{Rate12, Rate23, Rate34} {
		for trial := 0; trial < 20; trial++ {
			bits := randBits(r, 240)
			mother := ConvEncode(bits)
			punct := Puncture(mother, rate)
			llrs := make([]float64, len(punct))
			for i, b := range punct {
				if b == 1 {
					llrs[i] = 1
				} else {
					llrs[i] = -1
				}
			}
			dep := Depuncture(llrs, rate, len(mother))
			if len(dep) != len(mother) {
				t.Fatalf("rate %s: depunctured to %d, want %d", rate, len(dep), len(mother))
			}
			dec, err := ViterbiDecodeSoft(dep)
			if err != nil {
				t.Fatalf("rate %s: %v", rate, err)
			}
			for i := range bits {
				if dec[i] != bits[i] {
					t.Fatalf("rate %s trial %d: bit %d wrong", rate, trial, i)
				}
			}
		}
	}
}

func TestRateFractions(t *testing.T) {
	// The puncturing pattern must keep exactly 1/Fraction()·(1/2)⁻¹...
	// i.e. kept/total mother bits = (1/2)/fraction.
	for _, rate := range []Rate{Rate23, Rate34} {
		pat := rate.puncturePattern()
		kept := 0
		for _, k := range pat {
			if k {
				kept++
			}
		}
		got := float64(kept) / float64(len(pat))
		want := 0.5 / rate.Fraction()
		if got != want {
			t.Fatalf("rate %s: pattern keeps %g of bits, want %g", rate, got, want)
		}
	}
	if Rate12.String() != "1/2" || Rate23.String() != "2/3" || Rate34.String() != "3/4" {
		t.Fatal("rate names wrong")
	}
}

func TestInterleaverRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, geom := range []struct{ ncbps, nbpsc int }{
		{96, 2}, {192, 4}, {288, 6}, {384, 8},
	} {
		it, err := NewInterleaver(geom.ncbps, geom.nbpsc)
		if err != nil {
			t.Fatal(err)
		}
		src := randBits(r, geom.ncbps)
		inter, err := it.Interleave(nil, src)
		if err != nil {
			t.Fatal(err)
		}
		back, err := it.Deinterleave(nil, inter)
		if err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("ncbps=%d: bit %d wrong after round trip", geom.ncbps, i)
			}
		}
		// The permutation must be a bijection that moves adjacent bits
		// apart (the whole point of interleaving).
		if it.perm[0] == it.perm[1] {
			t.Fatal("permutation not injective")
		}
	}
}

func TestInterleaverSoftMatchesHard(t *testing.T) {
	it, err := NewInterleaver(192, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	src := randBits(r, 192)
	inter, _ := it.Interleave(nil, src)
	soft := make([]float64, len(inter))
	for i, b := range inter {
		soft[i] = float64(b)
	}
	backHard, _ := it.Deinterleave(nil, inter)
	backSoft, err := it.DeinterleaveSoft(nil, soft)
	if err != nil {
		t.Fatal(err)
	}
	for i := range backHard {
		if float64(backHard[i]) != backSoft[i] {
			t.Fatalf("soft and hard deinterleave disagree at %d", i)
		}
	}
}

func TestInterleaverRejectsBadGeometry(t *testing.T) {
	if _, err := NewInterleaver(100, 3); err == nil {
		t.Fatal("accepted ncbps not multiple of 16")
	}
	if _, err := NewInterleaver(0, 2); err == nil {
		t.Fatal("accepted zero size")
	}
	it, _ := NewInterleaver(96, 2)
	if _, err := it.Interleave(nil, make([]byte, 95)); err == nil {
		t.Fatal("accepted short block")
	}
	if _, err := it.Deinterleave(nil, make([]byte, 97)); err == nil {
		t.Fatal("accepted long block")
	}
}

func TestScrambleInvolution(t *testing.T) {
	f := func(seed byte, n uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)*251 + int64(n)))
		bits := randBits(r, int(n)+1)
		orig := make([]byte, len(bits))
		copy(orig, bits)
		Scramble(bits, seed)
		Scramble(bits, seed)
		for i := range bits {
			if bits[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScrambleWhitens(t *testing.T) {
	// An all-zero payload must come out roughly balanced.
	bits := make([]byte, 1000)
	Scramble(bits, 0x5d)
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("scrambler output poorly balanced: %d ones in 1000", ones)
	}
}

func TestCRCRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		bits := randBits(r, 1+r.Intn(500))
		framed := AppendCRC(bits)
		payload, ok := CheckCRC(framed)
		if !ok {
			t.Fatalf("trial %d: clean CRC failed", trial)
		}
		if len(payload) != len(bits) {
			t.Fatalf("trial %d: payload length changed", trial)
		}
		// Any single bit flip must be detected.
		pos := r.Intn(len(framed))
		framed[pos] ^= 1
		if _, ok := CheckCRC(framed); ok {
			t.Fatalf("trial %d: flipped bit %d not detected", trial, pos)
		}
	}
}

func TestCheckCRCShort(t *testing.T) {
	if _, ok := CheckCRC(make([]byte, 10)); ok {
		t.Fatal("short frame passed CRC")
	}
}

func TestPunctureSoftMatchesPuncture(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	bits := randBits(r, 120)
	mother := ConvEncode(bits)
	vals := make([]float64, len(mother))
	for i, b := range mother {
		vals[i] = float64(b)*2 - 1
	}
	for _, rate := range []Rate{Rate12, Rate23, Rate34} {
		hard := Puncture(mother, rate)
		soft := PunctureSoft(vals, rate)
		if len(hard) != len(soft) {
			t.Fatalf("rate %s: lengths differ: %d vs %d", rate, len(hard), len(soft))
		}
		for i := range hard {
			want := float64(hard[i])*2 - 1
			if soft[i] != want {
				t.Fatalf("rate %s: position %d: %g vs %g", rate, i, soft[i], want)
			}
		}
	}
}

func TestInterleaveSoftInvertsDeinterleaveSoft(t *testing.T) {
	it, err := NewInterleaver(192, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, 192)
	for i := range src {
		src[i] = float64(i) * 0.5
	}
	inter, err := it.InterleaveSoft(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := it.DeinterleaveSoft(nil, inter)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("value %d changed", i)
		}
	}
	if _, err := it.InterleaveSoft(nil, make([]float64, 3)); err == nil {
		t.Fatal("short soft block accepted")
	}
	if it.BlockSize() != 192 {
		t.Fatalf("block size %d", it.BlockSize())
	}
}

func TestRateStringUnknown(t *testing.T) {
	if s := Rate(9).String(); s != "Rate(9)" {
		t.Fatalf("unknown rate string %q", s)
	}
	if f := Rate12.Fraction(); f != 0.5 {
		t.Fatalf("rate 1/2 fraction %g", f)
	}
}
