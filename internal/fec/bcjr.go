package fec

import (
	"fmt"
	"math"
)

// MaxLogBCJR runs the max-log BCJR (soft-input, soft-output) algorithm
// over the terminated rate-1/2 mother code. Input: one log-likelihood
// ratio per coded bit (positive = 1 more likely; 0 = erasure). Output:
// a-posteriori LLRs for every trellis-step information bit (including
// the K−1 tail steps, which callers usually slice off) and *extrinsic*
// LLRs for every coded bit — the a-posteriori minus the channel input,
// the quantity an iterative receiver feeds back to the detector.
//
// This is the decoder side of the §7 future-work receiver: iterative
// detection and decoding needs soft information flowing both ways, and
// the Viterbi algorithm only produces hard decisions.
func MaxLogBCJR(codedLLRs []float64) (infoLLRs, codedExt []float64, err error) {
	if len(codedLLRs)%2 != 0 {
		return nil, nil, fmt.Errorf("fec: LLR length %d is odd", len(codedLLRs))
	}
	steps := len(codedLLRs) / 2
	if steps < ConstraintLength-1 {
		return nil, nil, fmt.Errorf("fec: codeword of %d steps shorter than the tail", steps)
	}
	const negInf = -math.MaxFloat64

	// Branch metric of a transition emitting bits (o1, o0) at step t:
	// +l/2 per matching 1, −l/2 per matching 0 (correlation form).
	gamma := func(t int, out byte) float64 {
		g := 0.0
		if out>>1 == 1 {
			g += codedLLRs[2*t] / 2
		} else {
			g -= codedLLRs[2*t] / 2
		}
		if out&1 == 1 {
			g += codedLLRs[2*t+1] / 2
		} else {
			g -= codedLLRs[2*t+1] / 2
		}
		return g
	}

	// Forward recursion.
	alpha := make([][]float64, steps+1)
	for t := range alpha {
		alpha[t] = make([]float64, numStates)
		for s := range alpha[t] {
			alpha[t][s] = negInf
		}
	}
	alpha[0][0] = 0
	for t := 0; t < steps; t++ {
		for s := 0; s < numStates; s++ {
			a := alpha[t][s]
			if a == negInf {
				continue
			}
			for b := 0; b < 2; b++ {
				ns := s>>1 | b<<(ConstraintLength-2)
				m := a + gamma(t, outputs[s][b])
				if m > alpha[t+1][ns] {
					alpha[t+1][ns] = m
				}
			}
		}
	}
	// Backward recursion from the zero (terminated) state.
	beta := make([][]float64, steps+1)
	for t := range beta {
		beta[t] = make([]float64, numStates)
		for s := range beta[t] {
			beta[t][s] = negInf
		}
	}
	beta[steps][0] = 0
	for t := steps - 1; t >= 0; t-- {
		for s := 0; s < numStates; s++ {
			best := negInf
			for b := 0; b < 2; b++ {
				ns := s>>1 | b<<(ConstraintLength-2)
				if beta[t+1][ns] == negInf {
					continue
				}
				if m := gamma(t, outputs[s][b]) + beta[t+1][ns]; m > best {
					best = m
				}
			}
			beta[t][s] = best
		}
	}
	if alpha[steps][0] == negInf || beta[0][0] == negInf {
		return nil, nil, fmt.Errorf("fec: trellis does not terminate")
	}

	infoLLRs = make([]float64, steps)
	codedExt = make([]float64, 2*steps)
	const clamp = 1e6
	for t := 0; t < steps; t++ {
		// Per-transition metrics, split by the hypotheses we need.
		info1, info0 := negInf, negInf
		c0is1, c0is0 := negInf, negInf // first coded bit of the step
		c1is1, c1is0 := negInf, negInf // second coded bit
		for s := 0; s < numStates; s++ {
			a := alpha[t][s]
			if a == negInf {
				continue
			}
			for b := 0; b < 2; b++ {
				ns := s>>1 | b<<(ConstraintLength-2)
				bb := beta[t+1][ns]
				if bb == negInf {
					continue
				}
				out := outputs[s][b]
				m := a + gamma(t, out) + bb
				if b == 1 {
					if m > info1 {
						info1 = m
					}
				} else if m > info0 {
					info0 = m
				}
				if out>>1 == 1 {
					if m > c0is1 {
						c0is1 = m
					}
				} else if m > c0is0 {
					c0is0 = m
				}
				if out&1 == 1 {
					if m > c1is1 {
						c1is1 = m
					}
				} else if m > c1is0 {
					c1is0 = m
				}
			}
		}
		infoLLRs[t] = clampVal(diffOrInf(info1, info0), clamp)
		// Extrinsic: a-posteriori minus the channel contribution.
		codedExt[2*t] = clampVal(diffOrInf(c0is1, c0is0)-codedLLRs[2*t], clamp)
		codedExt[2*t+1] = clampVal(diffOrInf(c1is1, c1is0)-codedLLRs[2*t+1], clamp)
	}
	return infoLLRs, codedExt, nil
}

// diffOrInf returns m1−m0 with saturation when a hypothesis is
// unreachable (no surviving transition).
func diffOrInf(m1, m0 float64) float64 {
	const negInf = -math.MaxFloat64
	switch {
	case m1 == negInf && m0 == negInf:
		return 0
	case m1 == negInf:
		return negInf
	case m0 == negInf:
		return math.MaxFloat64
	}
	return m1 - m0
}

func clampVal(x, c float64) float64 {
	if x > c {
		return c
	}
	if x < -c {
		return -c
	}
	return x
}
