// Package fec implements the channel-coding chain the implementation
// section (§4) uses: the industry-standard rate-1/2, constraint-length
// 7 convolutional code (generators 133/171 octal, as in 802.11),
// hard- and soft-decision Viterbi decoding, puncturing to rates 2/3
// and 3/4, the 802.11-style block interleaver, the frame scrambler,
// and a CRC-32 frame check sequence.
package fec

import (
	"fmt"
	"math"
)

// Convolutional code parameters: K=7, generators 0o133 and 0o171.
const (
	// ConstraintLength is the code's constraint length K.
	ConstraintLength = 7
	numStates        = 1 << (ConstraintLength - 1)
	g0               = 0o133
	g1               = 0o171
)

// parity returns the parity of x.
func parity(x int) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// outputs[state][input] packs the two coded bits (g0 in bit 1, g1 in
// bit 0) produced when `input` enters the shift register at `state`.
var outputs [numStates][2]byte

func init() {
	for s := 0; s < numStates; s++ {
		for b := 0; b < 2; b++ {
			reg := b<<(ConstraintLength-1) | s
			outputs[s][b] = parity(reg&g0)<<1 | parity(reg&g1)
		}
	}
}

// ConvEncode encodes data bits (one bit per byte) with the rate-1/2
// code, appending K−1 zero tail bits to terminate the trellis. The
// output has 2·(len(bits)+6) coded bits.
func ConvEncode(bits []byte) []byte {
	return ConvEncodeAppend(make([]byte, 0, 2*(len(bits)+ConstraintLength-1)), bits)
}

// ConvEncodeAppend is ConvEncode appending onto caller-owned dst, so
// encode loops reuse one buffer across codewords. It returns dst.
func ConvEncodeAppend(dst []byte, bits []byte) []byte {
	state := 0
	encode := func(b byte) {
		o := outputs[state][b&1]
		dst = append(dst, o>>1, o&1)
		state = state>>1 | int(b&1)<<(ConstraintLength-2)
	}
	for _, b := range bits {
		encode(b)
	}
	for i := 0; i < ConstraintLength-1; i++ {
		encode(0)
	}
	return dst
}

// ViterbiDecode performs hard-decision maximum-likelihood decoding of
// a terminated rate-1/2 codeword, returning the information bits. The
// input length must be even and cover at least the tail.
func ViterbiDecode(coded []byte) ([]byte, error) {
	vals := make([]int8, len(coded))
	for i, b := range coded {
		// Map hard bits to ±1 correlation values.
		if b&1 == 1 {
			vals[i] = 1
		} else {
			vals[i] = -1
		}
	}
	var w ViterbiWorkspace
	bits, _, err := w.DecodeHardMetric(vals)
	return bits, err
}

// ViterbiDecodeSoft decodes from per-bit log-likelihood ratios
// (positive = bit 1 more likely). Length rules match ViterbiDecode.
func ViterbiDecodeSoft(llrs []float64) ([]byte, error) {
	bits, _, err := ViterbiDecodeSoftMetric(llrs)
	return bits, err
}

// ViterbiDecodeSoftMetric is ViterbiDecodeSoft with the winning path's
// accumulated trellis metric alongside the decoded bits. The metric is
// the correlation of the survivor path's expected code bits with the
// input LLRs: larger means the received soft values agree more
// strongly with a valid codeword, so it doubles as a per-stream
// reception-quality observable (normalize by len(llrs) to compare
// across frame sizes).
func ViterbiDecodeSoftMetric(llrs []float64) ([]byte, float64, error) {
	var w ViterbiWorkspace
	return w.DecodeSoftMetric(llrs)
}

// ViterbiWorkspace owns the scratch the add-compare-select recursion
// needs (path metrics, survivor decisions, decoded bits), so a decoder
// that processes many same-length codewords — one per stream per frame
// in the link pipeline — allocates nothing after the first call. The
// zero value is ready to use. A workspace is not safe for concurrent
// use; keep one per goroutine.
type ViterbiWorkspace struct {
	metrics   []float64
	next      []float64
	imetrics  []int32 // integer twin of metrics for the hard-input path
	inext     []int32
	survivors []int16  // steps×numStates packed predecessor decisions (float path)
	survWords []uint64 // one decision bit per state per step (integer path)
	bits      []byte
}

// DecodeSoftMetric is ViterbiDecodeSoftMetric running in w's reusable
// buffers: bitwise-identical decisions and metric, no steady-state
// allocations. The returned bits alias the workspace and are valid
// only until the next call on w.
//
//geolint:noalloc
func (w *ViterbiWorkspace) DecodeSoftMetric(llrs []float64) ([]byte, float64, error) {
	if len(llrs)%2 != 0 {
		//geolint:alloc-ok error path
		return nil, 0, fmt.Errorf("fec: LLR length %d is odd", len(llrs))
	}
	steps := len(llrs) / 2
	if steps < ConstraintLength-1 {
		//geolint:alloc-ok error path
		return nil, 0, fmt.Errorf("fec: codeword of %d steps shorter than the tail", steps)
	}
	bits, err := w.run(llrs)
	if err != nil {
		return nil, 0, err
	}
	return bits[:steps-(ConstraintLength-1)], w.metrics[0], nil
}

// run is the add-compare-select recursion over soft inputs (2 per
// trellis step; a value of 0 marks a punctured/erased bit), tracing
// back from the zero state. It is the single Viterbi implementation —
// every public decode entry point funnels here.
//
//geolint:noalloc
func (w *ViterbiWorkspace) run(soft []float64) ([]byte, error) {
	steps := len(soft) / 2
	const negInf = math.MaxFloat64
	if cap(w.metrics) < numStates {
		w.metrics = make([]float64, numStates) //geolint:alloc-ok first use only
		w.next = make([]float64, numStates)    //geolint:alloc-ok first use only
	}
	metrics := w.metrics[:numStates]
	next := w.next[:numStates]
	if cap(w.survivors) < steps*numStates {
		w.survivors = make([]int16, steps*numStates) //geolint:alloc-ok first use or longer codeword only
	}
	survivors := w.survivors[:steps*numStates]
	for s := range metrics {
		metrics[s] = -negInf
	}
	metrics[0] = 0
	// Butterfly add-compare-select: states 2k and 2k+1 are the only
	// predecessors of states k and k+32, so each (k, input) pair
	// resolves one next state with a single compare. The arithmetic is
	// bit-identical to the straightforward per-state recursion: the
	// branch metric adds ±l0 then ±l1 in the same order (IEEE a−b is
	// exactly a+(−b), taken from the sign tables), the even predecessor
	// wins ties exactly as the lower state id did, and a dead
	// predecessor's −MaxFloat64 metric absorbs the branch terms, so it
	// loses every compare just as the explicit reachability skip made it.
	// Only dead states' survivor entries differ, and the traceback never
	// reads those.
	for t := 0; t < steps; t++ {
		surv := survivors[t*numStates : (t+1)*numStates]
		l0, l1 := soft[2*t], soft[2*t+1]
		sl0 := [2]float64{-l0, l0}
		sl1 := [2]float64{-l1, l1}
		for k := 0; k < numStates/2; k++ {
			s0 := 2 * k
			m0, m1 := metrics[s0], metrics[s0+1]
			for b := 0; b < 2; b++ {
				ns := k | b<<(ConstraintLength-2)
				o0 := outputs[s0][b]
				bm0 := m0 + sl0[o0>>1]
				bm0 += sl1[o0&1]
				o1 := outputs[s0+1][b]
				bm1 := m1 + sl0[o1>>1]
				bm1 += sl1[o1&1]
				if bm1 > bm0 {
					next[ns] = bm1
					surv[ns] = int16((s0+1)<<1 | b)
				} else {
					next[ns] = bm0
					surv[ns] = int16(s0<<1 | b)
				}
			}
		}
		metrics, next = next, metrics
	}
	// The swap above may leave the freshest metrics in w.next; keep the
	// fields aligned with the locals so callers read the right buffer.
	w.metrics, w.next = metrics, next
	// Terminated trellis: trace back from state 0.
	if cap(w.bits) < steps {
		w.bits = make([]byte, steps) //geolint:alloc-ok first use or longer codeword only
	}
	bits := w.bits[:steps]
	state := 0
	if metrics[0] == -negInf {
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("fec: trellis did not terminate in the zero state")
	}
	for t := steps - 1; t >= 0; t-- {
		dec := survivors[t*numStates+state]
		bits[t] = byte(dec & 1)
		state = int(dec >> 1)
	}
	return bits, nil
}

// DecodeHardMetric is DecodeSoftMetric specialized to hard-decision
// inputs: vals holds one correlation value per mother-code bit, +1 for
// a received 1, −1 for a received 0 and 0 for a punctured/erased
// position. Because every branch and path metric is then a small exact
// integer, the recursion runs in int32 arithmetic — the decoded bits
// and the returned metric are bit-identical to feeding the same values
// through the float path (every float the soft recursion would form is
// an exactly-representable integer, and the compare/tie rules are the
// same), at roughly half the add-compare-select cost.
//
//geolint:noalloc
func (w *ViterbiWorkspace) DecodeHardMetric(vals []int8) ([]byte, float64, error) {
	if len(vals)%2 != 0 {
		//geolint:alloc-ok error path
		return nil, 0, fmt.Errorf("fec: coded length %d is odd", len(vals))
	}
	steps := len(vals) / 2
	if steps < ConstraintLength-1 {
		//geolint:alloc-ok error path
		return nil, 0, fmt.Errorf("fec: codeword of %d steps shorter than the tail", steps)
	}
	bits, err := w.runInt(vals)
	if err != nil {
		return nil, 0, err
	}
	return bits[:steps-(ConstraintLength-1)], float64(w.imetrics[0]), nil
}

// runInt is the integer add-compare-select twin of run. The dead-state
// bookkeeping differs in one harmless way: run's −MaxFloat64 sentinel
// absorbs branch terms exactly while the integer sentinel accumulates
// them, so the two recursions can disagree on the survivor of a state
// both of whose predecessors are unreachable — and only there. Such
// states exist only in the first K−2 steps, are never on any path that
// terminates in state 0, and the traceback therefore never reads them,
// which is the same argument run itself makes for skipping explicit
// reachability tracking.
//
// Survivors are stored as one decision bit per next state packed into
// a single uint64 per trellis step (bit ns set ⇔ the odd predecessor
// won), not the float path's int16-per-state array: the butterfly
// structure makes predecessor and input recoverable from the next
// state id alone (prev = 2·(ns mod 32) + bit, input = ns div 32), so
// the bit is all the traceback needs — and the ACS loop's survivor
// traffic drops from 128 bytes per step to one word.
//
//geolint:noalloc
func (w *ViterbiWorkspace) runInt(vals []int8) ([]byte, error) {
	steps := len(vals) / 2
	// Low enough that every dead path stays far below any live metric
	// (|branch| ≤ 2 per step), high enough that int32 never wraps for
	// any codeword short of 2^28 steps.
	const deadMetric = math.MinInt32 / 4
	if cap(w.imetrics) < numStates {
		w.imetrics = make([]int32, numStates) //geolint:alloc-ok first use only
		w.inext = make([]int32, numStates)    //geolint:alloc-ok first use only
	}
	// Fixed-size array views let the compiler prove every state index
	// in the butterfly loop (2k+1 ≤ 63) and drop its bounds checks.
	metrics := (*[numStates]int32)(w.imetrics[:numStates])
	next := (*[numStates]int32)(w.inext[:numStates])
	if cap(w.survWords) < steps {
		w.survWords = make([]uint64, steps) //geolint:alloc-ok first use or longer codeword only
	}
	survWords := w.survWords[:steps]
	for s := range metrics {
		metrics[s] = deadMetric
	}
	metrics[0] = 0
	for t := 0; t < steps; t++ {
		l0, l1 := int32(vals[2*t]), int32(vals[2*t+1])
		// Branch metrics for the four output pairs, indexed by the
		// packed outputs byte: bm[o] = ±l0 ± l1.
		var bm [4]int32
		bm[0] = -l0 - l1
		bm[1] = -l0 + l1
		bm[2] = l0 - l1
		bm[3] = l0 + l1
		var word uint64
		for k := 0; k < numStates/2; k++ {
			s0 := 2 * k
			m0, m1 := metrics[s0], metrics[s0+1]
			// Both generators have their low tap set (bit 0 of 133 and
			// 171 octal), so flipping a predecessor's LSB flips both
			// coded bits: the odd predecessor's branch metric is exactly
			// −c0, one table lookup per butterfly.
			c0 := bm[outputs[s0][0]&3]
			// Input 0 → next state k. The selects below are
			// branch-free (SETcc/CMOV), which matters: the compare
			// direction is data-dependent and essentially random.
			a0, a1 := m0+c0, m1-c0
			sel := uint64(0)
			if a1 > a0 {
				sel = 1
			}
			m := a0
			if a1 > a0 {
				m = a1
			}
			next[k] = m
			word |= sel << uint(k)
			// Input 1 → next state k+numStates/2. Both generators also
			// have the input tap set (bit K−1), so flipping the input
			// flips both coded bits and the branch metric negates again
			// — still the same single lookup.
			b0, b1 := m0-c0, m1+c0
			sel = 0
			if b1 > b0 {
				sel = 1
			}
			m = b0
			if b1 > b0 {
				m = b1
			}
			next[k+numStates/2] = m
			word |= sel << uint(k+numStates/2)
		}
		survWords[t] = word
		metrics, next = next, metrics
	}
	// An odd number of swaps leaves the freshest metrics in w.inext;
	// realign the fields so callers read the right buffer.
	if &w.imetrics[0] != &metrics[0] {
		w.imetrics, w.inext = w.inext, w.imetrics
	}
	if cap(w.bits) < steps {
		w.bits = make([]byte, steps) //geolint:alloc-ok first use or longer codeword only
	}
	bits := w.bits[:steps]
	state := 0
	// A dead path's metric drifts from the sentinel by at most 2 per
	// step, so the halfway threshold cleanly separates dead from live
	// (live metrics are ≥ −2·steps).
	if metrics[0] < deadMetric/2 {
		//geolint:alloc-ok error path
		return nil, fmt.Errorf("fec: trellis did not terminate in the zero state")
	}
	for t := steps - 1; t >= 0; t-- {
		sel := int(survWords[t]>>uint(state)) & 1
		bits[t] = byte(state >> (ConstraintLength - 2))
		state = (state&(numStates/2-1))<<1 | sel
	}
	return bits, nil
}

// Rate identifies a puncturing pattern applied to the rate-1/2 mother
// code.
type Rate int

// Supported code rates.
const (
	Rate12 Rate = iota // 1/2: no puncturing
	Rate23             // 2/3: 802.11 puncturing pattern
	Rate34             // 3/4: 802.11 puncturing pattern
)

// String implements fmt.Stringer.
func (r Rate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	}
	return fmt.Sprintf("Rate(%d)", int(r))
}

// Fraction returns the code rate as a float (information/coded bits).
func (r Rate) Fraction() float64 {
	switch r {
	case Rate23:
		return 2.0 / 3.0
	case Rate34:
		return 3.0 / 4.0
	default:
		return 0.5
	}
}

// puncturePattern returns the 802.11 keep-mask over mother-code bits,
// or nil for rate 1/2.
func (r Rate) puncturePattern() []bool {
	switch r {
	case Rate23:
		// Keep A1 B1 A2, drop B2 (period 4 mother bits → 3 kept).
		return []bool{true, true, true, false}
	case Rate34:
		// Keep A1 B1 A2, drop B2, drop A3, keep B3.
		return []bool{true, true, true, false, false, true}
	default:
		return nil
	}
}

// Puncture removes coded bits per the rate's pattern.
func Puncture(coded []byte, r Rate) []byte {
	if r.puncturePattern() == nil {
		return coded
	}
	return PunctureAppend(make([]byte, 0, len(coded)), coded, r)
}

// PunctureAppend is Puncture appending onto caller-owned dst (the
// unpunctured rate appends a plain copy rather than aliasing coded,
// so dst is always safe to mutate). It returns dst.
func PunctureAppend(dst, coded []byte, r Rate) []byte {
	pat := r.puncturePattern()
	if pat == nil {
		return append(dst, coded...)
	}
	for i, b := range coded {
		if pat[i%len(pat)] {
			dst = append(dst, b)
		}
	}
	return dst
}

// Depuncture re-inserts erasures (LLR 0) at punctured positions so the
// soft Viterbi decoder can run over the mother code. motherLen is the
// unpunctured codeword length.
func Depuncture(llrs []float64, r Rate, motherLen int) []float64 {
	var out []float64
	if r.puncturePattern() == nil {
		out = make([]float64, len(llrs))
	} else {
		out = make([]float64, motherLen)
	}
	return DepunctureInto(out, llrs, r, motherLen)
}

// DepunctureInto is Depuncture writing into caller-owned dst (length
// len(llrs) for the unpunctured rate, motherLen otherwise), so decode
// loops reuse one buffer across codewords. It returns dst.
//
//geolint:noalloc
func DepunctureInto(dst, llrs []float64, r Rate, motherLen int) []float64 {
	pat := r.puncturePattern()
	if pat == nil {
		copy(dst, llrs)
		return dst
	}
	j := 0
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < motherLen && j < len(llrs); i++ {
		if pat[i%len(pat)] {
			dst[i] = llrs[j]
			j++
		}
	}
	return dst
}

// DepunctureHardInto is DepunctureInto over hard ±1 correlation
// values, feeding the integer Viterbi path: erased positions become 0,
// exactly the neutral value the float path would carry.
//
//geolint:noalloc
func DepunctureHardInto(dst, vals []int8, r Rate, motherLen int) []int8 {
	pat := r.puncturePattern()
	if pat == nil {
		copy(dst, vals)
		return dst
	}
	j := 0
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < motherLen && j < len(vals); i++ {
		if pat[i%len(pat)] {
			dst[i] = vals[j]
			j++
		}
	}
	return dst
}

// PunctureSoft removes soft values at the rate's punctured positions,
// the float counterpart of Puncture used on extrinsic feedback.
func PunctureSoft(vals []float64, r Rate) []float64 {
	pat := r.puncturePattern()
	if pat == nil {
		out := make([]float64, len(vals))
		copy(out, vals)
		return out
	}
	out := make([]float64, 0, len(vals))
	for i, v := range vals {
		if pat[i%len(pat)] {
			out = append(out, v)
		}
	}
	return out
}
