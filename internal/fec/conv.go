// Package fec implements the channel-coding chain the implementation
// section (§4) uses: the industry-standard rate-1/2, constraint-length
// 7 convolutional code (generators 133/171 octal, as in 802.11),
// hard- and soft-decision Viterbi decoding, puncturing to rates 2/3
// and 3/4, the 802.11-style block interleaver, the frame scrambler,
// and a CRC-32 frame check sequence.
package fec

import (
	"fmt"
	"math"
)

// Convolutional code parameters: K=7, generators 0o133 and 0o171.
const (
	// ConstraintLength is the code's constraint length K.
	ConstraintLength = 7
	numStates        = 1 << (ConstraintLength - 1)
	g0               = 0o133
	g1               = 0o171
)

// parity returns the parity of x.
func parity(x int) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// outputs[state][input] packs the two coded bits (g0 in bit 1, g1 in
// bit 0) produced when `input` enters the shift register at `state`.
var outputs [numStates][2]byte

func init() {
	for s := 0; s < numStates; s++ {
		for b := 0; b < 2; b++ {
			reg := b<<(ConstraintLength-1) | s
			outputs[s][b] = parity(reg&g0)<<1 | parity(reg&g1)
		}
	}
}

// ConvEncode encodes data bits (one bit per byte) with the rate-1/2
// code, appending K−1 zero tail bits to terminate the trellis. The
// output has 2·(len(bits)+6) coded bits.
func ConvEncode(bits []byte) []byte {
	out := make([]byte, 0, 2*(len(bits)+ConstraintLength-1))
	state := 0
	encode := func(b byte) {
		o := outputs[state][b&1]
		out = append(out, o>>1, o&1)
		state = state>>1 | int(b&1)<<(ConstraintLength-2)
	}
	for _, b := range bits {
		encode(b)
	}
	for i := 0; i < ConstraintLength-1; i++ {
		encode(0)
	}
	return out
}

// ViterbiDecode performs hard-decision maximum-likelihood decoding of
// a terminated rate-1/2 codeword, returning the information bits. The
// input length must be even and cover at least the tail.
func ViterbiDecode(coded []byte) ([]byte, error) {
	if len(coded)%2 != 0 {
		return nil, fmt.Errorf("fec: coded length %d is odd", len(coded))
	}
	steps := len(coded) / 2
	if steps < ConstraintLength-1 {
		return nil, fmt.Errorf("fec: codeword of %d steps shorter than the tail", steps)
	}
	metrics := make([]float64, numStates)
	soft := make([]float64, len(coded))
	for i, b := range coded {
		// Map hard bits to ±1 log-likelihoods.
		if b&1 == 1 {
			soft[i] = 1
		} else {
			soft[i] = -1
		}
	}
	bits, err := viterbi(soft, metrics)
	if err != nil {
		return nil, err
	}
	return bits[:steps-(ConstraintLength-1)], nil
}

// ViterbiDecodeSoft decodes from per-bit log-likelihood ratios
// (positive = bit 1 more likely). Length rules match ViterbiDecode.
func ViterbiDecodeSoft(llrs []float64) ([]byte, error) {
	bits, _, err := ViterbiDecodeSoftMetric(llrs)
	return bits, err
}

// ViterbiDecodeSoftMetric is ViterbiDecodeSoft with the winning path's
// accumulated trellis metric alongside the decoded bits. The metric is
// the correlation of the survivor path's expected code bits with the
// input LLRs: larger means the received soft values agree more
// strongly with a valid codeword, so it doubles as a per-stream
// reception-quality observable (normalize by len(llrs) to compare
// across frame sizes).
func ViterbiDecodeSoftMetric(llrs []float64) ([]byte, float64, error) {
	if len(llrs)%2 != 0 {
		return nil, 0, fmt.Errorf("fec: LLR length %d is odd", len(llrs))
	}
	steps := len(llrs) / 2
	if steps < ConstraintLength-1 {
		return nil, 0, fmt.Errorf("fec: codeword of %d steps shorter than the tail", steps)
	}
	metrics := make([]float64, numStates)
	bits, err := viterbi(llrs, metrics)
	if err != nil {
		return nil, 0, err
	}
	return bits[:steps-(ConstraintLength-1)], metrics[0], nil
}

// viterbi runs the add-compare-select recursion over soft inputs
// (2 per trellis step; a value of 0 marks a punctured/erased bit) and
// traces back from the zero state.
func viterbi(soft []float64, metrics []float64) ([]byte, error) {
	steps := len(soft) / 2
	const negInf = math.MaxFloat64
	for s := range metrics {
		metrics[s] = -negInf
	}
	metrics[0] = 0
	next := make([]float64, numStates)
	// survivors[t][s] is the predecessor-state/input packed decision.
	survivors := make([][]int16, steps)
	for t := 0; t < steps; t++ {
		survivors[t] = make([]int16, numStates)
		for s := range next {
			next[s] = -negInf
		}
		l0, l1 := soft[2*t], soft[2*t+1]
		for s := 0; s < numStates; s++ {
			m := metrics[s]
			if m == -negInf {
				continue
			}
			for b := 0; b < 2; b++ {
				o := outputs[s][b]
				// Branch metric: correlate expected bits with LLRs.
				bm := m
				if o>>1 == 1 {
					bm += l0
				} else {
					bm -= l0
				}
				if o&1 == 1 {
					bm += l1
				} else {
					bm -= l1
				}
				ns := s>>1 | b<<(ConstraintLength-2)
				if bm > next[ns] {
					next[ns] = bm
					survivors[t][ns] = int16(s<<1 | b)
				}
			}
		}
		copy(metrics, next)
	}
	// Terminated trellis: trace back from state 0.
	bits := make([]byte, steps)
	state := 0
	if metrics[0] == -negInf {
		return nil, fmt.Errorf("fec: trellis did not terminate in the zero state")
	}
	for t := steps - 1; t >= 0; t-- {
		dec := survivors[t][state]
		bits[t] = byte(dec & 1)
		state = int(dec >> 1)
	}
	return bits, nil
}

// Rate identifies a puncturing pattern applied to the rate-1/2 mother
// code.
type Rate int

// Supported code rates.
const (
	Rate12 Rate = iota // 1/2: no puncturing
	Rate23             // 2/3: 802.11 puncturing pattern
	Rate34             // 3/4: 802.11 puncturing pattern
)

// String implements fmt.Stringer.
func (r Rate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	}
	return fmt.Sprintf("Rate(%d)", int(r))
}

// Fraction returns the code rate as a float (information/coded bits).
func (r Rate) Fraction() float64 {
	switch r {
	case Rate23:
		return 2.0 / 3.0
	case Rate34:
		return 3.0 / 4.0
	default:
		return 0.5
	}
}

// puncturePattern returns the 802.11 keep-mask over mother-code bits,
// or nil for rate 1/2.
func (r Rate) puncturePattern() []bool {
	switch r {
	case Rate23:
		// Keep A1 B1 A2, drop B2 (period 4 mother bits → 3 kept).
		return []bool{true, true, true, false}
	case Rate34:
		// Keep A1 B1 A2, drop B2, drop A3, keep B3.
		return []bool{true, true, true, false, false, true}
	default:
		return nil
	}
}

// Puncture removes coded bits per the rate's pattern.
func Puncture(coded []byte, r Rate) []byte {
	pat := r.puncturePattern()
	if pat == nil {
		return coded
	}
	out := make([]byte, 0, len(coded))
	for i, b := range coded {
		if pat[i%len(pat)] {
			out = append(out, b)
		}
	}
	return out
}

// Depuncture re-inserts erasures (LLR 0) at punctured positions so the
// soft Viterbi decoder can run over the mother code. motherLen is the
// unpunctured codeword length.
func Depuncture(llrs []float64, r Rate, motherLen int) []float64 {
	pat := r.puncturePattern()
	if pat == nil {
		out := make([]float64, len(llrs))
		copy(out, llrs)
		return out
	}
	out := make([]float64, motherLen)
	j := 0
	for i := 0; i < motherLen && j < len(llrs); i++ {
		if pat[i%len(pat)] {
			out[i] = llrs[j]
			j++
		}
	}
	return out
}

// PunctureSoft removes soft values at the rate's punctured positions,
// the float counterpart of Puncture used on extrinsic feedback.
func PunctureSoft(vals []float64, r Rate) []float64 {
	pat := r.puncturePattern()
	if pat == nil {
		out := make([]float64, len(vals))
		copy(out, vals)
		return out
	}
	out := make([]float64, 0, len(vals))
	for i, v := range vals {
		if pat[i%len(pat)] {
			out = append(out, v)
		}
	}
	return out
}
