package fec

import (
	"math/rand"
	"testing"
)

func toLLRs(coded []byte, mag float64) []float64 {
	l := make([]float64, len(coded))
	for i, b := range coded {
		if b == 1 {
			l[i] = mag
		} else {
			l[i] = -mag
		}
	}
	return l
}

func TestBCJRMatchesViterbiClean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		bits := randBits(r, 120)
		coded := ConvEncode(bits)
		info, _, err := MaxLogBCJR(toLLRs(coded, 1))
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range bits {
			got := byte(0)
			if info[i] > 0 {
				got = 1
			}
			if got != b {
				t.Fatalf("trial %d: info bit %d wrong (LLR %g)", trial, i, info[i])
			}
		}
		// Tail bits decode to zero.
		for i := len(bits); i < len(info); i++ {
			if info[i] > 0 {
				t.Fatalf("tail bit %d decoded as 1", i)
			}
		}
	}
}

func TestBCJRCorrectsNoise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	bits := randBits(r, 200)
	coded := ConvEncode(bits)
	llrs := toLLRs(coded, 2)
	// Add noise and flip a few signs.
	for i := range llrs {
		llrs[i] += r.NormFloat64()
	}
	info, _, err := MaxLogBCJR(llrs)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i, b := range bits {
		got := byte(0)
		if info[i] > 0 {
			got = 1
		}
		if got != b {
			errs++
		}
	}
	if errs > 2 {
		t.Fatalf("%d info bit errors after decoding", errs)
	}
}

// TestBCJRExtrinsicsImproveErasures: extrinsic LLRs must carry real
// information about erased coded bits — the property iterative
// receivers rely on.
func TestBCJRExtrinsicsImproveErasures(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	bits := randBits(r, 150)
	coded := ConvEncode(bits)
	llrs := toLLRs(coded, 2)
	erased := map[int]bool{}
	for i := 0; i < len(llrs); i += 7 {
		llrs[i] = 0
		erased[i] = true
	}
	_, ext, err := MaxLogBCJR(llrs)
	if err != nil {
		t.Fatal(err)
	}
	correctSign, total := 0, 0
	for i := range coded {
		if !erased[i] {
			continue
		}
		total++
		if (coded[i] == 1 && ext[i] > 0) || (coded[i] == 0 && ext[i] < 0) {
			correctSign++
		}
	}
	if total == 0 {
		t.Fatal("no erasures tested")
	}
	frac := float64(correctSign) / float64(total)
	t.Logf("extrinsic sign correct on %.0f%% of %d erased coded bits", 100*frac, total)
	if frac < 0.95 {
		t.Fatalf("extrinsics recovered only %.0f%% of erased bits", 100*frac)
	}
}

func TestBCJRValidation(t *testing.T) {
	if _, _, err := MaxLogBCJR(make([]float64, 5)); err == nil {
		t.Fatal("odd length accepted")
	}
	if _, _, err := MaxLogBCJR(make([]float64, 4)); err == nil {
		t.Fatal("too-short codeword accepted")
	}
}

// TestBCJRAgreesWithViterbiUnderNoise: both are ML-sequence /
// max-log-MAP decoders; on moderately noisy inputs their hard
// decisions should almost always coincide.
func TestBCJRAgreesWithViterbiUnderNoise(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	disagree := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		bits := randBits(r, 100)
		coded := ConvEncode(bits)
		llrs := toLLRs(coded, 1.5)
		for i := range llrs {
			llrs[i] += r.NormFloat64()
		}
		vit, err := ViterbiDecodeSoft(llrs)
		if err != nil {
			t.Fatal(err)
		}
		info, _, err := MaxLogBCJR(llrs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vit {
			got := byte(0)
			if info[i] > 0 {
				got = 1
			}
			if got != vit[i] {
				disagree++
			}
		}
	}
	if disagree > trials { // allow ~1 bit per frame of BCJR/ML divergence
		t.Fatalf("BCJR and Viterbi disagreed on %d bits", disagree)
	}
}
