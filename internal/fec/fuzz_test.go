package fec

import (
	"testing"
)

// FuzzViterbiRoundTrip: ConvEncode followed by ViterbiDecode must
// reproduce any input bit pattern exactly.
func FuzzViterbiRoundTrip(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 0})
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		bits := make([]byte, len(data))
		for i, b := range data {
			bits[i] = b & 1
		}
		dec, err := ViterbiDecode(ConvEncode(bits))
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(bits) {
			t.Fatalf("length %d, want %d", len(dec), len(bits))
		}
		for i := range bits {
			if dec[i] != bits[i] {
				t.Fatalf("bit %d corrupted", i)
			}
		}
	})
}

// FuzzViterbiNoCrash: the decoder must reject or survive arbitrary
// coded inputs without panicking.
func FuzzViterbiNoCrash(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		bits := make([]byte, len(data))
		for i, b := range data {
			bits[i] = b & 1
		}
		// Any outcome but a panic is acceptable for garbage input.
		_, _ = ViterbiDecode(bits)
	})
}

// FuzzScramble: scrambling twice with any seed is the identity.
func FuzzScramble(f *testing.F) {
	f.Add([]byte{1, 0, 1}, byte(0x5d))
	f.Fuzz(func(t *testing.T, data []byte, seed byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		bits := make([]byte, len(data))
		for i, b := range data {
			bits[i] = b & 1
		}
		orig := append([]byte(nil), bits...)
		Scramble(bits, seed)
		Scramble(bits, seed)
		for i := range orig {
			if bits[i] != orig[i] {
				t.Fatalf("scramble not involutive at %d (seed %#x)", i, seed)
			}
		}
	})
}

// FuzzCRC: AppendCRC/CheckCRC round-trips, and any single-bit
// corruption is detected.
func FuzzCRC(f *testing.F) {
	f.Add([]byte{1, 1, 0, 1}, uint16(2))
	f.Fuzz(func(t *testing.T, data []byte, flip uint16) {
		if len(data) == 0 || len(data) > 2048 {
			return
		}
		bits := make([]byte, len(data))
		for i, b := range data {
			bits[i] = b & 1
		}
		framed := AppendCRC(bits)
		if _, ok := CheckCRC(framed); !ok {
			t.Fatal("clean CRC failed")
		}
		pos := int(flip) % len(framed)
		framed[pos] ^= 1
		if _, ok := CheckCRC(framed); ok {
			t.Fatalf("single flip at %d undetected", pos)
		}
	})
}
