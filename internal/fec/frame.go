package fec

import (
	"fmt"
	"hash/crc32"
)

// Interleaver is the 802.11-style two-permutation block interleaver.
// It operates on one OFDM symbol's worth of coded bits (ncbps bits
// spread over columns so adjacent coded bits map to non-adjacent
// subcarriers and alternate constellation bit significance).
type Interleaver struct {
	ncbps int // coded bits per OFDM symbol
	nbpsc int // coded bits per subcarrier (constellation bits)
	perm  []int
	inv   []int
}

// NewInterleaver builds an interleaver for ncbps coded bits per symbol
// carrying nbpsc bits per subcarrier. ncbps must be a multiple of both
// 16 and nbpsc.
func NewInterleaver(ncbps, nbpsc int) (*Interleaver, error) {
	if ncbps <= 0 || nbpsc <= 0 || ncbps%nbpsc != 0 || ncbps%16 != 0 {
		return nil, fmt.Errorf("fec: invalid interleaver geometry ncbps=%d nbpsc=%d", ncbps, nbpsc)
	}
	it := &Interleaver{ncbps: ncbps, nbpsc: nbpsc}
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	it.perm = make([]int, ncbps)
	it.inv = make([]int, ncbps)
	for k := 0; k < ncbps; k++ {
		// First permutation: write row-wise, read column-wise over 16
		// columns.
		i := (ncbps/16)*(k%16) + k/16
		// Second permutation: rotate bit positions within a
		// subcarrier's group so adjacent bits alternate significance.
		j := s*(i/s) + (i+ncbps-16*i/ncbps)%s
		it.perm[k] = j
		it.inv[j] = k
	}
	return it, nil
}

// BlockSize returns the number of bits the interleaver permutes.
func (it *Interleaver) BlockSize() int { return it.ncbps }

// Interleave permutes one block of exactly BlockSize bits.
func (it *Interleaver) Interleave(dst, src []byte) ([]byte, error) {
	if len(src) != it.ncbps {
		return nil, fmt.Errorf("fec: interleave block is %d bits, want %d", len(src), it.ncbps)
	}
	if dst == nil {
		dst = make([]byte, it.ncbps)
	}
	for k, j := range it.perm {
		dst[j] = src[k]
	}
	return dst, nil
}

// Deinterleave inverts Interleave.
func (it *Interleaver) Deinterleave(dst, src []byte) ([]byte, error) {
	if len(src) != it.ncbps {
		return nil, fmt.Errorf("fec: deinterleave block is %d bits, want %d", len(src), it.ncbps)
	}
	if dst == nil {
		dst = make([]byte, it.ncbps)
	}
	for j, k := range it.inv {
		dst[k] = src[j]
	}
	return dst, nil
}

// DeinterleaveSoft inverts Interleave over per-bit soft values.
func (it *Interleaver) DeinterleaveSoft(dst, src []float64) ([]float64, error) {
	if len(src) != it.ncbps {
		return nil, fmt.Errorf("fec: deinterleave block is %d values, want %d", len(src), it.ncbps)
	}
	if dst == nil {
		dst = make([]float64, it.ncbps)
	}
	for j, k := range it.inv {
		dst[k] = src[j]
	}
	return dst, nil
}

// Scramble applies the 802.11 length-127 frame-synchronous scrambler
// (x^7 + x^4 + 1) with the given 7-bit seed, in place over bits, and
// returns bits. Scrambling is an involution: applying it twice with
// the same seed restores the input.
func Scramble(bits []byte, seed byte) []byte {
	state := int(seed & 0x7f)
	if state == 0 {
		state = 0x7f // the all-zero state would stall the LFSR
	}
	for i := range bits {
		fb := byte((state>>6)^(state>>3)) & 1
		bits[i] ^= fb
		state = (state<<1 | int(fb)) & 0x7f
	}
	return bits
}

// CRC32 computes the IEEE CRC-32 over data bits (one bit per byte) by
// packing them MSB-first into bytes; ragged tails are zero-padded.
func CRC32(bits []byte) uint32 {
	packed := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b&1 == 1 {
			packed[i/8] |= 0x80 >> (i % 8)
		}
	}
	return crc32.ChecksumIEEE(packed)
}

// AppendCRC appends the 32 CRC bits (MSB first) to bits.
func AppendCRC(bits []byte) []byte {
	return AppendCRCTo(make([]byte, 0, len(bits)+32), bits)
}

// AppendCRCTo appends bits followed by their 32 CRC bits (MSB first)
// onto caller-owned dst, so encode loops reuse one info buffer across
// blocks. It returns dst.
func AppendCRCTo(dst, bits []byte) []byte {
	c := CRC32(bits)
	dst = append(dst, bits...)
	for i := 31; i >= 0; i-- {
		dst = append(dst, byte(c>>uint(i))&1)
	}
	return dst
}

// CheckCRC verifies and strips a trailing 32-bit CRC, returning the
// payload bits and whether the check passed.
func CheckCRC(bits []byte) ([]byte, bool) {
	if len(bits) < 32 {
		return nil, false
	}
	payload := bits[:len(bits)-32]
	var got uint32
	for _, b := range bits[len(bits)-32:] {
		got = got<<1 | uint32(b&1)
	}
	return payload, got == CRC32(payload)
}

// InterleaveSoft applies the forward permutation to soft values, the
// float counterpart of Interleave used on decoder feedback.
func (it *Interleaver) InterleaveSoft(dst, src []float64) ([]float64, error) {
	if len(src) != it.ncbps {
		return nil, fmt.Errorf("fec: interleave block is %d values, want %d", len(src), it.ncbps)
	}
	if dst == nil {
		dst = make([]float64, it.ncbps)
	}
	for k, j := range it.perm {
		dst[j] = src[k]
	}
	return dst, nil
}
