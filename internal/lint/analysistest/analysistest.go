// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library only.
//
// Expectations are written on the line the diagnostic lands on:
//
//	x := rand.Int() // want `draws from the process-global source`
//
// The text between backquotes (or double quotes) is a regular
// expression that must match one diagnostic reported on that line.
// Several expectations on one line each consume one diagnostic in
// order. Lines without a want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// wantRe matches one quoted expectation in a want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package below dir/src and applies the
// analyzer, comparing diagnostics with the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkgPath := range pkgs {
		runOne(t, dir, a, pkgPath)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	l := load.NewLoader("", "")
	l.ExtraRoot = filepath.Join(dir, "src")
	l.IncludeTests = true
	pkgDir := filepath.Join(l.ExtraRoot, filepath.FromSlash(pkgPath))
	pkgs, err := l.LoadDir(pkgDir, pkgPath)
	if err != nil {
		t.Fatalf("%s: loading fixture: %v", pkgPath, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("%s: no Go files in fixture %s", pkgPath, pkgDir)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: fixture does not type-check: %v", pkgPath, terr)
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer error: %v", pkgPath, err)
		}
		analysis.SortDiagnostics(pkg.Fset, diags)
		compare(t, pkg, diags)
	}
}

// expectation is one want regexp at one file line.
type expectation struct {
	re  *regexp.Regexp
	met bool
}

// wantsOf extracts want comments from every file of the package,
// keyed by "file:line".
func wantsOf(t *testing.T, pkg *load.Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRe.FindAllString(text[idx+len("want "):], -1) {
					var pat string
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want expectation %s: %v", key, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

func compare(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := wantsOf(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.met && exp.re.MatchString(d.Message) {
				exp.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.met {
				t.Errorf("%s: no diagnostic matching %q", key, exp.re)
			}
		}
	}
}
