package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// FloatDeterminism flags floating-point constructs that have bitten
// PED accumulation code in sphere decoders, inside the deterministic
// packages:
//
//   - == and != on float or complex operands: bit-exact equality is
//     fragile under reassociation and fused multiply-add, and it is
//     how conformance suites silently rot. Compare against a
//     tolerance, or annotate intentional exact checks (sentinel
//     values, exact-zero singularity tests).
//   - math.Pow(x, 2): Pow goes through exp/log and is neither exact
//     nor cheap; x*x is both.
//
// Suppress with //geolint:float-ok <reason>.
var FloatDeterminism = &analysis.Analyzer{
	Name: "floatdet",
	Doc:  "flag ==/!= on float/complex values and math.Pow(x, 2) in deterministic packages",
	Run:  runFloatDeterminism,
}

const floatOK = "float-ok"

func runFloatDeterminism(pass *analysis.Pass) error {
	if !isDeterministicPkg(pass) {
		return nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if !isFloatish(pass.TypesInfo.TypeOf(n.X)) && !isFloatish(pass.TypesInfo.TypeOf(n.Y)) {
				return true
			}
			// A comparison folded at compile time is deterministic.
			if pass.TypesInfo.Types[n.X].Value != nil && pass.TypesInfo.Types[n.Y].Value != nil {
				return true
			}
			if !pass.Suppressed(n.Pos(), floatOK) {
				pass.Reportf(n.Pos(),
					"%s on floating-point values is not reproducible across reassociation/FMA; compare with a tolerance or annotate //geolint:%s <reason>",
					n.Op, floatOK)
			}
		case *ast.CallExpr:
			pkgPath, name, ok := pkgFuncOf(pass, n)
			if !ok || pkgPath != "math" || name != "Pow" || len(n.Args) != 2 {
				return true
			}
			tv := pass.TypesInfo.Types[n.Args[1]]
			if tv.Value == nil || tv.Value.Kind() == constant.Unknown {
				return true
			}
			if v, exact := constant.Float64Val(tv.Value); !exact || v != 2 {
				return true
			}
			if !pass.Suppressed(n.Pos(), floatOK) {
				pass.Reportf(n.Pos(),
					"math.Pow(x, 2) in a hot path; write x*x — exact, branch-free, and an order of magnitude cheaper (//geolint:%s <reason> to allow)",
					floatOK)
			}
		}
		return true
	})
	return nil
}

// isFloatish reports whether t is a float or complex basic type.
func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
