package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Determinism, "determinism/a", "determinism/free")
}

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoAlloc, "noalloc/a", "noalloc/update")
}

func TestRecorderHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", lint.RecorderHygiene, "recorderhygiene/a")
}

func TestFloatDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.FloatDeterminism, "floatdet/a", "determinism/free")
}

func TestUnits(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Units, "units/a")
}

func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, "testdata", lint.GoroutineLeak, "goleak/a")
}

func TestBlockingSend(t *testing.T) {
	analysistest.Run(t, "testdata", lint.BlockingSend, "blockingsend/a")
}

func TestSyncMisuse(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SyncMisuse, "syncmisuse/a")
}

func TestStaleHatch(t *testing.T) {
	analysistest.Run(t, "testdata", lint.StaleHatch, "stalehatch/a")
}

func TestSuiteRegistry(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 9 {
		t.Fatalf("suite has %d analyzers, want 9", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
