package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Determinism, "determinism/a", "determinism/free")
}

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoAlloc, "noalloc/a", "noalloc/update")
}

func TestRecorderHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", lint.RecorderHygiene, "recorderhygiene/a")
}

func TestFloatDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.FloatDeterminism, "floatdet/a", "determinism/free")
}

func TestSuiteRegistry(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 4 {
		t.Fatalf("suite has %d analyzers, want 4", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
