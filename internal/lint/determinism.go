package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Determinism flags nondeterministic constructs in the deterministic
// packages: wall-clock reads, draws from the global math/rand source,
// rand.New seeded from anything but rng substreams, and range over
// maps (whose iteration order is randomized per run).
//
// Suppress a finding with //geolint:nondeterminism-ok <reason> on the
// flagged line or the line above.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag clock reads, global math/rand use, unseeded rand.New and map " +
		"iteration in packages whose results must be bit-for-bit reproducible",
	Run: runDeterminism,
}

const nondetOK = "nondeterminism-ok"

// randConstructors are math/rand names whose mere call does not draw
// from the global source; rand.New is handled separately.
var randConstructors = map[string]bool{
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDeterminism(pass *analysis.Pass) error {
	if !isDeterministicPkg(pass) {
		return nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkDetCall(pass, n)
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if !pass.Suppressed(n.Pos(), nondetOK) {
					pass.Reportf(n.Pos(),
						"range over map %s has randomized iteration order; sort the keys or annotate //geolint:%s <reason>",
						types.ExprString(n.X), nondetOK)
				}
			}
		}
		return true
	})
	return nil
}

// pkgFuncOf resolves a call's callee to (package path, function name)
// when the callee is a package-level function selected off an
// imported package; ok is false otherwise.
func pkgFuncOf(pass *analysis.Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	ident, okIdent := sel.X.(*ast.Ident)
	if !okIdent {
		return "", "", false
	}
	pn, okPkg := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	if _, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFn {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

func checkDetCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkgPath, name, ok := pkgFuncOf(pass, call)
	if !ok {
		return
	}
	switch pkgPath {
	case "time":
		if name == "Now" || name == "Since" {
			if !pass.Suppressed(call.Pos(), nondetOK) {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock in a deterministic package; results must not depend on time (//geolint:%s <reason> to allow)",
					name, nondetOK)
			}
		}
	case "math/rand", "math/rand/v2":
		switch {
		case name == "New":
			if seededFromRNG(pass, call) {
				return
			}
			if !pass.Suppressed(call.Pos(), nondetOK) {
				pass.Reportf(call.Pos(),
					"rand.New seeded outside the rng substream discipline; derive seeds with rng.SubSeed/rng.Substream so parallel workers stay reproducible (//geolint:%s <reason> to allow)",
					nondetOK)
			}
		case randConstructors[name]:
			// Building a source is not a draw; rand.New decides.
		default:
			if !pass.Suppressed(call.Pos(), nondetOK) {
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global source; use an explicit rng.Source substream (//geolint:%s <reason> to allow)",
					name, nondetOK)
			}
		}
	}
}

// seededFromRNG reports whether any part of the call's arguments
// mentions the rng package (rng.SubSeed, rng.Substream, a Source
// method, ...), the sanctioned way to derive seeds.
func seededFromRNG(pass *analysis.Pass, call *ast.CallExpr) bool {
	blessed := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[ident]
			if obj == nil {
				return true
			}
			if pn, ok := obj.(*types.PkgName); ok {
				if pathBase(pn.Imported().Path()) == "rng" {
					blessed = true
				}
				return true
			}
			if obj.Pkg() != nil && pathBase(obj.Pkg().Path()) == "rng" {
				blessed = true
			}
			return true
		})
	}
	return blessed
}

func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
