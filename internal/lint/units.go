package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Units flags cross-domain arithmetic between dB-scale, linear-scale
// and frequency quantities. Mixing a dB value into a linear formula
// (or vice versa) produces plausible-looking wrong throughput curves —
// the precise failure mode the paper's evaluation methodology exists
// to rule out — and the compiler cannot see it because both sides are
// float64.
//
// The analyzer runs an intra-procedural flow analysis over go/ast and
// go/types. A value's domain is seeded three ways, strongest first:
//
//  1. its static type is a defined type of a package named "units"
//     (units.DB, units.Linear, units.Hertz — or facade aliases);
//  2. the identifier it came from follows the repository's naming
//     convention: *DB/*dB name dB-scale values, *Lin/*Linear/
//     *noiseVar name linear-scale values, *Hz names frequencies;
//  3. local flow: a variable assigned from a domain-carrying
//     expression inherits that domain (conflicting assignments erase
//     it).
//
// Name seeding deliberately applies only to value identifiers, never
// to function names: channel.NoiseVarForSNRdB ends in "dB" but
// returns a linear variance, so a call's domain comes from its result
// type alone.
//
// Crossing domains is always legitimate through an explicit
// conversion — units.DB(x), DB.Lin(), units.LinToDB, or a float64(x)
// cast, all of which reset the domain — so the analyzer only flags
// arithmetic, comparisons, call arguments and composite-literal
// fields where BOTH sides carry known, different domains.
//
// Suppress with //geolint:units-ok <reason>.
var Units = &analysis.Analyzer{
	Name: "units",
	Doc:  "flag arithmetic mixing dB-scale, linear-scale and frequency quantities without an explicit conversion",
	Run:  runUnits,
}

const unitsOK = "units-ok"

// domain is the physical scale a value lives on.
type domain int

const (
	domUnknown domain = iota
	domConflict
	domDB
	domLin
	domHz
)

func (d domain) String() string {
	switch d {
	case domDB:
		return "dB-scale"
	case domLin:
		return "linear-scale"
	case domHz:
		return "frequency"
	}
	return "unknown"
}

// known reports whether the domain is definite enough to flag against.
func (d domain) known() bool { return d == domDB || d == domLin || d == domHz }

// unitsFlow is the per-package analysis state: the inferred domain of
// every local and package-level variable.
type unitsFlow struct {
	pass *analysis.Pass
	vars map[*types.Var]domain
}

func runUnits(pass *analysis.Pass) error {
	u := &unitsFlow{pass: pass, vars: map[*types.Var]domain{}}
	// Two seeding sweeps over the package: assignments are merged in
	// source order, and the second sweep lets a domain assigned late in
	// one function flow into uses that textually precede it.
	for i := 0; i < 2; i++ {
		for _, f := range pass.Files {
			ast.Inspect(f, u.seed)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, u.check)
	}
	return nil
}

// seed merges assignment right-hand sides into the variable domain
// map.
func (u *unitsFlow) seed(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return true // multi-value call or comma-ok: no single RHS domain
		}
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := u.pass.TypesInfo.ObjectOf(id).(*types.Var)
			if !ok {
				continue
			}
			u.merge(v, u.exprDomain(n.Rhs[i]))
		}
	case *ast.ValueSpec:
		if len(n.Names) != len(n.Values) {
			return true
		}
		for i, id := range n.Names {
			if v, ok := u.pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
				u.merge(v, u.exprDomain(n.Values[i]))
			}
		}
	}
	return true
}

// merge folds a new observation into a variable's domain: unknown
// observations change nothing, agreeing ones stick, disagreeing ones
// poison the variable to conflict (never flagged, never seeded).
func (u *unitsFlow) merge(v *types.Var, d domain) {
	if !d.known() {
		return
	}
	switch cur := u.vars[v]; {
	case cur == domConflict:
	case cur == domUnknown:
		u.vars[v] = d
	case cur != d:
		u.vars[v] = domConflict
	}
}

// check walks one file reporting cross-domain mixes.
func (u *unitsFlow) check(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.BinaryExpr:
		u.checkBinary(n)
	case *ast.CallExpr:
		u.checkCallArgs(n)
	case *ast.CompositeLit:
		u.checkCompositeLit(n)
	}
	return true
}

var mixableOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
}

func (u *unitsFlow) checkBinary(n *ast.BinaryExpr) {
	if !mixableOps[n.Op] {
		return
	}
	dx, dy := u.exprDomain(n.X), u.exprDomain(n.Y)
	if !dx.known() || !dy.known() || dx == dy {
		return
	}
	if !u.pass.Suppressed(n.Pos(), unitsOK) {
		u.pass.Reportf(n.Pos(),
			"%s mixes a %s value with a %s value; convert explicitly (units.DB.Lin, units.LinToDB, or a float64 cast) or annotate //geolint:%s <reason>",
			n.Op, dx, dy, unitsOK)
	}
}

// checkCallArgs compares each argument's domain with the domain of
// the parameter it lands in (from the parameter's type, or its name).
func (u *unitsFlow) checkCallArgs(n *ast.CallExpr) {
	if u.pass.TypesInfo.Types[n.Fun].IsType() {
		return // conversion: an explicit domain reset, never a mix
	}
	sig, ok := u.pass.TypesInfo.TypeOf(n.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range n.Args {
		if i >= params.Len() {
			break
		}
		p := params.At(i)
		if sig.Variadic() && i == params.Len()-1 {
			break // variadic tails are interface-typed in practice
		}
		pd := u.typeDomain(p.Type())
		if !pd.known() {
			pd = nameDomain(p.Name(), p.Type())
		}
		ad := u.exprDomain(arg)
		if !pd.known() || !ad.known() || pd == ad {
			continue
		}
		if !u.pass.Suppressed(arg.Pos(), unitsOK) {
			u.pass.Reportf(arg.Pos(),
				"%s argument %q expects a %s value but receives a %s value; convert explicitly or annotate //geolint:%s <reason>",
				funLabel(n.Fun), p.Name(), pd, ad, unitsOK)
		}
	}
}

// checkCompositeLit compares keyed struct-literal fields with the
// domain of the values assigned to them.
func (u *unitsFlow) checkCompositeLit(n *ast.CompositeLit) {
	t := u.pass.TypesInfo.TypeOf(n)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fields := map[string]*types.Var{}
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i).Name()] = st.Field(i)
	}
	for _, el := range n.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		fld, ok := fields[key.Name]
		if !ok {
			continue
		}
		fd := u.typeDomain(fld.Type())
		if !fd.known() {
			fd = nameDomain(fld.Name(), fld.Type())
		}
		vd := u.exprDomain(kv.Value)
		if !fd.known() || !vd.known() || fd == vd {
			continue
		}
		if !u.pass.Suppressed(kv.Pos(), unitsOK) {
			u.pass.Reportf(kv.Pos(),
				"field %q holds a %s value but is set from a %s value; convert explicitly or annotate //geolint:%s <reason>",
				key.Name, fd, vd, unitsOK)
		}
	}
}

// exprDomain computes the domain of an expression.
func (u *unitsFlow) exprDomain(e ast.Expr) domain {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return u.exprDomain(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return u.exprDomain(e.X)
		}
	case *ast.Ident:
		return u.objDomain(u.pass.TypesInfo.ObjectOf(e))
	case *ast.SelectorExpr:
		return u.objDomain(u.pass.TypesInfo.ObjectOf(e.Sel))
	case *ast.IndexExpr:
		return u.typeDomain(u.pass.TypesInfo.TypeOf(e))
	case *ast.CallExpr:
		if u.pass.TypesInfo.Types[e.Fun].IsType() {
			// A conversion is the explicit escape: its domain is the
			// target type's (none, for float64(x)).
			return u.typeDomain(u.pass.TypesInfo.TypeOf(e))
		}
		// A call's domain comes from its result type ONLY: function
		// names like NoiseVarForSNRdB describe their parameter, not
		// their result.
		return u.typeDomain(u.pass.TypesInfo.TypeOf(e))
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return domUnknown // comparisons yield bool, %, etc. carry nothing
		}
		dx, dy := u.exprDomain(e.X), u.exprDomain(e.Y)
		switch {
		case dx == dy:
			return dx
		case dx.known() && !dy.known():
			return dx
		case dy.known() && !dx.known():
			return dy
		}
		return domUnknown
	}
	if t := u.pass.TypesInfo.TypeOf(e); t != nil {
		return u.typeDomain(t)
	}
	return domUnknown
}

// objDomain resolves an object's domain: type first, then flow, then
// naming convention.
func (u *unitsFlow) objDomain(obj types.Object) domain {
	v, ok := obj.(*types.Var)
	if !ok {
		if c, ok := obj.(*types.Const); ok {
			if d := u.typeDomain(c.Type()); d.known() {
				return d
			}
			return nameDomain(c.Name(), c.Type())
		}
		return domUnknown
	}
	if d := u.typeDomain(v.Type()); d.known() {
		return d
	}
	if d, ok := u.vars[v]; ok {
		return d
	}
	return nameDomain(v.Name(), v.Type())
}

// typeDomain maps defined types of any package named "units" (the
// real internal/units, or a fixture stand-in) to their domain.
func (u *unitsFlow) typeDomain(t types.Type) domain {
	named, ok := t.(*types.Named)
	if !ok {
		return domUnknown
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "units" {
		return domUnknown
	}
	switch obj.Name() {
	case "DB":
		return domDB
	case "Linear":
		return domLin
	case "Hertz":
		return domHz
	}
	return domUnknown
}

// nameDomain applies the repository naming convention to a float-ish
// identifier: *DB/*dB are dB-scale, *Lin/*Linear/*noiseVar are
// linear-scale, *Hz are frequencies.
func nameDomain(name string, t types.Type) domain {
	if !floatLike(t) {
		return domUnknown
	}
	switch {
	case strings.HasSuffix(name, "DB"), strings.HasSuffix(name, "dB"), name == "db":
		return domDB
	case strings.HasSuffix(name, "Lin"), strings.HasSuffix(name, "Linear"),
		strings.HasSuffix(name, "NoiseVar"), strings.HasSuffix(name, "noiseVar"):
		return domLin
	case strings.HasSuffix(name, "Hz"):
		return domHz
	}
	return domUnknown
}

// floatLike reports whether t is a floating-point basic type
// (including untyped float constants), the only carrier the naming
// convention speaks about.
func floatLike(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// funLabel renders a call target for a diagnostic.
func funLabel(fun ast.Expr) string {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return fmt.Sprintf("%s.%s", x.Name, f.Sel.Name)
		}
		return f.Sel.Name
	}
	return "call"
}
