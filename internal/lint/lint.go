// Package lint is geolint: the repository's static-analysis suite.
//
// The parallel frame pipeline and the observability layer rest on
// invariants that plain tests only spot-check:
//
//   - determinism — measurement results must be byte-identical at
//     every worker count, so the deterministic packages must not read
//     the clock, draw from global math/rand, or let map iteration
//     order leak into computation (analyzer "determinism");
//   - hot-path allocation freedom — functions annotated
//     //geolint:noalloc (sphere-decoder detect paths, obs delta-sample
//     emitters) must avoid alloc-prone constructs (analyzer "noalloc");
//   - recorder hygiene — obs.Recorder values are nil-folded through
//     obs.Fold and nil-guarded before use, so an absent recorder costs
//     one branch (analyzer "recorderhygiene");
//   - float determinism — no ==/!= on floating-point or complex
//     values and no math.Pow(x, 2) in the deterministic packages,
//     both of which have bitten PED accumulation code (analyzer
//     "floatdet").
//
// Each analyzer has an escape hatch: a //geolint:<key> <reason>
// comment on the flagged line (or the line above) suppresses the
// diagnostic and documents why. A hatch without a reason is itself a
// diagnostic.
//
// Run the suite with `go run ./cmd/geolint ./...`, or through the
// standard vet driver with `go vet -vettool=$(which geolint) ./...`.
package lint

import (
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Analyzers returns the full geolint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		NoAlloc,
		RecorderHygiene,
		FloatDeterminism,
		Units,
		GoroutineLeak,
		BlockingSend,
		SyncMisuse,
		StaleHatch,
	}
}

// DeterministicPackages lists the import paths whose results must be
// bit-for-bit reproducible: every package on the seeded
// Monte-Carlo path from channel draw to measurement table, plus the
// serving layer (whose detection outcomes are substream-determined
// even though its latency metrics and tier choices are intentionally
// wall-clock/load dependent — those sites carry explicit
// nondeterminism-ok annotations). The determinism and floatdet
// analyzers apply only to these (and to any package carrying a
// //geolint:deterministic file marker, which is how the analyzers' own
// test fixtures opt in).
var DeterministicPackages = []string{
	"repro/internal/channel",
	"repro/internal/core",
	"repro/internal/kbest",
	"repro/internal/link",
	"repro/internal/phy",
	"repro/internal/policy",
	"repro/internal/rng",
	"repro/internal/serve",
	"repro/internal/sim",
}

// isDeterministicPkg reports whether the pass's package is subject to
// the determinism analyzers. External test packages inherit the
// verdict of the package under test.
func isDeterministicPkg(pass *analysis.Pass) bool {
	path := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	for _, p := range DeterministicPackages {
		if path == p {
			return true
		}
	}
	return pass.HasFileDirective("deterministic")
}

// Run applies every analyzer in the suite to every package and
// returns the sorted diagnostics.
func Run(pkgs []*load.Package) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				// Analyzer-internal failures surface as diagnostics at
				// the package's first file, never as silent skips.
				pos := pkg.Files[0].Package
				diags = append(diags, analysis.Diagnostic{Pos: pos, Message: err.Error(), Analyzer: a})
			}
		}
	}
	if len(pkgs) > 0 {
		analysis.SortDiagnostics(pkgs[0].Fset, diags)
	}
	return diags
}
