package lint

import (
	"fmt"

	"repro/internal/lint/analysis"
)

// hatchKeys lists every escape-hatch key the suite understands — the
// keys whose directives silence a diagnostic and therefore can rot.
// Package/function MARKERS (deterministic, concurrent, noalloc) are
// deliberately absent: they opt code in to analyzers rather than
// silencing them, so an "unused" marker is meaningless.
func hatchKeys() map[string]bool {
	return map[string]bool{
		nondetOK:   true,
		allocOK:    true,
		recorderOK: true,
		floatOK:    true,
		unitsOK:    true,
		leakOK:     true,
		blockOK:    true,
		syncOK:     true,
	}
}

// StaleHatch is the suite's self-audit: it re-runs every other
// analyzer over the package with reporting muted, records which
// escape-hatch directives actually suppressed a finding, and flags
// the //geolint:<key> comments that no longer suppress anything. A
// stale hatch is worse than dead weight — it documents a constraint
// the code no longer violates, and it will silently swallow the next,
// different finding that lands on its line.
//
// Escape hatches are attached to the line they silence (or the line
// below the comment), and analyzers only consult them from the same
// package's pass, so a per-package audit is exact — no cross-package
// state is needed. There is intentionally no hatch for this analyzer:
// a stale hatch is fixed by deleting it.
var StaleHatch = &analysis.Analyzer{
	Name: "stalehatch",
	Doc:  "flag escape-hatch comments that no longer suppress any diagnostic",
}

// Run is attached in init: runStaleHatch iterates Analyzers(), which
// contains StaleHatch itself, and Go rejects the direct
// initialization cycle.
func init() { StaleHatch.Run = runStaleHatch }

func runStaleHatch(pass *analysis.Pass) error {
	used := map[string]bool{}
	for _, a := range Analyzers() {
		if a == StaleHatch {
			continue
		}
		sub := &analysis.Pass{
			Analyzer:  a,
			Fset:      pass.Fset,
			Files:     pass.Files,
			Pkg:       pass.Pkg,
			TypesInfo: pass.TypesInfo,
			Report:    func(analysis.Diagnostic) {},
			UsedHatch: func(file string, line int, key string) {
				used[hatchID(file, line, key)] = true
			},
		}
		if err := a.Run(sub); err != nil {
			return fmt.Errorf("stalehatch: re-running %s: %w", a.Name, err)
		}
	}
	keys := hatchKeys()
	for _, f := range pass.Files {
		for _, d := range analysis.FileDirectives(pass.Fset, f) {
			if !keys[d.Key] {
				continue
			}
			if used[hatchID(pass.Fset.Position(d.Pos).Filename, d.Line, d.Key)] {
				continue
			}
			pass.Reportf(d.Pos,
				"stale hatch: //geolint:%s suppresses no diagnostic here any more; delete the comment (it would silently swallow the next finding on this line)",
				d.Key)
		}
	}
	return nil
}

// hatchID keys one directive occurrence.
func hatchID(file string, line int, key string) string {
	return fmt.Sprintf("%s:%d:%s", file, line, key)
}
