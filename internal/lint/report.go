package lint

import (
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Report is the machine-readable result of one suite run, emitted by
// `geolint -json` and archived by CI. Paths are module-relative with
// forward slashes, so a report is byte-identical no matter where the
// module is checked out.
type Report struct {
	Version     int           `json:"version"`
	Diagnostics []ReportDiag  `json:"diagnostics"`
	Hatches     []ReportHatch `json:"hatches"`
}

// ReportDiag is one diagnostic.
type ReportDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ReportHatch is one escape-hatch directive found in the audited
// packages, with whether any analyzer actually consulted it to
// suppress a finding this run.
type ReportHatch struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Key    string `json:"key"`
	Reason string `json:"reason"`
	Used   bool   `json:"used"`
}

// Audit applies the suite like Run and additionally inventories every
// escape hatch in the packages. modDir, when non-empty, is the module
// root that file paths are made relative to.
func Audit(pkgs []*load.Package, modDir string) Report {
	rep := Report{Version: 1, Diagnostics: []ReportDiag{}, Hatches: []ReportHatch{}}
	if len(pkgs) == 0 {
		return rep
	}
	used := map[string]bool{}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				UsedHatch: func(file string, line int, key string) {
					used[hatchID(file, line, key)] = true
				},
			}
			pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				pos := pkg.Files[0].Package
				diags = append(diags, analysis.Diagnostic{Pos: pos, Message: err.Error(), Analyzer: a})
			}
		}
	}
	fset := pkgs[0].Fset
	analysis.SortDiagnostics(fset, diags)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		rep.Diagnostics = append(rep.Diagnostics, ReportDiag{
			File:     relPath(modDir, pos.Filename),
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer.Name,
			Message:  d.Message,
		})
	}
	keys := hatchKeys()
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range analysis.FileDirectives(pkg.Fset, f) {
				if !keys[d.Key] {
					continue
				}
				file := pkg.Fset.Position(d.Pos).Filename
				id := hatchID(file, d.Line, d.Key)
				if seen[id] {
					continue
				}
				seen[id] = true
				rep.Hatches = append(rep.Hatches, ReportHatch{
					File:   relPath(modDir, file),
					Line:   d.Line,
					Key:    d.Key,
					Reason: d.Arg,
					Used:   used[id],
				})
			}
		}
	}
	sort.Slice(rep.Hatches, func(i, j int) bool {
		a, b := rep.Hatches[i], rep.Hatches[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Key < b.Key
	})
	return rep
}

// relPath renders file relative to modDir with forward slashes, or
// cleans it unchanged when it lies outside the module.
func relPath(modDir, file string) string {
	if modDir != "" {
		if r, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
	}
	return filepath.ToSlash(file)
}
