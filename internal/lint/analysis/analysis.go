// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package through a Pass and reports Diagnostics.
//
// The build environment of this repository is hermetic (no module
// proxy), so the real x/tools framework is unavailable; this package
// keeps the same shape — Name/Doc/Run, Pass with Fset/Files/Pkg/
// TypesInfo, Reportf — so the analyzers in internal/lint port directly
// onto x/tools if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's command-line and diagnostic identifier.
	Name string
	// Doc is the analyzer's help text; the first line is its summary.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass carries one type-checked package through one Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic as it is found.
	Report func(Diagnostic)

	// UsedHatch, when non-nil, is called every time Suppressed finds
	// an escape-hatch directive that silences a finding, with the
	// directive's own file, line and key. Drivers use it to tell live
	// hatches from stale ones.
	UsedHatch func(file string, line int, key string)

	// directives caches per-file //geolint: comment directives,
	// built lazily by Directive.
	directives map[*ast.File]map[int]directive
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer})
}

// directive is one parsed //geolint:<key> <argument> comment.
type directive struct {
	key string
	arg string
}

// DirectivePrefix introduces every escape-hatch and annotation comment
// the suite understands: //geolint:<key> <argument>.
const DirectivePrefix = "//geolint:"

// parseDirective splits a comment into a geolint directive, if it is
// one.
func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	key, arg, _ := strings.Cut(rest, " ")
	return directive{key: key, arg: strings.TrimSpace(arg)}, true
}

// buildDirectives indexes every geolint directive in f by the line of
// the comment.
func (p *Pass) buildDirectives(f *ast.File) map[int]directive {
	m := map[int]directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			m[p.Fset.Position(c.Pos()).Line] = d
		}
	}
	return m
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Directive returns the //geolint:<key> directive attached to the
// node at pos — on the same line, or on the line immediately above —
// and whether one exists. The second return value is the directive's
// argument (the human reason or annotation payload).
func (p *Pass) Directive(pos token.Pos, key string) (string, bool) {
	arg, _, ok := p.directiveAt(pos, key)
	return arg, ok
}

// directiveAt is Directive plus the line the directive itself sits on
// (which may be the line above pos).
func (p *Pass) directiveAt(pos token.Pos, key string) (string, int, bool) {
	f := p.fileOf(pos)
	if f == nil {
		return "", 0, false
	}
	if p.directives == nil {
		p.directives = map[*ast.File]map[int]directive{}
	}
	m, ok := p.directives[f]
	if !ok {
		m = p.buildDirectives(f)
		p.directives[f] = m
	}
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		if d, ok := m[l]; ok && d.key == key {
			return d.arg, l, true
		}
	}
	return "", 0, false
}

// Suppressed reports whether the finding at pos is silenced by a
// //geolint:<key> escape-hatch directive. A directive with an empty
// argument does not suppress: every escape hatch must state a reason,
// and a bare one is itself reported. Every hit is recorded through
// UsedHatch so drivers can flag hatches that no longer fire.
func (p *Pass) Suppressed(pos token.Pos, key string) bool {
	arg, line, ok := p.directiveAt(pos, key)
	if !ok {
		return false
	}
	if p.UsedHatch != nil {
		p.UsedHatch(p.Fset.Position(pos).Filename, line, key)
	}
	if arg == "" {
		p.Reportf(pos, "%s%s must give a reason", DirectivePrefix, key)
		// Report the missing reason once, but still treat the finding
		// as suppressed so one mistake yields one diagnostic.
		return true
	}
	return true
}

// DirectiveInfo is one //geolint:<key> <argument> comment, as
// enumerated by FileDirectives.
type DirectiveInfo struct {
	Pos  token.Pos
	Line int
	Key  string
	Arg  string
}

// FileDirectives lists every geolint directive in f in source order,
// for drivers that audit the directives themselves (stale-hatch
// detection, machine-readable reports).
func FileDirectives(fset *token.FileSet, f *ast.File) []DirectiveInfo {
	var out []DirectiveInfo
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			out = append(out, DirectiveInfo{
				Pos:  c.Pos(),
				Line: fset.Position(c.Pos()).Line,
				Key:  d.key,
				Arg:  d.arg,
			})
		}
	}
	return out
}

// HasFileDirective reports whether any file of the pass carries a
// //geolint:<key> directive anywhere (used for package-level markers
// such as //geolint:deterministic).
func (p *Pass) HasFileDirective(key string) bool {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := parseDirective(c.Text); ok && d.key == key {
					return true
				}
			}
		}
	}
	return false
}

// WithStack walks every file of the pass in source order, calling fn
// with each node and the stack of its ancestors (outermost first, not
// including the node itself). Returning false skips the node's
// children. ast.Inspect's f(nil) close calls balance the stack: they
// arrive exactly once per node whose children were visited.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}

// SortDiagnostics orders diagnostics by position, then analyzer name.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer.Name < diags[j].Analyzer.Name
	})
}
