// Package a exercises the floatdet analyzer: float/complex equality
// and math.Pow(x, 2) are flagged in deterministic packages; integer
// comparisons, tolerance checks and annotated escapes are not.
//
//geolint:deterministic
package a

import "math"

func cmp(a, b float64, c, d complex128) bool {
	if a == b { // want `== on floating-point values is not reproducible`
		return true
	}
	if c != d { // want `!= on floating-point values is not reproducible`
		return true
	}
	if a != 0 { // want `!= on floating-point values is not reproducible`
		return true
	}
	return math.Abs(a-b) < 1e-12
}

func cmpAllowed(mag2 float64) bool {
	return mag2 == 0 //geolint:float-ok exact-zero test detects a rank-deficient channel
}

func cmpInts(a, b int64) bool {
	return a == b
}

type stats struct{ n, m int64 }

func cmpStructs(a, b stats) bool {
	return a == b
}

func pow(x float64) (float64, float64, float64, float64) {
	a := math.Pow(x, 2)   // want `math.Pow\(x, 2\) in a hot path`
	b := math.Pow(x, 2.0) // want `math.Pow\(x, 2\) in a hot path`
	c := math.Pow(x, 3)
	d := math.Pow(x, 2) //geolint:float-ok table generation, not a hot path
	return a, b, c, d
}

// Constant folding is deterministic.
func constCmp() bool {
	return 1.5 == 3.0/2.0
}
