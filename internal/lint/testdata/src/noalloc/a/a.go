// Package a exercises the noalloc analyzer: annotated functions are
// rejected for alloc-prone constructs, unannotated functions are
// ignored, and //geolint:alloc-ok suppresses cold paths.
package a

import "fmt"

type sink interface{ consume() }

type box struct{ v int }

func (b box) consume() {}

type ring struct {
	buf  []int
	tags []string
}

// hot is the annotated function with one of everything.
//
//geolint:noalloc
func (r *ring) hot(name string, xs []int, s sink) string {
	fmt.Println(name)                     // want `fmt.Println allocates`
	msg := name + "!"                     // want `string concatenation allocates`
	f := func() int { return len(r.buf) } // want `closures capture variables`
	_ = f
	r.buf = append(r.buf, 1)
	xs = append(xs, 2)          // want `append to xs, which the receiver does not own`
	m := map[string]int{"a": 1} // want `map literal allocates`
	_ = m
	sl := []int{1, 2, 3} // want `slice literal allocates`
	_ = sl
	p := &box{v: 3} // want `address of composite literal allocates`
	_ = p
	q := make([]int, 4) // want `make allocates`
	_ = q
	s = box{v: 5} // want `converting box{…}.* boxes the value`
	s.consume()
	return msg
}

// hotOK is annotated and clean: receiver-owned appends, struct
// literals, pointer-to-interface conversions and arithmetic are all
// allowed.
//
//geolint:noalloc
func (r *ring) hotOK(s sink, pb *box) int {
	r.buf = append(r.buf, len(r.buf))
	b := box{v: 1} // struct literal on the stack: fine
	_ = b
	s = pb // pointer into interface: no boxing
	s.consume()
	total := 0
	for _, v := range r.buf {
		total += v
	}
	return total
}

// hotColdPath is annotated; its lazy-growth and error paths are
// suppressed line by line.
//
//geolint:noalloc
func (r *ring) hotColdPath(dst []int) ([]int, error) {
	if dst == nil {
		dst = make([]int, len(r.buf)) //geolint:alloc-ok lazy growth on first use only
	}
	if len(dst) != len(r.buf) {
		return nil, fmt.Errorf("bad dst length %d", len(dst)) //geolint:alloc-ok error path is cold
	}
	copy(dst, r.buf)
	return dst, nil
}

// cold is unannotated: nothing is flagged.
func cold() []int {
	fmt.Println("cold")
	return []int{1, 2, 3}
}

// sum is variadic: calling it from an annotated function allocates
// the argument slice unless forwarded.
func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

//geolint:noalloc
func (r *ring) hotVariadic(xs []int) int {
	a := sum(1, 2, 3) // want `variadic call allocates its argument slice`
	b := sum(xs...)
	return a + b
}

//geolint:noalloc
func (r *ring) hotReturn() sink {
	return box{v: 9} // want `boxes the value`
}
