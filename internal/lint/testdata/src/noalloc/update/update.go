// Package update mirrors the hot shapes introduced by the
// redundancy-free search rebuild — incremental re-preparation
// (core.PreparedChannel.tryUpdate, cmplxmat.QRUpdateInto), the
// projection-stack serve (ytildeAt) and the batched SoA sweep
// (phy.Link.detectOne) — so the noalloc analyzer's treatment of their
// patterns is pinned: cap-gated scratch growth and error constructors
// need the alloc-ok waiver, one-hot scratch writes and pure index
// arithmetic are free, and untagged growth on the hot path is flagged.
package update

import "fmt"

type cache struct {
	epoch      uint64
	ucol, vcol []float64
	proj       []float64
	depth      []int
	rows       [][]float64
	path       []float64
}

// tryUpdate mirrors the guard-then-update shape: early returns on the
// guards, amortized cap-gated scratch growth behind an alloc-ok
// waiver, and the one-hot set/reset of receiver-owned scratch.
//
//geolint:noalloc
func (c *cache) tryUpdate(h []float64) bool {
	if c.epoch == 0 || len(h) != len(c.proj) {
		return false
	}
	if cap(c.ucol) < len(h) {
		c.ucol = make([]float64, len(h)) //geolint:alloc-ok sized once per shape, amortized over the update chain
	}
	c.ucol = c.ucol[:len(h)]
	for i := range h {
		c.ucol[i] = h[i] - c.proj[i]
	}
	c.vcol[0] = 1
	c.vcol[0] = 0
	c.epoch++
	return true
}

// serve mirrors the projection-stack serve: reuse the deepest valid
// prefix, extend it downward in place, publish the new frontier —
// pure index arithmetic over receiver-owned state.
//
//geolint:noalloc
func (c *cache) serve(l, n int) float64 {
	p := c.depth[l]
	row := c.rows[l]
	f := c.proj[p*n+l]
	for p > l+1 {
		p--
		f -= row[p] * c.path[p]
		c.proj[p*n+l] = f
	}
	c.depth[l] = l + 1
	return f
}

// detectOne mirrors the batched sweep's per-observation step: the
// error constructor is the tagged cold path, the accounting loop is
// free.
//
//geolint:noalloc
func (c *cache) detectOne(idx []int, y []float64) error {
	if len(idx) != len(y) {
		return fmt.Errorf("update: %d decisions for %d observations", len(idx), len(y)) //geolint:alloc-ok error path
	}
	for k := range y {
		if y[k] < 0 {
			idx[k] = -1
		}
	}
	return nil
}

// growUntagged is the regression these fixtures exist to catch:
// scratch growth on the hot path without the waiver must be flagged.
//
//geolint:noalloc
func (c *cache) growUntagged(n int) {
	c.ucol = make([]float64, n) // want `make allocates`
}
