// Package a exercises the units analyzer: arithmetic, comparisons,
// call arguments and composite-literal fields mixing dB-scale,
// linear-scale and frequency values are flagged; explicit conversions
// and annotated escapes are not.
package a

import "units"

// noiseVarFor's parameter name marks its domain: callers must hand it
// a dB-scale value.
func noiseVarFor(snrdB float64) float64 { return snrdB }

type opts struct {
	SNRdB    float64
	noiseVar float64
	DoppHz   float64
}

func mixedArithmetic(snrdB, noiseVar, widthHz float64) {
	_ = snrdB + noiseVar  // want `\+ mixes a dB-scale value with a linear-scale value`
	_ = snrdB * widthHz   // want `\* mixes a dB-scale value with a frequency value`
	_ = noiseVar - snrdB  // want `- mixes a linear-scale value with a dB-scale value`
	if snrdB > noiseVar { // want `> mixes a dB-scale value with a linear-scale value`
		return
	}
	_ = snrdB + snrdB             // same domain: fine
	_ = widthHz * 2               // constants carry no domain: fine
	_ = snrdB + float64(noiseVar) // explicit conversion resets the domain: fine
}

func flowCarriesDomain(o opts) {
	snr := o.SNRdB   // flow: snr inherits dB from the field it came from
	nv := o.noiseVar // flow: nv inherits linear
	_ = snr + nv     // want `\+ mixes a dB-scale value with a linear-scale value`
}

func conflictingFlowErases(o opts, pick bool) {
	x := o.SNRdB
	if pick {
		x = o.noiseVar // conflicting domains: x degrades to unknown
	}
	_ = x + o.SNRdB // no flag: x's domain is conflicted
}

func callArguments(o opts) {
	_ = noiseVarFor(o.noiseVar) // want `noiseVarFor argument "snrdB" expects a dB-scale value but receives a linear-scale value`
	_ = noiseVarFor(o.SNRdB)    // matching domain: fine
	_ = noiseVarFor(3.0)        // constants carry no domain: fine
}

func compositeFields(noiseVar float64) opts {
	return opts{
		SNRdB:    noiseVar, // want `field "SNRdB" holds a dB-scale value but is set from a linear-scale value`
		noiseVar: noiseVar,
	}
}

// Call results take the domain of the RESULT TYPE only — the trailing
// "dB" in a function's name describes its parameter, not its value.
func resultTypeNotName(o opts) {
	nv := noiseVarFor(o.SNRdB) // nv is unknown: float64 result, name ignored
	_ = nv + o.SNRdB           // no flag
}

func typedFlow(o opts) {
	lin := units.DB(o.SNRdB).Lin() // typed: units.Linear
	erased := float64(lin)         // conversion is the sanctioned escape
	_ = erased + o.SNRdB           // no flag
}

func suppressed(snrdB, noiseVar float64) {
	_ = snrdB + noiseVar //geolint:units-ok adding a dB offset to a cached linear table index, verified by conformance test
}
