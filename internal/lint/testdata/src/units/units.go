// Package units is the fixture stand-in for repro/internal/units: the
// units analyzer recognizes defined types DB/Linear/Hertz from any
// package named "units", so the fixtures can exercise typed seeding
// without importing the real module.
package units

type DB float64

type Linear float64

type Hertz float64

func (d DB) Lin() Linear { return Linear(d) }

func LinToDB(l Linear) DB { return DB(l) }
