// Package a exercises the determinism analyzer: clock reads, global
// math/rand draws, unblessed rand.New seeding and map iteration are
// flagged; rng-derived seeds and annotated escapes are not.
//
//geolint:deterministic
package a

import (
	"math/rand"
	"sort"
	"time"

	"rng"
)

// Clock reads.
func clock() (time.Time, time.Duration) {
	start := time.Now()    // want `time.Now reads the wall clock`
	d := time.Since(start) // want `time.Since reads the wall clock`
	return start, d
}

// The frame loop may time itself for observability samples.
func clockAllowed() time.Duration {
	start := time.Now() //geolint:nondeterminism-ok duration only feeds the observability sample
	//geolint:nondeterminism-ok duration only feeds the observability sample
	return time.Since(start)
}

func clockNoReason() time.Time {
	//geolint:nondeterminism-ok
	return time.Now() // want `must give a reason`
}

// Global math/rand draws.
func globalDraws() (int, float64) {
	n := rand.Int()                    // want `rand.Int draws from the process-global source`
	f := rand.Float64()                // want `rand.Float64 draws from the process-global source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand.Shuffle draws from the process-global source`
	return n, f
}

// Seeding discipline.
func seeding(seed int64) (*rand.Rand, *rand.Rand, *rand.Rand) {
	bad := rand.New(rand.NewSource(42)) // want `rand.New seeded outside the rng substream discipline`
	good := rand.New(rand.NewSource(rng.SubSeed(seed, 7)))
	eh := rand.New(rand.NewSource(seed)) //geolint:nondeterminism-ok seed flows in from the caller's substream
	return bad, good, eh
}

// Map iteration order.
func mapIter(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `range over map m has randomized iteration order`
		sum += v
	}
	return sum
}

func mapIterSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //geolint:nondeterminism-ok keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Slices and channels range deterministically.
func sliceIter(xs []int) int {
	sum := 0
	for _, v := range xs {
		sum += v
	}
	return sum
}
