// Package free has no //geolint:deterministic marker: the determinism
// and floatdet analyzers must ignore it entirely.
package free

import (
	"math/rand"
	"time"
)

func anythingGoes(a, b float64) (time.Time, int, bool) {
	return time.Now(), rand.Int(), a == b
}

func mapIter(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
