// Package obs is a fixture stub of repro/internal/obs with the
// surface the recorderhygiene analyzer keys on.
package obs

// Sample is a placeholder observation payload.
type Sample struct{ N int64 }

// Recorder mirrors the real four-method interface.
type Recorder interface {
	RecordDetect(Sample)
	RecordDecode(Sample)
	RecordFrame(Sample)
	RecordPoint(Sample)
}

// Nop discards everything.
type Nop struct{}

// RecordDetect implements Recorder.
func (Nop) RecordDetect(Sample) {}

// RecordDecode implements Recorder.
func (Nop) RecordDecode(Sample) {}

// RecordFrame implements Recorder.
func (Nop) RecordFrame(Sample) {}

// RecordPoint implements Recorder.
func (Nop) RecordPoint(Sample) {}

// Fold nil-folds r: Nop collapses to nil.
func Fold(r Recorder) Recorder {
	if _, ok := r.(Nop); ok {
		return nil
	}
	return r
}
