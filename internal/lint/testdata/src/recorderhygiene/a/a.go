// Package a exercises the recorderhygiene analyzer: SetRecorder
// implementations must nil-fold through obs.Fold (or delegate), and
// Record* calls on obs.Recorder values need a dominating nil guard.
package a

import "obs"

type detector struct {
	rec obs.Recorder
}

// SetRecorder folds: accepted.
func (d *detector) SetRecorder(r obs.Recorder) { d.rec = obs.Fold(r) }

type rawDetector struct {
	rec obs.Recorder
}

// SetRecorder stores the recorder raw: flagged.
func (d *rawDetector) SetRecorder(r obs.Recorder) { // want `SetRecorder stores its Recorder without nil-folding`
	d.rec = r
}

type wrapper struct {
	inner *detector
}

// SetRecorder delegates: the callee folds.
func (w *wrapper) SetRecorder(r obs.Recorder) { w.inner.SetRecorder(r) }

type legacy struct {
	rec obs.Recorder
}

// SetRecorder is grandfathered with a reason.
//
//geolint:recorder-ok callers hand in pre-folded recorders
func (l *legacy) SetRecorder(r obs.Recorder) {
	l.rec = r
}

func (d *detector) emitGuarded(s obs.Sample) {
	if d.rec != nil {
		d.rec.RecordDetect(s)
	}
}

func (d *detector) emitEarlyReturn(s obs.Sample) {
	if d.rec == nil {
		return
	}
	d.rec.RecordDetect(s)
	d.rec.RecordFrame(s)
}

func (d *detector) emitUnguarded(s obs.Sample) {
	d.rec.RecordDetect(s) // want `RecordDetect on an obs.Recorder without a nil guard`
}

func (d *detector) emitConjoined(s obs.Sample, on bool) {
	if on && d.rec != nil {
		d.rec.RecordPoint(s)
	}
}

func (d *detector) emitWrongGuard(s obs.Sample, other obs.Recorder) {
	if other != nil {
		d.rec.RecordDecode(s) // want `RecordDecode on an obs.Recorder without a nil guard`
	}
}

func (d *detector) emitGuardDoesNotCrossFuncs(s obs.Sample) func() {
	if d.rec == nil {
		return nil
	}
	return func() {
		d.rec.RecordFrame(s) // want `RecordFrame on an obs.Recorder without a nil guard`
	}
}

func (d *detector) emitAnnotated(s obs.Sample) {
	d.rec.RecordDetect(s) //geolint:recorder-ok caller guarantees a recorder is attached
}

// Concrete recorder types are out of scope: a *stats value is never a
// folded-away interface.
type stats struct{ n int64 }

func (s *stats) RecordDetect(obs.Sample) { s.n++ }

func useConcrete(s *stats, x obs.Sample) {
	s.RecordDetect(x)
}
