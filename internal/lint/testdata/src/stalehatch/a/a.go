// Package a exercises the stalehatch analyzer: an escape hatch that
// still suppresses a finding passes silently; a hatch whose finding
// has evaporated is itself flagged.
//
//geolint:deterministic
package a

// live's hatch is consulted by floatdet (float equality in a
// deterministic package), so it is in use.
func live(a, b float64) bool {
	return a == b //geolint:float-ok exact golden comparison pinned by the conformance suite
}

// stale's hatch silences nothing: integer equality is exact and
// floatdet never fires here.
func stale(a, b int) bool {
	return a == b //geolint:float-ok integers compare exactly, nothing fires — want `stale hatch: //geolint:float-ok suppresses no diagnostic here any more`
}
