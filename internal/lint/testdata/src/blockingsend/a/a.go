// Package a exercises the blockingsend analyzer: selects consisting
// solely of send cases (no default, no receive) are flagged; selects
// that shed via default or observe shutdown via a receive are not.
//
//geolint:concurrent
package a

func admit(out chan int, done chan struct{}) {
	select { // want `select only sends`
	case out <- 1:
	}

	select { // want `select only sends`
	case out <- 1:
	case out <- 2:
	}

	// A default bounds the wait: overload sheds instead of blocking.
	select {
	case out <- 1:
	default:
	}

	// A receive case observes shutdown.
	select {
	case out <- 1:
	case <-done:
	}

	// Receive-only selects are the consumer side; not this analyzer's
	// concern.
	select {
	case <-done:
	}

	//geolint:block-ok the consumer is joined after this send by construction
	select {
	case out <- 1:
	}
}
