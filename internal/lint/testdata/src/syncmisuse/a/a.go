// Package a exercises the syncmisuse analyzer: by-value receivers,
// parameters and assignment copies of mutex-bearing types are flagged,
// as are pointer-receiver methods that write sibling fields of a
// mutex-bearing struct without ever locking; pointer plumbing, *Locked
// helpers and locking methods are not.
//
//geolint:concurrent
package a

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int
	hits int
}

func (c counter) badReceiver() int { // want `passes a lock by value`
	return c.n
}

func (c *counter) incr() {
	c.n++ // want `writes c\.n without holding the struct's mutex`
}

func (c *counter) set(v int) {
	c.hits = v // want `writes c\.hits without holding the struct's mutex`
}

// Any acquisition in the body marks the method mutex-aware.
func (c *counter) incrSafe() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// The *Locked suffix says the caller holds the lock.
func (c *counter) bumpLocked() {
	c.n++
}

func snapshot(c counter) int { // want `passes a lock by value`
	return c.n
}

func snapshotPtr(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func literals() {
	f := func(c counter) int { // want `passes a lock by value`
		return c.n
	}
	_ = f
}

func dup(c *counter) int {
	d := *c // want `copies a lock`
	return d.n
}

// A fresh composite literal is initialization, not a copy.
func fresh() *counter {
	c := counter{}
	return &c
}

func snapshotQuiesced(c counter) int { //geolint:sync-ok read-only snapshot of a quiesced counter under test harness control
	return c.n
}

// ringCursor models the MPSC ring's consumer cursor: an RWMutex-
// bearing struct whose pop path advances an unguarded field. The
// analyzer must flag the bare write — the real ring's single-consumer
// fast path is exactly this shape and carries an explicit sync-ok
// hatch for it.
type ringCursor struct {
	mu   sync.RWMutex
	head uint64
}

func (r *ringCursor) pop() {
	r.head++ // want `writes r\.head without holding the struct's mutex`
}

func (r *ringCursor) popSanctioned() {
	r.head++ //geolint:sync-ok single-consumer private cursor: producers read an atomic mirror instead
}
