// Package a exercises the goleak analyzer: goroutines whose bodies
// loop forever with no loop-level exit are flagged; loops with a
// return, a labeled break, a channel range, or a terminating condition
// are not.
//
//geolint:concurrent
package a

func spawn(work chan int, done chan struct{}) {
	go func() {
		for { // want `goroutine loops forever`
			<-work
		}
	}()

	// The classic shutdown bug: break exits the select, not the loop.
	go func() {
		for { // want `goroutine loops forever`
			select {
			case <-work:
			case <-done:
				break
			}
		}
	}()

	// A nested closure's return is the closure's exit, not the loop's.
	go func() {
		for { // want `goroutine loops forever`
			f := func() { return }
			f()
		}
	}()

	// return escapes the loop.
	go func() {
		for {
			select {
			case <-work:
			case <-done:
				return
			}
		}
	}()

	// A labeled break escapes the loop even from inside a select.
	go func() {
	drain:
		for {
			select {
			case <-work:
			case <-done:
				break drain
			}
		}
	}()

	// Ranging over a channel ends when the channel closes: the
	// session layer's shutdown idiom.
	go func() {
		for v := range work {
			_ = v
		}
	}()

	// A terminating condition is an exit.
	go func() {
		for i := 0; i < 8; i++ {
			_ = i
		}
	}()

	// panic escapes (crash-only worker).
	go func() {
		for {
			if _, ok := <-work; !ok {
				panic("feed closed")
			}
		}
	}()

	go func() {
		for { //geolint:leak-ok process-lifetime drainer by design; reaped by the runtime at exit
			<-work
		}
	}()
}
