// Package rng is a fixture stub of repro/internal/rng: the sanctioned
// seed-derivation API the determinism analyzer recognizes.
package rng

// SubSeed derives a substream seed from (seed, index).
func SubSeed(seed, index int64) int64 { return seed ^ index }
