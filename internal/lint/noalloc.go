package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// NoAlloc checks functions annotated //geolint:noalloc (on the line
// above the declaration, conventionally the last line of the doc
// comment) for alloc-prone constructs: fmt calls, string
// concatenation, closures, append to a slice the receiver does not
// own, make/new, map and slice literals, address-of composite
// literals, variadic calls, and implicit conversions of non-pointer
// values to interfaces.
//
// The check is syntactic, not an escape analysis: it cannot prove a
// function allocation-free (testing.AllocsPerRun guards do that), but
// it rejects the constructs that historically regressed the detect
// hot paths. Cold paths inside an annotated function (error returns,
// lazy growth) are suppressed line-by-line with
// //geolint:alloc-ok <reason>.
var NoAlloc = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reject alloc-prone constructs in functions annotated //geolint:noalloc",
	Run:  runNoAlloc,
}

const (
	noallocKey = "noalloc"
	allocOK    = "alloc-ok"
)

func runNoAlloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, annotated := pass.Directive(fn.Pos(), noallocKey); !annotated {
				continue
			}
			checkNoAlloc(pass, fn)
		}
	}
	return nil
}

// checkNoAlloc walks one annotated function body.
func checkNoAlloc(pass *analysis.Pass, fn *ast.FuncDecl) {
	recv := receiverName(fn)
	sig, _ := pass.TypesInfo.Defs[fn.Name].Type().(*types.Signature)
	report := func(n ast.Node, format string, args ...any) bool {
		if pass.Suppressed(n.Pos(), allocOK) {
			return false
		}
		pass.Reportf(n.Pos(), "%s is annotated //geolint:%s: "+format,
			append([]any{fn.Name.Name, noallocKey}, args...)...)
		return true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closures capture variables and may allocate")
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n)) {
				report(n, "string concatenation allocates")
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					return !report(n, "map literal allocates")
				case *types.Slice:
					return !report(n, "slice literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, lit := n.X.(*ast.CompositeLit); lit {
					report(n, "address of composite literal allocates")
					return false
				}
			}
		case *ast.CallExpr:
			return !checkNoAllocCall(pass, n, recv, report)
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					checkIfaceConv(pass, n.Rhs[i], pass.TypesInfo.TypeOf(lhs), report)
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					checkIfaceConv(pass, res, sig.Results().At(i).Type(), report)
				}
			}
		}
		return true
	})
}

// checkNoAllocCall handles one call inside an annotated function and
// reports whether the node was flagged (its subtree is then skipped).
func checkNoAllocCall(pass *analysis.Pass, call *ast.CallExpr, recv string, report func(ast.Node, string, ...any) bool) bool {
	// Conversions: T(x). Flag only conversions into interface types.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return checkIfaceConv(pass, call.Args[0], tv.Type, report)
		}
		return false
	}
	// Builtins.
	if ident := calleeIdent(call.Fun); ident != nil {
		if _, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); isBuiltin {
			switch ident.Name {
			case "append":
				if len(call.Args) > 0 && !ownedByReceiver(call.Args[0], recv) {
					return report(call, "append to %s, which the receiver does not own, may allocate",
						types.ExprString(call.Args[0]))
				}
			case "make", "new":
				return report(call, "%s allocates", ident.Name)
			}
			return false
		}
	}
	// fmt.* is the classic hot-path allocation.
	if pkgPath, name, ok := pkgFuncOf(pass, call); ok && pkgPath == "fmt" {
		return report(call, "fmt.%s allocates (formatting boxes its operands)", name)
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	// Variadic calls build their argument slice unless it is passed
	// through with f(xs...).
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		if report(call, "variadic call allocates its argument slice") {
			return true
		}
	}
	// Implicit interface conversions at the call boundary.
	flagged := false
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok && call.Ellipsis == token.NoPos {
				pt = s.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if checkIfaceConv(pass, arg, pt, report) {
			flagged = true
		}
	}
	return flagged
}

// checkIfaceConv reports when assigning expr to a target of interface
// type boxes a non-pointer value (an allocation).
func checkIfaceConv(pass *analysis.Pass, expr ast.Expr, target types.Type, report func(ast.Node, string, ...any) bool) bool {
	if target == nil {
		return false
	}
	if _, iface := target.Underlying().(*types.Interface); !iface {
		return false
	}
	at := pass.TypesInfo.TypeOf(expr)
	if at == nil {
		return false
	}
	if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		// Already an interface, or pointer-shaped: conversion is free.
		return false
	}
	return report(expr, "converting %s (type %s) to interface %s boxes the value and allocates",
		types.ExprString(expr), at, target)
}

// receiverName returns the name of fn's receiver, or "".
func receiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}

// ownedByReceiver reports whether expr is a selector/index chain
// rooted at the method receiver (e.g. e.queue, d.buf[i]) — the only
// slices an annotated method may append to, because their capacity is
// provisioned by Prepare-style setup.
func ownedByReceiver(expr ast.Expr, recv string) bool {
	if recv == "" {
		return false
	}
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name == recv
		default:
			return false
		}
	}
}

func calleeIdent(fun ast.Expr) *ast.Ident {
	if p, ok := fun.(*ast.ParenExpr); ok {
		return calleeIdent(p.X)
	}
	ident, _ := fun.(*ast.Ident)
	return ident
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
