// Package load type-checks Go packages from source using only the
// standard library, for consumption by the internal/lint analyzers.
//
// It resolves imports three ways, in order: paths inside the current
// module map to module directories; paths under an extra source root
// (the analysistest testdata/src convention) map there; everything
// else — in practice the standard library — goes through the
// compiler's source importer. No module proxy, export data, or
// network access is required, which is what lets the suite run in the
// hermetic build environment.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package, syntax included.
type Package struct {
	// PkgPath is the package's import path ("repro/internal/core",
	// or "repro/internal/core_test" for an external test package).
	PkgPath string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions every file of every package of one Loader.
	Fset *token.FileSet
	// Files is the parsed syntax, with comments.
	Files []*ast.File
	// Types and TypesInfo are the type-checker's output.
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects type-checking problems; analyses still run
	// on partial information.
	TypeErrors []error
}

// Loader loads and type-checks packages.
type Loader struct {
	// Fset receives all file positions.
	Fset *token.FileSet
	// ModulePath and ModuleDir describe the enclosing module:
	// ModulePath-prefixed imports resolve under ModuleDir.
	ModulePath string
	ModuleDir  string
	// ExtraRoot, when non-empty, is a directory from which any
	// otherwise-unresolved import path is tried first (before the
	// standard library), mirroring analysistest's testdata/src GOPATH.
	ExtraRoot string
	// IncludeTests merges _test.go files of the package itself into
	// the loaded syntax and also yields external (package foo_test)
	// test packages.
	IncludeTests bool

	std   types.Importer
	cache map[string]*types.Package
	// loading guards against import cycles.
	loading map[string]bool
}

// NewLoader returns a Loader rooted at the module with the given path
// and directory.
func NewLoader(modulePath, moduleDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*types.Package{},
		loading:    map[string]bool{},
	}
}

// ModuleInfo locates the enclosing go.mod starting at dir and returns
// the module path and root directory.
func ModuleInfo(dir string) (modPath, modDir string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), d, nil
				}
			}
			return "", "", fmt.Errorf("load: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("load: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// goFilesIn lists the buildable .go sources of dir, split into
// package files, in-package test files, and external test files.
func goFilesIn(dir string) (srcs, tests, xtests []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		if skipByBuildTag(path) {
			continue
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			srcs = append(srcs, path)
		case packageNameOf(path) != "" && strings.HasSuffix(packageNameOf(path), "_test"):
			xtests = append(xtests, path)
		default:
			tests = append(tests, path)
		}
	}
	sort.Strings(srcs)
	sort.Strings(tests)
	sort.Strings(xtests)
	return srcs, tests, xtests, nil
}

// skipByBuildTag reports whether the file opts out of the default
// build via a //go:build constraint. Constraint evaluation is
// deliberately crude: any //go:build line other than unconditional
// GOOS-independent truisms excludes the file. The repository's own
// sources carry no build tags; this exists so stray ignore-tagged
// files don't break loading.
func skipByBuildTag(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return true
	}
	for _, line := range strings.Split(string(data), "\n") {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, "//go:build ") {
			return true
		}
		if strings.HasPrefix(t, "package ") {
			break
		}
	}
	return false
}

// packageNameOf extracts the package clause identifier of a file.
func packageNameOf(path string) string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly)
	if err != nil {
		return ""
	}
	return f.Name.Name
}

func (l *Loader) parse(paths []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(paths))
	for _, p := range paths {
		f, err := parser.ParseFile(l.Fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// check type-checks files as package pkgPath. selfPkg, when non-nil,
// pre-resolves an import of selfPath (the external-test case, where
// "foo_test" imports "foo" and must see the test-augmented package).
func (l *Loader) check(pkgPath string, files []*ast.File, selfPath string, selfPkg *types.Package) (*types.Package, *types.Info, []error) {
	var terrs []error
	imp := importerFunc(func(path string) (*types.Package, error) {
		if selfPkg != nil && path == selfPath {
			return selfPkg, nil
		}
		return l.Import(path)
	})
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	info := newInfo()
	pkg, _ := conf.Check(pkgPath, l.Fset, files, info)
	return pkg, info, terrs
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// dirFor maps an import path to a source directory, or "" if the path
// is not module-local (and not under ExtraRoot).
func (l *Loader) dirFor(path string) string {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
		}
	}
	if l.ExtraRoot != "" {
		dir := filepath.Join(l.ExtraRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
	}
	return ""
}

// Import resolves an import path to a type-checked package (without
// retaining syntax), for use while checking a dependent package.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return l.std.Import(path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	srcs, _, _, err := goFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %q: %w", path, err)
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("load: no Go files for %q in %s", path, dir)
	}
	files, err := l.parse(srcs)
	if err != nil {
		return nil, err
	}
	pkg, _, terrs := l.check(path, files, "", nil)
	if len(terrs) > 0 {
		return pkg, fmt.Errorf("load: type errors in %q: %v", path, terrs[0])
	}
	l.cache[path] = pkg
	return pkg, nil
}

// LoadDir loads the package rooted at dir (which must resolve to
// import path pkgPath). With IncludeTests, the returned slice holds
// the test-augmented package first, then the external test package if
// one exists.
func (l *Loader) LoadDir(dir, pkgPath string) ([]*Package, error) {
	srcs, tests, xtests, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	var out []*Package
	primary := srcs
	if l.IncludeTests {
		primary = append(append([]string{}, srcs...), tests...)
	}
	if len(primary) == 0 {
		return nil, nil
	}
	files, err := l.parse(primary)
	if err != nil {
		return nil, err
	}
	pkg, info, terrs := l.check(pkgPath, files, "", nil)
	out = append(out, &Package{
		PkgPath: pkgPath, Dir: dir, Fset: l.Fset,
		Files: files, Types: pkg, TypesInfo: info, TypeErrors: terrs,
	})
	if l.IncludeTests && len(xtests) > 0 {
		xfiles, err := l.parse(xtests)
		if err != nil {
			return nil, err
		}
		// The external test package imports the test-augmented self
		// package, matching the go test build graph.
		xpkg, xinfo, xerrs := l.check(pkgPath+"_test", xfiles, pkgPath, pkg)
		out = append(out, &Package{
			PkgPath: pkgPath + "_test", Dir: dir, Fset: l.Fset,
			Files: xfiles, Types: xpkg, TypesInfo: xinfo, TypeErrors: xerrs,
		})
	}
	return out, nil
}

// Expand resolves command-line patterns ("./...", "./cmd/geolint",
// "internal/lint") into package directories under the module root.
// Directories named testdata, hidden directories, and directories
// without Go files are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if seen[dir] {
			return
		}
		srcs, tests, xtests, err := goFilesIn(dir)
		if err != nil || len(srcs)+len(tests)+len(xtests) == 0 {
			return
		}
		seen[dir] = true
		dirs = append(dirs, dir)
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(l.ModuleDir, root)
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// PathFor maps a module-local directory back to its import path.
func (l *Loader) PathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("load: %s is outside module %s", dir, l.ModuleDir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Load expands patterns and loads every matched package.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkgPath, err := l.PathFor(dir)
		if err != nil {
			return nil, err
		}
		pkgs, err := l.LoadDir(dir, pkgPath)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", dir, err)
		}
		out = append(out, pkgs...)
	}
	return out, nil
}
