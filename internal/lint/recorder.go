package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// RecorderHygiene enforces the two rules that make an absent recorder
// free:
//
//  1. Every SetRecorder(obs.Recorder) implementation must nil-fold its
//     argument through obs.Fold (or delegate to another component's
//     SetRecorder), so obs.Nop and empty Multis collapse to nil and
//     the hot path pays one predictable branch instead of dynamic
//     dispatch into a no-op.
//  2. Every RecordDetect/RecordDecode/RecordFrame/RecordPoint call on
//     an obs.Recorder-typed value must be dominated by a nil guard
//     (`if r != nil { ... }` around the call, or an earlier
//     `if r == nil { return }`).
//
// The obs package itself — where Recorder and its combinators are
// defined — is exempt. Suppress individual findings with
// //geolint:recorder-ok <reason>.
var RecorderHygiene = &analysis.Analyzer{
	Name: "recorderhygiene",
	Doc:  "require obs.Fold nil-folding in SetRecorder and nil guards around Recorder calls",
	Run:  runRecorderHygiene,
}

const recorderOK = "recorder-ok"

// recordMethods are the Recorder interface's methods.
var recordMethods = map[string]bool{
	"RecordDetect": true,
	"RecordDecode": true,
	"RecordFrame":  true,
	"RecordPoint":  true,
}

// isRecorderType reports whether t is the obs.Recorder interface (by
// name: a Named interface called Recorder declared in a package whose
// base name is obs — which matches both repro/internal/obs and the
// analyzer's test fixtures).
func isRecorderType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Recorder" || obj.Pkg() == nil {
		return false
	}
	if pathBase(obj.Pkg().Path()) != "obs" {
		return false
	}
	_, iface := named.Underlying().(*types.Interface)
	return iface
}

func runRecorderHygiene(pass *analysis.Pass) error {
	if pathBase(strings.TrimSuffix(pass.Pkg.Path(), "_test")) == "obs" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				checkSetRecorder(pass, fn)
			}
		}
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !recordMethods[sel.Sel.Name] {
			return true
		}
		t := pass.TypesInfo.TypeOf(sel.X)
		if t == nil || !isRecorderType(t) {
			return true
		}
		if nilGuarded(pass, sel.X, call, stack) {
			return true
		}
		if !pass.Suppressed(call.Pos(), recorderOK) {
			pass.Reportf(call.Pos(),
				"%s.%s on an obs.Recorder without a nil guard; wrap in `if %s != nil` so a disabled recorder costs one branch (//geolint:%s <reason> to allow)",
				types.ExprString(sel.X), sel.Sel.Name, types.ExprString(sel.X), recorderOK)
		}
		return true
	})
	return nil
}

// checkSetRecorder flags SetRecorder(obs.Recorder) implementations
// that neither fold through obs.Fold nor delegate.
func checkSetRecorder(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Name.Name != "SetRecorder" || fn.Body == nil || fn.Recv == nil {
		return
	}
	params := fn.Type.Params
	if params == nil || len(params.List) != 1 {
		return
	}
	pt := pass.TypesInfo.TypeOf(params.List[0].Type)
	if pt == nil || !isRecorderType(pt) {
		return
	}
	folded := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgPath, name, ok := pkgFuncOf(pass, call); ok && name == "Fold" && pathBase(pkgPath) == "obs" {
			folded = true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "SetRecorder" {
			folded = true // delegation: the callee folds
		}
		return true
	})
	if !folded && !pass.Suppressed(fn.Pos(), recorderOK) {
		pass.Reportf(fn.Pos(),
			"SetRecorder stores its Recorder without nil-folding; pass it through obs.Fold so Nop collapses to nil (//geolint:%s <reason> to allow)",
			recorderOK)
	}
}

// nilGuarded reports whether the Record* call on recv is dominated by
// a nil check: an enclosing `if recv != nil` (possibly &&-conjoined),
// or an `if recv == nil { return }` earlier in an enclosing block.
func nilGuarded(pass *analysis.Pass, recv ast.Expr, call *ast.CallExpr, stack []ast.Node) bool {
	want := types.ExprString(recv)
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			// Only a guard if the call is inside the then-branch.
			inBody := n.Body.Pos() <= call.Pos() && call.Pos() < n.Body.End()
			if inBody && condChecksNonNil(n.Cond, want) {
				return true
			}
		case *ast.BlockStmt:
			for _, stmt := range n.List {
				if stmt.End() > call.Pos() {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || !condChecksNil(ifs.Cond, want) {
					continue
				}
				if endsFlow(ifs.Body) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			// Guards do not cross function boundaries.
			return false
		}
	}
	return false
}

// condChecksNonNil reports whether cond contains `want != nil` as a
// conjunct.
func condChecksNonNil(cond ast.Expr, want string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNonNil(c.X, want)
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			return condChecksNonNil(c.X, want) || condChecksNonNil(c.Y, want)
		}
		return c.Op == token.NEQ && binOperands(c, want)
	}
	return false
}

// condChecksNil reports whether cond is exactly `want == nil` (or
// parenthesized).
func condChecksNil(cond ast.Expr, want string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNil(c.X, want)
	case *ast.BinaryExpr:
		return c.Op == token.EQL && binOperands(c, want)
	}
	return false
}

// binOperands reports whether one side of c renders as want and the
// other is the nil identifier.
func binOperands(c *ast.BinaryExpr, want string) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (types.ExprString(c.X) == want && isNil(c.Y)) ||
		(types.ExprString(c.Y) == want && isNil(c.X))
}

// endsFlow reports whether a block unconditionally leaves the
// function or loop (return, panic, continue, break, goto).
func endsFlow(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
