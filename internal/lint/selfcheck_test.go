package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// TestRepositoryIsClean pins the repository against its own analyzer
// suite: every package of the module must produce zero diagnostics.
// This is the same check CI runs as `go run ./cmd/geolint ./...`; it
// lives here too so a violation fails `go test ./...` locally before
// a push.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modPath, modDir, err := load.ModuleInfo(wd)
	if err != nil {
		t.Fatalf("locating module: %v", err)
	}
	l := load.NewLoader(modPath, modDir)
	l.IncludeTests = true
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: %v", pkg.PkgPath, terr)
		}
	}
	diags := lint.Run(pkgs)
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		rel, relErr := filepath.Rel(modDir, pos.Filename)
		if relErr != nil {
			rel = pos.Filename
		}
		t.Errorf("%s:%d:%d: [%s] %s", rel, pos.Line, pos.Column, d.Analyzer.Name, d.Message)
	}
	if t.Failed() {
		t.Log("fix the code or add a //geolint:<key> <reason> escape hatch (see internal/lint doc)")
	}
}
