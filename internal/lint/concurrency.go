package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// ConcurrencyPackages lists the import paths holding the resident
// layer — long-lived sessions, worker pools and the serving
// pipelines — whose goroutine and lock hygiene the concurrency
// analyzers enforce. Other packages (and the analyzers' fixtures) opt
// in with a //geolint:concurrent file marker.
var ConcurrencyPackages = []string{
	"repro/internal/link",
	"repro/internal/serve",
}

// isConcurrencyPkg reports whether the pass's package is subject to
// the concurrency analyzers. External test packages inherit the
// verdict of the package under test.
func isConcurrencyPkg(pass *analysis.Pass) bool {
	path := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	for _, p := range ConcurrencyPackages {
		if path == p {
			return true
		}
	}
	return pass.HasFileDirective("concurrent")
}

// GoroutineLeak flags goroutines whose body loops forever with no way
// out: an unconditional for loop containing no return, no break that
// actually targets the loop, and no panic. Such goroutines outlive
// Close/ctx cancellation and accumulate under the resident serving
// layer's churn. A break inside a select or switch exits the select,
// not the loop — the classic shutdown bug — so it does not count as
// an exit.
//
// Loops that range over a channel are not flagged: closing the
// channel ends them, which is the session layer's shutdown idiom.
//
// Suppress with //geolint:leak-ok <reason>.
var GoroutineLeak = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "flag goroutines that loop forever without a return/break exit path",
	Run:  runGoroutineLeak,
}

const leakOK = "leak-ok"

func runGoroutineLeak(pass *analysis.Pass) error {
	if !isConcurrencyPkg(pass) {
		return nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			if fl, ok := inner.(*ast.FuncLit); ok && fl != lit {
				return false // nested closures run on their own terms
			}
			loop, ok := inner.(*ast.ForStmt)
			if !ok {
				return true
			}
			if loop.Cond != nil {
				return true
			}
			if loopHasExit(loop.Body, true) {
				return true
			}
			if !pass.Suppressed(loop.Pos(), leakOK) {
				pass.Reportf(loop.Pos(),
					"goroutine loops forever: no return or loop-level break reaches this for statement (a break inside select/switch exits the select, not the loop); add a ctx.Done/close exit or annotate //geolint:%s <reason>",
					leakOK)
			}
			return true
		})
		return true
	})
	return nil
}

// loopHasExit reports whether the loop body contains a statement that
// escapes the loop: a return, a panic, or a break that targets the
// loop itself. breakTargets tracks whether an unlabeled break at the
// current nesting still refers to the loop under test.
func loopHasExit(n ast.Node, breakTargets bool) bool {
	exit := false
	var walk func(n ast.Node, breakTargets bool)
	walk = func(n ast.Node, breakTargets bool) {
		if n == nil || exit {
			return
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			switch {
			case n.Tok == token.BREAK && n.Label != nil:
				// A labeled break always escapes at least this loop.
				exit = true
			case n.Tok == token.BREAK && breakTargets:
				exit = true
			case n.Tok == token.GOTO:
				// Conservative: assume the goto leaves the loop.
				exit = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				exit = true
				return
			}
			for _, a := range n.Args {
				walk(a, breakTargets)
			}
		case *ast.FuncLit:
			// A nested closure's returns do not exit the loop.
		case *ast.ForStmt:
			walk(n.Body, false)
		case *ast.RangeStmt:
			walk(n.Body, false)
		case *ast.SelectStmt:
			walk(n.Body, false)
		case *ast.SwitchStmt:
			walk(n.Body, false)
		case *ast.TypeSwitchStmt:
			walk(n.Body, false)
		case *ast.BlockStmt:
			for _, s := range n.List {
				walk(s, breakTargets)
			}
		case *ast.IfStmt:
			walk(n.Body, breakTargets)
			walk(n.Else, breakTargets)
		case *ast.CaseClause:
			for _, s := range n.Body {
				walk(s, breakTargets)
			}
		case *ast.CommClause:
			for _, s := range n.Body {
				walk(s, breakTargets)
			}
		case *ast.LabeledStmt:
			walk(n.Stmt, breakTargets)
		case *ast.ExprStmt:
			walk(n.X, breakTargets)
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				walk(r, breakTargets)
			}
		case *ast.GoStmt, *ast.DeferStmt:
			// Spawned/deferred work does not exit this loop.
		}
	}
	walk(n, breakTargets)
	return exit
}

// BlockingSend flags select statements in the admission paths that
// consist solely of channel sends with no default and no receive
// case: when every consumer is gone (session closed, worker crashed)
// such a select blocks its caller forever instead of shedding or
// observing shutdown. Admission points must pair the send with a
// default (non-blocking try) or a ctx.Done/closed-channel receive.
//
// Suppress with //geolint:block-ok <reason>.
var BlockingSend = &analysis.Analyzer{
	Name: "blockingsend",
	Doc:  "flag select statements that only send, with no default and no receive to bound the wait",
	Run:  runBlockingSend,
}

const blockOK = "block-ok"

func runBlockingSend(pass *analysis.Pass) error {
	if !isConcurrencyPkg(pass) {
		return nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		sends, recvs, hasDefault := 0, 0, false
		for _, cl := range sel.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			switch comm.Comm.(type) {
			case nil:
				hasDefault = true
			case *ast.SendStmt:
				sends++
			default:
				recvs++
			}
		}
		if sends == 0 || recvs > 0 || hasDefault {
			return true
		}
		if !pass.Suppressed(sel.Pos(), blockOK) {
			pass.Reportf(sel.Pos(),
				"select only sends: with no default and no receive case it can block forever once the consumer stops; add a default (shed) or a ctx.Done/closed-channel case, or annotate //geolint:%s <reason>",
				blockOK)
		}
		return true
	})
	return nil
}

// SyncMisuse flags the two sync mistakes that matter for the session
// and serve layers:
//
//   - locks copied by value — a by-value receiver, parameter or
//     assignment of a struct containing a sync.Mutex/RWMutex copies
//     the lock state, silently splitting the critical section;
//   - unguarded sibling writes — a pointer-receiver method of a
//     mutex-bearing struct that writes the struct's other fields
//     without any Lock/RLock call in its body bypasses the mutex the
//     struct was given. Methods named *Locked are exempt (their
//     callers hold the lock); shared counters belong in internal/obs
//     atomics instead.
//
// Suppress with //geolint:sync-ok <reason>.
var SyncMisuse = &analysis.Analyzer{
	Name: "syncmisuse",
	Doc:  "flag locks copied by value and mutex-bearing structs written without holding the mutex",
	Run:  runSyncMisuse,
}

const syncOK = "sync-ok"

func runSyncMisuse(pass *analysis.Pass) error {
	if !isConcurrencyPkg(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockByValue(pass, n)
				checkUnguardedWrites(pass, n)
			case *ast.FuncLit:
				checkFieldListLocks(pass, n.Type.Params)
			case *ast.AssignStmt:
				checkLockCopyAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkLockByValue flags by-value receivers and parameters whose type
// contains a mutex.
func checkLockByValue(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Recv != nil {
		checkFieldListLocks(pass, fn.Recv)
	}
	checkFieldListLocks(pass, fn.Type.Params)
}

func checkFieldListLocks(pass *analysis.Pass, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !containsMutex(t, nil) {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if !pass.Suppressed(field.Pos(), syncOK) {
			pass.Reportf(field.Pos(),
				"passes a lock by value: the type contains a sync mutex, so the copy splits the critical section; take a pointer or annotate //geolint:%s <reason>",
				syncOK)
		}
	}
}

// checkLockCopyAssign flags assignments that copy an existing
// mutex-bearing value (dereference, field or element read). Fresh
// composite literals and zero values are initialization, not copies.
func checkLockCopyAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for _, rhs := range as.Rhs {
		switch rhs.(type) {
		case *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr, *ast.Ident:
		default:
			continue
		}
		t := pass.TypesInfo.TypeOf(rhs)
		if t == nil || !containsMutex(t, nil) {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if !pass.Suppressed(rhs.Pos(), syncOK) {
			pass.Reportf(rhs.Pos(),
				"copies a lock: the right-hand side's type contains a sync mutex; share a pointer instead or annotate //geolint:%s <reason>",
				syncOK)
		}
	}
}

// checkUnguardedWrites flags pointer-receiver methods of mutex-bearing
// structs that write sibling fields with no Lock/RLock in the body.
func checkUnguardedWrites(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 || fn.Body == nil {
		return
	}
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return // convention: the caller holds the lock
	}
	recvIdent := fn.Recv.List[0].Names[0]
	recvObj := pass.TypesInfo.ObjectOf(recvIdent)
	if recvObj == nil {
		return
	}
	ptr, ok := recvObj.Type().(*types.Pointer)
	if !ok {
		return
	}
	st, ok := ptr.Elem().Underlying().(*types.Struct)
	if !ok {
		return
	}
	mutexFields := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			mutexFields[st.Field(i).Name()] = true
		}
	}
	if len(mutexFields) == 0 {
		return
	}
	// Any Lock/RLock acquisition in the body marks the method as
	// mutex-aware; the analyzer checks presence, not dominance.
	locked := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
			locked = true
		}
		return true
	})
	if locked {
		return
	}
	report := func(pos token.Pos, field string) {
		if !pass.Suppressed(pos, syncOK) {
			pass.Reportf(pos,
				"writes %s.%s without holding the struct's mutex anywhere in this method; lock around the write, use internal/obs atomics for shared counters, or annotate //geolint:%s <reason>",
				recvIdent.Name, field, syncOK)
		}
	}
	isRecvField := func(e ast.Expr) (string, bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != recvObj {
			return "", false
		}
		if mutexFields[sel.Sel.Name] {
			return "", false
		}
		return sel.Sel.Name, true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures are usually the guarded goroutine body
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if field, ok := isRecvField(lhs); ok {
					report(lhs.Pos(), field)
				}
			}
		case *ast.IncDecStmt:
			if field, ok := isRecvField(n.X); ok {
				report(n.X.Pos(), field)
			}
		}
		return true
	})
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex itself.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsMutex reports whether t transitively embeds a sync mutex by
// value (structs and arrays descend; pointers, slices and maps stop).
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if isMutexType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}
