// Package metrics implements the channel-characterization quantities
// of §5.1: the squared condition number κ²(H) that upper-bounds
// zero-forcing noise amplification, the per-stream SNR degradation
// λ_k, the worst-stream figure of merit Λ = max_k λ_k, and the
// empirical CDFs over links and subcarriers shown in Figures 9 and 10.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cmplxmat"
	"repro/internal/units"
)

// DB converts a linear power ratio to decibels. It is
// units.LinToDB over bare float64s.
func DB(x float64) float64 { return float64(units.LinToDB(units.Linear(x))) }

// FromDB converts decibels to a linear power ratio. It is
// units.DB.Lin over bare float64s.
func FromDB(db float64) float64 { return float64(units.DB(db).Lin()) }

// Kappa2dB returns κ²(H) in decibels, the paper's Figure 9 metric.
// Higher values indicate worse channel conditioning.
func Kappa2dB(h *cmplxmat.Matrix) float64 {
	k := h.Cond2()
	if math.IsInf(k, 1) {
		return math.Inf(1)
	}
	return DB(k * k)
}

// StreamDegradations returns λ_k = [H*H]_{k,k} · [(H*H)⁻¹]_{k,k} for
// every stream k: the ratio of stream k's SNR before and after
// zero-forcing (§5.1). λ_k ≥ 1 always; large values mean zero-forcing
// amplifies the noise seen by stream k.
func StreamDegradations(h *cmplxmat.Matrix) ([]float64, error) {
	gram := cmplxmat.Mul(h.ConjT(), h)
	gi, err := gram.Inverse()
	if err != nil {
		return nil, fmt.Errorf("metrics: channel Gram matrix singular: %w", err)
	}
	out := make([]float64, h.Cols)
	for k := range out {
		out[k] = real(gram.At(k, k)) * real(gi.At(k, k))
	}
	return out, nil
}

// LambdaDB returns the worst-stream SNR degradation Λ in decibels,
// the Figure 10 figure of merit. Singular channels yield +Inf.
func LambdaDB(h *cmplxmat.Matrix) float64 {
	lams, err := StreamDegradations(h)
	if err != nil {
		return math.Inf(1)
	}
	worst := 0.0
	for _, l := range lams {
		if l > worst {
			worst = l
		}
	}
	return DB(worst)
}

// CDF is an empirical cumulative distribution built from samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF; the input slice is not modified.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile for q in [0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// FractionAbove returns P(X > x), the form quoted throughout §5.1
// ("60% of links experience condition numbers larger than 10 dB").
func (c *CDF) FractionAbove(x float64) float64 { return 1 - c.At(x) }

// Series samples the CDF at n evenly spaced points spanning the data
// range, for plotting or printing a figure's curve.
func (c *CDF) Series(n int) (xs, ps []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		xs[i] = x
		ps[i] = c.At(x)
	}
	return xs, ps
}

// Summary holds basic sample statistics.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes summary statistics of samples.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	var s Summary
	s.N = len(samples)
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, v := range samples {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(s.N)
	for _, v := range samples {
		d := v - s.Mean
		s.Std += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(s.Std / float64(s.N-1))
	} else {
		s.Std = 0
	}
	s.Median = NewCDF(samples).Quantile(0.5)
	return s
}
