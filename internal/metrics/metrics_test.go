package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/rng"
)

func TestDBRoundTrip(t *testing.T) {
	for _, x := range []float64{0.01, 1, 10, 123.4} {
		if got := FromDB(DB(x)); math.Abs(got-x) > 1e-12*x {
			t.Fatalf("%g round-tripped to %g", x, got)
		}
	}
	if DB(10) != 10 || DB(1) != 0 {
		t.Fatal("dB scale wrong")
	}
}

func TestKappa2dBOrthogonal(t *testing.T) {
	// Unitary-column matrices have κ=1 ⇒ κ² = 0 dB.
	h := cmplxmat.Identity(3)
	if got := Kappa2dB(h); math.Abs(got) > 1e-9 {
		t.Fatalf("identity κ² = %g dB", got)
	}
	// Diagonal [10, 1]: κ = 10 ⇒ κ² = 20 dB.
	d := cmplxmat.New(2, 2)
	d.Set(0, 0, 10)
	d.Set(1, 1, 1)
	if got := Kappa2dB(d); math.Abs(got-20) > 1e-9 {
		t.Fatalf("diag κ² = %g dB, want 20", got)
	}
}

func TestKappa2dBSingular(t *testing.T) {
	h := cmplxmat.New(2, 2)
	h.Set(0, 0, 1)
	h.Set(1, 0, 1)
	if !math.IsInf(Kappa2dB(h), 1) {
		t.Fatal("singular channel should give +Inf")
	}
}

func TestStreamDegradationsOrthogonal(t *testing.T) {
	// For orthogonal columns, zero-forcing costs nothing: λ_k = 1.
	h := cmplxmat.New(2, 2)
	h.Set(0, 0, 2)
	h.Set(1, 1, 3)
	lams, err := StreamDegradations(h)
	if err != nil {
		t.Fatal(err)
	}
	for k, l := range lams {
		if math.Abs(l-1) > 1e-9 {
			t.Fatalf("stream %d: λ = %g, want 1", k, l)
		}
	}
	if got := LambdaDB(h); math.Abs(got) > 1e-9 {
		t.Fatalf("Λ = %g dB, want 0", got)
	}
}

// TestLambdaAtLeastOne: zero-forcing can never improve a stream's SNR,
// so λ_k ≥ 1 (0 dB) for every stream of every full-rank channel.
func TestLambdaAtLeastOne(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		h := channel.Rayleigh(src, 2+src.Intn(3), 2)
		lams, err := StreamDegradations(h)
		if err != nil {
			return true // singular draw: vacuous
		}
		for _, l := range lams {
			if l < 1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLambdaBoundedByKappa2: the worst-stream degradation cannot
// exceed the κ² upper bound (§5.1: κ² "is a good upper-bound on the
// actual noise amplification").
func TestLambdaBoundedByKappa2(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 200; trial++ {
		h := channel.Rayleigh(src, 2, 2)
		lam := LambdaDB(h)
		k2 := Kappa2dB(h)
		if lam > k2+1e-6 {
			t.Fatalf("trial %d: Λ=%.2f dB exceeds κ²=%.2f dB", trial, lam, k2)
		}
	}
}

func TestLambdaSingularIsInf(t *testing.T) {
	h := cmplxmat.New(2, 2)
	h.Set(0, 0, 1)
	h.Set(1, 0, 1)
	if !math.IsInf(LambdaDB(h), 1) {
		t.Fatal("singular channel should give Λ=+Inf")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatalf("len %d", c.Len())
	}
	if c.At(0) != 0 || c.At(2) != 0.5 || c.At(4) != 1 || c.At(10) != 1 {
		t.Fatalf("CDF values wrong: %g %g %g", c.At(0), c.At(2), c.At(4))
	}
	if c.FractionAbove(2) != 0.5 {
		t.Fatalf("FractionAbove(2) = %g", c.FractionAbove(2))
	}
	if c.Quantile(0) != 1 || c.Quantile(1) != 4 || c.Quantile(0.5) != 3 {
		t.Fatalf("quantiles wrong: %g %g %g", c.Quantile(0), c.Quantile(1), c.Quantile(0.5))
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Fatal("empty CDF At should be 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("empty CDF quantile should be NaN")
	}
	xs, ps := c.Series(5)
	if xs != nil || ps != nil {
		t.Fatal("empty CDF series should be nil")
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("NewCDF sorted the caller's slice")
	}
}

func TestCDFSeriesMonotone(t *testing.T) {
	c := NewCDF([]float64{5, 1, 9, 3, 7, 7, 2})
	xs, ps := c.Series(20)
	if len(xs) != 20 || len(ps) != 20 {
		t.Fatalf("series sizes %d %d", len(xs), len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] || xs[i] < xs[i-1] {
			t.Fatal("series not monotone")
		}
	}
	if ps[len(ps)-1] != 1 {
		t.Fatalf("last point %g, want 1", ps[len(ps)-1])
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Fatalf("std %g", s.Std)
	}
	if s.Median != 5 {
		t.Fatalf("median %g", s.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary should be zero")
	}
	one := Summarize([]float64{3})
	if one.Std != 0 || one.Mean != 3 {
		t.Fatalf("single-sample summary %+v", one)
	}
}
