package sim

import (
	"fmt"

	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/linear"
	"repro/internal/link"
	"repro/internal/rng"
)

// SoftFactory builds the soft-output list sphere decoder.
func SoftFactory(cons *constellation.Constellation, _ float64) core.Detector {
	return core.NewListSphereDecoder(cons)
}

// SoftVsHard compares Geosphere with hard-decision Viterbi decoding
// against the soft-output list sphere decoder feeding soft Viterbi
// (the §7 future-work receiver), over 4×4 Rayleigh fading at several
// SNRs. The soft receiver should decode frames at SNRs where the hard
// one cannot — the coding gain that motivates the extension.
func SoftVsHard(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Soft vs hard decoding: Geosphere hard-Viterbi vs list-SD soft-Viterbi (4×4, 16-QAM, Rayleigh)",
		Columns: []string{"SNR(dB)", "hard FER", "soft FER", "hard Mbps", "soft Mbps"},
	}
	snrs := []float64{14, 16, 18, 20, 24}
	rows := make([][]string, len(snrs))
	outer, inner := opts.splitWorkers(len(snrs))
	if err := parallelFor(outer, len(snrs), func(i int) error {
		snr := snrs[i]
		label := fmt.Sprintf("softvshard/%g", snr)
		base := link.RunConfig{
			Cons: constellation.QAM16, Rate: fec.Rate12,
			NumSymbols: opts.NumSymbols, Frames: opts.Frames,
			SNRdB: snr, Seed: seedFor(opts, label),
			Workers: inner, Recorder: opts.Recorder,
		}
		newSource := func() link.ChannelSource {
			s, err := link.NewRayleighSource(rng.New(seedFor(opts, label)), 4, 4)
			if err != nil {
				panic(err)
			}
			return s
		}
		hard, err := link.Run(base, newSource(), GeosphereFactory)
		if err != nil {
			return err
		}
		softCfg := base
		softCfg.SoftDecoding = true
		soft, err := link.Run(softCfg, newSource(), SoftFactory)
		if err != nil {
			return err
		}
		rows[i] = []string{
			fmt.Sprintf("%g", snr),
			fmt.Sprintf("%.2f", hard.FER()), fmt.Sprintf("%.2f", soft.FER()),
			fmt.Sprintf("%.1f", hard.NetMbps), fmt.Sprintf("%.1f", soft.NetMbps),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"soft max-log LLRs into the Viterbi decoder buy the usual 1-2 dB over hard slicing; §7 notes soft processing is required to reach capacity")
	return t, nil
}

// HybridAblation compares the Maurer et al. κ-threshold hybrid against
// pure Geosphere (§5.3.1 discussion): Geosphere's complexity already
// collapses on well-conditioned channels, so the hybrid's savings are
// marginal while it risks throughput whenever the threshold is wrong.
func HybridAblation(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Hybrid ZF/SD ablation: κ-threshold switching vs pure Geosphere (4×4 testbed, 16-QAM)",
		Columns: []string{"SNR(dB)", "detector", "FER", "Mbps", "PED/detection"},
	}
	tr, err := generateTrace(opts, 4, 4)
	if err != nil {
		return nil, err
	}
	hybridFactory := func(cons *constellation.Constellation, _ float64) core.Detector {
		h, err := core.NewHybrid(cons, linear.NewZF(cons), 10)
		if err != nil {
			panic(err) // static threshold ≥ 1
		}
		return h
	}
	snrs := []float64{15, 20, 25}
	type row struct{ cells [][]string }
	rows := make([]row, len(snrs))
	outer, inner := opts.splitWorkers(len(snrs))
	if err := parallelFor(outer, len(snrs), func(i int) error {
		snr := snrs[i]
		label := fmt.Sprintf("hybrid/%g", snr)
		cfg := link.RunConfig{
			Cons: constellation.QAM16, Rate: fec.Rate12,
			NumSymbols: opts.NumSymbols, Frames: opts.Frames,
			SNRdB: snr, Seed: seedFor(opts, label),
			Workers: inner, Recorder: opts.Recorder,
		}
		for _, d := range []struct {
			name    string
			factory link.DetectorFactory
		}{
			{"Geosphere", GeosphereFactory},
			{"Hybrid(κ>10)", hybridFactory},
			{"Zero-forcing", ZFFactory},
		} {
			src, err := link.NewTraceSource(tr)
			if err != nil {
				return err
			}
			m, err := link.Run(cfg, src, d.factory)
			if err != nil {
				return err
			}
			ped := "-"
			if m.Stats.Detections > 0 {
				ped = fmt.Sprintf("%.1f", m.Stats.PEDPerDetection())
			}
			rows[i].cells = append(rows[i].cells, []string{
				fmt.Sprintf("%g", snr), d.name,
				fmt.Sprintf("%.2f", m.FER()), fmt.Sprintf("%.1f", m.NetMbps), ped,
			})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, r.cells...)
	}
	t.Notes = append(t.Notes,
		"paper §5.3.1: Geosphere adjusts its own complexity to conditioning, 'obviating the need for a hybrid system'")
	return t, nil
}

// OrderingAblation measures the §6.1 sorted-QR column ordering: same
// maximum-likelihood output, fewer visited nodes at low SNR, vanishing
// savings at the SNRs of practical interest (Su & Wassell's fate).
func OrderingAblation(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Column-ordering ablation: plain vs sorted-QR Geosphere (4×4, 16-QAM, Rayleigh)",
		Columns: []string{"SNR(dB)", "plain nodes", "ordered nodes", "plain PED", "ordered PED", "node savings"},
	}
	orderedFactory := func(cons *constellation.Constellation, _ float64) core.Detector {
		d := core.NewGeosphere(cons)
		d.EnableColumnReordering(true)
		return d
	}
	snrs := []float64{8, 12, 16, 20, 25, 30}
	rows := make([][]string, len(snrs))
	outer, inner := opts.splitWorkers(len(snrs))
	if err := parallelFor(outer, len(snrs), func(i int) error {
		snr := snrs[i]
		label := fmt.Sprintf("ordering/%g", snr)
		cfg := link.RunConfig{
			Cons: constellation.QAM16, Rate: fec.Rate12,
			NumSymbols: opts.NumSymbols, Frames: opts.Frames,
			SNRdB: snr, Seed: seedFor(opts, label),
			Workers: inner, Recorder: opts.Recorder,
		}
		newSource := func() link.ChannelSource {
			s, err := link.NewRayleighSource(rng.New(seedFor(opts, label)), 4, 4)
			if err != nil {
				panic(err)
			}
			return s
		}
		plain, err := link.Run(cfg, newSource(), GeosphereFactory)
		if err != nil {
			return err
		}
		ordered, err := link.Run(cfg, newSource(), orderedFactory)
		if err != nil {
			return err
		}
		pn := plain.Stats.NodesPerDetection()
		on := ordered.Stats.NodesPerDetection()
		savings := "-"
		if pn > 0 {
			savings = fmt.Sprintf("%.0f%%", 100*(1-on/pn))
		}
		rows[i] = []string{
			fmt.Sprintf("%g", snr),
			fmt.Sprintf("%.1f", pn), fmt.Sprintf("%.1f", on),
			fmt.Sprintf("%.1f", plain.Stats.PEDPerDetection()),
			fmt.Sprintf("%.1f", ordered.Stats.PEDPerDetection()),
			savings,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper §6.1 on Su & Wassell orderings: 'the resulting computational savings vanish for average and high SNR values of practical interest'")
	return t, nil
}

// RVDFactory builds the real-valued-decomposition baseline.
func RVDFactory(cons *constellation.Constellation, _ float64) core.Detector {
	return core.NewRVD(cons)
}

// RVDAblation quantifies the §6.1 critique of real-valued
// decomposition: unfolding the complex tree doubles its height, so the
// RVD search visits roughly twice the nodes of Geosphere's complex
// tree for the same (maximum-likelihood) answers.
func RVDAblation(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Real-valued decomposition ablation: RVD vs complex-tree Geosphere (4×4, 16-QAM, Rayleigh)",
		Columns: []string{"SNR(dB)", "RVD nodes", "Geo nodes", "RVD PED", "Geo PED", "node ratio"},
	}
	snrs := []float64{10, 15, 20, 25}
	rows := make([][]string, len(snrs))
	outer, inner := opts.splitWorkers(len(snrs))
	if err := parallelFor(outer, len(snrs), func(i int) error {
		snr := snrs[i]
		label := fmt.Sprintf("rvd/%g", snr)
		cfg := link.RunConfig{
			Cons: constellation.QAM16, Rate: fec.Rate12,
			NumSymbols: opts.NumSymbols, Frames: opts.Frames,
			SNRdB: snr, Seed: seedFor(opts, label),
			Workers: inner, Recorder: opts.Recorder,
		}
		newSource := func() link.ChannelSource {
			s, err := link.NewRayleighSource(rng.New(seedFor(opts, label)), 4, 4)
			if err != nil {
				panic(err)
			}
			return s
		}
		rvd, err := link.Run(cfg, newSource(), RVDFactory)
		if err != nil {
			return err
		}
		geo, err := link.Run(cfg, newSource(), GeosphereFactory)
		if err != nil {
			return err
		}
		rn := rvd.Stats.NodesPerDetection()
		gn := geo.Stats.NodesPerDetection()
		ratio := "-"
		if gn > 0 {
			ratio = fmt.Sprintf("%.1f×", rn/gn)
		}
		rows[i] = []string{
			fmt.Sprintf("%g", snr),
			fmt.Sprintf("%.1f", rn), fmt.Sprintf("%.1f", gn),
			fmt.Sprintf("%.1f", rvd.Stats.PEDPerDetection()),
			fmt.Sprintf("%.1f", geo.Stats.PEDPerDetection()),
			ratio,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"§6.1 on Chan & Lee / Azzam & Ayanoglu: doubling the tree height is what makes RVD designs 'impractical for implementation'")
	return t, nil
}

// StatisticalPruningAblation measures the §6.1 probabilistic-pruning
// trade-off (Shim & Kang, Cui et al.): pruning on expected residual
// noise shrinks the tree but abandons the maximum-likelihood
// guarantee, costing coded frames — the paper's reason for calling
// such schemes unsuitable in practice.
func StatisticalPruningAblation(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Statistical pruning ablation: expected-noise pruning vs exact Geosphere (4×4, 16-QAM, 13 dB Rayleigh)",
		Columns: []string{"α", "FER", "Mbps", "nodes/detection", "PED/detection"},
	}
	alphas := []float64{0, 1, 2, 4, 8}
	rows := make([][]string, len(alphas))
	outer, inner := opts.splitWorkers(len(alphas))
	if err := parallelFor(outer, len(alphas), func(i int) error {
		alpha := alphas[i]
		label := fmt.Sprintf("statprune/%g", alpha)
		cfg := link.RunConfig{
			Cons: constellation.QAM16, Rate: fec.Rate12,
			NumSymbols: opts.NumSymbols, Frames: 2 * opts.Frames,
			SNRdB: 13, Seed: seedFor(opts, label),
			Workers: inner, Recorder: opts.Recorder,
		}
		factory := func(cons *constellation.Constellation, noiseVar float64) core.Detector {
			if alpha == 0 { //geolint:float-ok alpha is a configuration constant, zero is its sentinel value
				return core.NewGeosphere(cons)
			}
			return core.NewStatisticalPruning(cons, noiseVar, alpha)
		}
		newSource := func() link.ChannelSource {
			s, err := link.NewRayleighSource(rng.New(seedFor(opts, "statprune")), 4, 4)
			if err != nil {
				panic(err)
			}
			return s
		}
		m, err := link.Run(cfg, newSource(), factory)
		if err != nil {
			return err
		}
		rows[i] = []string{
			fmt.Sprintf("%g", alpha),
			fmt.Sprintf("%.3f", m.FER()),
			fmt.Sprintf("%.1f", m.NetMbps),
			fmt.Sprintf("%.1f", m.Stats.NodesPerDetection()),
			fmt.Sprintf("%.1f", m.Stats.PEDPerDetection()),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"§6.1 on statistical pruning: 'a significant loss of performance in order to achieve non-negligible complexity gains'")
	return t, nil
}
