package sim

import (
	"strings"
	"testing"

	"repro/internal/constellation"
	"repro/internal/link"
	"repro/internal/rng"
	"repro/internal/testbed"
)

func TestConditioningCDFs(t *testing.T) {
	tr, err := testbed.Generate(testbed.OfficePlan(), testbed.GenerateConfig{
		Seed: 12, NumClients: 2, NumAntennas: 2, LinksPerAP: 1, Realizations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	k2, lam, err := conditioningCDFs(tr)
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := 3 * 48 // 3 APs × 1 link × 1 realization × 48 subcarriers
	if k2.Len() != wantSamples || lam.Len() != wantSamples {
		t.Fatalf("CDF sizes %d/%d, want %d", k2.Len(), lam.Len(), wantSamples)
	}
	// Λ can never exceed κ² in distribution at the top quantile.
	if lam.Quantile(0.99) > k2.Quantile(0.99)+1e-6 {
		t.Fatalf("Λ q99 (%g) exceeds κ² q99 (%g)", lam.Quantile(0.99), k2.Quantile(0.99))
	}
}

func TestFindSNRForFERReturnsViablePoint(t *testing.T) {
	opts := QuickOptions()
	newSource := func() link.ChannelSource {
		s, err := link.NewRayleighSource(rng.New(1), 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	snr, err := findSNRForFER(opts, constellation.QAM16, 0.5, newSource, "test", 1)
	if err != nil {
		t.Fatal(err)
	}
	if snr < 12 || snr > 48 {
		t.Fatalf("SNR* = %g outside the sweep range", snr)
	}
	// A loose target must never need more SNR than a tight one.
	tight, err := findSNRForFER(opts, constellation.QAM16, 0.05, newSource, "test", 2)
	if err != nil {
		t.Fatal(err)
	}
	if snr > tight {
		t.Fatalf("FER 0.5 needed %g dB but FER 0.05 only %g", snr, tight)
	}
}

func TestShapeString(t *testing.T) {
	s := shape{nc: 3, na: 4}
	if got := s.String(); !strings.Contains(got, "3") || !strings.Contains(got, "4") {
		t.Fatalf("shape string %q", got)
	}
}

func TestDefaultAndQuickOptionsDiffer(t *testing.T) {
	d, q := DefaultOptions(), QuickOptions()
	if q.Frames >= d.Frames || q.LinksPerAP >= d.LinksPerAP {
		t.Fatal("quick options are not smaller than defaults")
	}
	if d.Seed != q.Seed {
		t.Fatal("seeds should match so quick runs preview default runs")
	}
}
