// Package sim is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§5). Each experiment function
// returns a printable Table whose rows mirror the series the paper
// plots; cmd/geosim prints them and the repository's benchmarks run
// reduced-size versions of the same code paths.
package sim

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/kbest"
	"repro/internal/linear"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/testbed"
)

// Options sizes an experiment run. The zero value is invalid; use
// DefaultOptions (paper-scale shapes at laptop-scale runtimes) or
// QuickOptions (for benchmarks and smoke tests).
type Options struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// Frames per measurement point for throughput experiments.
	Frames int
	// NumSymbols is the OFDM symbols per frame.
	NumSymbols int
	// LinksPerAP and Realizations size generated testbed traces.
	LinksPerAP   int
	Realizations int
	// SearchFrames is the frames per SNR probe when searching for a
	// target frame error rate (Figure 15 methodology).
	SearchFrames int
	// Workers caps the total goroutine budget an experiment spends,
	// shared between its parallel measurement points and the frame
	// pipeline inside each point (link.RunConfig.Workers), so nested
	// parallelism never oversubscribes the host. 0 means GOMAXPROCS.
	// Results are identical for every value.
	Workers int
	// Recorder, when non-nil, observes the whole run: it is threaded
	// into every link.RunConfig the experiment builds (per-detect,
	// per-decode and per-frame samples) and additionally receives one
	// obs.PointSample per completed measurement point. It must be safe
	// for concurrent use; recording never changes any result.
	Recorder obs.Recorder
}

// workerBudget resolves the Workers option to a concrete budget.
func (o Options) workerBudget() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// splitWorkers divides the budget between n outer measurement points
// and the frame pipeline inside each: outer points run concurrently,
// each with an inner per-point share for link.RunConfig.Workers.
func (o Options) splitWorkers(n int) (outer, inner int) {
	w := o.workerBudget()
	outer = w
	if n < 1 {
		n = 1
	}
	if outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = w / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// DefaultOptions returns the sizes used for the recorded results in
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Seed:         2014, // SIGCOMM year, for luck
		Frames:       60,
		NumSymbols:   8,
		LinksPerAP:   8,
		Realizations: 3,
		SearchFrames: 40,
	}
}

// QuickOptions returns reduced sizes for benchmarks and CI.
func QuickOptions() Options {
	return Options{
		Seed:         2014,
		Frames:       6,
		NumSymbols:   4,
		LinksPerAP:   2,
		Realizations: 1,
		SearchFrames: 6,
	}
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Detector factories shared across experiments.

// GeosphereFactory builds the full Geosphere detector.
func GeosphereFactory(cons *constellation.Constellation, _ float64) core.Detector {
	return core.NewGeosphere(cons)
}

// ZigzagOnlyFactory builds the 2D-zigzag-only Geosphere variant.
func ZigzagOnlyFactory(cons *constellation.Constellation, _ float64) core.Detector {
	return core.NewGeosphereZigzagOnly(cons)
}

// ETHSDFactory builds the ETH-SD comparison decoder.
func ETHSDFactory(cons *constellation.Constellation, _ float64) core.Detector {
	return core.NewETHSD(cons)
}

// ZFFactory builds a zero-forcing detector.
func ZFFactory(cons *constellation.Constellation, _ float64) core.Detector {
	return linear.NewZF(cons)
}

// MMSEFactory builds an MMSE detector for the run's noise variance.
func MMSEFactory(cons *constellation.Constellation, noiseVar float64) core.Detector {
	return linear.NewMMSE(cons, noiseVar)
}

// MMSESICFactory builds an MMSE-SIC detector.
func MMSESICFactory(cons *constellation.Constellation, noiseVar float64) core.Detector {
	return linear.NewMMSESIC(cons, noiseVar)
}

// KBestFactory builds a K-best decoder sized √|O| (a common choice).
func KBestFactory(cons *constellation.Constellation, _ float64) core.Detector {
	d, err := kbest.NewKBest(cons, cons.Side())
	if err != nil {
		panic(err) // side ≥ 2 always
	}
	return d
}

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines
// and returns the first error (by index, for determinism). Pass the
// outer share of Options.splitWorkers so point-level and frame-level
// parallelism draw from one budget.
func parallelFor(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// generateTrace builds a campaign trace for the given shape, caching
// nothing: experiments remain independent and deterministic.
func generateTrace(opts Options, nc, na int) (*testbed.Trace, error) {
	return testbed.Generate(testbed.OfficePlan(), testbed.GenerateConfig{
		Seed:         opts.Seed + int64(1000*nc+na),
		NumClients:   nc,
		NumAntennas:  na,
		LinksPerAP:   opts.LinksPerAP,
		Realizations: opts.Realizations,
	})
}

// recordPoint publishes one completed measurement point to the run's
// recorder, so a sweep's progress and per-point complexity are
// observable while it runs.
func recordPoint(opts Options, label string, snr float64, m link.Measurement) {
	if opts.Recorder == nil {
		return
	}
	opts.Recorder.RecordPoint(obs.PointSample{
		Label:         label,
		Detector:      m.Detector,
		Constellation: m.Constellation,
		SNRdB:         snr,
		Frames:        m.Frames,
		FER:           m.FER(),
		NetMbps:       m.NetMbps,
		PEDCalcs:      m.Stats.PEDCalcs,
		VisitedNodes:  m.Stats.VisitedNodes,
	})
}

// seedFor derives a per-point seed from a label, keeping points
// decoupled when they run in parallel.
func seedFor(opts Options, label string) int64 {
	var h int64 = 1469598103934665603
	for _, r := range label {
		h ^= int64(r)
		h *= 1099511628211
	}
	return opts.Seed ^ h
}
