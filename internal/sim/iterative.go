package sim

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/ofdm"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/units"
)

// IterativeReceiver reproduces the §7 future-work receiver end to end:
// frame error rates of (a) hard-decision Geosphere + Viterbi, (b) the
// soft list sphere decoder + soft Viterbi, and (c) the full iterative
// MMSE-PIC/BCJR turbo loop, over flat 4×4 Rayleigh frames near the
// waterfall region.
func IterativeReceiver(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Iterative detection-decoding (§7): hard vs soft vs turbo (4×4, 16-QAM, flat Rayleigh)",
		Columns: []string{"SNR(dB)", "hard FER", "soft FER", "turbo FER", "avg turbo iters"},
	}
	cfg := phy.Config{Cons: constellation.QAM16, Rate: fec.Rate12, NumSymbols: opts.NumSymbols}
	hardLink, err := phy.NewLink(cfg)
	if err != nil {
		return nil, err
	}
	softCfg := cfg
	softCfg.SoftDecoding = true
	softLink, err := phy.NewLink(softCfg)
	if err != nil {
		return nil, err
	}
	snrs := []units.DB{10, 11, 12, 13, 14}
	// The turbo loop re-detects whole frames, so cap the per-point
	// frame count to keep the experiment's runtime proportionate.
	frames := 4 * opts.Frames
	if frames > 100 {
		frames = 100
	}
	rows := make([][]string, len(snrs))
	outer, _ := opts.splitWorkers(len(snrs))
	if err := parallelFor(outer, len(snrs), func(i int) error {
		snr := snrs[i]
		noise := float64(channel.NoiseVar(snr))
		base := seedFor(opts, fmt.Sprintf("iterative/%g", float64(snr)))
		var hardErr, softErr, turboErr int
		var iters int
		for fi := 0; fi < frames; fi++ {
			seed := base + int64(31*fi)
			chSrc := rng.New(seed)
			h := channel.Rayleigh(chSrc, 4, 4)
			flat := make([]*cmplxmat.Matrix, ofdm.NumData)
			for sc := range flat {
				flat[sc] = h
			}
			f, err := hardLink.Encode(rng.New(seed+1), 4)
			if err != nil {
				return err
			}
			rh, err := hardLink.TransmitReceive(rng.New(seed+2), f, flat, core.NewGeosphere(cfg.Cons), noise)
			if err != nil {
				return err
			}
			rs, err := softLink.TransmitReceive(rng.New(seed+2), f, flat, core.NewListSphereDecoder(cfg.Cons), noise)
			if err != nil {
				return err
			}
			rt, err := hardLink.TransmitReceiveIterative(rng.New(seed+2), f, flat, noise, 4)
			if err != nil {
				return err
			}
			if !rh.FrameOK() {
				hardErr++
			}
			if !rs.FrameOK() {
				softErr++
			}
			if !rt.FrameOK() {
				turboErr++
			}
			iters += rt.Iterations
		}
		rows[i] = []string{
			fmt.Sprintf("%g", snr),
			fmt.Sprintf("%.3f", float64(hardErr)/float64(frames)),
			fmt.Sprintf("%.3f", float64(softErr)/float64(frames)),
			fmt.Sprintf("%.3f", float64(turboErr)/float64(frames)),
			fmt.Sprintf("%.2f", float64(iters)/float64(frames)),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"§7: iterative soft processing is required to reach MIMO capacity; the turbo loop pushes the FER waterfall 1-2 dB left of hard-decision Geosphere")
	return t, nil
}
