package sim

import (
	"fmt"

	"repro/internal/cmplxmat"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

// shape is one clients×antennas configuration of Figures 9-15.
type shape struct {
	nc, na int
}

func (s shape) String() string { return fmt.Sprintf("%d clients × %d AP ant.", s.nc, s.na) }

// charShapes are the four configurations of Figures 9 and 10.
var charShapes = []shape{{2, 2}, {2, 4}, {3, 4}, {4, 4}}

// conditioningCDFs computes the κ² and Λ CDFs over a trace's links,
// realizations and subcarriers.
func conditioningCDFs(tr *testbed.Trace) (k2, lam *metrics.CDF, err error) {
	var k2s, lams []float64
	err = tr.Matrices(func(_ *testbed.LinkTrace, _, _ int, h *cmplxmat.Matrix) bool {
		k2s = append(k2s, metrics.Kappa2dB(h))
		lams = append(lams, metrics.LambdaDB(h))
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	return metrics.NewCDF(k2s), metrics.NewCDF(lams), nil
}

// Fig9 reproduces the κ² CDF of Figure 9: the cumulative distribution
// of the squared channel condition number (dB) across testbed links,
// subcarriers and realizations, for the four antenna configurations.
func Fig9(opts Options) (*Table, error) {
	return channelCharTable(opts, "Figure 9: CDF of κ² (dB) across links and subcarriers", false)
}

// Fig10 reproduces Figure 10: the CDF of Λ, the worst-stream SNR
// degradation that zero-forcing inflicts.
func Fig10(opts Options) (*Table, error) {
	return channelCharTable(opts, "Figure 10: CDF of Λ (dB), worst-stream ZF SNR degradation", true)
}

func channelCharTable(opts Options, title string, lambda bool) (*Table, error) {
	t := &Table{Title: title}
	t.Columns = []string{"configuration"}
	grid := []float64{0, 5, 10, 15, 20, 25, 30}
	for _, x := range grid {
		t.Columns = append(t.Columns, fmt.Sprintf("P(≤%gdB)", x))
	}
	t.Columns = append(t.Columns, "frac>10dB")

	rows := make([][]string, len(charShapes))
	outer, _ := opts.splitWorkers(len(charShapes))
	if err := parallelFor(outer, len(charShapes), func(i int) error {
		sh := charShapes[i]
		tr, err := generateTrace(opts, sh.nc, sh.na)
		if err != nil {
			return err
		}
		k2, lam, err := conditioningCDFs(tr)
		if err != nil {
			return err
		}
		cdf := k2
		if lambda {
			cdf = lam
		}
		row := []string{sh.String()}
		for _, x := range grid {
			row = append(row, fmt.Sprintf("%.2f", cdf.At(x)))
		}
		row = append(row, fmt.Sprintf("%.2f", cdf.FractionAbove(10)))
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	if lambda {
		t.Notes = append(t.Notes,
			"paper: 2×2 links see Λ>5dB 30% of the time; 4×4 links 90%; 2 clients × 4 antennas <3dB for 90% of channels")
	} else {
		t.Notes = append(t.Notes,
			"paper: 60% of 2×2 links have κ²>10dB; nearly all 4×4 links are poorly conditioned")
	}
	return t, nil
}
