package sim

import (
	"fmt"

	"repro/internal/constellation"
	"repro/internal/fec"
	"repro/internal/link"
	"repro/internal/rng"
)

// EstimatedCSI quantifies the cost of real channel estimation: the
// same 4×4 testbed throughput comparison as Figure 11's hardest
// configuration, run with genie channel knowledge versus noisy
// preamble-based least-squares estimates (whose air time is charged
// against throughput). The paper's testbed necessarily operates in the
// estimated regime; this experiment shows the comparison's shape is
// insensitive to it.
func EstimatedCSI(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Estimated vs genie CSI: 4 clients × 4 AP antennas, 16-QAM, testbed channels",
		Columns: []string{"SNR(dB)", "detector", "genie Mbps", "genie FER", "est Mbps", "est FER"},
	}
	tr, err := generateTrace(opts, 4, 4)
	if err != nil {
		return nil, err
	}
	snrs := []float64{15, 20, 25}
	type cells = [][]string
	rows := make([]cells, len(snrs))
	outer, inner := opts.splitWorkers(len(snrs))
	if err := parallelFor(outer, len(snrs), func(i int) error {
		snr := snrs[i]
		for _, d := range []struct {
			name    string
			factory link.DetectorFactory
		}{
			{"Geosphere", GeosphereFactory},
			{"Zero-forcing", ZFFactory},
		} {
			label := fmt.Sprintf("estcsi/%g/%s", snr, d.name)
			base := link.RunConfig{
				Cons: constellation.QAM16, Rate: fec.Rate12,
				NumSymbols: opts.NumSymbols, Frames: opts.Frames,
				SNRdB: snr, Seed: seedFor(opts, label),
				Workers: inner, Recorder: opts.Recorder,
			}
			newSource := func() link.ChannelSource {
				s, err := link.NewTraceSource(tr)
				if err != nil {
					panic(err)
				}
				return s
			}
			genie, err := link.Run(base, newSource(), d.factory)
			if err != nil {
				return err
			}
			est := base
			est.EstimatedCSI = true
			estm, err := link.Run(est, newSource(), d.factory)
			if err != nil {
				return err
			}
			rows[i] = append(rows[i], []string{
				fmt.Sprintf("%g", snr), d.name,
				fmt.Sprintf("%.1f", genie.NetMbps), fmt.Sprintf("%.2f", genie.FER()),
				fmt.Sprintf("%.1f", estm.NetMbps), fmt.Sprintf("%.2f", estm.FER()),
			})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, r...)
	}
	t.Notes = append(t.Notes,
		"estimation costs preamble air time plus an SNR-dependent FER penalty; Geosphere's advantage over ZF survives both")
	return t, nil
}

// ChannelHardening addresses the §6.2/BigStation discussion: with
// zero-forcing, per-client throughput only hardens once the AP has
// many more antennas than clients (BigStation speculates 2× or more),
// while Geosphere delivers it at na = nc. The sweep holds 4 clients at
// 20 dB and grows the ZF AP's antenna count over Rayleigh fading.
func ChannelHardening(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Channel hardening (§6.2): ZF antennas needed to match Geosphere at na=nc (4 clients, 20 dB)",
		Columns: []string{"detector", "AP antennas", "Mbps", "FER"},
	}
	type point struct {
		factory link.DetectorFactory
		name    string
		na      int
	}
	points := []point{
		{GeosphereFactory, "Geosphere", 4},
		{ZFFactory, "Zero-forcing", 4},
		{ZFFactory, "Zero-forcing", 5},
		{ZFFactory, "Zero-forcing", 6},
		{ZFFactory, "Zero-forcing", 8},
		{ZFFactory, "Zero-forcing", 12},
	}
	rows := make([][]string, len(points))
	outer, inner := opts.splitWorkers(len(points))
	if err := parallelFor(outer, len(points), func(i int) error {
		p := points[i]
		label := fmt.Sprintf("hardening/%s/%d", p.name, p.na)
		cfg := link.RunConfig{
			Cons: constellation.QAM16, Rate: fec.Rate12,
			NumSymbols: opts.NumSymbols, Frames: opts.Frames,
			SNRdB: 20, Seed: seedFor(opts, label),
			Workers: inner, Recorder: opts.Recorder,
		}
		src, err := link.NewRayleighSource(rng.New(seedFor(opts, label)), p.na, 4)
		if err != nil {
			return err
		}
		m, err := link.Run(cfg, src, p.factory)
		if err != nil {
			return err
		}
		rows[i] = []string{p.name, fmt.Sprintf("%d", p.na),
			fmt.Sprintf("%.1f", m.NetMbps), fmt.Sprintf("%.2f", m.FER())}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper §6.4: BigStation speculated needing >2× antennas per user to harden ZF; Geosphere offers 'an alternative solution to using many antennas and radios at the AP'")
	return t, nil
}
