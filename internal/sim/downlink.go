package sim

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/constellation"
	"repro/internal/precode"
	"repro/internal/rng"
	"repro/internal/units"
)

// DownlinkPrecoding reproduces the §6.3 extension: downlink symbol
// error rates and transmit-power penalties of zero-forcing (channel
// inversion) precoding versus the vector-perturbation sphere encoder,
// on square downlink channels where inversion pays the same
// conditioning penalty as uplink ZF.
func DownlinkPrecoding(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Downlink precoding (§6.3): channel inversion vs vector-perturbation sphere encoding (K×K, 16-QAM)",
		Columns: []string{"clients", "SNR(dB)", "ZF SER", "VP SER", "power saved (dB)"},
	}
	type point struct {
		k   int
		snr units.DB
	}
	var points []point
	for _, k := range []int{2, 4} {
		for _, snr := range []units.DB{15, 20, 25} {
			points = append(points, point{k, snr})
		}
	}
	vectors := 80 * opts.Frames // symbol vectors per point
	rows := make([][]string, len(points))
	outer, _ := opts.splitWorkers(len(points))
	if err := parallelFor(outer, len(points), func(i int) error {
		p := points[i]
		src := rng.New(seedFor(opts, fmt.Sprintf("downlink/%d/%g", p.k, p.snr)))
		cons := constellation.QAM16
		zf := precode.NewZF(cons)
		vp := precode.NewVP(cons)
		noiseVar := float64(channel.NoiseVar(p.snr))
		var zfErrs, vpErrs, total int
		var zfPow, vpPow float64
		for v := 0; v < vectors; v++ {
			h := channel.Rayleigh(src, p.k, p.k)
			if err := zf.Prepare(h); err != nil {
				continue // singular draw: skip, both precoders equally
			}
			if err := vp.Prepare(h); err != nil {
				continue
			}
			idx := make([]int, p.k)
			s := make([]complex128, p.k)
			for j := range s {
				idx[j] = src.Intn(cons.Size())
				s[j] = cons.PointIndex(idx[j])
			}
			xz, gz, err := zf.Encode(s)
			if err != nil {
				return err
			}
			xv, gv, err := vp.Encode(s)
			if err != nil {
				return err
			}
			zfPow += gz
			vpPow += gv
			seed := src.Int63()
			yz := h.MulVec(nil, xz)
			yv := h.MulVec(nil, xv)
			nz := rng.New(seed)
			nv := rng.New(seed)
			for j := range yz {
				yz[j] += nz.CN(noiseVar)
				yv[j] += nv.CN(noiseVar)
			}
			for j := range idx {
				total++
				if zf.Decode(yz[j], gz) != idx[j] {
					zfErrs++
				}
				if vp.Decode(yv[j], gv) != idx[j] {
					vpErrs++
				}
			}
		}
		saved := "-"
		if vpPow > 0 {
			saved = fmt.Sprintf("%.1f", 10*math.Log10(zfPow/vpPow))
		}
		rows[i] = []string{
			fmt.Sprintf("%d", p.k), fmt.Sprintf("%g", p.snr),
			fmt.Sprintf("%.4f", float64(zfErrs)/float64(total)),
			fmt.Sprintf("%.4f", float64(vpErrs)/float64(total)),
			saved,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"§6.3: sphere-encoder precoding is complementary to Geosphere's receiver techniques; the two attack the same conditioning penalty from opposite ends of the link")
	return t, nil
}
