package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Table1 reproduces the paper's Table 1: the one-line conclusions of
// the three experiment groups, computed from the same machinery the
// individual figures use (at reduced sweep size).
func Table1(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Table 1: summary of major experimental results",
		Columns: []string{"experiment", "conclusion (this reproduction)"},
	}

	// Channel characterization (§5.1).
	tr22, err := generateTrace(opts, 2, 2)
	if err != nil {
		return nil, err
	}
	tr44, err := generateTrace(opts, 4, 4)
	if err != nil {
		return nil, err
	}
	k22, _, err := conditioningCDFs(tr22)
	if err != nil {
		return nil, err
	}
	k44, _, err := conditioningCDFs(tr44)
	if err != nil {
		return nil, err
	}
	t.AddRow("Channel characterization (§5.1)",
		fmt.Sprintf("2×2 channels poorly conditioned %.0f%% of the time; 4×4 %.0f%% (paper: 60%% / almost always)",
			100*k22.FractionAbove(10), 100*k44.FractionAbove(10)))

	// Throughput comparison (§5.2) at the middle SNR point.
	gain := func(nc, na int) (float64, error) {
		trg, err := generateTrace(opts, nc, na)
		if err != nil {
			return 0, err
		}
		label := fmt.Sprintf("table1/%dx%d", nc, na)
		// Points run sequentially here, so each gets the full budget.
		zf, err := measurePoint(opts, trg, 20, ZFFactory, label+"/zf", opts.workerBudget())
		if err != nil {
			return 0, err
		}
		geo, err := measurePoint(opts, trg, 20, GeosphereFactory, label+"/geo", opts.workerBudget())
		if err != nil {
			return 0, err
		}
		if zf.NetMbps == 0 { //geolint:float-ok exact zero marks a dead link (all frames failed), not a computed threshold
			return -1, nil
		}
		return geo.NetMbps / zf.NetMbps, nil
	}
	g44, err := gain(4, 4)
	if err != nil {
		return nil, err
	}
	g22, err := gain(2, 2)
	if err != nil {
		return nil, err
	}
	fmtGain := func(g float64) string {
		if g < 0 {
			return "∞ (ZF decoded nothing)"
		}
		return fmt.Sprintf("%.2f×", g)
	}
	t.AddRow("Throughput comparison (§5.2)",
		fmt.Sprintf("Geosphere over MU-MIMO ZF at 20 dB: %s for 4×4, %s for 2×2 (paper: 2× / +47%%)",
			fmtGain(g44), fmtGain(g22)))

	// Computational complexity (§5.3): 256-QAM 4×4 Rayleigh at 10% FER.
	fifteenB, err := fig15(opts, 4, 0.10, "internal")
	if err != nil {
		return nil, err
	}
	var reduction string
	for _, row := range fifteenB.Rows {
		if row[0] == "rayleigh" && strings.HasPrefix(row[1], "256") {
			reduction = row[6]
		}
	}
	t.AddRow("Computational complexity (§5.3)",
		fmt.Sprintf("Geosphere needs %s the PED computations of ETH-SD for 256-QAM 4×4 (paper: ~an order of magnitude less)", reduction))
	return t, nil
}

// Experiments maps experiment identifiers to their functions, the
// registry cmd/geosim dispatches on.
var Experiments = map[string]func(Options) (*Table, error){
	"table1":             Table1,
	"fig9":               Fig9,
	"fig10":              Fig10,
	"fig11":              Fig11,
	"fig12":              Fig12,
	"fig13":              Fig13,
	"fig14":              Fig14,
	"fig15a":             Fig15a,
	"fig15b":             Fig15b,
	"pruning-ablation":   PruningAblation,
	"soft-vs-hard":       SoftVsHard,
	"hybrid-ablation":    HybridAblation,
	"ordering-ablation":  OrderingAblation,
	"downlink-precoding": DownlinkPrecoding,
	"estimated-csi":      EstimatedCSI,
	"channel-hardening":  ChannelHardening,
	"iterative-receiver": IterativeReceiver,
	"fer-waterfall":      FERWaterfall,
	"rvd-ablation":       RVDAblation,
	"statprune-ablation": StatisticalPruningAblation,
}

// ExperimentNames returns the registry's keys in a stable order.
func ExperimentNames() []string {
	names := make([]string, 0, len(Experiments))
	for n := range Experiments { //geolint:nondeterminism-ok names are sorted before being returned
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
