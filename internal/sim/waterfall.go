package sim

import (
	"fmt"

	"repro/internal/constellation"
	"repro/internal/fec"
	"repro/internal/link"
	"repro/internal/rng"
)

// FERWaterfall sweeps SNR and prints the coded frame error rate of
// every detector family on 4×4 16-QAM Rayleigh frames — the waterfall
// curves that underlie all of the paper's throughput numbers. The
// maximum-likelihood decoders (Geosphere, ETH-SD) share one curve by
// construction; the gap to the linear detectors is the capacity the
// paper converts into throughput.
func FERWaterfall(opts Options) (*Table, error) {
	t := &Table{
		Title:   "FER waterfall: coded frame error rate vs SNR (4×4, 16-QAM, Rayleigh)",
		Columns: []string{"SNR(dB)", "ZF", "MMSE", "MMSE-SIC", "K-best", "Geosphere"},
	}
	snrs := []float64{10, 13, 16, 19, 22, 25, 28}
	dets := []struct {
		name    string
		factory link.DetectorFactory
	}{
		{"zf", ZFFactory},
		{"mmse", MMSEFactory},
		{"sic", MMSESICFactory},
		{"kbest", KBestFactory},
		{"geo", GeosphereFactory},
	}
	rows := make([][]string, len(snrs))
	outer, inner := opts.splitWorkers(len(snrs))
	if err := parallelFor(outer, len(snrs), func(i int) error {
		snr := snrs[i]
		row := []string{fmt.Sprintf("%g", snr)}
		for _, d := range dets {
			label := fmt.Sprintf("waterfall/%g", snr) // shared: same channels/noise per detector
			cfg := link.RunConfig{
				Cons: constellation.QAM16, Rate: fec.Rate12,
				NumSymbols: opts.NumSymbols, Frames: 2 * opts.Frames,
				SNRdB: snr, Seed: seedFor(opts, label),
				Workers: inner, Recorder: opts.Recorder,
			}
			src, err := link.NewRayleighSource(rng.New(seedFor(opts, label)), 4, 4)
			if err != nil {
				return err
			}
			m, err := link.Run(cfg, src, d.factory)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", m.FER()))
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"the ML curve (Geosphere) falls several dB left of the linear detectors; K-best at K=√|O| tracks it closely until the waterfall")
	return t, nil
}
