package sim

import (
	"errors"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "a note") {
		t.Fatalf("rendering missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestParallelForRunsAll(t *testing.T) {
	var count int64
	if err := parallelFor(8, 100, func(i int) error {
		atomic.AddInt64(&count, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := parallelFor(4, 10, func(i int) error {
		if i == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	// Single-element path too.
	if err := parallelFor(1, 1, func(int) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatal("serial path lost the error")
	}
}

func TestSplitWorkersBudget(t *testing.T) {
	opts := QuickOptions()
	opts.Workers = 8
	for _, tc := range []struct {
		n, outer, inner int
	}{
		{1, 1, 8},
		{2, 2, 4},
		{3, 3, 2},
		{8, 8, 1},
		{100, 8, 1},
		{0, 1, 8},
	} {
		outer, inner := opts.splitWorkers(tc.n)
		if outer != tc.outer || inner != tc.inner {
			t.Fatalf("splitWorkers(%d) = (%d, %d), want (%d, %d)", tc.n, outer, inner, tc.outer, tc.inner)
		}
		if outer*inner > 8 {
			t.Fatalf("splitWorkers(%d) oversubscribes: %d×%d > 8", tc.n, outer, inner)
		}
	}
	// Unset budget falls back to GOMAXPROCS and never returns zeros.
	opts.Workers = 0
	outer, inner := opts.splitWorkers(4)
	if outer < 1 || inner < 1 {
		t.Fatalf("default budget degenerate: (%d, %d)", outer, inner)
	}
}

func TestSeedForStableAndDistinct(t *testing.T) {
	opts := QuickOptions()
	a := seedFor(opts, "fig11/x")
	b := seedFor(opts, "fig11/x")
	c := seedFor(opts, "fig11/y")
	if a != b {
		t.Fatal("seedFor not deterministic")
	}
	if a == c {
		t.Fatal("different labels collided")
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := ExperimentNames()
	if len(names) != len(Experiments) {
		t.Fatalf("%d names for %d experiments", len(names), len(Experiments))
	}
	for _, want := range []string{"table1", "fig9", "fig11", "fig15a", "pruning-ablation"} {
		if _, ok := Experiments[want]; !ok {
			t.Fatalf("experiment %q missing from registry", want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

// TestQuickExperimentsRun drives every registered experiment at
// reduced size — the integration test that every figure's code path
// executes end to end.
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	opts := QuickOptions()
	for _, name := range ExperimentNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tab, err := Experiments[name](opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", name)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s: row width %d, want %d", name, len(row), len(tab.Columns))
				}
			}
		})
	}
}

// TestFig12GeospherePerClientFlat asserts the Figure 12 invariant at
// quick scale: Geosphere's per-client throughput does not collapse as
// clients are added.
func TestFig12GeospherePerClientFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	opts := QuickOptions()
	opts.Frames = 10
	tab, err := Fig12(opts)
	if err != nil {
		t.Fatal(err)
	}
	perClient := make([]float64, 0, len(tab.Rows))
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		perClient = append(perClient, v)
	}
	if perClient[len(perClient)-1] < 0.5*perClient[0] {
		t.Fatalf("Geosphere per-client throughput collapsed: %v", perClient)
	}
}
