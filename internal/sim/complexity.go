package sim

import (
	"fmt"

	"repro/internal/constellation"
	"repro/internal/fec"
	"repro/internal/link"
	"repro/internal/rng"
	"repro/internal/testbed"
)

// runOn measures one detector/constellation at one SNR over a source
// with workers goroutines in the frame pipeline.
func runOn(opts Options, cons *constellation.Constellation, snr float64, frames int,
	newSource func() link.ChannelSource, factory link.DetectorFactory, label string, workers int) (link.Measurement, error) {
	cfg := link.RunConfig{
		Cons:       cons,
		Rate:       fec.Rate12,
		NumSymbols: opts.NumSymbols,
		Frames:     frames,
		SNRdB:      snr,
		Seed:       seedFor(opts, label),
		Workers:    workers,
		Recorder:   opts.Recorder,
	}
	m, err := link.Run(cfg, newSource(), factory)
	if err == nil {
		recordPoint(opts, label, snr, m)
	}
	return m, err
}

// Fig14 reproduces Figure 14: the average number of exact partial
// Euclidean distance computations per subcarrier detection, ETH-SD
// versus Geosphere, for the live-testbed configurations of Figure 11.
// The constellation at each point is the one ideal rate adaptation
// selects for the sphere decoder, so these numbers correspond to the
// computation behind Figure 11's throughput.
func Fig14(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 14: avg partial-distance calculations per subcarrier, ETH-SD vs Geosphere",
		Columns: []string{"configuration", "SNR(dB)", "mod", "ETH-SD PED", "Geo PED", "savings"},
	}
	type point struct {
		sh  shape
		snr float64
	}
	var points []point
	for _, sh := range charShapes {
		for _, snr := range fig11SNRs {
			points = append(points, point{sh, snr})
		}
	}
	traces := map[shape]*testbed.Trace{}
	for _, sh := range charShapes {
		tr, err := generateTrace(opts, sh.nc, sh.na)
		if err != nil {
			return nil, err
		}
		traces[sh] = tr
	}
	rows := make([][]string, len(points))
	outer, inner := opts.splitWorkers(len(points))
	if err := parallelFor(outer, len(points), func(i int) error {
		p := points[i]
		label := fmt.Sprintf("fig14/%s/%g", p.sh, p.snr)
		newSource := func() link.ChannelSource {
			s, err := link.NewTraceSource(traces[p.sh])
			if err != nil {
				panic(err)
			}
			return s
		}
		// Rate adaptation for the sphere decoder picks the operating
		// constellation; both decoders are then measured on it.
		var best link.Measurement
		var bestCons *constellation.Constellation
		for _, cons := range testbedConstellations {
			m, err := runOn(opts, cons, p.snr, opts.Frames, newSource, GeosphereFactory, label+"/geo/"+cons.Name(), inner)
			if err != nil {
				return err
			}
			if bestCons == nil || m.NetMbps > best.NetMbps {
				best, bestCons = m, cons
			}
		}
		// Same label as the winning Geosphere run so both decoders see
		// identical payloads and noise (they then visit identical tree
		// nodes and differ only in PED bookkeeping).
		eth, err := runOn(opts, bestCons, p.snr, opts.Frames, newSource, ETHSDFactory, label+"/geo/"+bestCons.Name(), inner)
		if err != nil {
			return err
		}
		ethPED := eth.Stats.PEDPerDetection()
		geoPED := best.Stats.PEDPerDetection()
		savings := 0.0
		if ethPED > 0 {
			savings = 100 * (1 - geoPED/ethPED)
		}
		rows[i] = []string{
			p.sh.String(), fmt.Sprintf("%g", p.snr), bestCons.Name(),
			fmt.Sprintf("%.1f", ethPED), fmt.Sprintf("%.1f", geoPED),
			fmt.Sprintf("%.0f%%", savings),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper: Geosphere is consistently cheaper; savings grow with SNR (denser constellations), up to 63% at 25 dB")
	return t, nil
}

// fig15Constellations are the dense alphabets of Figure 15.
var fig15Constellations = []*constellation.Constellation{
	constellation.QAM16, constellation.QAM64, constellation.QAM256,
}

// findSNRForFER sweeps SNR upward until the coded frame error rate
// drops to the target, reproducing the §5.3.2 methodology ("an SNR
// such that each constellation reaches a frame error rate of
// approximately 10%"). It returns the first probe at or below target.
func findSNRForFER(opts Options, cons *constellation.Constellation, target float64,
	newSource func() link.ChannelSource, label string, workers int) (float64, error) {
	for snr := 12.0; snr <= 48; snr += 3 {
		m, err := runOn(opts, cons, snr, opts.SearchFrames, newSource, GeosphereFactory,
			fmt.Sprintf("%s/search/%g", label, snr), workers)
		if err != nil {
			return 0, err
		}
		if m.FER() <= target {
			return snr, nil
		}
	}
	return 48, nil
}

// fig15Point measures the three decoders at the FER-target SNR over
// one channel kind and constellation.
func fig15Point(opts Options, cons *constellation.Constellation, target float64,
	newSource func() link.ChannelSource, label string, workers int) (snr float64, eth, zig, geo float64, err error) {
	snr, err = findSNRForFER(opts, cons, target, newSource, label, workers)
	if err != nil {
		return
	}
	type run struct {
		factory link.DetectorFactory
		out     *float64
	}
	for _, r := range []run{
		{ETHSDFactory, &eth},
		{ZigzagOnlyFactory, &zig},
		{GeosphereFactory, &geo},
	} {
		var m link.Measurement
		m, err = runOn(opts, cons, snr, opts.Frames, newSource, r.factory, label+"/measure", workers)
		if err != nil {
			return
		}
		*r.out = m.Stats.PEDPerDetection()
	}
	return
}

// fig15 generates Figure 15(a) (nc=2) or 15(b) (nc=4): per-subcarrier
// PED computations for ETH-SD, 2D-zigzag-only Geosphere and full
// Geosphere at ≈10% frame error rate, over both a per-frame Rayleigh
// channel and recorded testbed traces.
func fig15(opts Options, nc int, target float64, title string) (*Table, error) {
	t := &Table{
		Title:   title,
		Columns: []string{"channel", "mod", "SNR*(dB)", "ETH-SD", "2D-zigzag", "Geo full", "Geo vs ETH", "pruning gain"},
	}
	tr, err := generateTrace(opts, nc, 4)
	if err != nil {
		return nil, err
	}
	type point struct {
		kind string
		cons *constellation.Constellation
	}
	var points []point
	for _, kind := range []string{"rayleigh", "testbed"} {
		for _, cons := range fig15Constellations {
			points = append(points, point{kind, cons})
		}
	}
	rows := make([][]string, len(points))
	outer, inner := opts.splitWorkers(len(points))
	if err := parallelFor(outer, len(points), func(i int) error {
		p := points[i]
		label := fmt.Sprintf("%s/%d/%s/%s", title, nc, p.kind, p.cons.Name())
		newSource := func() link.ChannelSource {
			if p.kind == "rayleigh" {
				s, err := link.NewRayleighSource(rng.New(seedFor(opts, label)), 4, nc)
				if err != nil {
					panic(err)
				}
				return s
			}
			s, err := link.NewTraceSource(tr)
			if err != nil {
				panic(err)
			}
			return s
		}
		snr, eth, zig, geo, err := fig15Point(opts, p.cons, target, newSource, label, inner)
		if err != nil {
			return err
		}
		vsETH, pruneGain := "-", "-"
		if eth > 0 {
			vsETH = fmt.Sprintf("-%.0f%%", 100*(1-geo/eth))
		}
		if zig > 0 {
			pruneGain = fmt.Sprintf("%.0f%%", 100*(1-geo/zig))
		}
		rows[i] = []string{
			p.kind, p.cons.Name(), fmt.Sprintf("%g", snr),
			fmt.Sprintf("%.1f", eth), fmt.Sprintf("%.1f", zig), fmt.Sprintf("%.1f", geo),
			vsETH, pruneGain,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Fig15a reproduces Figure 15(a): two clients, four AP antennas.
func Fig15a(opts Options) (*Table, error) {
	t, err := fig15(opts, 2, 0.10, "Figure 15(a): PED calculations at ≈10% FER, 2 clients × 4 AP antennas")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: ETH-SD complexity grows with constellation size; Geosphere stays near-flat, 81% cheaper at 256-QAM (Rayleigh); pruning adds ~27%")
	return t, nil
}

// Fig15b reproduces Figure 15(b): four clients, four AP antennas.
func Fig15b(opts Options) (*Table, error) {
	t, err := fig15(opts, 4, 0.10, "Figure 15(b): PED calculations at ≈10% FER, 4 clients × 4 AP antennas")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: Geosphere up to 70% cheaper than ETH-SD (Rayleigh); zigzag dominates the gain, pruning adds 13-17%")
	return t, nil
}

// PruningAblation reproduces the §5.3.2 discussion: at a 1% frame
// error rate target (higher SNR), geometric pruning's share of the
// savings grows — the first leaf is usually correct and pruning
// retires the rest of the tree without further distance computations.
func PruningAblation(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Pruning ablation: zigzag-only vs full Geosphere at ≈1% FER (4×4, Rayleigh)",
		Columns: []string{"mod", "SNR*(dB)", "2D-zigzag PED", "Geo full PED", "pruning gain"},
	}
	rows := make([][]string, len(fig15Constellations))
	outer, inner := opts.splitWorkers(len(fig15Constellations))
	if err := parallelFor(outer, len(fig15Constellations), func(i int) error {
		cons := fig15Constellations[i]
		label := "ablation/" + cons.Name()
		newSource := func() link.ChannelSource {
			s, err := link.NewRayleighSource(rng.New(seedFor(opts, label)), 4, 4)
			if err != nil {
				panic(err)
			}
			return s
		}
		snr, _, zig, geo, err := fig15Point(opts, cons, 0.01, newSource, label, inner)
		if err != nil {
			return err
		}
		gain := "-"
		if zig > 0 {
			gain = fmt.Sprintf("%.0f%%", 100*(1-geo/zig))
		}
		rows[i] = []string{cons.Name(), fmt.Sprintf("%g", snr),
			fmt.Sprintf("%.1f", zig), fmt.Sprintf("%.1f", geo), gain}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper: at 1% target error rates geometric pruning reaches a 47% improvement over zigzag-only")
	return t, nil
}
