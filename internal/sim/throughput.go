package sim

import (
	"fmt"

	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/link"
	"repro/internal/rng"
	"repro/internal/testbed"
)

// testbedConstellations are the alphabets the WARP implementation
// transmits (§4): 4-, 16- and 64-QAM, all at rate-1/2 coding.
var testbedConstellations = []*constellation.Constellation{
	constellation.QPSK, constellation.QAM16, constellation.QAM64,
}

// fig11SNRs are the three average-SNR operating points of Figure 11.
var fig11SNRs = []float64{15, 20, 25}

// measurePoint runs rate-adapted throughput for one detector at one
// configuration and SNR over a testbed trace, spending at most workers
// goroutines inside RateAdapt's candidate and frame loops.
func measurePoint(opts Options, tr *testbed.Trace, snr float64, factory link.DetectorFactory, label string, workers int) (link.Measurement, error) {
	cfg := link.RunConfig{
		Rate:       fec.Rate12,
		NumSymbols: opts.NumSymbols,
		Frames:     opts.Frames,
		SNRdB:      snr,
		Seed:       seedFor(opts, label),
		Workers:    workers,
		Recorder:   opts.Recorder,
	}
	newSource := func() link.ChannelSource {
		s, err := link.NewTraceSource(tr)
		if err != nil {
			panic(err) // trace validated at generation time
		}
		return s
	}
	m, err := link.RateAdapt(cfg, testbedConstellations, newSource, factory)
	if err == nil {
		recordPoint(opts, label, snr, m)
	}
	return m, err
}

// Fig11 reproduces the testbed throughput comparison of Figure 11:
// zero-forcing versus Geosphere for {2×2, 2×4, 3×4, 4×4} at average
// SNRs of 15, 20 and 25 dB, with ideal rate adaptation over 4/16/64-QAM
// and rate-1/2 convolutional coding.
func Fig11(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 11: testbed net throughput (Mbps), ZF vs Geosphere",
		Columns: []string{"configuration", "SNR(dB)", "ZF Mbps", "ZF mod", "Geo Mbps", "Geo mod", "gain"},
	}
	type point struct {
		sh  shape
		snr float64
	}
	var points []point
	for _, sh := range charShapes {
		for _, snr := range fig11SNRs {
			points = append(points, point{sh, snr})
		}
	}
	rows := make([][]string, len(points))
	traces := map[shape]*testbed.Trace{}
	for _, sh := range charShapes {
		tr, err := generateTrace(opts, sh.nc, sh.na)
		if err != nil {
			return nil, err
		}
		traces[sh] = tr
	}
	outer, inner := opts.splitWorkers(len(points))
	if err := parallelFor(outer, len(points), func(i int) error {
		p := points[i]
		label := fmt.Sprintf("fig11/%s/%g", p.sh, p.snr)
		zf, err := measurePoint(opts, traces[p.sh], p.snr, ZFFactory, label+"/zf", inner)
		if err != nil {
			return err
		}
		geo, err := measurePoint(opts, traces[p.sh], p.snr, GeosphereFactory, label+"/geo", inner)
		if err != nil {
			return err
		}
		gain := "∞"
		if zf.NetMbps > 0 {
			gain = fmt.Sprintf("%.2f×", geo.NetMbps/zf.NetMbps)
		}
		rows[i] = []string{
			p.sh.String(), fmt.Sprintf("%g", p.snr),
			fmt.Sprintf("%.1f", zf.NetMbps), zf.Constellation,
			fmt.Sprintf("%.1f", geo.NetMbps), geo.Constellation,
			gain,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper: Geosphere gains up to 47% at 2×2 and >2× at 4×4; ≈6% for well-conditioned 2-3 clients × 4 antennas")
	return t, nil
}

// Fig12 reproduces Figure 12: uplink throughput of a four-antenna AP
// versus the number of simultaneously transmitting clients at 20 dB —
// Geosphere scales linearly where zero-forcing flattens.
func Fig12(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 12: throughput vs clients, 4-antenna AP at 20 dB",
		Columns: []string{"clients", "ZF Mbps", "Geo Mbps", "gain", "Geo Mbps/client"},
	}
	clientCounts := []int{1, 2, 3, 4}
	rows := make([][]string, len(clientCounts))
	outer, inner := opts.splitWorkers(len(clientCounts))
	if err := parallelFor(outer, len(clientCounts), func(i int) error {
		nc := clientCounts[i]
		tr, err := generateTrace(opts, nc, 4)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("fig12/%d", nc)
		zf, err := measurePoint(opts, tr, 20, ZFFactory, label+"/zf", inner)
		if err != nil {
			return err
		}
		geo, err := measurePoint(opts, tr, 20, GeosphereFactory, label+"/geo", inner)
		if err != nil {
			return err
		}
		gain := "∞"
		if zf.NetMbps > 0 {
			gain = fmt.Sprintf("%.2f×", geo.NetMbps/zf.NetMbps)
		}
		rows[i] = []string{
			fmt.Sprintf("%d", nc),
			fmt.Sprintf("%.1f", zf.NetMbps),
			fmt.Sprintf("%.1f", geo.NetMbps),
			gain,
			fmt.Sprintf("%.1f", geo.NetMbps/float64(nc)),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper: Geosphere throughput grows linearly with clients; per-client throughput stays flat, unlike ZF")
	return t, nil
}

// Fig13 reproduces the simulation of Figure 13: a ten-antenna AP at
// 20 dB over per-frame Rayleigh fading, comparing zero-forcing,
// MMSE-SIC and Geosphere as the client count grows to ten.
func Fig13(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 13: 10-antenna AP over Rayleigh fading at 20 dB",
		Columns: []string{"clients", "ZF Mbps", "MMSE-SIC Mbps", "Geo Mbps", "Geo/ZF"},
	}
	clientCounts := []int{2, 4, 6, 8, 10}
	type res struct{ zf, sic, geo link.Measurement }
	rows := make([][]string, len(clientCounts))
	// A 10-stream exact search at hopeless operating points (dense
	// constellations the rate adaptation will discard anyway) has an
	// unbounded tail; budget the tree like a real-time receiver would.
	// At viable operating points the budget is never hit, so the
	// reported throughput stays maximum likelihood.
	budgeted := func(cons *constellation.Constellation, _ float64) core.Detector {
		d := core.NewGeosphere(cons)
		d.SetNodeBudget(10000)
		return d
	}
	frames := opts.Frames
	if frames > 30 {
		frames = 30 // 5 client counts × 3 detectors × 3 constellations
	}
	outer, inner := opts.splitWorkers(len(clientCounts))
	if err := parallelFor(outer, len(clientCounts), func(i int) error {
		nc := clientCounts[i]
		label := fmt.Sprintf("fig13/%d", nc)
		cfg := link.RunConfig{
			Rate:       fec.Rate12,
			NumSymbols: opts.NumSymbols,
			Frames:     frames,
			SNRdB:      20,
			Seed:       seedFor(opts, label),
			Workers:    inner,
			Recorder:   opts.Recorder,
		}
		var r res
		for _, run := range []struct {
			dst     *link.Measurement
			factory link.DetectorFactory
			tag     string
		}{
			{&r.zf, ZFFactory, "zf"},
			{&r.sic, MMSESICFactory, "sic"},
			{&r.geo, budgeted, "geo"},
		} {
			newSource := func() link.ChannelSource {
				s, err := link.NewRayleighSource(rng.New(seedFor(opts, label+run.tag)), 10, nc)
				if err != nil {
					panic(err)
				}
				return s
			}
			m, err := link.RateAdapt(cfg, testbedConstellations, newSource, run.factory)
			if err != nil {
				return err
			}
			recordPoint(opts, label+"/"+run.tag, 20, m)
			*run.dst = m
		}
		ratio := "∞"
		if r.zf.NetMbps > 0 {
			ratio = fmt.Sprintf("%.2f×", r.geo.NetMbps/r.zf.NetMbps)
		}
		rows[i] = []string{
			fmt.Sprintf("%d", nc),
			fmt.Sprintf("%.1f", r.zf.NetMbps),
			fmt.Sprintf("%.1f", r.sic.NetMbps),
			fmt.Sprintf("%.1f", r.geo.NetMbps),
			ratio,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"paper: near the antenna count, Geosphere is almost 2× ZF (10×10); MMSE-SIC sits between, limited by error propagation")
	return t, nil
}
