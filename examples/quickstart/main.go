// Quickstart: detect one 4×4 MIMO, 16-QAM symbol vector with the
// Geosphere sphere decoder and compare against zero-forcing on the
// same channel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	geosphere "repro"
)

func main() {
	cons := geosphere.QAM16
	src := geosphere.NewSource(42)

	// A 4×4 uplink: four single-antenna clients, one four-antenna AP.
	h := geosphere.NewRayleighChannel(src, 4, 4)
	fmt.Printf("channel conditioning: κ² = %.1f dB, Λ = %.1f dB\n",
		geosphere.Kappa2dB(h), geosphere.LambdaDB(h))

	// Each client transmits one random constellation point.
	sent := make([]int, 4)
	x := make([]complex128, 4)
	for i := range x {
		sent[i] = src.Intn(cons.Size())
		x[i] = cons.PointIndex(sent[i])
	}

	// Over the air at 18 dB SNR.
	noiseVar := geosphere.NoiseVarForSNRdB(18)
	y := geosphere.Transmit(nil, src, h, x, noiseVar)

	for _, det := range []geosphere.Detector{
		geosphere.NewGeosphere(cons),
		geosphere.NewZF(cons),
	} {
		if err := det.Prepare(h); err != nil {
			log.Fatalf("%s: %v", det.Name(), err)
		}
		got, err := det.Detect(nil, y)
		if err != nil {
			log.Fatalf("%s: %v", det.Name(), err)
		}
		errors := 0
		for i := range sent {
			if got[i] != sent[i] {
				errors++
			}
		}
		fmt.Printf("%-14s detected %v (sent %v) — %d symbol errors\n",
			det.Name(), got, sent, errors)
		if st, ok := geosphere.StatsOf(det); ok {
			fmt.Printf("               %d partial-distance calculations, %d tree nodes visited\n",
				st.PEDCalcs, st.VisitedNodes)
		}
	}
}
