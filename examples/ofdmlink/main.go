// OFDM link: a complete time-domain single-stream link — OFDM
// modulation with cyclic prefix, a multipath channel, least-squares
// channel estimation from a preamble, per-subcarrier equalization and
// demodulation — the substrate under the MIMO experiments, driven
// end-to-end through the public API.
//
//	go run ./examples/ofdmlink
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	geosphere "repro"
)

func main() {
	cons := geosphere.QAM64
	src := geosphere.NewSource(99)

	// Build one OFDM symbol of random 64-QAM data.
	data := make([]complex128, geosphere.OFDMDataCarriers)
	sent := make([]int, geosphere.OFDMDataCarriers)
	for i := range data {
		sent[i] = src.Intn(cons.Size())
		data[i] = cons.PointIndex(sent[i])
	}

	// Preamble for channel estimation + the data symbol.
	ref := geosphere.OFDMPreamble()
	preamble, err := geosphere.OFDMModulate(nil, ref)
	if err != nil {
		log.Fatal(err)
	}
	payload, err := geosphere.OFDMModulate(nil, data)
	if err != nil {
		log.Fatal(err)
	}

	// A three-tap multipath channel inside the cyclic prefix, plus
	// AWGN at 30 dB relative to the measured time-domain signal power
	// (the IFFT spreads unit-energy subcarriers over 64 samples, so
	// the noise must be scaled to the samples, not the bins).
	taps := []complex128{complex(0.85, 0.1), complex(0.35, -0.25), complex(0.12, 0.07)}
	var txPower float64
	for _, v := range payload {
		txPower += real(v)*real(v) + imag(v)*imag(v)
	}
	txPower /= float64(len(payload))
	noiseVar := txPower * geosphere.NoiseVarForSNRdB(30)
	convolve := func(x []complex128) []complex128 {
		y := make([]complex128, len(x))
		for n := range x {
			var s complex128
			for d, tap := range taps {
				if n-d >= 0 {
					s += tap * x[n-d]
				}
			}
			y[n] = s + src.CN(noiseVar)
		}
		return y
	}
	rxPre := convolve(preamble)
	rxPay := convolve(payload)

	// Receiver: demodulate the preamble, estimate the channel,
	// equalize the payload per subcarrier, slice.
	preBins := make([]complex128, geosphere.OFDMDataCarriers)
	if err := geosphere.OFDMDemodulate(preBins, rxPre); err != nil {
		log.Fatal(err)
	}
	est := make([]complex128, geosphere.OFDMDataCarriers)
	if err := geosphere.OFDMEstimateChannel(est, preBins, ref); err != nil {
		log.Fatal(err)
	}
	payBins := make([]complex128, geosphere.OFDMDataCarriers)
	if err := geosphere.OFDMDemodulate(payBins, rxPay); err != nil {
		log.Fatal(err)
	}

	errors := 0
	var evm float64
	for i := range payBins {
		eq := payBins[i] / est[i]
		evm += cmplx.Abs(eq-data[i]) * cmplx.Abs(eq-data[i])
		col, row := cons.Slice(eq)
		if cons.Index(col, row) != sent[i] {
			errors++
		}
	}
	fmt.Printf("multipath OFDM link, %s over %d subcarriers at 30 dB SNR\n",
		cons.Name(), geosphere.OFDMDataCarriers)
	fmt.Printf("  channel taps: %v\n", taps)
	fmt.Printf("  post-equalization EVM: %.4f\n", evm/float64(len(payBins)))
	fmt.Printf("  symbol errors: %d / %d\n", errors, len(payBins))
	if errors == 0 {
		fmt.Println("  link clean: cyclic prefix turned multipath into per-subcarrier scalars")
	}
}
