// Downlink precoding: the §6.3 complement to Geosphere's uplink
// receiver. The AP pre-distorts its transmission so each single-
// antenna client hears only its own stream. Plain channel inversion
// pays a large power penalty on poorly-conditioned channels — the same
// penalty uplink zero-forcing pays as noise amplification — and the
// vector-perturbation sphere encoder recovers most of it.
//
//	go run ./examples/downlink
package main

import (
	"fmt"
	"log"
	"math"

	geosphere "repro"
)

func main() {
	cons := geosphere.QAM16
	src := geosphere.NewSource(17)
	const (
		clients = 4
		trials  = 300
		snrdB   = 22
	)
	zf := geosphere.NewZFPrecoder(cons)
	vp := geosphere.NewVPPrecoder(cons)
	noiseVar := geosphere.NoiseVarForSNRdB(snrdB)

	var zfErrs, vpErrs, total int
	var zfPow, vpPow float64
	for trial := 0; trial < trials; trial++ {
		// Square downlink (4 clients, 4 antennas): conditioning bites.
		h := geosphere.NewRayleighChannel(src, clients, clients)
		if err := zf.Prepare(h); err != nil {
			continue
		}
		if err := vp.Prepare(h); err != nil {
			continue
		}
		idx := make([]int, clients)
		s := make([]complex128, clients)
		for i := range s {
			idx[i] = src.Intn(cons.Size())
			s[i] = cons.PointIndex(idx[i])
		}
		xz, gz, err := zf.Encode(s)
		if err != nil {
			log.Fatal(err)
		}
		xv, gv, err := vp.Encode(s)
		if err != nil {
			log.Fatal(err)
		}
		zfPow += gz
		vpPow += gv
		// Each client hears its channel row applied to the transmit
		// vector plus noise.
		yz := h.MulVec(nil, xz)
		yv := h.MulVec(nil, xv)
		for i := range yz {
			yz[i] += src.CN(noiseVar)
			yv[i] += src.CN(noiseVar)
		}
		for i := range idx {
			total++
			if zf.Decode(yz[i], gz) != idx[i] {
				zfErrs++
			}
			if vp.Decode(yv[i], gv) != idx[i] {
				vpErrs++
			}
		}
	}
	fmt.Printf("downlink, %d clients × %d antennas, %s at %d dB (%d symbol vectors)\n",
		clients, clients, cons.Name(), snrdB, trials)
	fmt.Printf("  channel inversion:    SER %.4f, mean power factor γ = %.1f\n",
		float64(zfErrs)/float64(total), zfPow/trials)
	fmt.Printf("  vector perturbation:  SER %.4f, mean power factor γ = %.1f\n",
		float64(vpErrs)/float64(total), vpPow/trials)
	fmt.Printf("  perturbation search saves %.1f dB of transmit power\n",
		10*math.Log10(zfPow/vpPow))
	fmt.Println("\nThe same conditioning penalty Geosphere removes at the receiver is")
	fmt.Println("removed here at the transmitter — the two compose across the link.")
}
