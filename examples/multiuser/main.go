// Multi-user uplink: the Figure 12 scenario through the full coded
// PHY pipeline. A four-antenna AP serves a growing number of
// single-antenna clients over the synthetic indoor testbed; Geosphere
// keeps per-client throughput flat where zero-forcing saturates.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"

	geosphere "repro"
)

func main() {
	fmt.Println("Coded uplink throughput, 4-antenna AP at 20 dB over the indoor testbed")
	fmt.Printf("%-8s %14s %14s %16s\n", "clients", "ZF (Mbps)", "Geosphere", "Geo per client")
	for nc := 1; nc <= 4; nc++ {
		base := geosphere.UplinkOptions{
			Cons:       geosphere.QAM16,
			NumSymbols: 8,
			Frames:     30,
			SNRdB:      20,
			Seed:       100 + int64(nc),
			NA:         4,
			NC:         nc,
		}
		zfOpts := base
		zfOpts.Detector = func(cons *geosphere.Constellation, _ float64) geosphere.Detector {
			return geosphere.NewZF(cons)
		}
		zf, err := geosphere.MeasureUplinkTestbed(zfOpts)
		if err != nil {
			log.Fatal(err)
		}
		geo, err := geosphere.MeasureUplinkTestbed(base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %14.1f %14.1f %16.1f\n",
			nc, zf.NetMbps, geo.NetMbps, geo.NetMbps/float64(nc))
	}
	fmt.Println("\nGeosphere's throughput grows linearly with the client count; adding")
	fmt.Println("a client does not hurt the others, which zero-forcing cannot promise.")
}
