// Streaming: serve uplink frames through a long-lived
// geosphere.Receiver session instead of a one-shot batch measurement.
// A Receiver owns persistent per-worker detectors and channel-
// preparation caches behind a bounded frame queue; frames go in one at
// a time (ProcessFrame) or from a channel (ProcessStream), and the
// outcome of frame i depends only on (options, i, channels) — the
// same value the batch MeasureUplink* path would compute.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	geosphere "repro"
)

func main() {
	// One session for the whole program: validated once, workers and
	// detector state built once, reused for every frame.
	rx, err := geosphere.NewReceiver(geosphere.ReceiverOptions{
		Cons:       geosphere.QAM16,
		NumSymbols: 8,
		SNRdB:      28,
		Seed:       42,
		NA:         4, // AP antennas
		NC:         2, // concurrently transmitting clients
		Workers:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rx.Close()

	// Frame-by-frame: each client pair's frame arrives with its channel
	// state (here a fresh Rayleigh draw per frame; one matrix means
	// "flat across all subcarriers").
	src := geosphere.NewSource(7)
	ctx := context.Background()
	for i := int64(0); i < 3; i++ {
		h := geosphere.NewRayleighChannel(src, 4, 2)
		out, err := rx.ProcessFrame(ctx, geosphere.UplinkFrame{
			Index:    i,
			Channels: []*geosphere.Matrix{h},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: ok=%v  %d/%d symbol errors  %d tree nodes\n",
			out.Frame, out.OK(), out.SymbolErrors, out.Symbols, out.Stats.VisitedNodes)
	}

	// Stream form: pump a channel of frames through the session and
	// fold the outcomes into the same UplinkResult the batch API
	// reports. Outcomes arrive in submission order.
	in := make(chan geosphere.UplinkFrame)
	outs := make(chan geosphere.FrameOutcome, 8)
	go func() {
		for i := int64(0); i < 8; i++ {
			h := geosphere.NewRayleighChannel(src, 4, 2)
			in <- geosphere.UplinkFrame{Index: i, Channels: []*geosphere.Matrix{h}}
		}
		close(in)
	}()
	collected := make([]geosphere.FrameOutcome, 0, 8)
	done := make(chan error, 1)
	go func() {
		for out := range outs {
			collected = append(collected, out)
			if len(collected) == cap(collected) {
				break
			}
		}
		done <- nil
	}()
	if err := rx.ProcessStream(ctx, in, outs); err != nil {
		log.Fatal(err)
	}
	<-done

	res := rx.Aggregate(collected)
	fmt.Printf("stream of %d frames: %.1f Mbit/s net, per-stream FER %.2f (%s, %s)\n",
		res.Frames, res.NetMbps, res.PerStreamFER, res.Detector, res.Constellation)
}
