// Ill-conditioned channels: the Figure 2(b) scenario. When the MIMO
// channel matrix is poorly conditioned, zero-forcing amplifies noise
// and its symbol error rate collapses, while the maximum-likelihood
// sphere decoder keeps working. This example sweeps channel
// correlation and SNR and prints the resulting error rates for
// zero-forcing, MMSE, MMSE-SIC and Geosphere.
//
//	go run ./examples/illconditioned
package main

import (
	"fmt"
	"log"

	geosphere "repro"
)

const (
	trials = 400
	nc     = 2
	na     = 2
)

func main() {
	cons := geosphere.QAM16
	fmt.Println("Symbol error rates over 2×2 16-QAM channels (400 vectors per point)")
	fmt.Printf("%-28s %8s | %10s %10s %10s %10s\n",
		"channel", "SNR(dB)", "ZF", "MMSE", "MMSE-SIC", "Geosphere")
	for _, rho := range []float64{0.0, 0.9, 0.99} {
		for _, snr := range []float64{15, 25} {
			noiseVar := geosphere.NoiseVarForSNRdB(snr)
			dets := []geosphere.Detector{
				geosphere.NewZF(cons),
				geosphere.NewMMSE(cons, noiseVar),
				geosphere.NewMMSESIC(cons, noiseVar),
				geosphere.NewGeosphere(cons),
			}
			sers := make([]float64, len(dets))
			var avgLambda float64
			src := geosphere.NewSource(7)
			for trial := 0; trial < trials; trial++ {
				h, err := geosphere.NewCorrelatedChannel(src, na, nc, rho, rho)
				if err != nil {
					log.Fatal(err)
				}
				avgLambda += geosphere.LambdaDB(h) / trials
				sent := make([]int, nc)
				x := make([]complex128, nc)
				for i := range x {
					sent[i] = src.Intn(cons.Size())
					x[i] = cons.PointIndex(sent[i])
				}
				y := geosphere.Transmit(nil, src, h, x, noiseVar)
				for di, det := range dets {
					if err := det.Prepare(h); err != nil {
						log.Fatal(err)
					}
					got, err := det.Detect(nil, y)
					if err != nil {
						log.Fatal(err)
					}
					for i := range sent {
						if got[i] != sent[i] {
							sers[di] += 1 / float64(trials*nc)
						}
					}
				}
			}
			label := fmt.Sprintf("ρ=%.2f (avg Λ %.1f dB)", rho, avgLambda)
			fmt.Printf("%-28s %8.0f | %10.4f %10.4f %10.4f %10.4f\n",
				label, snr, sers[0], sers[1], sers[2], sers[3])
		}
	}
	fmt.Println("\nAs correlation (and Λ) grows, zero-forcing's error rate explodes")
	fmt.Println("while Geosphere degrades gracefully — the capacity gap the paper closes.")
}
