package geosphere

import (
	"repro/internal/cmplxmat"
	"repro/internal/precode"
)

// Precoder is a downlink multi-user precoder (§6.3): Prepare fixes the
// K×nt downlink channel (one row per client), Encode maps per-client
// symbols to a unit-power transmit vector plus the power factor γ the
// clients rescale by, and Decode recovers one client's symbol from its
// received scalar.
type Precoder interface {
	Name() string
	Prepare(h *cmplxmat.Matrix) error
	Encode(s []complex128) (x []complex128, gamma float64, err error)
	Decode(yk complex128, gamma float64) int
}

var (
	_ Precoder = (*precode.ZFPrecoder)(nil)
	_ Precoder = (*precode.VPPrecoder)(nil)
)

// NewZFPrecoder returns plain channel-inversion (zero-forcing)
// precoding — the downlink twin of the uplink ZF receiver, with the
// same conditioning-driven power penalty.
func NewZFPrecoder(cons *Constellation) Precoder { return precode.NewZF(cons) }

// NewVPPrecoder returns the vector-perturbation sphere encoder
// (Hochwald, Peel & Swindlehurst), which the paper's §6.3 identifies
// as complementary to Geosphere's receiver-side techniques: a sphere
// search over a complex-integer lattice picks the perturbation that
// minimizes transmit power.
func NewVPPrecoder(cons *Constellation) Precoder { return precode.NewVP(cons) }
