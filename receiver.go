package geosphere

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cmplxmat"
	"repro/internal/link"
	"repro/internal/ofdm"
	"repro/internal/phy"
)

// NumSubcarriers is the number of OFDM data subcarriers per frame
// (the 802.11-style 48-of-64 layout the whole pipeline assumes).
// UplinkFrame.Channels carries either one matrix (flat in frequency)
// or exactly this many (frequency-selective).
const NumSubcarriers = ofdm.NumData

// ReceiverOptions configures a long-lived Receiver session. It is
// UplinkOptions minus the batch horizon (Frames) plus the streaming
// knobs (QueueDepth); the zero value of every optional field keeps the
// batch path's defaults, so a Receiver built from the same parameters
// reproduces MeasureUplink* exactly.
type ReceiverOptions struct {
	// Cons is the transmit constellation.
	Cons *Constellation
	// NumSymbols is the OFDM symbols per frame (4 µs each).
	NumSymbols int
	// SNRdB is the average per-stream SNR.
	SNRdB DB
	// Seed fixes the session's determinism root: frame i's randomness
	// is the substream (Seed, i) regardless of submission order,
	// worker count or queue depth.
	Seed int64
	// NA and NC are the AP antenna and client counts.
	NA, NC int
	// Detector builds each worker's persistent detector; defaults to
	// NewGeosphere.
	Detector DetectorFactory
	// SNRJitterDB spreads per-client power over ±dB around SNRdB per
	// frame (the §5.2 "SNR range" user-selection methodology).
	SNRJitterDB DB
	// EstimatedCSI switches the receiver to noisy preamble-based
	// channel estimates, charging the preamble's air time in
	// Aggregate's throughput accounting.
	EstimatedCSI bool
	// Workers bounds the goroutines detecting frames concurrently.
	// Outcomes are byte-identical for every value; 0 means 1.
	Workers int
	// QueueDepth bounds the session's frame queue — the backpressure
	// and admission-control knob. 0 means 4× workers.
	QueueDepth int
	// AdaptiveDetect replaces the detector with the condition-adaptive
	// per-subcarrier scheduler; see UplinkOptions.AdaptiveDetect.
	AdaptiveDetect bool
	// Observer, when non-nil, receives per-detection, per-decode and
	// per-frame samples as frames stream through. It must be safe for
	// concurrent use; observing never changes outcomes.
	Observer Observer
}

// Validate rejects option sets that would fail deep inside the
// pipeline, wrapping the package's typed sentinels for errors.Is.
func (o ReceiverOptions) Validate() error {
	if o.NC <= 0 || o.NA < o.NC {
		return fmt.Errorf("%w: %d antennas × %d clients", ErrBadShape, o.NA, o.NC)
	}
	if err := o.runConfig().ValidateFormat(); err != nil {
		return fmt.Errorf("geosphere: %w", err)
	}
	return nil
}

func (o ReceiverOptions) runConfig() link.RunConfig {
	return o.uplinkOptions().runConfig()
}

// uplinkOptions maps back to the batch option set (Frames unset).
func (o ReceiverOptions) uplinkOptions() UplinkOptions {
	return UplinkOptions{
		Cons:         o.Cons,
		NumSymbols:   o.NumSymbols,
		SNRdB:        o.SNRdB,
		Seed:         o.Seed,
		NA:           o.NA,
		NC:           o.NC,
		Detector:     o.Detector,
		SNRJitterDB:  o.SNRJitterDB,
		EstimatedCSI: o.EstimatedCSI,
		Workers:      o.Workers,
		QueueDepth:   o.QueueDepth,
		Observer:     o.Observer,

		AdaptiveDetect: o.AdaptiveDetect,
	}
}

// UplinkFrame is one frame of streaming input: a caller-chosen index
// (which fixes the frame's deterministic RNG substream — the batch
// path uses 0..Frames-1) and the frame's channel state. Channels holds
// either a single NA×NC matrix, replicated across all NumSubcarriers
// data subcarriers (the narrowband model), or exactly NumSubcarriers
// matrices (frequency-selective). Matrices are shared, not copied —
// they must not be mutated until the frame's outcome is delivered.
type UplinkFrame struct {
	Index    int64
	Channels []*Matrix
}

// FrameOutcome is one streamed frame's result. Err is set when the
// frame failed inside the pipeline (bad channel shape, encode or
// detection failure); all other fields are then zero.
type FrameOutcome struct {
	// Frame echoes the UplinkFrame.Index.
	Frame int64
	// StreamOK[k] reports whether client k's CRC verified.
	StreamOK []bool
	// SymbolErrors and Symbols count wrong and total pre-FEC
	// constellation decisions.
	SymbolErrors int
	Symbols      int
	// Stats is the frame's share of detector complexity counters.
	Stats Stats
	// Err is the frame's pipeline error, nil on success.
	Err error
}

// OK reports whether every stream decoded cleanly.
func (o FrameOutcome) OK() bool {
	if o.Err != nil || len(o.StreamOK) == 0 {
		return false
	}
	for _, ok := range o.StreamOK {
		if !ok {
			return false
		}
	}
	return true
}

// Receiver is a long-lived uplink detection session: persistent
// per-worker detectors and channel-preparation caches behind a bounded
// frame queue, fed frame-by-frame (ProcessFrame) or from a channel
// (ProcessStream) instead of one batch call. It is safe for concurrent
// use by any number of submitters, and every frame's outcome is a pure
// function of (options, frame index, channels) — byte-identical to
// what the batch MeasureUplink* path computes for the same frame,
// pinned by the streaming-vs-batch conformance suite.
//
// Construct with NewReceiver, release with Close. The batch
// MeasureUplink* functions are thin wrappers over one Receiver.
type Receiver struct {
	opts ReceiverOptions
	sess *link.Session
}

// NewReceiver validates the options and starts the session's workers.
// The caller owns the Receiver and must Close it to stop them.
func NewReceiver(o ReceiverOptions) (*Receiver, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	sess, err := link.NewSession(o.runConfig(), o.uplinkOptions().factory())
	if err != nil {
		return nil, err
	}
	return &Receiver{opts: o, sess: sess}, nil
}

// Close drains the frame queue — every admitted frame completes and
// delivers its outcome — then stops the workers. Subsequent
// submissions return ErrReceiverClosed. Close is idempotent.
func (r *Receiver) Close() error { return r.sess.Close() }

// Workers returns the session's worker count.
func (r *Receiver) Workers() int { return r.sess.Workers() }

// QueueDepth returns the bounded frame queue's capacity.
func (r *Receiver) QueueDepth() int { return r.sess.QueueDepth() }

// expand validates a frame's channel state against the session shape
// and expands the single-matrix narrowband form to all subcarriers.
func (r *Receiver) expand(f UplinkFrame) ([]*cmplxmat.Matrix, error) {
	switch len(f.Channels) {
	case 1, NumSubcarriers:
	default:
		return nil, fmt.Errorf("geosphere: %w: frame %d has %d channel matrices, want 1 or %d",
			ErrBadShape, f.Index, len(f.Channels), NumSubcarriers)
	}
	for i, h := range f.Channels {
		if h == nil || h.Rows != r.opts.NA || h.Cols != r.opts.NC {
			return nil, fmt.Errorf("geosphere: %w: frame %d subcarrier %d is not %d×%d",
				ErrBadShape, f.Index, i, r.opts.NA, r.opts.NC)
		}
	}
	if len(f.Channels) == NumSubcarriers {
		return f.Channels, nil
	}
	hs := make([]*cmplxmat.Matrix, NumSubcarriers)
	for i := range hs {
		hs[i] = f.Channels[0]
	}
	return hs, nil
}

// convert maps a link-layer outcome into the facade form.
func convert(fi int64, o link.FrameOutcome) FrameOutcome {
	if o.Err != nil {
		return FrameOutcome{Frame: fi, Err: o.Err}
	}
	return FrameOutcome{
		Frame:        fi,
		StreamOK:     o.Res.StreamOK,
		SymbolErrors: o.Res.SymbolErrors,
		Symbols:      o.Res.Symbols,
		Stats:        o.Stats,
	}
}

// ProcessFrame runs one frame to completion: blocking admission to the
// bounded queue (backpressure), then the frame's outcome. Cancelling
// ctx before admission abandons the frame; after admission the frame
// still completes on its worker, but ProcessFrame returns ctx.Err()
// without waiting. Pipeline failures are reported in the returned
// error (wrapping the frame index), never in FrameOutcome.Err.
func (r *Receiver) ProcessFrame(ctx context.Context, f UplinkFrame) (FrameOutcome, error) {
	hs, err := r.expand(f)
	if err != nil {
		return FrameOutcome{}, err
	}
	out, err := r.sess.Process(ctx, f.Index, hs)
	if err != nil {
		return FrameOutcome{}, err
	}
	return convert(f.Index, out), nil
}

// pendingFrame threads one in-flight frame through ProcessStream's
// ordered collector.
type pendingFrame struct {
	idx   int64
	reply <-chan link.FrameOutcome
	err   error // admission-time error (bad shape), delivered in-band
}

// ProcessStream pumps frames from in through the session, delivering
// outcomes on out in submission order. It returns when in closes and
// every outcome has been delivered, or when ctx is cancelled. Frame-
// level failures (bad shape, pipeline errors) are delivered in-band as
// outcomes with Err set; the stream keeps going — a resident service
// must survive one user's bad frame.
//
// Cancellation drains deterministically: no further frames are
// admitted, frames already admitted complete on their workers (their
// outcomes are discarded), and ProcessStream returns ctx.Err(). The
// caller keeps ownership of both channels; out is not closed.
func (r *Receiver) ProcessStream(ctx context.Context, in <-chan UplinkFrame, out chan<- FrameOutcome) error {
	// The collector forwards outcomes in submission order. Its inbox is
	// sized past the session's in-flight maximum (queue + one per
	// worker) so a successful session admission never blocks on it.
	pendings := make(chan pendingFrame, r.sess.QueueDepth()+r.sess.Workers()+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for p := range pendings {
			o := FrameOutcome{Frame: p.idx, Err: p.err}
			if p.err == nil {
				o = convert(p.idx, <-p.reply)
			}
			select {
			case out <- o:
			case <-ctx.Done():
				// Keep draining replies so the submitter (blocked on a
				// full inbox, at worst) always unblocks; outcomes after
				// cancellation are discarded.
			}
		}
	}()
	var streamErr error
loop:
	for {
		select {
		case f, ok := <-in:
			if !ok {
				break loop
			}
			hs, err := r.expand(f)
			if err != nil {
				pendings <- pendingFrame{idx: f.Index, err: err}
				continue
			}
			reply, err := r.sess.SubmitWait(ctx, f.Index, hs)
			if err != nil {
				// Cancellation or Close — the stream itself is over.
				streamErr = err
				break loop
			}
			pendings <- pendingFrame{idx: f.Index, reply: reply}
		case <-ctx.Done():
			streamErr = ctx.Err()
			break loop
		}
	}
	close(pendings)
	wg.Wait()
	return streamErr
}

// Aggregate folds streamed outcomes into the batch UplinkResult form,
// using the same accounting as MeasureUplink*: a frame fails when any
// stream's CRC fails, net throughput is successful payload bits over
// air time (including the training preamble when EstimatedCSI is set).
// Feeding it the outcomes of frames 0..n-1 in index order reproduces
// the batch result for an n-frame measurement byte-for-byte. Outcomes
// with Err set contribute nothing.
func (r *Receiver) Aggregate(outs []FrameOutcome) UplinkResult {
	cfg := r.opts.runConfig()
	noiseVar := float64(NoiseVar(r.opts.SNRdB))
	var m UplinkResult
	m.Detector = r.opts.uplinkOptions().factory()(cfg.Cons, noiseVar).Name()
	m.Constellation = cfg.Cons.Name()
	pcfg := phy.Config{Cons: cfg.Cons, Rate: cfg.Rate, NumSymbols: cfg.NumSymbols, SoftDecoding: cfg.SoftDecoding}
	var payloadBitsOK float64
	for _, o := range outs {
		if o.Err != nil {
			continue
		}
		m.Frames++
		if !o.OK() {
			m.FrameErrors++
		}
		for _, ok := range o.StreamOK {
			m.Streams++
			if ok {
				payloadBitsOK += float64(pcfg.PayloadBits())
			} else {
				m.StreamErrors++
			}
		}
		m.Stats.Add(o.Stats)
	}
	symbolsPerFrame := cfg.NumSymbols
	if cfg.EstimatedCSI {
		reps := cfg.TrainingReps
		if reps <= 0 {
			reps = 1
		}
		symbolsPerFrame += phy.TrainingSymbols(r.opts.NC, reps)
	}
	airTime := float64(m.Frames) * float64(symbolsPerFrame) * ofdm.SymbolDuration
	if airTime > 0 {
		m.NetMbps = payloadBitsOK / airTime / 1e6
	}
	if m.Streams > 0 {
		m.PerStreamFER = float64(m.StreamErrors) / float64(m.Streams)
	}
	return m
}
