# Single source of truth for the repository's check pipeline: CI jobs
# and local runs invoke the same targets, so "passes locally" and
# "passes in CI" mean the same thing.

# staticcheck is pinned by exact version here — and only here — via
# `go run pkg@version`, which resolves and verifies the module against
# go.sum-style checksums without touching go.mod. A tools.go +
# go.mod require would be the classic pin, but this module vendors
# nothing and keeps its require list empty; the pinned @version run is
# reproducible (the go command verifies the module checksum against
# the public sumdb) and needs no tool-dependency scaffolding.
STATICCHECK_VERSION := 2024.1.1
GOVULNCHECK_VERSION := v1.1.3

.PHONY: check fmt vet lint lint-json staticcheck vulncheck test shuffle equiv bench bench-smoke serve-bench fuzz-smoke race

# Everything the merge gate requires. The detector-equivalence suite
# runs a second time in shuffled order so an accidental coupling
# between its grid cells cannot hide behind a fixed execution order.
check: fmt vet lint test equiv

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	go vet ./...

# The repository's own analyzer suite (see internal/lint). Also
# runnable under the vet driver for cached incremental runs:
#   go build -o bin/geolint ./cmd/geolint && go vet -vettool=bin/geolint ./...
lint:
	go run ./cmd/geolint ./...

# Machine-readable suite report (diagnostics + escape-hatch inventory
# with per-hatch usage); CI uploads geolint.json as an artifact. Same
# exit-code contract as lint, so the file is written even on failure.
lint-json:
	go run ./cmd/geolint -json ./... > geolint.json

staticcheck:
	go run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Known-vulnerability scan; advisory (non-blocking in CI) because
# findings depend on the vulndb snapshot, not on this repo's changes.
vulncheck:
	go run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

test:
	go test ./...

# Twice, in random order: catches tests coupled through shared state.
shuffle:
	go test -shuffle=on -count=2 ./...

# The cross-detector equivalence suite (TestEquiv*), shuffled: the
# bit-identity and symbol-agreement contracts must hold regardless of
# which grid cell runs first.
equiv:
	go test -shuffle=on -run 'TestEquiv' ./internal/core

# Regenerate BENCH_geosphere.json: the performance envelope of the
# receiver pipeline (ns/frame, ns/detect, allocs/op, preparation-cache
# hit rate per scenario) against the recorded pre-cache baseline.
bench:
	go run ./cmd/geobench -o BENCH_geosphere.json

bench-smoke:
	go test -run '^$$' -bench 'BenchmarkDetect' -benchtime=1x ./...

# Load-test the resident serving pipeline (cmd/geocell): tens of
# thousands of concurrent simulated user groups through the sharded
# detector service, recording admission-to-completion p50/p99 frame
# latency, offered vs served frames/sec, micro-batch size and ring
# occupancy distributions, and the Geosphere → K-best → ZF degradation
# mix under the "serve" key of BENCH_geosphere.json (cmd/geobench
# preserves that key when it regenerates the rest of the file).
# Retries back off exponentially with jitter from -backoff up to
# -backoff-max, so retry storms cannot busy-spin the admission ring;
# after the default retry budget a frame is dropped and counted, so
# served-frame latency measures the service, not the backoff ladder.
serve-bench:
	go run ./cmd/geoload -users 10000 -frames 3 -backoff 1ms -backoff-max 100ms -o BENCH_geosphere.json

# A short budget on each fuzzed property: detector agreement across
# the constellation × shape grid (Geosphere, ETH-SD, RVD and — where
# enumerable — exhaustive ML must agree on every random instance), and
# projection-stack consistency (cached partial projections must equal
# from-scratch recomputation to the last ULP on any search walk).
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzDetectAgreement -fuzztime 20s ./internal/core
	go test -run '^$$' -fuzz FuzzProjectionCache -fuzztime 10s ./internal/core

# The whole module, including the facade's streaming conformance and
# Receiver-hammering tests; -short skips only the long benchmark-grade
# root tests.
race:
	go test -race -short ./...
