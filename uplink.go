package geosphere

import (
	"context"
	"fmt"

	"repro/internal/constellation"
	"repro/internal/fec"
	"repro/internal/link"
	"repro/internal/rng"
	"repro/internal/testbed"
)

// Typed sentinel errors shared by every entry point of the facade —
// the batch MeasureUplink* calls, their *Context variants, and the
// streaming Receiver. Validation failures and admission rejects wrap
// these (with the offending values attached); match them with
// errors.Is.
var (
	// ErrNilConstellation reports options without a constellation.
	ErrNilConstellation = link.ErrNilConstellation
	// ErrBadFrames reports a non-positive Frames.
	ErrBadFrames = link.ErrBadFrames
	// ErrBadNumSymbols reports a non-positive NumSymbols.
	ErrBadNumSymbols = link.ErrBadNumSymbols
	// ErrBadJitter reports a negative SNRJitterDB.
	ErrBadJitter = link.ErrBadJitter
	// ErrBadWorkers reports a negative Workers.
	ErrBadWorkers = link.ErrBadWorkers
	// ErrBadQueueDepth reports a negative QueueDepth.
	ErrBadQueueDepth = link.ErrBadQueueDepth
	// ErrBadShape reports an antenna/client geometry no receiver can
	// serve (NC < 1 or NA < NC), a trace whose shape disagrees with the
	// options, or a streamed frame whose channel matrices do not match
	// the session shape.
	ErrBadShape = link.ErrBadShape
	// ErrBadAdaptive reports an AdaptiveDetect configuration the
	// pipeline cannot serve (currently: combined with soft decoding).
	ErrBadAdaptive = link.ErrBadAdaptive
	// ErrQueueFull reports a frame rejected because the Receiver's
	// bounded queue is at capacity — the admission-control signal of
	// the streaming path; callers shed or retry instead of queueing
	// unboundedly.
	ErrQueueFull = link.ErrQueueFull
	// ErrReceiverClosed reports a frame submitted to a closed Receiver.
	ErrReceiverClosed = link.ErrClosed
)

// UplinkResult summarizes a coded multi-user uplink measurement: frame
// and stream error counts, net throughput in Mbit/s, and (for sphere
// decoders) the complexity statistics accumulated during detection.
type UplinkResult = link.Measurement

// DetectorFactory builds a detector for a constellation; noiseVar is
// supplied for detectors (MMSE, MMSE-SIC) that need it.
type DetectorFactory = link.DetectorFactory

// UplinkOptions configures a coded multi-user uplink measurement over
// the full PHY pipeline (§4): scrambling, CRC, rate-1/2 K=7
// convolutional coding, interleaving, QAM over 48 data subcarriers,
// per-subcarrier MIMO detection, and soft Viterbi decoding.
type UplinkOptions struct {
	// Cons is the transmit constellation.
	Cons *Constellation
	// NumSymbols is the OFDM symbols per frame (4 µs each).
	NumSymbols int
	// Frames is the number of frames to measure.
	Frames int
	// SNRdB is the average per-stream SNR.
	SNRdB DB
	// Seed makes the measurement deterministic.
	Seed int64
	// NA and NC are the AP antenna and client counts.
	NA, NC int
	// Detector builds the receiver; defaults to NewGeosphere.
	Detector DetectorFactory
	// SNRJitterDB spreads per-client power over ±dB around SNRdB per
	// frame (the §5.2 "SNR range" user-selection methodology).
	SNRJitterDB DB
	// EstimatedCSI switches the receiver to noisy preamble-based
	// channel estimates, charging the preamble's air time.
	EstimatedCSI bool
	// Workers bounds the goroutines detecting frames concurrently.
	// Results are byte-identical for every value; 0 runs sequentially.
	Workers int
	// QueueDepth bounds the underlying session's frame queue; 0 keeps
	// the default (4× workers). The result is byte-identical for every
	// value — the knob only matters for the streaming Receiver.
	QueueDepth int
	// AdaptiveDetect replaces the detector with the condition-adaptive
	// scheduler: each subcarrier is assigned a ZF / K-best / sphere
	// tier from its cached condition estimate κ̂² and SNRdB, every
	// received vector is first resolved by a gated zero-forcing solve
	// that provably equals the maximum-likelihood decision when it
	// fires, and only gate failures pay for a tree search (sphere
	// escalations start from the ZF residual radius). The Detector
	// factory is ignored while set. Calibration is the pinned default
	// of the internal policy package (see DESIGN.md §14).
	AdaptiveDetect bool
	// Observer, when non-nil, receives per-detection, per-decode and
	// per-frame samples as the measurement runs. It must be safe for
	// concurrent use when Workers > 1; observing never changes the
	// result.
	Observer Observer
}

// Validate rejects option sets that would silently measure nothing or
// fail deep inside the pipeline. Every failure wraps one of the typed
// sentinels (ErrNilConstellation, ErrBadShape, ErrBadFrames, ...) so
// callers can match with errors.Is. The MeasureUplink* entry points
// call it first, so explicit calls are needed only to fail fast before
// an expensive setup.
func (o UplinkOptions) Validate() error {
	if o.NC <= 0 || o.NA < o.NC {
		return fmt.Errorf("%w: %d antennas × %d clients", ErrBadShape, o.NA, o.NC)
	}
	if err := o.runConfig().Validate(); err != nil {
		return fmt.Errorf("geosphere: %w", err)
	}
	return nil
}

func (o UplinkOptions) factory() DetectorFactory {
	if o.Detector != nil {
		return o.Detector
	}
	return func(cons *constellation.Constellation, _ float64) Detector {
		return NewGeosphere(cons)
	}
}

func (o UplinkOptions) runConfig() link.RunConfig {
	return link.RunConfig{
		Cons:         o.Cons,
		Rate:         fec.Rate12,
		NumSymbols:   o.NumSymbols,
		Frames:       o.Frames,
		SNRdB:        float64(o.SNRdB),
		Seed:         o.Seed,
		SNRJitterDB:  float64(o.SNRJitterDB),
		EstimatedCSI: o.EstimatedCSI,
		Workers:      o.Workers,
		QueueDepth:   o.QueueDepth,
		Recorder:     o.Observer,

		AdaptiveDetect: o.AdaptiveDetect,
	}
}

// receiverOptions maps the batch options onto a streaming session.
func (o UplinkOptions) receiverOptions() ReceiverOptions {
	return ReceiverOptions{
		Cons:         o.Cons,
		NumSymbols:   o.NumSymbols,
		SNRdB:        o.SNRdB,
		Seed:         o.Seed,
		NA:           o.NA,
		NC:           o.NC,
		Detector:     o.Detector,
		SNRJitterDB:  o.SNRJitterDB,
		EstimatedCSI: o.EstimatedCSI,
		Workers:      o.Workers,
		QueueDepth:   o.QueueDepth,
		Observer:     o.Observer,

		AdaptiveDetect: o.AdaptiveDetect,
	}
}

// checkShape verifies a source's geometry against the options.
func (o UplinkOptions) checkShape(src link.ChannelSource) error {
	if na, nc := src.Shape(); na != o.NA || nc != o.NC {
		return fmt.Errorf("geosphere: %w: source is %d×%d but options ask for %d×%d",
			ErrBadShape, na, nc, o.NA, o.NC)
	}
	return nil
}

// measure opens one Receiver session over the options and runs the
// whole batch through it — the batch API is a thin wrapper over the
// streaming one, so both produce byte-identical results by
// construction.
func (o UplinkOptions) measure(ctx context.Context, src link.ChannelSource) (UplinkResult, error) {
	ro := o.receiverOptions()
	if ro.Workers > o.Frames {
		ro.Workers = o.Frames
	}
	r, err := NewReceiver(ro)
	if err != nil {
		return UplinkResult{}, err
	}
	defer r.Close()
	return r.sess.Measure(ctx, src, o.Frames)
}

// MeasureUplinkRayleigh measures coded uplink throughput over i.i.d.
// per-frame Rayleigh fading. It is MeasureUplinkRayleighContext with
// context.Background().
func MeasureUplinkRayleigh(o UplinkOptions) (UplinkResult, error) {
	return MeasureUplinkRayleighContext(context.Background(), o)
}

// MeasureUplinkRayleighContext is MeasureUplinkRayleigh under a
// context: cancellation stops admitting frames, lets frames already
// on workers finish, and returns ctx.Err().
func MeasureUplinkRayleighContext(ctx context.Context, o UplinkOptions) (UplinkResult, error) {
	if err := o.Validate(); err != nil {
		return UplinkResult{}, err
	}
	src, err := link.NewRayleighSource(rng.New(o.Seed+1), o.NA, o.NC)
	if err != nil {
		return UplinkResult{}, err
	}
	return o.measure(ctx, src)
}

// MeasureUplinkTestbed measures coded uplink throughput over a
// synthetic indoor-testbed trace generated on the fly for the given
// shape (see cmd/tracegen to record reusable traces). It is
// MeasureUplinkTestbedContext with context.Background().
func MeasureUplinkTestbed(o UplinkOptions) (UplinkResult, error) {
	return MeasureUplinkTestbedContext(context.Background(), o)
}

// MeasureUplinkTestbedContext is MeasureUplinkTestbed under a context;
// see MeasureUplinkRayleighContext for the cancellation semantics.
func MeasureUplinkTestbedContext(ctx context.Context, o UplinkOptions) (UplinkResult, error) {
	if err := o.Validate(); err != nil {
		return UplinkResult{}, err
	}
	tr, err := testbed.Generate(testbed.OfficePlan(), testbed.GenerateConfig{
		Seed:         o.Seed,
		NumClients:   o.NC,
		NumAntennas:  o.NA,
		LinksPerAP:   4,
		Realizations: 2,
	})
	if err != nil {
		return UplinkResult{}, err
	}
	src, err := link.NewTraceSource(tr)
	if err != nil {
		return UplinkResult{}, err
	}
	if err := o.checkShape(src); err != nil {
		return UplinkResult{}, err
	}
	return o.measure(ctx, src)
}

// MeasureUplinkTrace measures coded uplink throughput over a recorded
// trace file written by cmd/tracegen. It is MeasureUplinkTraceContext
// with context.Background().
func MeasureUplinkTrace(o UplinkOptions, tracePath string) (UplinkResult, error) {
	return MeasureUplinkTraceContext(context.Background(), o, tracePath)
}

// MeasureUplinkTraceContext is MeasureUplinkTrace under a context; see
// MeasureUplinkRayleighContext for the cancellation semantics.
func MeasureUplinkTraceContext(ctx context.Context, o UplinkOptions, tracePath string) (UplinkResult, error) {
	if err := o.Validate(); err != nil {
		return UplinkResult{}, err
	}
	tr, err := testbed.LoadTrace(tracePath)
	if err != nil {
		return UplinkResult{}, err
	}
	src, err := link.NewTraceSource(tr)
	if err != nil {
		return UplinkResult{}, err
	}
	if err := o.checkShape(src); err != nil {
		return UplinkResult{}, err
	}
	return o.measure(ctx, src)
}
