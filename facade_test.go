package geosphere

import (
	"testing"

	"repro/internal/fec"
	"repro/internal/rng"
)

// benchViterbi lives here so bench_test.go stays a pure catalogue.
func benchViterbi(b *testing.B) {
	src := rng.New(5)
	bits := make([]byte, 922) // one 16-QAM rate-1/2 10-symbol frame
	src.Bits(bits)
	coded := fec.ConvEncode(bits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fec.ViterbiDecode(coded); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFacadeDetectRoundTrip(t *testing.T) {
	src := NewSource(1)
	for _, cons := range []*Constellation{QPSK, QAM16, QAM64, QAM256} {
		h := NewRayleighChannel(src, 4, 4)
		det := NewGeosphere(cons)
		if err := det.Prepare(h); err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, 4)
		sent := make([]int, 4)
		for i := range x {
			sent[i] = src.Intn(cons.Size())
			x[i] = cons.PointIndex(sent[i])
		}
		y := Transmit(nil, src, h, x, 0) // noiseless
		got, err := det.Detect(nil, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sent {
			if got[i] != sent[i] {
				t.Fatalf("%s: stream %d: got %d want %d", cons.Name(), i, got[i], sent[i])
			}
		}
		syms := Symbols(cons, got)
		if syms[0] != cons.PointIndex(got[0]) {
			t.Fatal("Symbols mapping inconsistent")
		}
	}
}

func TestFacadeConstructors(t *testing.T) {
	nv := NoiseVarForSNRdB(20)
	dets := []Detector{
		NewGeosphere(QAM16),
		NewGeosphereZigzagOnly(QAM16),
		NewETHSD(QAM16),
		NewML(QPSK),
		NewZF(QAM16),
		NewMMSE(QAM16, nv),
		NewMMSESIC(QAM16, nv),
	}
	kb, err := NewKBest(QAM16, 4)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFCSD(QAM16, 1)
	if err != nil {
		t.Fatal(err)
	}
	dets = append(dets, kb, fc)
	src := NewSource(2)
	h := NewRayleighChannel(src, 4, 2)
	x := []complex128{QAM16.PointIndex(3), QAM16.PointIndex(9)}
	y := Transmit(nil, src, h, x, nv)
	for _, d := range dets {
		if d.Name() == "" {
			t.Fatal("unnamed detector")
		}
		if err := d.Prepare(h); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if _, err := d.Detect(nil, y); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
	}
	if _, err := NewKBest(QAM16, 0); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewFCSD(QAM16, -1); err == nil {
		t.Fatal("negative fullLevels accepted")
	}
}

func TestFacadeConstellationByBits(t *testing.T) {
	for _, q := range []int{2, 4, 6, 8} {
		c, err := ConstellationByBits(q)
		if err != nil {
			t.Fatal(err)
		}
		if c.Bits() != q {
			t.Fatalf("bits %d", c.Bits())
		}
	}
	if _, err := ConstellationByBits(3); err == nil {
		t.Fatal("odd bits accepted")
	}
}

func TestFacadeChannelMetrics(t *testing.T) {
	src := NewSource(3)
	h, err := NewCorrelatedChannel(src, 2, 2, 0.95, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	iid := NewRayleighChannel(src, 2, 2)
	// A strongly correlated channel should look worse than an average
	// i.i.d. draw on both metrics.
	if Kappa2dB(h) < Kappa2dB(iid)-20 {
		t.Fatalf("correlated κ² (%.1f) implausibly better than i.i.d. (%.1f)", Kappa2dB(h), Kappa2dB(iid))
	}
	if LambdaDB(h) <= 0 {
		t.Fatalf("Λ must be positive, got %.1f", LambdaDB(h))
	}
	if _, err := NewCorrelatedChannel(src, 2, 2, 1.5, 0); err == nil {
		t.Fatal("invalid correlation accepted")
	}
}

func TestMeasureUplinkRayleigh(t *testing.T) {
	res, err := MeasureUplinkRayleigh(UplinkOptions{
		Cons: QAM16, NumSymbols: 4, Frames: 4, SNRdB: 35, Seed: 9, NA: 4, NC: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 4 {
		t.Fatalf("ran %d frames", res.Frames)
	}
	if res.NetMbps <= 0 {
		t.Fatalf("no throughput at 35 dB: %+v", res)
	}
	if res.Stats.Detections == 0 {
		t.Fatal("sphere decoder stats not collected")
	}
}

func TestMeasureUplinkTestbed(t *testing.T) {
	zf := func(cons *Constellation, _ float64) Detector { return NewZF(cons) }
	res, err := MeasureUplinkTestbed(UplinkOptions{
		Cons: QPSK, NumSymbols: 4, Frames: 3, SNRdB: 30, Seed: 4, NA: 4, NC: 2,
		Detector: zf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detector != "Zero-forcing" {
		t.Fatalf("factory ignored: %s", res.Detector)
	}
}

func TestMeasureUplinkTraceShapeMismatch(t *testing.T) {
	if _, err := MeasureUplinkTrace(UplinkOptions{
		Cons: QPSK, NumSymbols: 2, Frames: 1, NA: 4, NC: 2,
	}, "does-not-exist.trace.gz"); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestOFDMFacade(t *testing.T) {
	data := make([]complex128, OFDMDataCarriers)
	for i := range data {
		data[i] = complex(float64(i%3)-1, 0.5)
	}
	sym, err := OFDMModulate(nil, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sym) != OFDMSymbolLen {
		t.Fatalf("symbol length %d", len(sym))
	}
	back := make([]complex128, OFDMDataCarriers)
	if err := OFDMDemodulate(back, sym); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		d := back[i] - data[i]
		if real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatalf("subcarrier %d changed", i)
		}
	}
	ref := OFDMPreamble()
	est := make([]complex128, OFDMDataCarriers)
	if err := OFDMEstimateChannel(est, ref, ref); err != nil {
		t.Fatal(err)
	}
	for i, v := range est {
		if v != 1 {
			t.Fatalf("flat channel estimate %v at %d", v, i)
		}
	}
	x := []complex128{1, 2, 3, 4}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	if real(x[0])-1 > 1e-9 {
		t.Fatal("FFT/IFFT round trip failed")
	}
}
