package geosphere

import (
	"repro/internal/core"
)

// SoftDetector extends Detector with per-bit log-likelihood-ratio
// output, the §7 future-work receiver interface.
type SoftDetector = core.SoftDetector

// NewListSphereDecoder returns a soft-output Geosphere decoder: it
// reuses the two-dimensional zigzag tree search to compute exact
// max-log LLRs for every transmitted bit, feeding soft-decision
// Viterbi decoding (§7: "a promising next step is to extend our
// techniques to this setting").
func NewListSphereDecoder(cons *Constellation) SoftDetector {
	return core.NewListSphereDecoder(cons)
}

// NewHybrid returns the Maurer et al. condition-threshold detector
// discussed in §6.1: zero-forcing (or any linear detector) on
// well-conditioned channels, the sphere decoder when κ(H) exceeds the
// threshold. It exists as the ablation showing Geosphere's adaptive
// complexity makes such switching unnecessary.
func NewHybrid(cons *Constellation, linear Detector, thresholdKappa float64) (Detector, error) {
	return core.NewHybrid(cons, linear, thresholdKappa)
}

// NewGeosphereReordered returns Geosphere with sorted-QR column
// reordering enabled (strongest stream at the top of the tree), the
// §6.1 ordering optimization. The result remains exactly
// maximum-likelihood.
func NewGeosphereReordered(cons *Constellation) Detector {
	d := core.NewGeosphere(cons)
	d.EnableColumnReordering(true)
	return d
}

// NewRVD returns the real-valued-decomposition sphere decoder, the
// §6.1 baseline whose doubled tree height Geosphere's complex-domain
// search avoids. It is exactly maximum-likelihood.
func NewRVD(cons *Constellation) Detector { return core.NewRVD(cons) }
