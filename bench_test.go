package geosphere

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/cmplxmat"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/fec"
	"repro/internal/link"
	"repro/internal/ofdm"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/sim"
)

// ---------------------------------------------------------------------------
// Figure/table regeneration benches. Each one runs the same code path
// as `cmd/geosim -experiment <id>` at reduced (QuickOptions) size, so
// `go test -bench=.` exercises every experiment in the paper's
// evaluation. Run cmd/geosim for the full-size numbers recorded in
// EXPERIMENTS.md.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, fn func(sim.Options) (*sim.Table, error)) {
	b.Helper()
	opts := sim.QuickOptions()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(2014 + i)
		if _, err := fn(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9ChannelCharacterization regenerates the κ² CDFs of
// Figure 9 over the synthetic testbed.
func BenchmarkFig9ChannelCharacterization(b *testing.B) { benchExperiment(b, sim.Fig9) }

// BenchmarkFig10SNRDegradation regenerates the Λ CDFs of Figure 10.
func BenchmarkFig10SNRDegradation(b *testing.B) { benchExperiment(b, sim.Fig10) }

// BenchmarkFig11Throughput regenerates the testbed throughput
// comparison of Figure 11 (ZF vs Geosphere, 12 operating points).
func BenchmarkFig11Throughput(b *testing.B) { benchExperiment(b, sim.Fig11) }

// BenchmarkFig12ClientScaling regenerates Figure 12 (throughput vs
// client count at a 4-antenna AP).
func BenchmarkFig12ClientScaling(b *testing.B) { benchExperiment(b, sim.Fig12) }

// BenchmarkFig13MMSESIC regenerates Figure 13 (10-antenna AP over
// Rayleigh fading: ZF vs MMSE-SIC vs Geosphere).
func BenchmarkFig13MMSESIC(b *testing.B) { benchExperiment(b, sim.Fig13) }

// BenchmarkFig14Complexity regenerates Figure 14 (PED computations per
// subcarrier behind the Figure 11 throughput runs).
func BenchmarkFig14Complexity(b *testing.B) { benchExperiment(b, sim.Fig14) }

// BenchmarkFig15a regenerates Figure 15(a): decoder complexity at
// ≈10% FER, two clients and four AP antennas.
func BenchmarkFig15a(b *testing.B) { benchExperiment(b, sim.Fig15a) }

// BenchmarkFig15b regenerates Figure 15(b): four clients, four AP
// antennas.
func BenchmarkFig15b(b *testing.B) { benchExperiment(b, sim.Fig15b) }

// BenchmarkPruningAblation regenerates the §5.3.2 pruning ablation at
// a 1% FER target.
func BenchmarkPruningAblation(b *testing.B) { benchExperiment(b, sim.PruningAblation) }

// BenchmarkTable1Summary regenerates the Table 1 headline numbers.
func BenchmarkTable1Summary(b *testing.B) { benchExperiment(b, sim.Table1) }

// BenchmarkSoftVsHard regenerates the §7 soft-vs-hard decoding
// extension experiment.
func BenchmarkSoftVsHard(b *testing.B) { benchExperiment(b, sim.SoftVsHard) }

// BenchmarkHybridAblation regenerates the §5.3.1/§6.1 κ-threshold
// hybrid ablation.
func BenchmarkHybridAblation(b *testing.B) { benchExperiment(b, sim.HybridAblation) }

// BenchmarkOrderingAblation regenerates the §6.1 sorted-QR ordering
// ablation.
func BenchmarkOrderingAblation(b *testing.B) { benchExperiment(b, sim.OrderingAblation) }

// BenchmarkRunWorkers measures the deterministic parallel frame
// pipeline on the paper's hardest throughput configuration — a 4×4
// 64-QAM Geosphere uplink over Rayleigh fading — across worker counts.
// Every sub-benchmark computes the byte-identical Measurement; only
// the wall clock changes. Compare ns/op of workers=1 against
// workers=4+ for the pipeline's speedup on a multi-core host.
func BenchmarkRunWorkers(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := MeasureUplinkRayleigh(UplinkOptions{
					Cons: QAM64, NumSymbols: 8, Frames: 24,
					SNRdB: 27, Seed: 2014, NA: 4, NC: 4,
					Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				if m.Frames != 24 {
					b.Fatalf("ran %d frames", m.Frames)
				}
			}
		})
	}
}

// BenchmarkLinkRun measures the full frame pipeline on a static
// channel trace — the trace-replay regime of the paper's evaluation:
// 48 distinct per-subcarrier channels (frequency selective), constant
// across frames (time invariant), so every frame re-prepares the same
// 48 matrices. The cached variant is the default Run path (per-worker
// preparation cache, one slot per subcarrier); cold disables the cache
// and refactorizes every subcarrier of every frame, which is what the
// pipeline did before the cache existed. ns/frame is the headline
// metric tracked by cmd/geobench.
func BenchmarkLinkRun(b *testing.B) {
	for _, tc := range []struct {
		name string
		cold bool
	}{
		{"cached", false},
		{"cold", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			const frames = 8
			csrc := rng.New(7)
			hs := make([]*cmplxmat.Matrix, ofdm.NumData)
			for i := range hs {
				hs[i] = NewRayleighChannel(csrc, 4, 4)
			}
			cfg := link.RunConfig{
				Cons: QAM16, Rate: fec.Rate12,
				NumSymbols: 1, Frames: frames,
				SNRdB: 24, Seed: 2014, Workers: 1,
				NoPrepCache: tc.cold,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src, err := link.NewStaticSubcarrierSource(hs)
				if err != nil {
					b.Fatal(err)
				}
				m, err := link.Run(cfg, src, sim.GeosphereFactory)
				if err != nil {
					b.Fatal(err)
				}
				if m.Frames != frames {
					b.Fatalf("ran %d frames", m.Frames)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*frames), "ns/frame")
		})
	}
}

// BenchmarkDetectSoft measures the soft-output list sphere decoder at
// the paper's densest practical configuration for soft receivers.
func BenchmarkDetectSoft(b *testing.B) {
	src := rng.New(17)
	cons := QAM16
	det := core.NewListSphereDecoder(cons)
	h := NewRayleighChannel(src, 4, 4)
	if err := det.Prepare(h); err != nil {
		b.Fatal(err)
	}
	noiseVar := NoiseVarForSNRdB(20)
	x := make([]complex128, 4)
	for k := range x {
		x[k] = cons.PointIndex(src.Intn(cons.Size()))
	}
	y := Transmit(nil, src, h, x, noiseVar)
	llrs := make([]float64, 4*cons.Bits())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.DetectSoft(llrs, y, noiseVar); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Detector micro-benchmarks: per-Detect cost of each decoder across
// constellations and array sizes, with the paper's complexity metric
// (PED computations per detection) reported alongside ns/op.
// ---------------------------------------------------------------------------

func benchDetector(b *testing.B, det Detector, cons *constellation.Constellation, na, nc int, snrdB float64) {
	b.Helper()
	src := rng.New(1)
	h := NewRayleighChannel(src, na, nc)
	if err := det.Prepare(h); err != nil {
		b.Fatal(err)
	}
	// Pre-draw a pool of received vectors at the operating SNR.
	const pool = 256
	noiseVar := NoiseVarForSNRdB(snrdB)
	ys := make([][]complex128, pool)
	x := make([]complex128, nc)
	for i := range ys {
		for k := range x {
			x[k] = cons.PointIndex(src.Intn(cons.Size()))
		}
		ys[i] = Transmit(nil, src, h, x, noiseVar)
	}
	dst := make([]int, nc)
	ResetStatsOf(det)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(dst, ys[i%pool]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st, ok := StatsOf(det); ok {
		b.ReportMetric(st.PEDPerDetection(), "PED/op")
		b.ReportMetric(st.NodesPerDetection(), "nodes/op")
	}
}

// BenchmarkDetectRecorder quantifies the observability overhead on the
// hot path: the same 4×4 64-QAM Geosphere detection with no recorder,
// the no-op recorder (the documented <2% budget), and the full
// StatsRecorder. All three must report 0 allocs/op.
func BenchmarkDetectRecorder(b *testing.B) {
	for _, tc := range []struct {
		name string
		rec  Observer
	}{
		{"baseline", nil},
		{"nop", NopObserver},
		{"stats", NewStatsObserver()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			det := core.NewGeosphere(QAM64)
			if tc.rec != nil {
				det.SetRecorder(tc.rec)
			}
			benchDetector(b, det, QAM64, 4, 4, 25)
		})
	}
}

// BenchmarkDetect sweeps every detector over the constellations and
// array sizes of the evaluation at a 25 dB operating point.
func BenchmarkDetect(b *testing.B) {
	shapes := []struct{ na, nc int }{{2, 2}, {4, 2}, {4, 4}}
	conss := []*constellation.Constellation{QPSK, QAM16, QAM64, QAM256}
	type mk struct {
		name string
		make func(cons *constellation.Constellation) Detector
	}
	makers := []mk{
		{"Geosphere", func(c *constellation.Constellation) Detector { return NewGeosphere(c) }},
		{"Geosphere2DZigzag", func(c *constellation.Constellation) Detector { return NewGeosphereZigzagOnly(c) }},
		{"ETHSD", func(c *constellation.Constellation) Detector { return NewETHSD(c) }},
		{"ZF", func(c *constellation.Constellation) Detector { return NewZF(c) }},
		{"MMSESIC", func(c *constellation.Constellation) Detector {
			return NewMMSESIC(c, NoiseVarForSNRdB(25))
		}},
		{"KBest", func(c *constellation.Constellation) Detector {
			d, err := NewKBest(c, c.Side())
			if err != nil {
				b.Fatal(err)
			}
			return d
		}},
		{"FCSD", func(c *constellation.Constellation) Detector {
			d, err := NewFCSD(c, 1)
			if err != nil {
				b.Fatal(err)
			}
			return d
		}},
	}
	for _, m := range makers {
		for _, cons := range conss {
			for _, sh := range shapes {
				name := fmt.Sprintf("%s/%s/%dx%d", m.name, cons.Name(), sh.nc, sh.na)
				b.Run(name, func(b *testing.B) {
					benchDetector(b, m.make(cons), cons, sh.na, sh.nc, 25)
				})
			}
		}
	}
}

// BenchmarkGeosphere256QAM4x4 is the paper's headline configuration:
// the first practical 4×4 MIMO 256-QAM sphere decoder.
func BenchmarkGeosphere256QAM4x4(b *testing.B) {
	benchDetector(b, NewGeosphere(QAM256), QAM256, 4, 4, 39)
}

// BenchmarkETHSD256QAM4x4 is the prior state of the art on the same
// configuration, for the order-of-magnitude comparison.
func BenchmarkETHSD256QAM4x4(b *testing.B) {
	benchDetector(b, NewETHSD(QAM256), QAM256, 4, 4, 39)
}

// BenchmarkQRDecompose measures the per-subcarrier channel preparation
// cost the sphere decoders amortize.
func BenchmarkQRDecompose(b *testing.B) {
	src := rng.New(3)
	h := NewRayleighChannel(src, 4, 4)
	det := core.NewGeosphere(QAM64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := det.Prepare(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViterbiFrame measures the FEC decoder over one frame's
// worth of coded bits, the other significant receiver cost.
func BenchmarkViterbiFrame(b *testing.B) {
	benchViterbi(b)
}

// BenchmarkDownlinkPrecoding regenerates the §6.3 downlink precoding
// extension experiment.
func BenchmarkDownlinkPrecoding(b *testing.B) { benchExperiment(b, sim.DownlinkPrecoding) }

// BenchmarkVPEncode measures the vector-perturbation sphere encoder on
// a 4×4 downlink.
func BenchmarkVPEncode(b *testing.B) {
	src := rng.New(19)
	cons := QAM16
	vp := NewVPPrecoder(cons)
	h := NewRayleighChannel(src, 4, 4)
	if err := vp.Prepare(h); err != nil {
		b.Fatal(err)
	}
	s := make([]complex128, 4)
	for i := range s {
		s[i] = cons.PointIndex(src.Intn(cons.Size()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vp.Encode(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatedCSI regenerates the estimated-vs-genie CSI
// experiment.
func BenchmarkEstimatedCSI(b *testing.B) { benchExperiment(b, sim.EstimatedCSI) }

// BenchmarkChannelHardening regenerates the §6.2 channel-hardening
// sweep.
func BenchmarkChannelHardening(b *testing.B) { benchExperiment(b, sim.ChannelHardening) }

// BenchmarkIterativeReceiver regenerates the §7 iterative
// detection-decoding experiment.
func BenchmarkIterativeReceiver(b *testing.B) { benchExperiment(b, sim.IterativeReceiver) }

// BenchmarkFERWaterfall regenerates the detector FER-vs-SNR sweep.
func BenchmarkFERWaterfall(b *testing.B) { benchExperiment(b, sim.FERWaterfall) }

// BenchmarkRVDAblation regenerates the §6.1 real-valued-decomposition
// ablation.
func BenchmarkRVDAblation(b *testing.B) { benchExperiment(b, sim.RVDAblation) }

// BenchmarkGeosphere1024QAM4x4 pushes past the paper's densest
// constellation; the flat-cost property persists.
func BenchmarkGeosphere1024QAM4x4(b *testing.B) {
	benchDetector(b, NewGeosphere(QAM1024), QAM1024, 4, 4, 45)
}

// BenchmarkETHSD1024QAM4x4 is the prior art on the same configuration.
func BenchmarkETHSD1024QAM4x4(b *testing.B) {
	benchDetector(b, NewETHSD(QAM1024), QAM1024, 4, 4, 45)
}

// BenchmarkStatisticalPruningAblation regenerates the §6.1
// probabilistic-pruning trade-off ablation.
func BenchmarkStatisticalPruningAblation(b *testing.B) {
	benchExperiment(b, sim.StatisticalPruningAblation)
}

// ---------------------------------------------------------------------------
// Benchmark regression guard: the headline ns/frame number tracked by
// cmd/geobench must not quietly rot between bench regenerations.
// ---------------------------------------------------------------------------

// benchReport mirrors the slice of the BENCH_geosphere.json schema the
// regression guards read.
type benchReport struct {
	Schema    string `json:"schema"`
	Scenarios []struct {
		Name       string  `json:"name"`
		NsPerFrame float64 `json:"ns_per_frame"`
	} `json:"scenarios"`
	Adaptive *struct {
		SpeedupVsSphere float64 `json:"speedup_vs_sphere"`
		PERDelta        float64 `json:"per_delta"`
	} `json:"adaptive"`
	Serve *struct {
		Records []struct {
			Config struct {
				NA         int     `json:"na"`
				NC         int     `json:"nc"`
				NumSymbols int     `json:"num_symbols"`
				SNRdB      float64 `json:"snr_db"`
				Seed       int64   `json:"seed"`
				Shards     int     `json:"shards"`
				QueueDepth int     `json:"queue_depth"`
				BatchMax   int     `json:"batch_max"`
			} `json:"config"`
			Report struct {
				FramesPerSec float64 `json:"frames_per_sec"`
			} `json:"report"`
		} `json:"records"`
	} `json:"serve"`
}

// readBenchReport parses BENCH_geosphere.json, skipping the test when
// the file is absent (fresh checkout before the first `make bench`).
func readBenchReport(t *testing.T) *benchReport {
	t.Helper()
	buf, err := os.ReadFile("BENCH_geosphere.json")
	if err != nil {
		t.Skipf("no recorded benchmark report: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("BENCH_geosphere.json: %v", err)
	}
	return &rep
}

// rayleighTrace rebuilds cmd/geobench's canonical static trace.
func rayleighTrace(t *testing.T) []*cmplxmat.Matrix {
	t.Helper()
	csrc := rng.New(7)
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		hs[i] = NewRayleighChannel(csrc, 4, 4)
	}
	return hs
}

// conditionedSweepTrace rebuilds cmd/geobench's κ²-swept trace: per-
// subcarrier conditioning ramped linearly from 0 to 55 dB.
func conditionedSweepTrace(t *testing.T) []*cmplxmat.Matrix {
	t.Helper()
	csrc := rng.New(77)
	hs := make([]*cmplxmat.Matrix, ofdm.NumData)
	for i := range hs {
		k2 := 55 * float64(i) / float64(len(hs)-1)
		h, err := NewConditionedChannel(csrc, 4, 4, k2)
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
	}
	return hs
}

// TestBenchRegressionGuard re-measures the frame-timed link scenarios
// cmd/geobench records — the cached static trace and the condition-
// adaptive κ² sweep — and fails when one runs more than 25% slower per
// frame than its last BENCH_geosphere.json entry. The tolerance is
// deliberately generous (shared machines, thermal noise) and the
// measurement takes the best of many runs, so a failure means a real
// regression, not jitter.
func TestBenchRegressionGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock regression guard skipped in -short mode")
	}
	rep := readBenchReport(t)
	recorded := make(map[string]float64, len(rep.Scenarios))
	for _, s := range rep.Scenarios {
		recorded[s.Name] = s.NsPerFrame
	}
	for _, tc := range []struct {
		scenario string
		runs     int
		cfg      link.RunConfig
		trace    func(*testing.T) []*cmplxmat.Matrix
	}{
		{
			// 4×4 16-QAM rate-1/2, one OFDM symbol, prep cache on.
			scenario: "link-run/static-trace/cached",
			runs:     41,
			cfg: link.RunConfig{
				Cons: QAM16, Rate: fec.Rate12,
				NumSymbols: 1, Frames: 8,
				SNRdB: 24, Seed: 2014, Workers: 1,
			},
			trace: rayleighTrace,
		},
		{
			// The κ² sweep under the default-calibrated scheduler: two
			// OFDM symbols so detection cost dominates, 30 frames so the
			// per-run scheduler setup amortizes as in cmd/geobench.
			scenario: "link-run/kappa-sweep/adaptive",
			runs:     11,
			cfg: link.RunConfig{
				Cons: QAM16, Rate: fec.Rate12,
				NumSymbols: 2, Frames: 30,
				SNRdB: 24, Seed: 2014, Workers: 1,
				AdaptiveDetect: true,
			},
			trace: conditionedSweepTrace,
		},
	} {
		t.Run(tc.scenario, func(t *testing.T) {
			rec := recorded[tc.scenario]
			if rec <= 0 {
				t.Fatalf("scenario %q missing from BENCH_geosphere.json", tc.scenario)
			}
			hs := tc.trace(t)
			run := func() time.Duration {
				src, err := link.NewStaticSubcarrierSource(hs)
				if err != nil {
					t.Fatal(err)
				}
				start := time.Now()
				m, err := link.Run(tc.cfg, src, sim.GeosphereFactory)
				elapsed := time.Since(start)
				if err != nil {
					t.Fatal(err)
				}
				if m.Frames != tc.cfg.Frames {
					t.Fatalf("ran %d frames", m.Frames)
				}
				return elapsed
			}
			for i := 0; i < 3; i++ {
				run() // warm caches, page in code
			}
			best := run()
			for i := 0; i < tc.runs-1; i++ {
				if d := run(); d < best {
					best = d
				}
			}
			got := float64(best.Nanoseconds()) / float64(tc.cfg.Frames)
			if limit := 1.25 * rec; got > limit {
				t.Errorf("%s: %.0f ns/frame (best of %d runs) exceeds %.0f recorded by more than 25%% (limit %.0f)",
					tc.scenario, got, tc.runs, rec, limit)
			} else {
				t.Logf("%s: %.0f ns/frame vs %.0f recorded (limit %.0f)", tc.scenario, got, rec, limit)
			}
		})
	}
}

// TestBenchServeRegressionGuard re-measures the resident serving
// layer's throughput against the last recorded `make serve-bench` run:
// a scaled-down in-process load (same service shape, fewer users) must
// reach at least half the recorded frames/sec. The micro-batching
// ingest makes the scaled run compute-bound rather than queue-bound,
// so halving the recorded rate leaves generous headroom for shared
// machines while still catching an order-of-magnitude ingest
// regression.
func TestBenchServeRegressionGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock regression guard skipped in -short mode")
	}
	rep := readBenchReport(t)
	if rep.Serve == nil || len(rep.Serve.Records) == 0 {
		t.Skip("no recorded serve run; regenerate with `make serve-bench`")
	}
	last := rep.Serve.Records[len(rep.Serve.Records)-1]
	if last.Report.FramesPerSec <= 0 {
		t.Fatal("recorded serve run has no throughput")
	}
	run := func() float64 {
		srv, err := serve.New(serve.Config{
			Cons:       QAM16,
			NA:         last.Config.NA,
			NC:         last.Config.NC,
			NumSymbols: last.Config.NumSymbols,
			SNRdB:      last.Config.SNRdB,
			Seed:       last.Config.Seed,
			Shards:     last.Config.Shards,
			QueueDepth: last.Config.QueueDepth,
			BatchMax:   last.Config.BatchMax,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		lrep := serve.RunLoad(context.Background(), srv, serve.LoadConfig{
			Users:         512,
			FramesPerUser: 3,
			Seed:          last.Config.Seed,
		})
		if lrep.FramesServed == 0 {
			t.Fatal("scaled serve run served nothing")
		}
		return lrep.FramesPerSec
	}
	best := run()
	for i := 0; i < 2; i++ {
		if fps := run(); fps > best {
			best = fps
		}
	}
	if floor := last.Report.FramesPerSec / 2; best < floor {
		t.Errorf("serve: %.0f frames/sec (best of 3) is below half the recorded %.0f",
			best, last.Report.FramesPerSec)
	} else {
		t.Logf("serve: %.0f frames/sec vs %.0f recorded", best, last.Report.FramesPerSec)
	}
}

// TestBenchAdaptiveRecord pins the recorded adaptive headline against
// the acceptance floor: the κ²-swept scenario must show the scheduler
// at least 1.3× faster than the all-sphere baseline while degrading
// the packet error rate by at most 0.1% absolute. A regeneration that
// records worse numbers fails here instead of rotting silently.
func TestBenchAdaptiveRecord(t *testing.T) {
	rep := readBenchReport(t)
	if rep.Adaptive == nil {
		t.Fatal("BENCH_geosphere.json has no adaptive record; regenerate with `make bench`")
	}
	if rep.Adaptive.SpeedupVsSphere < 1.3 {
		t.Errorf("recorded adaptive speedup %.2fx is below the 1.3x floor", rep.Adaptive.SpeedupVsSphere)
	}
	if rep.Adaptive.PERDelta > 0.001 {
		t.Errorf("recorded adaptive PER delta %+.4f exceeds the 0.1%% bound", rep.Adaptive.PERDelta)
	}
}
