// Command tracegen records synthetic indoor-testbed channel traces —
// the reproduction's stand-in for the paper's WARP measurement
// campaigns. The resulting .trace.gz files are consumed by
// cmd/linkstats and by trace-driven experiments.
//
// Usage:
//
//	tracegen -out traces/2x4.trace.gz -clients 2 -antennas 4 \
//	         -links 8 -realizations 3 -seed 2014
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/testbed"
)

func main() {
	var (
		out          = flag.String("out", "testbed.trace.gz", "output trace path")
		clients      = flag.Int("clients", 2, "clients per link (nc)")
		antennas     = flag.Int("antennas", 4, "AP antennas used (na)")
		links        = flag.Int("links", 8, "client subsets per AP")
		realizations = flag.Int("realizations", 3, "channel draws per subset")
		seed         = flag.Int64("seed", 2014, "generation seed")
	)
	flag.Parse()

	start := time.Now()
	plan := testbed.OfficePlan()
	tr, err := testbed.Generate(plan, testbed.GenerateConfig{
		Seed:         *seed,
		NumClients:   *clients,
		NumAntennas:  *antennas,
		LinksPerAP:   *links,
		Realizations: *realizations,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := tr.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	total := 0
	for i := range tr.Links {
		total += tr.Links[i].Realizations()
	}
	fmt.Printf("wrote %s: %d links × %d subcarriers, %d total realizations (%s) in %v\n",
		*out, len(tr.Links), tr.Subcarriers, total, tr.Description,
		time.Since(start).Round(time.Millisecond))
}
