// Command linkstats prints the §5.1 channel-characterization report
// for a recorded testbed trace: per-link and aggregate κ² and Λ
// statistics, the quantities behind Figures 9 and 10.
//
// Usage:
//
//	linkstats -trace traces/4x4.trace.gz
//	linkstats -trace traces/4x4.trace.gz -progress   # heartbeat on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/testbed"
)

func main() {
	var (
		path     = flag.String("trace", "", "trace file written by tracegen")
		progress = flag.Bool("progress", false, "print periodic progress lines on stderr while scanning links")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "linkstats: -trace is required")
		os.Exit(2)
	}
	tr, err := testbed.LoadTrace(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkstats: %v\n", err)
		os.Exit(1)
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(os.Stderr, time.Second)
	}
	fmt.Printf("trace: %s (%d links, %d subcarriers)\n\n", tr.Description, len(tr.Links), tr.Subcarriers)
	fmt.Printf("%-14s %-22s %10s %10s %10s %10s\n", "AP", "clients", "κ² p50", "κ² p90", "Λ p50", "Λ p90")

	var allK2, allLam []float64
	for i := range tr.Links {
		l := &tr.Links[i]
		var k2s, lams []float64
		for r := 0; r < l.Realizations(); r++ {
			for s := 0; s < tr.Subcarriers; s++ {
				h, err := l.Matrix(r, s)
				if err != nil {
					fmt.Fprintf(os.Stderr, "linkstats: %v\n", err)
					os.Exit(1)
				}
				k2s = append(k2s, metrics.Kappa2dB(h))
				lams = append(lams, metrics.LambdaDB(h))
			}
		}
		allK2 = append(allK2, k2s...)
		allLam = append(allLam, lams...)
		k2 := metrics.NewCDF(k2s)
		lam := metrics.NewCDF(lams)
		fmt.Printf("%-14s %-22s %9.1fdB %9.1fdB %9.1fdB %9.1fdB\n",
			l.AP, fmt.Sprint(l.Clients), k2.Quantile(0.5), k2.Quantile(0.9), lam.Quantile(0.5), lam.Quantile(0.9))
		if prog != nil {
			// One "point" per scanned link keeps the heartbeat honest
			// without touching the report itself.
			prog.RecordPoint(obs.PointSample{Label: l.AP})
		}
	}
	if prog != nil {
		prog.Stop()
	}
	k2 := metrics.NewCDF(allK2)
	lam := metrics.NewCDF(allLam)
	fmt.Printf("\naggregate over %d channel matrices:\n", k2.Len())
	fmt.Printf("  κ² > 10 dB on %.0f%% of channels (paper 2×2: 60%%, 4×4: nearly all)\n", 100*k2.FractionAbove(10))
	fmt.Printf("  Λ  >  5 dB on %.0f%% of channels (paper 2×2: 30%%, 4×4: 90%%)\n", 100*lam.FractionAbove(5))
	fmt.Printf("  Λ  > 10 dB on %.0f%% of channels\n", 100*lam.FractionAbove(10))
}
