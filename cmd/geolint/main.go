// Command geolint runs the repository's static-analysis suite
// (internal/lint): determinism, noalloc, recorderhygiene, floatdet,
// units, the concurrency-hygiene analyzers (goleak, blockingsend,
// syncmisuse) and the stale-hatch self-audit.
//
// Standalone usage, from anywhere inside the module:
//
//	go run ./cmd/geolint ./...
//	go run ./cmd/geolint -list
//	go run ./cmd/geolint -json ./... > geolint.json
//	go run ./cmd/geolint ./internal/core ./internal/link
//
// Diagnostics print as file:line:col: [analyzer] message; the exit
// code is 0 when clean, 1 when diagnostics were reported, 2 on
// operational errors (unloadable packages, type errors).
//
// geolint also speaks the go vet -vettool unit-checker protocol, so
// the standard driver can run it with full build caching:
//
//	go build -o /tmp/geolint ./cmd/geolint
//	go vet -vettool=/tmp/geolint ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr *os.File) int {
	// go vet probes its vettool before handing it packages; serve the
	// unit-checker protocol when invoked that way.
	if vetProtocol(args) {
		return vetMain(args, stdout, stderr)
	}

	fs := flag.NewFlagSet("geolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	asJSON := fs.Bool("json", false, "emit a machine-readable report (diagnostics plus the escape-hatch inventory) on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: geolint [-list] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "geolint:", err)
		return 2
	}
	return run(cwd, fs.Args(), *asJSON, stdout, stderr)
}

// run loads the requested packages of the module containing dir and
// applies the suite. With asJSON it emits a lint.Report (module-
// relative paths, so the bytes are checkout-independent) instead of
// file:line:col lines; the exit code contract is identical.
func run(dir string, patterns []string, asJSON bool, stdout, stderr *os.File) int {
	modPath, modDir, err := load.ModuleInfo(dir)
	if err != nil {
		fmt.Fprintln(stderr, "geolint:", err)
		return 2
	}
	l := load.NewLoader(modPath, modDir)
	l.IncludeTests = true
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "geolint:", err)
		return 2
	}
	broken := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "geolint: %s: %v\n", pkg.PkgPath, terr)
			broken++
		}
	}
	if broken > 0 {
		return 2
	}
	if asJSON {
		rep := lint.Audit(pkgs, modDir)
		enc := json.NewEncoder(stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "geolint:", err)
			return 2
		}
		if len(rep.Diagnostics) > 0 {
			fmt.Fprintf(stderr, "geolint: %d diagnostic(s) in %d package(s)\n", len(rep.Diagnostics), len(pkgs))
			return 1
		}
		return 0
	}
	diags := lint.Run(pkgs)
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, d.Analyzer.Name, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "geolint: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
