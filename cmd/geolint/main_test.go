package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// withOutput runs f with stdout/stderr redirected to pipes and returns
// what f wrote to each.
func withOutput(t *testing.T, f func(stdout, stderr *os.File)) (string, string) {
	t.Helper()
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	errR, errW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	f(outW, errW)
	outW.Close()
	errW.Close()
	var out, errOut strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := outR.Read(buf)
		out.Write(buf[:n])
		if err != nil {
			break
		}
	}
	for {
		n, err := errR.Read(buf)
		errOut.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return out.String(), errOut.String()
}

func TestListFlag(t *testing.T) {
	out, _ := withOutput(t, func(stdout, stderr *os.File) {
		if code := realMain([]string{"-list"}, stdout, stderr); code != 0 {
			t.Errorf("geolint -list exited %d, want 0", code)
		}
	})
	for _, name := range []string{
		"determinism", "noalloc", "recorderhygiene", "floatdet",
		"units", "goleak", "blockingsend", "syncmisuse", "stalehatch",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

// writeModule lays out a throwaway single-package module.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module throwaway\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, `//geolint:deterministic
package a

func Tolerant(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
`)
	out, errOut := withOutput(t, func(stdout, stderr *os.File) {
		if code := run(dir, []string{"./..."}, false, stdout, stderr); code != 0 {
			t.Errorf("clean module exited %d, want 0", code)
		}
	})
	if out != "" || errOut != "" {
		t.Errorf("clean module produced output:\nstdout: %s\nstderr: %s", out, errOut)
	}
}

func TestRunFlagsViolations(t *testing.T) {
	dir := writeModule(t, `//geolint:deterministic
package a

func Exact(a, b float64) bool { return a == b }
`)
	out, _ := withOutput(t, func(stdout, stderr *os.File) {
		if code := run(dir, []string{"./..."}, false, stdout, stderr); code != 1 {
			t.Errorf("module with violations exited %d, want 1", code)
		}
	})
	if !strings.Contains(out, "[floatdet]") || !strings.Contains(out, "a.go") {
		t.Errorf("diagnostic output missing [floatdet] finding in a.go:\n%s", out)
	}
}

func TestRunRejectsBrokenModule(t *testing.T) {
	dir := writeModule(t, "package a\n\nfunc Broken() { undefined() }\n")
	_, errOut := withOutput(t, func(stdout, stderr *os.File) {
		if code := run(dir, []string{"./..."}, false, stdout, stderr); code != 2 {
			t.Errorf("broken module exited %d, want 2", code)
		}
	})
	if !strings.Contains(errOut, "undefined") {
		t.Errorf("stderr does not mention the type error:\n%s", errOut)
	}
}

// TestJSONReportGolden pins the -json schema byte-for-byte: file paths
// are module-relative, so the report is identical on every checkout,
// and CI archives it as an artifact.
func TestJSONReportGolden(t *testing.T) {
	dir := writeModule(t, `//geolint:deterministic
package a

func Exact(a, b float64) bool { return a == b }

func Allowed(a, b float64) bool {
	return a == b //geolint:float-ok exact golden comparison pinned by a conformance test
}
`)
	out, _ := withOutput(t, func(stdout, stderr *os.File) {
		if code := run(dir, []string{"./..."}, true, stdout, stderr); code != 1 {
			t.Errorf("module with one diagnostic exited %d, want 1", code)
		}
	})
	const golden = `{
  "version": 1,
  "diagnostics": [
    {
      "file": "a.go",
      "line": 4,
      "col": 40,
      "analyzer": "floatdet",
      "message": "== on floating-point values is not reproducible across reassociation/FMA; compare with a tolerance or annotate //geolint:float-ok <reason>"
    }
  ],
  "hatches": [
    {
      "file": "a.go",
      "line": 7,
      "key": "float-ok",
      "reason": "exact golden comparison pinned by a conformance test",
      "used": true
    }
  ]
}
`
	if out != golden {
		t.Errorf("-json report drifted from the golden schema:\ngot:\n%s\nwant:\n%s", out, golden)
	}
}

// TestJSONReportClean checks the empty-report shape: both collections
// present (not null), exit code 0.
func TestJSONReportClean(t *testing.T) {
	dir := writeModule(t, "package a\n\nfunc Fine() int { return 1 }\n")
	out, _ := withOutput(t, func(stdout, stderr *os.File) {
		if code := run(dir, []string{"./..."}, true, stdout, stderr); code != 0 {
			t.Errorf("clean module exited %d, want 0", code)
		}
	})
	if !strings.Contains(out, `"diagnostics": []`) || !strings.Contains(out, `"hatches": []`) {
		t.Errorf("clean report should contain empty arrays, not null:\n%s", out)
	}
}

func TestVetProtocolDetection(t *testing.T) {
	cases := []struct {
		args []string
		want bool
	}{
		{[]string{"-V=full"}, true},
		{[]string{"-flags"}, true},
		{[]string{"/tmp/unit.cfg"}, true},
		{[]string{"-list"}, false},
		{[]string{"./..."}, false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := vetProtocol(tc.args); got != tc.want {
			t.Errorf("vetProtocol(%q) = %v, want %v", tc.args, got, tc.want)
		}
	}
}

func TestVersionLine(t *testing.T) {
	out, _ := withOutput(t, func(stdout, stderr *os.File) {
		if code := realMain([]string{"-V=full"}, stdout, stderr); code != 0 {
			t.Errorf("-V=full exited %d, want 0", code)
		}
	})
	// The vet driver parses "name version ... buildID=<hex>".
	if !strings.Contains(out, " version ") || !strings.Contains(out, "buildID=") {
		t.Errorf("version line not in vet format: %q", out)
	}
}

// TestVetToolEndToEnd drives the real `go vet -vettool` pipeline: it
// builds the geolint binary and lets the standard vet driver feed it
// unit-checker .cfg files for a clean module and for one with a
// violation. Skipped under -short (`make race`): it shells out to the
// go tool twice.
func TestVetToolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "geolint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/geolint: %v\n%s", err, out)
	}

	clean := writeModule(t, `//geolint:deterministic
package a

func Tolerant(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = clean
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on a clean module failed: %v\n%s", err, out)
	}

	dirty := writeModule(t, `//geolint:deterministic
package a

func Exact(a, b float64) bool { return a == b }
`)
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dirty
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on a module with a violation exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "not reproducible") {
		t.Errorf("vet output is missing the floatdet diagnostic:\n%s", out)
	}
}
